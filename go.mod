module bulksc

go 1.22

// Command scchk checks a serialized memory-consistency history for
// sequential consistency, offline.
//
// Usage:
//
//	scchk trace.ndjson          # check a file
//	scchk -                     # check stdin
//	sweep -exp trace | scchk    # pipe straight from the exporter
//	scchk -search trace.ndjson  # ignore the claimed order; search for one
//
// The input is the NDJSON history format of internal/history: "chunk"
// records for BulkSC-style chunked machines, "access" records for
// conventional ones, an optional leading "header". Histories authored by
// other tools are accepted — see the package documentation for the three-
// line minimal example.
//
// By default scchk verifies the order the history itself claims (commit
// order for chunks, perform order for accesses) against the full
// obligation set of the online witness checker: total order, chunk
// atomicity, value coherence, same-chunk forwarding, program order. With
// -search it instead decides whether ANY interleaving of the history's
// atomic units is sequentially consistent — Gibbons–Korach's NP-complete
// VSC question — under a state bound.
//
// Exit status follows cmd/sweep's discipline: 0 the history checks out
// (or a serialization was found), 1 it does not (violations, or no
// serialization exists), 2 usage errors, unreadable or malformed input,
// or an inconclusive bounded search.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bulksc/internal/history"
	"bulksc/internal/history/gk"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scchk", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		search    = fs.Bool("search", false, "ignore the claimed order and search for any SC serialization")
		maxStates = fs.Int("max-states", gk.DefaultMaxStates, "state bound for -search")
		maxViol   = fs.Int("max-violations", gk.DefaultMaxViolations, "violation records to retain before capping")
		quiet     = fs.Bool("q", false, "suppress the summary line; exit status only")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: scchk [flags] [file|-]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintf(stderr, "scchk: at most one input, got %d\n", fs.NArg())
		fs.Usage()
		return 2
	}

	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if fs.NArg() == 1 && fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "scchk: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}

	h, err := history.Read(in)
	if err != nil {
		fmt.Fprintf(stderr, "scchk: %s: %v\n", name, err)
		return 2
	}

	if *search {
		order, err := gk.Search(h, *maxStates)
		switch {
		case err == nil:
			if !*quiet {
				fmt.Fprintf(stdout, "scchk: %s: serializable (%d procs, %d ops, %d atomic steps)\n",
					name, h.Procs(), h.Ops(), len(order))
			}
			return 0
		case err == gk.ErrNotSerializable:
			fmt.Fprintf(stdout, "scchk: %s: NOT sequentially consistent: no serialization of %d ops exists\n",
				name, h.Ops())
			return 1
		case err == gk.ErrStateBound:
			fmt.Fprintf(stderr, "scchk: %s: inconclusive: state bound %d exceeded (raise -max-states)\n",
				name, *maxStates)
			return 2
		default:
			fmt.Fprintf(stderr, "scchk: %s: %v\n", name, err)
			return 2
		}
	}

	r := gk.Check(h, gk.Options{MaxViolations: *maxViol})
	if r.Ok() {
		if !*quiet {
			fmt.Fprintf(stdout, "scchk: %s: ok (%d procs, %d chunks, %d ops)\n",
				name, h.Procs(), r.Chunks(), r.Accesses())
		}
		return 0
	}
	fmt.Fprintf(stdout, "scchk: %s: %d violations\n", name, r.Total())
	for _, s := range r.Strings() {
		fmt.Fprintf(stdout, "  %s\n", s)
	}
	return 1
}

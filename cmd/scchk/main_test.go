package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runScchk(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	// Route stdin through a temp file so the test does not fight over
	// os.Stdin: "-" and file input share the same code path anyway.
	if stdin != "" {
		f := filepath.Join(t.TempDir(), "in.ndjson")
		if err := os.WriteFile(f, []byte(stdin), 0o644); err != nil {
			t.Fatal(err)
		}
		args = append(args, f)
	}
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

const cleanChunks = `{"kind":"header","version":1,"format":"bulksc-history","model":"BulkSC","procs":2}
{"kind":"chunk","proc":0,"seq":1,"order":1,"ops":[{"store":true,"addr":64,"val":7}]}
{"kind":"chunk","proc":1,"seq":1,"order":2,"ops":[{"addr":64,"val":7}]}
`

func TestOkHistory(t *testing.T) {
	code, out, _ := runScchk(t, cleanChunks)
	if code != 0 {
		t.Fatalf("exit %d, out=%q", code, out)
	}
	if !strings.Contains(out, "ok (2 procs, 2 chunks, 2 ops)") {
		t.Fatalf("summary missing: %q", out)
	}
}

func TestQuiet(t *testing.T) {
	code, out, _ := runScchk(t, cleanChunks, "-q")
	if code != 0 || out != "" {
		t.Fatalf("exit %d, out=%q", code, out)
	}
}

func TestViolatingHistory(t *testing.T) {
	bad := strings.Replace(cleanChunks, `{"addr":64,"val":7}`, `{"addr":64,"val":9}`, 1)
	code, out, _ := runScchk(t, bad)
	if code != 1 {
		t.Fatalf("exit %d, out=%q", code, out)
	}
	if !strings.Contains(out, "coherence") {
		t.Fatalf("violation rendering missing: %q", out)
	}
}

// TestExternalHistory is the acceptance-criteria case: a hand-authored
// headerless trace from outside this repo renders a correct verdict.
func TestExternalHistory(t *testing.T) {
	ext := `{"kind":"access","proc":0,"po":1,"store":true,"addr":64,"val":1}
{"kind":"access","proc":1,"po":1,"addr":64,"val":1}
`
	if code, out, _ := runScchk(t, ext); code != 0 {
		t.Fatalf("external ok-history: exit %d, out=%q", code, out)
	}
	// Same trace, but the read observes a value never written: verdict 1.
	bad := strings.Replace(ext, `"addr":64,"val":1}`+"\n", `"addr":64,"val":1}`+"\n", 1)
	bad = strings.Replace(bad, `{"kind":"access","proc":1,"po":1,"addr":64,"val":1}`,
		`{"kind":"access","proc":1,"po":1,"addr":64,"val":3}`, 1)
	if code, out, _ := runScchk(t, bad); code != 1 {
		t.Fatalf("external bad-history: exit %d, out=%q", code, out)
	}
}

func TestSearchVerdicts(t *testing.T) {
	sb := `{"kind":"access","proc":0,"po":1,"store":true,"addr":0,"val":1}
{"kind":"access","proc":0,"po":2,"addr":8,"val":0}
{"kind":"access","proc":1,"po":1,"store":true,"addr":8,"val":1}
{"kind":"access","proc":1,"po":2,"addr":0,"val":0}
`
	code, out, _ := runScchk(t, sb, "-search")
	if code != 1 || !strings.Contains(out, "NOT sequentially consistent") {
		t.Fatalf("forbidden SB: exit %d, out=%q", code, out)
	}
	mp := `{"kind":"access","proc":0,"po":1,"store":true,"addr":0,"val":1}
{"kind":"access","proc":1,"po":1,"addr":0,"val":1}
`
	if code, out, _ := runScchk(t, mp, "-search"); code != 0 || !strings.Contains(out, "serializable") {
		t.Fatalf("serializable: exit %d, out=%q", code, out)
	}
	if code, _, errb := runScchk(t, sb, "-search", "-max-states", "1"); code != 2 || !strings.Contains(errb, "inconclusive") {
		t.Fatalf("bounded: exit %d, err=%q", code, errb)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runScchk(t, "", "-nosuchflag"); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code, _, errb := runScchk(t, "", "a", "b"); code != 2 || !strings.Contains(errb, "at most one input") {
		t.Fatalf("two inputs: exit %d, err=%q", code, errb)
	}
	if code, _, _ := runScchk(t, "", "/no/such/file.ndjson"); code != 2 {
		t.Fatalf("missing file: exit %d", code)
	}
	if code, _, errb := runScchk(t, "not json"); code != 2 || !strings.Contains(errb, "line 1") {
		t.Fatalf("malformed: exit %d err=%q", code, errb)
	}
}

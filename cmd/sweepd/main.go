// Command sweepd is the simulation sweep service: a long-lived HTTP/JSON
// daemon that serves the experiments layer (internal/sweepsrv) instead of
// running it as a one-shot CLI. It holds a pool of persistent warm
// machines (one per worker, reset bit-identically between jobs), a bounded
// job queue with explicit 429/Retry-After backpressure, and a
// content-addressed result cache: submitting a config that already ran
// returns the byte-identical result with "cache": "hit" and zero
// additional simulation work.
//
// Usage:
//
//	sweepd -addr :8356 -workers 4 -queue 32
//	sweepd -loadtest -requests 64 -concurrency 8   # seeded load harness
//
// API (see DESIGN.md §15 and EXPERIMENTS.md for curl recipes):
//
//	POST   /sweep        {"exp":"fig9","apps":["radix"],"work":4000}
//	GET    /result/{id}  status, then the terminal result envelope
//	GET    /stream/{id}  SSE progress (?format=ndjson for NDJSON lines)
//	DELETE /job/{id}     cancel a queued or running job
//	GET    /healthz      liveness and drain state
//	GET    /metrics      queue/pool/cache/job counters as JSON
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: submissions are
// refused with 503, running jobs drain to completion, queued jobs fail
// with the distinct "aborted" status, every progress stream receives its
// terminal event and closes, and the process exits 0. -drain-timeout
// bounds the drain; past it, running jobs are canceled at their next cell
// boundary.
//
// The -loadtest mode boots the same server in-process on a loopback
// listener, fires a fixed-seed request mix at it (-requests total, at
// -concurrency) and reports p50/p95/p99 latency, throughput and the
// cache-hit rate as JSON on stdout; cmd/bench2json records the same
// harness's numbers as a baseline row in BENCH_core.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulksc/internal/sweepsrv"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable entry point: parse flags, then either serve until a
// termination signal (returning 0 after a clean drain) or run the load
// harness.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "127.0.0.1:8356", "listen address")
		workers = fs.Int("workers", 2, "pool size: persistent warm machines serving jobs")
		queue   = fs.Int("queue", 16, "job queue depth; a full queue answers 429 + Retry-After")
		cache   = fs.Int("cache", 128, "content-addressed result cache entries (LRU)")
		maxWork = fs.Int("max-work", 500_000, "per-thread instruction cap per request (0 = uncapped)")
		retain  = fs.Int("retain", 1024, "finished jobs kept addressable via /result and /stream")
		drain   = fs.Int("drain-timeout", 60, "seconds to drain running jobs on shutdown before canceling them")

		loadtest    = fs.Bool("loadtest", false, "run the seeded load harness against an in-process server and print a JSON report")
		requests    = fs.Int("requests", 32, "loadtest: total requests")
		concurrency = fs.Int("concurrency", 4, "loadtest: client goroutines")
		seed        = fs.Int64("seed", 1, "loadtest: request-mix seed")
		work        = fs.Int("work", 2000, "loadtest: per-thread instructions per generated job")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := sweepsrv.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		MaxWork:      *maxWork,
		RetainJobs:   *retain,
	}

	if *loadtest {
		rep, err := sweepsrv.RunLoadTest(sweepsrv.LoadOptions{
			Requests:    *requests,
			Concurrency: *concurrency,
			Seed:        *seed,
			Work:        *work,
			Server:      cfg,
		})
		if rep != nil {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
		}
		if err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		return 0
	}

	// Route termination signals BEFORE announcing the address: the listen
	// line below invites clients (and the graceful-shutdown test) to start
	// signaling, so the default kill-the-process action must already be
	// disarmed by then.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := sweepsrv.NewServer(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	// The resolved address line is a contract: tests (and scripts) listen
	// on :0 and scrape the port from here.
	fmt.Fprintf(stdout, "sweepd: listening on %s (%d workers, queue %d, cache %d)\n",
		ln.Addr(), cfg.Workers, cfg.QueueDepth, cfg.CacheEntries)

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "sweepd: shutting down (draining up to %ds)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drain)*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Jobs past the deadline were canceled at their next cell
		// boundary; the pool still wound down cleanly, so this is a
		// degraded-but-clean exit, reported as such.
		fmt.Fprintln(stderr, "sweepd: drain deadline passed; running jobs were canceled:", err)
	}
	// Streams have their terminal events; now close the HTTP side.
	httpCtx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	hs.Shutdown(httpCtx)
	fmt.Fprintln(stdout, "sweepd: drained, exiting")
	return 0
}

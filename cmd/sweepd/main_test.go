package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the helper process: when SWEEPD_HELPER_PROCESS is
// set, the test binary IS sweepd (it calls run with the binary's argv), so
// the SIGTERM test exercises the real signal path of a real process —
// goroutine-level shutdown tests live in internal/sweepsrv; this one pins
// the process-level contract: exit code 0 after a clean drain.
func TestMain(m *testing.M) {
	if os.Getenv("SWEEPD_HELPER_PROCESS") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestSIGTERMGracefulExit boots sweepd as a child process, submits a job,
// sends SIGTERM while the job is mid-sweep, and asserts: the job drains to
// completion (its stream delivers done/done), the process logs the drain,
// and it exits 0 within the deadline.
func TestSIGTERMGracefulExit(t *testing.T) {
	cmd := exec.Command(os.Args[0],
		"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4", "-drain-timeout", "120")
	cmd.Env = append(os.Environ(), "SWEEPD_HELPER_PROCESS=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // no-op after a clean Wait

	// The listen line is a documented contract; scrape the resolved port.
	sc := bufio.NewScanner(stdout)
	base := ""
	var lines []string
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		if strings.HasPrefix(line, "sweepd: listening on ") {
			base = "http://" + strings.Fields(line)[3]
			break
		}
	}
	if base == "" {
		t.Fatalf("never saw the listen line; output so far: %q, stderr: %s", lines, stderr.String())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	outRest := make(chan []string, 1)
	go func() {
		var rest []string
		for sc.Scan() {
			rest = append(rest, sc.Text())
		}
		outRest <- rest
	}()

	// A multi-cell job: SIGTERM will land while it is mid-sweep.
	resp, err := http.Post(base+"/sweep", "application/json",
		strings.NewReader(`{"exp":"scaling","apps":["radix"],"procs":[8,16],"work":20000}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	// Follow the job's stream; once it reports running, fire SIGTERM.
	stream, err := http.Get(base + "/stream/" + sub.ID + "?format=ndjson")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer stream.Body.Close()
	events := bufio.NewScanner(stream.Body)
	signaled := false
	final := ""
	for events.Scan() {
		var ev struct {
			Event  string `json:"event"`
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(events.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", events.Text(), err)
		}
		if !signaled && (ev.Status == "running" || ev.Event == "row") {
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatalf("SIGTERM: %v", err)
			}
			signaled = true
		}
		if ev.Event == "done" {
			final = ev.Status
			if ev.Status != "done" {
				t.Errorf("job ended %q (%s); SIGTERM mid-sweep must drain it to completion", ev.Status, ev.Error)
			}
			break
		}
	}
	if !signaled {
		t.Fatal("stream ended before the job ever ran")
	}
	if final == "" {
		t.Fatal("stream closed without a terminal event")
	}

	// The process must exit 0 within the deadline.
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("sweepd exited non-zero after SIGTERM: %v, stderr: %s", err, stderr.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatal("sweepd did not exit within the deadline after SIGTERM")
	}
	rest := <-outRest
	tail := strings.Join(rest, "\n")
	if !strings.Contains(tail, "sweepd: drained, exiting") {
		t.Errorf("missing drain log line; stdout tail:\n%s", tail)
	}
}

// TestLoadtestFlag runs the in-process load harness through the real flag
// surface and checks the JSON report on stdout.
func TestLoadtestFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-loadtest", "-requests", "6", "-concurrency", "2", "-work", "800", "-seed", "5"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("run -loadtest = %d, stderr: %s", code, errBuf.String())
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("loadtest stdout is not JSON: %v\n%s", err, out.String())
	}
	if rep["requests"] != float64(6) || rep["completed"] != float64(6) {
		t.Fatalf("report %v: want 6 requests, 6 completed", rep)
	}
	for _, field := range []string{"p50_ms", "p95_ms", "p99_ms", "throughput_rps", "cache_hit_rate", "server_metrics"} {
		if _, ok := rep[field]; !ok {
			t.Errorf("report missing %q", field)
		}
	}
}

// TestBadFlags: flag errors exit 2 without touching the network.
func TestBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "definitely-not-a-flag") {
		t.Errorf("usage error not reported: %s", errBuf.String())
	}
}

// TestListenFailure: an unbindable address is a clean error exit, not a
// panic or a hang.
func TestListenFailure(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:1"}, &out, &errBuf); code != 1 {
		t.Fatalf("run with bad addr = %d, want 1", code)
	}
	if errBuf.Len() == 0 {
		t.Error("listen failure produced no error output")
	}
}

// Command sweep regenerates the paper's evaluation artifacts: every table
// and figure of §7, plus the distributed-arbiter extension study.
//
// Usage:
//
//	sweep -exp fig9                 # Figure 9: performance vs RC
//	sweep -exp fig10                # Figure 10: chunk-size sensitivity
//	sweep -exp table3               # Table 3: BulkSC characterization
//	sweep -exp table4               # Table 4: commit & coherence
//	sweep -exp fig11                # Figure 11: traffic breakdown
//	sweep -exp arbiters -procs 16   # §4.2.3 distributed-arbiter ablation
//	sweep -exp scaling -procs 8,16,64,256   # big-machine scaling curves
//	sweep -exp faults               # fault-injection campaign report
//	sweep -exp all                  # everything, in order
//	sweep -exp trace -apps radix -trace-out trace.ndjson
//	                                # export one run's SC history as NDJSON
//
// The trace experiment simulates a single (app, model) cell with history
// export on and streams the NDJSON history (internal/history format) to
// -trace-out ("-" = stdout, with the run report diverted to stderr so
// `sweep -exp trace | scchk` pipes cleanly). -trace-model selects the
// machine (bulk, sc, rc, sc++). It is excluded from -exp all.
//
// The -work flag sets the per-thread instruction budget; larger runs give
// steadier statistics (the first 30% is always excluded as warmup).
//
// Sweeps execute on a fixed pool of -parallel workers (default NumCPU; -j
// is an alias), each owning one warm machine that is reset in place
// between simulations; workload programs are generated once per (app,
// procs, work, seed) and shared. The -cold flag disables the reuse and
// constructs a fresh machine per simulation — results are bit-identical
// either way (golden-tested), so -cold exists only to isolate a suspected
// reuse bug or to measure the reuse win.
//
// The -sccheck flag runs the online SC-witness checker (internal/sccheck)
// alongside every SC-claiming simulation of the sweep; any witness
// violation aborts the sweep with a diagnostic.
//
// The -faults flag applies a named fault-injection campaign (see
// bulksc.FaultCampaigns) to every simulation of the sweep; -fault-seed
// makes the injected schedule reproducible. The simulated machine must
// absorb every campaign without a correctness or liveness failure — the
// liveness watchdog converts a livelock into a diagnostic error instead
// of a hang.
//
// Profiling (for performance PRs — attach the resulting profiles as
// evidence):
//
//	sweep -exp fig9 -cpuprofile cpu.pprof   # go tool pprof cpu.pprof
//	sweep -exp fig9 -memprofile mem.pprof   # allocation profile at exit
//	sweep -exp fig9 -trace trace.out        # go tool trace trace.out
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"bulksc"
	"bulksc/experiments"
)

// expNames lists the experiments in "all" execution order. "faults" is
// deliberately last: it multiplies the matrix by every campaign.
var expNames = []string{"fig9", "fig10", "table3", "table4", "fig11", "arbiters", "sigspace", "scaling", "faults"}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable entry point: it parses args, validates every
// enumerated flag against its catalog (unknown values exit non-zero with
// the valid list), executes the selected experiments, and writes reports
// to stdout and diagnostics to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment: "+strings.Join(expNames, ", ")+", all")
		work      = fs.Int("work", 120_000, "dynamic instructions per thread")
		seed      = fs.Int64("seed", 1, "simulation seed")
		apps      = fs.String("apps", "", "comma-separated subset of applications (default: all)")
		procs     = fs.String("procs", "16", "comma-separated core counts: the scaling study runs every value; the arbiter ablation uses the first")
		par       = fs.Int("parallel", 0, "parallel workers, one warm machine each (default: NumCPU)")
		parAlias  = fs.Int("j", 0, "alias for -parallel")
		cold      = fs.Bool("cold", false, "construct a fresh machine per simulation instead of reusing one warm machine per worker (bit-identical results; reuse-debugging escape hatch)")
		scchk     = fs.Bool("sccheck", false, "run the online SC-witness checker on every SC-claiming simulation (fails the sweep on a violation)")
		faults    = fs.String("faults", "none", "fault-injection campaign: "+strings.Join(bulksc.FaultCampaigns(), ", "))
		faultSeed = fs.Int64("fault-seed", 1, "base seed for the fault-injection schedule")

		traceOut   = fs.String("trace-out", "-", "history-export destination for -exp trace (\"-\" = stdout)")
		traceModel = fs.String("trace-model", "bulk", "machine model for -exp trace: "+strings.Join(experiments.TraceModels(), ", "))

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file at exit")
		tracefile  = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Validate every enumerated flag before any simulation starts: a typo
	// must fail fast with the list of valid values, not run half a sweep.
	if *exp != "all" && *exp != "trace" && !contains(expNames, *exp) {
		fmt.Fprintf(stderr, "sweep: unknown experiment %q (valid: %s, trace, all)\n", *exp, strings.Join(expNames, ", "))
		return 2
	}
	if *exp == "trace" && !contains(experiments.TraceModels(), strings.ToLower(*traceModel)) {
		fmt.Fprintf(stderr, "sweep: unknown trace model %q (valid: %s)\n", *traceModel, strings.Join(experiments.TraceModels(), ", "))
		return 2
	}
	if _, err := bulksc.NewFaultPlan(*faults, *faultSeed); err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	procCounts, err := parseProcs(*procs)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	if *par < 0 || *parAlias < 0 {
		fmt.Fprintf(stderr, "sweep: -parallel must be >= 0 (0 = NumCPU)\n")
		return 2
	}
	if *par == 0 {
		*par = *parAlias // -j is the historical spelling
	}
	effPar := *par
	if effPar == 0 {
		effPar = runtime.NumCPU()
	}
	p := experiments.Params{
		Work: *work, Seed: *seed, Parallelism: *par, Witness: *scchk, Cold: *cold,
		FaultCampaign: *faults, FaultSeed: *faultSeed,
	}
	if *apps != "" {
		valid := bulksc.Apps()
		for _, a := range strings.Split(*apps, ",") {
			if !contains(valid, a) {
				fmt.Fprintf(stderr, "sweep: unknown application %q (valid: %s)\n", a, strings.Join(valid, ", "))
				return 2
			}
			p.Apps = append(p.Apps, a)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		defer func() { trace.Stop(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return
			}
			runtime.GC() // materialize the final live heap
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
			}
			f.Close()
		}()
	}

	if *exp == "trace" {
		// History export is a single simulation, not a sweep; when the
		// NDJSON goes to stdout the human-readable report moves to stderr
		// so `sweep -exp trace | scchk` sees only the history.
		app := "radix"
		if len(p.Apps) > 0 {
			app = p.Apps[0]
		}
		out, report := io.Writer(nil), stdout
		if *traceOut == "-" {
			out, report = stdout, stderr
		} else {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			defer f.Close()
			out = f
		}
		res, err := experiments.TraceRun(p, app, *traceModel, out)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		fmt.Fprintf(report, "trace: %s/%s: %d cycles; witness examined %d chunks, %d accesses, %d findings\n",
			*traceModel, app, res.Cycles, res.WitnessChunks, res.WitnessAccesses, len(res.WitnessViolations))
		return 0
	}

	// Run header: how the sweep will execute, so reported numbers carry
	// their execution mode.
	mode := "warm machine reuse (one machine per worker)"
	if *cold {
		mode = "cold (fresh machine per simulation)"
	}
	fmt.Fprintf(stdout, "sweep: %d parallel workers, %s\n\n", effPar, mode)

	runOne := func(name string) int {
		switch name {
		case "fig9":
			rows, err := experiments.Fig9(p)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintln(stdout, "=== Figure 9: performance normalized to RC (higher is better) ===")
			fmt.Fprint(stdout, experiments.FormatFig9(rows))
		case "fig10":
			rows, err := experiments.Fig10(p)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintln(stdout, "=== Figure 10: BSC_dypvt chunk-size sensitivity (vs RC) ===")
			fmt.Fprint(stdout, experiments.FormatFig10(rows))
		case "table3":
			rows, err := experiments.Table3(p)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintln(stdout, "=== Table 3: BulkSC characterization ===")
			fmt.Fprint(stdout, experiments.FormatTable3(rows))
		case "table4":
			rows, err := experiments.Table4(p)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintln(stdout, "=== Table 4: commit and coherence operations (BSC_dypvt) ===")
			fmt.Fprint(stdout, experiments.FormatTable4(rows))
		case "fig11":
			rows, err := experiments.Fig11(p)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintln(stdout, "=== Figure 11: traffic normalized to RC (R=RC, E=exact, N=no-RSig, B=BSC_dypvt) ===")
			fmt.Fprint(stdout, experiments.FormatFig11(rows))
		case "sigspace":
			rows, err := experiments.SigSpace(p, []string{"radix", "ocean", "water-sp", "sjbb2k"})
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintln(stdout, "=== §6 ablation: signature design space (BSC_dypvt) ===")
			fmt.Fprint(stdout, experiments.FormatSigSpace(rows))
		case "arbiters":
			counts := []int{1, 2, 4, 8}
			rows, err := experiments.ArbScale(p, procCounts[0], counts)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintf(stdout, "=== §4.2.3 ablation: distributed arbiter at %d cores (speedup vs 1 arbiter) ===\n", procCounts[0])
			fmt.Fprint(stdout, experiments.FormatArbScale(rows, counts))
		case "scaling":
			points, err := experiments.Scaling(p, procCounts)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintln(stdout, "=== Big-machine scaling: BSC_dypvt with default arbiter tier and G-arbiter shards ===")
			fmt.Fprint(stdout, experiments.FormatScaling(points))
		case "faults":
			rows, err := experiments.FaultReport(p)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintln(stdout, "=== Fault-injection campaigns: BSC_dypvt under adversarial schedules (SC + witness checked) ===")
			fmt.Fprint(stdout, experiments.FormatFaultReport(rows))
		}
		fmt.Fprintln(stdout)
		return 0
	}

	if *exp == "all" {
		for _, name := range expNames {
			if name == "faults" && *faults != "none" {
				// The whole sweep already ran under the campaign; the
				// per-campaign report would rerun everything again.
				continue
			}
			if code := runOne(name); code != 0 {
				return code
			}
		}
		return 0
	}
	return runOne(*exp)
}

// parseProcs parses the -procs comma list, validating each value against
// the supported machine envelope.
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n < 1 || n > bulksc.MaxProcs {
			return nil, fmt.Errorf("-procs value %q must be an integer in [1,%d]", part, bulksc.MaxProcs)
		}
		out = append(out, n)
	}
	return out, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Command sweep regenerates the paper's evaluation artifacts: every table
// and figure of §7, plus the distributed-arbiter extension study.
//
// Usage:
//
//	sweep -exp fig9                 # Figure 9: performance vs RC
//	sweep -exp fig10                # Figure 10: chunk-size sensitivity
//	sweep -exp table3               # Table 3: BulkSC characterization
//	sweep -exp table4               # Table 4: commit & coherence
//	sweep -exp fig11                # Figure 11: traffic breakdown
//	sweep -exp arbiters -procs 16   # §4.2.3 distributed-arbiter ablation
//	sweep -exp all                  # everything, in order
//
// The -work flag sets the per-thread instruction budget; larger runs give
// steadier statistics (the first 30% is always excluded as warmup).
//
// The -sccheck flag runs the online SC-witness checker (internal/sccheck)
// alongside every SC-claiming simulation of the sweep; any witness
// violation aborts the sweep with a diagnostic.
//
// Profiling (for performance PRs — attach the resulting profiles as
// evidence):
//
//	sweep -exp fig9 -cpuprofile cpu.pprof   # go tool pprof cpu.pprof
//	sweep -exp fig9 -memprofile mem.pprof   # allocation profile at exit
//	sweep -exp fig9 -trace trace.out        # go tool trace trace.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"bulksc"
	"bulksc/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig9, fig10, table3, table4, fig11, arbiters, sigspace, all")
		work  = flag.Int("work", 120_000, "dynamic instructions per thread")
		seed  = flag.Int64("seed", 1, "simulation seed")
		apps  = flag.String("apps", "", "comma-separated subset of applications (default: all)")
		procs = flag.Int("procs", 16, "core count for the arbiter-scaling study")
		par   = flag.Int("j", 0, "parallel simulations (default: NumCPU)")
		scchk = flag.Bool("sccheck", false, "run the online SC-witness checker on every SC-claiming simulation (fails the sweep on a violation)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		tracefile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		fail(err)
		fail(trace.Start(f))
		defer func() { trace.Stop(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fail(err)
			runtime.GC() // materialize the final live heap
			fail(pprof.Lookup("allocs").WriteTo(f, 0))
			f.Close()
		}()
	}

	p := experiments.Params{Work: *work, Seed: *seed, Parallelism: *par, Witness: *scchk}
	if *apps != "" {
		p.Apps = strings.Split(*apps, ",")
	}

	run := func(name string) {
		switch name {
		case "fig9":
			rows, err := experiments.Fig9(p)
			fail(err)
			fmt.Println("=== Figure 9: performance normalized to RC (higher is better) ===")
			fmt.Print(experiments.FormatFig9(rows))
		case "fig10":
			rows, err := experiments.Fig10(p)
			fail(err)
			fmt.Println("=== Figure 10: BSC_dypvt chunk-size sensitivity (vs RC) ===")
			fmt.Print(experiments.FormatFig10(rows))
		case "table3":
			rows, err := experiments.Table3(p)
			fail(err)
			fmt.Println("=== Table 3: BulkSC characterization ===")
			fmt.Print(experiments.FormatTable3(rows))
		case "table4":
			rows, err := experiments.Table4(p)
			fail(err)
			fmt.Println("=== Table 4: commit and coherence operations (BSC_dypvt) ===")
			fmt.Print(experiments.FormatTable4(rows))
		case "fig11":
			rows, err := experiments.Fig11(p)
			fail(err)
			fmt.Println("=== Figure 11: traffic normalized to RC (R=RC, E=exact, N=no-RSig, B=BSC_dypvt) ===")
			fmt.Print(experiments.FormatFig11(rows))
		case "sigspace":
			rows, err := experiments.SigSpace(p, []string{"radix", "ocean", "water-sp", "sjbb2k"})
			fail(err)
			fmt.Println("=== §6 ablation: signature design space (BSC_dypvt) ===")
			fmt.Print(experiments.FormatSigSpace(rows))
		case "arbiters":
			counts := []int{1, 2, 4, 8}
			rows, err := experiments.ArbScale(p, *procs, counts)
			fail(err)
			fmt.Printf("=== §4.2.3 ablation: distributed arbiter at %d cores (speedup vs 1 arbiter) ===\n", *procs)
			fmt.Print(experiments.FormatArbScale(rows, counts))
		default:
			fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"fig9", "fig10", "table3", "table4", "fig11", "arbiters", "sigspace"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

var _ = bulksc.Apps // keep the root package in the import graph for docs

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestUnknownFlagValuesExitNonZero pins the input-hardening contract: an
// unknown -exp, -faults or -apps value must exit non-zero before any
// simulation starts, and the diagnostic must list the valid values.
func TestUnknownFlagValuesExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings that must appear on stderr
	}{
		{
			name: "unknown experiment",
			args: []string{"-exp", "fig99"},
			want: []string{`unknown experiment "fig99"`, "fig9", "table3", "faults"},
		},
		{
			name: "unknown campaign",
			args: []string{"-exp", "fig9", "-faults", "chaos-monkey"},
			want: []string{`unknown campaign "chaos-monkey"`, "none", "denial-storm", "alias-amplify", "delay-jitter"},
		},
		{
			name: "unknown app",
			args: []string{"-exp", "fig9", "-apps", "doom"},
			want: []string{`unknown application "doom"`, "radix", "sjbb2k"},
		},
		{
			name: "bad procs list",
			args: []string{"-exp", "scaling", "-procs", "8,zap"},
			want: []string{`-procs value "zap"`},
		},
		{
			name: "oversized procs",
			args: []string{"-exp", "scaling", "-procs", "2048"},
			want: []string{`-procs value "2048"`},
		},
		{
			name: "negative parallelism",
			args: []string{"-exp", "fig9", "-parallel", "-3"},
			want: []string{"-parallel must be >= 0"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run(tc.args, &out, &errb)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, errb.String())
			}
			for _, w := range tc.want {
				if !strings.Contains(errb.String(), w) {
					t.Errorf("stderr missing %q:\n%s", w, errb.String())
				}
			}
			if out.Len() != 0 {
				t.Errorf("stdout should be empty on a flag error, got:\n%s", out.String())
			}
		})
	}
}

// TestUnknownFlagExitsNonZero: a flag that does not exist at all also
// fails fast (the flag package prints usage to stderr).
func TestUnknownFlagExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-frobnicate"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "flag provided but not defined") {
		t.Errorf("stderr missing flag diagnostic:\n%s", errb.String())
	}
}

// TestSmallSweepRuns exercises one real experiment end to end through the
// CLI path — with a fault campaign active — so the whole wiring
// (flags → Params → plan construction → report) stays covered.
func TestSmallSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep run in -short mode")
	}
	var out, errb bytes.Buffer
	code := run([]string{
		"-exp", "fig9", "-apps", "radix", "-work", "4000",
		"-faults", "delay-jitter", "-fault-seed", "7", "-sccheck",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 9") || !strings.Contains(out.String(), "radix") {
		t.Errorf("unexpected report output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "parallel workers") || !strings.Contains(out.String(), "warm machine reuse") {
		t.Errorf("run header missing execution mode:\n%s", out.String())
	}
}

// TestColdAndWarmSweepsAgree pins the -cold escape hatch: the same tiny
// sweep run cold and warm must produce byte-identical reports (the
// execution-mode header aside), because warm machine reuse is required to
// be behavior-neutral.
func TestColdAndWarmSweepsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep comparison in -short mode")
	}
	body := func(args ...string) string {
		var out, errb bytes.Buffer
		base := []string{"-exp", "fig9", "-apps", "radix", "-work", "3000", "-parallel", "2"}
		if code := run(append(base, args...), &out, &errb); code != 0 {
			t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
		}
		// Drop the header line, which names the mode by design.
		_, rest, _ := strings.Cut(out.String(), "\n\n")
		return rest
	}
	warm := body()
	cold := body("-cold")
	if warm != cold {
		t.Errorf("cold and warm sweeps disagree:\nwarm:\n%s\ncold:\n%s", warm, cold)
	}
}

// Command bench2json runs the headline performance benchmark — the Figure
// 9 sweep at the canonical benchWork=60k operating point — under
// testing.Benchmark and writes a machine-readable summary to
// BENCH_core.json, so the repository's perf trajectory (ns/op, allocs/op,
// bytes/op and the Fig9 geomeans) is tracked across PRs instead of living
// in ephemeral shell scrollback.
//
// Usage:
//
//	go run ./cmd/bench2json                # writes ./BENCH_core.json
//	go run ./cmd/bench2json -o out.json -work 60000 -n 3
//
// The Fig9 sweep is measured twice: cold (fresh machine per simulation,
// the historical baseline mode, comparable with older BENCH_core.json
// files) and warm (the default execution: one reused machine per worker,
// memoized workload generation). The fig9_warm/fig9 alloc and byte ratios
// are the warm-reuse win; sweep_wall_ms records both wall-clock times.
//
// The output also embeds the micro-benchmarks guarding the three hot
// layers rebuilt by the allocation-free overhaul: the event engine's
// schedule+fire loop, the Bloom signature intersect/union fast paths, and
// the pooled chunk access loop.
//
// scripts/perfdiff.sh compares two of these files and fails on
// regressions past its thresholds; see `make perfdiff`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"bulksc/experiments"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/sweepsrv"
)

// Bench is one benchmark's measurement.
type Bench struct {
	Name      string  `json:"name"`
	N         int     `json:"n"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  float64 `json:"allocs_per_op"`
	BytesOp   float64 `json:"bytes_per_op"`
	ExtraKeys any     `json:"extra,omitempty"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	GOARCH      string             `json:"goarch"`
	NumCPU      int                `json:"num_cpu"`
	BenchWork   int                `json:"bench_work"`
	Fig9        Bench              `json:"fig9"`         // cold: fresh machine per simulation
	Fig9Warm    Bench              `json:"fig9_warm"`    // warm: one reused machine per worker (default mode)
	Fig9GeoMean map[string]float64 `json:"fig9_geomean"` // variant → perf vs RC
	// SweepWallMs records the wall-clock milliseconds of one full Fig9
	// sweep in each execution mode (NsPerOp/1e6 of the corresponding
	// entry, duplicated here so dashboards need no arithmetic).
	SweepWallMs map[string]float64 `json:"sweep_wall_ms"`
	// Scaling holds the big-machine scaling curve: BSC_dypvt radix at
	// increasing machine sizes with the default arbiter tier and G-arbiter
	// shards for each size, at a reduced per-thread budget so the 256-proc
	// point stays cheap.
	Scaling []ScalingCell `json:"scaling,omitempty"`
	// Loadtest is the sweepd service baseline: the seeded load harness
	// (the same code path as `sweepd -loadtest`) run against an in-process
	// server — end-to-end latency percentiles, throughput and cache-hit
	// rate for a fixed request mix. Wall-clock latencies are machine-
	// dependent like every other number here; the mix itself is seeded and
	// reproducible.
	Loadtest *sweepsrv.LoadReport `json:"loadtest,omitempty"`
	Micro    []Bench              `json:"micro"`
}

// ScalingCell is one point of the scaling curve in the JSON schema.
// WallMs/EventsPerSec are per-cell simulator cost (host wall-clock and
// engine event throughput) — machine-dependent like every other wall
// number in this file, and the quantity the 256-proc perf gate watches.
type ScalingCell struct {
	App           string  `json:"app"`
	Procs         int     `json:"procs"`
	Arbiters      int     `json:"arbiters"`
	Shards        int     `json:"shards"`
	Cycles        uint64  `json:"cycles"`
	SquashedPct   float64 `json:"squashed_pct"`
	AvgPendingW   float64 `json:"avg_pending_w"`
	NonEmptyWPct  float64 `json:"non_empty_w_pct"`
	GArbSharePct  float64 `json:"garb_share_pct"`
	BytesPerInstr float64 `json:"bytes_per_instr"`
	WallMs        float64 `json:"wall_ms"`
	EventsPerSec  float64 `json:"events_per_sec"`
}

func measure(name string, f func(b *testing.B)) Bench {
	r := testing.Benchmark(f)
	return Bench{
		Name:     name,
		N:        r.N,
		NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsOp: float64(r.AllocsPerOp()),
		BytesOp:  float64(r.AllocedBytesPerOp()),
	}
}

func main() {
	var (
		out  = flag.String("o", "BENCH_core.json", "output file")
		work = flag.Int("work", 60_000, "per-thread instruction budget for the Fig9 sweep")
		seed = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	rep := Report{
		//lint:deterministic report metadata timestamp; never feeds simulation state or goldens
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		BenchWork:   *work,
	}

	// Headline: the Figure 9 sweep, the acceptance benchmark for perf PRs,
	// measured cold (comparable with historical baselines) and warm (the
	// default execution mode).
	var gm experiments.Fig9Row
	// A single Fig9 sweep takes well over testing's 1 s benchtime, so
	// testing.Benchmark settles at N=1 — one full sweep, measured.
	fig9 := func(cold bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig9(experiments.Params{Work: *work, Seed: *seed, Cold: cold})
				if err != nil {
					b.Fatal(err)
				}
				gm = experiments.Fig9GeoMeanRow(rows)
			}
		}
	}
	rep.Fig9 = measure("BenchmarkFig9", fig9(true))
	rep.Fig9Warm = measure("BenchmarkFig9Warm", fig9(false))
	rep.Fig9GeoMean = gm.Speedup
	rep.SweepWallMs = map[string]float64{
		"cold": rep.Fig9.NsPerOp / 1e6,
		"warm": rep.Fig9Warm.NsPerOp / 1e6,
	}

	// The scaling curve: radix at every machine size of the study, reduced
	// per-thread budget (the 256-proc machine runs 256× that many
	// instructions in total).
	points, err := experiments.Scaling(
		experiments.Params{Apps: []string{"radix"}, Work: *work / 10, Seed: *seed},
		[]int{8, 16, 64, 256})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json: scaling:", err)
		os.Exit(1)
	}
	for _, p := range points {
		rep.Scaling = append(rep.Scaling, ScalingCell{
			App: p.App, Procs: p.Procs, Arbiters: p.Arbiters, Shards: p.Shards,
			Cycles: p.Cycles, SquashedPct: p.SquashedPct,
			AvgPendingW: p.AvgPendingW, NonEmptyWPct: p.NonEmptyWPct,
			GArbSharePct: p.GArbSharePct, BytesPerInstr: p.BytesPerInstr,
			WallMs: p.WallMs, EventsPerSec: p.EventsPerSec,
		})
	}

	// The service baseline: a small fixed load-test against sweepd's server
	// core (2 warm workers, 8-deep queue, 24 seeded requests), recording
	// p50/p95/p99, throughput and the cache-hit rate.
	lrep, err := sweepsrv.RunLoadTest(sweepsrv.LoadOptions{
		Requests: 24, Concurrency: 4, Seed: *seed, Work: *work / 30,
		Server: sweepsrv.Config{Workers: 2, QueueDepth: 8},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json: loadtest:", err)
		os.Exit(1)
	}
	rep.Loadtest = lrep

	// Micro-benchmarks over the rebuilt hot layers (inlined equivalents of
	// the *_test.go benchmarks, so this binary needs no test linkage).
	rep.Micro = append(rep.Micro,
		measure("BenchmarkEngineSchedule", func(b *testing.B) {
			e := sim.NewEngine(1)
			var fire func(any)
			fire = func(arg any) {
				c := arg.(*int)
				*c++
				e.AfterCall(sim.Time(1+*c%7), fire, arg)
			}
			counters := make([]int, 64)
			for i := range counters {
				e.AfterCall(sim.Time(i%5+1), fire, &counters[i])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		}),
		measure("BenchmarkBloomIntersect", func(b *testing.B) {
			x, y := sig.NewBloom(), sig.NewBloom()
			for i := 0; i < 30; i++ {
				x.Add(mem.Line(i * 3))
				y.Add(mem.Line(i*3 + 100000))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Intersects(y)
			}
		}),
		measure("BenchmarkBloomUnion", func(b *testing.B) {
			acc, w := sig.NewBloom(), sig.NewBloom()
			for i := 0; i < 30; i++ {
				w.Add(mem.Line(i * 17))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.UnionWith(w)
				if i%256 == 0 {
					acc.Clear()
				}
			}
		}),
	)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: Fig9 cold %.0f ns/op %.0f allocs/op, warm %.0f ns/op %.0f allocs/op, geomean dypvt=%.3f\n",
		*out, rep.Fig9.NsPerOp, rep.Fig9.AllocsOp,
		rep.Fig9Warm.NsPerOp, rep.Fig9Warm.AllocsOp, rep.Fig9GeoMean["dypvt"])
	fmt.Printf("loadtest: %d req, p50 %.1f ms, p95 %.1f ms, %.1f rps, cache-hit rate %.2f\n",
		rep.Loadtest.Requests, rep.Loadtest.P50Ms, rep.Loadtest.P95Ms,
		rep.Loadtest.ThroughputRPS, rep.Loadtest.CacheHitRate)
}

// Command bulksim runs one simulation: an application from the paper's
// evaluation suite on one machine configuration, printing the runtime and
// the characterization statistics behind the paper's Tables 3 and 4.
//
// Usage:
//
//	bulksim -app radix -variant dypvt -procs 8 -work 120000 -chunk 1000
//
// Variants: sc, rc, sc++, base, dypvt, stpvt, exact (see Table 2).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bulksc"
)

func main() {
	var (
		app      = flag.String("app", "fft", "application: "+strings.Join(bulksc.Apps(), ", "))
		variant  = flag.String("variant", "dypvt", "configuration: "+strings.Join(bulksc.Variants(), ", "))
		procs    = flag.Int("procs", 8, "processor count")
		work     = flag.Int("work", 120_000, "dynamic instructions per thread")
		chunk    = flag.Int("chunk", 1000, "chunk size in instructions (BulkSC)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		arbs     = flag.Int("arbiters", 1, "arbiter/directory modules")
		check    = flag.Bool("check", true, "run the SC replay checker (BulkSC)")
		verbose  = flag.Bool("v", false, "print the full statistics block")
		timeline = flag.Bool("timeline", false, "render the commit/squash timeline (BulkSC)")
	)
	flag.Parse()

	cfg := bulksc.Variant(*app, *variant)
	cfg.Procs = *procs
	cfg.Work = *work
	cfg.ChunkSize = *chunk
	cfg.Seed = *seed
	cfg.NumArbiters = *arbs
	if cfg.Model == bulksc.ModelBulk {
		cfg.CheckSC = *check
		cfg.RecordTimeline = *timeline
	}
	if cfg.Model == bulksc.ModelBulk || cfg.Model == bulksc.ModelSC {
		cfg.Witness = *check
	}

	res, err := bulksc.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bulksim:", err)
		os.Exit(1)
	}
	s := res.Stats
	fmt.Printf("%s / %s: %d cycles, %d instructions committed (%.2f IPC/core)\n",
		*app, *variant, res.Cycles, s.CommittedInstrs,
		float64(s.CommittedInstrs)/float64(res.Cycles)/float64(*procs))
	if len(res.WitnessViolations) > 0 {
		fmt.Println("SC WITNESS VIOLATIONS:")
		for _, v := range res.WitnessViolations {
			fmt.Println(" ", v)
		}
		os.Exit(2)
	}
	if cfg.Witness {
		fmt.Printf("SC witness verified: %d chunks, %d accesses\n", res.WitnessChunks, res.WitnessAccesses)
	}
	if cfg.Model == bulksc.ModelBulk {
		if len(res.SCViolations) > 0 {
			fmt.Println("SC VIOLATIONS:")
			for _, v := range res.SCViolations {
				fmt.Println(" ", v)
			}
			os.Exit(2)
		}
		if *check {
			fmt.Printf("sequential consistency verified over %d committed chunks\n", res.ChunksChecked)
		}
		fmt.Printf("chunks=%d squashed=%.2f%% (true=%d aliased=%d)  sets R=%.1f W=%.2f privW=%.1f\n",
			s.Chunks, s.SquashedPct(), s.SquashesTrue, s.SquashesAliased,
			s.AvgReadSet(), s.AvgWriteSet(), s.AvgPrivWriteSet())
		fmt.Printf("commits: empty-W=%.1f%% R-sig-required=%.1f%% pendingW=%.2f non-empty-list=%.1f%%\n",
			s.EmptyWSigPct(), s.RSigRequiredPct(), s.AvgPendingWSigs(), s.NonEmptyWListPct())
		fmt.Printf("directory: lookups/commit=%.1f unnecessary=%.1f%% updates-unnecessary=%.2f%% nodes/Wsig=%.2f\n",
			s.LookupsPerCommit(), s.UnnecessaryLookupPct(), s.UnnecessaryUpdatePct(), s.NodesPerWSig())
	}
	fmt.Printf("traffic: total=%d bytes", s.TotalTraffic())
	for _, c := range bulksc.TrafficCategories() {
		fmt.Printf("  %s=%d", c, s.TrafficBytes[c])
	}
	fmt.Println()
	if *timeline && cfg.Model == bulksc.ModelBulk {
		fmt.Println()
		fmt.Print(res.Timeline.Lanes(*procs, 100))
		fmt.Println()
		fmt.Print(res.Timeline.Summary(*procs))
	}
	if *verbose {
		fmt.Printf("L1 hits=%d misses=%d  L2 hits=%d misses=%d  writebacks=%d prefetches=%d\n",
			s.L1Hits, s.L1Misses, s.L2Hits, s.L2Misses, s.Writebacks, s.Prefetches)
		fmt.Printf("privbuf: supplies=%d overflows=%d restores=%d  extra-invs=%d  bounces=%d\n",
			s.PrivBufSupplies, s.PrivBufOverflows, s.PrivBufRestores, s.ExtraCacheInvs, s.ReadBounces)
		fmt.Printf("forward progress: shrinks=%d pre-arbitrations=%d set-overflow-cuts=%d\n",
			s.ChunkShrinks, s.PreArbitrations, s.SetOverflowCuts)
		fmt.Printf("per-proc completion cycles: %v\n", res.PerProc)
	}
}

// Command simlint is the repository's static-invariant gate: a
// multichecker driving the analysis passes under internal/analysis over
// the simulator's sources. It is wired into `make lint` and
// scripts/check.sh; a non-zero exit blocks the PR.
//
// Usage:
//
//	go run ./cmd/simlint [flags] [packages]
//
// With no package patterns it checks ./... from the current directory.
//
// Flags:
//
//	-only p1,p2     run only the named passes
//	-scope a,b      import-path prefixes the determinism pass is limited
//	                to (default: the whole module; narrow it when
//	                experimenting with intentionally nondeterministic code)
//	-json           emit findings as a JSON array on stdout instead of
//	                the file:line:col text form
//	-list           print the available passes and exit
//
// The syntactic passes (determinism, hotpathalloc, poolhygiene,
// statsnapshot) enforce per-line invariants; the flow-sensitive tier
// (poolflow, hashneutral, waiterpair) proves path properties over
// lintkit's CFG — pooled-resource ownership, observer hash-neutrality,
// and wait-queue registration/removal pairing. After the passes run, any
// `//lint:` suppression that no longer suppresses anything is reported
// as a finding of the synthetic pass "stalesuppress": a justification
// that outlived the code it excused must be deleted, not shipped.
//
// Exit code contract (stable, scripts depend on it):
//
//	0  clean — no findings
//	1  findings were reported (including stale suppressions)
//	2  usage or load error (bad flag, unknown pass, packages failed to
//	   parse or type-check)
//
// See DESIGN.md §9 and §14 for the invariant each pass enforces and the
// //sim:hotpath, //sim:accumulator, //sim:pool, //sim:observer,
// //sim:observes, //sim:waitq, //lint:deterministic, //lint:alloc,
// //lint:poolsafe, //lint:owner, //lint:observer and //lint:waiter
// annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bulksc/internal/analysis/determinism"
	"bulksc/internal/analysis/hashneutral"
	"bulksc/internal/analysis/hotpathalloc"
	"bulksc/internal/analysis/lintkit"
	"bulksc/internal/analysis/poolflow"
	"bulksc/internal/analysis/poolhygiene"
	"bulksc/internal/analysis/statsnapshot"
	"bulksc/internal/analysis/waiterpair"
)

var all = []*lintkit.Analyzer{
	determinism.Analyzer,
	hotpathalloc.Analyzer,
	poolhygiene.Analyzer,
	statsnapshot.Analyzer,
	poolflow.Analyzer,
	hashneutral.Analyzer,
	waiterpair.Analyzer,
}

// jsonFinding is the -json wire form of one finding. The schema is part
// of the tool's contract: file (cwd-relative when possible), 1-based
// line/col, pass name, message.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated pass names to run (default: all)")
	scope := flag.String("scope", "bulksc",
		"import-path prefixes the determinism pass is limited to")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "list available passes and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-14s %s\n", "stalesuppress",
			"report //lint: suppressions that no longer suppress anything (runs after the selected passes)")
		return
	}

	analyzers := all
	if *only != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		analyzers = nil
		for _, a := range all {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		delete(want, "stalesuppress") // implied by whichever passes run
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		for _, n := range unknown {
			fmt.Fprintf(os.Stderr, "simlint: unknown pass %q (use -list)\n", n)
		}
		if len(unknown) > 0 {
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	prog, err := lintkit.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	var scopes []string
	for _, s := range strings.Split(*scope, ",") {
		if s = strings.TrimSpace(s); s != "" {
			scopes = append(scopes, s)
		}
	}
	filter := func(a *lintkit.Analyzer, pkg *lintkit.Package) bool {
		if a != determinism.Analyzer {
			return true
		}
		for _, s := range scopes {
			if pkg.ImportPath == s || strings.HasPrefix(pkg.ImportPath, s+"/") ||
				strings.HasPrefix(pkg.ImportPath, s) {
				return true
			}
		}
		return false
	}

	reg := lintkit.NewDirectiveRegistry()
	findings, err := lintkit.RunWithRegistry(prog.Roots(), analyzers, filter, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	// A suppression only counts as stale when the pass that would honor it
	// actually scanned its file, which is exactly the set the registry
	// recorded. Deleting the comment is the fix; there is no suppressing a
	// stale-suppression finding.
	for _, d := range reg.Stale() {
		findings = append(findings, lintkit.Finding{
			Analyzer: "stalesuppress",
			Pos:      d.Pos,
			Message: fmt.Sprintf("stale suppression %s: no longer suppresses any finding (delete it: %q)",
				d.Marker, d.Text),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	relName := func(name string) string {
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:    relName(f.Pos.Filename),
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Pass:    f.Analyzer,
				Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s (%s)\n", relName(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// Command simlint is the repository's static-invariant gate: a
// multichecker driving the four analysis passes under internal/analysis
// (determinism, poolhygiene, hotpathalloc, statsnapshot) over the
// simulator's sources. It is wired into `make lint` and scripts/check.sh;
// a non-zero exit blocks the PR.
//
// Usage:
//
//	go run ./cmd/simlint [flags] [packages]
//
// With no package patterns it checks ./... from the current directory.
//
// Flags:
//
//	-only p1,p2     run only the named passes
//	-scope a,b      import-path prefixes the determinism pass is limited
//	                to (default: the simulation core — internal/ and
//	                experiments/; cmd/ tools may read the wall clock)
//	-list           print the available passes and exit
//
// See DESIGN.md §9 for the invariant each pass enforces and the
// //sim:hotpath, //sim:accumulator, //lint:deterministic, //lint:alloc
// and //lint:poolsafe annotations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bulksc/internal/analysis/determinism"
	"bulksc/internal/analysis/hotpathalloc"
	"bulksc/internal/analysis/lintkit"
	"bulksc/internal/analysis/poolhygiene"
	"bulksc/internal/analysis/statsnapshot"
)

var all = []*lintkit.Analyzer{
	determinism.Analyzer,
	hotpathalloc.Analyzer,
	poolhygiene.Analyzer,
	statsnapshot.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated pass names to run (default: all)")
	scope := flag.String("scope", "bulksc/internal,bulksc/experiments",
		"import-path prefixes the determinism pass is limited to")
	list := flag.Bool("list", false, "list available passes and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		analyzers = nil
		for _, a := range all {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "simlint: unknown pass %q (use -list)\n", n)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	prog, err := lintkit.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	var scopes []string
	for _, s := range strings.Split(*scope, ",") {
		if s = strings.TrimSpace(s); s != "" {
			scopes = append(scopes, s)
		}
	}
	filter := func(a *lintkit.Analyzer, pkg *lintkit.Package) bool {
		if a != determinism.Analyzer {
			return true
		}
		for _, s := range scopes {
			if pkg.ImportPath == s || strings.HasPrefix(pkg.ImportPath, s+"/") ||
				strings.HasPrefix(pkg.ImportPath, s) {
				return true
			}
		}
		return false
	}

	findings, err := lintkit.Run(prog.Roots(), analyzers, filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

package bulksc

import "bulksc/internal/workload"

// Litmus-test constructors, re-exported for examples and downstream
// consistency testing. Each returns a Program to pass to RunProgram; the
// replay checker (Config.CheckSC) validates BulkSC outcomes.

// StoreBuffering is the SB litmus test: T0 stores x then loads y; T1
// stores y then loads x. SC forbids both loads observing the initial
// values.
func StoreBuffering(pad int) *Program { return workload.StoreBuffering(pad) }

// MessagePassing is the MP litmus test: a data write followed by a flag
// write, raced by a reader. SC forbids seeing the flag without the data.
func MessagePassing(pad int) *Program { return workload.MessagePassing(pad) }

// IRIW is the independent-reads-of-independent-writes test: two writers,
// two readers; SC forbids the readers disagreeing on the write order.
func IRIW(pad int) *Program { return workload.IRIW(pad) }

// DekkerLock stresses chunked test-and-set mutual exclusion.
func DekkerLock(iters, nthreads int) *Program { return workload.DekkerLock(iters, nthreads) }

// CoherenceOrder hammers one word from four threads; the replay checker
// validates a single write serialization order.
func CoherenceOrder(iters int) *Program { return workload.CoherenceOrder(iters) }

// LoadBuffering is the LB litmus test (load→store order).
func LoadBuffering(pad int) *Program { return workload.LoadBuffering(pad) }

// WRC is the write-to-read-causality litmus test.
func WRC(pad int) *Program { return workload.WRC(pad) }

// CoRR is the coherence read-read litmus test.
func CoRR(pad int) *Program { return workload.CoRR(pad) }

package bulksc_test

import (
	"fmt"
	"testing"

	"bulksc"
)

func TestAPIRoundTrip(t *testing.T) {
	cfg := bulksc.DefaultConfig("water-sp")
	cfg.Work = 15_000
	res, err := bulksc.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if len(res.SCViolations) > 0 {
		t.Fatalf("SC violated: %s", res.SCViolations[0])
	}
	if res.Stats.Chunks == 0 {
		t.Fatal("no chunks committed")
	}
}

func TestVariantsCoverTable2(t *testing.T) {
	for _, v := range bulksc.Variants() {
		cfg := bulksc.Variant("fft", v)
		switch v {
		case "sc":
			if cfg.Model != bulksc.ModelSC {
				t.Errorf("%s: model %v", v, cfg.Model)
			}
		case "rc":
			if cfg.Model != bulksc.ModelRC {
				t.Errorf("%s: model %v", v, cfg.Model)
			}
		case "sc++":
			if cfg.Model != bulksc.ModelSCpp {
				t.Errorf("%s: model %v", v, cfg.Model)
			}
		case "base":
			if cfg.Model != bulksc.ModelBulk || cfg.Dypvt || cfg.Stpvt {
				t.Errorf("%s misconfigured: %+v", v, cfg)
			}
		case "dypvt":
			if !cfg.Dypvt {
				t.Errorf("%s misconfigured", v)
			}
		case "stpvt":
			if !cfg.Stpvt || cfg.Dypvt {
				t.Errorf("%s misconfigured", v)
			}
		case "exact":
			if cfg.SigKind != bulksc.SigExact {
				t.Errorf("%s misconfigured", v)
			}
		}
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown variant did not panic")
		}
	}()
	bulksc.Variant("fft", "nonesuch")
}

func TestAppListsConsistent(t *testing.T) {
	if len(bulksc.Apps()) != len(bulksc.Splash2())+len(bulksc.Commercial()) {
		t.Fatal("app lists inconsistent")
	}
	seen := map[string]bool{}
	for _, a := range bulksc.Apps() {
		if seen[a] {
			t.Fatalf("duplicate app %s", a)
		}
		seen[a] = true
	}
}

func TestLitmusConstructors(t *testing.T) {
	for name, prog := range map[string]*bulksc.Program{
		"sb":   bulksc.StoreBuffering(4),
		"mp":   bulksc.MessagePassing(4),
		"iriw": bulksc.IRIW(4),
		"lock": bulksc.DekkerLock(5, 4),
		"co":   bulksc.CoherenceOrder(10),
	} {
		if len(prog.Threads) == 0 {
			t.Errorf("%s: empty program", name)
		}
	}
}

// ExampleRun demonstrates the one-call API.
func ExampleRun() {
	cfg := bulksc.DefaultConfig("water-sp")
	cfg.Work = 10_000
	res, err := bulksc.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("SC violations:", len(res.SCViolations))
	// Output: SC violations: 0
}

package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAndPageArithmetic(t *testing.T) {
	cases := []struct {
		a    Addr
		line Line
		widx int
	}{
		{0, 0, 0},
		{8, 0, 1},
		{31, 0, 3},
		{32, 1, 0},
		{0x1000, 0x80, 0},
		{0x1038, 0x81, 3},
	}
	for _, c := range cases {
		if got := c.a.LineOf(); got != c.line {
			t.Errorf("LineOf(%#x) = %v, want %v", uint64(c.a), got, c.line)
		}
		if got := c.a.WordIndex(); got != c.widx {
			t.Errorf("WordIndex(%#x) = %d, want %d", uint64(c.a), got, c.widx)
		}
	}
}

func TestLineRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw).Align()
		return a.LineOf().Addr() <= a && a < a.LineOf().Addr()+LineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionsDisjoint(t *testing.T) {
	if HeapBase+HeapSize > StackBase {
		t.Fatal("heap overlaps stacks")
	}
	if StackAddr(63, StackSize-8) >= SyncBase {
		t.Fatal("stacks overlap sync region for 64 threads")
	}
}

func TestStackAddrClassification(t *testing.T) {
	for tid := 0; tid < 16; tid++ {
		a := StackAddr(tid, 1234)
		if !IsStack(a) {
			t.Errorf("StackAddr(%d) not classified as stack", tid)
		}
		if IsSync(a) {
			t.Errorf("StackAddr(%d) classified as sync", tid)
		}
	}
	if IsStack(HeapAddr(100)) {
		t.Error("heap address classified as stack")
	}
	if !IsSync(SyncAddr(3)) {
		t.Error("sync address not classified as sync")
	}
}

func TestSyncAddrsOnDistinctLines(t *testing.T) {
	seen := make(map[Line]bool)
	for i := 0; i < 256; i++ {
		l := SyncAddr(i).LineOf()
		if seen[l] {
			t.Fatalf("sync vars share line %v", l)
		}
		seen[l] = true
	}
}

func TestPageTable(t *testing.T) {
	pt := NewPageTable()
	pt.MarkStacksPrivate(8)
	if !pt.Private(StackAddr(0, 0)) || !pt.Private(StackAddr(7, StackSize-8)) {
		t.Error("stack pages not private")
	}
	if pt.Private(HeapAddr(0)) {
		t.Error("heap page private")
	}
	if pt.Private(SyncAddr(0)) {
		t.Error("sync page private")
	}
	if !pt.PrivateLine(StackAddr(3, 4096).LineOf()) {
		t.Error("PrivateLine disagrees with Private")
	}
}

func TestMarkPrivateSpansPages(t *testing.T) {
	pt := NewPageTable()
	base := HeapAddr(0) + PageBytes/2
	pt.MarkPrivate(base, PageBytes) // straddles two pages
	if !pt.Private(base) || !pt.Private(base+PageBytes-8) {
		t.Error("straddling region not fully private")
	}
}

func TestMemoryLoadStore(t *testing.T) {
	m := NewMemory()
	if m.Load(0x1000) != 0 {
		t.Error("unwritten word not zero")
	}
	m.Store(0x1000, 42)
	if m.Load(0x1000) != 42 {
		t.Error("store not visible")
	}
	if m.Load(0x1008) != 0 {
		t.Error("adjacent word clobbered")
	}
	m.Store(0x1004, 7) // unaligned: must alias the containing word
	if m.Load(0x1000) != 7 {
		t.Error("unaligned store did not alias containing word")
	}
}

func TestMemoryLineOps(t *testing.T) {
	m := NewMemory()
	l := Addr(0x2000).LineOf()
	for i := 0; i < WordsPerLn; i++ {
		m.Store(0x2000+Addr(i*WordBytes), uint64(i+1))
	}
	vals := m.LoadLine(l)
	for i, v := range vals {
		if v != uint64(i+1) {
			t.Fatalf("LoadLine word %d = %d, want %d", i, v, i+1)
		}
	}
	var zero [WordsPerLn]uint64
	m.StoreLine(l, zero)
	if m.Load(0x2000) != 0 || m.Load(0x2018) != 0 {
		t.Error("StoreLine did not restore words")
	}
}

func TestFootprint(t *testing.T) {
	m := NewMemory()
	m.Store(0, 1)
	m.Store(8, 1)
	m.Store(8, 2) // same word
	if m.Footprint() != 2 {
		t.Fatalf("Footprint = %d, want 2", m.Footprint())
	}
}

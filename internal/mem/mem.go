// Package mem defines the simulated address space: word addresses, 32-byte
// cache lines, 4 KB pages with a private/shared attribute, and the standard
// layout (shared heap, per-thread stacks, synchronization region) that the
// workload generators allocate into.
package mem

import "fmt"

// Geometry constants shared by the whole simulator. These match the paper's
// Table 2 (32 B lines) and conventional 4 KB pages.
const (
	LineBytes  = 32
	LineShift  = 5
	WordBytes  = 8
	WordsPerLn = LineBytes / WordBytes
	PageBytes  = 4096
	PageShift  = 12
)

// Addr is a byte address in the simulated address space. Workloads issue
// word-aligned accesses; the consistency machinery operates on lines.
type Addr uint64

// Line is a cache-line address (byte address >> LineShift).
type Line uint64

// Page is a page number (byte address >> PageShift).
type Page uint64

// LineOf returns the cache line containing a.
func (a Addr) LineOf() Line { return Line(a >> LineShift) }

// PageOf returns the page containing a.
func (a Addr) PageOf() Page { return Page(a >> PageShift) }

// WordIndex returns the index of a's word within its line.
func (a Addr) WordIndex() int { return int(a>>3) & (WordsPerLn - 1) }

// Align returns a aligned down to its word.
func (a Addr) Align() Addr { return a &^ (WordBytes - 1) }

// Addr returns the first byte address of the line.
func (l Line) Addr() Addr { return Addr(l) << LineShift }

// PageOf returns the page containing the line.
func (l Line) PageOf() Page { return Page(l >> (PageShift - LineShift)) }

func (l Line) String() string { return fmt.Sprintf("L%#x", uint64(l)) }

// Address-space layout. Each region is far enough from the others that
// lines never straddle regions. Stacks are per-thread, 1 MB apart.
const (
	HeapBase  Addr = 0x0000_1000_0000
	HeapSize       = 512 << 20
	StackBase Addr = 0x0000_7000_0000
	StackSize      = 1 << 20 // per-thread
	SyncBase  Addr = 0x0000_F000_0000
	SyncSize       = 1 << 20
)

// StackAddr returns an address within thread tid's stack region at offset
// off (wrapped into the hot part of the region and word-aligned). Each
// thread's stack top carries a per-thread scatter, as OS stack
// randomization provides: without it, the 1 MB stack stride is a multiple
// of the signature's address window and different threads' stacks would
// alias perfectly in signature space.
func StackAddr(tid int, off uint64) Addr {
	scatter := (uint64(tid) * 2654435761) % (StackSize / 2)
	scatter &^= LineBytes - 1
	return (StackBase + Addr(uint64(tid)*StackSize+scatter) + Addr(off%(StackSize/2))).Align()
}

// HeapAddr returns a word-aligned heap address at offset off (wrapped).
func HeapAddr(off uint64) Addr { return (HeapBase + Addr(off%HeapSize)).Align() }

// SyncAddr returns the address of synchronization variable i. Each sync
// variable gets its own cache line to avoid false sharing between locks.
func SyncAddr(i int) Addr { return SyncBase + Addr(i)*LineBytes }

// IsStack reports whether a falls in any thread's stack region. Used by the
// statically-private-data optimization (BSC_stpvt), which treats all stack
// references as private, exactly as the paper's evaluation does.
func IsStack(a Addr) bool { return a >= StackBase && a < SyncBase }

// IsSync reports whether a falls in the synchronization region.
func IsSync(a Addr) bool { return a >= SyncBase }

// PageTable records the static private/shared page attribute checked "at
// address translation time" (paper §5.1). Pages default to shared.
type PageTable struct {
	private map[Page]bool
}

// NewPageTable returns an empty page table (all pages shared).
func NewPageTable() *PageTable { return &PageTable{private: make(map[Page]bool)} }

// Reset returns every page to shared in place; the next run re-marks its
// own private regions (MarkStacksPrivate is per-config).
func (pt *PageTable) Reset() {
	clear(pt.private)
}

// MarkPrivate marks every page overlapping [base, base+size) as private.
func (pt *PageTable) MarkPrivate(base Addr, size uint64) {
	for p := base.PageOf(); p <= (base + Addr(size) - 1).PageOf(); p++ {
		pt.private[p] = true
	}
}

// MarkStacksPrivate marks all nthreads stack regions private, the policy
// the paper uses for BSC_stpvt.
func (pt *PageTable) MarkStacksPrivate(nthreads int) {
	for t := 0; t < nthreads; t++ {
		pt.MarkPrivate(StackAddr(t, 0), StackSize)
	}
}

// Private reports whether a lies on a private page.
func (pt *PageTable) Private(a Addr) bool { return pt.private[a.PageOf()] }

// PrivateLine reports whether line l lies on a private page.
func (pt *PageTable) PrivateLine(l Line) bool { return pt.private[l.PageOf()] }

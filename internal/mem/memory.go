package mem

// Memory is the simulated global (committed) memory state, tracked at word
// granularity. The simulator stores abstract uint64 values rather than real
// program data: workloads write distinct tokens, which lets the SC replay
// checker verify exactly which store each load observed.
//
// Memory represents only the architecturally committed state. Speculative
// chunk updates live in per-chunk write buffers (internal/chunk) until
// commit, per the paper's Rule1.
type Memory struct {
	words map[Addr]uint64
}

// NewMemory returns zero-initialized memory.
func NewMemory() *Memory { return &Memory{words: make(map[Addr]uint64)} }

// Reset forgets all committed state in place, retaining the map's bucket
// storage so a warm machine reuse refills it without rehashing growth. Map
// iteration never orders any simulated event (loads and stores are keyed
// lookups), so retained capacity cannot perturb determinism.
func (m *Memory) Reset() {
	clear(m.words)
}

// Load returns the committed value of the word containing a. Unwritten
// words read as zero.
func (m *Memory) Load(a Addr) uint64 { return m.words[a.Align()] }

// Store sets the committed value of the word containing a.
func (m *Memory) Store(a Addr, v uint64) { m.words[a.Align()] = v }

// LoadLine returns the committed values of all words of line l, used when a
// whole line must be checkpointed (the dypvt private buffer).
func (m *Memory) LoadLine(l Line) [WordsPerLn]uint64 {
	var vals [WordsPerLn]uint64
	base := l.Addr()
	for i := 0; i < WordsPerLn; i++ {
		vals[i] = m.words[base+Addr(i*WordBytes)]
	}
	return vals
}

// StoreLine writes a whole line of word values, used when restoring a line
// from the private buffer after a squash.
func (m *Memory) StoreLine(l Line, vals [WordsPerLn]uint64) {
	base := l.Addr()
	for i := 0; i < WordsPerLn; i++ {
		m.words[base+Addr(i*WordBytes)] = vals[i]
	}
}

// Footprint returns the number of distinct words ever written, a cheap
// sanity metric for workload generators.
func (m *Memory) Footprint() int { return len(m.words) }

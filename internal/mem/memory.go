package mem

// Memory is the simulated global (committed) memory state, tracked at word
// granularity. The simulator stores abstract uint64 values rather than real
// program data: workloads write distinct tokens, which lets the SC replay
// checker verify exactly which store each load observed.
//
// Memory represents only the architecturally committed state. Speculative
// chunk updates live in per-chunk write buffers (internal/chunk) until
// commit, per the paper's Rule1.
//
// Storage is an open-addressed hash table keyed by cache line, with the
// line's WordsPerLn word values stored contiguously per slot. Load/Store
// sit on the simulator's hottest leaf path (every perform, drain, and
// sync-variable spin goes through them); one multiplicative hash plus a
// linear probe over a flat array beats the general-purpose map it
// replaces, and line granularity makes LoadLine/StoreLine a single probe
// instead of WordsPerLn lookups. Lookup position is a pure function of
// table contents — nothing iterates the table — so the layout cannot
// perturb determinism.
type Memory struct {
	keys []uint64 // line+1 per slot; 0 = empty. Power-of-two length.
	// vals keeps WordsPerLn words per slot, parallel to keys. Stale values
	// are unreachable behind cleared keys and re-zeroed by claim at reuse.
	//lint:poolsafe values behind empty keys are unreachable; claim re-zeroes the slot on insert
	vals []uint64
	wrt  []uint8 // per-slot bitmask of words ever written (Footprint)
	n    int     // occupied slots
	nw   int     // distinct words ever written
	// shift turns the slot hash into an index: 64 - log2(len(keys)). It
	// tracks the retained table capacity, which Reset keeps on purpose.
	//lint:poolsafe capacity descriptor for the retained storage Reset deliberately keeps
	shift uint
}

// memInitSlots is the initial line capacity; the table doubles at 3/4
// occupancy, so it never fills and probes always terminate.
const memInitSlots = 1 << 12

// NewMemory returns zero-initialized memory.
func NewMemory() *Memory {
	m := &Memory{}
	m.alloc(memInitSlots)
	return m
}

func (m *Memory) alloc(slots int) {
	m.keys = make([]uint64, slots)
	m.vals = make([]uint64, slots*WordsPerLn)
	m.wrt = make([]uint8, slots)
	m.shift = 64
	for s := slots; s > 1; s >>= 1 {
		m.shift--
	}
}

// Reset forgets all committed state in place, retaining the table's
// storage so a warm machine reuse refills it without rehashing growth.
// Only the keys and written-word masks are scrubbed; stale values are
// unreachable behind empty keys and are zeroed again slot-by-slot as
// lines are claimed.
func (m *Memory) Reset() {
	clear(m.keys)
	clear(m.wrt)
	m.n = 0
	m.nw = 0
}

// find returns the slot holding line l, or the empty slot where it would
// be inserted. The table is kept below 3/4 full, so the probe terminates.
//
//sim:hotpath
func (m *Memory) find(l uint64) int {
	k := l + 1
	i := int((k * 0x9E3779B97F4A7C15) >> m.shift)
	idxMask := len(m.keys) - 1
	for {
		kk := m.keys[i]
		if kk == k || kk == 0 {
			return i
		}
		i = (i + 1) & idxMask
	}
}

// claim returns the slot for line l, inserting (and zero-filling) it if
// absent, growing the table first when the next insert could cross 3/4
// occupancy.
//
//sim:hotpath
func (m *Memory) claim(l uint64) int {
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
	}
	i := m.find(l)
	if m.keys[i] == 0 {
		m.keys[i] = l + 1
		m.n++
		base := i * WordsPerLn
		for j := base; j < base+WordsPerLn; j++ {
			m.vals[j] = 0
		}
	}
	return i
}

// grow doubles the table and reinserts every live slot. Slot positions in
// the new table are again a pure function of the keys present.
func (m *Memory) grow() {
	oldKeys, oldVals, oldWrt := m.keys, m.vals, m.wrt
	m.alloc(2 * len(oldKeys))
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := m.find(k - 1)
		m.keys[j] = k
		m.wrt[j] = oldWrt[i]
		copy(m.vals[j*WordsPerLn:(j+1)*WordsPerLn], oldVals[i*WordsPerLn:(i+1)*WordsPerLn])
	}
}

// Load returns the committed value of the word containing a. Unwritten
// words read as zero.
//
//sim:hotpath
func (m *Memory) Load(a Addr) uint64 {
	i := m.find(uint64(a.LineOf()))
	if m.keys[i] == 0 {
		return 0
	}
	return m.vals[i*WordsPerLn+a.WordIndex()]
}

// Store sets the committed value of the word containing a.
//
//sim:hotpath
func (m *Memory) Store(a Addr, v uint64) {
	i := m.claim(uint64(a.LineOf()))
	w := a.WordIndex()
	if m.wrt[i]&(1<<uint(w)) == 0 {
		m.wrt[i] |= 1 << uint(w)
		m.nw++
	}
	m.vals[i*WordsPerLn+w] = v
}

// LoadLine returns the committed values of all words of line l, used when a
// whole line must be checkpointed (the dypvt private buffer).
//
//sim:hotpath
func (m *Memory) LoadLine(l Line) [WordsPerLn]uint64 {
	var vals [WordsPerLn]uint64
	i := m.find(uint64(l))
	if m.keys[i] != 0 {
		copy(vals[:], m.vals[i*WordsPerLn:(i+1)*WordsPerLn])
	}
	return vals
}

// StoreLine writes a whole line of word values, used when restoring a line
// from the private buffer after a squash.
func (m *Memory) StoreLine(l Line, vals [WordsPerLn]uint64) {
	i := m.claim(uint64(l))
	for w := 0; w < WordsPerLn; w++ {
		if m.wrt[i]&(1<<uint(w)) == 0 {
			m.wrt[i] |= 1 << uint(w)
			m.nw++
		}
		m.vals[i*WordsPerLn+w] = vals[w]
	}
}

// Footprint returns the number of distinct words ever written, a cheap
// sanity metric for workload generators.
func (m *Memory) Footprint() int { return m.nw }

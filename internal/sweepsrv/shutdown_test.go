package sweepsrv

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestGracefulShutdownDrains pins the shutdown promise with a 1-worker
// pool: the running job drains to completion, every still-queued job is
// failed with the distinct "aborted" status, their streams receive terminal
// events and close, and new submissions are refused with 503.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// j1 holds the only worker well past the whole setup window below (a
	// generous multi-cell budget, so j2/j3 are still queued at Shutdown);
	// j2 and j3 wait behind it.
	code, j1, _ := submit(t, ts.URL, `{"exp":"scaling","apps":["radix"],"procs":[8,16,64],"work":120000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit j1: HTTP %d", code)
	}
	waitStatus(t, ts.URL, j1.ID, StatusRunning)
	code, j2, _ := submit(t, ts.URL, fmt.Sprintf(`{"exp":"fig9","apps":["lu"],"work":%d}`, testWork))
	if code != http.StatusAccepted {
		t.Fatalf("submit j2: HTTP %d", code)
	}
	code, j3, _ := submit(t, ts.URL, fmt.Sprintf(`{"exp":"fig9","apps":["fft"],"work":%d}`, testWork))
	if code != http.StatusAccepted {
		t.Fatalf("submit j3: HTTP %d", code)
	}

	// A subscriber on a queued job must see its terminal event and a clean
	// stream close — shutdown must not leave streams dangling.
	streamDone := make(chan []Event, 1)
	go func() { streamDone <- readSSE(t, ts.URL, j2.ID) }()

	shutCtx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v (the drain should beat a 120s deadline)", err)
	}

	// The running job drained to completion…
	env1, _ := getResult(t, ts.URL, j1.ID)
	if env1.Status != StatusDone {
		t.Errorf("running job ended %q (%s), want done (drained)", env1.Status, env1.Error)
	}
	// …and the queued jobs were aborted, distinctly.
	for _, id := range []string{j2.ID, j3.ID} {
		env, code := getResult(t, ts.URL, id)
		if code != http.StatusOK || env.Status != StatusAborted {
			t.Errorf("queued job %s ended %q, want aborted", id, env.Status)
		}
		if !strings.Contains(env.Error, "shutting down") {
			t.Errorf("aborted job %s error %q does not say why", id, env.Error)
		}
	}

	select {
	case evs := <-streamDone:
		last := evs[len(evs)-1]
		if last.Event != "done" || last.Status != StatusAborted {
			t.Errorf("queued job's stream ended with %+v, want done/aborted", last)
		}
	case <-time.After(30 * time.Second):
		t.Error("queued job's stream did not close after shutdown")
	}

	// New submissions are refused while (and after) draining.
	code, _, _ = submit(t, ts.URL, `{"exp":"fig9","apps":["radix"]}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: HTTP %d, want 503", code)
	}
	// Healthz reports the drain; metrics account every fate.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	m := getMetrics(t, ts.URL)
	if !m.Draining || m.Completed != 1 || m.Aborted != 2 {
		t.Errorf("metrics after shutdown %+v: want draining with completed=1 aborted=2", m)
	}

	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v, want nil", err)
	}
}

// TestShutdownDeadlineCancelsRunning: when the drain deadline has already
// passed, Shutdown escalates — running jobs are canceled at their next cell
// boundary, the pool still winds down, and Shutdown reports the context
// error.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Six slow cells: the cancel lands long before the sweep could finish.
	code, j1, _ := submit(t, ts.URL, `{"exp":"scaling","apps":["radix","fft"],"procs":[8,16,64],"work":120000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitStatus(t, ts.URL, j1.ID, StatusRunning)

	expired, cancel := context.WithCancel(context.Background())
	cancel() // deadline already passed: escalate immediately
	err := srv.Shutdown(expired)
	if err != context.Canceled {
		t.Fatalf("Shutdown with expired context returned %v, want context.Canceled", err)
	}
	// Shutdown returning proves the pool wound down; the job must be
	// terminal and canceled.
	env, code := getResult(t, ts.URL, j1.ID)
	if code != http.StatusOK || env.Status != StatusCanceled {
		t.Fatalf("job after escalated shutdown: %q (HTTP %d, err %q), want canceled", env.Status, code, env.Error)
	}
	if !strings.Contains(env.Error, "canceled") {
		t.Errorf("canceled job error %q does not mention cancellation", env.Error)
	}
}

// TestShutdownEmptyServer: draining an idle server returns immediately.
func TestShutdownEmptyServer(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown of idle server: %v", err)
	}
}

// waitStatus polls /result until the job reports status (or is terminal).
func waitStatus(t *testing.T, base, id, status string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		env, code := getResult(t, base, id)
		if env.Status == status {
			return
		}
		if code == http.StatusOK { // terminal, and not the status we wanted
			t.Fatalf("job %s reached terminal %q while waiting for %q", id, env.Status, status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached status %q", id, status)
}

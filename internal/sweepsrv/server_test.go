package sweepsrv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testWork is the per-thread instruction budget used by most tests: small
// enough that a single-app job completes in tens of milliseconds, large
// enough that the simulation is non-trivial (barrier phases, chunk commits).
const testWork = 1500

// newTestServer boots a Server behind an httptest listener and tears both
// down when the test ends.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx) //nolint:errcheck // best-effort teardown
	})
	return srv, ts
}

// submit POSTs body to /sweep and decodes the response.
func submit(t *testing.T, base, body string) (int, SubmitResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sweep: %v", err)
	}
	defer resp.Body.Close()
	var sub SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp.StatusCode, sub, resp.Header
}

// waitTerminal polls GET /result/{id} until the job leaves queued/running,
// returning the terminal envelope.
func waitTerminal(t *testing.T, base, id string) ResultEnvelope {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		env, code := getResult(t, base, id)
		if code == http.StatusOK {
			return env
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state in time", id)
	return ResultEnvelope{}
}

func getResult(t *testing.T, base, id string) (ResultEnvelope, int) {
	t.Helper()
	resp, err := http.Get(base + "/result/" + id)
	if err != nil {
		t.Fatalf("GET /result/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var env ResultEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode result envelope: %v", err)
	}
	return env, resp.StatusCode
}

func getMetrics(t *testing.T, base string) Metrics {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return m
}

// readSSE reads the whole stream (it closes at the job's terminal event)
// and parses the SSE framing back into Events.
func readSSE(t *testing.T, base, id string) []Event {
	t.Helper()
	resp, err := http.Get(base + "/stream/" + id)
	if err != nil {
		t.Fatalf("GET /stream/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q, want text/event-stream", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var evName string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evName = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if ev.Event != evName {
				t.Fatalf("SSE event name %q does not match data event %q", evName, ev.Event)
			}
			evs = append(evs, ev)
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return evs
}

// TestSubmitStreamResult is the core end-to-end path: submit a job, follow
// its SSE progress stream to the terminal event, then fetch the result and
// cross-check it against the streamed rows.
func TestSubmitStreamResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, sub, _ := submit(t, ts.URL, fmt.Sprintf(`{"exp":"fig9","apps":["radix"],"work":%d}`, testWork))
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", code)
	}
	if sub.Status != StatusQueued || sub.Cache != "miss" || sub.ID == "" || len(sub.Key) != 64 {
		t.Fatalf("submit response %+v: want queued/miss with id and 64-hex key", sub)
	}

	evs := readSSE(t, ts.URL, sub.ID)
	if len(evs) < 3 {
		t.Fatalf("stream delivered %d events, want at least queued+rows+done: %+v", len(evs), evs)
	}
	if evs[0].Event != "status" || evs[0].Status != StatusQueued {
		t.Errorf("first event %+v, want status=queued", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Event != "done" || last.Status != StatusDone || last.Cache != "miss" || last.Error != "" {
		t.Fatalf("terminal event %+v, want done/done/miss", last)
	}
	var rows, running int
	for _, ev := range evs {
		switch {
		case ev.Event == "status" && ev.Status == StatusRunning:
			running++
		case ev.Event == "row":
			rows++
			if ev.App != "radix" || ev.Key == "" || ev.Total <= 0 || len(ev.Hash) != 16 {
				t.Errorf("malformed row event %+v", ev)
			}
		}
	}
	if running != 1 {
		t.Errorf("saw %d running transitions, want exactly 1", running)
	}
	if rows == 0 {
		t.Fatal("stream delivered no row events")
	}

	env := waitTerminal(t, ts.URL, sub.ID)
	if env.Status != StatusDone || env.Cache != "miss" || env.Error != "" {
		t.Fatalf("result envelope %+v, want done/miss", env)
	}
	var out JobOutput
	if err := json.Unmarshal(env.Result, &out); err != nil {
		t.Fatalf("result payload does not parse as JobOutput: %v", err)
	}
	if out.Exp != "fig9" || out.Cells != rows || len(out.Hash) != 16 || out.Table == "" {
		t.Fatalf("JobOutput{Exp:%q Cells:%d Hash:%q}: want fig9 with %d cells (one per streamed row) and a 16-hex hash",
			out.Exp, out.Cells, out.Hash, rows)
	}
	// A late subscriber replays the full history even though the job is
	// long finished.
	replay := readSSE(t, ts.URL, sub.ID)
	if len(replay) != len(evs) {
		t.Fatalf("replayed stream has %d events, original had %d", len(replay), len(evs))
	}
}

// TestCacheHitByteIdentical pins the content-addressing contract: an
// identical config submitted again (spelled differently in JSON) is served
// from the cache byte-identically, with zero additional simulation cells.
func TestCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	first := fmt.Sprintf(`{"exp":"fig10","apps":["radix"],"work":%d}`, testWork)
	code, sub1, _ := submit(t, ts.URL, first)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d, want 202", code)
	}
	env1 := waitTerminal(t, ts.URL, sub1.ID)
	if env1.Status != StatusDone {
		t.Fatalf("first job ended %q (%s), want done", env1.Status, env1.Error)
	}
	cellsBefore := getMetrics(t, ts.URL).CellsExecuted
	if cellsBefore == 0 {
		t.Fatal("first run executed zero cells?")
	}

	// Same canonical config: different field order, whitespace, explicit
	// defaults, and the cold execution hint (excluded from identity).
	second := fmt.Sprintf(`{ "work": %d, "cold": true, "seed": 1, "apps": ["radix"], "exp": "FIG10" }`, testWork)
	code, sub2, _ := submit(t, ts.URL, second)
	if code != http.StatusOK {
		t.Fatalf("second submit: HTTP %d, want 200 (cache hit is already terminal)", code)
	}
	if sub2.Cache != "hit" || sub2.Status != StatusDone {
		t.Fatalf("second submit %+v, want status=done cache=hit", sub2)
	}
	if sub2.Key != sub1.Key {
		t.Fatalf("canonically identical configs got different keys:\n  %s\n  %s", sub1.Key, sub2.Key)
	}
	if sub2.ID == sub1.ID {
		t.Fatal("cache hit reused the original job id; hits must be distinct jobs")
	}

	env2 := waitTerminal(t, ts.URL, sub2.ID)
	if env2.Cache != "hit" || env2.Status != StatusDone {
		t.Fatalf("cached envelope %+v, want done/hit", env2)
	}
	if !bytes.Equal(env1.Result, env2.Result) {
		t.Fatalf("cache hit is not byte-identical:\n first: %s\nsecond: %s", env1.Result, env2.Result)
	}

	m := getMetrics(t, ts.URL)
	if m.CellsExecuted != cellsBefore {
		t.Fatalf("cache hit executed cells: %d -> %d; a hit must run NOTHING", cellsBefore, m.CellsExecuted)
	}
	if m.ServedFromCache != 1 || m.Cache.Hits != 1 {
		t.Fatalf("metrics %+v: want served_from_cache=1, cache.hits=1", m)
	}
	// The hit job's stream is a two-event history: born queued, immediately
	// done with the cache disposition.
	evs := readSSE(t, ts.URL, sub2.ID)
	last := evs[len(evs)-1]
	if last.Event != "done" || last.Cache != "hit" {
		t.Fatalf("cached job terminal event %+v, want done with cache=hit", last)
	}
	for _, ev := range evs {
		if ev.Event == "row" {
			t.Fatalf("cached job streamed a row event %+v; hits must not re-run", ev)
		}
	}
}

// TestBackpressure429 pins the queue-full contract: with a 1-deep queue and
// one busy worker, overflow submissions answer 429 with a Retry-After hint
// and never block — and every job that WAS accepted still terminates.
func TestBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfterSeconds: 3})
	var accepted []string
	saw429 := false
	for i := 0; i < 50 && !saw429; i++ {
		body := fmt.Sprintf(`{"exp":"fig9","apps":["radix"],"work":%d,"seed":%d}`, testWork, i+1)
		start := time.Now()
		code, sub, hdr := submit(t, ts.URL, body)
		switch code {
		case http.StatusAccepted:
			accepted = append(accepted, sub.ID)
		case http.StatusTooManyRequests:
			saw429 = true
			if got := hdr.Get("Retry-After"); got != "3" {
				t.Errorf("429 Retry-After = %q, want %q", got, "3")
			}
			// "Never block": rejection must be immediate, not queued-then-
			// failed. Generous bound — this is an in-process HTTP call.
			if d := time.Since(start); d > 5*time.Second {
				t.Errorf("429 took %v; a full queue must reject immediately", d)
			}
		default:
			t.Fatalf("submit %d: unexpected HTTP %d", i, code)
		}
	}
	if !saw429 {
		t.Fatal("never saw a 429 from a 1-deep queue with a busy worker")
	}
	if len(accepted) == 0 {
		t.Fatal("saw 429 before any job was accepted?")
	}
	for _, id := range accepted {
		env := waitTerminal(t, ts.URL, id)
		if env.Status != StatusDone {
			t.Errorf("accepted job %s ended %q (%s), want done", id, env.Status, env.Error)
		}
	}
	m := getMetrics(t, ts.URL)
	if m.RejectedBusy == 0 {
		t.Error("metrics rejected_queue_full is 0 despite an observed 429")
	}
}

// TestInvalidRequests covers the 400 surface: malformed JSON, unknown
// fields, unknown experiments/apps, bad ranges, and the MaxWork cap.
func TestInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxWork: 10_000})
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"exp":`},
		{"unknown field", `{"exp":"fig9","bogus":1}`},
		{"unknown exp", `{"exp":"fig99"}`},
		{"unknown app", `{"exp":"fig9","apps":["quake"]}`},
		{"negative work", `{"exp":"fig9","work":-5}`},
		{"work over cap", `{"exp":"fig9","work":20000}`},
		{"procs out of range", `{"exp":"scaling","procs":[0]}`},
		{"arbiters out of range", `{"exp":"arbiters","arbiters":[9999]}`},
		{"bad fault campaign", `{"exp":"fig9","faults":"meteor-strike"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := submit(t, ts.URL, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400", code)
			}
		})
	}
	m := getMetrics(t, ts.URL)
	if m.RejectedInvalid != uint64(len(cases)) {
		t.Errorf("rejected_invalid = %d, want %d", m.RejectedInvalid, len(cases))
	}
	if m.CellsExecuted != 0 {
		t.Errorf("invalid requests executed %d cells", m.CellsExecuted)
	}
}

// TestNDJSONStream checks the ?format=ndjson variant: one JSON event per
// line, same history, terminal close.
func TestNDJSONStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, sub, _ := submit(t, ts.URL, fmt.Sprintf(`{"exp":"fig11","apps":["fft"],"work":%d}`, testWork))
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", code)
	}
	resp, err := http.Get(ts.URL + "/stream/" + sub.ID + "?format=ndjson")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if len(evs) == 0 || evs[len(evs)-1].Event != "done" {
		t.Fatalf("NDJSON stream ended without a terminal event: %+v", evs)
	}
	if evs[len(evs)-1].Status != StatusDone {
		t.Fatalf("job ended %q: %s", evs[len(evs)-1].Status, evs[len(evs)-1].Error)
	}
}

// TestCancel covers DELETE /job/{id} for both a queued and a running job.
func TestCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// j1 occupies the only worker well past both DELETEs below (generous
	// multi-cell budget); j2 sits behind it in the queue.
	code, j1, _ := submit(t, ts.URL, `{"exp":"scaling","apps":["radix"],"procs":[8,16,64],"work":120000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit j1: HTTP %d", code)
	}
	code, j2, _ := submit(t, ts.URL, fmt.Sprintf(`{"exp":"fig9","apps":["lu"],"work":%d}`, testWork))
	if code != http.StatusAccepted {
		t.Fatalf("submit j2: HTTP %d", code)
	}

	// Cancel the queued job: terminal immediately, and the worker that
	// later dequeues it must skip it (j2 never runs a cell for app lu).
	doDelete(t, ts.URL, j2.ID)
	env := waitTerminal(t, ts.URL, j2.ID)
	if env.Status != StatusCanceled {
		t.Fatalf("queued job after cancel: %q, want canceled", env.Status)
	}

	// Cancel the running job: the experiments layer observes the context
	// at the next cell boundary.
	doDelete(t, ts.URL, j1.ID)
	env = waitTerminal(t, ts.URL, j1.ID)
	if env.Status != StatusCanceled && env.Status != StatusDone {
		t.Fatalf("running job after cancel: %q (%s), want canceled (or done if it won the race)", env.Status, env.Error)
	}
	// Whatever the race outcome, the service must be healthy afterwards.
	code, j3, _ := submit(t, ts.URL, fmt.Sprintf(`{"exp":"fig9","apps":["fft"],"work":%d}`, testWork))
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submit: HTTP %d", code)
	}
	if env := waitTerminal(t, ts.URL, j3.ID); env.Status != StatusDone {
		t.Fatalf("post-cancel job ended %q (%s), want done", env.Status, env.Error)
	}
}

func doDelete(t *testing.T, base, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/job/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE /job/%s: %v", id, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE /job/%s: HTTP %d, want 202", id, resp.StatusCode)
	}
}

// TestHealthzAndUnknownIDs covers the small endpoints.
func TestHealthzAndUnknownIDs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h) //nolint:errcheck
	resp.Body.Close()
	if h["status"] != "ok" {
		t.Fatalf("healthz %v, want ok", h)
	}
	for _, path := range []string{"/result/j-999999", "/stream/j-999999"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

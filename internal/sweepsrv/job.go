// Package sweepsrv is the sweep-as-a-service core behind cmd/sweepd: a
// long-lived HTTP/JSON daemon wrapping the experiments layer with a
// bounded job queue (explicit 429/Retry-After backpressure), a pool of
// persistent warm workers (one experiments.Worker — warm Runner + program
// memo — per pool slot), a content-addressed LRU result cache keyed by the
// canonical config hash, SSE/NDJSON progress streaming, and graceful
// shutdown that drains running jobs and fails queued ones.
//
// This file defines the job request model: the JSON surface a client
// submits, its canonicalization (defaults materialized, fields the chosen
// experiment ignores cleared, execution hints excluded), the
// content-addressed cache key derived from the canonical form, and the
// dispatcher that executes a canonical request through the experiments
// package.
package sweepsrv

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"bulksc"
	"bulksc/experiments"
)

// Request is the JSON body of POST /sweep: which experiment to run and on
// what configuration. Every field except Exp is optional; Canonicalize
// materializes the defaults. Two requests that canonicalize identically
// are the same job and share one cache entry — field order and whitespace
// never matter (JSON decoding erases them), and neither do explicitly
// spelled-out defaults or values for fields the chosen experiment ignores.
type Request struct {
	// Exp names the experiment: fig9, fig10, table3, table4, fig11,
	// sigspace, arbiters, scaling or faults (case-insensitive).
	Exp string `json:"exp"`
	// Apps is the application subset (default: all registered apps, in
	// catalog order). Order is semantic — it is the row order of the
	// result — so it is preserved, not sorted.
	Apps []string `json:"apps,omitempty"`
	// Work is the per-thread dynamic instruction budget (default 120000).
	Work int `json:"work,omitempty"`
	// Seed drives all simulation randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Procs lists machine sizes for the experiments that take them: the
	// scaling study runs every value (default 8,16,64), the arbiter
	// ablation uses the first (default 16). Cleared for every other
	// experiment.
	Procs []int `json:"procs,omitempty"`
	// Arbiters lists the arbiter counts of the arbiters ablation
	// (default 1,2,4,8). Cleared for every other experiment.
	Arbiters []int `json:"arbiters,omitempty"`
	// Witness runs the online SC-witness checker on every SC-claiming
	// simulation of the sweep; a violation fails the job.
	Witness bool `json:"witness,omitempty"`
	// Faults names a fault-injection campaign applied to every
	// simulation (default "none"). Cleared for the faults experiment,
	// which iterates the whole campaign catalog itself.
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the fault schedule (default 1; pinned to 1 when no
	// campaign is active, since it is then meaningless).
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Cold is an execution hint, not configuration: run every cell on a
	// fresh machine instead of the pool worker's warm one. Warm reuse is
	// bit-identical by contract (golden-tested in internal/core), so
	// Cold is deliberately EXCLUDED from the cache key: a cold run may
	// be served from a warm run's cache entry and vice versa.
	Cold bool `json:"cold,omitempty"`
}

// expSpec describes which request fields an experiment consumes, so
// canonicalization can clear the ones it ignores.
type expSpec struct {
	procsList bool // consumes the whole Procs list (scaling)
	procsOne  bool // consumes only Procs[0] (arbiters)
	arbiters  bool // consumes the Arbiters list
	faults    bool // honors the Faults campaign field
	// defaultApps overrides the all-apps default for experiments with a
	// conventional smaller suite (nil = all registered apps).
	defaultApps func() []string
}

// expCatalog maps experiment names to their field usage. Insertion into
// this table is the ONLY step needed to expose a new experiments harness
// through the service.
var expCatalog = map[string]expSpec{
	"fig9":   {faults: true},
	"fig10":  {faults: true},
	"table3": {faults: true},
	"table4": {faults: true},
	"fig11":  {faults: true},
	// sigspace's conventional suite is the four signature-sensitive apps
	// the CLI sweep uses; scaling's is the two regular SPLASH-2 kernels.
	"sigspace": {faults: true, defaultApps: func() []string { return []string{"radix", "ocean", "water-sp", "sjbb2k"} }},
	"arbiters": {procsOne: true, arbiters: true, faults: true},
	"scaling":  {procsList: true, faults: true, defaultApps: experiments.ScalingApps},
	// The faults report iterates every campaign itself; the request's own
	// campaign field is ignored (and cleared), its seed honored.
	"faults": {},
}

// Exps lists the experiments the service accepts, sorted.
func Exps() []string {
	var names []string
	for n := range expCatalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Canonicalize validates the request and returns its canonical form: Exp
// lower-cased, every default materialized, and every field the experiment
// ignores reset to its zero value. The canonical form is the job's
// semantic identity — Key hashes exactly this.
func (r Request) Canonicalize() (Request, error) {
	c := r
	c.Exp = strings.ToLower(strings.TrimSpace(c.Exp))
	spec, ok := expCatalog[c.Exp]
	if !ok {
		return Request{}, fmt.Errorf("unknown experiment %q (valid: %s)", r.Exp, strings.Join(Exps(), ", "))
	}
	if len(c.Apps) == 0 {
		if spec.defaultApps != nil {
			c.Apps = spec.defaultApps()
		} else {
			c.Apps = bulksc.Apps()
		}
	} else {
		c.Apps = append([]string(nil), c.Apps...)
		valid := bulksc.Apps()
		for _, a := range c.Apps {
			if !contains(valid, a) {
				return Request{}, fmt.Errorf("unknown application %q (valid: %s)", a, strings.Join(valid, ", "))
			}
		}
	}
	if c.Work == 0 {
		c.Work = 120_000
	}
	if c.Work < 0 {
		return Request{}, fmt.Errorf("work must be positive, got %d", c.Work)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}

	switch {
	case spec.procsList:
		if len(c.Procs) == 0 {
			c.Procs = []int{8, 16, 64}
		} else {
			c.Procs = append([]int(nil), c.Procs...)
		}
	case spec.procsOne:
		if len(c.Procs) == 0 {
			c.Procs = []int{16}
		} else {
			c.Procs = c.Procs[:1:1] // only the first is consumed
		}
	default:
		c.Procs = nil
	}
	for _, n := range c.Procs {
		if n < 1 || n > bulksc.MaxProcs {
			return Request{}, fmt.Errorf("procs value %d out of range [1,%d]", n, bulksc.MaxProcs)
		}
	}

	if spec.arbiters {
		if len(c.Arbiters) == 0 {
			c.Arbiters = []int{1, 2, 4, 8}
		} else {
			c.Arbiters = append([]int(nil), c.Arbiters...)
		}
		for _, n := range c.Arbiters {
			if n < 1 || n > 64 {
				return Request{}, fmt.Errorf("arbiters value %d out of range [1,64]", n)
			}
		}
	} else {
		c.Arbiters = nil
	}

	if spec.faults {
		if c.Faults == "" {
			c.Faults = "none"
		}
		if _, err := bulksc.NewFaultPlan(c.Faults, 1); err != nil {
			return Request{}, err
		}
		if c.Faults == "none" {
			c.FaultSeed = 1 // meaningless without a campaign; pin it
		} else if c.FaultSeed == 0 {
			c.FaultSeed = 1
		}
	} else {
		c.Faults = ""
		if c.FaultSeed == 0 {
			c.FaultSeed = 1
		}
	}

	// Execution hints are not identity: a cold run is bit-identical to a
	// warm one (the PR-5 golden contract), so both share one cache key.
	c.Cold = false
	return c, nil
}

// keyVersion prefixes the hashed canonical encoding; bump it whenever the
// canonical form's meaning changes so stale cache entries can never be
// misattributed across versions.
const keyVersion = "sweepd-v1"

// Key returns the content-addressed cache key of the request: hex SHA-256
// over the versioned canonical JSON encoding. Call it on the canonical
// form (it canonicalizes defensively otherwise).
func (r Request) Key() (string, error) {
	c, err := r.Canonicalize()
	if err != nil {
		return "", err
	}
	// encoding/json emits struct fields in declaration order, so the
	// canonical encoding is deterministic byte-for-byte.
	buf, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{'\n'})
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// JobOutput is a completed job's payload: the experiment's typed rows, its
// human-readable table, and the execution audit trail. Its JSON encoding
// is deterministic for a deterministic row set (encoding/json sorts map
// keys), which is what makes cached replays byte-identical.
type JobOutput struct {
	Exp   string `json:"exp"`
	Rows  any    `json:"rows"`
	Table string `json:"table"`
	// Cells counts the simulations the sweep executed.
	Cells int `json:"cells"`
	// Hash folds every cell's determinism hash (keyed by app and column)
	// into one order-independent 64-bit value, hex-encoded. For a fixed
	// canonical request it is bit-stable across warm, cold, serial and
	// parallel execution — the service's cross-contamination tripwire:
	// a pool worker whose warm reset leaked state produces a different
	// hash than the same request run cold.
	Hash string `json:"hash"`
}

// cellHash mixes one cell's identity and determinism hash into a single
// word. Job-level hashes XOR these together, so the fold commutes and the
// job hash does not depend on completion order.
func cellHash(c experiments.Cell) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(b byte) { h ^= uint64(b); h *= prime }
	for i := 0; i < len(c.App); i++ {
		mix(c.App[i])
	}
	mix('/')
	for i := 0; i < len(c.Key); i++ {
		mix(c.Key[i])
	}
	d := c.Result.DeterminismHash()
	for i := 0; i < 8; i++ {
		mix(byte(d >> (8 * i)))
	}
	return h
}

// runExperiment executes a canonical request through the experiments
// layer. The base Params carry the execution mode (p.Worker for the warm
// pool slot, p.Ctx for cancellation); the request's semantic fields
// overwrite the rest. onCell, when non-nil, observes every completed cell
// (already serialized by the experiments layer).
func runExperiment(req Request, p experiments.Params, onCell func(experiments.Cell)) (*JobOutput, error) {
	out := &JobOutput{Exp: req.Exp}
	var fold uint64
	p.Apps = req.Apps
	p.Work = req.Work
	p.Seed = req.Seed
	p.Witness = req.Witness
	p.FaultCampaign = req.Faults
	p.FaultSeed = req.FaultSeed
	if req.Cold {
		// The cold execution hint: fresh machine per cell, bypassing the
		// pool worker. Serial (Parallelism 1) keeps cell ordering and
		// resource usage the same as the warm path.
		p.Worker = nil
		p.Cold = true
		p.Parallelism = 1
	}
	p.OnCell = func(c experiments.Cell) {
		out.Cells++
		fold ^= cellHash(c)
		if onCell != nil {
			onCell(c)
		}
	}

	var err error
	switch req.Exp {
	case "fig9":
		var rows []experiments.Fig9Row
		if rows, err = experiments.Fig9(p); err == nil {
			out.Rows, out.Table = rows, experiments.FormatFig9(rows)
		}
	case "fig10":
		var rows []experiments.Fig10Row
		if rows, err = experiments.Fig10(p); err == nil {
			out.Rows, out.Table = rows, experiments.FormatFig10(rows)
		}
	case "table3":
		var rows []experiments.Table3Row
		if rows, err = experiments.Table3(p); err == nil {
			out.Rows, out.Table = rows, experiments.FormatTable3(rows)
		}
	case "table4":
		var rows []experiments.Table4Row
		if rows, err = experiments.Table4(p); err == nil {
			out.Rows, out.Table = rows, experiments.FormatTable4(rows)
		}
	case "fig11":
		var rows []experiments.Fig11Row
		if rows, err = experiments.Fig11(p); err == nil {
			out.Rows, out.Table = rows, experiments.FormatFig11(rows)
		}
	case "sigspace":
		var rows []experiments.SigSpaceRow
		if rows, err = experiments.SigSpace(p, req.Apps); err == nil {
			out.Rows, out.Table = rows, experiments.FormatSigSpace(rows)
		}
	case "arbiters":
		var rows []experiments.ArbScaleRow
		if rows, err = experiments.ArbScale(p, req.Procs[0], req.Arbiters); err == nil {
			out.Rows, out.Table = rows, experiments.FormatArbScale(rows, req.Arbiters)
		}
	case "scaling":
		var points []experiments.ScalingPoint
		if points, err = experiments.Scaling(p, req.Procs); err == nil {
			out.Rows, out.Table = points, experiments.FormatScaling(points)
		}
	case "faults":
		var rows []experiments.FaultRow
		if rows, err = experiments.FaultReport(p); err == nil {
			out.Rows, out.Table = rows, experiments.FormatFaultReport(rows)
		}
	default:
		err = fmt.Errorf("unknown experiment %q", req.Exp)
	}
	if err != nil {
		return nil, err
	}
	out.Hash = fmt.Sprintf("%016x", fold)
	return out, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

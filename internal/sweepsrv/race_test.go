package sweepsrv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bulksc/experiments"
)

// TestConcurrentMixedLoad is the warm-pool soak (run it under -race): many
// client goroutines fire a mixed config stream at a 2-worker pool behind a
// deliberately small queue. It pins four contracts at once:
//
//  1. a full queue answers 429 and never blocks (client timeouts enforce it);
//  2. every accepted job terminates;
//  3. identical configs always produce the identical job hash regardless of
//     which warm worker ran them or what ran on that worker before;
//  4. warm-pool reuse never cross-contaminates: each unique config's served
//     hash equals the golden hash of the same config run COLD on a fresh
//     machine, computed outside the server.
func TestConcurrentMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; the full check gate runs it without -short")
	}
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 3})

	// Six distinct configs across four experiment shapes, each submitted
	// several times from different goroutines (duplicates are cache-hit
	// and contamination probes at once).
	uniq := []Request{
		{Exp: "fig9", Apps: []string{"radix"}, Work: testWork},
		{Exp: "fig9", Apps: []string{"lu"}, Work: testWork, Seed: 3},
		{Exp: "fig10", Apps: []string{"fft"}, Work: testWork},
		{Exp: "table4", Apps: []string{"water-sp"}, Work: testWork},
		{Exp: "fig11", Apps: []string{"ocean"}, Work: testWork},
		{Exp: "scaling", Apps: []string{"radix"}, Procs: []int{8, 16}, Work: testWork},
	}
	const copies = 4 // 24 submissions total
	var schedule []Request
	for c := 0; c < copies; c++ {
		schedule = append(schedule, uniq...)
	}

	// A bounded client timeout turns "submit blocked on a full queue" into
	// a hard test failure instead of a hang.
	client := &http.Client{Timeout: 30 * time.Second}
	type outcome struct {
		req     Request
		hash    string
		status  string
		retried int
		err     error
	}
	outcomes := make([]outcome, len(schedule))
	var wg sync.WaitGroup
	const goroutines = 8
	next := make(chan int)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = runOne(client, ts.URL, schedule[i])
			}
		}()
	}
	for i := range schedule {
		next <- i
	}
	close(next)
	wg.Wait()

	var retried int
	hashes := map[string]map[string]bool{} // key -> set of observed job hashes
	for i, oc := range outcomes {
		if oc.err != nil {
			t.Fatalf("submission %d (%+v): %v", i, schedule[i], oc.err)
		}
		if oc.status != StatusDone {
			t.Fatalf("submission %d (%+v) ended %q, want done", i, schedule[i], oc.status)
		}
		retried += oc.retried
		key, err := oc.req.Key()
		if err != nil {
			t.Fatal(err)
		}
		if hashes[key] == nil {
			hashes[key] = map[string]bool{}
		}
		hashes[key][oc.hash] = true
	}
	t.Logf("observed %d 429 rejections across %d submissions", retried, len(schedule))

	// Contract 3: one hash per unique config, no matter the interleaving.
	for key, set := range hashes {
		if len(set) != 1 {
			t.Errorf("config %s produced %d distinct hashes %v: warm execution is not deterministic", key, len(set), set)
		}
	}

	// Contract 4: the cold goldens. Run each unique config on a throwaway
	// cold machine, bypassing the server entirely, and compare hashes.
	for _, r := range uniq {
		canon, err := r.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		key, err := canon.Key()
		if err != nil {
			t.Fatal(err)
		}
		cold := canon
		cold.Cold = true
		out, err := runExperiment(cold, experiments.Params{}, nil)
		if err != nil {
			t.Fatalf("cold golden for %+v: %v", r, err)
		}
		set := hashes[key]
		if len(set) == 0 {
			t.Fatalf("no served hash recorded for %+v", r)
		}
		if !set[out.Hash] {
			t.Errorf("POOL CONTAMINATION for %+v: warm pool served hash set %v, cold golden is %s",
				r, set, out.Hash)
		}
	}

	// The metrics must reconcile: every submission either completed or was
	// answered from the cache, and the queue is empty again.
	m := getMetrics(t, ts.URL)
	if got := m.Completed; got != uint64(len(schedule)) {
		t.Errorf("completed = %d, want %d (every accepted job terminates)", got, len(schedule))
	}
	if m.ServedFromCache == 0 {
		t.Error("no cache hits across duplicate submissions — content addressing is dead under load")
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after the soak, want 0", m.QueueDepth)
	}
	if m.RejectedBusy != uint64(retried) {
		t.Errorf("server counted %d queue-full rejections, clients observed %d", m.RejectedBusy, retried)
	}
}

// runOne submits req (retrying 429s), waits for the terminal envelope and
// extracts the job hash.
func runOne(client *http.Client, base string, req Request) (oc struct {
	req     Request
	hash    string
	status  string
	retried int
	err     error
}) {
	oc.req = req
	body, err := json.Marshal(req)
	if err != nil {
		oc.err = err
		return
	}
	var sub SubmitResponse
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/sweep", "application/json", strings.NewReader(string(body)))
		if err != nil {
			oc.err = err
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			oc.retried++
			if attempt > 10_000 {
				oc.err = fmt.Errorf("still 429 after %d attempts", attempt)
				return
			}
			time.Sleep(time.Duration(attempt%7+1) * time.Millisecond)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			oc.err = err
			return
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			oc.err = fmt.Errorf("submit: HTTP %d", resp.StatusCode)
			return
		}
		break
	}
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/result/" + sub.ID)
		if err != nil {
			oc.err = err
			return
		}
		var env ResultEnvelope
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			oc.err = err
			return
		}
		if code == http.StatusOK {
			oc.status = env.Status
			if env.Status == StatusDone {
				var out JobOutput
				if err := json.Unmarshal(env.Result, &out); err != nil {
					oc.err = err
					return
				}
				oc.hash = out.Hash
			} else {
				oc.err = fmt.Errorf("job %s: %s", sub.ID, env.Error)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	oc.err = fmt.Errorf("job %s never terminated", sub.ID)
	return
}

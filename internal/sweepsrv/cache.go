package sweepsrv

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: canonical config key
// → the completed job's marshaled result bytes. Entries are the exact
// bytes served to the first requester, so a cache hit is byte-identical
// to the original response by construction — the cache never re-marshals.
//
// Bounded LRU: Get refreshes recency, Put evicts the least recently used
// entry past the capacity. All counters are monotonic and surfaced via
// /metrics.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // key → element whose Value is *cacheEntry

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

// newResultCache returns a cache bounded to capacity entries; capacity < 1
// is pinned to 1 (a cache that can never hit would silently disable the
// content-addressing contract the tests pin down).
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached bytes for key, refreshing its recency. The
// returned slice is shared and must be treated as immutable.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put stores data under key, evicting the least recently used entry if the
// cache is full. Storing an existing key refreshes it in place.
func (c *resultCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// cacheStats is the /metrics snapshot of the cache.
type cacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *resultCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

package sweepsrv

import (
	"bytes"
	"fmt"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	// Touch a so b is now the least recently used.
	if data, ok := c.Get("a"); !ok || !bytes.Equal(data, []byte("A")) {
		t.Fatalf("Get(a) = %q,%v", data, ok)
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; recency refresh on Get is broken")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s was evicted, want it retained", k)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v: want 2 entries, capacity 2, 1 eviction", st)
	}
	// 1 empty miss + 1 b miss = 2 misses; a, a, c hits = 3 hits.
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("stats %+v: want hits=3 misses=2", st)
	}
}

func TestResultCachePutRefreshesInPlace(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A1"))
	c.Put("b", []byte("B"))
	c.Put("a", []byte("A2")) // refresh, not a second entry
	c.Put("c", []byte("C"))  // evicts b (a was refreshed to the front)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived; Put of an existing key must refresh recency")
	}
	if data, ok := c.Get("a"); !ok || !bytes.Equal(data, []byte("A2")) {
		t.Fatalf("Get(a) = %q,%v, want refreshed A2", data, ok)
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries %d after refresh, want 2", st.Entries)
	}
}

func TestResultCacheCapacityFloor(t *testing.T) {
	// Capacity < 1 would disable content addressing entirely; it is pinned
	// to 1 so a hit is always possible.
	c := newResultCache(0)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("capacity floor broken: a freshly stored entry missed")
	}
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("x"))
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries %d with capacity floor 1, want exactly 1", st.Entries)
	}
}

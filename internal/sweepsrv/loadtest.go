package sweepsrv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the seeded load-test harness behind `sweepd -loadtest` and
// the BENCH_core.json loadtest row: it boots a real Server on a loopback
// listener, fires a fixed-seed request mix at it over actual HTTP at a
// configurable concurrency, and reports latency percentiles, throughput
// and the cache-hit rate as JSON. Same seed, same mix — so two runs are
// comparable, and a baseline row is meaningful.
//
// Wall-clock note: the simulator itself is bit-deterministic and lint
// forbids wall time in simulation state; a load generator, by contrast,
// exists to measure wall time. Every clock read funnels through now() /
// sleep() below, whose justifications mark the boundary.

// now reads the wall clock for latency measurement. Never feeds
// simulation state: configs carry explicit seeds.
func now() time.Time {
	//lint:deterministic load-test latency measurement; never reaches simulation state
	return time.Now()
}

// sleep pauses a client goroutine (429 retry backoff).
func sleep(d time.Duration) {
	//lint:deterministic load-test retry backoff; never reaches simulation state
	time.Sleep(d)
}

// LoadOptions shapes one load-test run.
type LoadOptions struct {
	// Requests is the total number of submissions (default 32).
	Requests int
	// Concurrency is the number of client goroutines (default 4).
	Concurrency int
	// Seed drives the request mix (default 1). The mix is drawn from a
	// small template set, so repeats occur and the cache is exercised.
	Seed int64
	// Work is the per-thread instruction budget of every generated job
	// (default 2000 — small on purpose: the harness measures the
	// service, not the simulator).
	Work int
	// Server shapes the self-hosted server under test.
	Server Config
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Requests <= 0 {
		o.Requests = 32
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Work <= 0 {
		o.Work = 2000
	}
	return o
}

// loadMix returns the request templates the generator draws from: a
// handful of distinct cheap configs across several experiments, so a run
// mixes cache misses, cache hits and heterogeneous sweep shapes.
func loadMix(work int) []Request {
	return []Request{
		{Exp: "fig9", Apps: []string{"radix"}, Work: work},
		{Exp: "fig9", Apps: []string{"lu"}, Work: work},
		{Exp: "fig10", Apps: []string{"radix"}, Work: work},
		{Exp: "table4", Apps: []string{"water-sp"}, Work: work},
		{Exp: "fig11", Apps: []string{"fft"}, Work: work},
		{Exp: "scaling", Apps: []string{"radix"}, Procs: []int{8, 16}, Work: work},
	}
}

// LoadReport is the harness's JSON output.
type LoadReport struct {
	Requests    int   `json:"requests"`
	Concurrency int   `json:"concurrency"`
	Seed        int64 `json:"seed"`
	Work        int   `json:"work"`
	// Completed counts jobs that reached "done"; CacheHits the subset
	// answered straight from the content-addressed cache.
	Completed int `json:"completed"`
	CacheHits int `json:"cache_hits"`
	Failed    int `json:"failed"`
	// Rejected429 counts backpressure rejections observed; each was
	// retried (with backoff) until the queue accepted the job, so the
	// figure measures pressure, not loss.
	Rejected429  int     `json:"rejected_429"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// End-to-end request latency (submit through terminal event), ms.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ThroughputRPS is completed jobs per wall-clock second.
	ThroughputRPS float64 `json:"throughput_rps"`
	WallMs        float64 `json:"wall_ms"`
	// ServerMetrics is the server's own /metrics snapshot at the end of
	// the run (queue rejections here must match Rejected429).
	ServerMetrics Metrics `json:"server_metrics"`
}

// RunLoadTest boots a server on a loopback listener, runs the seeded mix
// against it over HTTP, shuts the server down and returns the report.
func RunLoadTest(o LoadOptions) (*LoadReport, error) {
	o = o.withDefaults()
	srv := NewServer(o.Server)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	base := "http://" + ln.Addr().String()
	rep, err := driveLoad(base, srv, o)
	hs.Close()
	return rep, err
}

// driveLoad fires o.Requests jobs at base from o.Concurrency goroutines.
// Exported-for-tests via RunLoadTest only; srv is used for the final
// metrics snapshot (nil = skip it, for driving an external server).
func driveLoad(base string, srv *Server, o LoadOptions) (*LoadReport, error) {
	mix := loadMix(o.Work)
	// Pre-draw the whole request schedule from one seeded source so the
	// mix is a pure function of (seed, requests) regardless of client
	// goroutine interleaving.
	rng := rand.New(rand.NewSource(o.Seed))
	schedule := make([]Request, o.Requests)
	for i := range schedule {
		schedule[i] = mix[rng.Intn(len(mix))]
	}

	type outcome struct {
		latency time.Duration
		hit     bool
		ok      bool
		retried int
		err     error
	}
	outcomes := make([]outcome, o.Requests)
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	client := &http.Client{}
	start := now()
	for c := 0; c < o.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = oneRequest(client, base, schedule[i])
			}
		}()
	}
	for i := 0; i < o.Requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := now().Sub(start)

	rep := &LoadReport{
		Requests: o.Requests, Concurrency: o.Concurrency,
		Seed: o.Seed, Work: o.Work,
		WallMs: float64(wall.Nanoseconds()) / 1e6,
	}
	var lats []float64
	var firstErr error
	for _, oc := range outcomes {
		rep.Rejected429 += oc.retried
		switch {
		case oc.err != nil:
			rep.Failed++
			if firstErr == nil {
				firstErr = oc.err
			}
		case oc.ok:
			rep.Completed++
			if oc.hit {
				rep.CacheHits++
			}
			lats = append(lats, float64(oc.latency.Nanoseconds())/1e6)
		default:
			rep.Failed++
		}
	}
	if rep.Completed > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.Completed)
		rep.ThroughputRPS = float64(rep.Completed) / (float64(wall.Nanoseconds()) / 1e9)
	}
	sort.Float64s(lats)
	rep.P50Ms = percentile(lats, 0.50)
	rep.P95Ms = percentile(lats, 0.95)
	rep.P99Ms = percentile(lats, 0.99)
	if srv != nil {
		rep.ServerMetrics = srv.MetricsSnapshot()
	}
	if firstErr != nil {
		return rep, fmt.Errorf("load test: %d request(s) failed, first: %w", rep.Failed, firstErr)
	}
	return rep, nil
}

// oneRequest submits req (retrying 429s with linear backoff), then follows
// the NDJSON progress stream to the terminal event, measuring end-to-end
// latency.
func oneRequest(client *http.Client, base string, req Request) (oc struct {
	latency time.Duration
	hit     bool
	ok      bool
	retried int
	err     error
}) {
	body, err := json.Marshal(req)
	if err != nil {
		oc.err = err
		return
	}
	start := now()
	var sub SubmitResponse
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/sweep", "application/json", strings.NewReader(string(body)))
		if err != nil {
			oc.err = err
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			oc.retried++
			if attempt > 1000 { // the queue is wedged; a real client gives up too
				oc.err = fmt.Errorf("still 429 after %d attempts", attempt)
				return
			}
			// Deliberately faster than the server's Retry-After hint:
			// the generator's job is to keep pressure on the queue.
			sleep(time.Duration(attempt%10+1) * time.Millisecond)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			oc.err = err
			return
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			oc.err = fmt.Errorf("submit: HTTP %d", resp.StatusCode)
			return
		}
		break
	}
	oc.hit = sub.Cache == "hit"
	if sub.Status == StatusDone { // cache hit: already terminal
		oc.ok = true
		oc.latency = now().Sub(start)
		return
	}
	resp, err := client.Get(base + "/stream/" + sub.ID + "?format=ndjson")
	if err != nil {
		oc.err = err
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			oc.err = err
			return
		}
		if ev.Event == "done" {
			oc.latency = now().Sub(start)
			if ev.Status == StatusDone {
				oc.ok = true
			} else {
				oc.err = fmt.Errorf("job %s ended %s: %s", sub.ID, ev.Status, ev.Error)
			}
			return
		}
	}
	oc.err = fmt.Errorf("job %s: stream ended without terminal event", sub.ID)
	return
}

// percentile returns the q-quantile of the sorted sample (nearest-rank),
// 0 for an empty sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

package sweepsrv

import (
	"math/rand"
	"testing"
)

// TestRunLoadTestSmall runs the real harness end to end (small budget): a
// seeded mix against a self-hosted server over actual HTTP. This is the
// same entry point `sweepd -loadtest` and the BENCH_core.json row use.
func TestRunLoadTestSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; the full check gate runs it without -short")
	}
	rep, err := RunLoadTest(LoadOptions{
		Requests:    10,
		Concurrency: 3,
		Seed:        7,
		Work:        800,
		Server:      Config{Workers: 2, QueueDepth: 4},
	})
	if err != nil {
		t.Fatalf("RunLoadTest: %v (report: %+v)", err, rep)
	}
	if rep.Completed != rep.Requests || rep.Failed != 0 {
		t.Fatalf("report %+v: want all %d requests completed", rep, rep.Requests)
	}
	if rep.P50Ms <= 0 || rep.P50Ms > rep.P95Ms || rep.P95Ms > rep.P99Ms {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v", rep.P50Ms, rep.P95Ms, rep.P99Ms)
	}
	if rep.ThroughputRPS <= 0 || rep.WallMs <= 0 {
		t.Errorf("throughput %v rps over %v ms: want positive", rep.ThroughputRPS, rep.WallMs)
	}
	if rep.CacheHitRate < 0 || rep.CacheHitRate > 1 {
		t.Errorf("cache hit rate %v out of [0,1]", rep.CacheHitRate)
	}
	// The harness's client-side view must reconcile with the server's own
	// counters — the report embeds the final /metrics snapshot.
	m := rep.ServerMetrics
	if m.Completed != uint64(rep.Completed) {
		t.Errorf("server completed %d, clients observed %d", m.Completed, rep.Completed)
	}
	if m.ServedFromCache != uint64(rep.CacheHits) {
		t.Errorf("server cache hits %d, clients observed %d", m.ServedFromCache, rep.CacheHits)
	}
	if m.RejectedBusy != uint64(rep.Rejected429) {
		t.Errorf("server 429s %d, clients observed %d", m.RejectedBusy, rep.Rejected429)
	}
	if m.CellsExecuted == 0 {
		t.Error("load test executed zero cells")
	}
}

// TestLoadScheduleIsSeeded: the request mix is a pure function of
// (seed, requests) — that is what makes load-test runs comparable and the
// BENCH baseline meaningful.
func TestLoadScheduleIsSeeded(t *testing.T) {
	draw := func(seed int64, n int) []int {
		mix := loadMix(2000)
		rng := rand.New(rand.NewSource(seed))
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(len(mix))
		}
		return idx
	}
	a, b := draw(42, 64), draw(42, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(43, 64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical schedules")
	}
	// Every mix template must itself be a valid request.
	for _, r := range loadMix(2000) {
		if _, err := r.Canonicalize(); err != nil {
			t.Errorf("load mix template %+v is invalid: %v", r, err)
		}
	}
}

func TestPercentile(t *testing.T) {
	cases := []struct {
		sorted []float64
		q      float64
		want   float64
	}{
		{nil, 0.5, 0},
		{[]float64{7}, 0.5, 7},
		{[]float64{7}, 0.99, 7},
		{[]float64{1, 2, 3, 4}, 0.5, 2},
		{[]float64{1, 2, 3, 4}, 0.95, 4},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.5, 5},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%v, %v) = %v, want %v", tc.sorted, tc.q, got, tc.want)
		}
	}
}

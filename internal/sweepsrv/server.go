package sweepsrv

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"bulksc/experiments"
)

// Config shapes a Server. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers is the pool size: that many goroutines, each owning one
	// persistent experiments.Worker (a warm Runner plus a cross-job
	// program memo). Default 2.
	Workers int
	// QueueDepth bounds the job queue; a submit that finds it full is
	// rejected with 429 and a Retry-After hint rather than blocking.
	// Default 16.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (LRU).
	// Default 128.
	CacheEntries int
	// MaxWork caps the per-thread instruction budget a single request
	// may ask for; 0 = uncapped. A service exposed to real traffic sets
	// this so one job cannot monopolize a worker for minutes.
	MaxWork int
	// RetryAfterSeconds is the Retry-After hint on 429 responses.
	// Default 1.
	RetryAfterSeconds int
	// RetainJobs bounds how many finished jobs stay addressable via
	// /result and /stream; the oldest finished job past the bound is
	// forgotten (its cache entry survives independently). Default 1024.
	RetainJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	return c
}

// Job status values. A job is terminal in exactly one of done, failed,
// canceled or aborted; "aborted" is reserved for jobs that were still
// queued when the server began shutting down — the distinct fate graceful
// shutdown promises them.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
	StatusAborted  = "aborted"
)

// Event is one progress record of a job's stream, in both the SSE data
// field and the NDJSON line form. Event is "status" (lifecycle edge),
// "row" (one completed simulation cell) or "done" (terminal, carrying the
// final status and cache disposition).
type Event struct {
	Event  string `json:"event"`
	Status string `json:"status,omitempty"`
	Cache  string `json:"cache,omitempty"`
	Error  string `json:"error,omitempty"`
	App    string `json:"app,omitempty"`
	Key    string `json:"key,omitempty"`
	Cell   int    `json:"cell,omitempty"`
	Total  int    `json:"total,omitempty"`
	Cycles uint64 `json:"cycles,omitempty"`
	Hash   string `json:"hash,omitempty"`
}

// jobState is one submitted job's full lifecycle: identity, event history
// (replayed to late stream subscribers), terminal result bytes, and the
// cancellation context the experiments layer polls between cells.
type jobState struct {
	id   string
	key  string
	req  Request // canonical form
	cold bool    // execution hint preserved from the raw request

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   string
	events   []Event
	subs     []chan struct{} // kick channels: receivers re-read events
	cacheDis string          // "hit" or "miss" once terminal
	result   []byte          // marshaled JobOutput once done
	errMsg   string
	done     chan struct{} // closed at the terminal transition
}

func (js *jobState) publish(ev Event) {
	js.mu.Lock()
	js.events = append(js.events, ev)
	for _, ch := range js.subs {
		select {
		case ch <- struct{}{}:
		default: // receiver already has a pending kick; it re-reads anyway
		}
	}
	js.mu.Unlock()
}

// finish moves the job to a terminal state exactly once; later callers
// (e.g. a cancel racing the worker) are no-ops. It appends the "done"
// event, closes done, and releases the job's context.
func (js *jobState) finish(status, cacheDis string, result []byte, errMsg string) bool {
	js.mu.Lock()
	if js.status == StatusDone || js.status == StatusFailed ||
		js.status == StatusCanceled || js.status == StatusAborted {
		js.mu.Unlock()
		return false
	}
	js.status = status
	js.cacheDis = cacheDis
	js.result = result
	js.errMsg = errMsg
	js.events = append(js.events, Event{Event: "done", Status: status, Cache: cacheDis, Error: errMsg})
	for _, ch := range js.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	close(js.done)
	js.mu.Unlock()
	js.cancel()
	return true
}

// subscribe registers a kick channel; eventsFrom(i) then drains history.
func (js *jobState) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	js.mu.Lock()
	js.subs = append(js.subs, ch)
	js.mu.Unlock()
	return ch
}

func (js *jobState) unsubscribe(ch chan struct{}) {
	js.mu.Lock()
	for i, c := range js.subs {
		if c == ch {
			js.subs = append(js.subs[:i], js.subs[i+1:]...)
			break
		}
	}
	js.mu.Unlock()
}

// eventsFrom returns a copy of the events at index ≥ i and whether the job
// has reached a terminal state.
func (js *jobState) eventsFrom(i int) ([]Event, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	var evs []Event
	if i < len(js.events) {
		evs = append(evs, js.events[i:]...)
	}
	terminal := js.status == StatusDone || js.status == StatusFailed ||
		js.status == StatusCanceled || js.status == StatusAborted
	return evs, terminal
}

func (js *jobState) snapshot() (status, cacheDis, errMsg string, result []byte) {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.status, js.cacheDis, js.errMsg, js.result
}

// Server is the sweep service: a bounded queue feeding a pool of warm
// workers, fronted by the HTTP API and the content-addressed result cache.
// Construct with NewServer, serve via Handler, stop via Shutdown.
type Server struct {
	cfg   Config
	cache *resultCache

	mu        sync.Mutex
	accepting bool
	draining  bool
	queue     chan *jobState
	jobs      map[string]*jobState
	finished  []string // finished job ids, oldest first (retention FIFO)
	seq       int

	wg sync.WaitGroup

	// Monotonic counters (guarded by mu; read via Metrics).
	submitted, rejectedInvalid, rejectedBusy, servedFromCache uint64
	completed, failed, canceled, aborted                      uint64
	cells                                                     uint64
}

// NewServer starts cfg.Workers pool goroutines and returns the service.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheEntries),
		accepting: true,
		queue:     make(chan *jobState, cfg.QueueDepth),
		jobs:      make(map[string]*jobState),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker owns one persistent experiments.Worker for its whole life: the
// warm machine arena and the memoized programs survive across jobs, which
// is the entire point of the pool (PR 5's bit-identical warm reset makes
// the reuse safe; the suite's cold-golden comparisons prove it under load).
func (s *Server) worker() {
	defer s.wg.Done()
	w := experiments.NewWorker()
	for js := range s.queue {
		if !s.startJob(js) {
			continue
		}
		s.execute(js, w)
	}
}

// startJob transitions a dequeued job to running, unless it was canceled
// while queued or the server is draining — queued jobs are failed with the
// distinct "aborted" status during shutdown, never silently dropped.
func (s *Server) startJob(js *jobState) bool {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		if js.finish(StatusAborted, "", nil, "server shutting down before job started") {
			s.finishAccounting(js, StatusAborted)
		}
		return false
	}
	js.mu.Lock()
	if js.status != StatusQueued { // canceled while queued
		js.mu.Unlock()
		return false
	}
	js.status = StatusRunning
	js.events = append(js.events, Event{Event: "status", Status: StatusRunning})
	for _, ch := range js.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	js.mu.Unlock()
	return true
}

// execute runs one job on the pool worker, streaming a "row" event per
// completed cell and finishing with the marshaled output (which also
// becomes the job's cache entry).
func (s *Server) execute(js *jobState, w *experiments.Worker) {
	req := js.req
	req.Cold = js.cold
	p := experiments.Params{Worker: w, Ctx: js.ctx}
	out, err := runExperiment(req, p, func(c experiments.Cell) {
		s.mu.Lock()
		s.cells++
		s.mu.Unlock()
		js.publish(Event{
			Event: "row", App: c.App, Key: c.Key,
			Cell: c.Index, Total: c.Total,
			Cycles: c.Result.Cycles,
			Hash:   fmt.Sprintf("%016x", c.Result.DeterminismHash()),
		})
	})
	if err != nil {
		status := StatusFailed
		if js.ctx.Err() != nil {
			status = StatusCanceled
		}
		if js.finish(status, "", nil, err.Error()) {
			s.finishAccounting(js, status)
		}
		return
	}
	buf, merr := json.Marshal(out)
	if merr != nil {
		if js.finish(StatusFailed, "", nil, merr.Error()) {
			s.finishAccounting(js, StatusFailed)
		}
		return
	}
	s.cache.Put(js.key, buf)
	if js.finish(StatusDone, "miss", buf, "") {
		s.finishAccounting(js, StatusDone)
	}
}

// finishAccounting updates the terminal counters and the finished-job
// retention window (the oldest finished job past RetainJobs is forgotten).
func (s *Server) finishAccounting(js *jobState, status string) {
	s.mu.Lock()
	switch status {
	case StatusDone:
		s.completed++
	case StatusFailed:
		s.failed++
	case StatusCanceled:
		s.canceled++
	case StatusAborted:
		s.aborted++
	}
	s.finished = append(s.finished, js.id)
	if len(s.finished) > s.cfg.RetainJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

// Shutdown gracefully stops the service: new submissions are refused with
// 503, running jobs drain to completion, and every job still queued is
// failed with the distinct "aborted" status (its streams receive a
// terminal event and close). If ctx expires before the drain completes,
// running jobs are canceled via their contexts — the experiments layer
// stops at the next cell boundary — and Shutdown still waits for the pool
// to wind down before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		return nil
	}
	s.accepting = false
	s.draining = true
	close(s.queue) // submits hold mu, so no send can race the close
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: escalate from draining to canceling.
	s.mu.Lock()
	//lint:deterministic shutdown escalation cancels every job; order is irrelevant and nothing reaches simulation state
	for _, js := range s.jobs {
		js.cancel()
	}
	s.mu.Unlock()
	<-drained
	return ctx.Err()
}

// register allocates an id and records the job; callers hold s.mu.
func (s *Server) registerLocked(js *jobState) {
	s.seq++
	js.id = fmt.Sprintf("j-%06d", s.seq)
	s.jobs[js.id] = js
}

func newJobState(key string, req Request, cold bool) *jobState {
	ctx, cancel := context.WithCancel(context.Background())
	return &jobState{
		key: key, req: req, cold: cold,
		ctx: ctx, cancel: cancel,
		status: StatusQueued,
		events: []Event{{Event: "status", Status: StatusQueued}},
		done:   make(chan struct{}),
	}
}

// Handler returns the service's HTTP API:
//
//	POST   /sweep        submit a job (Request JSON body)
//	GET    /result/{id}  job status / terminal result envelope
//	GET    /stream/{id}  SSE progress stream (?format=ndjson for NDJSON)
//	DELETE /job/{id}     cancel a queued or running job
//	GET    /healthz      liveness + drain state
//	GET    /metrics      JSON counters (queue, pool, cache, jobs)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweep", s.handleSubmit)
	mux.HandleFunc("GET /result/{id}", s.handleResult)
	mux.HandleFunc("GET /stream/{id}", s.handleStream)
	mux.HandleFunc("DELETE /job/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

type errorBody struct {
	Error string `json:"error"`
}

// SubmitResponse is the POST /sweep response body.
type SubmitResponse struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Cache  string `json:"cache"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var raw Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		s.countInvalid()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	canon, err := raw.Canonicalize()
	if err != nil {
		s.countInvalid()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if s.cfg.MaxWork > 0 && canon.Work > s.cfg.MaxWork {
		s.countInvalid()
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("work %d exceeds this server's cap %d", canon.Work, s.cfg.MaxWork)})
		return
	}
	key, err := canon.Key()
	if err != nil {
		s.countInvalid()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	s.mu.Lock()
	s.submitted++
	if !s.accepting {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is shutting down"})
		return
	}
	// Content-addressed fast path: an identical canonical config that
	// already completed is served from the cache — the job is born
	// terminal, no queue slot, no Runner invocation.
	if data, ok := s.cache.Get(key); ok {
		js := newJobState(key, canon, false)
		s.registerLocked(js)
		s.servedFromCache++
		id := js.id
		s.mu.Unlock()
		js.finish(StatusDone, "hit", data, "")
		s.finishAccounting(js, StatusDone)
		writeJSON(w, http.StatusOK, SubmitResponse{ID: id, Key: key, Status: StatusDone, Cache: "hit"})
		return
	}
	js := newJobState(key, canon, raw.Cold)
	select {
	case s.queue <- js:
		s.registerLocked(js)
		id := js.id
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, Key: key, Status: StatusQueued, Cache: "miss"})
	default:
		s.rejectedBusy++
		s.mu.Unlock()
		js.cancel()
		// Backpressure contract: a full queue NEVER blocks the client;
		// it answers 429 with an explicit retry hint.
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error: fmt.Sprintf("job queue full (%d deep); retry after %ds",
				s.cfg.QueueDepth, s.cfg.RetryAfterSeconds)})
	}
}

func (s *Server) countInvalid() {
	s.mu.Lock()
	s.submitted++
	s.rejectedInvalid++
	s.mu.Unlock()
}

func (s *Server) lookup(id string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// ResultEnvelope is the GET /result/{id} response for a terminal job. The
// Result field carries the exact bytes produced when the job first ran;
// cache hits replay them byte-identically.
type ResultEnvelope struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r.PathValue("id"))
	if js == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or expired job id"})
		return
	}
	status, cacheDis, errMsg, result := js.snapshot()
	env := ResultEnvelope{ID: js.id, Status: status, Cache: cacheDis, Error: errMsg, Result: result}
	switch status {
	case StatusQueued, StatusRunning:
		writeJSON(w, http.StatusAccepted, env)
	default:
		writeJSON(w, http.StatusOK, env)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r.PathValue("id"))
	if js == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or expired job id"})
		return
	}
	js.mu.Lock()
	status := js.status
	js.mu.Unlock()
	switch status {
	case StatusQueued:
		// Terminal now; the worker that eventually dequeues it skips it.
		if js.finish(StatusCanceled, "", nil, "canceled while queued") {
			s.finishAccounting(js, StatusCanceled)
		}
	case StatusRunning:
		// The experiments layer observes the context between cells; the
		// worker will finish the job as canceled.
		js.cancel()
	}
	status, _, _, _ = js.snapshot()
	writeJSON(w, http.StatusAccepted, ResultEnvelope{ID: js.id, Status: status})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status})
}

// Metrics is the GET /metrics JSON schema.
type Metrics struct {
	Submitted       uint64 `json:"submitted"`
	RejectedInvalid uint64 `json:"rejected_invalid"`
	RejectedBusy    uint64 `json:"rejected_queue_full"`
	ServedFromCache uint64 `json:"served_from_cache"`
	Completed       uint64 `json:"completed"`
	Failed          uint64 `json:"failed"`
	Canceled        uint64 `json:"canceled"`
	Aborted         uint64 `json:"aborted"`
	// CellsExecuted counts the simulations actually run on pool workers;
	// it is THE Runner-invocation counter the cache tests pin: a cache
	// hit adds zero.
	CellsExecuted uint64     `json:"cells_executed"`
	QueueDepth    int        `json:"queue_depth"`
	QueueCap      int        `json:"queue_cap"`
	Workers       int        `json:"workers"`
	Draining      bool       `json:"draining"`
	Cache         cacheStats `json:"cache"`
}

// MetricsSnapshot returns the current counters (also served on /metrics).
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	m := Metrics{
		Submitted:       s.submitted,
		RejectedInvalid: s.rejectedInvalid,
		RejectedBusy:    s.rejectedBusy,
		ServedFromCache: s.servedFromCache,
		Completed:       s.completed,
		Failed:          s.failed,
		Canceled:        s.canceled,
		Aborted:         s.aborted,
		CellsExecuted:   s.cells,
		QueueDepth:      len(s.queue),
		QueueCap:        s.cfg.QueueDepth,
		Workers:         s.cfg.Workers,
		Draining:        s.draining,
	}
	s.mu.Unlock()
	m.Cache = s.cache.Stats()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r.PathValue("id"))
	if js == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or expired job id"})
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	flusher, canFlush := w.(http.Flusher)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	kick := js.subscribe()
	defer js.unsubscribe(kick)
	enc := json.NewEncoder(w)
	i := 0
	for {
		evs, terminal := js.eventsFrom(i)
		if len(evs) == 0 && terminal {
			return // history fully delivered, job terminal: close cleanly
		}
		for _, ev := range evs {
			if !ndjson {
				fmt.Fprintf(w, "event: %s\ndata: ", ev.Event)
			}
			enc.Encode(ev) //nolint:errcheck // disconnect caught via r.Context
			if !ndjson {
				fmt.Fprint(w, "\n")
			}
		}
		i += len(evs)
		if canFlush {
			flusher.Flush()
		}
		if len(evs) == 0 {
			select {
			case <-kick:
			case <-js.done:
			case <-r.Context().Done():
				return
			}
		}
	}
}

package sweepsrv

import (
	"encoding/json"
	"reflect"
	"testing"
)

// keyOfJSON decodes a raw JSON request body exactly the way handleSubmit
// does and returns its content-address. Taking the raw-bytes route (rather
// than building Request literals) is the point: it proves field order,
// whitespace and spelled-out defaults are erased before hashing.
func keyOfJSON(t *testing.T, body string) string {
	t.Helper()
	var r Request
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	key, err := r.Key()
	if err != nil {
		t.Fatalf("Key(%q): %v", body, err)
	}
	return key
}

// TestKeyEquivalences: each group of raw JSON bodies must hash to ONE key.
func TestKeyEquivalences(t *testing.T) {
	groups := map[string][]string{
		"field order and whitespace": {
			`{"exp":"fig9","apps":["radix"],"work":4000}`,
			`{"work":4000,"exp":"fig9","apps":["radix"]}`,
			`{ "apps" : [ "radix" ] ,
			   "exp" : "fig9" , "work" : 4000 }`,
		},
		"explicit defaults vs omitted": {
			`{"exp":"fig9","apps":["radix"]}`,
			`{"exp":"fig9","apps":["radix"],"work":120000,"seed":1,"faults":"none","fault_seed":1}`,
		},
		"exp case and surrounding space": {
			`{"exp":"fig9","apps":["lu"]}`,
			`{"exp":"FIG9","apps":["lu"]}`,
			`{"exp":"  Fig9 ","apps":["lu"]}`,
		},
		"cold execution hint excluded": {
			`{"exp":"fig10","apps":["fft"],"work":4000}`,
			`{"exp":"fig10","apps":["fft"],"work":4000,"cold":true}`,
		},
		"fields the experiment ignores are cleared": {
			`{"exp":"fig9","apps":["radix"]}`,
			`{"exp":"fig9","apps":["radix"],"procs":[8,16]}`,
			`{"exp":"fig9","apps":["radix"],"arbiters":[2,4]}`,
		},
		"fault seed pinned without a campaign": {
			`{"exp":"fig9","apps":["radix"]}`,
			`{"exp":"fig9","apps":["radix"],"faults":"none","fault_seed":99}`,
		},
		"arbiters consumes only the first procs value": {
			`{"exp":"arbiters","apps":["radix"]}`,
			`{"exp":"arbiters","apps":["radix"],"procs":[16]}`,
			`{"exp":"arbiters","apps":["radix"],"procs":[16,32,64]}`,
		},
		"scaling default proc list": {
			`{"exp":"scaling","apps":["radix"]}`,
			`{"exp":"scaling","apps":["radix"],"procs":[8,16,64]}`,
		},
	}
	for name, bodies := range groups {
		t.Run(name, func(t *testing.T) {
			want := keyOfJSON(t, bodies[0])
			for _, b := range bodies[1:] {
				if got := keyOfJSON(t, b); got != want {
					t.Errorf("key mismatch within equivalence group:\n  %s\n  %s\nhash %s vs %s",
						bodies[0], b, want, got)
				}
			}
		})
	}
}

// TestKeyDistinctions: semantically different configs must hash apart.
func TestKeyDistinctions(t *testing.T) {
	base := `{"exp":"fig9","apps":["radix"],"work":4000}`
	distinct := map[string]string{
		"different exp":       `{"exp":"fig10","apps":["radix"],"work":4000}`,
		"different app":       `{"exp":"fig9","apps":["lu"],"work":4000}`,
		"app order semantic":  `{"exp":"fig9","apps":["lu","radix"],"work":4000}`,
		"different work":      `{"exp":"fig9","apps":["radix"],"work":4001}`,
		"different seed":      `{"exp":"fig9","apps":["radix"],"work":4000,"seed":2}`,
		"witness on":          `{"exp":"fig9","apps":["radix"],"work":4000,"witness":true}`,
		"fault campaign":      `{"exp":"fig9","apps":["radix"],"work":4000,"faults":"delay-jitter"}`,
		"apps default vs one": `{"exp":"fig9","work":4000}`,
	}
	baseKey := keyOfJSON(t, base)
	seen := map[string]string{base: baseKey}
	for name, body := range distinct {
		got := keyOfJSON(t, body)
		if got == baseKey {
			t.Errorf("%s: %s collides with base %s", name, body, base)
		}
		for prev, prevKey := range seen {
			if got == prevKey && body != prev {
				t.Errorf("collision between %s and %s", body, prev)
			}
		}
		seen[body] = got
	}
	if k1, k2 := keyOfJSON(t, `{"exp":"fig9","apps":["lu","radix"]}`), keyOfJSON(t, `{"exp":"fig9","apps":["radix","lu"]}`); k1 == k2 {
		t.Error("app ORDER is semantic (it is the result row order) but did not flip the key")
	}
}

// fieldCase drives the reflection sweep below: for each Request field, a
// base request in which the field is actually consumed, a mutation of that
// field, and whether the mutation must flip the key.
type fieldCase struct {
	base     Request
	mutate   func(*Request)
	flipsKey bool
}

// TestKeyCoversEveryRequestField walks the Request struct by reflection;
// every field MUST have a table entry, so adding a config field without
// deciding its cache-key semantics fails this test — new fields cannot
// silently escape the canonical hash.
func TestKeyCoversEveryRequestField(t *testing.T) {
	fig9 := Request{Exp: "fig9", Apps: []string{"radix"}, Work: 4000}
	table := map[string]fieldCase{
		"Exp":      {fig9, func(r *Request) { r.Exp = "table3" }, true},
		"Apps":     {fig9, func(r *Request) { r.Apps = []string{"ocean"} }, true},
		"Work":     {fig9, func(r *Request) { r.Work = 8000 }, true},
		"Seed":     {fig9, func(r *Request) { r.Seed = 17 }, true},
		"Witness":  {fig9, func(r *Request) { r.Witness = true }, true},
		"Faults":   {fig9, func(r *Request) { r.Faults = "squash-storm" }, true},
		"Cold":     {fig9, func(r *Request) { r.Cold = true }, false},
		"Procs":    {Request{Exp: "scaling", Apps: []string{"radix"}, Work: 4000}, func(r *Request) { r.Procs = []int{8, 32} }, true},
		"Arbiters": {Request{Exp: "arbiters", Apps: []string{"radix"}, Work: 4000}, func(r *Request) { r.Arbiters = []int{2, 16} }, true},
		// FaultSeed only matters under an active campaign (it is pinned
		// otherwise — see TestKeyEquivalences).
		"FaultSeed": {
			Request{Exp: "fig9", Apps: []string{"radix"}, Work: 4000, Faults: "livelock"},
			func(r *Request) { r.FaultSeed = 23 }, true},
	}

	rt := reflect.TypeOf(Request{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		tc, ok := table[name]
		if !ok {
			t.Fatalf("Request field %q has no cache-key coverage entry: decide whether it is "+
				"semantic (flips the key) or an execution hint (must not), and add it to this table", name)
		}
		t.Run(name, func(t *testing.T) {
			before, err := tc.base.Key()
			if err != nil {
				t.Fatalf("base Key: %v", err)
			}
			mutated := tc.base
			tc.mutate(&mutated)
			after, err := mutated.Key()
			if err != nil {
				t.Fatalf("mutated Key: %v", err)
			}
			if tc.flipsKey && before == after {
				t.Errorf("mutating %s did not change the key: two different configs would share a cache entry", name)
			}
			if !tc.flipsKey && before != after {
				t.Errorf("mutating %s changed the key: an execution hint leaked into job identity", name)
			}
		})
	}
}

// TestCanonicalizeIdempotent: canonicalizing a canonical form is a no-op,
// and Key() of both forms agrees.
func TestCanonicalizeIdempotent(t *testing.T) {
	reqs := []Request{
		{Exp: "fig9"},
		{Exp: "SCALING", Procs: []int{16, 8}},
		{Exp: "arbiters", Procs: []int{32, 64}, Arbiters: []int{1, 4}},
		{Exp: "faults", Apps: []string{"radix"}, Faults: "livelock", FaultSeed: 9},
		{Exp: "sigspace"},
	}
	for _, r := range reqs {
		c1, err := r.Canonicalize()
		if err != nil {
			t.Fatalf("Canonicalize(%+v): %v", r, err)
		}
		c2, err := c1.Canonicalize()
		if err != nil {
			t.Fatalf("re-Canonicalize(%+v): %v", c1, err)
		}
		if !reflect.DeepEqual(c1, c2) {
			t.Errorf("canonicalize not idempotent:\n once: %+v\ntwice: %+v", c1, c2)
		}
		k1, _ := r.Key()
		k2, _ := c1.Key()
		if k1 != k2 {
			t.Errorf("Key differs between raw and canonical form of %+v", r)
		}
	}
}

// TestCanonicalizeErrors: every invalid shape is refused with an error.
func TestCanonicalizeErrors(t *testing.T) {
	bad := map[string]Request{
		"unknown exp":      {Exp: "fig12"},
		"empty exp":        {},
		"unknown app":      {Exp: "fig9", Apps: []string{"doom"}},
		"negative work":    {Exp: "fig9", Work: -1},
		"procs zero":       {Exp: "scaling", Procs: []int{0}},
		"procs huge":       {Exp: "scaling", Procs: []int{1 << 20}},
		"arbiters zero":    {Exp: "arbiters", Arbiters: []int{0}},
		"unknown campaign": {Exp: "fig9", Faults: "gremlins"},
	}
	for name, r := range bad {
		if _, err := r.Canonicalize(); err == nil {
			t.Errorf("%s: Canonicalize(%+v) succeeded, want error", name, r)
		}
		if _, err := r.Key(); err == nil {
			t.Errorf("%s: Key(%+v) succeeded, want error", name, r)
		}
	}
}

// TestCatalogIsTheOnlyGate: every experiment the catalog lists round-trips
// through Canonicalize, so the service surface and the catalog cannot
// drift apart.
func TestCatalogIsTheOnlyGate(t *testing.T) {
	for _, exp := range Exps() {
		c, err := Request{Exp: exp}.Canonicalize()
		if err != nil {
			t.Errorf("cataloged experiment %q does not canonicalize: %v", exp, err)
			continue
		}
		if len(c.Apps) == 0 || c.Work == 0 || c.Seed == 0 {
			t.Errorf("%q canonical form left defaults unmaterialized: %+v", exp, c)
		}
	}
}

package sccheck

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bulksc/internal/chunk"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

var factory = sig.NewFactory(sig.KindExact)

// mkChunk builds a committed chunk with the given log, owner, sequence
// number and commit order.
func mkChunk(proc int, seq, order uint64, log []chunk.AccessRec) *chunk.Chunk {
	ch := chunk.New(factory, nil, proc, seq, 0, 0, 0)
	for _, rec := range log {
		if rec.IsStore {
			ch.RecordStore(rec.Addr, rec.Value, false)
		} else {
			ch.RecordLoad(rec.Addr, rec.Value, false)
		}
	}
	ch.CommitOrder = order
	ch.State = chunk.Committed
	return ch
}

func load(a mem.Addr, v uint64) chunk.AccessRec { return chunk.AccessRec{Addr: a, Value: v} }
func store(a mem.Addr, v uint64) chunk.AccessRec {
	return chunk.AccessRec{IsStore: true, Addr: a, Value: v}
}

func kinds(c *Checker) map[Kind]int {
	m := make(map[Kind]int)
	for _, v := range c.Violations() {
		m[v.Kind]++
	}
	return m
}

func TestCleanChunkHistory(t *testing.T) {
	c := New()
	const x, y mem.Addr = 0x100, 0x208
	c.CommitChunk(mkChunk(0, 1, 1, []chunk.AccessRec{
		load(x, 0),  // cold read: memory is zero
		store(x, 7), // write x
		load(x, 7),  // forwarded from own buffer
		store(y, 9), //
	}))
	c.CommitChunk(mkChunk(1, 1, 2, []chunk.AccessRec{
		load(x, 7), // sees proc 0's committed write
		load(y, 9),
		load(x, 7), // atomic re-read: same value
		store(x, 11),
	}))
	c.CommitChunk(mkChunk(0, 2, 3, []chunk.AccessRec{
		load(x, 11),
	}))
	if !c.Ok() {
		t.Fatalf("clean history flagged: %v", c.Strings())
	}
	if c.Chunks() != 3 {
		t.Fatalf("Chunks() = %d, want 3", c.Chunks())
	}
	if c.Accesses() != 9 {
		t.Fatalf("Accesses() = %d, want 9", c.Accesses())
	}
}

func TestCoherenceViolation(t *testing.T) {
	c := New()
	const x mem.Addr = 0x40
	c.CommitChunk(mkChunk(0, 1, 1, []chunk.AccessRec{store(x, 5)}))
	// Load observes a value no store produced at this point in the order.
	c.CommitChunk(mkChunk(1, 1, 2, []chunk.AccessRec{load(x, 3)}))
	if c.Ok() {
		t.Fatal("stale load not flagged")
	}
	if kinds(c)[KindCoherence] == 0 {
		t.Fatalf("want a coherence violation, got %v", c.Strings())
	}
}

func TestAtomicityViolation(t *testing.T) {
	// Chunk B reads x twice with no intervening same-chunk store and
	// observes two different values — as if chunk A's commit interleaved
	// B's reads, breaking atomicity.
	c := New()
	const x mem.Addr = 0x80
	c.CommitChunk(mkChunk(0, 1, 1, []chunk.AccessRec{store(x, 1)}))
	c.CommitChunk(mkChunk(1, 1, 2, []chunk.AccessRec{
		load(x, 0), // saw pre-A memory ...
		load(x, 1), // ... then saw A's write: interleaved
	}))
	if c.Ok() {
		t.Fatal("interleaved re-read not flagged")
	}
	k := kinds(c)
	if k[KindAtomicity] == 0 {
		t.Fatalf("want an atomicity violation, got %v", c.Strings())
	}
}

func TestForwardingViolation(t *testing.T) {
	c := New()
	const x mem.Addr = 0x80
	c.CommitChunk(mkChunk(0, 1, 1, []chunk.AccessRec{
		store(x, 42),
		load(x, 0), // must have forwarded 42
	}))
	if kinds(c)[KindForwarding] == 0 {
		t.Fatalf("want a forwarding violation, got %v", c.Strings())
	}
}

func TestTotalOrderViolations(t *testing.T) {
	t.Run("arrival", func(t *testing.T) {
		c := New()
		c.CommitChunk(mkChunk(0, 1, 2, nil))
		c.CommitChunk(mkChunk(1, 1, 1, nil)) // arrives after order 2
		if kinds(c)[KindTotalOrder] == 0 {
			t.Fatalf("out-of-order arrival not flagged: %v", c.Strings())
		}
	})
	t.Run("per-proc-seq", func(t *testing.T) {
		c := New()
		c.CommitChunk(mkChunk(0, 2, 1, nil))
		c.CommitChunk(mkChunk(0, 1, 2, nil)) // proc 0 commits #1 after #2
		if kinds(c)[KindTotalOrder] == 0 {
			t.Fatalf("per-processor sequence regression not flagged: %v", c.Strings())
		}
	})
	t.Run("order-gaps-ok", func(t *testing.T) {
		// Posthumous grants of squashed chunks consume orders that never
		// commit; gaps must not be flagged.
		c := New()
		c.CommitChunk(mkChunk(0, 1, 1, nil))
		c.CommitChunk(mkChunk(1, 1, 5, nil))
		c.CommitChunk(mkChunk(0, 2, 9, nil))
		if !c.Ok() {
			t.Fatalf("order gaps flagged: %v", c.Strings())
		}
	})
}

func TestConvAccessSCOrder(t *testing.T) {
	c := New()
	const x, y mem.Addr = 0x100, 0x108
	// Two processors, serialized perform order, program order respected.
	c.Access(0, 1, true, x, 5, false)
	c.Access(1, 1, false, x, 5, false)
	c.Access(1, 2, true, y, 6, false)
	c.Access(0, 2, false, y, 6, false)
	if !c.Ok() {
		t.Fatalf("clean conventional history flagged: %v", c.Strings())
	}
}

func TestConvAccessStoreBufferRelaxation(t *testing.T) {
	// The RC store-buffer pattern: proc 0 dispatches store(x) then
	// load(y); the load performs first, the store drains later with the
	// smaller program-order index — an SC relaxation the checker must see.
	c := New()
	const x, y mem.Addr = 0x100, 0x108
	c.Access(0, 2, false, y, 0, false) // load y performs early
	c.Access(0, 1, true, x, 1, false)  // buffered store drains late
	if c.Ok() {
		t.Fatal("store-buffer reordering not flagged")
	}
	if kinds(c)[KindProgramOrder] == 0 {
		t.Fatalf("want a program-order violation, got %v", c.Strings())
	}
}

func TestConvAccessForwardedLoadExempt(t *testing.T) {
	// A load served from the processor's own store buffer observes a value
	// not yet in the witness memory; fwd exempts it from the coherence
	// check (the drain later collects the ordering debt).
	c := New()
	const x mem.Addr = 0x100
	c.Access(0, 1, false, x, 42, true) // forwarded from own buffer
	c.Access(0, 2, true, x, 42, false)
	if !c.Ok() {
		t.Fatalf("forwarded conventional load flagged: %v", c.Strings())
	}
}

func TestViolationCap(t *testing.T) {
	c := New()
	c.MaxViolations = 3
	for i := 0; i < 10; i++ {
		c.CommitChunk(mkChunk(0, uint64(i+1), uint64(i+1),
			[]chunk.AccessRec{load(0x40, uint64(i+100))}))
	}
	if got := len(c.Violations()); got != 3 {
		t.Fatalf("retained %d violations, want 3", got)
	}
	if c.Total() < 10 {
		t.Fatalf("Total() = %d, want >= 10", c.Total())
	}
	ss := c.Strings()
	if len(ss) != 4 { // 3 retained + truncation marker
		t.Fatalf("Strings() len = %d, want 4: %v", len(ss), ss)
	}
	// The truncation marker must be self-describing: it names the count of
	// dropped records and says the cap was reached.
	marker := ss[len(ss)-1]
	if !strings.Contains(marker, fmt.Sprintf("%d more violations", c.Total()-3)) ||
		!strings.Contains(marker, "cap reached") {
		t.Fatalf("truncation marker not self-describing: %q", marker)
	}
}

// TestViolationsIsACopy pins the aliasing fix: records handed out by
// Violations must survive a subsequent Reset, which scrubs the checker's
// internal retention slice in place for warm reuse.
func TestViolationsIsACopy(t *testing.T) {
	c := New()
	c.CommitChunk(mkChunk(0, 1, 1, []chunk.AccessRec{load(0x40, 99)}))
	if c.Ok() {
		t.Fatal("seeded violation not detected")
	}
	held := c.Violations()
	if len(held) != 1 || held[0].Kind != KindCoherence {
		t.Fatalf("unexpected violations: %v", held)
	}
	want := held[0]
	c.Reset()
	if held[0] != want {
		t.Fatalf("Reset scrubbed a handed-out violation: got %+v, want %+v", held[0], want)
	}
}

// ---------------------------------------------------------------------------
// Property / mutation tests: random valid histories pass; seeded SC
// violations are always detected.
// ---------------------------------------------------------------------------

// genHistory builds a random valid chunked SC history: chunks commit in a
// random processor interleaving, each chunk's loads observing exactly what
// the witness semantics dictate.
func genHistory(rng *rand.Rand, procs, chunksPerProc, opsPerChunk int) []*chunk.Chunk {
	memory := make(map[mem.Addr]uint64)
	addrs := make([]mem.Addr, 16)
	for i := range addrs {
		addrs[i] = mem.Addr(0x1000 + 8*i)
	}
	seqs := make([]uint64, procs)
	left := make([]int, procs)
	for i := range left {
		left[i] = chunksPerProc
	}
	var out []*chunk.Chunk
	order := uint64(0)
	remaining := procs * chunksPerProc
	for remaining > 0 {
		p := rng.Intn(procs)
		if left[p] == 0 {
			continue
		}
		left[p]--
		remaining--
		seqs[p]++
		order += uint64(1 + rng.Intn(2)) // occasional gaps
		overlay := make(map[mem.Addr]uint64)
		var log []chunk.AccessRec
		for i := 0; i < opsPerChunk; i++ {
			a := addrs[rng.Intn(len(addrs))]
			if rng.Intn(2) == 0 {
				v := rng.Uint64()%1000 + 1
				overlay[a] = v
				log = append(log, store(a, v))
			} else {
				v, ok := overlay[a]
				if !ok {
					v = memory[a]
				}
				log = append(log, load(a, v))
			}
		}
		for a, v := range overlay {
			memory[a] = v
		}
		out = append(out, mkChunk(p, seqs[p], order, log))
	}
	return out
}

func TestPropertyValidHistoriesPass(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		for _, ch := range genHistory(rng, 1+rng.Intn(4), 1+rng.Intn(5), 1+rng.Intn(12)) {
			c.CommitChunk(ch)
		}
		if !c.Ok() {
			t.Fatalf("seed %d: valid history flagged: %v", seed, c.Strings())
		}
	}
}

// TestMutationLoadValueDetected seeds a deliberate SC violation — a load
// observing a value the witness order cannot explain, the observable
// footprint of a broken-atomicity interleaving — and asserts the checker
// flags it. The checker must be shown able to fail.
func TestMutationLoadValueDetected(t *testing.T) {
	detected := 0
	tried := 0
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		history := genHistory(rng, 2+rng.Intn(3), 3, 8)
		// Collect every load position.
		type pos struct{ ci, li int }
		var loads []pos
		for ci, ch := range history {
			for li, rec := range ch.Log {
				if !rec.IsStore {
					loads = append(loads, pos{ci, li})
				}
			}
		}
		if len(loads) == 0 {
			continue
		}
		tried++
		p := loads[rng.Intn(len(loads))]
		history[p.ci].Log[p.li].Value += 1 + rng.Uint64()%5
		c := New()
		for _, ch := range history {
			c.CommitChunk(ch)
		}
		if c.Ok() {
			t.Errorf("seed %d: mutated load value (chunk %d op %d) not detected", seed, p.ci, p.li)
			continue
		}
		detected++
	}
	if tried == 0 || detected != tried {
		t.Fatalf("detected %d/%d mutations", detected, tried)
	}
}

// TestMutationCommitOrderDetected swaps two chunks' positions in the
// arrival stream without fixing up their orders and asserts the checker
// flags the broken total order.
func TestMutationCommitOrderDetected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		history := genHistory(rng, 2, 4, 4)
		i := rng.Intn(len(history) - 1)
		history[i], history[i+1] = history[i+1], history[i]
		c := New()
		for _, ch := range history {
			c.CommitChunk(ch)
		}
		if kinds(c)[KindTotalOrder] == 0 {
			t.Fatalf("seed %d: swapped commit arrival not flagged: %v", seed, c.Strings())
		}
	}
}

// TestMutationAtomicityDetected injects a mid-chunk interleaving: chunk B's
// second read of a word observes another chunk's later write.
func TestMutationAtomicityDetected(t *testing.T) {
	c := New()
	const x mem.Addr = 0x2000
	c.CommitChunk(mkChunk(0, 1, 1, []chunk.AccessRec{store(x, 10)}))
	// Chunk on proc 1 whose re-read observes a "future" value (20), as if
	// proc 0's next chunk committed between the two reads.
	c.CommitChunk(mkChunk(1, 1, 2, []chunk.AccessRec{load(x, 10), load(x, 20)}))
	c.CommitChunk(mkChunk(0, 2, 3, []chunk.AccessRec{store(x, 20)}))
	if kinds(c)[KindAtomicity] == 0 {
		t.Fatalf("seeded atomicity violation not flagged: %v", c.Strings())
	}
}

// Package sccheck is an online sequential-consistency witness checker.
//
// BulkSC's central claim is that chunked, reordered, speculatively-executed
// programs still *look* sequentially consistent: the arbiter serializes
// chunks into a global commit order, and the paper argues (§3) that the
// resulting execution is indistinguishable from some interleaving of the
// per-processor programs in which each chunk is a single atomic step.
//
// This package checks that claim independently, following the witness-based
// formulation of SC verification (Qadeer's model-checking construction and
// QED-style MCM witness checking): the implementation under test *names* a
// total order — the arbiter's global commit-order counter — and the checker
// verifies that the named order actually explains every observed value.
// Concretely, three obligations are discharged online, as chunks commit:
//
//  1. Chunk atomicity — within one chunk, no other chunk's commit may
//     interleave: two reads of the same word with no intervening same-chunk
//     store must observe the same value, and every read must be explained
//     either by the chunk's own speculative write buffer (forwarding) or by
//     the witness memory state as of the chunk's commit point.
//  2. Value coherence — every committed load returns the value of the most
//     recent store to that word in global commit order (with same-chunk
//     stores forwarding through the speculative write buffer).
//  3. Total order — commit orders are strictly increasing in arrival order
//     (the arbiter assigns the order and replies in the same event, so
//     checker arrival order is commit order), and each processor's chunk
//     sequence embeds into the global order.
//
// Unlike core's replay checker, which re-derives values from the logs after
// the run, the witness checker validates the implementation's *own claimed
// serialization* and does so incrementally with O(footprint) state, so it
// can gate long fuzz and integration runs without retaining every chunk.
//
// The same Checker also audits the conventional models through Access: each
// architectural memory operation is reported at its perform instant, and
// the checker verifies value coherence in perform order plus per-processor
// program-order embedding. The SC baseline must pass; RC genuinely relaxes
// store→load order (a drained store performs after younger loads), which
// the checker flags as ProgramOrder violations — the store-buffer litmus
// tests assert exactly that.
package sccheck

import (
	"fmt"

	"bulksc/internal/chunk"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
)

// Kind classifies a witness violation by the obligation it breaks.
type Kind int

const (
	// KindTotalOrder: commit orders not strictly increasing in arrival
	// order, or a processor's chunk sequence does not embed into the
	// global order.
	KindTotalOrder Kind = iota
	// KindAtomicity: two same-chunk reads of one word, with no intervening
	// same-chunk store, observed different values — some other chunk's
	// commit interleaved the chunk's accesses.
	KindAtomicity
	// KindCoherence: a read observed a value different from the most
	// recent store in the witness order.
	KindCoherence
	// KindForwarding: a load following a same-chunk store to the same word
	// did not observe the buffered value.
	KindForwarding
	// KindProgramOrder: a conventional processor's accesses performed out
	// of program order (the RC store-buffer relaxation surfaces here).
	KindProgramOrder
)

func (k Kind) String() string {
	return [...]string{"total-order", "atomicity", "coherence", "forwarding", "program-order"}[k]
}

// Violation is one discharged-obligation failure.
type Violation struct {
	Kind Kind
	Proc int
	// Order is the global commit order (chunks) or witness arrival index
	// (conventional accesses) at which the violation was detected.
	Order uint64
	Addr  mem.Addr
	// Got is the observed value; Want the value the witness requires.
	Got, Want uint64
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("sccheck[%s] proc %d order %d addr %#x got %d want %d: %s",
		v.Kind, v.Proc, v.Order, uint64(v.Addr), v.Got, v.Want, v.Detail)
}

// wordState is the witness memory: the last committed value of a word and
// the commit that produced it.
type wordState struct {
	val   uint64
	order uint64
	proc  int
}

// DefaultMaxViolations caps the retained violation records; Total keeps
// counting past the cap.
const DefaultMaxViolations = 20

// Checker verifies the SC-witness obligations online. It is not safe for
// concurrent use; the simulator is single-goroutine per machine.
//
// The zero value is not ready — use New (per-processor state grows lazily,
// so New needs no processor count).
//
// The checker is an observer: it reads committed chunks and conventional
// accesses but must never write back into simulated state, or enabling
// the witness would perturb the determinism hash (the property the
// hashneutral lint pass proves — all fields below are checker-owned).
//
//sim:observer
type Checker struct {
	// MaxViolations caps len(Violations()); 0 means DefaultMaxViolations.
	MaxViolations int

	// words is the witness memory. Absent words are zero, matching the
	// simulator's zero-initialized mem.Memory.
	words map[mem.Addr]wordState

	// lastOrder is the highest commit order seen; arrival must be in
	// strictly increasing order (gaps are fine: a squashed chunk whose
	// grant arrived posthumously consumes an order that never commits).
	lastOrder uint64

	// Per-processor embedding state, grown on demand.
	procOrder []uint64 // last commit order per processor
	procSeq   []uint64 // last chunk sequence number per processor
	procPO    []uint64 // last program-order index per processor (conv)
	procSeen  []bool   // whether the processor committed anything yet

	// arrivals counts conventional accesses; it is the witness order for
	// the conventional models (every architectural access performs at a
	// distinct engine instant).
	arrivals uint64

	// Scratch for CommitChunk, reused across chunks (allocation-free at
	// steady state).
	overlay lineset.Map // same-chunk speculative write buffer replica
	seen    lineset.Map // first observed value per word read in the chunk

	violations []Violation
	total      int

	chunks   int
	accesses uint64
}

// New returns an empty checker.
func New() *Checker {
	return &Checker{words: make(map[mem.Addr]wordState)}
}

// Reset empties the checker in place so a warm machine reuse (core.Runner)
// starts the next run's audit from a fresh witness. Capacity is retained
// everywhere it cannot reach the verdict: the witness-memory map is keyed
// (no ordered iteration), the per-processor slices are truncated and
// regrown with the same zero values a cold grow() appends, and the
// overlay/seen scratch maps' slot-order ForEach publishes only commutative
// per-word writes — so a warm checker's violations, counts and WitnessHash
// are bit-identical to a cold one's.
func (c *Checker) Reset() {
	c.MaxViolations = 0
	clear(c.words)
	c.lastOrder = 0
	c.procOrder = c.procOrder[:0]
	c.procSeq = c.procSeq[:0]
	c.procPO = c.procPO[:0]
	c.procSeen = c.procSeen[:0]
	c.arrivals = 0
	c.overlay.Reset()
	c.seen.Reset()
	clear(c.violations) // release Detail strings
	c.violations = c.violations[:0]
	c.total = 0
	c.chunks = 0
	c.accesses = 0
}

func (c *Checker) grow(proc int) {
	for len(c.procOrder) <= proc {
		c.procOrder = append(c.procOrder, 0)
		c.procSeq = append(c.procSeq, 0)
		c.procPO = append(c.procPO, 0)
		c.procSeen = append(c.procSeen, false)
	}
}

func (c *Checker) report(v Violation) {
	c.total++
	max := c.MaxViolations
	if max <= 0 {
		max = DefaultMaxViolations
	}
	if len(c.violations) < max {
		c.violations = append(c.violations, v)
	}
}

// CommitChunk discharges the witness obligations for one committed chunk.
// It must be called at the chunk's commit instant (the arbiter's grant
// event), in grant order — exactly what wiring it into BulkProc.OnCommit
// provides. The chunk's Proc, Seq, CommitOrder and Log fields are read; the
// chunk is not retained.
func (c *Checker) CommitChunk(ch *chunk.Chunk) {
	c.chunks++
	c.accesses += uint64(len(ch.Log))
	c.grow(ch.Proc)

	// Obligation 3: total order. Arrival order must follow the claimed
	// global order, and the per-processor sequence must embed into it.
	if ch.CommitOrder <= c.lastOrder {
		c.report(Violation{
			Kind: KindTotalOrder, Proc: ch.Proc, Order: ch.CommitOrder,
			Detail: fmt.Sprintf("chunk #%d arrived after order %d", ch.Seq, c.lastOrder),
		})
	}
	c.lastOrder = ch.CommitOrder
	if c.procSeen[ch.Proc] {
		if ch.CommitOrder <= c.procOrder[ch.Proc] {
			c.report(Violation{
				Kind: KindTotalOrder, Proc: ch.Proc, Order: ch.CommitOrder,
				Detail: fmt.Sprintf("chunk #%d order not after processor's previous order %d",
					ch.Seq, c.procOrder[ch.Proc]),
			})
		}
		if ch.Seq <= c.procSeq[ch.Proc] {
			c.report(Violation{
				Kind: KindTotalOrder, Proc: ch.Proc, Order: ch.CommitOrder,
				Detail: fmt.Sprintf("chunk #%d committed after chunk #%d of the same processor",
					ch.Seq, c.procSeq[ch.Proc]),
			})
		}
	}
	c.procOrder[ch.Proc] = ch.CommitOrder
	c.procSeq[ch.Proc] = ch.Seq
	c.procSeen[ch.Proc] = true

	// Obligations 1 and 2: walk the program-order log. overlay replicates
	// the chunk's speculative write buffer; seen pins the first observed
	// value of every word read before it is locally written.
	for _, rec := range ch.Log {
		a := rec.Addr.Align()
		if rec.IsStore {
			c.overlay.Put(a, rec.Value)
			continue
		}
		if v, ok := c.overlay.Get(a); ok {
			// Same-chunk forwarding.
			if rec.Value != v {
				c.report(Violation{
					Kind: KindForwarding, Proc: ch.Proc, Order: ch.CommitOrder, Addr: rec.Addr,
					Got: rec.Value, Want: v,
					Detail: fmt.Sprintf("chunk #%d load not forwarded from same-chunk store", ch.Seq),
				})
			}
			continue
		}
		if v, ok := c.seen.Get(a); ok {
			// Re-read with no intervening same-chunk store: atomicity
			// demands the same value.
			if rec.Value != v {
				c.report(Violation{
					Kind: KindAtomicity, Proc: ch.Proc, Order: ch.CommitOrder, Addr: rec.Addr,
					Got: rec.Value, Want: v,
					Detail: fmt.Sprintf("chunk #%d re-read diverged: another commit interleaved", ch.Seq),
				})
			}
			continue
		}
		// First read of the word: the witness memory as of this commit
		// point must explain it.
		want := c.words[a].val
		if rec.Value != want {
			w := c.words[a]
			c.report(Violation{
				Kind: KindCoherence, Proc: ch.Proc, Order: ch.CommitOrder, Addr: rec.Addr,
				Got: rec.Value, Want: want,
				Detail: fmt.Sprintf("chunk #%d load differs from last store (proc %d, order %d)",
					ch.Seq, w.proc, w.order),
			})
		}
		c.seen.Put(a, rec.Value)
	}

	// Publish the chunk's writes into the witness memory at its commit
	// point, then reset the scratch in place.
	c.overlay.ForEach(func(a mem.Addr, v uint64) {
		c.words[a] = wordState{val: v, order: ch.CommitOrder, proc: ch.Proc}
	})
	c.overlay.Reset()
	c.seen.Reset()
}

// Access discharges the witness obligations for one conventional-model
// architectural access at its perform instant. po is the processor's
// program-order index for the operation (assigned at dispatch, strictly
// increasing per processor); fwd marks a load served from the processor's
// own store buffer, which is exempt from the coherence check (its ordering
// debt is collected when the buffered store itself performs, as a
// program-order violation).
//
//sim:hotpath
func (c *Checker) Access(proc int, po uint64, store bool, a mem.Addr, v uint64, fwd bool) {
	c.arrivals++
	c.accesses++
	c.grow(proc)
	aa := a.Align()

	if po <= c.procPO[proc] {
		c.report(Violation{
			Kind: KindProgramOrder, Proc: proc, Order: c.arrivals, Addr: a, Got: v,
			//lint:alloc violation-report formatting; runs only when an SC violation is detected
			Detail: fmt.Sprintf("op po=%d performed after po=%d", po, c.procPO[proc]),
		})
	} else {
		c.procPO[proc] = po
	}

	if store {
		c.words[aa] = wordState{val: v, order: c.arrivals, proc: proc}
		return
	}
	if fwd {
		return
	}
	if want := c.words[aa].val; v != want {
		w := c.words[aa]
		c.report(Violation{
			Kind: KindCoherence, Proc: proc, Order: c.arrivals, Addr: a, Got: v, Want: want,
			//lint:alloc violation-report formatting; runs only when an SC violation is detected
			Detail: fmt.Sprintf("load differs from last store (proc %d, order %d)", w.proc, w.order),
		})
	}
}

// Ok reports whether no obligation failed.
func (c *Checker) Ok() bool { return c.total == 0 }

// Total returns the number of violations detected, including any past the
// retention cap.
func (c *Checker) Total() int { return c.total }

// Violations returns a copy of the retained violation records. The copy
// matters for warm reuse: Reset scrubs the checker's internal slice in
// place, so handing out the live slice would retroactively zero records a
// caller (or a previous run's Result) still holds.
func (c *Checker) Violations() []Violation {
	return append([]Violation(nil), c.violations...)
}

// Strings renders the retained violations, appending a self-describing
// truncation marker when the retention cap was hit.
func (c *Checker) Strings() []string {
	if c.total == 0 {
		return nil
	}
	out := make([]string, 0, len(c.violations)+1)
	for _, v := range c.violations {
		out = append(out, v.String())
	}
	if c.total > len(c.violations) {
		out = append(out, fmt.Sprintf("sccheck: ... and %d more violations (cap reached)", c.total-len(c.violations)))
	}
	return out
}

// Chunks returns how many committed chunks were checked.
func (c *Checker) Chunks() int { return c.chunks }

// Accesses returns how many logged accesses were checked (chunk log entries
// plus conventional architectural accesses).
func (c *Checker) Accesses() uint64 { return c.accesses }

package workload

import "bulksc/internal/mem"

// Litmus programs: the classic consistency tests used to validate that
// BulkSC (and the SC baseline) only ever produce sequentially consistent
// outcomes, and that the RC baseline is genuinely weaker.
//
// Each program uses dedicated heap words; the final memory/register state
// is inspected by the consistency tests through the access logs.

// LitmusX and LitmusY are the two shared words used by the two-variable
// tests; LitmusR is where observer threads store what they read, one line
// per (thread, slot).
var (
	litmusRegion = NewRegion(slotLitmus, 0, 4096)
	// LitmusX and LitmusY live on different cache lines.
	LitmusX = litmusRegion.Word(0)
	LitmusY = litmusRegion.Word(64)
)

// LitmusOut returns the address where thread t publishes its slot-th
// observed value. Each (t, slot) gets its own cache line so result
// publication never interferes with the test.
func LitmusOut(t, slot int) mem.Addr {
	return litmusRegion.Word(1024 + (t*8+slot)*4)
}

// StoreBuffering is the SB litmus test:
//
//	T0: x = 1; r0 = y        T1: y = 1; r1 = x
//
// Under SC, (r0, r1) = (0, 0) is forbidden. Under RC/TSO-like reordering
// it is observable. pad adds private work before the test to desynchronize
// the threads slightly.
func StoreBuffering(pad int) *Program {
	return Build("litmus-sb", 2, 1, func(b *Builder) {
		b.StackWork(pad * (b.Tid() + 1))
		if b.Tid() == 0 {
			b.Store(LitmusX)
			b.Load(LitmusY)
			b.Store(LitmusOut(0, 0)) // publishes r0 (value wired by proc log)
		} else {
			b.Store(LitmusY)
			b.Load(LitmusX)
			b.Store(LitmusOut(1, 0))
		}
	})
}

// MessagePassing is the MP litmus test:
//
//	T0: x = 1; y = 1         T1: r0 = y; r1 = x
//
// Under SC, r0 = 1 ⇒ r1 = 1.
func MessagePassing(pad int) *Program {
	return Build("litmus-mp", 2, 1, func(b *Builder) {
		if b.Tid() == 0 {
			b.StackWork(pad)
			b.Store(LitmusX)
			b.Store(LitmusY)
		} else {
			b.StackWork(pad / 2)
			b.Load(LitmusY)
			b.Load(LitmusX)
		}
	})
}

// IRIW is the independent-reads-of-independent-writes test:
//
//	T0: x = 1    T1: y = 1    T2: r0 = x; r1 = y    T3: r2 = y; r3 = x
//
// Under SC the two readers may not observe the writes in opposite orders:
// (r0,r1,r2,r3) = (1,0,1,0) is forbidden.
func IRIW(pad int) *Program {
	return Build("litmus-iriw", 4, 1, func(b *Builder) {
		switch b.Tid() {
		case 0:
			b.StackWork(pad)
			b.Store(LitmusX)
		case 1:
			b.StackWork(pad + pad/2)
			b.Store(LitmusY)
		case 2:
			b.StackWork(pad / 2)
			b.Load(LitmusX)
			b.Load(LitmusY)
		default:
			b.StackWork(pad / 2)
			b.Load(LitmusY)
			b.Load(LitmusX)
		}
	})
}

// CoherenceOrder stresses write serialization on a single hot word: every
// thread alternately increments-by-store and reads it many times. The
// replay checker validates that all committed observations are consistent
// with a single order.
func CoherenceOrder(iters int) *Program {
	return Build("litmus-co", 4, 1, func(b *Builder) {
		for i := 0; i < iters; i++ {
			b.Load(LitmusX)
			b.Compute(3)
			b.Store(LitmusX)
			b.Compute(5)
		}
	})
}

// DekkerLock exercises mutual exclusion through chunked test-and-set: all
// threads repeatedly acquire one lock, read-modify-write a shared counter
// pair, and release. If atomicity or SC broke, the two counter words would
// diverge; the consistency test checks committed values.
func DekkerLock(iters, nthreads int) *Program {
	return Build("litmus-lock", nthreads, 1, func(b *Builder) {
		c0 := litmusRegion.Word(128)
		c1 := litmusRegion.Word(192)
		for i := 0; i < iters; i++ {
			b.Acquire(slotLitmus*8 + 1)
			b.Load(c0)
			b.Compute(2)
			b.Store(c0)
			b.Load(c1)
			b.Compute(2)
			b.Store(c1)
			b.Release(slotLitmus*8 + 1)
			b.StackWork(12)
		}
	})
}

// LoadBuffering is the LB litmus test:
//
//	T0: r0 = x; y = 1         T1: r1 = y; x = 1
//
// Under SC (and any machine preserving load→store order) r0 = r1 = 1 is
// forbidden.
func LoadBuffering(pad int) *Program {
	return Build("litmus-lb", 2, 1, func(b *Builder) {
		b.StackWork(pad * (b.Tid() + 1))
		if b.Tid() == 0 {
			b.Load(LitmusX)
			b.Store(LitmusY)
		} else {
			b.Load(LitmusY)
			b.Store(LitmusX)
		}
	})
}

// WRC is the write-to-read-causality test:
//
//	T0: x = 1    T1: r0 = x; y = 1    T2: r1 = y; r2 = x
//
// Under SC, r0 = 1 ∧ r1 = 1 ⇒ r2 = 1 (causality is transitive).
func WRC(pad int) *Program {
	return Build("litmus-wrc", 3, 1, func(b *Builder) {
		switch b.Tid() {
		case 0:
			b.StackWork(pad)
			b.Store(LitmusX)
		case 1:
			b.StackWork(pad / 2)
			b.Load(LitmusX)
			b.Store(LitmusY)
		default:
			b.StackWork(pad / 3)
			b.Load(LitmusY)
			b.Load(LitmusX)
		}
	})
}

// CoRR is the coherence read-read test: a reader loading the same location
// twice must not see a newer value then an older one.
func CoRR(pad int) *Program {
	return Build("litmus-corr", 2, 1, func(b *Builder) {
		if b.Tid() == 0 {
			b.StackWork(pad)
			b.Store(LitmusX)
		} else {
			b.Load(LitmusX)
			b.Compute(4)
			b.Load(LitmusX)
		}
	})
}

// PadThreads widens prog to nthreads threads for big-machine litmus runs:
// the original threads are kept verbatim and every added thread runs only
// private stack work, so the padding adds timing noise, arbitration load
// and directory pressure without touching the litmus variables or the
// synchronization structure. work bounds each filler thread's dynamic
// instruction count.
func PadThreads(prog *Program, nthreads, work int, seed int64) *Program {
	if nthreads <= len(prog.Threads) {
		return prog
	}
	out := &Program{Name: prog.Name, Threads: make([][]Instr, 0, nthreads)}
	out.Threads = append(out.Threads, prog.Threads...)
	for tid := len(prog.Threads); tid < nthreads; tid++ {
		b := NewBuilder(tid, nthreads, seed)
		for b.Len() < work {
			b.StackWork(8)
			b.Compute(4)
		}
		out.Threads = append(out.Threads, b.End())
	}
	return out
}

package workload

import (
	"testing"

	"bulksc/internal/mem"
)

func TestRegistryComplete(t *testing.T) {
	if len(Splash2()) != 11 {
		t.Fatalf("Splash2 lists %d apps, want 11", len(Splash2()))
	}
	if len(All()) != 13 {
		t.Fatalf("All lists %d apps, want 13", len(All()))
	}
	for _, name := range All() {
		if _, err := Get(name); err != nil {
			t.Errorf("Get(%q): %v", name, err)
		}
	}
	if _, err := Get("nonesuch"); err == nil {
		t.Error("Get of unknown app succeeded")
	}
}

func TestGeneratorsProduceWork(t *testing.T) {
	for _, name := range All() {
		g, _ := Get(name)
		p := g(4, 5000, 42)
		if p.Name != name {
			t.Errorf("%s: program named %q", name, p.Name)
		}
		if len(p.Threads) != 4 {
			t.Errorf("%s: %d threads, want 4", name, len(p.Threads))
			continue
		}
		for tid, ins := range p.Threads {
			// Thread 0 sets the iteration count and meets the budget
			// exactly; other threads may come in slightly shorter.
			n := dynLen(ins)
			if n < 4000 {
				t.Errorf("%s thread %d: only %d dynamic instructions, want ≥4000", name, tid, n)
			}
			if ins[len(ins)-1].Kind != OpEnd {
				t.Errorf("%s thread %d: stream does not end with OpEnd", name, tid)
			}
		}
	}
}

func dynLen(ins []Instr) int {
	n := 0
	for _, in := range ins {
		if in.Kind == OpCompute {
			n += int(in.N)
		} else {
			n++
		}
	}
	return n
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range []string{"fft", "radix", "sjbb2k"} {
		g, _ := Get(name)
		a, b := g(4, 3000, 7), g(4, 3000, 7)
		for tid := range a.Threads {
			if len(a.Threads[tid]) != len(b.Threads[tid]) {
				t.Fatalf("%s: nondeterministic stream length", name)
			}
			for i := range a.Threads[tid] {
				if a.Threads[tid][i] != b.Threads[tid][i] {
					t.Fatalf("%s: nondeterministic instr %d of thread %d", name, i, tid)
				}
			}
		}
		c := g(4, 3000, 8)
		same := true
		for tid := range a.Threads {
			if len(a.Threads[tid]) != len(c.Threads[tid]) {
				same = false
				break
			}
		}
		if same {
			diff := false
			for i, in := range a.Threads[0] {
				if c.Threads[0][i] != in {
					diff = true
					break
				}
			}
			if !diff {
				t.Errorf("%s: seed has no effect", name)
			}
		}
	}
}

func TestBalancedSync(t *testing.T) {
	for _, name := range All() {
		g, _ := Get(name)
		p := g(4, 8000, 1)
		barriers := make([]int, 4)
		for tid, ins := range p.Threads {
			depth := 0
			for _, in := range ins {
				switch in.Kind {
				case OpAcquire:
					depth++
				case OpRelease:
					depth--
					if depth < 0 {
						t.Fatalf("%s thread %d: release without acquire", name, tid)
					}
				case OpBarrier:
					barriers[tid]++
					if in.N != 4 {
						t.Fatalf("%s: barrier with N=%d, want 4", name, in.N)
					}
				}
			}
			if depth != 0 {
				t.Errorf("%s thread %d: %d unreleased locks", name, tid, depth)
			}
		}
		for tid := 1; tid < 4; tid++ {
			if barriers[tid] != barriers[0] {
				t.Errorf("%s: thread %d reaches %d barriers, thread 0 reaches %d — deadlock",
					name, tid, barriers[tid], barriers[0])
			}
		}
	}
}

func TestAddressesWellFormed(t *testing.T) {
	for _, name := range All() {
		g, _ := Get(name)
		p := g(4, 4000, 3)
		for tid, ins := range p.Threads {
			for _, in := range ins {
				switch in.Kind {
				case OpLoad, OpStore:
					if in.Addr != in.Addr.Align() {
						t.Fatalf("%s: unaligned access %#x", name, uint64(in.Addr))
					}
					if mem.IsSync(in.Addr) {
						t.Fatalf("%s: plain access to sync region %#x", name, uint64(in.Addr))
					}
					if mem.IsStack(in.Addr) {
						// Stack accesses must target the thread's own stack.
						own := in.Addr >= mem.StackAddr(tid, 0) &&
							in.Addr < mem.StackAddr(tid, 0)+mem.StackSize
						if !own {
							t.Fatalf("%s thread %d: foreign stack access %#x", name, tid, uint64(in.Addr))
						}
					}
				case OpAcquire, OpRelease:
					if !mem.IsSync(in.Addr) {
						t.Fatalf("%s: lock outside sync region", name)
					}
				case OpBarrier:
					want := mem.SyncAddr(BarrierFlagBase)
					if in.Addr != want {
						t.Fatalf("%s: barrier lock %#x, want %#x", name, uint64(in.Addr), uint64(want))
					}
				}
			}
		}
	}
}

func TestMemoryOpMix(t *testing.T) {
	// Chunk-level statistics depend on a plausible memory-instruction
	// fraction; check it stays within a broad realistic band.
	for _, name := range All() {
		g, _ := Get(name)
		p := g(8, 20000, 5)
		memOps, total := 0, 0
		for _, ins := range p.Threads {
			for _, in := range ins {
				switch in.Kind {
				case OpLoad, OpStore:
					memOps++
					total++
				case OpCompute:
					total += int(in.N)
				case OpAcquire, OpRelease:
					memOps += 2
					total += 2
				}
			}
		}
		frac := float64(memOps) / float64(total)
		if frac < 0.10 || frac > 0.60 {
			t.Errorf("%s: memory fraction %.2f outside [0.10, 0.60]", name, frac)
		}
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	type span struct {
		name string
		lo   mem.Addr
		hi   mem.Addr
	}
	var spans []span
	for slot := 0; slot < 14; slot++ {
		for id := 0; id < 3; id++ {
			r := NewRegion(slot, id, 1<<15)
			spans = append(spans, span{
				name: "region",
				lo:   r.Base,
				hi:   r.Base + mem.Addr(r.Words*mem.WordBytes),
			})
		}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestLitmusShapes(t *testing.T) {
	sb := StoreBuffering(16)
	if len(sb.Threads) != 2 {
		t.Fatal("SB must have 2 threads")
	}
	mp := MessagePassing(16)
	if len(mp.Threads) != 2 {
		t.Fatal("MP must have 2 threads")
	}
	iriw := IRIW(16)
	if len(iriw.Threads) != 4 {
		t.Fatal("IRIW must have 4 threads")
	}
	if LitmusX.LineOf() == LitmusY.LineOf() {
		t.Fatal("litmus variables share a cache line")
	}
	lock := DekkerLock(10, 4)
	acq := 0
	for _, in := range lock.Threads[0] {
		if in.Kind == OpAcquire {
			acq++
		}
	}
	if acq != 10 {
		t.Fatalf("DekkerLock thread has %d acquires, want 10", acq)
	}
}

func TestBuilderComputeCoalesces(t *testing.T) {
	b := NewBuilder(0, 1, 1)
	b.Compute(5)
	b.Compute(7)
	ins := b.End()
	if len(ins) != 2 || ins[0].N != 12 {
		t.Fatalf("compute blocks not coalesced: %+v", ins)
	}
	b2 := NewBuilder(0, 1, 1)
	b2.Compute(0)
	b2.Compute(-3)
	if len(b2.End()) != 1 {
		t.Fatal("non-positive compute emitted instructions")
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpLoad.String() != "load" || OpBarrier.String() != "barrier" || OpEnd.String() != "end" {
		t.Fatal("OpKind strings wrong")
	}
}

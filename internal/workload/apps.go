package workload

import "math/rand"

// This file defines the evaluation suite: synthetic kernels reproducing
// the sharing structure of the eleven SPLASH-2 applications the paper runs
// (all but volrend, as in the paper) and of the SPECjbb2000 / SPECweb2005
// commercial workloads. Each generator documents which behavioural
// fingerprints of the paper's Tables 3/4 it is built to reproduce.
//
// Three design rules keep the chunk-level statistics in the paper's
// regime:
//
//  1. Private updates walk working windows whose revisit period exceeds
//     the two-chunks-in-flight overlap (several thousand instructions), so
//     a line's rewrite finds it dirty non-speculative — the pattern the
//     dynamically-private optimization captures. Hotter windows would
//     inherit W classification from the in-flight predecessor chunk
//     forever; colder ones would never leave the warmup transient.
//  2. Synchronization is sparse: locks amortized over thousands of
//     instructions and barriers over 5-15k, approaching (on a compressed
//     scale) the real codes, where chunked commit makes sync sections
//     serialize at chunk granularity.
//  3. Shared writes are deliberate and metered per application: boundary
//     rows (ocean), transposed blocks (fft), scattered permutation writes
//     (radix), pivot panels (lu), logs and order tables (commercial).
//
// Randomness policy: every generator draws exclusively from the seeded
// per-thread sources handed to it (Builder.Rng / Builder.StructRng, or a
// *rand.Rand parameter derived from them) — never from the process-global
// math/rand generator, whose unseeded state would break the fixed-seed
// bit-reproducibility that the golden hashes in internal/core pin down.
// The simlint determinism pass (internal/analysis/determinism) enforces
// this statically: global rand.* calls in this package fail `make lint`.

// Per-app slot indices keep heap regions disjoint.
const (
	slotBarnes = iota
	slotCholesky
	slotFFT
	slotFMM
	slotLU
	slotOcean
	slotRadiosity
	slotRadix
	slotRaytrace
	slotWaterNS
	slotWaterSP
	slotSjbb
	slotSweb
	slotLitmus
)

// randRead issues n loads at random words of r.
func randRead(b *Builder, r Region, n, computePer int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		b.Load(r.Word(rng.Intn(r.Words)))
		b.Compute(computePer)
	}
}

// rmwUnderLock acquires lock, does a small read-modify-write burst on
// words near base, and releases.
func rmwUnderLock(b *Builder, lock int, r Region, base, words int) {
	b.Acquire(lock)
	for i := 0; i < words; i++ {
		b.Load(r.Word(base + i))
		b.Compute(2)
		b.Store(r.Word(base + i))
	}
	b.Release(lock)
}

// privateRMW models compute on a thread-private working window: loads and
// stores walking a cyclic window of `window` words (the caller sizes the
// window so the cycle period spans several chunks).
func privateRMW(b *Builder, r Region, base, window, n, computePer int, cursor *int) {
	for i := 0; i < n; i++ {
		a := r.Word(base + *cursor)
		b.Load(a)
		b.Compute(computePer)
		b.Store(a)
		*cursor = (*cursor + 1) % window
	}
}

func init() {
	Register("fft", genFFT)
	Register("lu", genLU)
	Register("radix", genRadix)
	Register("barnes", genBarnes)
	Register("fmm", genFMM)
	Register("ocean", genOcean)
	Register("cholesky", genCholesky)
	Register("radiosity", genRadiosity)
	Register("raytrace", genRaytrace)
	Register("water-ns", genWaterNS)
	Register("water-sp", genWaterSP)
	Register("sjbb2k", genSjbb)
	Register("sweb2005", genSweb)
}

// genFFT: long butterfly phases over the thread's rows with a private
// scratch window, then an all-to-all transpose, one barrier per phase
// pair (~10k instructions). Fingerprints: large R, a few transposed
// output lines per chunk in W, large private write set, high empty-W
// fraction.
func genFFT(nthreads, work int, seed int64) *Program {
	data := NewRegion(slotFFT, 0, 1<<15)
	scratch := NewRegion(slotFFT, 1, 1<<15)
	part := data.Words / nthreads
	scrPart := scratch.Words / nthreads
	const window = 320
	return BuildIter("fft", nthreads, work, seed, func(b *Builder, iter int) {
		mine := b.Tid() * part
		scr := b.Tid() * scrPart
		cursor := 0
		// Butterfly passes: read own rows, write the scratch window.
		for i := 0; i < 2000; i++ {
			b.Load(data.Word(mine + (iter*389+i*3)%part))
			b.Compute(4)
			if i%3 == 0 {
				b.Store(scratch.Word(scr + cursor))
				cursor = (cursor + 1) % window
			}
			b.Compute(2)
			if i%64 == 0 {
				b.StackWork(20)
			}
		}
		// Transpose: read a block from every other partition, write a
		// couple of words into own partition (re-read by others).
		for o := 1; o < b.NThreads(); o++ {
			other := ((b.Tid() + o) % b.NThreads()) * part
			// At machine sizes where the per-thread partition shrinks to
			// the 32-word transpose block (≥1k threads on the 32k-word
			// region), the block spans the whole partition.
			span := part - 32
			if span < 1 {
				span = 1
			}
			at := b.Rng().Intn(span)
			for i := 0; i < 16; i++ {
				b.Load(data.Word(other + at + i))
				b.Compute(4)
			}
			b.Store(data.Word(mine + (at+o*127)%part))
			b.Compute(3)
			b.Store(data.Word(mine + (at+o*255)%part))
		}
		b.Barrier()
	})
}

// genLU: blocked dense LU, one barrier per step (~7k instructions). The
// step owner factors the pivot block (shared writes: everyone read it);
// everyone reads the pivot and updates own blocks in a slow private
// window. Fingerprints: small R, small W concentrated in owner chunks,
// high empty-W fraction.
func genLU(nthreads, work int, seed int64) *Program {
	const blockWords = 256
	pivot := NewRegion(slotLU, 0, blockWords*16)
	blocks := NewRegion(slotLU, 1, 1<<14)
	myWords := blocks.Words / nthreads
	const window = 768
	return BuildIter("lu", nthreads, work, seed, func(b *Builder, step int) {
		mine := b.Tid() * myWords
		owner := step % b.NThreads()
		pbase := (step % 16) * blockWords
		cursor := step * 768 % window
		if b.Tid() == owner {
			for i := 0; i < blockWords; i++ {
				b.Load(pivot.Word(pbase + i))
				b.Compute(8)
				b.Store(pivot.Word(pbase + i))
			}
		} else {
			b.StackWork(blockWords * 10)
		}
		b.Barrier()
		// Everyone reads the pivot block and updates own blocks.
		for i := 0; i < blockWords; i++ {
			b.Load(pivot.Word(pbase + i))
			b.Compute(5)
		}
		privateRMW(b, blocks, mine, window, 512, 9, &cursor)
		b.StackWork(128)
	})
}

// genRadix: radix sort. Long sequential key-reading passes with private
// counting, then scattered permutation writes into a >2 MB shared array.
// The paper's anomalous application: moderate W, heavy signature aliasing
// (scattered writes across a region larger than the signature's address
// window), ~1/3 empty-W commits, barrier-heavy.
func genRadix(nthreads, work int, seed int64) *Program {
	keys := NewRegion(slotRadix, 0, 3<<17) // 3 MB source
	dest := NewRegion(slotRadix, 1, 3<<17) // 3 MB destination
	hist := NewRegion(slotRadix, 2, 2048)
	part := keys.Words / nthreads
	return BuildIter("radix", nthreads, work, seed, func(b *Builder, iter int) {
		mine := b.Tid() * part
		pos := iter * 3000
		// Local pass: sequential key reads + private counting.
		for i := 0; i < 2400; i++ {
			b.Load(keys.Word(mine + (pos+i)%part))
			b.Compute(3)
			if i%16 == 15 {
				b.StackWork(10)
			}
		}
		// Merge local histogram into the global one under a striped lock.
		hbase := b.Rng().Intn(hist.Words - 8)
		rmwUnderLock(b, slotRadix*8+hbase%16, hist, hbase, 3)
		// Permutation pass: scattered writes into the shared destination.
		for i := 0; i < 600; i++ {
			b.Load(keys.Word(mine + (pos+2400+i)%part))
			b.Compute(4)
			if i%8 == 0 {
				b.Store(dest.Word(b.Rng().Intn(dest.Words)))
			}
		}
		b.Barrier()
	})
}

// genBarnes: Barnes-Hut N-body. A read-mostly shared octree traversed
// with temporal locality; per-thread bodies updated in a slow private
// window; rare tree-cell updates under striped locks; very rare barriers.
// Fingerprints: mid-size R, near-zero W, ~95% empty-W commits.
func genBarnes(nthreads, work int, seed int64) *Program {
	tree := NewRegion(slotBarnes, 0, 1<<15)
	bodies := NewRegion(slotBarnes, 1, 1<<15)
	part := bodies.Words / nthreads
	const window = 128
	return BuildIter("barnes", nthreads, work, seed, func(b *Builder, iter int) {
		mine := b.Tid() * part
		cursor := iter * 4 % window
		node := b.Rng().Intn(tree.Words / 8)
		for i := 0; i < 20; i++ {
			b.Load(tree.Word(node*8 + i%8))
			b.Compute(7)
			if i%4 == 3 {
				node = (node + 1 + b.Rng().Intn(16)) % (tree.Words / 8)
			}
		}
		privateRMW(b, bodies, mine, window, 4, 5, &cursor)
		b.StackWork(48)
		if b.Rng().Intn(64) == 0 {
			cell := b.Rng().Intn(256)
			rmwUnderLock(b, slotBarnes*8+cell%6, tree, cell*16, 2)
		}
		if b.StructRng().Intn(400) == 0 {
			b.Barrier()
		}
	})
}

// genFMM: fast multipole method — like barnes with heavier private
// computation per interaction and even less shared writing.
func genFMM(nthreads, work int, seed int64) *Program {
	cells := NewRegion(slotFMM, 0, 1<<15)
	mine := NewRegion(slotFMM, 1, 1<<14)
	part := mine.Words / nthreads
	const window = 64
	return BuildIter("fmm", nthreads, work, seed, func(b *Builder, iter int) {
		base := b.Tid() * part
		cursor := iter * 3 % window
		cell := b.Rng().Intn(cells.Words / 16)
		for i := 0; i < 24; i++ {
			b.Load(cells.Word(cell*16 + i%16))
			b.Compute(9)
		}
		privateRMW(b, mine, base, window, 3, 6, &cursor)
		b.StackWork(64)
		if b.Rng().Intn(120) == 0 {
			cellW := b.Rng().Intn(128)
			rmwUnderLock(b, slotFMM*8+cellW%4, cells, cellW*8, 1)
		}
		if b.StructRng().Intn(500) == 0 {
			b.Barrier()
		}
	})
}

// genOcean: red-black stencil over row-partitioned grids, one barrier per
// sweep (~6k instructions). Boundary-row rewrites are genuine shared
// writes (the suite's largest W); interior rows cycle slowly in place.
func genOcean(nthreads, work int, seed int64) *Program {
	grid := NewRegion(slotOcean, 0, 1<<15)
	rowWords := 64
	rows := grid.Words / rowWords
	bandRows := rows / nthreads
	return BuildIter("ocean", nthreads, work, seed, func(b *Builder, iter int) {
		first := b.Tid() * bandRows
		// Read neighbour boundary rows.
		for _, nb := range []int{first - 1, first + bandRows} {
			if nb < 0 || nb >= rows {
				b.StackWork(rowWords * 3)
				continue
			}
			for i := 0; i < rowWords; i += 2 {
				b.Load(grid.Word(nb*rowWords + i))
				b.Compute(4)
			}
		}
		// Rewrite stretches of own boundary rows (shared with neighbour).
		for _, edgeRow := range []int{first, first + bandRows - 1} {
			at := (iter * 24) % (rowWords - 48)
			for i := 0; i < 48; i += 2 {
				b.Load(grid.Word(edgeRow*rowWords + at + i))
				b.Compute(8)
				b.Store(grid.Word(edgeRow*rowWords + at + i))
			}
		}
		// Sweep interior rows in place (private after warmup).
		r0 := first + 1 + (iter*12)%(bandRows-14)
		for r := r0; r < r0+12; r++ {
			for i := 0; i < rowWords; i += 4 {
				b.Load(grid.Word(r*rowWords + i))
				b.Load(grid.Word(r*rowWords + i + 2))
				b.Compute(14)
				b.Store(grid.Word(r*rowWords + i))
			}
		}
		b.StackWork(64)
		b.Barrier()
	})
}

// genCholesky: sparse supernodal factorization driven by a lock-protected
// task queue with long tasks (~5k instructions). Fingerprints: the
// largest SPLASH-2 read set, small W, high empty-W fraction, low squash
// rate.
func genCholesky(nthreads, work int, seed int64) *Program {
	panels := NewRegion(slotCholesky, 0, 1<<16)
	queue := NewRegion(slotCholesky, 1, 64)
	blocks := NewRegion(slotCholesky, 2, 1<<14)
	part := blocks.Words / nthreads
	const window = 128
	return BuildIter("cholesky", nthreads, work, seed, func(b *Builder, iter int) {
		base := b.Tid() * part
		cursor := iter * 80 % 128
		// Dequeue a task (short critical section, long task body).
		rmwUnderLock(b, slotCholesky*8, queue, 0, 1)
		// Read a large panel with clustering.
		p := b.Rng().Intn(panels.Words / 512)
		for i := 0; i < 640; i++ {
			b.Load(panels.Word(p*512 + (i*3)%512))
			b.Compute(5)
			if i%80 == 79 {
				b.StackWork(24)
			}
		}
		// Update own blocks in a slow private window.
		privateRMW(b, blocks, base, window, 80, 4, &cursor)
		// Occasionally publish a finished supernode (shared write).
		if b.Rng().Intn(10) == 0 {
			b.Store(panels.Word(p*512 + b.Rng().Intn(8)))
		}
	})
}

// genRadiosity: irregular task-parallel light transport with work
// stealing and ~5k-instruction tasks under striped per-patch locks.
// Fingerprints: moderate R, a noticeable squash rate from irregular
// sharing, high private-buffer supply rate when patches migrate.
func genRadiosity(nthreads, work int, seed int64) *Program {
	patches := NewRegion(slotRadiosity, 0, 1<<15)
	queues := NewRegion(slotRadiosity, 1, 256)
	nPatches := patches.Words / 64
	return BuildIter("radiosity", nthreads, work, seed, func(b *Builder, iter int) {
		// Each thread mostly works its own patch neighbourhood.
		myPatch := (b.Tid()*nPatches/b.NThreads() + iter) % nPatches
		if b.Rng().Intn(12) == 0 {
			myPatch = b.Rng().Intn(nPatches)
			victim := b.Rng().Intn(b.NThreads())
			rmwUnderLock(b, slotRadiosity*8+victim%4, queues, victim*8, 1)
		}
		lock := slotRadiosity*8 + 8 + myPatch%24
		b.Acquire(lock)
		for i := 0; i < 64; i++ {
			b.Load(patches.Word(myPatch*64 + i))
			b.Compute(5)
			if i%8 == 0 {
				b.Store(patches.Word(myPatch*64 + i))
			}
		}
		b.Release(lock)
		// Gather incident energy from random patches (read-only).
		randRead(b, patches, 16, 6, b.Rng())
		b.StackWork(420)
	})
}

// genRaytrace: a read-only scene traversed heavily (~4k instructions per
// tile), one hot task-queue lock — the suite's highest genuine conflict
// rate — and a private framebuffer window.
func genRaytrace(nthreads, work int, seed int64) *Program {
	scene := NewRegion(slotRaytrace, 0, 1<<16)
	queue := NewRegion(slotRaytrace, 1, 16)
	frame := NewRegion(slotRaytrace, 2, 1<<14)
	part := frame.Words / nthreads
	const window = 64
	return BuildIter("raytrace", nthreads, work, seed, func(b *Builder, iter int) {
		base := b.Tid() * part
		cursor := iter * 24 % 64
		// Grab a tile from the single queue.
		rmwUnderLock(b, slotRaytrace*8, queue, 0, 1)
		// Trace: long clustered read chains through the scene.
		node := b.Rng().Intn(scene.Words / 8)
		for i := 0; i < 480; i++ {
			b.Load(scene.Word((node*8 + i*5) % scene.Words))
			b.Compute(6)
			if i%16 == 15 {
				node = b.Rng().Intn(scene.Words / 8)
			}
			if i%60 == 59 {
				b.StackWork(16)
			}
		}
		// Write the pixel tile into the private window.
		for i := 0; i < 24; i++ {
			b.Store(frame.Word(base + cursor))
			cursor = (cursor + 1) % window
			b.Compute(2)
		}
	})
}

// genWater builds water-ns / water-sp: molecular dynamics with almost
// everything private. Positions are published once per long timestep (the
// only shared writes); remote position reads are occasional. water-sp
// (spatial boxes) reads fewer remote molecules than water-ns (O(n²)
// pairs). Fingerprints: ≥95% empty-W commits, near-zero squashes, large
// private write sets.
func genWater(slot int, name string, remoteEvery int) Generator {
	return func(nthreads, work int, seed int64) *Program {
		pos := NewRegion(slot, 0, 1<<12)
		acc := NewRegion(slot, 1, 1<<14)
		global := NewRegion(slot, 2, 64)
		posPart := pos.Words / nthreads
		accPart := acc.Words / nthreads
		const window = 320
		return BuildIter(name, nthreads, work, seed, func(b *Builder, iter int) {
			pbase := b.Tid() * posPart
			abase := b.Tid() * accPart
			cursor := iter * 10 % window
			// Once per long timestep, publish a few position words.
			if iter%96 == 0 {
				at := (iter / 96 * 8) % (posPart - 8)
				for i := 0; i < 8; i++ {
					b.Store(pos.Word(pbase + at + i))
					b.Compute(3)
				}
			}
			// Private force accumulation.
			privateRMW(b, acc, abase, window, 5, 16, &cursor)
			// Occasional remote position reads.
			if iter%remoteEvery == 0 {
				other := b.Rng().Intn(b.NThreads())
				at := b.Rng().Intn(posPart - 4)
				for i := 0; i < 4; i++ {
					b.Load(pos.Word(other*posPart + at + i))
					b.Compute(8)
				}
			}
			b.StackWork(28)
			b.Compute(44)
			// Very rare global accumulation.
			if b.Rng().Intn(400) == 0 {
				rmwUnderLock(b, slot*8, global, 0, 2)
			}
			if b.StructRng().Intn(600) == 0 {
				b.Barrier()
			}
		})
	}
}

func genWaterNS(nthreads, work int, seed int64) *Program {
	return genWater(slotWaterNS, "water-ns", 3)(nthreads, work, seed)
}

func genWaterSP(nthreads, work int, seed int64) *Program {
	return genWater(slotWaterSP, "water-sp", 8)(nthreads, work, seed)
}

// genSjbb: SPECjbb2000 proxy — warehouse transactions (~2.5k
// instructions) over private B-tree-ish records, a large shared item
// catalog, order insertions into shared tables under striped locks, and
// occasional cross-warehouse payments. Fingerprints: large R, moderate W,
// ~50% empty-W commits, big footprint.
func genSjbb(nthreads, work int, seed int64) *Program {
	catalog := NewRegion(slotSjbb, 0, 3<<17) // 3 MB shared catalog
	warehouses := NewRegion(slotSjbb, 1, 1<<16)
	orders := NewRegion(slotSjbb, 2, 1<<15)
	part := warehouses.Words / nthreads
	const window = 96
	return BuildIter("sjbb2k", nthreads, work, seed, func(b *Builder, iter int) {
		base := b.Tid() * part
		cursor := iter * 40 % 96
		// Catalog lookups: pointer-chasing reads over a big region.
		for i := 0; i < 60; i++ {
			b.Load(catalog.Word(b.Rng().Intn(catalog.Words)))
			b.Compute(5)
		}
		// Warehouse transaction: clustered private record updates.
		privateRMW(b, warehouses, base, window, 40, 5, &cursor)
		b.StackWork(120)
		// Order insertion into a shared table under a striped lock.
		o := b.Rng().Intn(orders.Words - 4)
		rmwUnderLock(b, slotSjbb*8+o%16, orders, o, 2)
		// Occasional journal flush: an uncached I/O operation (§4.1.3).
		if b.Rng().Intn(60) == 0 {
			b.IO(400)
		}
		// Cross-warehouse payment sometimes (true sharing).
		if b.Rng().Intn(10) == 0 {
			other := b.Rng().Intn(b.NThreads())
			ob := other * part
			at := b.Rng().Intn(part - 2)
			b.Load(warehouses.Word(ob + at))
			b.Compute(3)
			b.Store(warehouses.Word(ob + at))
		}
	})
}

// genSweb: SPECweb2005 proxy — a very large read-mostly page cache (the
// suite's biggest read sets and spec-read displacement rates), session
// metadata under striped locks, and append-style log writes (fresh lines,
// honest shared W).
func genSweb(nthreads, work int, seed int64) *Program {
	pages := NewRegion(slotSweb, 0, 3<<17) // 3 MB page cache
	sessions := NewRegion(slotSweb, 1, 1<<14)
	logs := NewRegion(slotSweb, 2, 1<<15)
	logPart := logs.Words / nthreads
	return BuildIter("sweb2005", nthreads, work, seed, func(b *Builder, iter int) {
		// Serve a request: stream a page (long sequential reads from a
		// random spot of the big cache).
		at := b.Rng().Intn(pages.Words - 512)
		for i := 0; i < 300; i++ {
			b.Load(pages.Word(at + i))
			b.Compute(3)
		}
		// Session update under a striped lock.
		s := b.Rng().Intn(sessions.Words - 4)
		rmwUnderLock(b, slotSweb*8+s%16, sessions, s, 2)
		// Append to the log partition (fresh lines, single writer).
		logPos := (iter * 8) % logPart
		for i := 0; i < 8; i++ {
			b.Store(logs.Word(b.Tid()*logPart + (logPos+i)%logPart))
		}
		// Occasionally the response goes out on the wire: uncached I/O.
		if b.Rng().Intn(40) == 0 {
			b.IO(300)
		}
		b.StackWork(96)
	})
}

// Package workload generates the multithreaded programs the simulator
// runs: a framework of deterministic per-thread instruction streams plus
// generators that recreate the sharing patterns of the paper's evaluation
// suite — the eleven SPLASH-2 applications (all but volrend, as in the
// paper) and proxies for SPECjbb2000 and SPECweb2005 — and the litmus
// programs used by the consistency tests.
//
// Real SPLASH-2 binaries cannot run here (the paper used the SESC MIPS
// simulator); instead each generator is a synthetic kernel with the same
// structure: the same read/write mix, shared-vs-private footprint, data
// layout (per-thread partitions, read-mostly structures, hot shared
// lines), and synchronization (locks, distributed barriers, task queues).
// Every statistic the paper reports is a function of those properties.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"bulksc/internal/mem"
)

// OpKind is an instruction class.
type OpKind uint8

const (
	// OpLoad reads one word.
	OpLoad OpKind = iota
	// OpStore writes one word.
	OpStore
	// OpCompute models N non-memory instructions.
	OpCompute
	// OpAcquire spins until it atomically acquires the lock word at Addr.
	OpAcquire
	// OpRelease releases the lock word at Addr.
	OpRelease
	// OpBarrier joins a centralized sense-reversing barrier: Addr is the
	// barrier's lock word; the arrival counter and the generation flag
	// live on the two following sync lines. N is the participant count.
	// Arrivals increment the counter under the lock; waiters spin on the
	// generation flag only, so an arrival never disturbs the spinners'
	// read sets (the structure of the ANL barrier macros the SPLASH-2
	// codes use).
	OpBarrier
	// OpIO is an uncached I/O operation (paper §4.1.3): it cannot be
	// executed speculatively, so a BulkSC processor stalls until every
	// in-flight chunk has committed, performs the operation, and starts a
	// fresh chunk. N is the device latency in cycles.
	OpIO
	// OpEnd terminates the thread.
	OpEnd
)

func (k OpKind) String() string {
	return [...]string{"load", "store", "compute", "acquire", "release", "barrier", "io", "end"}[k]
}

// Instr is one static instruction.
type Instr struct {
	Kind OpKind
	Addr mem.Addr
	N    uint32
}

// Program is a complete multithreaded workload.
type Program struct {
	Name    string
	Threads [][]Instr
}

// Generator builds a program for nthreads threads with roughly work
// dynamic instructions per thread, deterministically from seed.
type Generator func(nthreads, work int, seed int64) *Program

var registry = map[string]Generator{}

// Register adds a named generator. Panics on duplicates (catches copy-paste
// mistakes in app definitions).
func Register(name string, g Generator) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate generator " + name)
	}
	registry[name] = g
}

// Get returns the named generator.
func Get(name string) (Generator, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q", name)
	}
	return g, nil
}

// Names returns all registered generator names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Splash2 lists the SPLASH-2 kernels in the paper's presentation order.
func Splash2() []string {
	return []string{"barnes", "cholesky", "fft", "fmm", "lu", "ocean",
		"radiosity", "radix", "raytrace", "water-ns", "water-sp"}
}

// Commercial lists the commercial workload proxies.
func Commercial() []string { return []string{"sjbb2k", "sweb2005"} }

// All lists every application evaluated in the paper: SPLASH-2 followed by
// the commercial codes.
func All() []string { return append(Splash2(), Commercial()...) }

// ---------------------------------------------------------------------------
// Builder: the per-thread stream construction helper shared by generators.
// ---------------------------------------------------------------------------

// BarrierFlagBase is the first SyncAddr slot used for barrier state
// (slots below it are locks). Slot +0 is the barrier lock, +1 the arrival
// counter, +2 the generation flag — each on its own line.
const BarrierFlagBase = 256

// Builder accumulates one thread's instruction stream.
type Builder struct {
	tid, nthreads int
	rng           *rand.Rand
	structRng     *rand.Rand
	ins           []Instr
	stackOff      uint64
}

// NewBuilder returns a builder for thread tid of nthreads, seeded
// deterministically. Both sources are explicitly seeded rand.New
// constructions — the sanctioned pattern under the simlint determinism
// pass; the per-thread source mixes tid into the seed so threads draw
// independent streams, while structRng is seeded identically for all
// threads (see StructRng).
func NewBuilder(tid, nthreads int, seed int64) *Builder {
	return &Builder{
		tid:       tid,
		nthreads:  nthreads,
		rng:       rand.New(rand.NewSource(seed ^ int64(tid)*0x9E3779B9)),
		structRng: rand.New(rand.NewSource(seed*31 + 7)),
	}
}

// Rng exposes the builder's per-thread random source.
func (b *Builder) Rng() *rand.Rand { return b.rng }

// StructRng is a random source seeded identically for every thread of a
// program. Generators must use it (and only it) for decisions that affect
// synchronization structure — e.g. "emit a barrier this iteration?" — so
// all threads agree; with BuildIter's lockstep iteration counts this keeps
// barrier counts balanced and programs deadlock-free.
func (b *Builder) StructRng() *rand.Rand { return b.structRng }

// Tid returns the thread id.
func (b *Builder) Tid() int { return b.tid }

// NThreads returns the thread count.
func (b *Builder) NThreads() int { return b.nthreads }

// Len returns the number of instructions emitted so far (compute blocks
// count as their expansion).
func (b *Builder) Len() int {
	n := 0
	for _, in := range b.ins {
		if in.Kind == OpCompute {
			n += int(in.N)
		} else {
			n++
		}
	}
	return n
}

// Load emits a load of a.
func (b *Builder) Load(a mem.Addr) { b.ins = append(b.ins, Instr{Kind: OpLoad, Addr: a}) }

// Store emits a store to a.
func (b *Builder) Store(a mem.Addr) { b.ins = append(b.ins, Instr{Kind: OpStore, Addr: a}) }

// Compute emits n non-memory instructions.
func (b *Builder) Compute(n int) {
	if n <= 0 {
		return
	}
	if last := len(b.ins) - 1; last >= 0 && b.ins[last].Kind == OpCompute {
		b.ins[last].N += uint32(n)
		return
	}
	b.ins = append(b.ins, Instr{Kind: OpCompute, N: uint32(n)})
}

// Acquire emits an acquire of lock id.
func (b *Builder) Acquire(lock int) {
	b.ins = append(b.ins, Instr{Kind: OpAcquire, Addr: mem.SyncAddr(lock)})
}

// Release emits a release of lock id.
func (b *Builder) Release(lock int) {
	b.ins = append(b.ins, Instr{Kind: OpRelease, Addr: mem.SyncAddr(lock)})
}

// IO emits an uncached I/O operation with the given device latency.
func (b *Builder) IO(latency int) {
	b.ins = append(b.ins, Instr{Kind: OpIO, N: uint32(latency)})
}

// Barrier emits a global barrier over all threads.
func (b *Builder) Barrier() {
	b.ins = append(b.ins, Instr{
		Kind: OpBarrier,
		Addr: mem.SyncAddr(BarrierFlagBase),
		N:    uint32(b.nthreads),
	})
}

// StackWork emits n instructions of private computation touching the
// thread's stack with high locality: the register-spill and local-variable
// traffic that the paper's stpvt optimization classifies as private. Every
// fourth instruction is a stack access walking cyclically over an 8 KB
// window. The cycle period (~4k instructions) exceeds the two-chunk
// in-flight window, so each line's rewrite finds it dirty
// non-speculative — the dynamically-private pattern.
func (b *Builder) StackWork(n int) {
	for n > 0 {
		step := 4
		if step > n {
			step = n
		}
		b.Compute(step - 1)
		a := mem.StackAddr(b.tid, b.stackOff)
		if b.rng.Intn(3) != 0 {
			b.Load(a)
		} else {
			b.Store(a)
		}
		b.stackOff = (b.stackOff + 8) % 8192
		n -= step
	}
}

// End terminates the stream.
func (b *Builder) End() []Instr {
	b.ins = append(b.ins, Instr{Kind: OpEnd})
	return b.ins
}

// Build assembles a Program by running mk for every thread. Only suitable
// for programs whose synchronization needs no cross-thread agreement
// (lock-only kernels and litmus tests); barrier kernels use BuildIter.
func Build(name string, nthreads int, seed int64, mk func(b *Builder)) *Program {
	p := &Program{Name: name, Threads: make([][]Instr, nthreads)}
	for t := 0; t < nthreads; t++ {
		b := NewBuilder(t, nthreads, seed)
		mk(b)
		p.Threads[t] = b.End()
	}
	return p
}

// BuildIter assembles a Program whose threads all execute the same number
// of iterations of body: thread 0 runs until it has emitted at least work
// dynamic instructions, fixing the iteration count; the other threads run
// exactly that many iterations. Combined with StructRng this guarantees
// every thread reaches every barrier.
func BuildIter(name string, nthreads, work int, seed int64, body func(b *Builder, iter int)) *Program {
	p := &Program{Name: name, Threads: make([][]Instr, nthreads)}
	b0 := NewBuilder(0, nthreads, seed)
	iters := 0
	for b0.Len() < work {
		body(b0, iters)
		iters++
	}
	p.Threads[0] = b0.End()
	for t := 1; t < nthreads; t++ {
		b := NewBuilder(t, nthreads, seed)
		for i := 0; i < iters; i++ {
			body(b, i)
		}
		p.Threads[t] = b.End()
	}
	return p
}

// Region is a contiguous heap area with a fixed base, used by generators to
// lay out their data structures without overlap.
type Region struct {
	Base  mem.Addr
	Words int
}

// NewRegion carves a region of the given number of words at a
// structure-specific base. id must be unique per structure within an app;
// apps are separated by their own base offsets. Bases carry a
// structure-specific scatter so that different structures do not land at
// identical offsets within the signature's address window (real allocators
// scatter structures the same way).
func NewRegion(appSlot, id, words int) Region {
	const appStride = 32 << 20 // 32 MB per app slot
	const structStride = 4 << 20
	scatter := (uint64(appSlot*131 + id*8191 + 7)) * 0x9E3779B9 % (1 << 20)
	scatter &^= mem.LineBytes - 1
	base := mem.HeapBase + mem.Addr(appSlot*appStride+id*structStride) + mem.Addr(scatter)
	return Region{Base: base, Words: words}
}

// Word returns the address of word i (wrapped).
func (r Region) Word(i int) mem.Addr {
	i %= r.Words
	if i < 0 {
		i += r.Words
	}
	return r.Base + mem.Addr(i*mem.WordBytes)
}

// Lines returns the region's size in cache lines.
func (r Region) Lines() int { return (r.Words*mem.WordBytes + mem.LineBytes - 1) / mem.LineBytes }

package cache

import "bulksc/internal/mem"

// L2 models the shared on-chip L2 as a set-associative tag store: the
// simulator only needs to know whether a line hits on chip (13-cycle round
// trip) or must come from memory (300 cycles). Values live in mem.Memory.
type L2 struct {
	//lint:poolsafe immutable geometry fixed at construction
	nsets, assoc int
	ways         []l2way
	tick         uint64
}

// Reset scrubs the tag store in place. The L2's 32768×8 ways array (~6 MB)
// is the single largest machine allocation; retaining it across runs while
// zeroing its contents is the biggest per-run win of warm machine reuse.
func (c *L2) Reset() {
	clear(c.ways)
	c.tick = 0
}

type l2way struct {
	line  mem.Line
	valid bool
	lru   uint64
}

// NewL2 returns an L2 tag store with nsets sets (power of two) of assoc
// ways.
func NewL2(nsets, assoc int) *L2 {
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: L2 nsets must be a power of two")
	}
	return &L2{nsets: nsets, assoc: assoc, ways: make([]l2way, nsets*assoc)}
}

func (c *L2) set(l mem.Line) []l2way {
	idx := int(uint64(l) & uint64(c.nsets-1))
	return c.ways[idx*c.assoc : (idx+1)*c.assoc]
}

// Contains reports a hit and refreshes recency.
func (c *L2) Contains(l mem.Line) bool {
	s := c.set(l)
	for i := range s {
		if s[i].valid && s[i].line == l {
			c.tick++
			s[i].lru = c.tick
			return true
		}
	}
	return false
}

// Install brings l on chip, evicting LRU if needed, and returns the victim
// line (ok ⇒ something was displaced).
func (c *L2) Install(l mem.Line) (victim mem.Line, evicted bool) {
	s := c.set(l)
	var slot *l2way
	for i := range s {
		if s[i].valid && s[i].line == l {
			c.tick++
			s[i].lru = c.tick
			return 0, false
		}
		if !s[i].valid && slot == nil {
			slot = &s[i]
		}
	}
	if slot == nil {
		slot = &s[0]
		for i := range s {
			if s[i].lru < slot.lru {
				slot = &s[i]
			}
		}
		victim, evicted = slot.line, true
	}
	c.tick++
	*slot = l2way{line: l, valid: true, lru: c.tick}
	return victim, evicted
}

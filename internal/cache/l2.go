package cache

import "bulksc/internal/mem"

// l2GroupSets is the granularity of lazy tag-store allocation: ways are
// carved into groups of this many consecutive sets, each allocated on
// first install. A short run touches a small fraction of the 32768 sets,
// so cold machine construction allocates ~4 KB of group pointers instead
// of zeroing the full multi-megabyte ways array — the single largest
// machine structure — and the touched groups stay dense in cache.
const l2GroupSets = 64

// L2 models the shared on-chip L2 as a set-associative tag store: the
// simulator only needs to know whether a line hits on chip (13-cycle round
// trip) or must come from memory (300 cycles). Values live in mem.Memory.
type L2 struct {
	//lint:poolsafe immutable geometry fixed at construction
	nsets, assoc int
	// groups is the lazily allocated tag storage: groups[g] covers sets
	// [g*l2GroupSets, (g+1)*l2GroupSets) and is nil until a line is first
	// installed there. Within a group, ways are scrubbed lazily: a way is
	// valid only while its gen matches the store's, so Reset invalidates
	// every resident tag by bumping one counter instead of a memclr sweep.
	// Stale entries behave exactly as empty ways until overwritten.
	//lint:poolsafe generation-tagged; entries with gen != current are invisible
	groups [][]l2way
	tick   uint64
	gen    uint32
}

// Reset scrubs the tag store in place — O(1): advancing the generation
// makes every resident tag invisible. Allocated groups are retained so a
// warm reuse re-fills recycled storage instead of the allocator.
func (c *L2) Reset() {
	c.gen++
	if c.gen == 0 {
		// Generation wrapped (once per 2^32 resets): scrub for real so
		// entries stamped with the recycled epoch cannot resurface.
		for _, g := range c.groups {
			clear(g)
		}
		c.gen = 1
	}
	c.tick = 0
}

type l2way struct {
	line mem.Line
	lru  uint64
	// gen stamps the Reset epoch that installed this way; it is valid only
	// while it matches L2.gen. The zero value (gen 0 vs the store's initial
	// gen 1) is an empty way.
	gen uint32
}

// NewL2 returns an L2 tag store with nsets sets (power of two) of assoc
// ways.
func NewL2(nsets, assoc int) *L2 {
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: L2 nsets must be a power of two")
	}
	ngroups := (nsets + l2GroupSets - 1) / l2GroupSets
	return &L2{nsets: nsets, assoc: assoc, groups: make([][]l2way, ngroups), gen: 1}
}

// set returns the ways of l's set, or nil if its group was never
// installed into (every way empty).
//
//sim:hotpath
func (c *L2) set(l mem.Line) []l2way {
	idx := int(uint64(l) & uint64(c.nsets-1))
	g := c.groups[idx/l2GroupSets]
	if g == nil {
		return nil
	}
	base := (idx % l2GroupSets) * c.assoc
	return g[base : base+c.assoc]
}

// setAlloc is set plus on-demand group allocation, for the install path.
func (c *L2) setAlloc(l mem.Line) []l2way {
	idx := int(uint64(l) & uint64(c.nsets-1))
	gi := idx / l2GroupSets
	g := c.groups[gi]
	if g == nil {
		span := l2GroupSets
		if span > c.nsets {
			span = c.nsets
		}
		g = make([]l2way, span*c.assoc)
		c.groups[gi] = g
	}
	base := (idx % l2GroupSets) * c.assoc
	return g[base : base+c.assoc]
}

// Contains reports a hit and refreshes recency.
//
//sim:hotpath
func (c *L2) Contains(l mem.Line) bool {
	s := c.set(l)
	for i := range s {
		if s[i].line == l && s[i].gen == c.gen {
			c.tick++
			s[i].lru = c.tick
			return true
		}
	}
	return false
}

// Install brings l on chip, evicting LRU if needed, and returns the victim
// line (ok ⇒ something was displaced).
//
//sim:hotpath
func (c *L2) Install(l mem.Line) (victim mem.Line, evicted bool) {
	s := c.setAlloc(l)
	var slot *l2way
	for i := range s {
		if s[i].line == l && s[i].gen == c.gen {
			c.tick++
			s[i].lru = c.tick
			return 0, false
		}
		if s[i].gen != c.gen && slot == nil {
			slot = &s[i]
		}
	}
	if slot == nil {
		slot = &s[0]
		for i := range s {
			if s[i].lru < slot.lru {
				slot = &s[i]
			}
		}
		victim, evicted = slot.line, true
	}
	c.tick++
	*slot = l2way{line: l, gen: c.gen, lru: c.tick}
	return victim, evicted
}

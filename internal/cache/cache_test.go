package cache

import (
	"testing"
	"testing/quick"

	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// linesInSameSet returns n distinct lines mapping to the same set of c.
func linesInSameSet(c *L1, n int) []mem.Line {
	out := make([]mem.Line, n)
	for i := 0; i < n; i++ {
		out[i] = mem.Line(7 + i*c.Sets())
	}
	return out
}

func TestInsertAndAccess(t *testing.T) {
	c := NewL1(256, 4)
	if c.Access(100) != nil {
		t.Fatal("hit on empty cache")
	}
	if _, ok := c.Insert(100, Shared); !ok {
		t.Fatal("insert failed")
	}
	w := c.Access(100)
	if w == nil || w.State != Shared {
		t.Fatal("inserted line not accessible")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewL1(256, 4)
	ls := linesInSameSet(c, 5)
	for _, l := range ls[:4] {
		c.Insert(l, Shared)
	}
	c.Access(ls[0]) // make line 0 most recent; LRU is now ls[1]
	victim, ok := c.Insert(ls[4], Shared)
	if !ok {
		t.Fatal("insert with free LRU failed")
	}
	if victim.Line != ls[1] {
		t.Fatalf("evicted %v, want %v", victim.Line, ls[1])
	}
	if c.Probe(ls[0]) == nil || c.Probe(ls[4]) == nil {
		t.Fatal("expected lines missing after eviction")
	}
}

func TestInsertExistingUpdatesState(t *testing.T) {
	c := NewL1(64, 2)
	c.Insert(5, Shared)
	victim, ok := c.Insert(5, Dirty)
	if !ok || victim.Valid() {
		t.Fatal("re-insert displaced something")
	}
	if c.Probe(5).State != Dirty {
		t.Fatal("state not upgraded")
	}
	if c.Occupancy() != 1 {
		t.Fatal("duplicate ways for one line")
	}
}

func TestPinBlocksEviction(t *testing.T) {
	c := NewL1(256, 4)
	ls := linesInSameSet(c, 5)
	for _, l := range ls[:4] {
		c.Insert(l, Dirty)
		c.Pin(l, 0)
	}
	if _, ok := c.Insert(ls[4], Shared); ok {
		t.Fatal("insert succeeded with all ways pinned (set overflow missed)")
	}
	if c.RoomFor(ls[4]) {
		t.Fatal("RoomFor true with all ways pinned")
	}
	c.Unpin(ls[0], 0)
	if !c.RoomFor(ls[4]) {
		t.Fatal("RoomFor false after unpin")
	}
	victim, ok := c.Insert(ls[4], Shared)
	if !ok || victim.Line != ls[0] {
		t.Fatalf("eviction after unpin chose %v, want %v", victim.Line, ls[0])
	}
}

func TestPinMaskPerSlot(t *testing.T) {
	c := NewL1(64, 2)
	c.Insert(9, Dirty)
	c.Pin(9, 0)
	c.Pin(9, 1)
	c.Unpin(9, 0)
	if c.Probe(9).PinMask != 1<<1 {
		t.Fatalf("PinMask = %b, want slot-1 only", c.Probe(9).PinMask)
	}
	if c.Pin(999, 0) {
		t.Fatal("Pin of absent line reported success")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewL1(64, 2)
	c.Insert(3, Dirty)
	if st := c.Invalidate(3); st != Dirty {
		t.Fatalf("Invalidate returned %v, want Dirty", st)
	}
	if st := c.Invalidate(3); st != Invalid {
		t.Fatalf("second Invalidate returned %v", st)
	}
}

func TestBulkInvalidate(t *testing.T) {
	c := NewL1(256, 4)
	s := sig.NewBloom()
	for i := 0; i < 10; i++ {
		l := mem.Line(i * 1000)
		c.Insert(l, Shared)
		if i%2 == 0 {
			s.Add(l)
		}
	}
	var visited []mem.Line
	n := c.BulkInvalidate(s, func(w Way) { visited = append(visited, w.Line) })
	if n < 5 {
		t.Fatalf("invalidated %d lines, want ≥5 (the true matches)", n)
	}
	for i := 0; i < 10; i += 2 {
		if c.Probe(mem.Line(i*1000)) != nil {
			t.Fatalf("line %d survived bulk invalidation", i*1000)
		}
	}
	if len(visited) != n {
		t.Fatal("visit callback count mismatch")
	}
}

func TestBulkInvalidateSkipsPinned(t *testing.T) {
	c := NewL1(256, 4)
	s := sig.NewBloom()
	c.Insert(42, Dirty)
	c.Pin(42, 0)
	s.Add(42)
	if n := c.BulkInvalidate(s, nil); n != 0 {
		t.Fatalf("bulk invalidation removed %d pinned lines", n)
	}
	if c.Probe(42) == nil {
		t.Fatal("pinned line gone")
	}
}

func TestLinesMatching(t *testing.T) {
	c := NewL1(256, 4)
	s := sig.NewExact()
	c.Insert(1, Shared)
	c.Insert(2, Shared)
	s.Add(2)
	got := c.LinesMatching(s)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("LinesMatching = %v, want [2]", got)
	}
	if c.Probe(2) == nil {
		t.Fatal("LinesMatching must not invalidate")
	}
}

// Property: after any sequence of inserts, every line reported present maps
// to its correct set and no set exceeds its associativity.
func TestQuickStructuralInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		c := NewL1(64, 4)
		for _, r := range raw {
			c.Insert(mem.Line(r), Shared)
		}
		counts := make(map[int]int)
		for idx := 0; idx < 64; idx++ {
			for _, w := range c.ways[idx*4 : (idx+1)*4] {
				if w.Valid() {
					if int(uint64(w.Line)&63) != idx {
						return false
					}
					counts[idx]++
				}
			}
		}
		for _, n := range counts {
			if n > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, bad := range []int{0, 3, 2048} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewL1(%d, 4) did not panic", bad)
				}
			}()
			NewL1(bad, 4)
		}()
	}
}

func TestL2InstallAndContains(t *testing.T) {
	l2 := NewL2(16, 2)
	if l2.Contains(5) {
		t.Fatal("hit on empty L2")
	}
	if _, ev := l2.Install(5); ev {
		t.Fatal("install into empty set evicted")
	}
	if !l2.Contains(5) {
		t.Fatal("installed line missing")
	}
}

func TestL2Eviction(t *testing.T) {
	l2 := NewL2(16, 2)
	a, b, c := mem.Line(1), mem.Line(17), mem.Line(33) // same set
	l2.Install(a)
	l2.Install(b)
	l2.Contains(a) // refresh a
	victim, ev := l2.Install(c)
	if !ev || victim != b {
		t.Fatalf("L2 evicted %v (ev=%v), want %v", victim, ev, b)
	}
	if !l2.Contains(a) || !l2.Contains(c) || l2.Contains(b) {
		t.Fatal("L2 contents wrong after eviction")
	}
}

func TestLineStateString(t *testing.T) {
	for st, want := range map[LineState]string{Invalid: "I", Shared: "S", Excl: "E", Dirty: "D"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

// Package cache models the private L1 data caches and the shared L2 of the
// simulated CMP (paper Table 2: 32 KB / 4-way / 32 B L1; 8 MB / 8-way L2).
//
// Per the Bulk design, the tag and data arrays are consistency-oblivious:
// the cache does not know which lines are speculative. The only concession
// is a per-way pin mask maintained *on behalf of* the BDM, which models the
// BDM's refusal to let speculatively written lines leave the cache before
// commit. Bulk invalidation decodes a signature into candidate sets (δ) and
// membership-tests only the ways in those sets, exactly like the hardware.
package cache

import (
	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// LineState is the coherence state of a cached line. The conventional
// protocol uses all three states (MESI with E and M folded into Excl and
// Dirty); BulkSC uses Shared and Dirty only.
type LineState uint8

const (
	// Invalid marks an empty way.
	Invalid LineState = iota
	// Shared is a clean copy that other caches may also hold.
	Shared
	// Excl is a clean copy guaranteed to be the only cached one.
	Excl
	// Dirty is a modified copy; memory is stale.
	Dirty
)

func (s LineState) String() string {
	switch s {
	case Shared:
		return "S"
	case Excl:
		return "E"
	case Dirty:
		return "D"
	default:
		return "I"
	}
}

// Way is one cache way. PinMask is a bitmask of chunk slots that have
// speculatively written the line; a nonzero mask pins the line (the BDM
// blocks its displacement until the chunks commit or squash).
type Way struct {
	Line    mem.Line
	State   LineState
	PinMask uint8
	lru     uint64
}

// Valid reports whether the way holds a line.
func (w *Way) Valid() bool { return w.State != Invalid }

// L1 is a set-associative cache.
type L1 struct {
	//lint:poolsafe immutable geometry fixed at construction
	nsets, assoc int
	ways         []Way // nsets × assoc, row-major
	tick         uint64
}

// Reset scrubs the tag array and LRU clock in place, returning the cache
// to its just-constructed state without reallocating the ways slice. A
// warm machine reuse (core.Runner) must leave no stale tags behind: a
// surviving valid way would satisfy the next run's first probe and skew
// its miss stream — the stale-tag-array leak class the poolhygiene
// fixture pins.
func (c *L1) Reset() {
	clear(c.ways)
	c.tick = 0
}

// NewL1 returns a cache with nsets sets (power of two, ≤ sig.BankBits so
// signature decode works) of assoc ways each.
func NewL1(nsets, assoc int) *L1 {
	if nsets <= 0 || nsets&(nsets-1) != 0 || nsets > sig.BankBits {
		panic("cache: nsets must be a power of two ≤ 512")
	}
	return &L1{nsets: nsets, assoc: assoc, ways: make([]Way, nsets*assoc)}
}

// Sets returns the number of sets.
func (c *L1) Sets() int { return c.nsets }

// Assoc returns the associativity.
func (c *L1) Assoc() int { return c.assoc }

func (c *L1) setIndex(l mem.Line) int { return int(uint64(l) & uint64(c.nsets-1)) }

func (c *L1) set(idx int) []Way { return c.ways[idx*c.assoc : (idx+1)*c.assoc] }

// Probe returns the way holding l without updating recency, or nil.
//
//sim:hotpath
func (c *L1) Probe(l mem.Line) *Way {
	s := c.set(c.setIndex(l))
	for i := range s {
		// Tag compare first: most ways mismatch on Line, skipping the
		// state check; an invalid way (zeroed, Line 0) still fails Valid.
		if s[i].Line == l && s[i].Valid() {
			return &s[i]
		}
	}
	return nil
}

// Access is Probe plus an LRU touch on hit.
//
//sim:hotpath
func (c *L1) Access(l mem.Line) *Way {
	w := c.Probe(l)
	if w != nil {
		c.tick++
		w.lru = c.tick
	}
	return w
}

// Insert places l with the given state, evicting the LRU unpinned way if
// needed. It returns the victim (valid ⇒ a line was displaced) and ok=false
// if every way in the set is pinned — the cache-set-overflow condition that
// forces a chunk to finish early (paper §4.1.2).
//
//sim:hotpath
func (c *L1) Insert(l mem.Line, st LineState) (victim Way, ok bool) {
	idx := c.setIndex(l)
	s := c.set(idx)
	if w := c.Probe(l); w != nil {
		w.State = st
		c.tick++
		w.lru = c.tick
		return Way{}, true
	}
	var slot *Way
	for i := range s {
		if !s[i].Valid() {
			slot = &s[i]
			break
		}
	}
	if slot == nil {
		for i := range s {
			if s[i].PinMask != 0 {
				continue
			}
			if slot == nil || s[i].lru < slot.lru {
				slot = &s[i]
			}
		}
	}
	if slot == nil {
		return Way{}, false
	}
	victim = *slot
	c.tick++
	*slot = Way{Line: l, State: st, lru: c.tick}
	return victim, true
}

// RoomFor reports whether l could be inserted (present, or a free/unpinned
// way exists). Used to detect set overflow before issuing a fill.
func (c *L1) RoomFor(l mem.Line) bool {
	if c.Probe(l) != nil {
		return true
	}
	s := c.set(c.setIndex(l))
	for i := range s {
		if !s[i].Valid() || s[i].PinMask == 0 {
			return true
		}
	}
	return false
}

// Invalidate removes l if present and returns its former state.
//
//sim:hotpath
func (c *L1) Invalidate(l mem.Line) LineState {
	if w := c.Probe(l); w != nil {
		st := w.State
		*w = Way{}
		return st
	}
	return Invalid
}

// Pin marks l speculatively written by chunk slot (0..7). The line must be
// present.
//
//sim:hotpath
func (c *L1) Pin(l mem.Line, slot int) bool {
	w := c.Probe(l)
	if w == nil {
		return false
	}
	w.PinMask |= 1 << uint(slot)
	return true
}

// Unpin clears slot's pin on l, if present, and returns the way.
//
//sim:hotpath
func (c *L1) Unpin(l mem.Line, slot int) *Way {
	w := c.Probe(l)
	if w != nil {
		w.PinMask &^= 1 << uint(slot)
	}
	return w
}

// BulkInvalidate performs the Bulk bulk-invalidation operation: it decodes
// s into candidate sets, membership-tests every resident way in them, and
// invalidates matches. Ways pinned by any chunk slot are skipped (their
// fate is decided by the squash path). Lines present but merely aliased
// into the signature are still invalidated — that is the cost of superset
// encoding — and the visit callback lets the caller classify true vs
// aliased invalidations and handle dirty victims. visit may be nil.
//
//sim:hotpath
func (c *L1) BulkInvalidate(s sig.Signature, visit func(w Way)) int {
	mask := s.CandidateSets(c.nsets)
	n := 0
	for idx := 0; idx < c.nsets; idx++ {
		if !mask.Has(idx) {
			continue
		}
		set := c.set(idx)
		for i := range set {
			w := &set[i]
			if !w.Valid() || w.PinMask != 0 || !s.MayContain(w.Line) {
				continue
			}
			if visit != nil {
				visit(*w)
			}
			*w = Way{}
			n++
		}
	}
	return n
}

// LinesMatching returns the resident, unpinned lines that s may contain,
// without invalidating them. Used by tests and by the directory-cache
// displacement path.
func (c *L1) LinesMatching(s sig.Signature) []mem.Line {
	mask := s.CandidateSets(c.nsets)
	var out []mem.Line
	for idx := 0; idx < c.nsets; idx++ {
		if !mask.Has(idx) {
			continue
		}
		for _, w := range c.set(idx) {
			if w.Valid() && w.PinMask == 0 && s.MayContain(w.Line) {
				out = append(out, w.Line)
			}
		}
	}
	return out
}

// Occupancy returns the number of valid ways, for tests.
func (c *L1) Occupancy() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].Valid() {
			n++
		}
	}
	return n
}

// PinnedInSet returns how many ways of l's set are pinned, for overflow
// heuristics and tests.
func (c *L1) PinnedInSet(l mem.Line) int {
	n := 0
	for _, w := range c.set(c.setIndex(l)) {
		if w.Valid() && w.PinMask != 0 {
			n++
		}
	}
	return n
}

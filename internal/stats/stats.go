// Package stats collects every counter behind the paper's evaluation
// artifacts: Figure 9/10 (performance), Table 3 (BulkSC characterization),
// Table 4 (commit & coherence characterization) and Figure 11 (network
// traffic by message category).
//
// One Stats instance is shared by all components of a simulated system.
// Raw counters are exported fields, updated directly by the component that
// owns the event; derived metrics (averages, percentages, rates per 1k
// commits) are computed by methods so tests can check both layers.
package stats

import "fmt"

// Category classifies network traffic, matching Figure 11's breakdown.
type Category int

const (
	// CatData covers demand reads/writes, data replies and writebacks
	// ("Rd/Wr" in Figure 11).
	CatData Category = iota
	// CatRdSig covers R-signature transfers.
	CatRdSig
	// CatWrSig covers W-signature transfers (commit requests and
	// directory-to-cache forwards).
	CatWrSig
	// CatInv covers invalidation requests and acknowledgements.
	CatInv
	// CatOther covers everything else (grants, denies, done messages,
	// NACKs, arbitration control).
	CatOther
	numCategories
)

// String returns the Figure 11 label.
func (c Category) String() string {
	switch c {
	case CatData:
		return "Rd/Wr"
	case CatRdSig:
		return "RdSig"
	case CatWrSig:
		return "WrSig"
	case CatInv:
		return "Inv"
	default:
		return "Other"
	}
}

// Categories lists all traffic categories in display order.
func Categories() []Category {
	return []Category{CatData, CatRdSig, CatWrSig, CatInv, CatOther}
}

// Stats is the shared counter block for one simulated system.
//
// Stats carries running time-weighted integrals (the W-list fields below)
// whose correctness depends on a single instance advancing monotonically;
// a struct copy goes stale the moment the original is next updated, which
// is how the pre-PR-2 ">100% NonEmptyWListPct" bug happened. The simlint
// statsnapshot pass therefore forbids by-value copies outside this
// package — share *Stats, and take deliberate copies only via Snapshot.
//
//sim:accumulator
type Stats struct {
	// Trace, when non-nil, receives debug events from all components.
	// Never set in production runs.
	Trace func(format string, args ...interface{})

	// --- progress / performance -----------------------------------------
	Cycles          uint64 // total cycles to run the workload
	CommittedInstrs uint64 // instructions whose effects committed
	SquashedInstrs  uint64 // instructions executed then discarded
	SpinInstrs      uint64 // dynamic spin-loop iterations (diagnostic)

	// --- chunks (BulkSC only) -------------------------------------------
	Chunks           uint64 // chunks committed
	Squashes         uint64 // chunk squashes (any cause)
	SquashesTrue     uint64 // squashes with a genuine line conflict
	SquashesAliased  uint64 // squashes caused purely by signature aliasing
	SquashCascades   uint64 // successor chunks squashed with a predecessor
	ChunkShrinks     uint64 // forward-progress chunk-size reductions
	PreArbitrations  uint64 // forward-progress pre-arbitration episodes
	SetOverflowCuts  uint64 // chunks ended early by cache-set pressure
	SumRSetLines     uint64 // Σ exact R-set sizes at commit (lines)
	SumWSetLines     uint64 // Σ exact W-set sizes at commit (lines)
	SumPrivWSetLines uint64 // Σ exact private-write-set sizes at commit
	SpecWriteDispl   uint64 // displacement attempts on spec-written lines
	SpecReadDispl    uint64 // displacements of speculatively read lines
	PrivBufSupplies  uint64 // lines supplied from the private buffer
	PrivBufOverflows uint64 // private-buffer overflow writebacks
	PrivBufRestores  uint64 // lines restored from private buffer on squash
	ExtraCacheInvs   uint64 // bulk invalidations of lines not truly written
	CacheInvs        uint64 // bulk invalidations of truly written lines
	ReadBounces      uint64 // demand reads bounced by a commit-in-progress

	// --- arbiter ----------------------------------------------------------
	CommitRequests    uint64 // permission-to-commit requests received
	CommitGrants      uint64
	CommitDenies      uint64
	CommitCancels     uint64 // grants abandoned because the chunk squashed
	EmptyWCommits     uint64 // commits whose W signature was empty
	RSigRequired      uint64 // commits that needed the R signature fetched
	wListIntegral     uint64 // Σ (pending Ws × cycles) for time-averaging
	wListNonEmptyTime uint64 // cycles with a non-empty W list
	wListLastChange   uint64 // internal: last integral update time
	wListCurrent      int    // internal: current pending count
	statWindowStart   uint64 // cycle the measurement window opened
	GArbTransactions  uint64 // commits that needed the global arbiter
	MultiArbCommits   uint64 // commits spanning multiple arbiter ranges
	GArbQueued        uint64 // transactions parked at a full G-arbiter shard
	GArbQueueCycles   uint64 // total cycles transactions spent queued

	// --- directory --------------------------------------------------------
	DirLookups        uint64 // entries examined during signature expansion
	DirUnnecessary    uint64 // examined entries not truly written (aliasing)
	DirUpdates        uint64 // entries whose state changed on commit
	DirBadUpdates     uint64 // state changes on not-truly-written entries
	WSigNodeSends     uint64 // Σ caches that received a forwarded W sig
	DirCommits        uint64 // W signatures processed by directories
	DirCacheEvicts    uint64 // directory-cache entry displacements
	ConvInvalidations uint64 // conventional-protocol invalidations sent

	// --- caches -----------------------------------------------------------
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64 // L2 miss = memory access
	Writebacks       uint64
	Prefetches       uint64 // SC/RC read/exclusive prefetches issued

	// --- SC++ -------------------------------------------------------------
	SHiQViolations uint64 // SC++ rollbacks
	SHiQStalls     uint64 // cycles stalled on SHiQ capacity

	// --- traffic ----------------------------------------------------------
	TrafficBytes [numCategories]uint64
	Messages     [numCategories]uint64
}

// New returns a zeroed Stats.
func New() *Stats { return &Stats{} }

// Reset zeroes every counter in place so a warm machine reuse
// (core.Runner) starts the next run from the exact state a fresh New()
// would provide. It lives in this package because Stats is a
// //sim:accumulator: the statsnapshot pass forbids struct copies (and so
// also `*s = Stats{}` idioms routed through helper copies) outside the
// package. Every field is zeroed explicitly so the poolhygiene pass can
// verify coverage field by field — a counter added to Stats without a
// matching line here is a lint error, not a silent cross-run leak.
func (s *Stats) Reset() {
	s.Trace = nil
	s.Cycles = 0
	s.CommittedInstrs = 0
	s.SquashedInstrs = 0
	s.SpinInstrs = 0
	s.Chunks = 0
	s.Squashes = 0
	s.SquashesTrue = 0
	s.SquashesAliased = 0
	s.SquashCascades = 0
	s.ChunkShrinks = 0
	s.PreArbitrations = 0
	s.SetOverflowCuts = 0
	s.SumRSetLines = 0
	s.SumWSetLines = 0
	s.SumPrivWSetLines = 0
	s.SpecWriteDispl = 0
	s.SpecReadDispl = 0
	s.PrivBufSupplies = 0
	s.PrivBufOverflows = 0
	s.PrivBufRestores = 0
	s.ExtraCacheInvs = 0
	s.CacheInvs = 0
	s.ReadBounces = 0
	s.CommitRequests = 0
	s.CommitGrants = 0
	s.CommitDenies = 0
	s.CommitCancels = 0
	s.EmptyWCommits = 0
	s.RSigRequired = 0
	s.wListIntegral = 0
	s.wListNonEmptyTime = 0
	s.wListLastChange = 0
	s.wListCurrent = 0
	s.statWindowStart = 0
	s.GArbTransactions = 0
	s.MultiArbCommits = 0
	s.GArbQueued = 0
	s.GArbQueueCycles = 0
	s.DirLookups = 0
	s.DirUnnecessary = 0
	s.DirUpdates = 0
	s.DirBadUpdates = 0
	s.WSigNodeSends = 0
	s.DirCommits = 0
	s.DirCacheEvicts = 0
	s.ConvInvalidations = 0
	s.L1Hits = 0
	s.L1Misses = 0
	s.L2Hits = 0
	s.L2Misses = 0
	s.Writebacks = 0
	s.Prefetches = 0
	s.SHiQViolations = 0
	s.SHiQStalls = 0
	s.TrafficBytes = [numCategories]uint64{}
	s.Messages = [numCategories]uint64{}
}

// Snapshot returns a copy of the current counters, for warmup exclusion.
func (s *Stats) Snapshot() Stats {
	c := *s
	c.Trace = nil
	return c
}

// SubtractBase removes a warmup-time snapshot from the counters so every
// derived metric describes only the post-warmup window. warmupCycle is the
// time the snapshot was taken.
func (s *Stats) SubtractBase(b *Stats, warmupCycle uint64) {
	s.CommittedInstrs -= b.CommittedInstrs
	s.SquashedInstrs -= b.SquashedInstrs
	s.SpinInstrs -= b.SpinInstrs
	s.Chunks -= b.Chunks
	s.Squashes -= b.Squashes
	s.SquashesTrue -= b.SquashesTrue
	s.SquashesAliased -= b.SquashesAliased
	s.SquashCascades -= b.SquashCascades
	s.ChunkShrinks -= b.ChunkShrinks
	s.PreArbitrations -= b.PreArbitrations
	s.SetOverflowCuts -= b.SetOverflowCuts
	s.SumRSetLines -= b.SumRSetLines
	s.SumWSetLines -= b.SumWSetLines
	s.SumPrivWSetLines -= b.SumPrivWSetLines
	s.SpecWriteDispl -= b.SpecWriteDispl
	s.SpecReadDispl -= b.SpecReadDispl
	s.PrivBufSupplies -= b.PrivBufSupplies
	s.PrivBufOverflows -= b.PrivBufOverflows
	s.PrivBufRestores -= b.PrivBufRestores
	s.ExtraCacheInvs -= b.ExtraCacheInvs
	s.CacheInvs -= b.CacheInvs
	s.ReadBounces -= b.ReadBounces
	s.CommitRequests -= b.CommitRequests
	s.CommitGrants -= b.CommitGrants
	s.CommitDenies -= b.CommitDenies
	s.CommitCancels -= b.CommitCancels
	s.EmptyWCommits -= b.EmptyWCommits
	s.RSigRequired -= b.RSigRequired
	// The W-list integrals must be rolled forward to warmupCycle before
	// subtraction: the snapshot's last update (wListLastChange) may predate
	// the window open, and the pending-W time accumulated between that
	// update and warmupCycle belongs to the warmup, not the measurement
	// window. Subtracting the raw snapshot misattributes it and skews
	// Table 4's "# of Pend. W Sigs" and "Non-Empty W List".
	baseIntegral := b.wListIntegral
	baseNonEmpty := b.wListNonEmptyTime
	if warmupCycle > b.wListLastChange {
		dt := warmupCycle - b.wListLastChange
		baseIntegral += uint64(b.wListCurrent) * dt
		if b.wListCurrent > 0 {
			baseNonEmpty += dt
		}
	}
	s.wListIntegral -= baseIntegral
	s.wListNonEmptyTime -= baseNonEmpty
	s.statWindowStart = warmupCycle
	s.GArbTransactions -= b.GArbTransactions
	s.MultiArbCommits -= b.MultiArbCommits
	s.GArbQueued -= b.GArbQueued
	s.GArbQueueCycles -= b.GArbQueueCycles
	s.DirLookups -= b.DirLookups
	s.DirUnnecessary -= b.DirUnnecessary
	s.DirUpdates -= b.DirUpdates
	s.DirBadUpdates -= b.DirBadUpdates
	s.WSigNodeSends -= b.WSigNodeSends
	s.DirCommits -= b.DirCommits
	s.DirCacheEvicts -= b.DirCacheEvicts
	s.ConvInvalidations -= b.ConvInvalidations
	s.L1Hits -= b.L1Hits
	s.L1Misses -= b.L1Misses
	s.L2Hits -= b.L2Hits
	s.L2Misses -= b.L2Misses
	s.Writebacks -= b.Writebacks
	s.Prefetches -= b.Prefetches
	s.SHiQViolations -= b.SHiQViolations
	s.SHiQStalls -= b.SHiQStalls
	for i := range s.TrafficBytes {
		s.TrafficBytes[i] -= b.TrafficBytes[i]
		s.Messages[i] -= b.Messages[i]
	}
}

// AddTraffic records one message of b bytes in category c.
func (s *Stats) AddTraffic(c Category, b int) {
	s.TrafficBytes[c] += uint64(b)
	s.Messages[c]++
}

// TotalTraffic returns the sum of all categories, in bytes.
func (s *Stats) TotalTraffic() uint64 {
	var t uint64
	for _, b := range s.TrafficBytes {
		t += b
	}
	return t
}

// WListChanged must be called by the arbiter whenever its pending-W count
// changes, with the current time and the new count. It maintains the
// integrals behind Table 4's "# of Pend. W Sigs" and "Non-Empty W List".
func (s *Stats) WListChanged(now uint64, count int) {
	dt := now - s.wListLastChange
	s.wListIntegral += uint64(s.wListCurrent) * dt
	if s.wListCurrent > 0 {
		s.wListNonEmptyTime += dt
	}
	s.wListLastChange = now
	s.wListCurrent = count
}

// CloseWList finalizes the time-weighted arbiter integrals at end of run.
func (s *Stats) CloseWList(now uint64) { s.WListChanged(now, s.wListCurrent) }

// --- Derived metrics (the actual table cells) ---------------------------

// SquashedPct is Table 3 "Squashed Instructions (%)".
func (s *Stats) SquashedPct() float64 {
	total := s.CommittedInstrs + s.SquashedInstrs
	if total == 0 {
		return 0
	}
	return 100 * float64(s.SquashedInstrs) / float64(total)
}

// AvgReadSet, AvgWriteSet, AvgPrivWriteSet are Table 3 "Average Set Sizes".
func (s *Stats) AvgReadSet() float64      { return perChunk(s.SumRSetLines, s.Chunks) }
func (s *Stats) AvgWriteSet() float64     { return perChunk(s.SumWSetLines, s.Chunks) }
func (s *Stats) AvgPrivWriteSet() float64 { return perChunk(s.SumPrivWSetLines, s.Chunks) }

func perChunk(sum, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// SpecWriteDisplPer100k and SpecReadDisplPer100k are Table 3
// "Spec. Line Displacements (Per 100k Commits)".
func (s *Stats) SpecWriteDisplPer100k() float64 { return rate(s.SpecWriteDispl, s.Chunks, 100_000) }
func (s *Stats) SpecReadDisplPer100k() float64  { return rate(s.SpecReadDispl, s.Chunks, 100_000) }

// PrivBufPer1k is Table 3 "Data from Priv. Buff. (Per 1k Comm.)".
func (s *Stats) PrivBufPer1k() float64 { return rate(s.PrivBufSupplies, s.Chunks, 1000) }

// ExtraInvsPer1k is Table 3 "# of Extra Cache Invs. (Per 1k Comm.)".
func (s *Stats) ExtraInvsPer1k() float64 { return rate(s.ExtraCacheInvs, s.Chunks, 1000) }

func rate(events, commits uint64, per float64) float64 {
	if commits == 0 {
		return 0
	}
	return per * float64(events) / float64(commits)
}

// LookupsPerCommit is Table 4 "Lookups per Commit".
func (s *Stats) LookupsPerCommit() float64 { return perChunk(s.DirLookups, s.DirCommits) }

// UnnecessaryLookupPct is Table 4 "Unnecessary Lookups (%)".
func (s *Stats) UnnecessaryLookupPct() float64 { return pct(s.DirUnnecessary, s.DirLookups) }

// UnnecessaryUpdatePct is Table 4 "Unnecessary Updates (%)".
func (s *Stats) UnnecessaryUpdatePct() float64 { return pct(s.DirBadUpdates, s.DirUpdates) }

// NodesPerWSig is Table 4 "Nodes per W Sig.".
func (s *Stats) NodesPerWSig() float64 { return perChunk(s.WSigNodeSends, s.DirCommits) }

// AvgPendingWSigs is Table 4 "# of Pend. W Sigs." (time average).
func (s *Stats) AvgPendingWSigs() float64 {
	if s.wListLastChange <= s.statWindowStart {
		return 0
	}
	return float64(s.wListIntegral) / float64(s.wListLastChange-s.statWindowStart)
}

// NonEmptyWListPct is Table 4 "Non-Empty W List (% Time)".
func (s *Stats) NonEmptyWListPct() float64 {
	if s.wListLastChange <= s.statWindowStart {
		return 0
	}
	return 100 * float64(s.wListNonEmptyTime) / float64(s.wListLastChange-s.statWindowStart)
}

// RSigRequiredPct is Table 4 "R Sig. Required (% Commits)".
func (s *Stats) RSigRequiredPct() float64 { return pct(s.RSigRequired, s.Chunks) }

// EmptyWSigPct is Table 4 "Empty W Sig. (% Commits)".
func (s *Stats) EmptyWSigPct() float64 { return pct(s.EmptyWCommits, s.Chunks) }

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// String summarizes the headline counters, for debugging output.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d committed=%d squashed=%.2f%% chunks=%d squashes=%d traffic=%dB",
		s.Cycles, s.CommittedInstrs, s.SquashedPct(), s.Chunks, s.Squashes, s.TotalTraffic())
}

package stats

import (
	"strings"
	"testing"
)

func TestCategoryStrings(t *testing.T) {
	want := []string{"Rd/Wr", "RdSig", "WrSig", "Inv", "Other"}
	for i, c := range Categories() {
		if c.String() != want[i] {
			t.Errorf("category %d = %q, want %q", i, c.String(), want[i])
		}
	}
}

func TestTrafficAccounting(t *testing.T) {
	s := New()
	s.AddTraffic(CatData, 40)
	s.AddTraffic(CatData, 40)
	s.AddTraffic(CatWrSig, 52)
	if s.TrafficBytes[CatData] != 80 || s.Messages[CatData] != 2 {
		t.Error("CatData accounting wrong")
	}
	if s.TotalTraffic() != 132 {
		t.Errorf("TotalTraffic = %d, want 132", s.TotalTraffic())
	}
}

func TestSquashedPct(t *testing.T) {
	s := New()
	if s.SquashedPct() != 0 {
		t.Error("empty stats should report 0%")
	}
	s.CommittedInstrs = 900
	s.SquashedInstrs = 100
	if got := s.SquashedPct(); got != 10 {
		t.Errorf("SquashedPct = %v, want 10", got)
	}
}

func TestSetSizeAverages(t *testing.T) {
	s := New()
	s.Chunks = 4
	s.SumRSetLines = 100
	s.SumWSetLines = 8
	s.SumPrivWSetLines = 40
	if s.AvgReadSet() != 25 || s.AvgWriteSet() != 2 || s.AvgPrivWriteSet() != 10 {
		t.Errorf("averages wrong: %v %v %v", s.AvgReadSet(), s.AvgWriteSet(), s.AvgPrivWriteSet())
	}
}

func TestRates(t *testing.T) {
	s := New()
	s.Chunks = 200_000
	s.SpecReadDispl = 4
	s.PrivBufSupplies = 600
	s.ExtraCacheInvs = 200
	if got := s.SpecReadDisplPer100k(); got != 2 {
		t.Errorf("SpecReadDisplPer100k = %v, want 2", got)
	}
	if got := s.PrivBufPer1k(); got != 3 {
		t.Errorf("PrivBufPer1k = %v, want 3", got)
	}
	if got := s.ExtraInvsPer1k(); got != 1 {
		t.Errorf("ExtraInvsPer1k = %v, want 1", got)
	}
}

func TestDirectoryMetrics(t *testing.T) {
	s := New()
	s.DirCommits = 10
	s.DirLookups = 70
	s.DirUnnecessary = 7
	s.DirUpdates = 50
	s.DirBadUpdates = 1
	s.WSigNodeSends = 5
	if s.LookupsPerCommit() != 7 {
		t.Errorf("LookupsPerCommit = %v", s.LookupsPerCommit())
	}
	if s.UnnecessaryLookupPct() != 10 {
		t.Errorf("UnnecessaryLookupPct = %v", s.UnnecessaryLookupPct())
	}
	if s.UnnecessaryUpdatePct() != 2 {
		t.Errorf("UnnecessaryUpdatePct = %v", s.UnnecessaryUpdatePct())
	}
	if s.NodesPerWSig() != 0.5 {
		t.Errorf("NodesPerWSig = %v", s.NodesPerWSig())
	}
}

func TestWListIntegrals(t *testing.T) {
	s := New()
	// 0..100: empty; 100..150: 1 pending; 150..200: 2 pending; 200..400: 0.
	s.WListChanged(100, 1)
	s.WListChanged(150, 2)
	s.WListChanged(200, 0)
	s.CloseWList(400)
	// Integral = 0*100 + 1*50 + 2*50 + 0*200 = 150 over 400 cycles.
	if got := s.AvgPendingWSigs(); got != 150.0/400.0 {
		t.Errorf("AvgPendingWSigs = %v, want 0.375", got)
	}
	// Non-empty from 100 to 200 = 100 of 400 cycles.
	if got := s.NonEmptyWListPct(); got != 25 {
		t.Errorf("NonEmptyWListPct = %v, want 25", got)
	}
}

func TestCommitPcts(t *testing.T) {
	s := New()
	s.Chunks = 200
	s.RSigRequired = 10
	s.EmptyWCommits = 172
	if s.RSigRequiredPct() != 5 {
		t.Errorf("RSigRequiredPct = %v, want 5", s.RSigRequiredPct())
	}
	if s.EmptyWSigPct() != 86 {
		t.Errorf("EmptyWSigPct = %v, want 86", s.EmptyWSigPct())
	}
}

func TestZeroDenominatorsSafe(t *testing.T) {
	s := New()
	for _, f := range []func() float64{
		s.SquashedPct, s.AvgReadSet, s.AvgWriteSet, s.AvgPrivWriteSet,
		s.SpecWriteDisplPer100k, s.SpecReadDisplPer100k, s.PrivBufPer1k,
		s.ExtraInvsPer1k, s.LookupsPerCommit, s.UnnecessaryLookupPct,
		s.UnnecessaryUpdatePct, s.NodesPerWSig, s.AvgPendingWSigs,
		s.NonEmptyWListPct, s.RSigRequiredPct, s.EmptyWSigPct,
	} {
		if got := f(); got != 0 {
			t.Errorf("zero stats produced %v", got)
		}
	}
}

func TestStringSummary(t *testing.T) {
	s := New()
	s.Cycles = 1234
	if !strings.Contains(s.String(), "cycles=1234") {
		t.Errorf("String() = %q", s.String())
	}
}

// TestSubtractBaseWListStraddlesWarmup is the regression test for the
// warmup-boundary accounting bug: when the last W-list change predates the
// warmup snapshot, the pending-W time between that change and the window
// open must be attributed to the warmup (rolled into the subtracted base),
// not to the measurement window.
func TestSubtractBaseWListStraddlesWarmup(t *testing.T) {
	s := New()
	// t=100: list becomes 2 pending, and stays there across the warmup
	// boundary at t=500.
	s.WListChanged(100, 2)
	snap := s.Snapshot()
	const warmup = 500
	// t=900: list drains. t=1000: run ends.
	s.WListChanged(900, 0)
	s.CloseWList(1000)
	s.SubtractBase(&snap, warmup)

	// Measurement window is 500..1000. Pending was 2 during 500..900:
	// integral = 2*400 = 800 over 500 cycles → 1.6; non-empty 400/500 = 80%.
	// The buggy subtraction left the 100..500 warmup span in the window,
	// yielding the impossible 3.2 average (> max pending of 2) and 160%.
	if got := s.AvgPendingWSigs(); got != 1.6 {
		t.Errorf("AvgPendingWSigs = %v, want 1.6", got)
	}
	if got := s.NonEmptyWListPct(); got != 80 {
		t.Errorf("NonEmptyWListPct = %v, want 80", got)
	}
}

// TestSubtractBaseWListChangeBeforeWarmup: when the list drained before the
// snapshot, rolling forward must add nothing for the empty span.
func TestSubtractBaseWListChangeBeforeWarmup(t *testing.T) {
	s := New()
	s.WListChanged(100, 3)
	s.WListChanged(200, 0) // drained well before warmup
	snap := s.Snapshot()
	s.WListChanged(600, 1)
	s.WListChanged(800, 0)
	s.CloseWList(1000)
	s.SubtractBase(&snap, 500)

	// Window 500..1000: pending 1 during 600..800 → 200/500 = 0.4; 40%.
	if got := s.AvgPendingWSigs(); got != 0.4 {
		t.Errorf("AvgPendingWSigs = %v, want 0.4", got)
	}
	if got := s.NonEmptyWListPct(); got != 40 {
		t.Errorf("NonEmptyWListPct = %v, want 40", got)
	}
}

package sim

import "testing"

// BenchmarkEngineSchedule measures the steady-state schedule+fire loop the
// whole simulator is built on: a self-rescheduling event population of
// realistic depth. Must report ~0 allocs/op — the heap records live inline
// in the engine's slice and AfterCall needs no closure capture.
func BenchmarkEngineSchedule(b *testing.B) {
	const population = 64 // typical live-event count of an 8-core machine
	e := NewEngine(1)
	var fire func(any)
	fire = func(arg any) {
		n := arg.(*int)
		*n++
		e.AfterCall(Time(1+*n%7), fire, arg)
	}
	counters := make([]int, population)
	for i := range counters {
		e.AfterCall(Time(i%5+1), fire, &counters[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineClosure is the closure-form control: same loop through
// At/After with per-event captures, for comparing the two scheduling forms.
func BenchmarkEngineClosure(b *testing.B) {
	const population = 64
	e := NewEngine(1)
	n := 0
	var self func()
	self = func() {
		n++
		e.After(Time(1+n%7), self)
	}
	for i := 0; i < population; i++ {
		e.After(Time(i%5+1), self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

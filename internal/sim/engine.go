// Package sim provides the deterministic discrete-event simulation engine
// that underpins every timing model in the repository.
//
// The engine maintains a priority queue of events ordered by (time, sequence
// number). Sequence numbers make execution fully deterministic: two events
// scheduled for the same cycle fire in the order they were scheduled. All
// simulator components run on a single goroutine, so no locking is needed
// and results are bit-reproducible for a given seed.
//
// Performance architecture: the queue is a monomorphic 4-ary heap of event
// records stored inline in one slice. Unlike container/heap there is no
// interface boxing — push and pop never allocate in steady state, and the
// flat 4-ary layout does ~half the compare/swap levels of a binary heap on
// the simulator's queue depths. Each record carries either a plain func()
// or a typed callback + payload word (AtCall/AfterCall), letting hot
// schedulers avoid per-event closure captures entirely by reusing one
// callback and threading state through the payload.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a simulation timestamp in processor cycles.
type Time uint64

// event is one scheduled callback record. Records live inline in the
// engine's heap slice — they are the "pool"; append reuses the slice's
// capacity, so steady-state scheduling performs zero allocations.
type event struct {
	at  Time
	seq uint64
	fn  func()    // plain closure form (At/After)
	cb  func(any) // typed-callback form (AtCall/AfterCall)
	arg any       // payload for cb; an interface holding a pointer does not allocate
}

// arity of the event heap. 4-ary trades slightly more comparisons per
// sift-down for half the tree depth and much better cache locality than a
// binary heap; on the simulator's typical queue depths (tens to a few
// hundred events) it measures fastest.
const arity = 4

// Engine is a discrete-event simulator clock and scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now  Time
	seq  uint64
	heap []event
	rng  *rand.Rand
	// fired counts events executed, as a cheap progress/livelock metric.
	fired uint64
	// limit aborts the run if the clock passes it (0 = no limit).
	limit Time
}

// NewEngine returns an engine whose RNG is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Components that
// need randomness (e.g. backoff jitter) must use this source so whole-system
// runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetLimit installs a wall-clock (in cycles) abort limit. Run panics with a
// descriptive message if the limit is exceeded; this converts protocol
// livelocks into loud test failures instead of hangs.
func (e *Engine) SetLimit(t Time) { e.limit = t }

// At schedules f to run at absolute time t. Scheduling in the past is a
// programming error and panics.
//
//sim:hotpath
func (e *Engine) At(t Time, f func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: f})
}

// After schedules f to run d cycles from now.
//
//sim:hotpath
func (e *Engine) After(d Time, f func()) { e.At(e.now+d, f) }

// AtCall schedules cb(arg) at absolute time t. It is the allocation-free
// scheduling form: hot callers keep one long-lived cb (typically a bound
// method) and pass per-event state through arg — a pointer-shaped payload
// does not allocate when stored in the interface word.
//
//sim:hotpath
func (e *Engine) AtCall(t Time, cb func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, cb: cb, arg: arg})
}

// AfterCall schedules cb(arg) d cycles from now.
//
//sim:hotpath
func (e *Engine) AfterCall(d Time, cb func(any), arg any) { e.AtCall(e.now+d, cb, arg) }

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// Reset returns the engine to its just-constructed state while retaining
// the heap slice's capacity, so a warm machine reuse (core.Runner) pays no
// event-queue reallocation. Leftover events are dropped: Run can stop with
// events still queued (the all-procs-done condition), and a recycled
// engine must not fire a previous run's callbacks. The vacated records are
// zeroed so dead closures and payloads are released to the GC, and the RNG
// is re-seeded so the next run draws the exact stream a cold NewEngine
// would — the determinism contract of warm reuse.
func (e *Engine) Reset(seed int64) {
	clear(e.heap) // release closures/payloads from any undrained events
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.limit = 0
	e.rng = rand.New(rand.NewSource(seed))
}

// less orders events by (time, sequence), the determinism contract.
func (a *event) less(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap property by sifting up.
//
//sim:hotpath
func (e *Engine) push(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / arity
		if !h[i].less(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the slice does not retain dead closures or payloads.
//
//sim:hotpath
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release references held by the record
	h = h[:n]
	// Sift down.
	i := 0
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		best := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].less(&h[best]) {
				best = c
			}
		}
		if !h[best].less(&h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	e.heap = h
	return top
}

// Step fires the single earliest event and returns true, or returns false
// if the queue is empty.
//
//sim:hotpath
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	if ev.at > e.now {
		e.now = ev.at
	}
	if e.limit != 0 && e.now > e.limit {
		panic(fmt.Sprintf("sim: cycle limit %d exceeded (now %d, %d events fired); likely livelock", e.limit, e.now, e.fired))
	}
	e.fired++
	if ev.cb != nil {
		ev.cb(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run fires events until the queue drains or stop returns true. A nil stop
// runs to quiescence.
func (e *Engine) Run(stop func() bool) {
	for e.Step() {
		if stop != nil && stop() {
			return
		}
	}
}

// RunUntil fires events until the clock reaches t or the queue drains.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Package sim provides the deterministic discrete-event simulation engine
// that underpins every timing model in the repository.
//
// The engine maintains a priority queue of events ordered by (time, sequence
// number). Sequence numbers make execution fully deterministic: two events
// scheduled for the same cycle fire in the order they were scheduled. All
// simulator components run on a single goroutine, so no locking is needed
// and results are bit-reproducible for a given seed.
//
// Performance architecture: the queue is a two-tier calendar. A cycle-level
// machine schedules almost every event at now+1..now+k for small k (cache
// hops are 6 cycles, an off-chip access 293, commit backoff tens), so the
// near future — the next wheelSize cycles — is a timing wheel: one FIFO
// slot per cycle, push and pop both O(1), with an occupancy bitmap making
// "next non-empty cycle" a couple of word scans. Events beyond the wheel
// horizon (watchdog polls, pre-arbitration timeouts) spill into a
// monomorphic 4-ary overflow heap of the same inline event records. Both
// tiers are allocation-free in steady state: slot slices and the heap
// slice are the pool, and append reuses their capacity. Each record
// carries either a plain func() or a typed callback + payload word
// (AtCall/AfterCall), letting hot schedulers avoid per-event closure
// captures entirely by reusing one callback and threading state through
// the payload.
//
// Ordering across the tiers is exact (see DESIGN.md §16): an event is
// heap-resident only if its time was ≥ now+wheelSize when scheduled, and
// wheel-resident only if it was < now+wheelSize. now never decreases, so
// for any single cycle t every heap event at t was scheduled before every
// wheel event at t and carries a smaller sequence number. Draining the
// heap first on time ties therefore reproduces the exact (time, seq)
// order of a single priority queue, bit for bit.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Time is a simulation timestamp in processor cycles.
type Time uint64

// event is one scheduled callback record. Records live inline in the
// wheel's slot slices and the overflow heap — they are the "pool"; append
// reuses the slices' capacity, so steady-state scheduling performs zero
// allocations.
type event struct {
	at  Time
	seq uint64
	fn  func()    // plain closure form (At/After)
	cb  func(any) // typed-callback form (AtCall/AfterCall)
	arg any       // payload for cb; an interface holding a pointer does not allocate
}

// arity of the overflow event heap. 4-ary trades slightly more comparisons
// per sift-down for half the tree depth and much better cache locality
// than a binary heap; on the overflow queue's depths it measures fastest.
const arity = 4

// Timing-wheel geometry. wheelSize cycles of lookahead covers every
// steady-state latency in the machine (hop 6, directory access, off-chip
// 293, commit backoff ≤ 51, squash penalties); only coarse timers (5000-
// cycle watchdog polls, 20000+-cycle pre-arbitration timeouts) overflow
// to the heap. Power of two so slot index and bitmap scans are masks.
const (
	wheelBits  = 9
	wheelSize  = 1 << wheelBits // cycles of O(1) lookahead
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64 // occupancy bitmap words
)

// Engine is a discrete-event simulator clock and scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now Time
	seq uint64
	// slots[t&wheelMask] holds, in FIFO (= seq) order, the events
	// scheduled for cycle t, for t in [now, now+wheelSize). heads gives
	// each slot's drain cursor so pop never shifts storage; a fully
	// drained slot truncates to len 0, keeping capacity.
	slots [][]event
	heads []int
	// occ is the slot-occupancy bitmap: bit i set iff slots[i] has
	// undrained events. wcount is the total across all slots.
	occ    [wheelWords]uint64
	wcount int
	// heap is the far-future overflow tier (events ≥ wheelSize cycles
	// ahead at scheduling time).
	heap []event
	rng  *rand.Rand
	// fired counts events executed, as a cheap progress/livelock metric.
	fired uint64
	// limit aborts the run if the clock passes it (0 = no limit).
	limit Time
}

// NewEngine returns an engine whose RNG is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		slots: make([][]event, wheelSize),
		heads: make([]int, wheelSize),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Components that
// need randomness (e.g. backoff jitter) must use this source so whole-system
// runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetLimit installs a wall-clock (in cycles) abort limit. Run panics with a
// descriptive message if the limit is exceeded; this converts protocol
// livelocks into loud test failures instead of hangs.
func (e *Engine) SetLimit(t Time) { e.limit = t }

// At schedules f to run at absolute time t. Scheduling in the past is a
// programming error and panics.
//
//sim:hotpath
func (e *Engine) At(t Time, f func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: f})
}

// After schedules f to run d cycles from now.
//
//sim:hotpath
func (e *Engine) After(d Time, f func()) { e.At(e.now+d, f) }

// AtCall schedules cb(arg) at absolute time t. It is the allocation-free
// scheduling form: hot callers keep one long-lived cb (typically a bound
// method) and pass per-event state through arg — a pointer-shaped payload
// does not allocate when stored in the interface word.
//
//sim:hotpath
func (e *Engine) AtCall(t Time, cb func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, cb: cb, arg: arg})
}

// AfterCall schedules cb(arg) d cycles from now.
//
//sim:hotpath
func (e *Engine) AfterCall(d Time, cb func(any), arg any) { e.AtCall(e.now+d, cb, arg) }

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return e.wcount + len(e.heap) }

// Reset returns the engine to its just-constructed state while retaining
// the wheel slots' and heap slice's capacity, so a warm machine reuse
// (core.Runner) pays no event-queue reallocation. Leftover events are
// dropped: Run can stop with events still queued (the all-procs-done
// condition), and a recycled engine must not fire a previous run's
// callbacks. The vacated records are zeroed so dead closures and payloads
// are released to the GC, and the RNG is re-seeded so the next run draws
// the exact stream a cold NewEngine would — the determinism contract of
// warm reuse.
func (e *Engine) Reset(seed int64) {
	for w, word := range e.occ {
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			clear(e.slots[i]) // release closures/payloads from undrained events
			e.slots[i] = e.slots[i][:0]
			e.heads[i] = 0
		}
		e.occ[w] = 0
	}
	e.wcount = 0
	clear(e.heap) // release closures/payloads from any undrained events
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.limit = 0
	e.rng = rand.New(rand.NewSource(seed))
}

// less orders events by (time, sequence), the determinism contract.
func (a *event) less(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push routes ev to the wheel when it lands within the lookahead window
// and to the overflow heap otherwise. Wheel insertion is O(1): append to
// the cycle's FIFO slot and set its occupancy bit.
//
//sim:hotpath
func (e *Engine) push(ev event) {
	if ev.at < e.now+wheelSize {
		i := int(ev.at) & wheelMask
		e.slots[i] = append(e.slots[i], ev)
		e.occ[i>>6] |= 1 << uint(i&63)
		e.wcount++
		return
	}
	e.pushHeap(ev)
}

// pushHeap appends ev to the overflow heap and restores the heap property
// by sifting up.
//
//sim:hotpath
func (e *Engine) pushHeap(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / arity
		if !h[i].less(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// wheelNext returns the earliest cycle with a pending wheel event. It must
// only be called with wcount > 0. The scan walks the occupancy bitmap
// circularly from now's slot — at most wheelWords+1 word reads, usually
// one, since the wheel invariant guarantees every occupied slot maps to a
// unique cycle in [now, now+wheelSize).
//
//sim:hotpath
func (e *Engine) wheelNext() Time {
	start := int(e.now) & wheelMask
	w := start >> 6
	word := e.occ[w] &^ (1<<uint(start&63) - 1)
	for {
		if word != 0 {
			slot := w<<6 | bits.TrailingZeros64(word)
			return e.now + Time((slot-start)&wheelMask)
		}
		w = (w + 1) & (wheelWords - 1)
		word = e.occ[w]
		if w == start>>6 {
			// Wrapped: only the start word's low bits (cycles just under
			// now+wheelSize) remain unexamined.
			word &= 1<<uint(start&63) - 1
			slot := w<<6 | bits.TrailingZeros64(word)
			return e.now + Time((slot-start)&wheelMask)
		}
	}
}

// popWheel removes and returns the head of cycle t's FIFO slot, zeroing
// the vacated record so the slice does not retain dead closures or
// payloads. A fully drained slot truncates (capacity kept) and clears its
// occupancy bit.
//
//sim:hotpath
func (e *Engine) popWheel(t Time) event {
	i := int(t) & wheelMask
	s := e.slots[i]
	h := e.heads[i]
	ev := s[h]
	s[h] = event{} // release references held by the record
	h++
	if h == len(s) {
		e.slots[i] = s[:0]
		e.heads[i] = 0
		e.occ[i>>6] &^= 1 << uint(i&63)
	} else {
		e.heads[i] = h
	}
	e.wcount--
	return ev
}

// pop removes and returns the earliest event across both tiers. On a time
// tie the heap wins: a heap-resident event at cycle t was scheduled while
// t was beyond the wheel horizon, i.e. before every wheel-resident event
// at t, so its sequence number is strictly smaller (package comment).
//
//sim:hotpath
func (e *Engine) pop() event {
	if e.wcount > 0 {
		t := e.wheelNext()
		if len(e.heap) == 0 || t < e.heap[0].at {
			return e.popWheel(t)
		}
	}
	return e.popHeap()
}

// popHeap removes and returns the earliest overflow-heap event. The
// vacated tail slot is zeroed so the slice does not retain dead closures
// or payloads.
//
//sim:hotpath
func (e *Engine) popHeap() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release references held by the record
	h = h[:n]
	// Sift down.
	i := 0
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		best := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].less(&h[best]) {
				best = c
			}
		}
		if !h[best].less(&h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	e.heap = h
	return top
}

// nextAt reports the earliest pending event time across both tiers.
//
//sim:hotpath
func (e *Engine) nextAt() (Time, bool) {
	if e.wcount > 0 {
		t := e.wheelNext()
		if len(e.heap) > 0 && e.heap[0].at < t {
			t = e.heap[0].at
		}
		return t, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// Step fires the single earliest event and returns true, or returns false
// if the queue is empty.
//
//sim:hotpath
func (e *Engine) Step() bool {
	if e.wcount == 0 && len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	if ev.at > e.now {
		e.now = ev.at
	}
	if e.limit != 0 && e.now > e.limit {
		panic(fmt.Sprintf("sim: cycle limit %d exceeded (now %d, %d events fired); likely livelock", e.limit, e.now, e.fired))
	}
	e.fired++
	if ev.cb != nil {
		ev.cb(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run fires events until the queue drains or stop returns true. A nil stop
// runs to quiescence.
func (e *Engine) Run(stop func() bool) {
	for e.Step() {
		if stop != nil && stop() {
			return
		}
	}
}

// RunUntil fires events until the clock reaches t or the queue drains.
func (e *Engine) RunUntil(t Time) {
	for {
		at, ok := e.nextAt()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

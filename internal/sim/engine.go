// Package sim provides the deterministic discrete-event simulation engine
// that underpins every timing model in the repository.
//
// The engine maintains a priority queue of events ordered by (time, sequence
// number). Sequence numbers make execution fully deterministic: two events
// scheduled for the same cycle fire in the order they were scheduled. All
// simulator components run on a single goroutine, so no locking is needed
// and results are bit-reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a simulation timestamp in processor cycles.
type Time uint64

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64
	fire func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator clock and scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	// Fired counts events executed, as a cheap progress/livelock metric.
	fired uint64
	// Limit aborts the run if the clock passes it (0 = no limit).
	limit Time
}

// NewEngine returns an engine whose RNG is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Components that
// need randomness (e.g. backoff jitter) must use this source so whole-system
// runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetLimit installs a wall-clock (in cycles) abort limit. Run panics with a
// descriptive message if the limit is exceeded; this converts protocol
// livelocks into loud test failures instead of hangs.
func (e *Engine) SetLimit(t Time) { e.limit = t }

// At schedules f to run at absolute time t. Scheduling in the past is a
// programming error and panics.
func (e *Engine) At(t Time, f func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fire: f})
}

// After schedules f to run d cycles from now.
func (e *Engine) After(d Time, f func()) { e.At(e.now+d, f) }

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Step fires the single earliest event and returns true, or returns false
// if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	if ev.at > e.now {
		e.now = ev.at
	}
	if e.limit != 0 && e.now > e.limit {
		panic(fmt.Sprintf("sim: cycle limit %d exceeded (now %d, %d events fired); likely livelock", e.limit, e.now, e.fired))
	}
	e.fired++
	ev.fire()
	return true
}

// Run fires events until the queue drains or stop returns true. A nil stop
// runs to quiescence.
func (e *Engine) Run(stop func() bool) {
	for e.Step() {
		if stop != nil && stop() {
			return
		}
	}
}

// RunUntil fires events until the clock reaches t or the queue drains.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

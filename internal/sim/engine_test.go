package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run(nil)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(7, func() {
		at = e.Now()
		e.After(3, func() { at = e.Now() })
	})
	e.Run(nil)
	if at != 10 {
		t.Fatalf("nested After landed at %d, want 10", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(nil)
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(5, func() { fired++ })
	e.At(15, func() { fired++ })
	e.RunUntil(10)
	if fired != 1 {
		t.Fatalf("fired %d events by t=10, want 1", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock at %d, want 10", e.Now())
	}
	e.Run(nil)
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestStopPredicateHaltsRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := Time(1); i <= 100; i++ {
		e.At(i, func() { n++ })
	}
	e.Run(func() bool { return n >= 10 })
	if n != 10 {
		t.Fatalf("ran %d events, want 10", n)
	}
}

func TestLimitPanicsOnRunaway(t *testing.T) {
	e := NewEngine(1)
	e.SetLimit(100)
	var tick func()
	tick = func() { e.After(10, tick) }
	e.After(10, tick)
	defer func() {
		if recover() == nil {
			t.Error("cycle limit exceeded without panic")
		}
	}()
	e.Run(nil)
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine(seed)
		var order []int
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			i := i
			e.At(Time(r.Intn(50)), func() {
				order = append(order, i)
				if e.Rand().Intn(2) == 0 {
					e.After(Time(e.Rand().Intn(5)), func() { order = append(order, -i) })
				}
			})
		}
		e.Run(nil)
		return order
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: regardless of the insertion order of a set of timestamps, the
// engine fires them in nondecreasing time order and fires all of them.
func TestQuickOrdering(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine(1)
		var got []Time
		for _, s := range stamps {
			at := Time(s)
			e.At(at, func() { got = append(got, at) })
		}
		e.Run(nil)
		if len(got) != len(stamps) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 17; i++ {
		e.At(Time(i), func() {})
	}
	e.Run(nil)
	if e.Fired() != 17 {
		t.Fatalf("Fired() = %d, want 17", e.Fired())
	}
}

package sim

import (
	"math/rand"
	"testing"
)

// This file holds the differential and property tests for the two-tier
// calendar queue (timing wheel + overflow heap): every schedule sequence —
// near-future, far-future, wheel-horizon boundary, same-cycle bursts,
// reschedule chains, Reset/warm-reuse cycles — must fire in exactly the
// (time, seq) order a single reference priority queue produces.

// refEngine is the reference model: a deliberately naive single priority
// queue with O(n) extract-min over (at, seq). It mirrors the Engine API
// surface the tests drive (schedule-at, step, run-until, reset).
type refEngine struct {
	now Time
	seq uint64
	evs []refEvent
}

type refEvent struct {
	at  Time
	seq uint64
	id  uint64
}

func (r *refEngine) at(tm Time, id uint64) {
	r.seq++
	r.evs = append(r.evs, refEvent{at: tm, seq: r.seq, id: id})
}

func (r *refEngine) pending() int { return len(r.evs) }

func (r *refEngine) peek() (Time, bool) {
	if len(r.evs) == 0 {
		return 0, false
	}
	best := 0
	for i := 1; i < len(r.evs); i++ {
		if r.evs[i].at < r.evs[best].at ||
			(r.evs[i].at == r.evs[best].at && r.evs[i].seq < r.evs[best].seq) {
			best = i
		}
	}
	return r.evs[best].at, true
}

func (r *refEngine) step() (refEvent, bool) {
	if len(r.evs) == 0 {
		return refEvent{}, false
	}
	best := 0
	for i := 1; i < len(r.evs); i++ {
		if r.evs[i].at < r.evs[best].at ||
			(r.evs[i].at == r.evs[best].at && r.evs[i].seq < r.evs[best].seq) {
			best = i
		}
	}
	ev := r.evs[best]
	r.evs = append(r.evs[:best], r.evs[best+1:]...)
	if ev.at > r.now {
		r.now = ev.at
	}
	return ev, true
}

func (r *refEngine) reset() {
	r.now, r.seq, r.evs = 0, 0, r.evs[:0]
}

// firing is one observed event execution: the clock at fire time plus the
// event's identity. Differential runs compare firing sequences.
type firing struct {
	at Time
	id uint64
}

// diffHarness drives an Engine and the reference model through the same
// operation sequence and fails the test on the first divergence in firing
// order, clock, or pending count.
type diffHarness struct {
	t    testing.TB
	eng  *Engine
	ref  *refEngine
	got  []firing
	next uint64
}

func newDiffHarness(t testing.TB, eng *Engine) *diffHarness {
	return &diffHarness{t: t, eng: eng, ref: &refEngine{}}
}

// schedule registers one event (with a fresh id) at absolute time tm on
// both sides. children are deltas the engine-side callback schedules
// recursively at fire time — the reschedule-from-callback pattern every
// simulator component uses — and each recursive schedule registers on
// both sides again, so the reference stays aligned without replay logic.
func (h *diffHarness) schedule(tm Time, children []Time) {
	id := h.next
	h.next++
	h.ref.at(tm, id)
	h.eng.At(tm, func() {
		h.got = append(h.got, firing{at: h.eng.Now(), id: id})
		for _, d := range children {
			h.schedule(h.eng.Now()+d, nil)
		}
	})
}

func (h *diffHarness) stepBoth() bool {
	rev, ok := h.ref.step()
	eok := h.eng.Step()
	if ok != eok {
		h.t.Fatalf("step divergence: ref ok=%v engine ok=%v", ok, eok)
	}
	if !ok {
		return false
	}
	n := len(h.got)
	if n == 0 {
		h.t.Fatalf("engine step fired nothing; ref fired id=%d at=%d", rev.id, rev.at)
	}
	g := h.got[n-1]
	if g.id != rev.id || g.at != rev.at {
		h.t.Fatalf("firing divergence: engine (at=%d id=%d) vs ref (at=%d id=%d)", g.at, g.id, rev.at, rev.id)
	}
	if h.eng.Now() != rev.at {
		h.t.Fatalf("clock divergence: engine now=%d ref at=%d", h.eng.Now(), rev.at)
	}
	if h.eng.Pending() != h.ref.pending() {
		h.t.Fatalf("pending divergence: engine %d ref %d", h.eng.Pending(), h.ref.pending())
	}
	return true
}

func (h *diffHarness) drain() {
	for h.stepBoth() {
	}
}

// TestWheelDifferentialRandom drives random schedule sequences spanning
// the wheel horizon through the engine and the reference queue.
func TestWheelDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine(seed)
		h := newDiffHarness(t, eng)
		// Deltas straddle every regime: same-cycle (0), near-future wheel
		// hits, the exact horizon boundary (wheelSize-1, wheelSize,
		// wheelSize+1), and far-future heap spills.
		deltas := []Time{0, 1, 2, 6, 63, 64, 287, wheelSize - 1, wheelSize, wheelSize + 1, 2000, 20000}
		for i := 0; i < 400; i++ {
			switch rng.Intn(5) {
			case 0, 1: // schedule a leaf event
				h.schedule(eng.Now()+deltas[rng.Intn(len(deltas))], nil)
			case 2: // schedule an event that reschedules children when fired
				kids := make([]Time, 1+rng.Intn(3))
				for j := range kids {
					kids[j] = deltas[rng.Intn(len(deltas))]
				}
				h.schedule(eng.Now()+deltas[rng.Intn(len(deltas))], kids)
			case 3: // burst: several events on the same future cycle
				at := eng.Now() + deltas[rng.Intn(len(deltas))]
				for j := 0; j < 3; j++ {
					h.schedule(at, nil)
				}
			case 4: // fire a few
				for j := 0; j < 4; j++ {
					if !h.stepBoth() {
						break
					}
				}
			}
		}
		h.drain()
		if eng.Pending() != 0 || h.ref.pending() != 0 {
			t.Fatalf("seed %d: undrained events (engine %d, ref %d)", seed, eng.Pending(), h.ref.pending())
		}
	}
}

// TestWheelDifferentialWarmReuse runs a random script, Resets the engine,
// and runs a different script on the reused (warm) engine — the firing
// order must match both the reference queue and a cold engine running the
// second script alone.
func TestWheelDifferentialWarmReuse(t *testing.T) {
	script := func(eng *Engine, seed int64) []firing {
		rng := rand.New(rand.NewSource(seed))
		h := newDiffHarness(t, eng)
		for i := 0; i < 200; i++ {
			d := Time(rng.Intn(3 * wheelSize))
			h.schedule(eng.Now()+d, nil)
			if rng.Intn(3) == 0 {
				h.stepBoth()
			}
		}
		h.drain()
		return h.got
	}

	warm := NewEngine(1)
	script(warm, 7) // first run leaves grown slot/heap capacity behind
	warm.Reset(1)
	if warm.Pending() != 0 || warm.Now() != 0 {
		t.Fatalf("Reset left state: pending=%d now=%d", warm.Pending(), warm.Now())
	}
	warmGot := script(warm, 42)

	cold := NewEngine(1)
	coldGot := script(cold, 42)

	if len(warmGot) != len(coldGot) {
		t.Fatalf("warm fired %d events, cold %d", len(warmGot), len(coldGot))
	}
	for i := range warmGot {
		if warmGot[i] != coldGot[i] {
			t.Fatalf("warm/cold divergence at %d: warm %+v cold %+v", i, warmGot[i], coldGot[i])
		}
	}
}

// TestWheelResetDropsPendingEverywhere leaves events in both tiers and in
// a partially drained slot, Resets, and checks nothing survives.
func TestWheelResetDropsPendingEverywhere(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	for i := 0; i < 4; i++ {
		e.At(10, func() { fired++ })            // same-cycle burst (partial drain below)
		e.At(Time(10000+i), func() { fired++ }) // heap tier
	}
	e.Step() // drain one of the four cycle-10 events, leaving a nonzero head
	if fired != 1 {
		t.Fatalf("expected 1 fired, got %d", fired)
	}
	e.Reset(1)
	if e.Pending() != 0 {
		t.Fatalf("Reset left %d pending events", e.Pending())
	}
	e.Run(nil)
	if fired != 1 {
		t.Fatalf("a pre-Reset event fired after Reset (fired=%d)", fired)
	}
}

// TestWheelHorizonTieOrder pins the cross-tier tie rule: an event that
// spills to the heap (scheduled when its cycle was beyond the horizon)
// must fire before every event later scheduled into the wheel for the
// same cycle — that is pure (time, seq) order.
func TestWheelHorizonTieOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	target := Time(wheelSize + 5) // beyond horizon at schedule time
	e.At(target, func() { got = append(got, 0) })
	// Advance the clock so target enters the wheel window, then schedule
	// more events for the very same cycle (they land in the wheel).
	e.At(10, func() {
		e.At(target, func() { got = append(got, 1) })
		e.At(target, func() { got = append(got, 2) })
	})
	e.Run(nil)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie order %v, want %v", got, want)
		}
	}
}

// FuzzEngine feeds op-code streams through the engine and the reference
// queue. Each input byte triplet encodes one operation; the fuzzer hunts
// for any divergence in firing order, clock, or pending count.
func FuzzEngine(f *testing.F) {
	f.Add([]byte("\x00\x06\x00\x02\x00\x00"))                         // near schedule, step
	f.Add([]byte("\x01\xff\xff\x02\x00\x00\x02\x00\x00"))             // far spill, steps
	f.Add([]byte("\x00\xff\x01\x01\xff\x01\x03\x20\x00\x02\x00\x00")) // horizon straddle + run-until
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x02\x00\x00\x04\x00\x00")) // same-cycle burst + reset
	f.Add([]byte("\x03\xff\x7f\x00\x01\x00\x02\x00\x00"))             // long run-until then near
	f.Fuzz(func(t *testing.T, ops []byte) {
		eng := NewEngine(1)
		ref := &refEngine{}
		var got []firing
		var next uint64
		scheduleBoth := func(d Time) {
			id := next
			next++
			at := eng.Now() + d
			ref.at(at, id)
			eng.At(at, func() { got = append(got, firing{at: eng.Now(), id: id}) })
		}
		stepBoth := func() {
			rev, ok := ref.step()
			if eok := eng.Step(); eok != ok {
				t.Fatalf("step divergence: engine %v ref %v", eok, ok)
			}
			if !ok {
				return
			}
			g := got[len(got)-1]
			if g.id != rev.id || g.at != rev.at || eng.Now() != rev.at {
				t.Fatalf("firing divergence: engine (at=%d id=%d now=%d) vs ref (at=%d id=%d)",
					g.at, g.id, eng.Now(), rev.at, rev.id)
			}
		}
		for i := 0; i+2 < len(ops); i += 3 {
			arg := Time(ops[i+1]) | Time(ops[i+2])<<8
			switch ops[i] % 5 {
			case 0: // near-future schedule (wheel tier)
				scheduleBoth(arg & wheelMask)
			case 1: // far-future schedule (often heap tier)
				scheduleBoth(arg * 7)
			case 2:
				stepBoth()
			case 3: // run-until a bounded horizon
				until := eng.Now() + arg
				for {
					at, ok := ref.peek()
					if !ok || at > until {
						break
					}
					stepBoth()
				}
				eng.RunUntil(until)
				if ref.now < until {
					ref.now = until
				}
				if eng.Now() != ref.now {
					t.Fatalf("run-until clock divergence: engine %d ref %d", eng.Now(), ref.now)
				}
			case 4: // warm reuse
				eng.Reset(1)
				ref.reset()
				got = got[:0]
			}
			if eng.Pending() != ref.pending() {
				t.Fatalf("pending divergence: engine %d ref %d", eng.Pending(), ref.pending())
			}
		}
		// Drain to quiescence; every leftover event must match too.
		for ref.pending() > 0 {
			stepBoth()
		}
		if eng.Step() {
			t.Fatal("engine had events after reference drained")
		}
	})
}

package fault

import (
	"strings"
	"testing"

	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// TestNilPlanIsNeutral pins the universal "no faults" value: every query
// method on a nil *Plan returns the neutral element. This is what lets
// every hook site run unconditionally without perturbing fault-free runs.
func TestNilPlanIsNeutral(t *testing.T) {
	var p *Plan
	if p.ArbDeny(0) {
		t.Error("nil plan denied a commit")
	}
	if d := p.ArbDelay(0); d != 0 {
		t.Errorf("nil plan injected arbiter delay %d", d)
	}
	if d := p.NetDelay(); d != 0 {
		t.Errorf("nil plan injected net delay %d", d)
	}
	if p.SpuriousSquash(0) {
		t.Error("nil plan injected a squash")
	}
	w := sig.NewFactory(sig.KindBloom)()
	w.Add(3)
	p.AmplifyW(0, w) // must not panic or mutate
	if c := p.Counters(); c != (Counters{}) {
		t.Errorf("nil plan counted injections: %+v", c)
	}
	if got := p.Campaign().Name; got != "none" {
		t.Errorf("nil plan campaign = %q, want none", got)
	}
}

// TestNoneYieldsNilPlan: the "none" campaign (and the empty name)
// instantiate to nil, keeping zero-fault hot paths bit-identical.
func TestNoneYieldsNilPlan(t *testing.T) {
	for _, name := range []string{"", "none"} {
		c, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if plan := NewPlan(c, 1); plan != nil {
			t.Errorf("NewPlan(%q) = %v, want nil", name, plan)
		}
	}
}

// TestUnknownCampaignListsValid: the error message is the CLI's
// diagnostic; it must enumerate the catalog.
func TestUnknownCampaignListsValid(t *testing.T) {
	_, err := Get("chaos")
	if err == nil {
		t.Fatal("Get(chaos) succeeded")
	}
	for _, want := range Names() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing campaign %q", err, want)
		}
	}
}

// drawSequence exercises every fault type in a fixed interleaving and
// returns the final counters.
func drawSequence(p *Plan) Counters {
	w := sig.NewFactory(sig.KindBloom)()
	w.Add(100)
	for i := 0; i < 500; i++ {
		proc := i % 4
		p.ArbDeny(proc)
		p.ArbDelay(proc)
		p.NetDelay()
		p.SpuriousSquash(proc)
		p.AmplifyW(proc, w)
	}
	return p.Counters()
}

// TestCampaignDeterminism: the same (campaign, seed) pair injects the
// identical fault sequence — the counters after a long mixed draw
// sequence match exactly; a different seed diverges.
func TestCampaignDeterminism(t *testing.T) {
	for _, name := range Names() {
		if name == "none" {
			continue
		}
		c := MustGet(name)
		a := drawSequence(NewPlan(c, 42))
		b := drawSequence(NewPlan(c, 42))
		if a != b {
			t.Errorf("%s: same seed diverged: %+v vs %+v", name, a, b)
		}
		// Probabilistic campaigns must diverge across seeds; livelock's
		// probabilities are all 1.0, so its counters are seed-independent
		// by design.
		if name != "livelock" {
			d := drawSequence(NewPlan(c, 43))
			if a == d && a.Total() > 0 {
				t.Errorf("%s: different seeds produced identical non-trivial counters %+v", name, a)
			}
		}
		if a.Total() == 0 {
			t.Errorf("%s: campaign injected nothing over 500 draws", name)
		}
	}
}

// TestTargeting: the livelock campaign targets only procs 0 and 1;
// untargeted processors never see a processor-targeted fault.
func TestTargeting(t *testing.T) {
	p := NewPlan(MustGet("livelock"), 7)
	for i := 0; i < 100; i++ {
		if p.ArbDeny(2) || p.ArbDeny(63) {
			t.Fatal("livelock campaign denied an untargeted processor")
		}
		if p.SpuriousSquash(5) {
			t.Fatal("livelock campaign squashed an untargeted processor")
		}
	}
	if !p.ArbDeny(0) || !p.ArbDeny(1) {
		t.Error("livelock campaign (prob 1.0) failed to deny a targeted processor")
	}
	if !p.SpuriousSquash(0) {
		t.Error("livelock campaign (prob 1.0) failed to squash a targeted processor")
	}
}

// TestAmplifyW: phantom lines land in the signature and the counters;
// empty signatures are left alone.
func TestAmplifyW(t *testing.T) {
	c := MustGet("alias-amplify")
	c.AliasProb = 1.0 // make every call amplify for the test
	p := NewPlan(c, 9)

	empty := sig.NewFactory(sig.KindBloom)()
	p.AmplifyW(0, empty)
	if !empty.Empty() {
		t.Error("AmplifyW amplified an empty signature")
	}
	if got := p.Counters().AmplifiedChunks; got != 0 {
		t.Errorf("empty-signature amplification counted: %d", got)
	}

	w := sig.NewFactory(sig.KindBloom)()
	w.Add(mem.Line(100_000)) // far outside AliasSpace
	p.AmplifyW(0, w)
	n := p.Counters()
	if n.AmplifiedChunks != 1 || n.PhantomLines != uint64(c.AliasLines) {
		t.Errorf("counters after one amplification: %+v", n)
	}
	// At least one line of the phantom window must now test positive.
	hit := false
	for l := 0; l < c.AliasSpace; l++ {
		if w.MayContain(mem.Line(l)) {
			hit = true
			break
		}
	}
	if !hit {
		t.Error("no phantom line visible in the amplified signature")
	}
}

// TestCatalogInvariants: names are unique and non-empty, "none" is first
// and inactive, and every other campaign is active (injects something).
func TestCatalogInvariants(t *testing.T) {
	cat := Catalog()
	if cat[0].Name != "none" {
		t.Fatalf("catalog[0] = %q, want none", cat[0].Name)
	}
	seen := map[string]bool{}
	for i, c := range cat {
		if c.Name == "" || c.Desc == "" {
			t.Errorf("campaign %d missing name or description", i)
		}
		if seen[c.Name] {
			t.Errorf("duplicate campaign %q", c.Name)
		}
		seen[c.Name] = true
		if i == 0 {
			if c.active() {
				t.Error("none campaign is active")
			}
			continue
		}
		if !c.active() {
			t.Errorf("campaign %q injects nothing", c.Name)
		}
	}
}

// Package fault implements deterministic, seeded fault injection for the
// simulated BulkSC machine.
//
// BulkSC's claim is not only that committed executions are sequentially
// consistent — it is that the machine stays *live* while chunks are denied,
// squashed and retried under arbiter contention and signature aliasing
// (paper §3.3, §4.2). The happy-path sweeps barely exercise that machinery:
// squash rates are low, denial streaks are short, and the forward-progress
// escalations (chunk shrinking, pre-arbitration) almost never fire. This
// package adversarially provokes exactly those schedules.
//
// A fault Campaign is a named, composable schedule of perturbations:
//
//   - arbiter grant delays and denial storms (the arbiter says "no" or
//     takes its time, regardless of the W-list),
//   - extra network message latency (jitter on every hop),
//   - spurious bulk-disambiguation squashes (a BDM squashes on an incoming
//     W signature that did not actually conflict — the limit case of
//     signature aliasing),
//   - signature-aliasing amplification (phantom lines force-set Bloom bits
//     in a chunk's W signature, raising false-positive conflict rates at
//     the arbiter, the directory and every remote BDM).
//
// A Plan instantiates a Campaign with a dedicated seeded random source. All
// draws come from that source, never from the engine's RNG, so a campaign's
// fault schedule is a pure function of (campaign, fault seed, machine
// schedule): two runs with the same configuration and fault seed inject
// byte-identical fault sequences and produce identical squash/denial/retry
// counters. A nil *Plan is the universal "no faults" value — every query
// method is nil-receiver safe, returns the neutral element, and draws
// nothing, so zero-fault runs are bit-identical to a build without the
// subsystem (the golden determinism hashes pin this).
//
// Soundness: every injected fault lands on a path the machine must already
// tolerate — denials retry, squashes re-execute, delays reorder, and
// aliased bits only ever *add* conflicts. Faults can therefore never make
// an SC-violating execution commit; the replay checker and the SC-witness
// checker remain unconditional oracles under any campaign. What faults can
// break is liveness — which is precisely what the core watchdog
// (internal/core) exists to detect and diagnose.
package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// Campaign is a named, declarative fault schedule. The zero Campaign
// injects nothing. Probabilities are per-event (per arbiter decision, per
// network message, per incoming W signature, per closed chunk).
type Campaign struct {
	// Name identifies the campaign in CLIs, reports and test tables.
	Name string
	// Desc is a one-line description for catalogs.
	Desc string

	// TargetProcs restricts processor-targeted faults (denials, delays,
	// spurious squashes, aliasing) to the processors whose bit is set;
	// 0 targets every processor. Network jitter is not processor-targeted.
	TargetProcs uint64

	// DenyProb is the probability an arbiter decision is denied outright,
	// before the W-list is even consulted (a denial storm).
	DenyProb float64
	// DelayProb is the probability an arbiter decision is stretched by a
	// uniform 1..DelayMax extra cycles (a slow or contended arbiter).
	DelayProb float64
	// DelayMax bounds the injected arbiter decision delay, in cycles.
	DelayMax int

	// NetDelayProb is the probability a network message is delivered with
	// a uniform 1..NetDelayMax extra cycles of latency.
	NetDelayProb float64
	// NetDelayMax bounds the injected per-message latency, in cycles.
	NetDelayMax int

	// SpuriousSquashProb is the probability an incoming committing W
	// signature squashes a processor's oldest active chunk even though
	// bulk disambiguation found no conflict — modeled as pure aliasing
	// (the squash is counted as non-genuine).
	SpuriousSquashProb float64

	// AliasProb is the probability a closing chunk's W signature is
	// amplified with AliasLines phantom lines drawn from a small
	// AliasSpace-line window. Phantom lines force-set Bloom bits (and,
	// for exact signatures, phantom members), raising false-positive
	// conflict rates at the arbiter and false invalidations at caches
	// and directories. Phantoms never enter the chunk's exact write set,
	// so every conflict they cause is classified as aliased.
	AliasProb float64
	// AliasLines is how many phantom lines each amplification adds.
	AliasLines int
	// AliasSpace is the phantom address-space size in lines (default 512
	// when 0): small enough that amplified signatures collide with each
	// other and with real working sets at observable rates.
	AliasSpace int

	// Terminating marks campaigns under which every workload still makes
	// forward progress. Non-terminating campaigns (livelock) exist to
	// exercise the watchdog and are excluded from sweep-style reports.
	Terminating bool
}

func (c *Campaign) active() bool {
	return c.DenyProb > 0 || c.DelayProb > 0 || c.NetDelayProb > 0 ||
		c.SpuriousSquashProb > 0 || c.AliasProb > 0
}

// Catalog returns the built-in campaigns, in presentation order. The first
// entry is the neutral "none" campaign.
func Catalog() []Campaign {
	return []Campaign{
		{
			Name: "none", Desc: "no faults injected (bit-identical to a build without the subsystem)",
			Terminating: true,
		},
		{
			Name: "denial-storm", Desc: "arbiter denies ~35% of commit decisions and stretches ~20% of grants",
			DenyProb: 0.35, DelayProb: 0.20, DelayMax: 40,
			Terminating: true,
		},
		{
			Name: "alias-amplify", Desc: "half of all chunks get 6 phantom lines force-set into W (Bloom pollution)",
			AliasProb: 0.5, AliasLines: 6, AliasSpace: 512,
			Terminating: true,
		},
		{
			Name: "delay-jitter", Desc: "~30% of messages and arbiter decisions gain up to 24 cycles of latency",
			DelayProb: 0.30, DelayMax: 24, NetDelayProb: 0.30, NetDelayMax: 24,
			Terminating: true,
		},
		{
			Name: "squash-storm", Desc: "15% of incoming W signatures spuriously squash the oldest active chunk",
			SpuriousSquashProb: 0.15,
			Terminating:        true,
		},
		{
			Name: "livelock", Desc: "procs 0 and 1 are denied every commit and squashed by every remote W: a guaranteed livelock for watchdog tests",
			TargetProcs: 0b11, DenyProb: 1.0, SpuriousSquashProb: 1.0,
			Terminating: false,
		},
	}
}

// Names lists the catalog campaign names in presentation order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, c := range cat {
		out[i] = c.Name
	}
	return out
}

// Get returns the named catalog campaign. The empty string is "none".
func Get(name string) (Campaign, error) {
	if name == "" {
		name = "none"
	}
	for _, c := range Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	return Campaign{}, fmt.Errorf("fault: unknown campaign %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// MustGet is Get for static campaign names in tests and tables.
func MustGet(name string) Campaign {
	c, err := Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Counters tallies the faults a Plan actually injected. They are
// diagnostics: deliberately excluded from the determinism hash (which pins
// the *simulated machine's* behavior), but themselves deterministic for a
// fixed (config, campaign, fault seed).
type Counters struct {
	ArbDenials      uint64 // commit decisions denied by injection
	ArbDelays       uint64 // commit decisions stretched
	ArbDelayCycles  uint64 // total injected arbiter delay
	NetDelays       uint64 // messages delivered late
	NetDelayCycles  uint64 // total injected network delay
	SpuriousSquash  uint64 // squashes forced without a signature conflict
	AmplifiedChunks uint64 // W signatures amplified with phantom lines
	PhantomLines    uint64 // phantom lines force-set in total
}

// Total returns the number of injected fault events of any kind.
func (c Counters) Total() uint64 {
	return c.ArbDenials + c.ArbDelays + c.NetDelays + c.SpuriousSquash + c.AmplifiedChunks
}

// String renders the non-zero counters compactly.
func (c Counters) String() string {
	var b strings.Builder
	add := func(name string, v uint64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, v)
	}
	add("arbDeny", c.ArbDenials)
	add("arbDelay", c.ArbDelays)
	add("arbDelayCyc", c.ArbDelayCycles)
	add("netDelay", c.NetDelays)
	add("netDelayCyc", c.NetDelayCycles)
	add("spuriousSquash", c.SpuriousSquash)
	add("ampChunks", c.AmplifiedChunks)
	add("phantoms", c.PhantomLines)
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// Plan is one instantiated fault campaign: the campaign parameters plus a
// dedicated random source and injection counters. A Plan is stateful and
// belongs to exactly one run; the simulator is single-threaded, so a Plan
// needs no locking, but it must never be shared across concurrent runs.
//
// The nil *Plan is the canonical "no faults" value: every method on a nil
// receiver is a no-op returning the neutral element.
//
// A Plan observes decision points and answers from its own rng/counters;
// the one place it deliberately reaches back into machine state (AmplifyW)
// carries a justified //lint:observer exception — everything else must
// stay hash-neutral so the zero-rate campaigns stay bit-identical to no
// plan at all (TestZeroFaultBitIdentity).
//
//sim:observer
type Plan struct {
	c   Campaign
	rng *rand.Rand
	n   Counters
}

// NewPlan instantiates campaign c with its own random source seeded with
// seed. An inactive campaign (e.g. "none", or the zero Campaign) yields a
// nil Plan, keeping the zero-fault hot paths untouched.
func NewPlan(c Campaign, seed int64) *Plan {
	if !c.active() {
		return nil
	}
	if c.AliasSpace <= 0 {
		c.AliasSpace = 512
	}
	if c.DelayMax <= 0 {
		c.DelayMax = 1
	}
	if c.NetDelayMax <= 0 {
		c.NetDelayMax = 1
	}
	return &Plan{c: c, rng: rand.New(rand.NewSource(seed))}
}

// Campaign returns the plan's campaign (zero Campaign for a nil plan).
func (p *Plan) Campaign() Campaign {
	if p == nil {
		return Campaign{Name: "none", Terminating: true}
	}
	return p.c
}

// Counters returns the injection tallies so far (zero for a nil plan).
func (p *Plan) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	return p.n
}

// targets reports whether processor-targeted faults apply to proc.
func (p *Plan) targets(proc int) bool {
	return p.c.TargetProcs == 0 || (proc >= 0 && proc < 64 && p.c.TargetProcs&(1<<uint(proc)) != 0)
}

// ArbDeny reports whether the arbiter should deny proc's commit decision
// outright. Called once per decision.
func (p *Plan) ArbDeny(proc int) bool {
	if p == nil || p.c.DenyProb == 0 || !p.targets(proc) {
		return false
	}
	if p.rng.Float64() >= p.c.DenyProb {
		return false
	}
	p.n.ArbDenials++
	return true
}

// ArbDelay returns extra arbiter decision latency (cycles) for proc's
// request; 0 means no injection.
func (p *Plan) ArbDelay(proc int) uint64 {
	if p == nil || p.c.DelayProb == 0 || !p.targets(proc) {
		return 0
	}
	if p.rng.Float64() >= p.c.DelayProb {
		return 0
	}
	d := uint64(1 + p.rng.Intn(p.c.DelayMax))
	p.n.ArbDelays++
	p.n.ArbDelayCycles += d
	return d
}

// NetDelay returns extra delivery latency (cycles) for one network
// message; 0 means no injection.
func (p *Plan) NetDelay() uint64 {
	if p == nil || p.c.NetDelayProb == 0 {
		return 0
	}
	if p.rng.Float64() >= p.c.NetDelayProb {
		return 0
	}
	d := uint64(1 + p.rng.Intn(p.c.NetDelayMax))
	p.n.NetDelays++
	p.n.NetDelayCycles += d
	return d
}

// SpuriousSquash reports whether proc's BDM should squash its oldest
// active chunk on an incoming W signature that did not conflict. Callers
// must only ask when an active chunk exists, so the counter matches the
// squashes actually applied.
func (p *Plan) SpuriousSquash(proc int) bool {
	if p == nil || p.c.SpuriousSquashProb == 0 || !p.targets(proc) {
		return false
	}
	if p.rng.Float64() >= p.c.SpuriousSquashProb {
		return false
	}
	p.n.SpuriousSquash++
	return true
}

// AmplifyW possibly force-sets phantom lines into a closing chunk's W
// signature (Bloom-bit pollution; phantom members for exact signatures).
// Empty signatures are left alone: an empty W commits through the cheap
// permission-only path, and amplifying it would manufacture a chunk class
// the real hardware cannot produce. Phantoms are never added to the
// chunk's exact write set, so every conflict they cause is aliased by
// construction and the replay/witness oracles remain sound.
func (p *Plan) AmplifyW(proc int, w sig.Signature) {
	//lint:observer Empty is a read-only predicate on every Signature implementation; the interface call just cannot prove it
	if p == nil || p.c.AliasProb == 0 || !p.targets(proc) || w == nil || w.Empty() {
		return
	}
	if p.rng.Float64() >= p.c.AliasProb {
		return
	}
	for i := 0; i < p.c.AliasLines; i++ {
		//lint:observer fault injection IS the mutation: phantom W lines model Bloom aliasing, gated by AliasProb (zero-rate plans stay bit-identical, see TestZeroFaultBitIdentity)
		w.Add(mem.Line(p.rng.Intn(p.c.AliasSpace)))
	}
	p.n.AmplifiedChunks++
	p.n.PhantomLines += uint64(p.c.AliasLines)
}

package core

import (
	"testing"

	"bulksc/internal/sccheck"
)

// runWitnessed runs a small BulkSC system with both checkers on and the
// commit log retained.
func runWitnessed(t *testing.T, app string, seed int64) *Result {
	t.Helper()
	cfg := DefaultConfig(app)
	cfg.Work = 4000
	cfg.Seed = seed
	cfg.WarmupFrac = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	return res
}

// TestWitnessCleanOnRealRuns: the online witness checker agrees with the
// replay checker on real executions — every obligation holds, and the two
// checkers saw the same commits.
func TestWitnessCleanOnRealRuns(t *testing.T) {
	for _, app := range []string{"radix", "ocean", "sjbb2k"} {
		res := runWitnessed(t, app, 7)
		if len(res.SCViolations) > 0 {
			t.Fatalf("%s: replay: %s", app, res.SCViolations[0])
		}
		if len(res.WitnessViolations) > 0 {
			t.Fatalf("%s: witness: %s", app, res.WitnessViolations[0])
		}
		if res.WitnessChunks != res.ChunksChecked {
			t.Fatalf("%s: witness checked %d chunks, replay %d", app, res.WitnessChunks, res.ChunksChecked)
		}
		if res.WitnessChunks == 0 || res.WitnessAccesses == 0 {
			t.Fatalf("%s: witness checker saw nothing", app)
		}
	}
}

// TestWitnessDetectsMutatedRealRun is the end-to-end mutation gate: take a
// real execution's commit stream, seed an SC violation into it, and verify
// a fresh checker flags the replayed stream. A checker that cannot fail
// proves nothing.
func TestWitnessDetectsMutatedRealRun(t *testing.T) {
	res := runWitnessed(t, "radix", 11)
	if len(res.Commits) < 2 {
		t.Fatal("not enough commits to mutate")
	}

	replay := func() *sccheck.Checker {
		c := sccheck.New()
		for _, ch := range res.Commits {
			c.CommitChunk(ch)
		}
		return c
	}

	// Sanity: the unmutated stream is clean.
	if c := replay(); !c.Ok() {
		t.Fatalf("unmutated commit stream flagged: %v", c.Strings())
	}

	// Mutation 1: corrupt one committed load value (the footprint of a
	// broken-isolation bug).
	var mi, mj = -1, -1
	for i, ch := range res.Commits {
		for j, rec := range ch.Log {
			if !rec.IsStore {
				mi, mj = i, j
			}
		}
	}
	if mi < 0 {
		t.Fatal("no committed load found")
	}
	res.Commits[mi].Log[mj].Value ^= 0x5a5a
	if c := replay(); c.Ok() {
		t.Fatal("mutated load value not detected")
	}
	res.Commits[mi].Log[mj].Value ^= 0x5a5a // restore

	// Mutation 2: break the claimed serialization by swapping two commit
	// orders (the footprint of an arbiter ordering bug).
	a, b := res.Commits[0], res.Commits[len(res.Commits)/2]
	a.CommitOrder, b.CommitOrder = b.CommitOrder, a.CommitOrder
	c := replay()
	a.CommitOrder, b.CommitOrder = b.CommitOrder, a.CommitOrder // restore
	if c.Ok() {
		t.Fatal("swapped commit orders not detected")
	}
	found := false
	for _, v := range c.Violations() {
		if v.Kind == sccheck.KindTotalOrder {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a total-order violation, got %v", c.Strings())
	}
}

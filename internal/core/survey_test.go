package core

import "testing"

// TestSurveyAllApps is the cross-model regression survey: every
// application under every machine model, with loose assertions freezing
// the reproduction's headline shapes (Figure 9). If a change to the
// protocol, the timing model or a workload moves these outside their
// bands, this fails loudly.
func TestSurveyAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("survey")
	}
	apps := []string{"barnes", "cholesky", "fft", "fmm", "lu", "ocean",
		"radiosity", "radix", "raytrace", "water-ns", "water-sp", "sjbb2k", "sweb2005"}
	for _, app := range apps {
		var cycles [4]uint64
		for i, model := range []ModelKind{ModelSC, ModelRC, ModelSCpp, ModelBulk} {
			cfg := DefaultConfig(app)
			cfg.Model = model
			cfg.Work = 50000
			cfg.CheckSC = model == ModelBulk
			res, err := Run(cfg)
			if err != nil {
				t.Errorf("%s/%v: %v", app, model, err)
				continue
			}
			cycles[i] = res.Cycles
			if model != ModelBulk {
				continue
			}
			if len(res.SCViolations) > 0 {
				t.Errorf("%s: SC violated: %s", app, res.SCViolations[0])
			}
			s := res.Stats
			sc := float64(cycles[1]) / float64(cycles[0])
			scpp := float64(cycles[1]) / float64(cycles[2])
			bsc := float64(cycles[1]) / float64(cycles[3])
			t.Logf("%-10s SC=%.2f RC=1.00 SC++=%.2f BSC=%.2f | sq%%=%.2f emptyW=%.1f%% R=%.1f W=%.2f privW=%.1f chunks=%d",
				app, sc, scpp, bsc,
				s.SquashedPct(), s.EmptyWSigPct(), s.AvgReadSet(), s.AvgWriteSet(), s.AvgPrivWriteSet(), s.Chunks)

			// Shape bands (loose on purpose; they encode orderings, not
			// point values).
			if sc >= 0.90 {
				t.Errorf("%s: SC (%.2f of RC) implausibly fast — serialization lost", app, sc)
			}
			if scpp < 0.85 {
				t.Errorf("%s: SC++ (%.2f of RC) too slow — SHiQ model broken", app, scpp)
			}
			if bsc < 0.55 {
				t.Errorf("%s: BulkSC (%.2f of RC) far below the paper's shape", app, bsc)
			}
			if bsc <= sc {
				t.Errorf("%s: BulkSC (%.2f) not faster than SC (%.2f) — the paper's whole point", app, bsc, sc)
			}
			if s.Chunks == 0 {
				t.Errorf("%s: no chunks committed", app)
			}
		}
	}
}

// TestSurveyLowConflictAppsBarelySquash freezes the quiet end of Table 3:
// the almost-all-private applications must stay near zero squash under
// BSC_dypvt.
func TestSurveyLowConflictAppsBarelySquash(t *testing.T) {
	if testing.Short() {
		t.Skip("survey")
	}
	for _, app := range []string{"water-sp", "water-ns", "fmm"} {
		cfg := DefaultConfig(app)
		cfg.Work = 50000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Stats.SquashedPct(); got > 5 {
			t.Errorf("%s: squashed %.2f%%, want ≤5%% (near-private application)", app, got)
		}
		if res.Stats.AvgPrivWriteSet() < 5 {
			t.Errorf("%s: private write set %.1f implausibly small", app, res.Stats.AvgPrivWriteSet())
		}
	}
}

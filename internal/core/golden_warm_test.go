package core

import (
	"strings"
	"testing"

	"bulksc/internal/workload"
)

// The warm-reuse golden harness: the whole golden matrix is pushed
// back-to-back through ONE Runner — heterogeneous models, signature kinds,
// arbiter counts and private-data options in sequence on the same machine
// arena — and every hash must still match the cold golden table. This is
// the strongest statement of the warm-machine contract: if any subsystem's
// Reset forgot a tag array, a W-list entry, a store-buffer word or a grown
// table's shape, some cell downstream of the leak would drift.

func runGoldenWarm(t testing.TB, r *Runner, app, label string, mut func(c *Config)) uint64 {
	cfg := goldenConfig(app)
	mut(&cfg)
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", goldenKey(app, label), err)
	}
	if len(res.SCViolations) > 0 {
		t.Fatalf("%s: SC violations: %v", goldenKey(app, label), res.SCViolations)
	}
	if label != "rc" && label != "sc++" && len(res.WitnessViolations) > 0 {
		t.Fatalf("%s: witness violations: %v", goldenKey(app, label), res.WitnessViolations)
	}
	return res.DeterminismHash()
}

// TestGoldenWarmReuse runs every (app, model) golden cell through a single
// Runner, in an order chosen to maximize cross-run interference (model
// changes between consecutive runs for each app), and checks each hash
// against the cold golden table.
func TestGoldenWarmReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("warm golden sweep skipped in -short")
	}
	if len(goldenHashes) == 0 {
		t.Fatal("golden table empty; run -update-golden first")
	}
	r := NewRunner()
	models := goldenModels()
	for _, app := range workload.All() {
		for _, m := range models {
			k := goldenKey(app, m.Label)
			want, ok := goldenHashes[k]
			if !ok {
				t.Errorf("%s: no golden hash recorded; run -update-golden", k)
				continue
			}
			got := runGoldenWarm(t, r, app, m.Label, m.Mut)
			if got != want {
				t.Fatalf("warm-reuse drift at %s:\n  cold golden %#016x\n  warm        %#016x\n"+
					"a previous run's state leaked through a machine Reset", k, want, got)
			}
		}
	}
}

// TestGoldenWarmWitness runs every pinned witness cell through a single
// Runner and checks each WitnessHash against the cold witness table: the
// checker's own arenas (word map, overlay, per-proc program-order state)
// are reused across runs too, and a stale observation would change audit
// counts or findings.
func TestGoldenWarmWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("warm witness sweep skipped in -short")
	}
	if len(goldenWitnessHashes) == 0 {
		t.Fatal("witness golden table empty; run -update-golden-witness first")
	}
	r := NewRunner()
	for _, app := range witnessGoldenApps() {
		for _, m := range witnessGoldenModels() {
			for _, seed := range witnessGoldenSeeds() {
				k := witnessGoldenKey(app, m.Label, seed)
				want, ok := goldenWitnessHashes[k]
				if !ok {
					t.Errorf("%s: no witness golden hash recorded", k)
					continue
				}
				cfg := goldenConfig(app)
				cfg.Seed = seed
				m.Mut(&cfg)
				res, err := r.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", k, err)
				}
				if len(res.WitnessViolations) > 0 {
					t.Fatalf("%s: witness violations: %v", k, res.WitnessViolations)
				}
				if res.WitnessAccesses == 0 {
					t.Fatalf("%s: witness audited no accesses", k)
				}
				if strings.HasPrefix(m.Label, "bulk-") && res.WitnessChunks == 0 {
					t.Fatalf("%s: witness audited no chunks", k)
				}
				if got := res.WitnessHash(); got != want {
					t.Fatalf("warm witness drift at %s:\n  cold golden %#016x\n  warm        %#016x",
						k, want, got)
				}
			}
		}
	}
}

// TestRunnerResultIsolation guards the no-aliasing contract: a Result
// returned by a warm Runner must stay intact after the Runner is reused.
func TestRunnerResultIsolation(t *testing.T) {
	r := NewRunner()
	cfg := goldenConfig("radix")
	first, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := first.DeterminismHash()
	cycles, chunks := first.Cycles, first.Stats.Chunks
	ncommits := len(first.Commits)
	// Reuse the runner for a different app/model; the first Result must not
	// be disturbed.
	cfg2 := goldenConfig("fft")
	cfg2.Model = ModelSC
	if _, err := r.Run(cfg2); err != nil {
		t.Fatal(err)
	}
	if first.DeterminismHash() != h {
		t.Fatalf("reusing the Runner changed an already-returned Result's hash")
	}
	if first.Cycles != cycles || first.Stats.Chunks != chunks || len(first.Commits) != ncommits {
		t.Fatalf("reusing the Runner mutated an already-returned Result")
	}
	for i, ch := range first.Commits {
		if ch == nil {
			t.Fatalf("commit %d of the first Result was scrubbed by reuse", i)
		}
	}
}

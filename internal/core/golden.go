package core

import (
	"sort"
)

// DeterminismHash folds a run's observable outcome into one 64-bit value.
// It covers everything the paper's artifacts are computed from — final and
// per-processor cycle counts, chunk/squash/commit counters, traffic bytes,
// directory activity, replay-checker verdicts and, when the run collected
// them, the complete committed access logs in global commit order.
//
// The hash is the contract that gates performance work: any rewrite of the
// engine, the signatures, the chunk state or the directory must leave every
// seed-fixed run's hash bit-identical. Internal representation changes
// (pooling, open addressing, heap layout) do not appear in the hash;
// behavioral changes do.
func (r *Result) DeterminismHash() uint64 {
	h := newHasher()
	h.u64(r.Cycles)
	h.u64(uint64(len(r.PerProc)))
	for _, c := range r.PerProc {
		h.u64(c)
	}
	st := r.Stats
	h.u64(st.Chunks)
	h.u64(st.Squashes)
	h.u64(st.SquashesTrue)
	h.u64(st.SquashesAliased)
	h.u64(st.SquashCascades)
	h.u64(st.CommittedInstrs)
	h.u64(st.SquashedInstrs)
	h.u64(st.TotalTraffic())
	h.u64(st.CommitRequests)
	h.u64(st.CommitGrants)
	h.u64(st.CommitDenies)
	h.u64(st.EmptyWCommits)
	h.u64(st.RSigRequired)
	h.u64(st.DirCommits)
	h.u64(st.DirLookups)
	h.u64(st.DirUpdates)
	h.u64(st.L1Hits)
	h.u64(st.L1Misses)
	h.u64(st.L2Hits)
	h.u64(st.L2Misses)
	h.u64(st.CacheInvs)
	h.u64(st.ExtraCacheInvs)
	h.u64(st.Writebacks)
	h.u64(uint64(len(r.SCViolations)))
	h.u64(uint64(r.ChunksChecked))
	// Full committed access history, in global commit order. This is the
	// strongest part of the contract: every load value and store value of
	// every committed chunk must be reproduced exactly.
	if len(r.Commits) > 0 {
		sorted := make([]int, len(r.Commits))
		for i := range sorted {
			sorted[i] = i
		}
		sort.Slice(sorted, func(a, b int) bool {
			return r.Commits[sorted[a]].CommitOrder < r.Commits[sorted[b]].CommitOrder
		})
		for _, i := range sorted {
			ch := r.Commits[i]
			h.u64(uint64(ch.Proc))
			h.u64(ch.Seq)
			h.u64(ch.CommitOrder)
			h.u64(uint64(ch.Executed))
			for _, rec := range ch.Log {
				if rec.IsStore {
					h.u64(1)
				} else {
					h.u64(0)
				}
				h.u64(uint64(rec.Addr))
				h.u64(rec.Value)
			}
		}
	}
	return h.sum
}

// WitnessHash folds the online SC-witness checker's observations into one
// 64-bit value: how many chunks and accesses the checker audited, and the
// exact text of every violation it reported. It deliberately lives OUTSIDE
// DeterminismHash — the witness is diagnostic instrumentation layered on
// top of the simulated machine, and this hash pins that instrumentation
// separately, so a checker regression (dropped audits, reworded or lost
// findings) is caught even when the machine's own behavior is unchanged.
func (r *Result) WitnessHash() uint64 {
	h := newHasher()
	h.u64(uint64(r.WitnessChunks))
	h.u64(r.WitnessAccesses)
	h.u64(uint64(len(r.WitnessViolations)))
	for _, v := range r.WitnessViolations {
		h.str(v)
	}
	return h.sum
}

// hasher is FNV-1a over little-endian u64 words, inlined to avoid pulling
// hash/fnv + encoding/binary into the hot determinism check.
type hasher struct{ sum uint64 }

func newHasher() *hasher { return &hasher{sum: 14695981039346656037} }

func (h *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.sum ^= v & 0xff
		h.sum *= 1099511628211
		v >>= 8
	}
}

// str folds a string byte-by-byte, length-prefixed so that concatenation
// ambiguity between adjacent strings cannot produce hash collisions.
func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.sum ^= uint64(s[i])
		h.sum *= 1099511628211
	}
}

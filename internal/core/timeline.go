package core

import (
	"fmt"
	"sort"
	"strings"
)

// TimelineEventKind classifies execution-timeline events.
type TimelineEventKind int

const (
	// EvCommit is a chunk commit (at its arbiter-grant instant).
	EvCommit TimelineEventKind = iota
	// EvSquash is a squash (possibly taking several chunks).
	EvSquash
	// EvPreArb is a forward-progress pre-arbitration grant.
	EvPreArb
)

func (k TimelineEventKind) String() string {
	return [...]string{"commit", "squash", "prearb"}[k]
}

// TimelineEvent is one recorded event of a run.
type TimelineEvent struct {
	At      uint64
	Proc    int
	Kind    TimelineEventKind
	Order   uint64 // commit order (EvCommit)
	Instrs  int    // committed or discarded instructions
	Victims int    // chunks squashed together (EvSquash)
	Genuine bool   // squash cause: true sharing vs signature aliasing
}

// Timeline is a run's recorded event stream, in time order.
type Timeline []TimelineEvent

// Lanes renders an ASCII chart: one lane per processor, time bucketed into
// width columns; each cell shows the dominant event ('C' commits,
// 's' aliased squashes, 'S' genuine squashes, 'P' pre-arbitration,
// '.' idle).
func (tl Timeline) Lanes(procs int, width int) string {
	if len(tl) == 0 || width <= 0 {
		return "(empty timeline)\n"
	}
	end := tl[len(tl)-1].At + 1
	bucket := func(at uint64) int {
		b := int(at * uint64(width) / end)
		if b >= width {
			b = width - 1
		}
		return b
	}
	grid := make([][]byte, procs)
	for p := range grid {
		grid[p] = []byte(strings.Repeat(".", width))
	}
	rank := func(c byte) int {
		switch c {
		case 'P':
			return 4
		case 'S':
			return 3
		case 's':
			return 2
		case 'C':
			return 1
		}
		return 0
	}
	for _, ev := range tl {
		if ev.Proc < 0 || ev.Proc >= procs {
			continue
		}
		var c byte
		switch ev.Kind {
		case EvCommit:
			c = 'C'
		case EvSquash:
			c = 's'
			if ev.Genuine {
				c = 'S'
			}
		case EvPreArb:
			c = 'P'
		}
		b := bucket(ev.At)
		if rank(c) > rank(grid[ev.Proc][b]) {
			grid[ev.Proc][b] = c
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "timeline 0..%d cycles (C=commit, s=aliased squash, S=true squash, P=pre-arb)\n", end-1)
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&out, "p%-2d |%s|\n", p, grid[p])
	}
	return out.String()
}

// Summary aggregates the timeline into per-processor counts.
func (tl Timeline) Summary(procs int) string {
	type agg struct{ commits, squashes, prearbs, wasted int }
	per := make([]agg, procs)
	for _, ev := range tl {
		if ev.Proc < 0 || ev.Proc >= procs {
			continue
		}
		switch ev.Kind {
		case EvCommit:
			per[ev.Proc].commits++
		case EvSquash:
			per[ev.Proc].squashes++
			per[ev.Proc].wasted += ev.Instrs
		case EvPreArb:
			per[ev.Proc].prearbs++
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%-5s %9s %9s %9s %12s\n", "proc", "commits", "squashes", "prearbs", "wastedInstrs")
	for p, a := range per {
		fmt.Fprintf(&out, "p%-4d %9d %9d %9d %12d\n", p, a.commits, a.squashes, a.prearbs, a.wasted)
	}
	return out.String()
}

// sortTimeline orders events by time then processor (stable for rendering).
func sortTimeline(tl Timeline) {
	sort.SliceStable(tl, func(i, j int) bool {
		if tl[i].At != tl[j].At {
			return tl[i].At < tl[j].At
		}
		return tl[i].Proc < tl[j].Proc
	})
}

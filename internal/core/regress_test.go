package core

import "testing"

// TestRCBarrierCompletes is a regression test for a livelock where
// asynchronous completions re-entered the barrier's atomic block and
// double-incremented the arrival counter (fixed by the serialBusy guard).
func TestRCBarrierCompletes(t *testing.T) {
	cfg := DefaultConfig("fft")
	cfg.Model = ModelRC
	cfg.Work = 20000
	cfg.CheckSC = false
	cfg.MaxCycles = 50_000_000
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierHeavyAppsAllModels runs the most barrier-intensive kernels
// under every model; any arrival-counter or generation bug deadlocks.
func TestBarrierHeavyAppsAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, app := range []string{"lu", "ocean", "radix"} {
		for _, m := range []ModelKind{ModelSC, ModelRC, ModelSCpp, ModelBulk} {
			cfg := DefaultConfig(app)
			cfg.Model = m
			cfg.Work = 15000
			cfg.CheckSC = m == ModelBulk
			cfg.MaxCycles = 100_000_000
			res, err := Run(cfg)
			if err != nil {
				t.Errorf("%s/%v: %v", app, m, err)
				continue
			}
			if m == ModelBulk && len(res.SCViolations) > 0 {
				t.Errorf("%s: %s", app, res.SCViolations[0])
			}
		}
	}
}

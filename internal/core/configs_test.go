package core

import (
	"testing"

	"bulksc/internal/sig"
)

// bulkVariant builds the paper's four BulkSC configurations.
func bulkVariant(app, variant string, work int) Config {
	cfg := DefaultConfig(app)
	cfg.Work = work
	switch variant {
	case "base":
		cfg.Dypvt = false
	case "dypvt":
	case "stpvt":
		cfg.Dypvt = false
		cfg.Stpvt = true
	case "exact":
		cfg.SigKind = sig.KindExact
	default:
		panic("unknown variant " + variant)
	}
	return cfg
}

// TestBulkVariantsRunAndStaySC runs every BulkSC configuration of Table 2
// on a mixed set of applications; all must hold SC.
func TestBulkVariantsRunAndStaySC(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, app := range []string{"water-ns", "radix", "ocean", "sjbb2k"} {
		for _, variant := range []string{"base", "dypvt", "stpvt", "exact"} {
			res, err := Run(bulkVariant(app, variant, 30000))
			if err != nil {
				t.Errorf("%s/%s: %v", app, variant, err)
				continue
			}
			if len(res.SCViolations) > 0 {
				t.Errorf("%s/%s: %s", app, variant, res.SCViolations[0])
			}
			if res.ChunksChecked == 0 {
				t.Errorf("%s/%s: no chunks checked", app, variant)
			}
		}
	}
}

// TestBaseVsDypvt checks the headline §5.2 effect: removing private writes
// from W must shrink the average W set substantially and reduce squashes.
func TestBaseVsDypvt(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	base, err := Run(bulkVariant("water-ns", "base", 60000))
	if err != nil {
		t.Fatal(err)
	}
	dypvt, err := Run(bulkVariant("water-ns", "dypvt", 60000))
	if err != nil {
		t.Fatal(err)
	}
	wBase, wDy := base.Stats.AvgWriteSet(), dypvt.Stats.AvgWriteSet()
	if wDy >= wBase/2 {
		t.Errorf("dypvt W=%.1f not well below base W=%.1f", wDy, wBase)
	}
	if dypvt.Stats.AvgPrivWriteSet() < 5 {
		t.Errorf("dypvt PrivW=%.1f implausibly small", dypvt.Stats.AvgPrivWriteSet())
	}
	if base.Stats.AvgPrivWriteSet() != 0 {
		t.Errorf("base recorded private writes: %v", base.Stats.AvgPrivWriteSet())
	}
	if dypvt.Cycles > base.Cycles {
		t.Logf("note: dypvt (%d) not faster than base (%d) on this run", dypvt.Cycles, base.Cycles)
	}
	t.Logf("base: W=%.1f sq=%.2f%%; dypvt: W=%.1f priv=%.1f sq=%.2f%%",
		wBase, base.Stats.SquashedPct(), wDy, dypvt.Stats.AvgPrivWriteSet(), dypvt.Stats.SquashedPct())
}

// TestStpvtSkipsStackReads verifies §5.1: with stack pages statically
// private, R sets shrink and Wpriv propagation reaches the directory.
func TestStpvtSkipsStackReads(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	base, err := Run(bulkVariant("water-ns", "base", 40000))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(bulkVariant("water-ns", "stpvt", 40000))
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.AvgReadSet() >= base.Stats.AvgReadSet() {
		t.Errorf("stpvt R=%.1f not below base R=%.1f (stack reads should vanish)",
			st.Stats.AvgReadSet(), base.Stats.AvgReadSet())
	}
	if st.Stats.AvgPrivWriteSet() == 0 {
		t.Error("stpvt recorded no private writes")
	}
}

package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bulksc/internal/history"
	"bulksc/internal/history/gk"
	"bulksc/internal/workload"
)

// traceGolden runs one golden (app, model) cell with history export on and
// returns the Result plus the parsed history.
func traceGolden(t *testing.T, app string, mut func(c *Config)) (*Result, *history.History) {
	t.Helper()
	cfg := goldenConfig(app)
	mut(&cfg)
	var buf bytes.Buffer
	cfg.TraceWriter = &buf
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	h, err := history.Read(&buf)
	if err != nil {
		t.Fatalf("%s: exported history does not parse: %v", app, err)
	}
	return res, h
}

// TestOfflineDifferential drives every golden (app, model) cell through
// BOTH checkers: the online witness (riding inside the machine) and the
// offline gk checker (over the exported NDJSON history). The verdicts
// must agree exactly — same ok/violating decision, same examined chunk
// and access counts, and the same violation kind for every retained
// record (the caps are equal, so retention windows line up).
func TestOfflineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("offline differential sweep skipped in -short")
	}
	if gk.DefaultMaxViolations != 20 {
		t.Fatalf("gk cap %d; this test assumes online/offline caps match", gk.DefaultMaxViolations)
	}
	for _, app := range workload.All() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			for _, m := range goldenModels() {
				key := goldenKey(app, m.Label)
				res, h := traceGolden(t, app, m.Mut)
				r := gk.Check(h, gk.Options{})

				onlineOk := len(res.WitnessViolations) == 0
				if r.Ok() != onlineOk {
					t.Errorf("%s: offline ok=%v, online ok=%v (offline: %v, online: %v)",
						key, r.Ok(), onlineOk, r.Strings(), res.WitnessViolations)
					continue
				}
				if r.Chunks() != res.WitnessChunks || r.Accesses() != res.WitnessAccesses {
					t.Errorf("%s: offline examined %d chunks / %d accesses, online %d / %d",
						key, r.Chunks(), r.Accesses(), res.WitnessChunks, res.WitnessAccesses)
				}
				// Retained records must describe the same obligations in the
				// same order (online strings embed the kind as "[kind]").
				vs := r.Violations()
				online := res.WitnessViolations
				if len(online) > 0 && strings.Contains(online[len(online)-1], "cap reached") {
					online = online[:len(online)-1]
				}
				if len(vs) != len(online) {
					t.Errorf("%s: offline retained %d violations, online %d", key, len(vs), len(online))
					continue
				}
				for i, v := range vs {
					if !strings.Contains(online[i], "["+v.Kind.String()+"]") {
						t.Errorf("%s: violation %d: offline kind %s, online record %q",
							key, i, v.Kind, online[i])
					}
				}
			}
		})
	}
}

// TestTraceHashNeutral proves export is pure observation: the same config
// run with and without a TraceWriter produces bit-identical determinism
// and witness hashes, and the trace itself is non-trivial.
func TestTraceHashNeutral(t *testing.T) {
	for _, label := range []string{"bulk-dypvt", "sc", "rc"} {
		for _, m := range goldenModels() {
			if m.Label != label {
				continue
			}
			cfg := goldenConfig("radix")
			m.Mut(&cfg)
			plain, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			var buf bytes.Buffer
			cfg.TraceWriter = &buf
			traced, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s traced: %v", label, err)
			}
			if plain.DeterminismHash() != traced.DeterminismHash() {
				t.Errorf("%s: tracing changed the determinism hash: %#x vs %#x",
					label, plain.DeterminismHash(), traced.DeterminismHash())
			}
			if plain.WitnessHash() != traced.WitnessHash() {
				t.Errorf("%s: tracing changed the witness hash", label)
			}
			h, err := history.Read(&buf)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if h.Ops() == 0 {
				t.Errorf("%s: empty exported history", label)
			}
		}
	}
}

// TestMutatedTraceCaught corrupts an exported golden trace three ways —
// value corruption, swapped commit orders, broken atomicity — and
// asserts the offline checker catches each class. This is the end-to-end
// (simulator → NDJSON → checker) version of the gk unit mutation tests.
func TestMutatedTraceCaught(t *testing.T) {
	_, h := traceGolden(t, "radix", func(c *Config) { c.Model = ModelBulk; c.Dypvt = true })
	if r := gk.Check(h, gk.Options{}); !r.Ok() {
		t.Fatalf("pristine trace flagged: %v", r.Strings())
	}
	if len(h.Chunks) < 3 {
		t.Fatalf("trace too small to mutate: %d chunks", len(h.Chunks))
	}

	reparse := func(mut func(*history.History)) *gk.Report {
		// Round-trip the mutation through the serialized form so the test
		// covers reader and checker together. The Writer API takes live
		// chunks, so the mutated records are hand-encoded as NDJSON.
		_, fresh := traceGolden(t, "radix", func(c *Config) { c.Model = ModelBulk; c.Dypvt = true })
		mut(fresh)
		var buf bytes.Buffer
		enc := func(v any) {
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
		enc(fresh.Header)
		for i := range fresh.Chunks {
			enc(&fresh.Chunks[i])
		}
		h2, err := history.Read(&buf)
		if err != nil {
			t.Fatalf("mutated history does not parse: %v", err)
		}
		return gk.Check(h2, gk.Options{})
	}

	hasKind := func(r *gk.Report, k gk.Kind) bool {
		for _, v := range r.Violations() {
			if v.Kind == k {
				return true
			}
		}
		return false
	}

	// Value corruption → coherence (or atomicity, if the load re-read).
	r := reparse(func(h *history.History) {
		for ci := range h.Chunks {
			for oi, op := range h.Chunks[ci].Ops {
				if !op.Store {
					h.Chunks[ci].Ops[oi].Val = op.Val + 0xdead
					return
				}
			}
		}
		t.Fatal("no load to corrupt")
	})
	if r.Ok() || !(hasKind(r, gk.KindCoherence) || hasKind(r, gk.KindAtomicity) || hasKind(r, gk.KindForwarding)) {
		t.Fatalf("corrupted value not caught: %v", r.Strings())
	}

	// Swapped commit orders → total-order.
	r = reparse(func(h *history.History) {
		h.Chunks[0].Order, h.Chunks[1].Order = h.Chunks[1].Order, h.Chunks[0].Order
	})
	if r.Ok() || !hasKind(r, gk.KindTotalOrder) {
		t.Fatalf("swapped commit order not caught: %v", r.Strings())
	}

	// Broken atomicity: make a chunk observe two values for one word with
	// no intervening store, as if another commit interleaved mid-chunk.
	r = reparse(func(h *history.History) {
		for ci := range h.Chunks {
			ops := h.Chunks[ci].Ops
			for oi := range ops {
				if !ops[oi].Store {
					// Duplicate the load with a diverging value right after.
					dup := ops[oi]
					dup.Val++
					h.Chunks[ci].Ops = append(ops[:oi+1], append([]history.Op{dup}, ops[oi+1:]...)...)
					return
				}
			}
		}
		t.Fatal("no load to duplicate")
	})
	if r.Ok() || !hasKind(r, gk.KindAtomicity) {
		t.Fatalf("broken atomicity not caught: %v", r.Strings())
	}
}

// TestWarmResultViolationsNotScrubbed pins the aliased-Result satellite
// fix at the machine level: a warm Runner's next job must not mutate the
// witness findings (or anything else) of a Result the caller still holds
// from the previous job.
func TestWarmResultViolationsNotScrubbed(t *testing.T) {
	r := NewRunner()

	// Job 1: RC exhibits its store→load relaxation, so the witness
	// records genuine findings for the Result to retain.
	cfg1 := goldenConfig("radix")
	cfg1.Model = ModelRC
	res1, err := r.Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.WitnessViolations) == 0 {
		t.Skip("RC run produced no witness findings at this config; nothing to pin")
	}
	heldViolations := append([]string(nil), res1.WitnessViolations...)
	heldCycles := res1.Cycles
	heldInstrs := res1.Stats.CommittedInstrs
	heldTraffic := res1.Stats.TotalTraffic()

	// Job 2: a different model on the same warm machine, which resets the
	// checker (clearing its retention slice) and scrubs the stats arena.
	cfg2 := goldenConfig("fft")
	cfg2.Model = ModelBulk
	cfg2.Dypvt = true
	if _, err := r.Run(cfg2); err != nil {
		t.Fatal(err)
	}

	if res1.Cycles != heldCycles {
		t.Errorf("warm job 2 changed job 1's Cycles: %d vs %d", res1.Cycles, heldCycles)
	}
	if len(res1.WitnessViolations) != len(heldViolations) {
		t.Fatalf("warm job 2 changed job 1's violation count: %d vs %d",
			len(res1.WitnessViolations), len(heldViolations))
	}
	for i := range heldViolations {
		if res1.WitnessViolations[i] != heldViolations[i] {
			t.Errorf("warm job 2 scrubbed job 1's violation %d: %q vs %q",
				i, res1.WitnessViolations[i], heldViolations[i])
		}
	}
	if res1.Stats.CommittedInstrs != heldInstrs || res1.Stats.TotalTraffic() != heldTraffic {
		t.Error("warm job 2 mutated job 1's Stats")
	}
}

package core

import "testing"

// BenchmarkMachineReset measures the in-place machine reinitialization
// that warm reuse performs between runs (Runner.Run's per-run cost before
// any simulation work). The machine is first taken through a full golden
// run so every subsystem — caches, directories, arbiters, processor
// arenas, pools — holds realistic state; the loop then measures the
// steady-state Reset. allocs/op is the headline: the reset path must not
// allocate, or the warm-reuse win evaporates across a sweep.
func BenchmarkMachineReset(b *testing.B) {
	cfg := goldenConfig("radix")
	cfg.Witness = false
	cfg.CheckSC = false
	r := NewRunner()
	if _, err := r.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.m.Reset(cfg)
	}
}

// BenchmarkWarmRun measures one full warm simulation through a reused
// Runner — the unit of work a sweep worker repeats — for direct
// comparison with BenchmarkColdRun.
func BenchmarkWarmRun(b *testing.B) {
	cfg := goldenConfig("radix")
	cfg.Witness = false
	cfg.CheckSC = false
	r := NewRunner()
	if _, err := r.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdRun is BenchmarkWarmRun with a fresh machine per
// iteration: the pre-PR execution mode. The allocs/op and bytes/op ratio
// to BenchmarkWarmRun is the per-simulation arena cost that warm reuse
// amortizes away.
func BenchmarkColdRun(b *testing.B) {
	cfg := goldenConfig("radix")
	cfg.Witness = false
	cfg.CheckSC = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import "testing"

func TestSmokeBulk(t *testing.T) {
	cfg := DefaultConfig("fft")
	cfg.Work = 20000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fft bulk: %s", res.Stats)
	if len(res.SCViolations) > 0 {
		t.Fatalf("SC violations: %v", res.SCViolations[:min(3, len(res.SCViolations))])
	}
}

func TestSmokeBaselines(t *testing.T) {
	for _, model := range []ModelKind{ModelSC, ModelRC, ModelSCpp} {
		cfg := DefaultConfig("fft")
		cfg.Model = model
		cfg.Work = 20000
		cfg.CheckSC = false
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		t.Logf("fft %v: cycles=%d", model, res.Cycles)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package core

import (
	"strings"
	"testing"
)

func TestTimelineRecording(t *testing.T) {
	cfg := DefaultConfig("radiosity")
	cfg.Work = 15000
	cfg.RecordTimeline = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline events recorded")
	}
	commits, squashes := 0, 0
	var prev uint64
	for _, ev := range res.Timeline {
		if ev.At < prev {
			t.Fatal("timeline not time-ordered")
		}
		prev = ev.At
		switch ev.Kind {
		case EvCommit:
			commits++
			if ev.Order == 0 {
				t.Fatal("commit event without order")
			}
		case EvSquash:
			squashes++
			if ev.Victims == 0 {
				t.Fatal("squash event without victims")
			}
		}
	}
	if uint64(commits) != res.Stats.Chunks+ /* warmup-excluded */ 0 &&
		commits == 0 {
		t.Fatal("no commits recorded")
	}
	if uint64(squashes) == 0 && res.Stats.Squashes > 0 {
		t.Fatal("squashes in stats but none on timeline")
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig("water-sp")
	cfg.Work = 10000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 0 {
		t.Fatal("timeline recorded without RecordTimeline")
	}
}

func TestTimelineLanesRendering(t *testing.T) {
	tl := Timeline{
		{At: 10, Proc: 0, Kind: EvCommit, Order: 1, Instrs: 100},
		{At: 20, Proc: 1, Kind: EvSquash, Victims: 2, Instrs: 50, Genuine: true},
		{At: 30, Proc: 1, Kind: EvSquash, Victims: 1, Instrs: 20},
		{At: 40, Proc: 0, Kind: EvPreArb},
	}
	out := tl.Lanes(2, 50)
	if !strings.Contains(out, "p0 ") || !strings.Contains(out, "p1 ") {
		t.Fatalf("lanes missing processors:\n%s", out)
	}
	if !strings.Contains(out, "C") || !strings.Contains(out, "S") ||
		!strings.Contains(out, "s") || !strings.Contains(out, "P") {
		t.Fatalf("lanes missing event glyphs:\n%s", out)
	}
	sum := tl.Summary(2)
	if !strings.Contains(sum, "p0") || !strings.Contains(sum, "1") {
		t.Fatalf("summary malformed:\n%s", sum)
	}
	if Timeline(nil).Lanes(2, 50) == "" {
		t.Fatal("empty timeline must render a placeholder")
	}
}

func TestTimelineEventKindStrings(t *testing.T) {
	if EvCommit.String() != "commit" || EvSquash.String() != "squash" || EvPreArb.String() != "prearb" {
		t.Fatal("event kind strings wrong")
	}
}

package core

import "testing"

// TestSCAcrossSeeds runs the replay checker over every application and
// several seeds; any consistency hole in the protocol surfaces here.
func TestSCAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	apps := []string{"barnes", "cholesky", "fft", "fmm", "lu", "ocean", "radiosity", "radix", "raytrace", "water-ns", "water-sp", "sjbb2k", "sweb2005"}
	for _, app := range apps {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := DefaultConfig(app)
			cfg.Work = 30000
			cfg.Seed = seed
			res, err := Run(cfg)
			if err != nil {
				t.Errorf("%s seed=%d: %v", app, seed, err)
				continue
			}
			if len(res.SCViolations) > 0 {
				t.Errorf("%s seed=%d: %s", app, seed, res.SCViolations[0])
			}
		}
	}
}

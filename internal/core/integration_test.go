package core

import (
	"testing"

	"bulksc/internal/sig"
)

// TestDistributedArbiterHoldsSC runs BulkSC machines with 2/4/8
// arbiter+directory modules (§4.2.3) — including the G-arbiter's two-phase
// reserve/confirm path for multi-range commits — and checks SC.
func TestDistributedArbiterHoldsSC(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, app := range []string{"radix", "ocean", "sjbb2k"} {
		for _, n := range []int{2, 4, 8} {
			cfg := DefaultConfig(app)
			cfg.Work = 25000
			cfg.NumArbiters = n
			res, err := Run(cfg)
			if err != nil {
				t.Errorf("%s/%d-arb: %v", app, n, err)
				continue
			}
			if len(res.SCViolations) > 0 {
				t.Errorf("%s/%d-arb: %s", app, n, res.SCViolations[0])
			}
			if len(res.WitnessViolations) > 0 {
				t.Errorf("%s/%d-arb: witness: %s", app, n, res.WitnessViolations[0])
			}
			if res.Stats.GArbTransactions == 0 {
				t.Errorf("%s/%d-arb: G-arbiter never used (multi-range commits expected)", app, n)
			}
		}
	}
}

// TestDirectoryCacheHoldsSC runs with a capacity-limited directory cache
// (§4.3.3), whose displacements perform bulk disambiguation at the caches.
func TestDirectoryCacheHoldsSC(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, app := range []string{"water-ns", "radix"} {
		cfg := DefaultConfig(app)
		cfg.Work = 25000
		cfg.DirCacheEntries = 2048
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if len(res.SCViolations) > 0 {
			t.Fatalf("%s: %s", app, res.SCViolations[0])
		}
		if len(res.WitnessViolations) > 0 {
			t.Fatalf("%s: witness: %s", app, res.WitnessViolations[0])
		}
		if res.Stats.DirCacheEvicts == 0 {
			t.Errorf("%s: directory cache never displaced (footprint should exceed 2048 lines)", app)
		}
	}
}

// TestScaleProcessorCounts runs BulkSC at 2, 4, 16 and 32 cores.
func TestScaleProcessorCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var prev uint64
	for _, procs := range []int{2, 4, 16, 32} {
		cfg := DefaultConfig("ocean")
		cfg.Procs = procs
		cfg.Work = 15000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%d procs: %v", procs, err)
		}
		if len(res.SCViolations) > 0 {
			t.Fatalf("%d procs: %s", procs, res.SCViolations[0])
		}
		if len(res.WitnessViolations) > 0 {
			t.Fatalf("%d procs: witness: %s", procs, res.WitnessViolations[0])
		}
		if len(res.PerProc) != procs {
			t.Fatalf("%d procs: %d completion records", procs, len(res.PerProc))
		}
		_ = prev
		prev = res.Cycles
	}
}

// TestChunkSizeAndDepthMatrix exercises chunk sizes from tiny to huge and
// 1-4 chunks in flight; SC must hold everywhere.
func TestChunkSizeAndDepthMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, size := range []int{64, 500, 4000} {
		for _, depth := range []int{1, 2, 4} {
			cfg := DefaultConfig("radiosity")
			cfg.Work = 20000
			cfg.ChunkSize = size
			cfg.MaxChunks = depth
			res, err := Run(cfg)
			if err != nil {
				t.Errorf("size=%d depth=%d: %v", size, depth, err)
				continue
			}
			if len(res.SCViolations) > 0 {
				t.Errorf("size=%d depth=%d: %s", size, depth, res.SCViolations[0])
			}
			if len(res.WitnessViolations) > 0 {
				t.Errorf("size=%d depth=%d: witness: %s", size, depth, res.WitnessViolations[0])
			}
		}
	}
}

// TestExactSignatureNeverAliases: with exact signatures every squash must
// be classified genuine.
func TestExactSignatureNeverAliases(t *testing.T) {
	cfg := DefaultConfig("radix")
	cfg.Work = 25000
	cfg.SigKind = sig.KindExact
	cfg.WarmupFrac = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SquashesAliased != 0 {
		t.Fatalf("exact signatures produced %d aliased squashes", res.Stats.SquashesAliased)
	}
	if res.Stats.ExtraCacheInvs != 0 {
		t.Fatalf("exact signatures produced %d extra invalidations", res.Stats.ExtraCacheInvs)
	}
	if res.Stats.DirUnnecessary != 0 {
		// With exact signatures, candidate buckets still contain bucket
		// mates, but none should be membership-examined... lookups count
		// bucket entries, so unnecessary lookups are expected; only
		// unnecessary *updates* must vanish.
		t.Logf("note: %d unnecessary bucket lookups (expected with set-decode)", res.Stats.DirUnnecessary)
	}
	if res.Stats.DirBadUpdates != 0 {
		t.Fatalf("exact signatures produced %d aliased directory updates", res.Stats.DirBadUpdates)
	}
}

// TestDeterminism: identical configurations produce identical results.
func TestDeterminism(t *testing.T) {
	run := func() (*Result, error) {
		cfg := DefaultConfig("sjbb2k")
		cfg.Work = 15000
		return Run(cfg)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ across identical runs: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Stats.Chunks != b.Stats.Chunks || a.Stats.Squashes != b.Stats.Squashes {
		t.Fatal("chunk statistics differ across identical runs")
	}
	if a.Stats.TotalTraffic() != b.Stats.TotalTraffic() {
		t.Fatal("traffic differs across identical runs")
	}
}

// TestSeedChangesExecution: different seeds must actually change timing.
func TestSeedChangesExecution(t *testing.T) {
	cycles := map[uint64]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := DefaultConfig("sjbb2k")
		cfg.Work = 15000
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cycles[res.Cycles] = true
	}
	if len(cycles) < 2 {
		t.Fatal("three seeds produced identical cycle counts; seeding is inert")
	}
}

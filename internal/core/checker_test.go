package core

import (
	"strings"
	"testing"

	"bulksc/internal/chunk"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// The replay checker is the correctness oracle for the whole repository,
// so it gets its own adversarial tests: hand-built commit logs with known
// violations must be flagged, and known-good ones must pass.

func mkLoggedChunk(proc int, seq, order uint64, ops ...chunk.AccessRec) *chunk.Chunk {
	c := chunk.New(sig.NewFactory(sig.KindExact), nil, proc, seq, 0, 0, 1000)
	c.CommitOrder = order
	c.Log = append(c.Log, ops...)
	return c
}

func chunkLoad(addr, val uint64) chunk.AccessRec {
	return chunk.AccessRec{Addr: mem.Addr(addr), Value: val}
}

func chunkStore(addr, val uint64) chunk.AccessRec {
	return chunk.AccessRec{IsStore: true, Addr: mem.Addr(addr), Value: val}
}

func TestCheckerAcceptsSequentialHistory(t *testing.T) {
	commits := []*chunk.Chunk{
		mkLoggedChunk(0, 1, 1, chunkStore(0x1000, 7)),
		mkLoggedChunk(1, 1, 2, chunkLoad(0x1000, 7), chunkStore(0x1000, 9)),
		mkLoggedChunk(0, 2, 3, chunkLoad(0x1000, 9)),
	}
	if bad := verifySC(commits); len(bad) != 0 {
		t.Fatalf("valid history flagged: %v", bad)
	}
}

func TestCheckerCatchesStaleRead(t *testing.T) {
	commits := []*chunk.Chunk{
		mkLoggedChunk(0, 1, 1, chunkStore(0x1000, 7)),
		mkLoggedChunk(1, 1, 2, chunkLoad(0x1000, 0)), // stale: replay has 7
	}
	bad := verifySC(commits)
	if len(bad) == 0 {
		t.Fatal("stale read not flagged")
	}
	if !strings.Contains(bad[0], "observed 0") {
		t.Fatalf("unexpected finding: %s", bad[0])
	}
}

func TestCheckerCatchesFutureRead(t *testing.T) {
	commits := []*chunk.Chunk{
		mkLoggedChunk(0, 1, 1, chunkLoad(0x1000, 7)), // reads a value written later
		mkLoggedChunk(1, 1, 2, chunkStore(0x1000, 7)),
	}
	if bad := verifySC(commits); len(bad) == 0 {
		t.Fatal("too-new read not flagged")
	}
}

func TestCheckerCatchesBrokenAtomicity(t *testing.T) {
	// Chunk at order 2 observes x before y of the order-1 chunk's writes —
	// impossible if order-1 was atomic.
	commits := []*chunk.Chunk{
		mkLoggedChunk(0, 1, 1, chunkStore(0x1000, 1), chunkStore(0x2000, 1)),
		mkLoggedChunk(1, 1, 2, chunkLoad(0x1000, 1), chunkLoad(0x2000, 0)),
	}
	if bad := verifySC(commits); len(bad) == 0 {
		t.Fatal("broken chunk atomicity not flagged")
	}
}

func TestCheckerRespectsIntraChunkOrder(t *testing.T) {
	// A load after a store to the same address within one chunk must see
	// the chunk's own value.
	commits := []*chunk.Chunk{
		mkLoggedChunk(0, 1, 1, chunkStore(0x1000, 5), chunkLoad(0x1000, 5)),
	}
	if bad := verifySC(commits); len(bad) != 0 {
		t.Fatalf("own-store forwarding flagged: %v", bad)
	}
	commits[0].Log[1].Value = 0 // claims it saw the old value
	if bad := verifySC(commits); len(bad) == 0 {
		t.Fatal("violated own-store order not flagged")
	}
}

func TestCheckerWordGranularity(t *testing.T) {
	// Writes to different words of one line must not interfere.
	commits := []*chunk.Chunk{
		mkLoggedChunk(0, 1, 1, chunkStore(0x1000, 1), chunkStore(0x1008, 2)),
		mkLoggedChunk(1, 1, 2, chunkLoad(0x1000, 1), chunkLoad(0x1008, 2)),
	}
	if bad := verifySC(commits); len(bad) != 0 {
		t.Fatalf("word-granular history flagged: %v", bad)
	}
}

func TestCheckerOrderIndependentInput(t *testing.T) {
	// The checker sorts by CommitOrder; feeding commits out of order must
	// not change the verdict.
	a := mkLoggedChunk(0, 1, 2, chunkLoad(0x1000, 7))
	b := mkLoggedChunk(1, 1, 1, chunkStore(0x1000, 7))
	if bad := verifySC([]*chunk.Chunk{a, b}); len(bad) != 0 {
		t.Fatalf("out-of-order input flagged: %v", bad)
	}
}

func TestCheckerTruncatesFindings(t *testing.T) {
	var commits []*chunk.Chunk
	for i := uint64(0); i < 50; i++ {
		commits = append(commits, mkLoggedChunk(0, i+1, i+1, chunkLoad(0x1000, 99)))
	}
	bad := verifySC(commits)
	if len(bad) == 0 || len(bad) > 20 {
		t.Fatalf("finding cap broken: %d findings", len(bad))
	}
}

package core

import (
	"strings"
	"testing"

	"bulksc/internal/workload"
)

// TestProcsMismatchIsError is the regression test for the silent-resize
// bug: RunProgram used to overwrite cfg.Procs with the program's thread
// count, letting sweep configs lie about machine size. A mismatch must now
// be an explicit error naming both counts.
func TestProcsMismatchIsError(t *testing.T) {
	prog := workload.StoreBuffering(0) // 2 threads
	cfg := DefaultConfig("")
	cfg.App = ""
	cfg.Work = 0
	cfg.Procs = 8
	_, err := RunProgram(cfg, prog)
	if err == nil {
		t.Fatal("8-proc config with a 2-thread program did not error")
	}
	if !strings.Contains(err.Error(), "8 processors") || !strings.Contains(err.Error(), "2 threads") {
		t.Fatalf("mismatch error does not name both counts: %v", err)
	}
}

// TestProcsInferredWhenZero: Procs = 0 sizes the machine to the program,
// the sanctioned way to run litmus programs without repeating their thread
// counts.
func TestProcsInferredWhenZero(t *testing.T) {
	prog := workload.StoreBuffering(0)
	cfg := DefaultConfig("")
	cfg.App = ""
	cfg.Work = 0
	cfg.Procs = 0
	res, err := RunProgram(cfg, prog)
	if err != nil {
		t.Fatalf("inferred run failed: %v", err)
	}
	if len(res.PerProc) != len(prog.Threads) {
		t.Fatalf("machine sized to %d procs, want %d", len(res.PerProc), len(prog.Threads))
	}
}

// TestProcsBounds pins the machine-size envelope: MaxProcs runs are
// accepted, anything above is rejected.
func TestProcsBounds(t *testing.T) {
	over := workload.Build("over", MaxProcs+1, 1, func(b *workload.Builder) {
		b.Compute(1)
	})
	cfg := DefaultConfig("")
	cfg.App = ""
	cfg.Work = 0
	cfg.Procs = 0
	cfg.Watchdog = false
	if _, err := RunProgram(cfg, over); err == nil {
		t.Fatalf("%d-proc program accepted, want error", MaxProcs+1)
	}
}

// TestBigMachineRadixSmoke runs BulkSC at 256 processors — four times the
// old 64-proc ceiling — with the scaled arbiter tier and sharded
// G-arbiter, and checks SC end to end. The sparse sharer sets make the
// directory footprint O(actual sharers), so this must complete quickly at
// small per-thread work.
func TestBigMachineRadixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	const procs = 256
	cfg := DefaultConfig("radix")
	cfg.Procs = procs
	cfg.Work = 800
	cfg.NumArbiters = DefaultArbitersFor(procs)
	cfg.GArbShards = DefaultGArbShardsFor(cfg.NumArbiters)
	cfg.WarmupFrac = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("256-proc radix: %v", err)
	}
	if len(res.SCViolations) > 0 {
		t.Fatalf("256-proc radix: %s", res.SCViolations[0])
	}
	if len(res.WitnessViolations) > 0 {
		t.Fatalf("256-proc radix: witness: %s", res.WitnessViolations[0])
	}
	if len(res.PerProc) != procs {
		t.Fatalf("%d completion records, want %d", len(res.PerProc), procs)
	}
	if res.Stats.GArbTransactions == 0 {
		t.Error("256-proc radix: G-arbiter never used (multi-range commits expected)")
	}
}

// TestDefaultScalingHelpers pins the machine-shape policy the scaling
// experiments use.
func TestDefaultScalingHelpers(t *testing.T) {
	cases := []struct{ procs, arbs, shards int }{
		{8, 1, 1}, {16, 2, 1}, {64, 8, 2}, {256, 32, 8}, {1024, 64, 16},
	}
	for _, c := range cases {
		if got := DefaultArbitersFor(c.procs); got != c.arbs {
			t.Errorf("DefaultArbitersFor(%d) = %d, want %d", c.procs, got, c.arbs)
		}
		if got := DefaultGArbShardsFor(c.arbs); got != c.shards {
			t.Errorf("DefaultGArbShardsFor(%d) = %d, want %d", c.arbs, got, c.shards)
		}
	}
}

package core

import (
	"errors"
	"strings"
	"testing"

	"bulksc/internal/fault"
)

// faultedConfig is a small BSC_dypvt config for fault-injection tests.
func faultedConfig(app string, campaign string, faultSeed int64) Config {
	cfg := DefaultConfig(app)
	cfg.Procs = 4
	cfg.Work = 3000
	cfg.Seed = 3
	cfg.WarmupFrac = 0
	cfg.Faults = fault.NewPlan(fault.MustGet(campaign), faultSeed)
	return cfg
}

// TestWatchdogCatchesLivelock is the satellite contract: a synthetic
// livelock campaign that permanently starves two processors must be
// caught by the watchdog within the configured window, and the failure
// diagnostic must name both processors.
func TestWatchdogCatchesLivelock(t *testing.T) {
	cfg := faultedConfig("radix", "livelock", 1)
	cfg.CheckSC = false
	cfg.Witness = false
	cfg.Watchdog = true
	cfg.WatchdogWindow = 40_000
	cfg.MaxCycles = 100_000_000 // the watchdog, not the cycle limit, must end this

	_, err := Run(cfg)
	if err == nil {
		t.Fatal("livelocked run completed without a watchdog error")
	}
	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("error is not a WatchdogError: %v", err)
	}
	if werr.Cycle > 10*cfg.WatchdogWindow {
		t.Errorf("watchdog took %d cycles to fire (window %d)", werr.Cycle, cfg.WatchdogWindow)
	}
	// The diagnostic must name both starved processors, whether the
	// starvation detector listed them or the global-stall diagnostic
	// implicates them.
	if werr.Kind == "starvation" {
		found := map[int]bool{}
		for _, p := range werr.Procs {
			found[p] = true
		}
		if !found[0] || !found[1] {
			t.Errorf("starvation verdict missing a livelocked processor: procs=%v", werr.Procs)
		}
		for _, want := range []string{"proc 0", "proc 1", "denied["} {
			if !strings.Contains(werr.Diag, want) {
				t.Errorf("diagnostic missing %q:\n%s", want, werr.Diag)
			}
		}
	}
	if !strings.Contains(err.Error(), "liveness watchdog") {
		t.Errorf("error does not identify the watchdog: %v", err)
	}
}

// TestWatchdogSilentOnHealthyRuns: with no faults, the watchdog must
// never fire — even with an aggressive window — and its read-only polls
// must not perturb the simulated execution (the determinism hash matches
// a watchdog-free run exactly).
func TestWatchdogSilentOnHealthyRuns(t *testing.T) {
	base := DefaultConfig("radix")
	base.Procs = 4
	base.Work = 3000
	base.Seed = 3
	base.WarmupFrac = 0

	off := base
	off.Watchdog = false
	resOff, err := Run(off)
	if err != nil {
		t.Fatalf("watchdog-off run failed: %v", err)
	}

	on := base
	on.Watchdog = true
	on.WatchdogWindow = 50_000
	resOn, err := Run(on)
	if err != nil {
		t.Fatalf("watchdog fired on a healthy run: %v", err)
	}
	if hOn, hOff := resOn.DeterminismHash(), resOff.DeterminismHash(); hOn != hOff {
		t.Errorf("watchdog polls perturbed the execution: hash %#x vs %#x", hOn, hOff)
	}
}

// TestFaultCampaignDeterminism is the reproducibility contract: the same
// (config, campaign, fault seed) triple produces the identical injected
// schedule — equal fault counters AND an equal determinism hash — while a
// different fault seed diverges.
func TestFaultCampaignDeterminism(t *testing.T) {
	for _, campaign := range []string{"denial-storm", "alias-amplify", "delay-jitter", "squash-storm"} {
		campaign := campaign
		t.Run(campaign, func(t *testing.T) {
			run := func(seed int64) *Result {
				cfg := faultedConfig("fft", campaign, seed)
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				return res
			}
			a, b := run(11), run(11)
			if a.FaultCounters != b.FaultCounters {
				t.Errorf("same fault seed diverged: %+v vs %+v", a.FaultCounters, b.FaultCounters)
			}
			if ha, hb := a.DeterminismHash(), b.DeterminismHash(); ha != hb {
				t.Errorf("same fault seed diverged in determinism hash: %#x vs %#x", ha, hb)
			}
			if a.FaultCounters.Total() == 0 {
				t.Errorf("campaign injected nothing: %+v", a.FaultCounters)
			}
			c := run(12)
			if a.FaultCounters == c.FaultCounters && a.DeterminismHash() == c.DeterminismHash() {
				t.Errorf("different fault seeds produced an identical run")
			}
		})
	}
}

// TestFaultSoundness: every terminating campaign must leave correctness
// intact — the replay checker and the SC-witness checker stay clean, only
// cycles and recovery counters may move. This is the oracle-validity
// argument of internal/fault's package comment, executed.
func TestFaultSoundness(t *testing.T) {
	for _, c := range fault.Catalog() {
		if !c.Terminating || c.Name == "none" {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			cfg := faultedConfig("ocean", c.Name, 5)
			// Enough work that even the rarest fault type (spurious
			// squashes need an incoming W to coincide with a live chunk)
			// fires at least once.
			cfg.Work = 12_000
			cfg.CheckSC = true
			cfg.Witness = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if len(res.SCViolations) > 0 {
				t.Errorf("SC violated under %s: %s", c.Name, res.SCViolations[0])
			}
			if len(res.WitnessViolations) > 0 {
				t.Errorf("witness violated under %s: %s", c.Name, res.WitnessViolations[0])
			}
			if res.FaultCounters.Total() == 0 {
				t.Errorf("campaign %s injected nothing", c.Name)
			}
		})
	}
}

// TestZeroFaultBitIdentity: a config with a nil fault plan must be
// bit-identical to one that never heard of the fault subsystem. (The 104
// golden hashes in golden_hashes_test.go pin the same property across the
// full app × model matrix; this is the fast, targeted version.)
func TestZeroFaultBitIdentity(t *testing.T) {
	cfg := DefaultConfig("lu")
	cfg.Procs = 4
	cfg.Work = 3000
	cfg.Seed = 3
	cfg.WarmupFrac = 0
	cfg.Faults = nil

	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.NewPlan(fault.MustGet("none"), 99) // nil plan
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := a.DeterminismHash(), b.DeterminismHash(); ha != hb {
		t.Errorf("nil fault plan changed the execution: %#x vs %#x", ha, hb)
	}
	if b.FaultCounters != (fault.Counters{}) {
		t.Errorf("nil plan reported injections: %+v", b.FaultCounters)
	}
}

package core

import (
	"fmt"
	"strings"

	"bulksc/internal/sim"
)

// DefaultWatchdogWindow is the no-progress window (in cycles) before the
// liveness watchdog declares a livelock. It is enormous compared to every
// latency in the machine (the commit round trip is ~30 cycles), so it can
// never fire on a fault-free run that is merely slow.
const DefaultWatchdogWindow = 400_000

// starvationMinEvents is the minimum number of new denials+squashes a
// processor must accumulate inside a no-commit window before the watchdog
// calls it starved. A processor that is merely waiting (e.g. spinning on a
// barrier while committing empty spin chunks, or stalled on a long memory
// chain) generates no such events and is left alone; only an active
// deny/squash/retry loop trips the detector.
const starvationMinEvents = 16

// WatchdogError reports a liveness failure detected by the watchdog.
type WatchdogError struct {
	// Cycle is the engine time at which the stall was declared.
	Cycle uint64
	// Kind is "global-stall" (no commit progress machine-wide) or
	// "starvation" (specific processors stuck in a deny/squash loop).
	Kind string
	// Procs lists the starved processors (empty for a global stall).
	Procs []int
	// Diag is a human-readable diagnostic: recent denied chunks and
	// squash chains per starved processor plus arbiter occupancy.
	Diag string
}

func (e *WatchdogError) Error() string {
	if len(e.Procs) > 0 {
		return fmt.Sprintf("liveness watchdog: %s of procs %v at cycle %d: %s", e.Kind, e.Procs, e.Cycle, e.Diag)
	}
	return fmt.Sprintf("liveness watchdog: %s at cycle %d: %s", e.Kind, e.Cycle, e.Diag)
}

// watchdog polls the machine for commit progress. All observations are
// read-only: the polls add events to the engine but never mutate simulated
// state, and the engine orders equal-time events by insertion sequence, so
// the relative order of all other events — and therefore the simulated
// execution and its determinism hash — is unchanged. The hashneutral lint
// pass holds the polls to that contract (startWatchdog is wiring, not
// observation, and stays unannotated).
//
//sim:observer
type watchdog struct {
	//sim:observes
	m      *machine
	window uint64

	// Global no-progress detector.
	lastProgress uint64
	lastChange   uint64 // cycle at which progress last advanced

	// Per-processor starvation detector (BulkSC processors only).
	commitsAt []uint64 // commit count at window start
	eventsAt  []uint64 // denials+squashes at window start
	startAt   []uint64 // cycle of window start
}

// startWatchdog attaches a watchdog to m and schedules its first poll.
// The three per-proc trail arrays are carved out of the machine's
// wdScratch so a warm runner (and a big machine) does not reallocate them
// every run; full slice expressions keep the sub-slices from growing into
// each other.
func startWatchdog(m *machine, window uint64) {
	if window == 0 {
		window = DefaultWatchdogWindow
	}
	n := len(m.bulkProcs)
	if cap(m.wdScratch) < 3*n {
		m.wdScratch = make([]uint64, 3*n)
	}
	buf := m.wdScratch[:3*n]
	clear(buf)
	m.wdScratch = buf
	w := &watchdog{
		m:         m,
		window:    window,
		commitsAt: buf[0*n : 1*n : 1*n],
		eventsAt:  buf[1*n : 2*n : 2*n],
		startAt:   buf[2*n : 3*n : 3*n],
	}
	interval := window / 4
	if interval == 0 {
		interval = 1
	}
	var poll func()
	poll = func() {
		if m.watchdogErr != nil || m.allDone() {
			return
		}
		w.check(uint64(m.eng.Now()))
		if m.watchdogErr == nil {
			m.eng.After(sim.Time(interval), poll)
		}
	}
	m.eng.After(sim.Time(interval), poll)
}

// check runs both detectors at cycle now.
func (w *watchdog) check(now uint64) {
	m := w.m
	// Global detector: total committed work across all models. Chunks
	// covers BulkSC commit progress; CommittedInstrs covers both BulkSC
	// and the conventional processors' retirement.
	progress := m.st.Chunks + m.st.CommittedInstrs
	if progress != w.lastProgress {
		w.lastProgress = progress
		w.lastChange = now
	} else if now-w.lastChange >= w.window {
		//lint:observer verdict delivery: the store halts the run (Run's stop predicate); unreachable on any healthy execution, so goldens never see it
		m.watchdogErr = &WatchdogError{
			Cycle: now,
			Kind:  "global-stall",
			Diag: fmt.Sprintf("no commit progress for %d cycles (chunks=%d instrs=%d); %s",
				now-w.lastChange, m.st.Chunks, m.st.CommittedInstrs, w.arbiterDiag()),
		}
		return
	}

	// Per-processor detector: a BulkSC processor that commits nothing for
	// a full window while racking up denials and squashes is starved.
	var starved []int
	var diag strings.Builder
	for i, p := range m.bulkProcs {
		commits, denials, squashes := p.Progress()
		events := denials + squashes
		if commits != w.commitsAt[i] || p.Finished() {
			w.commitsAt[i] = commits
			w.eventsAt[i] = events
			w.startAt[i] = now
			continue
		}
		if now-w.startAt[i] >= w.window && events-w.eventsAt[i] >= starvationMinEvents {
			starved = append(starved, p.ID())
			//lint:observer LivenessTrail formats a fixed ring buffer read-only; the higher-order forEach iteration defeats the mutation summary
			trail := p.LivenessTrail()
			fmt.Fprintf(&diag, "proc %d: 0 commits for %d cycles, +%d denials/squashes (totals: %d commits, %d denials, %d squashes) trail: %s; ",
				p.ID(), now-w.startAt[i], events-w.eventsAt[i], commits, denials, squashes, trail)
		}
	}
	if len(starved) > 0 {
		//lint:observer verdict delivery: the store halts the run (Run's stop predicate); unreachable on any healthy execution, so goldens never see it
		m.watchdogErr = &WatchdogError{
			Cycle: now,
			Kind:  "starvation",
			Procs: starved,
			Diag:  diag.String() + w.arbiterDiag(),
		}
	}
}

// arbiterDiag summarizes arbiter occupancy for the failure diagnostic.
func (w *watchdog) arbiterDiag() string {
	var b strings.Builder
	b.WriteString("arbiters[")
	for i, a := range w.m.arbs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d: %d pending W", a.ID, a.Pending())
		if l := a.Locked(); l >= 0 {
			fmt.Fprintf(&b, " prearb-locked by proc %d", l)
		}
	}
	b.WriteString("]")
	return b.String()
}

package core

import (
	"math/rand"
	"testing"

	"bulksc/internal/mem"
	"bulksc/internal/sig"
	"bulksc/internal/workload"
)

// randomProgram generates an adversarial multithreaded program: tight
// loops of loads and stores over a tiny shared space (maximum conflict
// density), mixed with locks, barriers, private work and I/O — the worst
// case for the chunk protocol. The replay checker is the oracle.
func randomProgram(rng *rand.Rand, nthreads, iters int) *workload.Program {
	shared := workload.NewRegion(13, 3, 64) // 64 hot words, 16 lines
	wide := workload.NewRegion(13, 2, 4096)
	nBarriers := 0
	if rng.Intn(2) == 0 {
		nBarriers = 1 + rng.Intn(3)
	}
	barrierEvery := 0
	if nBarriers > 0 {
		barrierEvery = iters / (nBarriers + 1)
	}
	nLocks := 1 + rng.Intn(3)
	// Pre-decide the structural schedule so all threads agree.
	type step struct {
		barrier bool
	}
	sched := make([]step, iters)
	for i := range sched {
		if barrierEvery > 0 && i > 0 && i%barrierEvery == 0 {
			sched[i].barrier = true
		}
	}
	return workload.Build("fuzz", nthreads, rng.Int63(), func(b *workload.Builder) {
		r := b.Rng()
		for i := 0; i < iters; i++ {
			if sched[i].barrier {
				b.Barrier()
			}
			switch r.Intn(10) {
			case 0, 1, 2:
				b.Load(shared.Word(r.Intn(shared.Words)))
			case 3, 4:
				b.Store(shared.Word(r.Intn(shared.Words)))
			case 5:
				lock := 13*8 + r.Intn(nLocks)
				b.Acquire(lock)
				w := shared.Word(r.Intn(shared.Words))
				b.Load(w)
				b.Compute(1 + r.Intn(4))
				b.Store(w)
				b.Release(lock)
			case 6:
				b.Load(wide.Word(r.Intn(wide.Words)))
				b.Compute(r.Intn(8))
			case 7:
				b.StackWork(4 + r.Intn(12))
			case 8:
				b.Compute(1 + r.Intn(30))
			default:
				if r.Intn(12) == 0 {
					b.IO(20 + r.Intn(100))
				} else {
					b.Store(wide.Word(r.Intn(wide.Words)))
				}
			}
		}
	})
}

// TestFuzzRandomProgramsHoldSC is the whole-system fuzzer: adversarial
// random programs across machine shapes; the replay checker must pass
// every time.
func TestFuzzRandomProgramsHoldSC(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz")
	}
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 16; trial++ {
		nthreads := 2 + rng.Intn(7)
		iters := 150 + rng.Intn(400)
		prog := randomProgram(rng, nthreads, iters)
		cfg := Config{
			Model:       ModelBulk,
			Procs:       nthreads,
			Seed:        rng.Int63n(1 << 30),
			ChunkSize:   []int{64, 250, 1000, 4000}[rng.Intn(4)],
			MaxChunks:   1 + rng.Intn(3),
			SigKind:     []sig.Kind{sig.KindBloom, sig.KindExact}[rng.Intn(2)],
			RSigOpt:     rng.Intn(2) == 0,
			Dypvt:       rng.Intn(2) == 0,
			Stpvt:       rng.Intn(3) == 0,
			NumArbiters: []int{1, 1, 2, 4}[rng.Intn(4)],
			CheckSC:     true,
			Witness:     true,
			MaxCycles:   100_000_000,
		}
		if rng.Intn(4) == 0 {
			cfg.DirCacheEntries = 64 + rng.Intn(512)
		}
		res, err := RunProgram(cfg, prog)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		if len(res.SCViolations) > 0 {
			t.Fatalf("trial %d (chunk=%d maxchunks=%d sig=%v dypvt=%v stpvt=%v arbs=%d dircache=%d): %s",
				trial, cfg.ChunkSize, cfg.MaxChunks, cfg.SigKind, cfg.Dypvt, cfg.Stpvt,
				cfg.NumArbiters, cfg.DirCacheEntries, res.SCViolations[0])
		}
		if len(res.WitnessViolations) > 0 {
			t.Fatalf("trial %d: witness violations: %v", trial, res.WitnessViolations)
		}
		if res.ChunksChecked == 0 || res.WitnessChunks == 0 {
			t.Fatalf("trial %d: nothing checked", trial)
		}
	}
}

// TestFuzzHotLineHammer concentrates every thread on a single cache line —
// the maximal-contention corner — across chunk sizes.
func TestFuzzHotLineHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz")
	}
	hot := workload.NewRegion(13, 3, 4) // one line
	for _, chunkSize := range []int{32, 200, 1000} {
		for seed := int64(1); seed <= 4; seed++ {
			prog := workload.Build("hammer", 6, seed, func(b *workload.Builder) {
				r := b.Rng()
				for i := 0; i < 120; i++ {
					if r.Intn(3) == 0 {
						b.Store(hot.Word(r.Intn(4)))
					} else {
						b.Load(hot.Word(r.Intn(4)))
					}
					b.Compute(r.Intn(6))
				}
			})
			cfg := DefaultConfig("")
			cfg.App = ""
			cfg.Work = 0
			cfg.Procs = len(prog.Threads)
			cfg.ChunkSize = chunkSize
			cfg.Seed = seed
			cfg.WarmupFrac = 0
			res, err := RunProgram(cfg, prog)
			if err != nil {
				t.Fatalf("chunk=%d seed=%d: %v", chunkSize, seed, err)
			}
			if len(res.SCViolations) > 0 {
				t.Fatalf("chunk=%d seed=%d: %s", chunkSize, seed, res.SCViolations[0])
			}
			if len(res.WitnessViolations) > 0 {
				t.Fatalf("chunk=%d seed=%d: witness: %s", chunkSize, seed, res.WitnessViolations[0])
			}
		}
	}
}

// TestFuzzMixedPrivateSharedAliasing stresses the dypvt promote paths:
// each thread mostly rewrites its own slice (dynamically private) while
// occasionally reading and writing others' slices, forcing private-buffer
// supplies and promotions.
func TestFuzzMixedPrivateSharedAliasing(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz")
	}
	region := workload.NewRegion(13, 3, 512)
	for seed := int64(1); seed <= 6; seed++ {
		prog := workload.Build("pvtmix", 4, seed, func(b *workload.Builder) {
			r := b.Rng()
			mine := b.Tid() * 128
			for i := 0; i < 400; i++ {
				switch r.Intn(8) {
				case 0:
					other := r.Intn(4)
					b.Load(region.Word(other*128 + r.Intn(128)))
				case 1:
					if r.Intn(4) == 0 {
						other := r.Intn(4)
						b.Store(region.Word(other*128 + r.Intn(128)))
					}
				default:
					w := region.Word(mine + (i*3)%128)
					b.Load(w)
					b.Compute(2)
					b.Store(w)
				}
			}
		})
		cfg := DefaultConfig("")
		cfg.App = ""
		cfg.Work = 0
		cfg.Procs = len(prog.Threads)
		cfg.Seed = seed
		cfg.WarmupFrac = 0
		res, err := RunProgram(cfg, prog)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if len(res.SCViolations) > 0 {
			t.Fatalf("seed=%d: %s", seed, res.SCViolations[0])
		}
		if len(res.WitnessViolations) > 0 {
			t.Fatalf("seed=%d: witness: %s", seed, res.WitnessViolations[0])
		}
		if res.Stats.PrivBufSupplies == 0 && seed == 1 {
			t.Log("note: no private-buffer supplies this seed (pattern may be too clean)")
		}
	}
}

var _ = mem.LineBytes // keep mem imported for helper clarity

// Package core assembles complete simulated machines — processors, L1s,
// BDMs, shared L2, directory modules, arbiters and network — runs a
// workload on them, and verifies sequential consistency of BulkSC
// executions with a replay checker.
//
// This is the layer the public bulksc package and all experiment harnesses
// sit on.
package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"bulksc/internal/arbiter"
	"bulksc/internal/cache"
	"bulksc/internal/chunk"
	"bulksc/internal/directory"
	"bulksc/internal/fault"
	"bulksc/internal/history"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/proc"
	"bulksc/internal/sccheck"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
	"bulksc/internal/workload"
)

// ModelKind selects the consistency implementation of the machine.
type ModelKind int

const (
	// ModelSC is the SC baseline (read + exclusive prefetching).
	ModelSC ModelKind = iota
	// ModelRC is the RC baseline (speculation across fences).
	ModelRC
	// ModelSCpp is the SC++ baseline (SHiQ).
	ModelSCpp
	// ModelBulk is BulkSC.
	ModelBulk
)

func (m ModelKind) String() string {
	return [...]string{"SC", "RC", "SC++", "BulkSC"}[m]
}

// MaxProcs is the largest machine the simulator supports. The sparse
// sharer-set directory and the sharded arbiter tier scale to it; the bound
// exists because the address layout reserves per-thread stack windows and
// the fault plans target procs by 64-bit mask.
const MaxProcs = 1024

// Config describes one simulated machine + workload.
type Config struct {
	Model ModelKind
	// App names a registered workload generator (see workload.All).
	App string
	// Procs is the core count (Table 2: 8). RunProgram requires it to
	// match the program's thread count; 0 means "infer from the program".
	Procs int
	// Work is the approximate dynamic instruction count per thread.
	Work int
	// Seed drives all randomness (workload generation and timing jitter).
	Seed int64

	// BulkSC options (ignored by the baselines).
	ChunkSize int      // dynamic instructions per chunk (Table 2: 1000)
	MaxChunks int      // chunks in flight per processor (Table 2: 2)
	SigKind   sig.Kind // bloom (real) or exact (BSC_exact)
	// SigGeometry overrides the production 2×1024-bit Bloom geometry for
	// the §6 signature design-space ablation. Ignored for exact
	// signatures; nil selects the production encoding.
	SigGeometry *sig.Geometry
	RSigOpt     bool // §4.2.2 commit bandwidth optimization
	Dypvt       bool // §5.2 dynamically-private data
	Stpvt       bool // §5.1 statically-private data (stack pages)

	// NumArbiters distributes the arbiter and directory into that many
	// address-interleaved modules (§4.2.3); 1 = the paper's base system.
	NumArbiters int
	// GArbShards splits the G-arbiter coordinator into that many
	// independent shards, each handling the multi-range commits whose
	// first address range lands on it, with a per-shard in-flight cap and
	// FIFO overflow queue; ≤1 = a single coordinator (the paper's base
	// system). Only meaningful when NumArbiters > 1.
	GArbShards int
	// DirCacheEntries limits each directory module to a directory cache
	// of that many entries (§4.3.3); 0 = full-map.
	DirCacheEntries int

	// CheckSC runs the replay checker over every committed chunk
	// (BulkSC only). Costs memory proportional to the access count.
	CheckSC bool
	// Witness runs the online SC-witness checker (internal/sccheck) over
	// the execution: chunk commits under BulkSC, architectural accesses
	// under the conventional models. Unlike CheckSC it keeps only
	// O(footprint) state, so it can gate long runs. Findings land in
	// Result.WitnessViolations. Note that RC (and SC++, which shares RC's
	// dispatch path) genuinely relaxes store→load order; witness findings
	// for those models describe the relaxation rather than a bug.
	Witness bool
	// TraceWriter, when non-nil, streams the execution's memory-
	// consistency history to it as NDJSON (internal/history): one "chunk"
	// record per committed chunk under BulkSC, one "access" record per
	// architectural access under the conventional models, behind a
	// descriptive header. The hooks observe the same commit/perform
	// instants the witness checker audits and add no simulation events,
	// so tracing never perturbs the execution (golden hashes are
	// unaffected). Write errors are surfaced once, at end of run.
	TraceWriter io.Writer
	// MaxCycles aborts apparent livelocks; 0 = a generous default.
	MaxCycles uint64
	// Faults optionally injects deterministic faults (internal/fault):
	// arbitration denial storms and grant delays, network delay jitter,
	// spurious bulk-disambiguation squashes and W-signature aliasing
	// amplification. nil runs fault-free and is bit-identical to a build
	// without the hooks.
	Faults *fault.Plan
	// Watchdog enables the liveness watchdog: a read-only poller that
	// fails the run with a diagnostic when global commit progress stalls
	// or an individual processor starves in a squash/denial loop. The
	// polls never mutate simulation state, so enabling it does not
	// change the simulated execution (golden hashes are unaffected).
	Watchdog bool
	// WatchdogWindow is the no-progress window in cycles before the
	// watchdog declares livelock; 0 = a generous default (400k cycles).
	WatchdogWindow uint64
	// RecordTimeline collects commit/squash/pre-arbitration events into
	// Result.Timeline (BulkSC only).
	RecordTimeline bool
	// WarmupFrac excludes the first fraction of the committed
	// instructions from the characterization statistics (caches and
	// private working sets must reach steady state before Table 3/4
	// metrics mean anything). Cycles and speedups always cover the full
	// run. 0 disables warmup exclusion.
	WarmupFrac float64
}

// DefaultArbitersFor returns the arbiter/directory module count the
// scaling experiments pair with a machine of procs processors: one
// address-interleaved module per 8 processors, clamped to [1, 64]. The
// paper's 8-proc base system gets its single arbiter; a 256-proc machine
// gets 32.
func DefaultArbitersFor(procs int) int {
	n := procs / 8
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// DefaultGArbShardsFor returns the G-arbiter shard count paired with an
// arbiter tier of arbs modules: one coordinator shard per 4 modules, at
// least one. Multi-range commits fan out from the shard owning their
// first address range instead of a single global coordinator.
func DefaultGArbShardsFor(arbs int) int {
	n := arbs / 4
	if n < 1 {
		n = 1
	}
	return n
}

// DefaultConfig returns the paper's BSC_dypvt system on 8 processors.
func DefaultConfig(app string) Config {
	return Config{
		Model:       ModelBulk,
		App:         app,
		Procs:       8,
		Work:        60_000,
		Seed:        1,
		ChunkSize:   1000,
		MaxChunks:   2,
		SigKind:     sig.KindBloom,
		RSigOpt:     true,
		Dypvt:       true,
		NumArbiters: 1,
		CheckSC:     true,
		Witness:     true,
		Watchdog:    true,
		WarmupFrac:  0.3,
	}
}

// Result is the outcome of one run.
type Result struct {
	Config  Config
	Cycles  uint64
	Stats   *stats.Stats
	PerProc []uint64 // per-processor completion cycle
	// SCViolations lists replay-checker findings (empty = SC held).
	SCViolations []string
	// ChunksChecked is how many committed chunks the checker replayed.
	ChunksChecked int
	// Commits holds the committed chunks in commit order when
	// Config.CheckSC was set; tests and debugging tools inspect it.
	Commits []*chunk.Chunk
	// WitnessViolations lists online SC-witness checker findings when
	// Config.Witness was set (empty = all witness obligations held).
	// Deliberately excluded from DeterminismHash: golden hashes pin the
	// simulated execution, not the diagnostic instrumentation.
	WitnessViolations []string
	// WitnessChunks and WitnessAccesses count what the witness checker
	// examined (also excluded from DeterminismHash).
	WitnessChunks   int
	WitnessAccesses uint64
	// Timeline holds execution events when Config.RecordTimeline was set.
	Timeline Timeline
	// FaultCounters reports what Config.Faults actually injected (all
	// zero when fault-free). Excluded from DeterminismHash: hashes pin
	// the fault-free execution only.
	FaultCounters fault.Counters
	// WallNs is the host wall-clock time the simulation loop took and
	// EventsFired the number of discrete events the engine dispatched —
	// together the simulator-throughput numbers (events/sec) the scaling
	// sweep reports. WallNs is host measurement, not simulated state: it
	// is excluded from DeterminismHash and never feeds back into the
	// simulation. EventsFired is itself deterministic but stays out of
	// the hash with the other diagnostics.
	WallNs      int64
	EventsFired uint64
}

// Speedup returns other's runtime relative to r (r.Cycles / other.Cycles
// inverted: >1 means r is faster).
func (r *Result) Speedup(other *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(other.Cycles) / float64(r.Cycles)
}

// Run generates cfg.App and simulates it on a fresh machine. It is
// exactly Runner.Run on a throwaway Runner: cold and warm runs execute the
// same construction + Reset + run path, which is what makes their results
// bit-identical.
func Run(cfg Config) (*Result, error) {
	return NewRunner().Run(cfg)
}

// RunProgram simulates an explicit program on a fresh machine (used by the
// litmus tests).
func RunProgram(cfg Config, prog *workload.Program) (*Result, error) {
	return NewRunner().RunProgram(cfg, prog)
}

// Runner is a reusable machine context: one simulated machine — engine,
// caches, directory slabs, arbiters, network, processors — constructed
// once and reset in place between runs. A Runner amortizes the multi-
// megabyte machine arena (the 8 MB L2 tag array, the directory entry
// slabs, the per-processor L1s, maps and FIFOs) across a whole sweep:
// Run produces Results bit-identical to a cold core.Run (both
// DeterminismHash and WitnessHash), because every subsystem's Reset
// restores cold-equivalent state and the state whose shape could leak
// (grown open-addressed tables, chunk pools) is deliberately dropped.
//
// A Runner is NOT safe for concurrent use: it is one machine. Parallel
// sweeps hold one Runner per worker.
type Runner struct {
	m *machine
}

// NewRunner constructs the machine arena once; the first Run pays the same
// cost as a cold core.Run, subsequent Runs reuse the arena.
func NewRunner() *Runner { return &Runner{m: newMachine()} }

// Run generates cfg.App and simulates it on the reused machine.
func (r *Runner) Run(cfg Config) (*Result, error) {
	gen, err := workload.Get(cfg.App)
	if err != nil {
		return nil, err
	}
	prog := gen(cfg.Procs, cfg.Work, cfg.Seed)
	return r.m.runProgram(cfg, prog)
}

// RunProgram simulates an explicit (immutable) program on the reused
// machine. The program is only read, so one memoized *workload.Program may
// be shared by many Runners and runs.
func (r *Runner) RunProgram(cfg Config, prog *workload.Program) (*Result, error) {
	return r.m.runProgram(cfg, prog)
}

func (m *machine) runProgram(cfg Config, prog *workload.Program) (*Result, error) {
	if cfg.Procs == 0 {
		cfg.Procs = len(prog.Threads)
	}
	if len(prog.Threads) != cfg.Procs {
		// A mismatch used to silently resize the machine, letting sweep
		// configs lie about machine size; make it the caller's bug.
		return nil, fmt.Errorf("core: config has %d processors but program %q has %d threads",
			cfg.Procs, prog.Name, len(prog.Threads))
	}
	if cfg.Procs < 1 || cfg.Procs > MaxProcs {
		return nil, fmt.Errorf("core: %d processors unsupported (max %d)", cfg.Procs, MaxProcs)
	}
	if cfg.NumArbiters < 1 {
		cfg.NumArbiters = 1
	}
	m.Reset(cfg)
	for t, ins := range prog.Threads {
		m.addProc(cfg, t, ins)
	}
	m.wirePorts()
	return m.run(cfg)
}

// machine is one assembled system. It is built once (newMachine) and then
// reconfigured in place for every run (Reset): the expensive arenas — the
// 8 MB L2 tag array, the directory entry slabs, per-processor L1s, maps,
// FIFOs and the event heap — survive across runs, while every piece of
// per-run state is scrubbed back to its cold value.
type machine struct {
	cfg   Config
	eng   *sim.Engine
	net   *network.Network
	st    *stats.Stats
	memry *mem.Memory
	pages *mem.PageTable
	l2    *cache.L2
	dirs  []*directory.Directory
	arbs  []*arbiter.Arbiter
	garb  *arbiter.GArbiter
	env   *proc.Env

	// order is the global commit-order counter shared (by pointer) with
	// every arbiter; Reset zeroes it between runs.
	order uint64

	// sigRec recycles standard-Bloom signature objects across runs: the
	// chunk pools feed dropped signatures back through Env.SigRecycle,
	// and Reset wraps each run's factories so they draw from the parked
	// set. A recycled Bloom is cleared and geometry-fixed — bit-identical
	// to a fresh one — so this is storage recycling only.
	sigRec sig.Recycler

	// bulkProcs/convProcs are the processors of the CURRENT run, in id
	// order; bulkPool/convPool are the per-id processor arenas that
	// survive across runs (addProc resets and reuses pool[id] when it
	// exists, so a worker running the same geometry repeatedly never
	// reconstructs a processor).
	bulkProcs []*proc.BulkProc
	convProcs []*proc.ConvProc
	//lint:poolsafe processor arena; each entry is fully Reset at reacquisition in addProc
	bulkPool []*proc.BulkProc
	//lint:poolsafe processor arena; each entry is fully Reset at reacquisition in addProc
	convPool []*proc.ConvProc

	commits []*chunk.Chunk // commit-order log for the checker
	// rangeScratch is routeCommit's reusable set-list buffer; fully
	// overwritten before every use, dead after every call.
	//lint:poolsafe per-call scratch, fully overwritten before every use
	rangeScratch []*lineset.Set
	// rangeSeen/rangeIDs back the address-range computation in
	// routeCommit (arbiter.RangesOfInto): per-call scratch, consumed
	// synchronously — the multi-range path copies the result before it
	// escapes into deferred network events.
	//lint:poolsafe per-call scratch, fully overwritten before every use
	rangeSeen []bool
	//lint:poolsafe per-call scratch, fully overwritten before every use
	rangeIDs []int
	// privSent marks directory modules already targeted by the current
	// stpvt Wpriv propagation; sized to the module count per call.
	//lint:poolsafe per-call scratch, fully cleared before every use
	privSent []bool
	// wdScratch backs the watchdog's three per-proc trail arrays so a warm
	// runner does not reallocate them every run.
	//lint:poolsafe watchdog backing storage; startWatchdog re-slices and zeroes it per run
	wdScratch []uint64
	// witness is the active checker of the current run (nil when
	// cfg.Witness is off); witArena is the persistent checker storage it
	// draws from.
	witness  *sccheck.Checker
	witArena *sccheck.Checker
	// tracer streams the run's history as NDJSON when cfg.TraceWriter is
	// set (nil otherwise). Rebuilt per run: it wraps the caller's writer.
	tracer   *history.Writer
	timeline Timeline

	// watchdogErr is set by the liveness watchdog when it detects a
	// stall; the engine stop condition checks it every event.
	watchdogErr *WatchdogError
}

// newMachine constructs the run-independent machine arena. Everything
// configuration-dependent — seed, model, module count, signature kind —
// is applied by Reset before each run.
func newMachine() *machine {
	m := &machine{
		eng:   sim.NewEngine(0),
		st:    stats.New(),
		memry: mem.NewMemory(),
		pages: mem.NewPageTable(),
	}
	m.net = network.New(m.eng, m.st)
	m.l2 = cache.NewL2(32768, 8) // 8 MB / 8-way / 32 B
	m.env = m.buildEnv()
	return m
}

// buildModules (re)builds the address-interleaved directory + arbiter
// modules. Called by Reset only when the module count changes (the wiring
// closures are per-module but stable, so a same-count run just resets the
// existing modules in place and keeps their slabs).
func (m *machine) buildModules(n int) {
	m.dirs = m.dirs[:0]
	m.arbs = m.arbs[:0]
	for i := 0; i < n; i++ {
		d := directory.New(i, n, m.eng, m.net, m.st, m.l2)
		m.dirs = append(m.dirs, d)
		a := arbiter.New(i, m.eng, m.net, m.st, &m.order)
		m.arbs = append(m.arbs, a)
		// Arbiter i is co-located with directory i (Figure 7(b)).
		dd := d
		a.ForwardW = func(tok arbiter.Token, proc int, w sig.Signature, trueW *lineset.Set) {
			dd.ProcessCommit(dd.NewCommit(tok, proc, w, trueW))
		}
		aa := a
		d.OnDone = func(tok arbiter.Token) { aa.Done(tok) }
	}
}

// Reset reconfigures the machine for one run of cfg, restoring every
// subsystem to a cold-equivalent state in place. The reset order follows
// the dependency chain: engine first (drops any undrained events, which
// may reference pooled protocol records), then the passive state (stats,
// memory, pages, caches), then the protocol modules, then the per-run
// wiring. Signature factories are created fresh per run rather than
// retained: their pools are warm-start allocation state whose reuse could
// not change behavior but whose recreation is cheap and keeps the
// cold/warm equivalence argument trivial. Each run's factories are then
// wrapped by the machine's signature recycler, which substitutes cleared
// standard Blooms parked by previous runs for fresh allocations — an
// object-identity substitution the simulation cannot observe.
func (m *machine) Reset(cfg Config) {
	m.cfg = cfg
	m.eng.Reset(cfg.Seed)
	limit := cfg.MaxCycles
	if limit == 0 {
		limit = 2_000_000_000
	}
	m.eng.SetLimit(sim.Time(limit))
	m.net.Reset()
	m.net.Faults = cfg.Faults
	m.st.Reset()
	m.memry.Reset()
	m.pages.Reset()
	if cfg.Stpvt {
		m.pages.MarkStacksPrivate(cfg.Procs)
	}
	m.l2.Reset()

	// stdBloom: only the fixed-geometry Bloom may draw from the machine's
	// signature recycler (see sig.Recycler); exact and tunable signatures
	// pass through their factories untouched.
	stdBloom := cfg.SigKind == sig.KindBloom && cfg.SigGeometry == nil
	sigFactory := sig.NewFactory(cfg.SigKind)
	if cfg.SigGeometry != nil && cfg.SigKind == sig.KindBloom {
		sigFactory = sig.NewTunableFactory(*cfg.SigGeometry)
	}
	sigFactory = m.sigRec.Factory(sigFactory, stdBloom)
	if len(m.dirs) != cfg.NumArbiters {
		m.buildModules(cfg.NumArbiters)
	} else {
		for i := range m.dirs {
			m.dirs[i].Reset()
			m.arbs[i].Reset()
		}
	}
	for i := range m.dirs {
		m.dirs[i].MaxEntries = cfg.DirCacheEntries
		m.dirs[i].SigFactory = sigFactory
		m.arbs[i].Faults = cfg.Faults
	}
	m.garb = nil
	if cfg.NumArbiters > 1 {
		// The G-arbiter is stateless between transactions; recreating it is
		// cheaper than auditing it for reuse.
		m.garb = arbiter.NewGArbiter(m.eng, m.net, m.st, m.arbs)
		m.garb.SetShards(cfg.GArbShards)
	}
	m.order = 0

	// The env closures route through m.dirs/m.arbs/m.garb dynamically, so
	// they survive module rebuilds; only the value fields change per run.
	m.env.Sigs = sig.NewFactory(cfg.SigKind)
	if cfg.SigGeometry != nil && cfg.SigKind == sig.KindBloom {
		m.env.Sigs = sig.NewTunableFactory(*cfg.SigGeometry)
	}
	m.env.Sigs = m.sigRec.Factory(m.env.Sigs, stdBloom)
	m.env.NProcs = cfg.Procs
	m.env.Faults = cfg.Faults

	clear(m.bulkProcs) // active lists are rebuilt by addProc
	m.bulkProcs = m.bulkProcs[:0]
	clear(m.convProcs)
	m.convProcs = m.convProcs[:0]

	// commits and timeline were handed to the previous run's Result; they
	// must be dropped, not truncated — truncating would scrub the caller's
	// slice in place.
	m.commits = nil
	m.timeline = nil
	m.witness = nil
	if cfg.Witness {
		if m.witArena == nil {
			m.witArena = sccheck.New()
		}
		m.witArena.Reset()
		m.witness = m.witArena
	}
	m.tracer = nil
	if cfg.TraceWriter != nil {
		m.tracer = history.NewWriter(cfg.TraceWriter)
		m.tracer.Header(history.Header{
			Model: cfg.Model.String(), Procs: cfg.Procs,
			App: cfg.App, Seed: cfg.Seed, Work: cfg.Work,
		})
	}
	m.watchdogErr = nil
}

func (m *machine) dirFor(l mem.Line) *directory.Directory {
	return m.dirs[arbiter.RangeOf(l, len(m.dirs))]
}

// buildEnv wires the processor environment once, at machine construction.
// The closures dereference m.dirs/m.arbs/m.garb at call time, so they stay
// valid across Reset even when the module set is rebuilt; the per-run value
// fields (Sigs, NProcs, Faults) are filled in by Reset.
func (m *machine) buildEnv() *proc.Env {
	env := &proc.Env{
		Eng:   m.eng,
		Net:   m.net,
		St:    m.st,
		Mem:   m.memry,
		Pages: m.pages,
		// Chunk pools feed dropped signatures back to the machine's
		// recycler at warm reset; Reset wraps the per-run factories so
		// they draw from the parked set first.
		SigRecycle: m.sigRec.Recycle,
	}
	// The directory internalizes the request hop and the reply delivery
	// through pooled transaction records, so these wrappers are plain
	// routing — no per-miss closures.
	env.ReadLine = func(p int, l mem.Line, excl bool, done func(int)) {
		m.dirFor(l).Read(p, l, excl, done)
	}
	env.WritebackLine = func(p int, l mem.Line, drop bool) {
		m.dirFor(l).Writeback(p, l, drop)
	}
	env.Commit = m.routeCommit
	env.PrivCommit = func(p int, w sig.Signature, trueW *lineset.Set) {
		if len(m.privSent) < len(m.dirs) {
			m.privSent = make([]bool, len(m.dirs))
		}
		sent := m.privSent[:len(m.dirs)]
		clear(sent)
		trueW.ForEach(func(l mem.Line) {
			idx := arbiter.RangeOf(l, len(m.dirs))
			if sent[idx] {
				return
			}
			sent[idx] = true
			d := m.dirs[idx]
			m.net.Send(stats.CatWrSig, network.SigBytes, func() {
				d.ProcessPrivCommit(d.NewCommit(0, p, w, trueW))
			})
		})
	}
	env.PreArbitrate = func(p int, granted func()) {
		m.net.Send(stats.CatOther, network.CtrlBytes, func() {
			m.arbs[0].PreArbitrate(p, func() {
				m.net.Send(stats.CatOther, network.CtrlBytes, granted)
			})
		})
	}
	env.EndPreArbitrate = func(p int) {
		m.net.Send(stats.CatOther, network.CtrlBytes, func() {
			m.arbs[0].EndPreArbitration(p)
		})
	}
	return env
}

// routeCommit translates a processor commit request into arbitration:
// straight to the single owning arbiter, or through the G-arbiter when the
// chunk spans several address ranges (§4.2.3).
// routeCommit translates a processor's permission-to-commit request into
// an arbiter request. It consumes req synchronously: everything that
// travels onward is copied into areq (the FetchR wrapper captures the
// func value, never req itself), which is what lets the processor recycle
// its CommitReq records the moment Commit returns.
func (m *machine) routeCommit(req *proc.CommitReq) {
	areq := &arbiter.Request{
		Proc:  req.Proc,
		W:     req.W,
		R:     req.R,
		TrueW: req.TrueW,
		Reply: req.Reply,
	}
	if req.R != nil {
		// R travels with the request (no RSig optimization).
		m.net.Account(stats.CatRdSig, network.SigBytes)
	}
	if req.FetchR != nil {
		fetch := req.FetchR
		areq.FetchR = func(cb func(sig.Signature)) {
			// Arbiter → processor → arbiter round trip for R.
			m.net.Send(stats.CatOther, network.CtrlBytes, func() {
				fetch(func(r sig.Signature) {
					m.net.Send(stats.CatRdSig, network.SigBytes, func() { cb(r) })
				})
			})
		}
	}
	// An empty W signature compresses to nothing: the permission-to-commit
	// request is a plain control message.
	wBytes := network.SigBytes
	if req.W.Empty() {
		wBytes = network.CtrlBytes
	}
	if len(m.arbs) == 1 {
		m.net.Send(stats.CatWrSig, wBytes, func() { m.arbs[0].Request(areq) })
		return
	}
	m.rangeScratch = append(append(m.rangeScratch[:0], req.RSets...), req.WSets...)
	if len(m.rangeSeen) < len(m.arbs) {
		m.rangeSeen = make([]bool, len(m.arbs))
	}
	m.rangeIDs = arbiter.RangesOfInto(m.rangeIDs[:0], m.rangeScratch, len(m.arbs), m.rangeSeen[:len(m.arbs)])
	ranges := m.rangeIDs
	if len(ranges) == 1 {
		// Resolve the arbiter now: the send callback fires after this
		// scratch may have been overwritten by a later commit.
		arb := m.arbs[ranges[0]]
		m.net.Send(stats.CatWrSig, wBytes, func() { arb.Request(areq) })
		return
	}
	// Multi-range: the range list escapes into deferred events (and may be
	// queued at a busy G-arbiter shard), so it needs a stable copy of the
	// per-call scratch. Multi-arb commits are the rare case — single-range
	// routing above stays allocation-free. The G-arbiter needs R upfront.
	stable := append(make([]int, 0, len(ranges)), ranges...)
	if areq.R == nil {
		areq.FetchR(func(r sig.Signature) {
			areq.R = r
			m.net.Send(stats.CatWrSig, network.SigBytes, func() { m.garb.Request(areq, stable) })
		})
		return
	}
	m.net.Send(stats.CatWrSig, network.SigBytes, func() { m.garb.Request(areq, stable) })
}

func (m *machine) addProc(cfg Config, id int, ins []workload.Instr) {
	par := proc.DefaultParams()
	if cfg.ChunkSize > 0 {
		par.ChunkSize = cfg.ChunkSize
	}
	if cfg.MaxChunks > 0 {
		par.MaxChunks = cfg.MaxChunks
	}
	switch cfg.Model {
	case ModelBulk:
		opts := proc.Opts{
			RSigOpt:         cfg.RSigOpt,
			Dypvt:           cfg.Dypvt,
			Stpvt:           cfg.Stpvt,
			PreArbThreshold: 6,
			// Committed chunks may be recycled across runs unless this
			// run exports them through Result.Commits (CheckSC). The
			// retire list is write-only during the run, so the flag can
			// never affect simulated behavior or the determinism hashes.
			RetainCommitted: !cfg.CheckSC,
		}
		var p *proc.BulkProc
		if id < len(m.bulkPool) && m.bulkPool[id] != nil {
			p = m.bulkPool[id]
			p.Reset(ins, par, opts)
		} else {
			p = proc.NewBulkProc(id, m.env, par, opts, ins)
			for len(m.bulkPool) <= id {
				m.bulkPool = append(m.bulkPool, nil)
			}
			m.bulkPool[id] = p
		}
		onCommit := func(ch *chunk.Chunk) {
			if cfg.CheckSC {
				m.commits = append(m.commits, ch)
			}
			if m.witness != nil {
				// OnCommit fires at the arbiter's grant event, so chunks
				// arrive here in global commit order — exactly the
				// serialization the witness checker validates.
				m.witness.CommitChunk(ch)
			}
			if m.tracer != nil {
				// The tracer serializes at the same instant, so the
				// exported history carries the identical claimed order —
				// and the chunk may be recycled afterwards regardless.
				m.tracer.Chunk(ch)
			}
			if cfg.RecordTimeline {
				m.timeline = append(m.timeline, TimelineEvent{
					At: uint64(m.eng.Now()), Proc: ch.Proc, Kind: EvCommit,
					Order: ch.CommitOrder, Instrs: ch.Executed,
				})
			}
		}
		if cfg.CheckSC || cfg.RecordTimeline || m.witness != nil || m.tracer != nil {
			p.OnCommit = onCommit
		}
		if cfg.RecordTimeline {
			pid := id
			p.OnSquash = func(victims, instrs int, genuine bool) {
				m.timeline = append(m.timeline, TimelineEvent{
					At: uint64(m.eng.Now()), Proc: pid, Kind: EvSquash,
					Victims: victims, Instrs: instrs, Genuine: genuine,
				})
			}
			p.OnPreArb = func() {
				m.timeline = append(m.timeline, TimelineEvent{
					At: uint64(m.eng.Now()), Proc: pid, Kind: EvPreArb,
				})
			}
		}
		m.bulkProcs = append(m.bulkProcs, p)
	case ModelSC:
		m.addConvProc(id, par, proc.SC, ins)
	case ModelRC:
		m.addConvProc(id, par, proc.RC, ins)
	case ModelSCpp:
		m.addConvProc(id, par, proc.SCpp, ins)
	default:
		panic("core: unknown model")
	}
}

func (m *machine) addConvProc(id int, par proc.Params, model proc.Model, ins []workload.Instr) {
	var p *proc.ConvProc
	if id < len(m.convPool) && m.convPool[id] != nil {
		p = m.convPool[id]
		p.Reset(ins, par, model)
	} else {
		p = proc.NewConvProc(id, m.env, par, model, ins)
		for len(m.convPool) <= id {
			m.convPool = append(m.convPool, nil)
		}
		m.convPool[id] = p
	}
	if m.witness != nil || m.tracer != nil {
		pid := id
		p.OnAccess = func(po uint64, store bool, a mem.Addr, v uint64, fwd bool) {
			if m.witness != nil {
				m.witness.Access(pid, po, store, a, v, fwd)
			}
			if m.tracer != nil {
				m.tracer.Access(pid, po, store, a, v, fwd)
			}
		}
	}
	m.convProcs = append(m.convProcs, p)
}

func (m *machine) wirePorts() {
	var ports []directory.CachePort
	for _, p := range m.bulkProcs {
		ports = append(ports, p)
	}
	for _, p := range m.convProcs {
		ports = append(ports, p)
	}
	for _, d := range m.dirs {
		d.AttachPorts(ports)
	}
}

func (m *machine) allDone() bool {
	for _, p := range m.bulkProcs {
		if !p.Finished() {
			return false
		}
	}
	for _, p := range m.convProcs {
		if !p.Finished() {
			return false
		}
	}
	return true
}

func (m *machine) run(cfg Config) (*Result, error) {
	for _, p := range m.bulkProcs {
		p.Start()
	}
	for _, p := range m.convProcs {
		p.Start()
	}
	// Warmup exclusion: once the committed-instruction count passes the
	// warmup fraction, snapshot the counters; the final stats subtract the
	// snapshot so Table 3/4 metrics describe steady state only.
	var warmBase *stats.Stats
	var warmCycle uint64
	if cfg.WarmupFrac > 0 {
		target := uint64(cfg.WarmupFrac * float64(cfg.Work) * float64(cfg.Procs))
		var poll func()
		poll = func() {
			if m.allDone() {
				return
			}
			if m.st.CommittedInstrs >= target {
				snap := m.st.Snapshot()
				warmBase = &snap
				warmCycle = uint64(m.eng.Now())
				return
			}
			m.eng.After(5000, poll)
		}
		m.eng.After(5000, poll)
	}
	if cfg.Watchdog {
		startWatchdog(m, cfg.WatchdogWindow)
	}
	//lint:deterministic host-side throughput measurement around the event loop; the value only lands in Result.WallNs, which is excluded from DeterminismHash and never feeds simulated state
	wallStart := time.Now()
	m.eng.Run(func() bool { return m.watchdogErr != nil || m.allDone() })
	//lint:deterministic host-side throughput measurement; see wallStart above
	wallNs := time.Since(wallStart).Nanoseconds()
	if m.watchdogErr != nil {
		return nil, fmt.Errorf("core: %s/%s: %w", cfg.Model, cfg.App, m.watchdogErr)
	}
	if !m.allDone() {
		return nil, fmt.Errorf("core: %s/%s deadlocked at cycle %d", cfg.Model, cfg.App, m.eng.Now())
	}
	res := &Result{Config: cfg, WallNs: wallNs, EventsFired: m.eng.Fired()}
	if cfg.Faults != nil {
		res.FaultCounters = cfg.Faults.Counters()
	}
	var last sim.Time
	for _, p := range m.bulkProcs {
		res.PerProc = append(res.PerProc, uint64(p.DoneAt()))
		if p.DoneAt() > last {
			last = p.DoneAt()
		}
	}
	for _, p := range m.convProcs {
		res.PerProc = append(res.PerProc, uint64(p.DoneAt()))
		if p.DoneAt() > last {
			last = p.DoneAt()
		}
	}
	res.Cycles = uint64(last)
	m.st.Cycles = res.Cycles
	m.st.CloseWList(res.Cycles)
	if warmBase != nil {
		m.st.SubtractBase(warmBase, warmCycle)
	}
	// The Result must not alias the machine: a warm Runner scrubs its
	// stats on the next Reset, which would retroactively zero any Result
	// still holding the live pointer. Hand out a deliberate copy instead.
	final := m.st.Snapshot()
	res.Stats = &final
	if cfg.CheckSC && cfg.Model == ModelBulk {
		res.SCViolations = verifySC(m.commits)
		res.ChunksChecked = len(m.commits)
		res.Commits = m.commits
	}
	if m.witness != nil {
		res.WitnessViolations = m.witness.Strings()
		res.WitnessChunks = m.witness.Chunks()
		res.WitnessAccesses = m.witness.Accesses()
	}
	if m.tracer != nil {
		// Flush the streamed history; the writer's sticky error delivers
		// the first failure anywhere in the stream exactly once.
		if err := m.tracer.Close(); err != nil {
			return nil, fmt.Errorf("core: %s/%s: trace export: %w", cfg.Model, cfg.App, err)
		}
	}
	if cfg.RecordTimeline {
		sortTimeline(m.timeline)
		res.Timeline = m.timeline
	}
	return res, nil
}

// verifySC replays every committed chunk in global commit order and checks
// that each logged load observed exactly the value the sequential replay
// produces. This validates chunk atomicity, isolation, per-processor
// order, forwarding, squash recovery and the private-data optimizations
// end to end: any hole would surface as a mismatched load.
func verifySC(commits []*chunk.Chunk) []string {
	sorted := make([]*chunk.Chunk, len(commits))
	copy(sorted, commits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CommitOrder < sorted[j].CommitOrder })
	replay := make(map[mem.Addr]uint64)
	var bad []string
	perProc := make(map[int]uint64)
	for _, ch := range sorted {
		if ch.CommitOrder <= perProc[ch.Proc] && perProc[ch.Proc] != 0 {
			bad = append(bad, fmt.Sprintf("proc %d chunk %d committed out of per-processor order", ch.Proc, ch.Seq))
		}
		perProc[ch.Proc] = ch.CommitOrder
		for _, rec := range ch.Log {
			a := rec.Addr.Align()
			if rec.IsStore {
				replay[a] = rec.Value
				continue
			}
			if got := replay[a]; got != rec.Value {
				bad = append(bad, fmt.Sprintf(
					"proc %d chunk %d (order %d): load %#x observed %d, replay has %d",
					ch.Proc, ch.Seq, ch.CommitOrder, uint64(rec.Addr), rec.Value, got))
				if len(bad) >= 20 {
					return bad
				}
			}
		}
	}
	return bad
}

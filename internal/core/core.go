// Package core assembles complete simulated machines — processors, L1s,
// BDMs, shared L2, directory modules, arbiters and network — runs a
// workload on them, and verifies sequential consistency of BulkSC
// executions with a replay checker.
//
// This is the layer the public bulksc package and all experiment harnesses
// sit on.
package core

import (
	"fmt"
	"sort"

	"bulksc/internal/arbiter"
	"bulksc/internal/cache"
	"bulksc/internal/chunk"
	"bulksc/internal/directory"
	"bulksc/internal/fault"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/proc"
	"bulksc/internal/sccheck"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
	"bulksc/internal/workload"
)

// ModelKind selects the consistency implementation of the machine.
type ModelKind int

const (
	// ModelSC is the SC baseline (read + exclusive prefetching).
	ModelSC ModelKind = iota
	// ModelRC is the RC baseline (speculation across fences).
	ModelRC
	// ModelSCpp is the SC++ baseline (SHiQ).
	ModelSCpp
	// ModelBulk is BulkSC.
	ModelBulk
)

func (m ModelKind) String() string {
	return [...]string{"SC", "RC", "SC++", "BulkSC"}[m]
}

// Config describes one simulated machine + workload.
type Config struct {
	Model ModelKind
	// App names a registered workload generator (see workload.All).
	App string
	// Procs is the core count (Table 2: 8).
	Procs int
	// Work is the approximate dynamic instruction count per thread.
	Work int
	// Seed drives all randomness (workload generation and timing jitter).
	Seed int64

	// BulkSC options (ignored by the baselines).
	ChunkSize int      // dynamic instructions per chunk (Table 2: 1000)
	MaxChunks int      // chunks in flight per processor (Table 2: 2)
	SigKind   sig.Kind // bloom (real) or exact (BSC_exact)
	// SigGeometry overrides the production 2×1024-bit Bloom geometry for
	// the §6 signature design-space ablation. Ignored for exact
	// signatures; nil selects the production encoding.
	SigGeometry *sig.Geometry
	RSigOpt     bool // §4.2.2 commit bandwidth optimization
	Dypvt       bool // §5.2 dynamically-private data
	Stpvt       bool // §5.1 statically-private data (stack pages)

	// NumArbiters distributes the arbiter and directory into that many
	// address-interleaved modules (§4.2.3); 1 = the paper's base system.
	NumArbiters int
	// DirCacheEntries limits each directory module to a directory cache
	// of that many entries (§4.3.3); 0 = full-map.
	DirCacheEntries int

	// CheckSC runs the replay checker over every committed chunk
	// (BulkSC only). Costs memory proportional to the access count.
	CheckSC bool
	// Witness runs the online SC-witness checker (internal/sccheck) over
	// the execution: chunk commits under BulkSC, architectural accesses
	// under the conventional models. Unlike CheckSC it keeps only
	// O(footprint) state, so it can gate long runs. Findings land in
	// Result.WitnessViolations. Note that RC (and SC++, which shares RC's
	// dispatch path) genuinely relaxes store→load order; witness findings
	// for those models describe the relaxation rather than a bug.
	Witness bool
	// MaxCycles aborts apparent livelocks; 0 = a generous default.
	MaxCycles uint64
	// Faults optionally injects deterministic faults (internal/fault):
	// arbitration denial storms and grant delays, network delay jitter,
	// spurious bulk-disambiguation squashes and W-signature aliasing
	// amplification. nil runs fault-free and is bit-identical to a build
	// without the hooks.
	Faults *fault.Plan
	// Watchdog enables the liveness watchdog: a read-only poller that
	// fails the run with a diagnostic when global commit progress stalls
	// or an individual processor starves in a squash/denial loop. The
	// polls never mutate simulation state, so enabling it does not
	// change the simulated execution (golden hashes are unaffected).
	Watchdog bool
	// WatchdogWindow is the no-progress window in cycles before the
	// watchdog declares livelock; 0 = a generous default (400k cycles).
	WatchdogWindow uint64
	// RecordTimeline collects commit/squash/pre-arbitration events into
	// Result.Timeline (BulkSC only).
	RecordTimeline bool
	// WarmupFrac excludes the first fraction of the committed
	// instructions from the characterization statistics (caches and
	// private working sets must reach steady state before Table 3/4
	// metrics mean anything). Cycles and speedups always cover the full
	// run. 0 disables warmup exclusion.
	WarmupFrac float64
}

// DefaultConfig returns the paper's BSC_dypvt system on 8 processors.
func DefaultConfig(app string) Config {
	return Config{
		Model:       ModelBulk,
		App:         app,
		Procs:       8,
		Work:        60_000,
		Seed:        1,
		ChunkSize:   1000,
		MaxChunks:   2,
		SigKind:     sig.KindBloom,
		RSigOpt:     true,
		Dypvt:       true,
		NumArbiters: 1,
		CheckSC:     true,
		Witness:     true,
		Watchdog:    true,
		WarmupFrac:  0.3,
	}
}

// Result is the outcome of one run.
type Result struct {
	Config  Config
	Cycles  uint64
	Stats   *stats.Stats
	PerProc []uint64 // per-processor completion cycle
	// SCViolations lists replay-checker findings (empty = SC held).
	SCViolations []string
	// ChunksChecked is how many committed chunks the checker replayed.
	ChunksChecked int
	// Commits holds the committed chunks in commit order when
	// Config.CheckSC was set; tests and debugging tools inspect it.
	Commits []*chunk.Chunk
	// WitnessViolations lists online SC-witness checker findings when
	// Config.Witness was set (empty = all witness obligations held).
	// Deliberately excluded from DeterminismHash: golden hashes pin the
	// simulated execution, not the diagnostic instrumentation.
	WitnessViolations []string
	// WitnessChunks and WitnessAccesses count what the witness checker
	// examined (also excluded from DeterminismHash).
	WitnessChunks   int
	WitnessAccesses uint64
	// Timeline holds execution events when Config.RecordTimeline was set.
	Timeline Timeline
	// FaultCounters reports what Config.Faults actually injected (all
	// zero when fault-free). Excluded from DeterminismHash: hashes pin
	// the fault-free execution only.
	FaultCounters fault.Counters
}

// Speedup returns other's runtime relative to r (r.Cycles / other.Cycles
// inverted: >1 means r is faster).
func (r *Result) Speedup(other *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(other.Cycles) / float64(r.Cycles)
}

// Run generates cfg.App and simulates it.
func Run(cfg Config) (*Result, error) {
	gen, err := workload.Get(cfg.App)
	if err != nil {
		return nil, err
	}
	prog := gen(cfg.Procs, cfg.Work, cfg.Seed)
	return RunProgram(cfg, prog)
}

// RunProgram simulates an explicit program (used by the litmus tests).
func RunProgram(cfg Config, prog *workload.Program) (*Result, error) {
	if len(prog.Threads) != cfg.Procs {
		cfg.Procs = len(prog.Threads)
	}
	if cfg.Procs < 1 || cfg.Procs > 64 {
		return nil, fmt.Errorf("core: %d processors unsupported", cfg.Procs)
	}
	if cfg.NumArbiters < 1 {
		cfg.NumArbiters = 1
	}
	m := buildMachine(cfg)
	for t, ins := range prog.Threads {
		m.addProc(cfg, t, ins)
	}
	m.wirePorts()
	return m.run(cfg)
}

// machine is one assembled system.
type machine struct {
	cfg   Config
	eng   *sim.Engine
	net   *network.Network
	st    *stats.Stats
	memry *mem.Memory
	pages *mem.PageTable
	dirs  []*directory.Directory
	arbs  []*arbiter.Arbiter
	garb  *arbiter.GArbiter
	env   *proc.Env

	bulkProcs []*proc.BulkProc
	convProcs []*proc.ConvProc

	commits  []*chunk.Chunk // commit-order log for the checker
	witness  *sccheck.Checker
	timeline Timeline

	// watchdogErr is set by the liveness watchdog when it detects a
	// stall; the engine stop condition checks it every event.
	watchdogErr *WatchdogError
}

func buildMachine(cfg Config) *machine {
	m := &machine{
		cfg:   cfg,
		eng:   sim.NewEngine(cfg.Seed),
		st:    stats.New(),
		memry: mem.NewMemory(),
		pages: mem.NewPageTable(),
	}
	m.net = network.New(m.eng, m.st)
	m.net.Faults = cfg.Faults
	if cfg.Witness {
		m.witness = sccheck.New()
	}
	if cfg.Stpvt {
		m.pages.MarkStacksPrivate(cfg.Procs)
	}
	limit := cfg.MaxCycles
	if limit == 0 {
		limit = 2_000_000_000
	}
	m.eng.SetLimit(sim.Time(limit))

	l2 := cache.NewL2(32768, 8) // 8 MB / 8-way / 32 B
	n := cfg.NumArbiters
	var order uint64
	orderPtr := &order
	// The counter must outlive this frame; keep it on the machine via a
	// closure-held pointer.
	m.commits = nil
	sigFactory := sig.NewFactory(cfg.SigKind)
	if cfg.SigGeometry != nil && cfg.SigKind == sig.KindBloom {
		sigFactory = sig.NewTunableFactory(*cfg.SigGeometry)
	}
	for i := 0; i < n; i++ {
		d := directory.New(i, n, m.eng, m.net, m.st, l2)
		d.MaxEntries = cfg.DirCacheEntries
		d.SigFactory = sigFactory
		m.dirs = append(m.dirs, d)
		a := arbiter.New(i, m.eng, m.net, m.st, orderPtr)
		a.Faults = cfg.Faults
		m.arbs = append(m.arbs, a)
		// Arbiter i is co-located with directory i (Figure 7(b)).
		dd := d
		a.ForwardW = func(tok arbiter.Token, proc int, w sig.Signature, trueW *lineset.Set) {
			dd.ProcessCommit(&directory.Commit{Tok: tok, Proc: proc, W: w, TrueW: trueW})
		}
		aa := a
		d.OnDone = func(tok arbiter.Token) { aa.Done(tok) }
	}
	if n > 1 {
		m.garb = arbiter.NewGArbiter(m.eng, m.net, m.st, m.arbs)
	}
	m.env = m.buildEnv()
	return m
}

func (m *machine) dirFor(l mem.Line) *directory.Directory {
	return m.dirs[arbiter.RangeOf(l, len(m.dirs))]
}

func (m *machine) buildEnv() *proc.Env {
	factory := sig.NewFactory(m.cfg.SigKind)
	if m.cfg.SigGeometry != nil && m.cfg.SigKind == sig.KindBloom {
		factory = sig.NewTunableFactory(*m.cfg.SigGeometry)
	}
	env := &proc.Env{
		Eng:    m.eng,
		Net:    m.net,
		St:     m.st,
		Mem:    m.memry,
		Pages:  m.pages,
		Sigs:   factory,
		NProcs: m.cfg.Procs,
		Faults: m.cfg.Faults,
	}
	// The directory internalizes the request hop and the reply delivery
	// through pooled transaction records, so these wrappers are plain
	// routing — no per-miss closures.
	env.ReadLine = func(p int, l mem.Line, excl bool, done func(int)) {
		m.dirFor(l).Read(p, l, excl, done)
	}
	env.WritebackLine = func(p int, l mem.Line, drop bool) {
		m.dirFor(l).Writeback(p, l, drop)
	}
	env.Commit = m.routeCommit
	env.PrivCommit = func(p int, w sig.Signature, trueW *lineset.Set) {
		var sent [64]bool
		trueW.ForEach(func(l mem.Line) {
			idx := arbiter.RangeOf(l, len(m.dirs))
			if sent[idx] {
				return
			}
			sent[idx] = true
			d := m.dirs[idx]
			m.net.Send(stats.CatWrSig, network.SigBytes, func() {
				d.ProcessPrivCommit(&directory.Commit{Proc: p, W: w, TrueW: trueW})
			})
		})
	}
	env.PreArbitrate = func(p int, granted func()) {
		m.net.Send(stats.CatOther, network.CtrlBytes, func() {
			m.arbs[0].PreArbitrate(p, func() {
				m.net.Send(stats.CatOther, network.CtrlBytes, granted)
			})
		})
	}
	env.EndPreArbitrate = func(p int) {
		m.net.Send(stats.CatOther, network.CtrlBytes, func() {
			m.arbs[0].EndPreArbitration(p)
		})
	}
	return env
}

// routeCommit translates a processor commit request into arbitration:
// straight to the single owning arbiter, or through the G-arbiter when the
// chunk spans several address ranges (§4.2.3).
func (m *machine) routeCommit(req *proc.CommitReq) {
	areq := &arbiter.Request{
		Proc:  req.Proc,
		W:     req.W,
		R:     req.R,
		TrueW: req.TrueW,
		Reply: req.Reply,
	}
	if req.R != nil {
		// R travels with the request (no RSig optimization).
		m.net.Account(stats.CatRdSig, network.SigBytes)
	}
	if req.FetchR != nil {
		areq.FetchR = func(cb func(sig.Signature)) {
			// Arbiter → processor → arbiter round trip for R.
			m.net.Send(stats.CatOther, network.CtrlBytes, func() {
				req.FetchR(func(r sig.Signature) {
					m.net.Send(stats.CatRdSig, network.SigBytes, func() { cb(r) })
				})
			})
		}
	}
	// An empty W signature compresses to nothing: the permission-to-commit
	// request is a plain control message.
	wBytes := network.SigBytes
	if req.W.Empty() {
		wBytes = network.CtrlBytes
	}
	if len(m.arbs) == 1 {
		m.net.Send(stats.CatWrSig, wBytes, func() { m.arbs[0].Request(areq) })
		return
	}
	ranges := arbiter.RangesOf(append(req.RSets, req.WSets...), len(m.arbs))
	if len(ranges) == 1 {
		m.net.Send(stats.CatWrSig, wBytes, func() { m.arbs[ranges[0]].Request(areq) })
		return
	}
	// Multi-range: the G-arbiter needs R upfront.
	if areq.R == nil {
		areq.FetchR(func(r sig.Signature) {
			areq.R = r
			m.net.Send(stats.CatWrSig, network.SigBytes, func() { m.garb.Request(areq, ranges) })
		})
		return
	}
	m.net.Send(stats.CatWrSig, network.SigBytes, func() { m.garb.Request(areq, ranges) })
}

func (m *machine) addProc(cfg Config, id int, ins []workload.Instr) {
	par := proc.DefaultParams()
	if cfg.ChunkSize > 0 {
		par.ChunkSize = cfg.ChunkSize
	}
	if cfg.MaxChunks > 0 {
		par.MaxChunks = cfg.MaxChunks
	}
	switch cfg.Model {
	case ModelBulk:
		opts := proc.Opts{
			RSigOpt:         cfg.RSigOpt,
			Dypvt:           cfg.Dypvt,
			Stpvt:           cfg.Stpvt,
			PreArbThreshold: 6,
		}
		p := proc.NewBulkProc(id, m.env, par, opts, ins)
		onCommit := func(ch *chunk.Chunk) {
			if cfg.CheckSC {
				m.commits = append(m.commits, ch)
			}
			if m.witness != nil {
				// OnCommit fires at the arbiter's grant event, so chunks
				// arrive here in global commit order — exactly the
				// serialization the witness checker validates.
				m.witness.CommitChunk(ch)
			}
			if cfg.RecordTimeline {
				m.timeline = append(m.timeline, TimelineEvent{
					At: uint64(m.eng.Now()), Proc: ch.Proc, Kind: EvCommit,
					Order: ch.CommitOrder, Instrs: ch.Executed,
				})
			}
		}
		if cfg.CheckSC || cfg.RecordTimeline || m.witness != nil {
			p.OnCommit = onCommit
		}
		if cfg.RecordTimeline {
			pid := id
			p.OnSquash = func(victims, instrs int, genuine bool) {
				m.timeline = append(m.timeline, TimelineEvent{
					At: uint64(m.eng.Now()), Proc: pid, Kind: EvSquash,
					Victims: victims, Instrs: instrs, Genuine: genuine,
				})
			}
			p.OnPreArb = func() {
				m.timeline = append(m.timeline, TimelineEvent{
					At: uint64(m.eng.Now()), Proc: pid, Kind: EvPreArb,
				})
			}
		}
		m.bulkProcs = append(m.bulkProcs, p)
	case ModelSC:
		m.addConvProc(id, par, proc.SC, ins)
	case ModelRC:
		m.addConvProc(id, par, proc.RC, ins)
	case ModelSCpp:
		m.addConvProc(id, par, proc.SCpp, ins)
	default:
		panic("core: unknown model")
	}
}

func (m *machine) addConvProc(id int, par proc.Params, model proc.Model, ins []workload.Instr) {
	p := proc.NewConvProc(id, m.env, par, model, ins)
	if m.witness != nil {
		pid := id
		p.OnAccess = func(po uint64, store bool, a mem.Addr, v uint64, fwd bool) {
			m.witness.Access(pid, po, store, a, v, fwd)
		}
	}
	m.convProcs = append(m.convProcs, p)
}

func (m *machine) wirePorts() {
	var ports []directory.CachePort
	for _, p := range m.bulkProcs {
		ports = append(ports, p)
	}
	for _, p := range m.convProcs {
		ports = append(ports, p)
	}
	for _, d := range m.dirs {
		d.AttachPorts(ports)
	}
}

func (m *machine) allDone() bool {
	for _, p := range m.bulkProcs {
		if !p.Finished() {
			return false
		}
	}
	for _, p := range m.convProcs {
		if !p.Finished() {
			return false
		}
	}
	return true
}

func (m *machine) run(cfg Config) (*Result, error) {
	for _, p := range m.bulkProcs {
		p.Start()
	}
	for _, p := range m.convProcs {
		p.Start()
	}
	// Warmup exclusion: once the committed-instruction count passes the
	// warmup fraction, snapshot the counters; the final stats subtract the
	// snapshot so Table 3/4 metrics describe steady state only.
	var warmBase *stats.Stats
	var warmCycle uint64
	if cfg.WarmupFrac > 0 {
		target := uint64(cfg.WarmupFrac * float64(cfg.Work) * float64(cfg.Procs))
		var poll func()
		poll = func() {
			if m.allDone() {
				return
			}
			if m.st.CommittedInstrs >= target {
				snap := m.st.Snapshot()
				warmBase = &snap
				warmCycle = uint64(m.eng.Now())
				return
			}
			m.eng.After(5000, poll)
		}
		m.eng.After(5000, poll)
	}
	if cfg.Watchdog {
		startWatchdog(m, cfg.WatchdogWindow)
	}
	m.eng.Run(func() bool { return m.watchdogErr != nil || m.allDone() })
	if m.watchdogErr != nil {
		return nil, fmt.Errorf("core: %s/%s: %w", cfg.Model, cfg.App, m.watchdogErr)
	}
	if !m.allDone() {
		return nil, fmt.Errorf("core: %s/%s deadlocked at cycle %d", cfg.Model, cfg.App, m.eng.Now())
	}
	res := &Result{Config: cfg, Stats: m.st}
	if cfg.Faults != nil {
		res.FaultCounters = cfg.Faults.Counters()
	}
	var last sim.Time
	for _, p := range m.bulkProcs {
		res.PerProc = append(res.PerProc, uint64(p.DoneAt()))
		if p.DoneAt() > last {
			last = p.DoneAt()
		}
	}
	for _, p := range m.convProcs {
		res.PerProc = append(res.PerProc, uint64(p.DoneAt()))
		if p.DoneAt() > last {
			last = p.DoneAt()
		}
	}
	res.Cycles = uint64(last)
	m.st.Cycles = res.Cycles
	m.st.CloseWList(res.Cycles)
	if warmBase != nil {
		m.st.SubtractBase(warmBase, warmCycle)
	}
	if cfg.CheckSC && cfg.Model == ModelBulk {
		res.SCViolations = verifySC(m.commits)
		res.ChunksChecked = len(m.commits)
		res.Commits = m.commits
	}
	if m.witness != nil {
		res.WitnessViolations = m.witness.Strings()
		res.WitnessChunks = m.witness.Chunks()
		res.WitnessAccesses = m.witness.Accesses()
	}
	if cfg.RecordTimeline {
		sortTimeline(m.timeline)
		res.Timeline = m.timeline
	}
	return res, nil
}

// verifySC replays every committed chunk in global commit order and checks
// that each logged load observed exactly the value the sequential replay
// produces. This validates chunk atomicity, isolation, per-processor
// order, forwarding, squash recovery and the private-data optimizations
// end to end: any hole would surface as a mismatched load.
func verifySC(commits []*chunk.Chunk) []string {
	sorted := make([]*chunk.Chunk, len(commits))
	copy(sorted, commits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CommitOrder < sorted[j].CommitOrder })
	replay := make(map[mem.Addr]uint64)
	var bad []string
	perProc := make(map[int]uint64)
	for _, ch := range sorted {
		if ch.CommitOrder <= perProc[ch.Proc] && perProc[ch.Proc] != 0 {
			bad = append(bad, fmt.Sprintf("proc %d chunk %d committed out of per-processor order", ch.Proc, ch.Seq))
		}
		perProc[ch.Proc] = ch.CommitOrder
		for _, rec := range ch.Log {
			a := rec.Addr.Align()
			if rec.IsStore {
				replay[a] = rec.Value
				continue
			}
			if got := replay[a]; got != rec.Value {
				bad = append(bad, fmt.Sprintf(
					"proc %d chunk %d (order %d): load %#x observed %d, replay has %d",
					ch.Proc, ch.Seq, ch.CommitOrder, uint64(rec.Addr), rec.Value, got))
				if len(bad) >= 20 {
					return bad
				}
			}
		}
	}
	return bad
}

package core

import (
	"strings"
	"testing"

	"bulksc/internal/mem"
	"bulksc/internal/workload"
)

// litmusOutcome extracts the committed values the reader threads observed
// for the given addresses, from the replay logs, in per-thread program
// order.
func litmusOutcome(res *Result, proc int, addrs []mem.Addr) []uint64 {
	var vals []uint64
	for _, ch := range res.Commits {
		if ch.Proc != proc {
			continue
		}
		for _, rec := range ch.Log {
			if rec.IsStore {
				continue
			}
			for _, a := range addrs {
				if rec.Addr.Align() == a.Align() {
					vals = append(vals, rec.Value)
				}
			}
		}
	}
	return vals
}

func runLitmus(t *testing.T, model ModelKind, prog *workload.Program, seed int64) *Result {
	t.Helper()
	cfg := Config{
		Model:       model,
		Procs:       len(prog.Threads),
		Work:        1000,
		Seed:        seed,
		ChunkSize:   1000,
		MaxChunks:   2,
		RSigOpt:     true,
		Dypvt:       true,
		NumArbiters: 1,
		CheckSC:     model == ModelBulk,
		Witness:     true,
	}
	res, err := RunProgram(cfg, prog)
	if err != nil {
		t.Fatalf("litmus run failed: %v", err)
	}
	// The witness checker is an unconditional oracle for the SC-claiming
	// models; RC and SC++ genuinely relax store→load order, so their
	// findings are informative, not failures.
	if model == ModelBulk || model == ModelSC {
		if len(res.WitnessViolations) > 0 {
			t.Fatalf("%s witness violations: %v", model, res.WitnessViolations)
		}
	}
	return res
}

// TestLitmusSBBulkSC: under BulkSC, the store-buffering relaxation
// (r0 = r1 = 0) must never be observable, over many timing seeds and
// paddings. Store values are 1 in this encoding? — stores write tokens;
// "zero" means the load observed the initial value.
func TestLitmusSBBulkSC(t *testing.T) {
	for pad := 0; pad < 30; pad += 3 {
		for seed := int64(1); seed <= 5; seed++ {
			prog := workload.StoreBuffering(pad)
			res := runLitmus(t, ModelBulk, prog, seed)
			if len(res.SCViolations) > 0 {
				t.Fatalf("pad=%d seed=%d: %s", pad, seed, res.SCViolations[0])
			}
			r0 := litmusOutcome(res, 0, []mem.Addr{workload.LitmusY})
			r1 := litmusOutcome(res, 1, []mem.Addr{workload.LitmusX})
			if len(r0) == 0 || len(r1) == 0 {
				t.Fatalf("pad=%d seed=%d: missing observations", pad, seed)
			}
			if r0[0] == 0 && r1[0] == 0 {
				t.Fatalf("pad=%d seed=%d: SB relaxation (0,0) observed under BulkSC", pad, seed)
			}
		}
	}
}

// TestLitmusSBRCWeak: the RC baseline must be able to exhibit the SB
// relaxation for at least one timing — otherwise it is not modeling a
// relaxed machine and the paper's comparison would be vacuous. The witness
// checker makes the relaxation directly observable: RC performs loads at
// dispatch while stores drain from the buffer, so the drained store arrives
// at the witness after younger loads — a program-order violation.
func TestLitmusSBRCWeak(t *testing.T) {
	relaxed := false
	for pad := 0; pad < 30 && !relaxed; pad += 3 {
		for seed := int64(1); seed <= 5; seed++ {
			prog := workload.StoreBuffering(pad)
			res := runLitmus(t, ModelRC, prog, seed)
			for _, v := range res.WitnessViolations {
				if strings.Contains(v, "program-order") {
					relaxed = true
				}
			}
			if relaxed {
				break
			}
		}
	}
	if !relaxed {
		t.Fatal("RC never exhibited the store-buffer relaxation; the baseline is not relaxed")
	}
}

// TestLitmusSBSCBaselineStrict: the serialized SC baseline must never trip
// the witness checker — perform order embeds program order by construction.
// (runLitmus asserts the absence of witness violations for ModelSC.)
func TestLitmusSBSCBaselineStrict(t *testing.T) {
	for pad := 0; pad < 30; pad += 6 {
		for seed := int64(1); seed <= 3; seed++ {
			res := runLitmus(t, ModelSC, workload.StoreBuffering(pad), seed)
			if res.WitnessAccesses == 0 {
				t.Fatalf("pad=%d seed=%d: witness checker observed no accesses", pad, seed)
			}
		}
	}
}

// TestLitmusMPBulkSC: message passing — if the reader sees the flag (y),
// it must see the data (x).
func TestLitmusMPBulkSC(t *testing.T) {
	for pad := 0; pad < 40; pad += 2 {
		for seed := int64(1); seed <= 3; seed++ {
			prog := workload.MessagePassing(pad)
			res := runLitmus(t, ModelBulk, prog, seed)
			if len(res.SCViolations) > 0 {
				t.Fatalf("pad=%d seed=%d: %s", pad, seed, res.SCViolations[0])
			}
			obs := litmusOutcome(res, 1, []mem.Addr{workload.LitmusY, workload.LitmusX})
			if len(obs) < 2 {
				t.Fatalf("pad=%d seed=%d: missing observations", pad, seed)
			}
			// Program order on T1: load y then load x.
			if obs[0] != 0 && obs[1] == 0 {
				t.Fatalf("pad=%d seed=%d: MP violation: saw flag but not data", pad, seed)
			}
		}
	}
}

// TestLitmusIRIWBulkSC: independent readers must not observe the two
// writes in opposite orders.
func TestLitmusIRIWBulkSC(t *testing.T) {
	for pad := 0; pad < 40; pad += 4 {
		for seed := int64(1); seed <= 3; seed++ {
			prog := workload.IRIW(pad)
			res := runLitmus(t, ModelBulk, prog, seed)
			if len(res.SCViolations) > 0 {
				t.Fatalf("pad=%d seed=%d: %s", pad, seed, res.SCViolations[0])
			}
			t2 := litmusOutcome(res, 2, []mem.Addr{workload.LitmusX, workload.LitmusY})
			t3 := litmusOutcome(res, 3, []mem.Addr{workload.LitmusY, workload.LitmusX})
			if len(t2) < 2 || len(t3) < 2 {
				t.Fatalf("pad=%d seed=%d: missing observations", pad, seed)
			}
			// T2: r0=x, r1=y. T3: r2=y, r3=x. Forbidden: x before y at T2
			// while y before x at T3.
			if t2[0] != 0 && t2[1] == 0 && t3[0] != 0 && t3[1] == 0 {
				t.Fatalf("pad=%d seed=%d: IRIW violation under BulkSC", pad, seed)
			}
		}
	}
}

// TestLitmusLockMutualExclusion: chunked test-and-set must provide mutual
// exclusion — the two counters protected by the lock stay in lockstep.
func TestLitmusLockMutualExclusion(t *testing.T) {
	for _, chunkSize := range []int{1000, 200, 64} {
		for seed := int64(1); seed <= 3; seed++ {
			prog := workload.DekkerLock(12, 4)
			cfg := DefaultConfig("unused")
			cfg.App = ""
			cfg.Procs = len(prog.Threads)
			cfg.ChunkSize = chunkSize
			cfg.Seed = seed
			cfg.Work = 0
			res, err := RunProgram(cfg, prog)
			if err != nil {
				t.Fatalf("chunk=%d seed=%d: %v", chunkSize, seed, err)
			}
			if len(res.SCViolations) > 0 {
				t.Fatalf("chunk=%d seed=%d: %s", chunkSize, seed, res.SCViolations[0])
			}
		}
	}
}

// TestLitmusCoherenceOrder: all committed observations of a single hot
// word must be consistent with one total order (validated by the replay
// checker).
func TestLitmusCoherenceOrder(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		prog := workload.CoherenceOrder(40)
		res := runLitmus(t, ModelBulk, prog, seed)
		if len(res.SCViolations) > 0 {
			t.Fatalf("seed=%d: %s", seed, res.SCViolations[0])
		}
	}
}

// TestLitmusSCBaselineSB: the SC baseline forbids the SB relaxation by
// construction (serialized perform order); validate via the architectural
// memory: after the run, both stores are in memory, and serialization is
// engine-enforced. This is a smoke check that SC litmus runs complete.
func TestLitmusSCBaselineSB(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		prog := workload.StoreBuffering(8)
		res := runLitmus(t, ModelSC, prog, seed)
		if res.Cycles == 0 {
			t.Fatal("SC litmus did not run")
		}
	}
}

// TestLitmusLBBulkSC: the load-buffering relaxation (both loads observing
// the other thread's store) must never commit.
func TestLitmusLBBulkSC(t *testing.T) {
	for pad := 0; pad < 24; pad += 3 {
		for seed := int64(1); seed <= 3; seed++ {
			prog := workload.LoadBuffering(pad)
			res := runLitmus(t, ModelBulk, prog, seed)
			if len(res.SCViolations) > 0 {
				t.Fatalf("pad=%d seed=%d: %s", pad, seed, res.SCViolations[0])
			}
			r0 := litmusOutcome(res, 0, []mem.Addr{workload.LitmusX})
			r1 := litmusOutcome(res, 1, []mem.Addr{workload.LitmusY})
			if len(r0) > 0 && len(r1) > 0 && r0[0] != 0 && r1[0] != 0 {
				t.Fatalf("pad=%d seed=%d: LB relaxation observed", pad, seed)
			}
		}
	}
}

// TestLitmusWRCBulkSC: causality must be transitive under SC.
func TestLitmusWRCBulkSC(t *testing.T) {
	for pad := 0; pad < 24; pad += 4 {
		for seed := int64(1); seed <= 3; seed++ {
			prog := workload.WRC(pad)
			res := runLitmus(t, ModelBulk, prog, seed)
			if len(res.SCViolations) > 0 {
				t.Fatalf("pad=%d seed=%d: %s", pad, seed, res.SCViolations[0])
			}
			t1 := litmusOutcome(res, 1, []mem.Addr{workload.LitmusX})
			t2 := litmusOutcome(res, 2, []mem.Addr{workload.LitmusY, workload.LitmusX})
			if len(t1) > 0 && len(t2) >= 2 && t1[0] != 0 && t2[0] != 0 && t2[1] == 0 {
				t.Fatalf("pad=%d seed=%d: WRC causality violated", pad, seed)
			}
		}
	}
}

// TestLitmusCoRRBulkSC: a reader must never see a value then an older one.
func TestLitmusCoRRBulkSC(t *testing.T) {
	for pad := 0; pad < 24; pad += 2 {
		for seed := int64(1); seed <= 3; seed++ {
			prog := workload.CoRR(pad)
			res := runLitmus(t, ModelBulk, prog, seed)
			if len(res.SCViolations) > 0 {
				t.Fatalf("pad=%d seed=%d: %s", pad, seed, res.SCViolations[0])
			}
			obs := litmusOutcome(res, 1, []mem.Addr{workload.LitmusX})
			if len(obs) >= 2 && obs[0] != 0 && obs[1] == 0 {
				t.Fatalf("pad=%d seed=%d: CoRR violated (saw new then old)", pad, seed)
			}
		}
	}
}

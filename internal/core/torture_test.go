package core

import (
	"fmt"
	"strings"
	"testing"

	"bulksc/internal/fault"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
	"bulksc/internal/workload"
)

// This file holds the litmus torture matrix: every litmus kernel × every
// machine model × every terminating fault campaign × several seeds, with
// the SC-witness checker on everywhere and the replay checker on for
// BulkSC. The contract:
//
//   - forbidden outcomes stay forbidden for every SC-claiming model (the
//     SC baseline and all four BulkSC variants) under every campaign —
//     faults may cost cycles, never correctness;
//   - the RC baseline's genuine store→load relaxation remains observable
//     under every campaign — fault injection must not accidentally
//     serialize the relaxed baseline into SC;
//   - every run under a terminating campaign finishes without tripping
//     the liveness watchdog.

// tortureModels lists the machine models of the matrix by variant key.
var tortureModels = []string{"sc", "rc", "sc++", "base", "dypvt", "exact", "stpvt"}

// tortureCampaigns lists the fault campaigns of the matrix: every
// terminating catalog campaign (livelock is watchdog-only by design and
// has its own test).
func tortureCampaigns() []string {
	var out []string
	for _, c := range fault.Catalog() {
		if c.Terminating {
			out = append(out, c.Name)
		}
	}
	return out
}

// tortureKernel is one litmus kernel plus its forbidden-outcome check.
// check runs only for BulkSC variants (it needs the committed chunk logs);
// the SC baseline is gated by the witness checker instead.
type tortureKernel struct {
	name string
	prog func(seed int64) *workload.Program
	// check inspects a BulkSC run's commit logs for the kernel's
	// forbidden outcome and returns "" when SC held.
	check func(res *Result) string
}

func tortureKernels() []tortureKernel {
	pad := func(seed int64) int { return int(seed%4) * 3 } // vary padding with the seed
	return []tortureKernel{
		{
			name: "SB",
			prog: func(s int64) *workload.Program { return workload.StoreBuffering(pad(s)) },
			check: func(res *Result) string {
				r0 := litmusOutcome(res, 0, []mem.Addr{workload.LitmusY})
				r1 := litmusOutcome(res, 1, []mem.Addr{workload.LitmusX})
				if len(r0) == 0 || len(r1) == 0 {
					return "missing observations"
				}
				if r0[0] == 0 && r1[0] == 0 {
					return "SB relaxation (0,0) committed"
				}
				return ""
			},
		},
		{
			name: "MP",
			prog: func(s int64) *workload.Program { return workload.MessagePassing(pad(s)) },
			check: func(res *Result) string {
				obs := litmusOutcome(res, 1, []mem.Addr{workload.LitmusY, workload.LitmusX})
				if len(obs) < 2 {
					return "missing observations"
				}
				if obs[0] != 0 && obs[1] == 0 {
					return "MP violation: saw flag but not data"
				}
				return ""
			},
		},
		{
			name: "LB",
			prog: func(s int64) *workload.Program { return workload.LoadBuffering(pad(s)) },
			check: func(res *Result) string {
				r0 := litmusOutcome(res, 0, []mem.Addr{workload.LitmusX})
				r1 := litmusOutcome(res, 1, []mem.Addr{workload.LitmusY})
				if len(r0) > 0 && len(r1) > 0 && r0[0] != 0 && r1[0] != 0 {
					return "LB relaxation committed"
				}
				return ""
			},
		},
		{
			name: "IRIW",
			prog: func(s int64) *workload.Program { return workload.IRIW(pad(s)) },
			check: func(res *Result) string {
				t2 := litmusOutcome(res, 2, []mem.Addr{workload.LitmusX, workload.LitmusY})
				t3 := litmusOutcome(res, 3, []mem.Addr{workload.LitmusY, workload.LitmusX})
				if len(t2) < 2 || len(t3) < 2 {
					return "missing observations"
				}
				if t2[0] != 0 && t2[1] == 0 && t3[0] != 0 && t3[1] == 0 {
					return "IRIW violation: writes observed in opposite orders"
				}
				return ""
			},
		},
		{
			name: "WRC",
			prog: func(s int64) *workload.Program { return workload.WRC(pad(s)) },
			check: func(res *Result) string {
				t1 := litmusOutcome(res, 1, []mem.Addr{workload.LitmusX})
				t2 := litmusOutcome(res, 2, []mem.Addr{workload.LitmusY, workload.LitmusX})
				if len(t1) > 0 && len(t2) >= 2 && t1[0] != 0 && t2[0] != 0 && t2[1] == 0 {
					return "WRC causality violated"
				}
				return ""
			},
		},
		{
			name: "CoRR",
			prog: func(s int64) *workload.Program { return workload.CoRR(pad(s)) },
			check: func(res *Result) string {
				obs := litmusOutcome(res, 1, []mem.Addr{workload.LitmusX})
				if len(obs) >= 2 && obs[0] != 0 && obs[1] == 0 {
					return "CoRR violated: saw new value then old"
				}
				return ""
			},
		},
		{
			name: "CoherenceOrder",
			prog: func(s int64) *workload.Program { return workload.CoherenceOrder(30) },
			// Replay checker covers the total-order obligation.
			check: func(res *Result) string { return "" },
		},
		{
			name: "Dekker",
			prog: func(s int64) *workload.Program { return workload.DekkerLock(8, 4) },
			// Replay checker covers lock-protected counter lockstep.
			check: func(res *Result) string { return "" },
		},
	}
}

// tortureConfig builds the machine config for one matrix cell.
func tortureConfig(variant string, nthreads int, seed int64) Config {
	cfg := Config{
		Procs:       nthreads,
		Work:        1000,
		Seed:        seed,
		ChunkSize:   1000,
		MaxChunks:   2,
		RSigOpt:     true,
		NumArbiters: 1,
		Witness:     true,
		Watchdog:    true, // a terminating campaign must never trip it
	}
	switch variant {
	case "sc":
		cfg.Model = ModelSC
	case "rc":
		cfg.Model = ModelRC
	case "sc++":
		cfg.Model = ModelSCpp
	case "base":
		cfg.Model = ModelBulk
	case "dypvt":
		cfg.Model = ModelBulk
		cfg.Dypvt = true
	case "exact":
		cfg.Model = ModelBulk
		cfg.Dypvt = true
		cfg.SigKind = sig.KindExact
	case "stpvt":
		cfg.Model = ModelBulk
		cfg.Stpvt = true
	default:
		panic("unknown torture variant " + variant)
	}
	cfg.CheckSC = cfg.Model == ModelBulk
	return cfg
}

func isSCClaiming(variant string) bool { return variant != "rc" && variant != "sc++" }

// TestLitmusTortureMatrix runs the full kernel × model × campaign × seed
// matrix: 8 × 7 × 5 × 2 = 560 cases. Skipped under -short; scripts/check.sh
// runs it under the race detector as a dedicated stage.
func TestLitmusTortureMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("560-case torture matrix in -short mode")
	}
	seeds := []int64{1, 4}
	cases := 0
	for _, k := range tortureKernels() {
		k := k
		for _, variant := range tortureModels {
			variant := variant
			t.Run(k.name+"/"+variant, func(t *testing.T) {
				t.Parallel()
				for _, campaign := range tortureCampaigns() {
					for _, seed := range seeds {
						label := fmt.Sprintf("%s/%s/%s/seed=%d", k.name, variant, campaign, seed)
						prog := k.prog(seed)
						cfg := tortureConfig(variant, len(prog.Threads), seed)
						cfg.Faults = fault.NewPlan(fault.MustGet(campaign),
							int64(len(label))*1000003+seed) // deterministic per-cell seed
						res, err := RunProgram(cfg, prog)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if cfg.Model == ModelBulk {
							if len(res.SCViolations) > 0 {
								t.Fatalf("%s: replay checker: %s", label, res.SCViolations[0])
							}
							if msg := k.check(res); msg != "" {
								t.Fatalf("%s: forbidden outcome: %s", label, msg)
							}
						}
						if isSCClaiming(variant) && len(res.WitnessViolations) > 0 {
							t.Fatalf("%s: witness: %s", label, res.WitnessViolations[0])
						}
					}
				}
			})
			cases += len(tortureCampaigns()) * len(seeds)
		}
	}
	if cases < 150 {
		t.Fatalf("torture matrix shrank to %d cases; the contract requires ≥150", cases)
	}
}

// TestRCRelaxationSurvivesFaults: under every terminating campaign, the
// RC baseline must still be able to exhibit the store-buffer relaxation
// for some (pad, seed) — fault injection must not accidentally serialize
// the relaxed baseline.
func TestRCRelaxationSurvivesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("relaxation sweep in -short mode")
	}
	for _, campaign := range tortureCampaigns() {
		campaign := campaign
		t.Run(campaign, func(t *testing.T) {
			t.Parallel()
			relaxed := false
			for pad := 0; pad < 30 && !relaxed; pad += 3 {
				for seed := int64(1); seed <= 5 && !relaxed; seed++ {
					prog := workload.StoreBuffering(pad)
					cfg := tortureConfig("rc", len(prog.Threads), seed)
					cfg.Faults = fault.NewPlan(fault.MustGet(campaign), seed*7919+int64(pad))
					res, err := RunProgram(cfg, prog)
					if err != nil {
						t.Fatalf("pad=%d seed=%d: %v", pad, seed, err)
					}
					for _, v := range res.WitnessViolations {
						if strings.Contains(v, "program-order") {
							relaxed = true
						}
					}
				}
			}
			if !relaxed {
				t.Errorf("RC never exhibited the SB relaxation under campaign %s", campaign)
			}
		})
	}
}

// TestLitmusTorture64Proc re-runs the kernel × model matrix on a 64-proc
// machine for one seed: each kernel is padded with private-stack filler
// threads (PadThreads), so the litmus threads race under real big-machine
// pressure — 8 interleaved arbiters, the sharded G-arbiter, and a directory
// whose sharer sets overflow the inline pointers. Forbidden outcomes must
// stay forbidden with the machine scaled up.
func TestLitmusTorture64Proc(t *testing.T) {
	if testing.Short() {
		t.Skip("64-proc torture in -short mode")
	}
	const procs = 64
	const seed = int64(3)
	for _, k := range tortureKernels() {
		k := k
		for _, variant := range tortureModels {
			variant := variant
			t.Run(k.name+"/"+variant, func(t *testing.T) {
				t.Parallel()
				prog := workload.PadThreads(k.prog(seed), procs, 400, seed)
				if len(prog.Threads) != procs {
					t.Fatalf("padded to %d threads, want %d", len(prog.Threads), procs)
				}
				cfg := tortureConfig(variant, procs, seed)
				cfg.NumArbiters = DefaultArbitersFor(procs)
				cfg.GArbShards = DefaultGArbShardsFor(cfg.NumArbiters)
				res, err := RunProgram(cfg, prog)
				if err != nil {
					t.Fatalf("%s/%s: %v", k.name, variant, err)
				}
				if cfg.Model == ModelBulk {
					if len(res.SCViolations) > 0 {
						t.Fatalf("%s/%s: replay checker: %s", k.name, variant, res.SCViolations[0])
					}
					if msg := k.check(res); msg != "" {
						t.Fatalf("%s/%s: forbidden outcome: %s", k.name, variant, msg)
					}
				}
				if isSCClaiming(variant) && len(res.WitnessViolations) > 0 {
					t.Fatalf("%s/%s: witness: %s", k.name, variant, res.WitnessViolations[0])
				}
			})
		}
	}
}

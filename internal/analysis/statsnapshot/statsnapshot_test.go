package statsnapshot_test

import (
	"testing"

	"bulksc/internal/analysis/linttest"
	"bulksc/internal/analysis/statsnapshot"
)

func TestStatSnapshot(t *testing.T) {
	linttest.Run(t, "testdata/statfix", statsnapshot.Analyzer)
}

module statfix

go 1.22

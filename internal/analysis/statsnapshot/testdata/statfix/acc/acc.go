// Package acc defines the accumulator type the fixture's other package
// misuses. The defining package manages its own copies and is exempt.
package acc

// Stats carries a running time-weighted integral; a struct copy outside
// this package silently desynchronizes.
//
//sim:accumulator
type Stats struct {
	Count    uint64
	integral uint64
	lastT    uint64
}

// Advance accrues the integral up to time t.
func (s *Stats) Advance(t uint64) {
	s.integral += (t - s.lastT) * s.Count
	s.lastT = t
}

// Snapshot settles the integral and returns a deliberate copy — the
// sanctioned way to read the accumulator's value.
func (s *Stats) Snapshot() Stats {
	cp := *s
	return cp
}

// Package use consumes acc.Stats from outside its defining package.
package use

import "statfix/acc"

type engine struct {
	st acc.Stats // want `declares a value of accumulator type acc\.Stats`
}

var global acc.Stats // want `declares a value of accumulator type acc\.Stats`

func byValue(s acc.Stats) uint64 { // want `declares a value of accumulator type acc\.Stats`
	return s.Count
}

func copiesOut(p *acc.Stats) uint64 {
	dup := *p // want `copies accumulator acc\.Stats out of a pointer`
	return dup.Count
}

func passesByValue(p *acc.Stats) uint64 {
	s := *p           // want `copies accumulator acc\.Stats out of a pointer`
	return byValue(s) // want `passes accumulator acc\.Stats by value`
}

// sanctioned shows the allowed shapes: share a pointer, take deliberate
// copies through Snapshot (a call result is already a copy), and store
// *into* the accumulator.
func sanctioned(p *acc.Stats) uint64 {
	var q *acc.Stats = p
	q.Advance(100)
	snap := p.Snapshot()
	*q = acc.Stats{}
	return snap.Count
}

// Package statsnapshot implements the simlint pass that protects running
// accumulators from being copied. stats.Stats carries time-weighted
// integrals (the W-list pending integral, the warmup window bookkeeping)
// whose private fields make a struct copy silently wrong: the copy's
// integral stops advancing while the original keeps running, and PR 2's
// "impossible >100% NonEmptyWListPct" bug came from exactly such a stale
// snapshot being subtracted from live counters.
//
// Types opt in by carrying a `//sim:accumulator` directive on their type
// declaration. Outside the defining package the pass then flags:
//
//   - declaring a variable, field, parameter or result of the bare value
//     type (declare *T instead — the accumulator is shared state);
//   - copying a value out of a pointer (*p used as a value);
//   - passing a value of the type to a call (the callee receives a stale
//     copy).
//
// Calls that *return* the type by value (e.g. stats.Stats.Snapshot) are
// the sanctioned way to take a deliberate copy and are not flagged at the
// call site; assigning the result to a fresh variable is fine because the
// call result is already a copy.
package statsnapshot

import (
	"go/ast"
	"go/types"

	"bulksc/internal/analysis/lintkit"
)

// Directive marks a struct type as a running accumulator.
const Directive = "//sim:accumulator"

// Analyzer is the statsnapshot pass.
var Analyzer = &lintkit.Analyzer{
	Name: "statsnapshot",
	Doc: "flag struct copies of //sim:accumulator types (running integrals) " +
		"outside their defining package",
	Run: run,
}

func run(pass *lintkit.Pass) (interface{}, error) {
	accums := accumulatorTypes(pass)
	if len(accums) == 0 {
		return nil, nil
	}
	foreign := func(t types.Type) (*types.Named, bool) {
		named, ok := t.(*types.Named)
		if !ok || !accums[named.Obj()] {
			return nil, false
		}
		if named.Obj().Pkg() == pass.Pkg {
			return nil, false // the defining package manages its own copies
		}
		return named, true
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				// Covers struct fields, params, results and receivers.
				if t := pass.TypesInfo.TypeOf(n.Type); t != nil {
					if named, ok := foreign(t); ok {
						pass.Reportf(n.Type.Pos(),
							"declares a value of accumulator type %s (running integrals desynchronize when copied); declare *%s",
							typeName(named), typeName(named))
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					if t := pass.TypesInfo.TypeOf(n.Type); t != nil {
						if named, ok := foreign(t); ok {
							pass.Reportf(n.Type.Pos(),
								"declares a value of accumulator type %s (running integrals desynchronize when copied); declare *%s",
								typeName(named), typeName(named))
						}
					}
				}
			case *ast.StarExpr:
				// *p as a value: copies the accumulator out of its home.
				if t := pass.TypesInfo.TypeOf(n); t != nil {
					if named, ok := foreign(t); ok && !isAssignTarget(file, n) {
						pass.Reportf(n.Pos(),
							"copies accumulator %s out of a pointer; running integrals in the copy go stale",
							typeName(named))
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if _, ok := arg.(*ast.CallExpr); ok {
						continue // a call result is already a sanctioned copy
					}
					if _, ok := arg.(*ast.StarExpr); ok {
						continue // reported at the StarExpr
					}
					if t := pass.TypesInfo.TypeOf(arg); t != nil {
						if named, ok := foreign(t); ok {
							pass.Reportf(arg.Pos(),
								"passes accumulator %s by value; the callee receives a stale copy (pass *%s)",
								typeName(named), typeName(named))
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func typeName(n *types.Named) string {
	if pkg := n.Obj().Pkg(); pkg != nil {
		return pkg.Name() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}

// isAssignTarget reports whether star is the LHS of an assignment
// (*p = x stores into the accumulator; that is not a copy out).
func isAssignTarget(file *ast.File, star *ast.StarExpr) bool {
	target := false
	ast.Inspect(file, func(n ast.Node) bool {
		if target {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if lhs == ast.Expr(star) {
				target = true
			}
		}
		return true
	})
	return target
}

// accumulatorTypes collects every type object in the analyzed package or
// its transitive source-loaded dependencies whose declaration carries the
// accumulator directive.
func accumulatorTypes(pass *lintkit.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	scan := func(files []*ast.File, tpkg *types.Package, defs map[*ast.Ident]types.Object) {
		for _, file := range files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !lintkit.TypeAnnotated(gd, ts, Directive) {
						continue
					}
					if obj := defs[ts.Name]; obj != nil {
						out[obj] = true
					} else if tpkg != nil {
						if obj := tpkg.Scope().Lookup(ts.Name.Name); obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
	}
	scan(pass.Files, pass.Pkg, pass.TypesInfo.Defs)
	if pass.Program != nil {
		for _, dep := range pass.Program.Packages {
			if dep.Standard || dep.Types == pass.Pkg || dep.Types == nil {
				continue
			}
			var defs map[*ast.Ident]types.Object
			if dep.TypesInfo != nil {
				defs = dep.TypesInfo.Defs
			}
			scan(dep.Files, dep.Types, defs)
		}
	}
	return out
}

package hotfix

var fn func()

// coldPanic allocates only on an assertion path that panics: cold
// branches are exempt.
//
//sim:hotpath
func coldPanic(n int) {
	if n < 0 {
		p := &node{v: n}
		_ = p
		panic("negative")
	}
}

// appendToParam reuses caller-provided capacity (the AppendTo pattern).
//
//sim:hotpath
func appendToParam(dst []int, n int) []int {
	return append(dst, n)
}

// preallocated carries a reviewed suppression for the one-time make and
// appends into its explicit capacity.
//
//sim:hotpath
func preallocated(n int) int {
	//lint:alloc one-time setup allocation, amortized across the run
	s := make([]int, 0, 16)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return len(s)
}

// pointerPayload stores a pointer in the interface word: no boxing
// allocation.
//
//sim:hotpath
func pointerPayload(p *node) {
	sink = p
}

// staticClosure captures nothing: a static func value, no context
// allocation.
//
//sim:hotpath
func staticClosure() {
	fn = func() {}
}

// notHot is unannotated; the pass ignores it entirely.
func notHot() *node {
	s := make([]int, 3)
	return &node{v: s[0]}
}

package hotfix

type node struct {
	v int
}

var sink interface{}

//sim:hotpath
func escapeLit(n int) *node {
	return &node{v: n} // want `address of a composite literal`
}

//sim:hotpath
func callsNew() *node {
	return new(node) // want `calls new\(\)`
}

//sim:hotpath
func callsMake() []int {
	return make([]int, 8) // want `calls make\(\)`
}

//sim:hotpath
func freshAppend(n int) []int {
	var s []int
	s = append(s, n) // want `appends to fresh local slice "s"`
	return s
}

//sim:hotpath
func capturing(n int) func() int {
	return func() int { return n } // want `closure captures "n"`
}

//sim:hotpath
func boxesAssign(n int) {
	sink = n // want `converts non-pointer value of type int to interface`
}

func variadic(args ...interface{}) int { return len(args) }

//sim:hotpath
func boxesArg(n uint64) int {
	return variadic(n) // want `converts non-pointer value of type uint64 to interface`
}

// Package hotpathalloc implements the simlint pass that keeps the
// simulator's annotated hot paths allocation-free. PR 1 rebuilt the event
// engine, line sets, signatures and chunk commit pipeline around a
// zero-steady-state-allocation discipline (2.4M allocs/op on Fig9@60k,
// down from 59.6M); this pass makes that discipline survive refactoring.
//
// Functions carrying a `//sim:hotpath` doc-comment directive must not
// contain, outside cold branches:
//
//   - address-of composite literals (&T{...}) or new(T): heap escapes;
//   - make(...): slice/map/channel allocation (amortized growth paths
//     carry a `//lint:alloc <reason>` line suppression);
//   - append to a fresh local slice (append to struct fields, to
//     caller-provided parameters, or to locals built with
//     make(..., len, cap) reuses capacity and is allowed);
//   - capturing closures: a func literal that references enclosing
//     locals may allocate its context per call (verify non-escaping
//     ones with scripts/hotpath_escape.sh and suppress);
//   - implicit conversions of non-pointer-shaped values to interface
//     types (call arguments, assignments, returns): these box and may
//     allocate. Pointer-shaped payloads (pointers, maps, chans, funcs)
//     store directly in the interface word and are fine — that is why
//     sim.Engine.AtCall threads state through a pointer payload.
//
// A branch is cold when it is an if-body whose final statement panics —
// the engine's "scheduling in the past" guards, cycle-limit livelock
// traps and similar assertion paths. Findings are heuristic (no escape
// analysis); scripts/hotpath_escape.sh cross-checks them against the
// compiler's -gcflags=-m escape report.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"bulksc/internal/analysis/lintkit"
)

// HotDirective marks a function as a checked hot path.
const HotDirective = "//sim:hotpath"

// Directive is the line-level suppression marker.
const Directive = "//lint:alloc"

// Analyzer is the hotpathalloc pass.
var Analyzer = &lintkit.Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocation sources (escaping composite literals, make/new, " +
		"append to fresh locals, capturing closures, interface boxing) in //sim:hotpath functions",
	Run: run,
}

func run(pass *lintkit.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		sup := pass.Suppressions(file, Directive)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lintkit.FuncAnnotated(fn, HotDirective) {
				continue
			}
			(&checker{pass: pass, sup: sup, fn: fn, cold: coldBlocks(fn.Body)}).check()
		}
	}
	return nil, nil
}

type checker struct {
	pass *lintkit.Pass
	sup  *lintkit.Suppressions
	fn   *ast.FuncDecl
	cold map[*ast.BlockStmt]bool
}

// coldBlocks returns the if-bodies that terminate in panic: assertion
// paths that never execute in a correct run.
func coldBlocks(body *ast.BlockStmt) map[*ast.BlockStmt]bool {
	cold := make(map[*ast.BlockStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || len(ifs.Body.List) == 0 {
			return true
		}
		if es, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					cold[ifs.Body] = true
				}
			}
		}
		return true
	})
	return cold
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if c.sup.Suppressed(pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) check() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if blk, ok := n.(*ast.BlockStmt); ok && c.cold[blk] {
			return false // cold assertion path
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.report(n.Pos(), "hot path takes the address of a composite literal (heap allocation)")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.FuncLit:
			if v := c.capturedVar(n); v != "" {
				c.report(n.Pos(), "hot path closure captures %q and may allocate its context per call "+
					"(verify with scripts/hotpath_escape.sh, then suppress with %s <reason>)", v, Directive)
			}
			return false // do not descend: the literal runs in its own frame
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				c.report(call.Pos(), "hot path calls new() (heap allocation)")
			case "make":
				c.report(call.Pos(), "hot path calls make() (allocation; suppress amortized growth with %s <reason>)", Directive)
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}
	// Interface boxing of call arguments.
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice through
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkBoxing(arg, pt)
	}
}

// checkAppend flags appends whose destination is a fresh local slice:
// every such call allocates (or reallocates) on the hot path. Appending to
// a struct field, a parameter, or a local created with an explicit
// capacity reuses steady-state capacity.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // field selectors (s.buf) reuse amortized capacity
	}
	obj := c.pass.TypesInfo.Uses[dst]
	if obj == nil {
		return
	}
	if c.isParam(obj) {
		return // caller-provided destination (AppendTo(dst []T) pattern)
	}
	if c.localHasCapacity(obj) {
		return
	}
	c.report(call.Pos(), "hot path appends to fresh local slice %q (allocates; preallocate with make(..., 0, cap) "+
		"or reuse a field)", dst.Name)
}

func (c *checker) isParam(obj types.Object) bool {
	if c.fn.Type.Params == nil {
		return false
	}
	for _, f := range c.fn.Type.Params.List {
		for _, name := range f.Names {
			if c.pass.TypesInfo.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// localHasCapacity reports whether obj's defining statement gives it
// backing capacity: x := make([]T, n, cap), x := buf[:0], or x := s.field.
func (c *checker) localHasCapacity(obj types.Object) bool {
	found := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || c.pass.TypesInfo.Defs[id] != obj || i >= len(as.Rhs) {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.CallExpr:
				if fid, ok := rhs.Fun.(*ast.Ident); ok {
					if b, ok := c.pass.TypesInfo.Uses[fid].(*types.Builtin); ok && b.Name() == "make" && len(rhs.Args) == 3 {
						found = true
					}
				}
			case *ast.SliceExpr, *ast.SelectorExpr:
				found = true // reslice of existing backing / copied field header
			}
		}
		return true
	})
	return found
}

// capturedVar returns the name of one enclosing local that lit captures,
// or "" if the literal is capture-free (a static func value, no
// allocation).
func (c *checker) capturedVar(lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// the literal. (Package-level vars fail the first test.)
		if v.Pos() >= c.fn.Pos() && v.Pos() < c.fn.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}

func (c *checker) checkAssign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // x, y := f() — conversion happens inside f
		}
		lt := c.pass.TypesInfo.TypeOf(lhs)
		if lt == nil {
			continue
		}
		c.checkBoxing(as.Rhs[i], lt)
	}
}

func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	results := c.fn.Type.Results
	if results == nil {
		return
	}
	var rtypes []types.Type
	for _, f := range results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		t := c.pass.TypesInfo.TypeOf(f.Type)
		for j := 0; j < n; j++ {
			rtypes = append(rtypes, t)
		}
	}
	for i, e := range ret.Results {
		if i < len(rtypes) {
			c.checkBoxing(e, rtypes[i])
		}
	}
}

// checkBoxing flags expr when assigning it to target boxes a
// non-pointer-shaped value into an interface.
func (c *checker) checkBoxing(expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	et := tv.Type
	if types.IsInterface(et) {
		return // interface-to-interface: no boxing
	}
	if b, ok := et.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(et) {
		return
	}
	c.report(expr.Pos(), "hot path converts non-pointer value of type %s to interface %s (boxing may allocate)",
		et.String(), target.String())
}

// pointerShaped reports whether values of t store directly in an
// interface's data word without allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 0 // zero-size: runtime uses a static sentinel
	}
	return false
}

package hotpathalloc_test

import (
	"testing"

	"bulksc/internal/analysis/hotpathalloc"
	"bulksc/internal/analysis/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, "testdata/hotfix", hotpathalloc.Analyzer)
}

// Package determinism implements the simlint pass that guards the
// simulator's bit-reproducibility contract: for a fixed seed, every run
// must produce identical results (the property the 104 golden hashes in
// internal/core pin down dynamically).
//
// In simulation code (non-test files of internal/... and experiments/...)
// the pass forbids the three nondeterminism sources that have actually
// bitten event-driven simulators:
//
//  1. Go map iteration. Iteration order is randomized per run; any map
//     range whose effects can reach simulation state or output is a
//     reproducibility bug. The pass recognizes the one safe idiom —
//     collect the keys into a slice and sort it before use — and accepts
//     it without annotation. Every other map range needs a
//     `//lint:deterministic <reason>` justification on or above the range
//     line.
//  2. Wall-clock time: time.Now, time.Since, time.Until, time.Sleep,
//     time.After, time.Tick, time.NewTimer, time.NewTicker.
//  3. The process-global math/rand generator (rand.Intn, rand.Int63,
//     rand.Shuffle, ... and rand.Seed). Constructing an explicitly seeded
//     source with rand.New(rand.NewSource(seed)) is the sanctioned
//     pattern and is not flagged; neither are calls on a *rand.Rand
//     value. math/rand/v2's global functions are forbidden outright:
//     the v2 global generator cannot be seeded at all.
package determinism

import (
	"go/ast"
	"go/types"

	"bulksc/internal/analysis/lintkit"
)

// Directive is the suppression marker honoured by this pass.
const Directive = "//lint:deterministic"

// Analyzer is the determinism pass.
var Analyzer = &lintkit.Analyzer{
	Name: "determinism",
	Doc: "forbid nondeterminism sources (map iteration order, wall-clock time, " +
		"the global math/rand generator) in simulation code",
	Run: run,
}

// forbiddenTime lists wall-clock entry points in package time.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRand lists package-level math/rand functions that do NOT touch
// the global generator (constructors of explicitly seeded state).
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func run(pass *lintkit.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		sup := pass.Suppressions(file, Directive)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, sup, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *lintkit.Pass, sup *lintkit.Suppressions, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			// Idiom recognition runs before the suppression check so a
			// directive on an already-sanctioned collect-and-sort loop
			// counts as unused and gets reported as stale.
			if isCollectAndSort(pass, fn, n) {
				return true
			}
			if sup.Suppressed(n.Pos()) {
				return true
			}
			pass.Reportf(n.Pos(), "map iteration order is nondeterministic; "+
				"collect keys and sort, or justify with %s <reason>", Directive)
		case *ast.CallExpr:
			checkCall(pass, sup, n)
		}
		return true
	})
}

// checkCall flags calls to wall-clock time functions and to package-level
// math/rand functions backed by the global generator.
func checkCall(pass *lintkit.Pass, sup *lintkit.Suppressions, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Only package-qualified calls: the selector base must be a package
	// name, so rng.Intn (a method on *rand.Rand) is never flagged.
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[base].(*types.PkgName)
	if !ok {
		return
	}
	path := pkgName.Imported().Path()
	name := sel.Sel.Name
	switch path {
	case "time":
		if forbiddenTime[name] && !sup.Suppressed(call.Pos()) {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulation code must use "+
				"sim.Engine cycles (or justify with %s <reason>)", name, Directive)
		}
	case "math/rand", "math/rand/v2":
		if allowedRand[name] {
			return
		}
		if sup.Suppressed(call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "rand.%s uses the process-global generator; use the seeded "+
			"per-run source (sim.Engine.Rand or workload.Builder.Rng) instead", name)
	}
}

// isCollectAndSort recognizes the sanctioned map-iteration idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys) // or sort.Slice/sort.Ints/slices.Sort*, later on
//
// The loop body may contain only append-assignments into local slices (and
// trivially deterministic accumulation like `n++` is NOT allowed — a count
// does not depend on order, but distinguishing safe accumulators from
// order-sensitive ones is beyond a syntactic pass); at least one appended
// slice must later be passed to a sort call in the same function.
func isCollectAndSort(pass *lintkit.Pass, fn *ast.FuncDecl, loop *ast.RangeStmt) bool {
	var appended []types.Object
	for _, stmt := range loop.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		cf, ok := call.Fun.(*ast.Ident)
		if !ok || cf.Name != "append" {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[cf].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return false
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		appended = append(appended, obj)
	}
	if len(appended) == 0 {
		return false
	}
	// Look for a sort call over one of the appended slices after the loop.
	sorted := false
	past := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil || sorted {
			return false
		}
		if n == loop {
			past = true
			return false // don't descend into the loop itself
		}
		if !past {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[base].(*types.PkgName)
		if !ok {
			return true
		}
		p := pkgName.Imported().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			id, ok := arg.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			for _, ap := range appended {
				if obj == ap {
					sorted = true
					return false
				}
			}
		}
		return true
	})
	return sorted
}

package determinism_test

import (
	"testing"

	"bulksc/internal/analysis/determinism"
	"bulksc/internal/analysis/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/determfix", determinism.Analyzer)
}

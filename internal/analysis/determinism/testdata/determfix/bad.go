package determfix

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// mapOrder leaks Go's randomized map iteration order into its result: the
// xor-shift mix is order-sensitive, so two runs over the same map differ.
func mapOrder(m map[int]int) int {
	sum := 0
	for k := range m { // want `map iteration order is nondeterministic`
		sum ^= sum<<1 + k
	}
	return sum
}

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn uses the process-global generator`
}

// globalRandV2 is forbidden outright: the v2 global generator cannot be
// seeded at all.
func globalRandV2() int {
	return randv2.IntN(10) // want `rand\.IntN uses the process-global generator`
}

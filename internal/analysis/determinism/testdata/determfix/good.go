package determfix

import (
	"math/rand"
	"sort"
)

// collectAndSort is the sanctioned map-iteration idiom: the sort erases
// iteration order before the keys are used. Recognized without annotation.
func collectAndSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// seeded constructs an explicitly seeded per-run source; the constructors
// and methods on *rand.Rand are never flagged.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// justified carries a reviewed suppression: the ∃-query is
// order-independent.
func justified(m map[int]bool) bool {
	found := false
	//lint:deterministic order-independent existence query
	for _, v := range m {
		found = found || v
	}
	return found
}

// sliceRange is an ordered range; only map ranges are suspect.
func sliceRange(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}

module determfix

go 1.22

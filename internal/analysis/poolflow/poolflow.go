// Package poolflow implements the simlint pass that proves linear
// ownership of pooled resources. The simulator recycles its hot objects —
// chunks (chunk.Pool), signatures (sig.Recycler), slab-arena slices
// (slab.Pool), directory map arenas, commit-request envelopes — and the
// contract is linear: every object drawn from a pool must reach exactly
// one release (Put/Adopt/Recycle) or one sanctioned escape on every path.
// A path that drops an owned object leaks pool capacity (the PR-2
// write-buffer leak and the PR-5 Adopt gating bug were exactly this); a
// path that releases twice or touches the object after release corrupts
// whatever the pool handed the object to next.
//
// Annotation vocabulary:
//
//   - `//sim:pool acquire` on a function or method: its result is a
//     pooled object owned by the caller.
//   - `//sim:pool release` on a function or method: its first argument is
//     returned to the pool.
//   - `//lint:owner <reason>` on a line: ownership legitimately leaves
//     the function there (a cross-function handoff the analysis cannot
//     see); tracked variables mentioned on that line become untracked.
//
// The analysis is flow-sensitive (lintkit.BuildCFG + Solve, union join):
// per local variable it tracks {Owned, Released} along every path.
// Recognized ownership transfers that end tracking without an annotation:
// returning the variable, storing it into a field/index/global, passing
// it to append, placing it in a composite literal, capturing it in a
// closure or go statement, and variable-to-variable moves (the new name
// takes over tracking). Passing the variable to an ordinary call is a
// borrow, not a transfer — that is what keeps use-after-release
// meaningful and what `//lint:owner` exists to override.
//
// Diagnostics: leak (Owned may reach function exit), overwrite
// (rebinding a variable that still owns), double release, use after
// release. `defer release(x)` counts as releasing x at exit. Paths that
// end in panic/os.Exit are exempt.
package poolflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"bulksc/internal/analysis/lintkit"
)

// PoolDirective annotates acquire/release functions: "//sim:pool acquire"
// or "//sim:pool release".
const PoolDirective = "//sim:pool"

// Directive is the line-level ownership-transfer marker.
const Directive = "//lint:owner"

// Analyzer is the poolflow pass.
var Analyzer = &lintkit.Analyzer{
	Name: "poolflow",
	Doc: "prove linear ownership of pooled objects: every //sim:pool acquire result " +
		"reaches exactly one release or sanctioned escape on every path",
	Run: run,
}

// state is the per-variable fact: a bitmask over may-reachable states.
type state uint8

const (
	owned state = 1 << iota
	released
)

// fact maps tracked variables to their may-state. Absent = untracked.
type fact map[types.Object]state

func run(pass *lintkit.Pass) (interface{}, error) {
	acq, rel := collectPoolFuncs(pass.Program)
	if len(acq) == 0 && len(rel) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		sup := pass.Suppressions(file, Directive)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, sup, acq, rel, fn.Body)
			// Function literals run in their own frame with their own
			// paths; analyze each independently. (The enclosing analysis
			// treats captures as escapes.)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, sup, acq, rel, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// collectPoolFuncs splits the //sim:pool annotations into acquire and
// release sets, keyed by the (origin) function object.
func collectPoolFuncs(prog *lintkit.Program) (acq, rel map[types.Object]bool) {
	acq, rel = make(map[types.Object]bool), make(map[types.Object]bool)
	//lint:deterministic order-insensitive re-keying into verb-split maps
	for obj, args := range lintkit.CollectFuncDirectives(prog, PoolDirective) {
		switch args {
		case "acquire":
			acq[obj] = true
		case "release":
			rel[obj] = true
		}
	}
	return acq, rel
}

type checker struct {
	pass *lintkit.Pass
	sup  *lintkit.Suppressions
	acq  map[types.Object]bool
	rel  map[types.Object]bool

	// acquiredAt/acquiredFrom record the first acquire site per variable
	// for leak messages (side tables, not part of the flow fact).
	acquiredAt   map[types.Object]token.Pos
	acquiredFrom map[types.Object]string

	// deferReleased collects variables released by a deferred call: they
	// are considered released at exit.
	deferReleased map[types.Object]bool

	reported map[token.Pos]bool
}

func checkFunc(pass *lintkit.Pass, sup *lintkit.Suppressions, acq, rel map[types.Object]bool, body *ast.BlockStmt) {
	c := &checker{
		pass: pass, sup: sup, acq: acq, rel: rel,
		acquiredAt:    make(map[types.Object]token.Pos),
		acquiredFrom:  make(map[types.Object]string),
		deferReleased: make(map[types.Object]bool),
		reported:      make(map[token.Pos]bool),
	}
	cfg := lintkit.BuildCFG(body)
	for _, d := range cfg.Defers {
		if obj, _ := c.releaseTarget(d.Call); obj != nil {
			c.deferReleased[obj] = true
		}
	}
	ins := lintkit.Solve(cfg, lintkit.FlowSpec[fact]{
		Entry:  func() fact { return fact{} },
		Bottom: func() fact { return fact{} },
		Clone:  cloneFact,
		Join:   joinFact,
		Equal:  equalFact,
		Transfer: func(b *lintkit.Block, in fact) fact {
			for _, n := range b.Nodes {
				c.transferNode(n, in, false)
			}
			return in
		},
	})
	// Reporting sweep: re-run each block once over its solved in-fact.
	for _, b := range cfg.Blocks {
		f := cloneFact(ins[b])
		for _, n := range b.Nodes {
			c.transferNode(n, f, true)
		}
	}
	// Leak check at exit: anything that may still be owned.
	exit := ins[cfg.Exit]
	var exitObjs []types.Object
	for obj := range exit {
		exitObjs = append(exitObjs, obj)
	}
	sort.Slice(exitObjs, func(i, j int) bool { return exitObjs[i].Pos() < exitObjs[j].Pos() })
	for _, obj := range exitObjs {
		if exit[obj]&owned == 0 || c.deferReleased[obj] {
			continue
		}
		pos := c.acquiredAt[obj]
		if pos == token.NoPos {
			pos = obj.Pos()
		}
		if c.reported[pos] || c.sup.Suppressed(pos) {
			continue
		}
		c.reported[pos] = true
		c.pass.Reportf(pos, "pooled object %q acquired from %s may reach function exit without release "+
			"(leaks pool capacity on that path; release it, or mark the handoff %s <reason>)",
			obj.Name(), c.acquiredFrom[obj], Directive)
	}
}

func cloneFact(f fact) fact {
	g := make(fact, len(f))
	//lint:deterministic order-insensitive set copy; result is a map again
	for k, v := range f {
		g[k] = v
	}
	return g
}

func joinFact(dst, src fact) fact {
	//lint:deterministic order-insensitive set union; |= commutes
	for k, v := range src {
		dst[k] |= v
	}
	return dst
}

func equalFact(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	//lint:deterministic order-independent set comparison
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// calleeOf resolves a call's static callee to its origin function object,
// or nil for builtins, func values and interface-typed callees.
func (c *checker) calleeOf(call *ast.CallExpr) types.Object {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	if f, ok := obj.(*types.Func); ok {
		return f.Origin() // normalize generic instantiations (slab.Pool[T])
	}
	return nil
}

// releaseTarget reports the variable a call releases: the call must
// resolve to a //sim:pool release function and its first argument must be
// a plain identifier of a local or parameter.
func (c *checker) releaseTarget(call *ast.CallExpr) (types.Object, *ast.Ident) {
	callee := c.calleeOf(call)
	if callee == nil || !c.rel[callee] || len(call.Args) == 0 {
		return nil, nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Parent().Parent() == types.Universe {
		// Only locals/params: package-level vars and fields are out of
		// scope for an intraprocedural ownership proof.
		return nil, nil
	}
	return v, id
}

// isAcquireCall reports whether e is a call to an acquire function.
func (c *checker) isAcquireCall(e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	callee := c.calleeOf(call)
	if callee == nil || !c.acq[callee] {
		return nil, ""
	}
	return call, callee.Name()
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if c.reported[pos] {
		return
	}
	if c.sup.Suppressed(pos) {
		c.reported[pos] = true
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// transferNode applies one CFG node's effect to the fact. With report set
// it also emits diagnostics (the solve phase runs silently first).
func (c *checker) transferNode(n ast.Node, f fact, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.transferAssign(n, f, report)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						c.bindIfAcquire(name, vs.Values[i], f, report)
					}
				}
				for _, v := range vs.Values {
					c.transferExpr(v, f, report)
				}
			}
		}
	case *ast.ExprStmt:
		c.transferExpr(n.X, f, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			// Returning a tracked variable hands ownership to the caller.
			if obj := c.trackedIdent(r, f); obj != nil {
				delete(f, obj)
				continue
			}
			c.transferExpr(r, f, report)
		}
	case *ast.DeferStmt:
		// Argument evaluation point: the deferred release itself runs at
		// exit (handled via deferReleased). Check args for use-after-put
		// but do not treat the call as executing here.
		if obj, _ := c.releaseTarget(n.Call); obj != nil {
			return
		}
		for _, a := range n.Call.Args {
			c.transferExpr(a, f, report)
		}
	case *ast.GoStmt:
		// The goroutine may outlive this frame: captured/passed tracked
		// variables escape.
		c.escapeAll(n.Call, f)
	case *ast.RangeStmt:
		// Key/Value rebind on every iteration: fresh, untracked bindings.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					delete(f, obj)
				} else if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
					delete(f, obj) // for x = range (assign form)
				}
			}
		}
		c.transferExpr(n.X, f, report)
	case *ast.IncDecStmt:
		c.transferExpr(n.X, f, report)
	case *ast.SendStmt:
		// Sending a tracked variable over a channel is an escape.
		if obj := c.trackedIdent(n.Value, f); obj != nil {
			delete(f, obj)
		} else {
			c.transferExpr(n.Value, f, report)
		}
		c.transferExpr(n.Chan, f, report)
	case ast.Expr:
		c.transferExpr(n, f, report)
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		// no data effects
	case ast.Stmt:
		// Conservative default for statement forms without special
		// handling: scan contained expressions.
		ast.Inspect(n, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok {
				c.transferExpr(e, f, report)
				return false
			}
			return true
		})
	}
}

// bindIfAcquire handles `name := acquire(...)` / `var name = acquire(...)`
// bindings; returns true when name became tracked.
func (c *checker) bindIfAcquire(name *ast.Ident, rhs ast.Expr, f fact, report bool) bool {
	call, from := c.isAcquireCall(rhs)
	if call == nil || name.Name == "_" {
		return false
	}
	obj := c.pass.TypesInfo.Defs[name]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[name]
	}
	if obj == nil {
		return false
	}
	if report {
		if old, ok := f[obj]; ok && old&owned != 0 && old&released == 0 {
			c.report(name.Pos(), "pooled object %q is reassigned while still owning its previous %s result "+
				"(the old object leaks)", name.Name, c.acquiredFrom[obj])
		}
	}
	f[obj] = owned
	if _, ok := c.acquiredAt[obj]; !ok {
		c.acquiredAt[obj] = name.Pos()
		c.acquiredFrom[obj] = from
	}
	// Evaluate the call's own arguments for uses.
	for _, a := range call.Args {
		c.transferExpr(a, f, report)
	}
	return true
}

func (c *checker) transferAssign(as *ast.AssignStmt, f fact, report bool) {
	// RHS first (evaluation order), then LHS binding/escape effects.
	handled := make(map[int]bool)
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if c.bindIfAcquire(id, as.Rhs[i], f, report) {
					handled[i] = true
					continue
				}
				// Variable-to-variable move: the new name takes over.
				if obj := c.trackedIdent(as.Rhs[i], f); obj != nil && id.Name != "_" {
					st := f[obj]
					delete(f, obj)
					var dst types.Object
					if as.Tok == token.DEFINE {
						dst = c.pass.TypesInfo.Defs[id]
					} else {
						dst = c.pass.TypesInfo.Uses[id]
					}
					if dst != nil {
						f[dst] = st
						if _, ok := c.acquiredAt[dst]; !ok {
							c.acquiredAt[dst] = c.acquiredAt[obj]
							c.acquiredFrom[dst] = c.acquiredFrom[obj]
						}
					}
					handled[i] = true
					continue
				}
			}
			// Store into a field/index/deref: a tracked RHS escapes there.
			if !isIdentTarget(as.Lhs[i]) {
				if obj := c.trackedIdent(as.Rhs[i], f); obj != nil {
					delete(f, obj)
					handled[i] = true
				}
			}
		}
	}
	for i, r := range as.Rhs {
		if !handled[i] {
			c.transferExpr(r, f, report)
		}
	}
	for i, l := range as.Lhs {
		if handled[i] {
			continue
		}
		if id, ok := l.(*ast.Ident); ok {
			// Rebinding to an untracked value: the old tracking (if any)
			// is overwritten. Report an overwrite-leak if still owned.
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = c.pass.TypesInfo.Defs[id]
			} else {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				if st, ok := f[obj]; ok {
					if report && st&owned != 0 && st&released == 0 {
						c.report(id.Pos(), "pooled object %q is overwritten while still owned "+
							"(the %s result acquired earlier leaks)", id.Name, c.acquiredFrom[obj])
					}
					delete(f, obj)
				}
			}
		} else {
			c.transferExpr(l, f, report)
		}
	}
}

func isIdentTarget(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

// trackedIdent returns the tracked variable e names, or nil.
func (c *checker) trackedIdent(e ast.Expr, f fact) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	if _, tracked := f[obj]; tracked {
		return obj
	}
	return nil
}

// transferExpr walks one expression: applies releases, escapes and
// use-after-release checks.
func (c *checker) transferExpr(e ast.Expr, f fact, report bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.transferCall(n, f, report)
			return false
		case *ast.FuncLit:
			// Captured tracked variables escape into the closure.
			c.escapeAll(n, f)
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if obj := c.trackedIdent(el, f); obj != nil {
					delete(f, obj) // stored into a structure: escapes
				}
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := c.trackedIdent(n.X, f); obj != nil {
					delete(f, obj) // address taken: aliasing defeats tracking
					return false
				}
			}
		case *ast.Ident:
			c.checkUse(n, f, report)
		}
		return true
	})
}

// transferCall handles one call: release recognition, //lint:owner
// transfer lines, append escapes, and borrow semantics for everything
// else.
func (c *checker) transferCall(call *ast.CallExpr, f fact, report bool) {
	// Release call?
	if obj, id := c.releaseTarget(call); obj != nil {
		st, tracked := f[obj]
		if tracked && st&released != 0 && report {
			c.report(call.Pos(), "pooled object %q released twice (%s already released it on this path)",
				id.Name, c.acquiredFrom[obj])
		}
		f[obj] = (st | released) &^ owned
		// Remaining args are ordinary uses.
		for _, a := range call.Args[1:] {
			c.transferExpr(a, f, report)
		}
		c.transferExpr(call.Fun, f, report)
		return
	}

	// append(dst, x...): appended tracked values are retained by the
	// slice — an escape.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				for _, a := range call.Args[1:] {
					if obj := c.trackedIdent(a, f); obj != nil {
						delete(f, obj)
					} else {
						c.transferExpr(a, f, report)
					}
				}
				if len(call.Args) > 0 {
					c.transferExpr(call.Args[0], f, report)
				}
				return
			}
		}
	}

	// A //lint:owner line on the call sanctions handing tracked arguments
	// off through it. (Suppressed marks the directive used only when it
	// actually transfers something, so decorative owner comments go stale.)
	for _, a := range call.Args {
		obj := c.trackedIdent(a, f)
		if obj == nil {
			continue
		}
		if f[obj]&owned != 0 && c.sup.Suppressed(call.Pos()) {
			delete(f, obj)
		}
	}

	// Everything else: arguments are borrowed, which still counts as a
	// use (use-after-release applies).
	for _, a := range call.Args {
		c.transferExpr(a, f, report)
	}
	c.transferExpr(call.Fun, f, report)
}

// checkUse flags reads of a variable that has definitely been released.
func (c *checker) checkUse(id *ast.Ident, f fact, report bool) {
	if !report {
		return
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	st, tracked := f[obj]
	if tracked && st&released != 0 && st&owned == 0 {
		c.report(id.Pos(), "pooled object %q used after release (the pool may already have handed it out again)",
			id.Name)
	}
}

// escapeAll removes every tracked variable referenced anywhere inside n.
func (c *checker) escapeAll(n ast.Node, f fact) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				delete(f, obj)
			}
		}
		return true
	})
}

// Package poolleak reproduces the historical pooled-object ownership bug
// classes: the PR-2 write-buffer leak (an owned object dropped on an early
// return) and the PR-5 Adopt gating bug (a conditional path that skips the
// release). It also pins use-after-release, double release, overwrite
// leaks, and the sanctioned escapes that must stay silent.
package poolleak

type Chunk struct {
	ID   int
	used bool
}

type Pool struct {
	free []*Chunk
	held []*Chunk
}

// Get draws a chunk from the pool; the caller owns the result.
//
//sim:pool acquire
func (p *Pool) Get() *Chunk {
	if n := len(p.free); n > 0 {
		ch := p.free[n-1]
		p.free = p.free[:n-1]
		return ch
	}
	return &Chunk{}
}

// Put returns a chunk to the pool.
//
//sim:pool release
func (p *Pool) Put(ch *Chunk) {
	ch.used = false
	p.free = append(p.free, ch)
}

// consume takes over ownership of ch; callers annotate the handoff.
func consume(ch *Chunk) { _ = ch }

// earlyReturnLeak is the PR-2 class: the early return drops the chunk.
func earlyReturnLeak(p *Pool, fail bool) {
	ch := p.Get() // want `pooled object "ch" acquired from Get may reach function exit without release`
	if fail {
		return // leaks ch
	}
	p.Put(ch)
}

// conditionalReleaseLeak is the PR-5 Adopt-gating class: only one branch
// releases.
func conditionalReleaseLeak(p *Pool, keep bool) {
	ch := p.Get() // want `pooled object "ch" acquired from Get may reach function exit without release`
	if !keep {
		p.Put(ch)
	}
	// keep==true path drops ch without adopting it anywhere.
}

func useAfterPut(p *Pool) int {
	ch := p.Get()
	p.Put(ch)
	return ch.ID // want `pooled object "ch" used after release`
}

func doublePut(p *Pool) {
	ch := p.Get()
	p.Put(ch)
	p.Put(ch) // want `pooled object "ch" released twice`
}

func overwriteLeak(p *Pool) {
	ch := p.Get()
	ch = p.Get() // want `pooled object "ch" is reassigned while still owning its previous Get result`
	p.Put(ch)
}

// ---------------------------------------------------------------------------
// Sanctioned patterns: no diagnostics below this line.
// ---------------------------------------------------------------------------

func balanced(p *Pool, fail bool) {
	ch := p.Get()
	if fail {
		p.Put(ch)
		return
	}
	ch.ID++
	p.Put(ch)
}

func deferredRelease(p *Pool) int {
	ch := p.Get()
	defer p.Put(ch)
	return ch.ID
}

func returnsOwnership(p *Pool) *Chunk {
	ch := p.Get()
	ch.ID = 7
	return ch // ownership moves to the caller
}

func storesIntoField(p *Pool) {
	ch := p.Get()
	p.held = append(p.held, ch) // retained by the pool's own list
}

func panicPathExempt(p *Pool, bad bool) {
	ch := p.Get()
	if bad {
		panic("machine state corrupt") // throw paths carry no obligations
	}
	p.Put(ch)
}

func moveThenRelease(p *Pool) {
	ch := p.Get()
	victim := ch // move: victim takes over ownership
	victim.ID++
	p.Put(victim)
}

func annotatedHandoff(p *Pool) {
	ch := p.Get()
	consume(ch) //lint:owner consume retains ch in its registry
}

func rangeRelease(p *Pool, victims []*Chunk) {
	for _, ch := range victims {
		if ch.used {
			p.Put(ch)
		}
	}
}

func borrowIsNotTransfer(p *Pool) {
	ch := p.Get()
	inspect(ch) // plain call: borrow, ch still owned here
	p.Put(ch)
}

func inspect(ch *Chunk) { _ = ch.ID }

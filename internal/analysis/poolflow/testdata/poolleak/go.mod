module poolleak

go 1.22

package poolflow_test

import (
	"testing"

	"bulksc/internal/analysis/linttest"
	"bulksc/internal/analysis/poolflow"
)

func TestPoolflowFixture(t *testing.T) {
	linttest.Run(t, "testdata/poolleak", poolflow.Analyzer)
}

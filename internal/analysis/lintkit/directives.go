package lintkit

// Directive bookkeeping: every `//lint:` suppression the passes scan is
// registered here, and Suppressions marks the ones that actually prevented
// a finding. Whatever remains unused at the end of a run is a stale
// suppression — a justification that outlived the code it excused — and
// the driver reports it. `//sim:` annotations (hotpath, pool, observer,
// waitq, ...) are declarations of intent, not suppressions, and are
// collected by the helpers at the bottom of this file instead.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive is one suppression-comment occurrence.
type Directive struct {
	Marker string // e.g. "//lint:alloc"
	Pos    token.Position
	Text   string // justification text after the marker
	Used   bool   // did it suppress at least one would-be finding?
}

// DirectiveRegistry tracks suppression directives across a whole run. One
// registry is shared by every (analyzer, package) invocation; passes feed
// it through Pass.Suppressions, and the driver reads Stale() afterwards.
type DirectiveRegistry struct {
	byKey map[directiveKey]*Directive
	list  []*Directive
}

type directiveKey struct {
	marker string
	file   string
	line   int
}

// NewDirectiveRegistry returns an empty registry.
func NewDirectiveRegistry() *DirectiveRegistry {
	return &DirectiveRegistry{byKey: make(map[directiveKey]*Directive)}
}

// Register records one directive occurrence and returns its tracking
// entry. Registration is idempotent per (marker, file, line) — a directive
// scanned by several files' passes maps to one entry. A nil registry
// returns a detached entry so callers need no nil checks.
func (r *DirectiveRegistry) Register(marker string, pos token.Position, text string) *Directive {
	if r == nil {
		return &Directive{Marker: marker, Pos: pos, Text: text}
	}
	k := directiveKey{marker: marker, file: pos.Filename, line: pos.Line}
	if d, ok := r.byKey[k]; ok {
		return d
	}
	d := &Directive{Marker: marker, Pos: pos, Text: text}
	r.byKey[k] = d
	r.list = append(r.list, d)
	return d
}

// Stale returns the registered directives that never suppressed a finding,
// sorted by file, line, then marker.
func (r *DirectiveRegistry) Stale() []*Directive {
	if r == nil {
		return nil
	}
	var out []*Directive
	for _, d := range r.list {
		if !d.Used {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Marker < b.Marker
	})
	return out
}

// ---------------------------------------------------------------------------
// //sim: annotation collectors (cross-package).
// ---------------------------------------------------------------------------

// directiveArgs returns the argument text of the first comment in cg that
// is the given directive ("//sim:pool acquire" with directive "//sim:pool"
// yields "acquire", true). A comment matches only when the directive is
// followed by whitespace or end-of-comment, so "//sim:poolx" does not
// match "//sim:pool".
func directiveArgs(cg *ast.CommentGroup, directive string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, directive)
		if !ok {
			continue
		}
		if rest == "" {
			return "", true
		}
		if rest[0] == ' ' || rest[0] == '\t' {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// FuncDirective returns the argument text of a directive in fn's doc
// comment and whether the directive is present.
func FuncDirective(fn *ast.FuncDecl, directive string) (string, bool) {
	return directiveArgs(fn.Doc, directive)
}

// CollectFuncDirectives scans every non-standard-library package of prog
// for function and method declarations whose doc comment carries the
// directive, and maps their types.Object (a *types.Func) to the
// directive's argument text. This is how a pass running on package A sees
// annotations declared in package B.
func CollectFuncDirectives(prog *Program, directive string) map[types.Object]string {
	out := make(map[types.Object]string)
	if prog == nil {
		return out
	}
	for _, pkg := range prog.Packages {
		if pkg.Standard || pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				args, ok := FuncDirective(fn, directive)
				if !ok {
					continue
				}
				if obj := pkg.TypesInfo.Defs[fn.Name]; obj != nil {
					out[obj] = args
				}
			}
		}
	}
	return out
}

// CollectTypeDirectives scans every non-standard-library package of prog
// for type declarations carrying the directive and maps their
// *types.TypeName to the argument text.
func CollectTypeDirectives(prog *Program, directive string) map[types.Object]string {
	out := make(map[types.Object]string)
	if prog == nil {
		return out
	}
	for _, pkg := range prog.Packages {
		if pkg.Standard || pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					args, found := directiveArgs(ts.Doc, directive)
					if !found {
						args, found = directiveArgs(ts.Comment, directive)
					}
					if !found && len(gd.Specs) == 1 {
						args, found = directiveArgs(gd.Doc, directive)
					}
					if !found {
						continue
					}
					if obj := pkg.TypesInfo.Defs[ts.Name]; obj != nil {
						out[obj] = args
					}
				}
			}
		}
	}
	return out
}

// CollectFieldDirectives scans every non-standard-library package of prog
// for struct fields annotated with the directive and maps their field
// objects (*types.Var) to the argument text.
func CollectFieldDirectives(prog *Program, directive string) map[types.Object]string {
	out := make(map[types.Object]string)
	if prog == nil {
		return out
	}
	for _, pkg := range prog.Packages {
		if pkg.Standard || pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, f := range st.Fields.List {
					args, found := directiveArgs(f.Doc, directive)
					if !found {
						args, found = directiveArgs(f.Comment, directive)
					}
					if !found {
						continue
					}
					for _, name := range f.Names {
						if obj := pkg.TypesInfo.Defs[name]; obj != nil {
							out[obj] = args
						}
					}
				}
				return true
			})
		}
	}
	return out
}

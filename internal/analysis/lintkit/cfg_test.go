package lintkit

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody parses a function body from source and returns its CFG.
func buildFromSrc(t *testing.T, body string) (*token.FileSet, *CFG) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return fset, BuildCFG(fn.Body)
}

// reachesExit reports whether Exit is reachable from Entry.
func reachesExit(c *CFG) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == c.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(c.Entry)
}

func TestCFGStraightLine(t *testing.T) {
	_, c := buildFromSrc(t, "x := 1\n_ = x")
	if len(c.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("entry should fall through to exit")
	}
}

func TestCFGIfElse(t *testing.T) {
	_, c := buildFromSrc(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	if c.Entry.Cond == nil || c.Entry.True == nil || c.Entry.False == nil {
		t.Fatalf("entry should be a conditional branch with both arms recorded")
	}
	if c.Entry.True == c.Entry.False {
		t.Fatalf("then and else arms must differ")
	}
	if !reachesExit(c) {
		t.Fatalf("exit unreachable")
	}
}

func TestCFGIfWithoutElseFalseEdge(t *testing.T) {
	_, c := buildFromSrc(t, `
x := 1
if x > 0 {
	x = 2
}
_ = x`)
	// The false edge must skip the then-body straight to the join block.
	if c.Entry.False == nil || c.Entry.False == c.Entry.True {
		t.Fatalf("false edge missing or aliased to then block")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	_, c := buildFromSrc(t, `
x := 1
if x > 0 {
	panic("boom")
}
_ = x`)
	// Find the block containing the panic: it must have no successors.
	var panicBlk *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlk = b
					}
				}
			}
		}
	}
	if panicBlk == nil {
		t.Fatalf("panic block not found")
	}
	if len(panicBlk.Succs) != 0 {
		t.Fatalf("panic block has %d successors, want 0", len(panicBlk.Succs))
	}
	if !reachesExit(c) {
		t.Fatalf("non-panic path should still reach exit")
	}
}

func TestCFGForLoop(t *testing.T) {
	_, c := buildFromSrc(t, `
s := 0
for i := 0; i < 10; i++ {
	s += i
	if s > 5 {
		break
	}
	if s == 3 {
		continue
	}
	s++
}
_ = s`)
	if !reachesExit(c) {
		t.Fatalf("exit unreachable")
	}
	// The loop head must be a conditional branch (cond i < 10).
	var head *Block
	for _, b := range c.Blocks {
		if b.Cond != nil {
			if be, ok := b.Cond.(*ast.BinaryExpr); ok && be.Op == token.LSS {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("loop head with condition not found")
	}
	if head.True == nil || head.False == nil {
		t.Fatalf("loop head must branch to body and after")
	}
	// Head must be inside a cycle: reachable from itself.
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		for _, s := range b.Succs {
			if s == head {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	if !walk(head) {
		t.Fatalf("loop head not part of a cycle (back edge missing)")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	_, c := buildFromSrc(t, `
xs := []int{1, 2}
s := 0
for _, v := range xs {
	s += v
}
_ = s`)
	var head *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("range head not found")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body, after)", len(head.Succs))
	}
	if !reachesExit(c) {
		t.Fatalf("exit unreachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, c := buildFromSrc(t, `
x := 1
y := 0
switch x {
case 1:
	y = 1
	fallthrough
case 2:
	y = 2
default:
	y = 3
}
_ = y`)
	if !reachesExit(c) {
		t.Fatalf("exit unreachable")
	}
	// With a default present, the switch head must not edge directly to
	// the after block.
	head := c.Entry
	for _, s := range head.Succs {
		if s == c.Exit {
			t.Fatalf("switch head edges straight to exit despite default")
		}
	}
	if len(head.Succs) != 3 {
		t.Fatalf("switch head has %d successors, want 3 case clauses", len(head.Succs))
	}
}

func TestCFGSelect(t *testing.T) {
	_, c := buildFromSrc(t, `
ch := make(chan int)
select {
case v := <-ch:
	_ = v
default:
}
_ = ch`)
	if !reachesExit(c) {
		t.Fatalf("exit unreachable")
	}
}

func TestCFGDeferCollected(t *testing.T) {
	_, c := buildFromSrc(t, `
x := 1
defer println(x)
if x > 0 {
	return
}
_ = x`)
	if len(c.Defers) != 1 {
		t.Fatalf("defers = %d, want 1", len(c.Defers))
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, c := buildFromSrc(t, `
s := 0
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if i+j > 3 {
			break outer
		}
		s++
	}
}
_ = s`)
	if !reachesExit(c) {
		t.Fatalf("exit unreachable through labeled break")
	}
}

func TestCFGGoto(t *testing.T) {
	_, c := buildFromSrc(t, `
i := 0
loop:
if i < 3 {
	i++
	goto loop
}
_ = i`)
	if !reachesExit(c) {
		t.Fatalf("exit unreachable")
	}
	// The goto must close a cycle back to the labeled block.
	cyclic := false
	for _, b := range c.Blocks {
		seen := make(map[*Block]bool)
		var walk func(x *Block) bool
		walk = func(x *Block) bool {
			for _, s := range x.Succs {
				if s == b {
					return true
				}
				if !seen[s] {
					seen[s] = true
					if walk(s) {
						return true
					}
				}
			}
			return false
		}
		if walk(b) {
			cyclic = true
		}
	}
	if !cyclic {
		t.Fatalf("goto loop produced an acyclic graph")
	}
}

// TestSolveReachingState exercises the dataflow solver with a tiny
// constant-state analysis: track the set of string "events" that MAY have
// occurred (union join) and the set that MUST have occurred
// (intersection join) at exit, over a diamond with one arm panicking.
func TestSolveReachingState(t *testing.T) {
	_, c := buildFromSrc(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	// Facts: set of "assigned constant" markers seen on some path.
	type fact = map[string]bool
	eventsOf := func(b *Block) []string {
		var out []string
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
					out = append(out, lit.Value)
				}
			}
		}
		return out
	}
	clone := func(f fact) fact {
		g := make(fact, len(f))
		for k, v := range f {
			g[k] = v
		}
		return g
	}
	equal := func(a, b fact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	transfer := func(b *Block, in fact) fact {
		for _, e := range eventsOf(b) {
			in[e] = true
		}
		return in
	}

	// May-analysis: union join.
	may := Solve(c, FlowSpec[fact]{
		Entry:  func() fact { return fact{} },
		Bottom: func() fact { return fact{} },
		Clone:  clone,
		Join: func(dst, src fact) fact {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal:    equal,
		Transfer: transfer,
	})
	atExit := may[c.Exit]
	var got []string
	for k := range atExit {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{"1", "2", "3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("may-facts at exit = %v, want %v", got, want)
	}

	// Must-analysis: intersection join with a Top bottom element.
	top := "⊤"
	must := Solve(c, FlowSpec[fact]{
		Entry:  func() fact { return fact{} },
		Bottom: func() fact { return fact{top: true} },
		Clone:  clone,
		Join: func(dst, src fact) fact {
			if dst[top] {
				return clone(src)
			}
			if src[top] {
				return dst
			}
			for k := range dst {
				if !src[k] {
					delete(dst, k)
				}
			}
			return dst
		},
		Equal:    equal,
		Transfer: transfer,
	})
	atExit = must[c.Exit]
	got = nil
	for k := range atExit {
		got = append(got, k)
	}
	sort.Strings(got)
	// "1" happens unconditionally; "2"/"3" each on only one arm.
	if strings.Join(got, ",") != "1" {
		t.Fatalf("must-facts at exit = %v, want [1]", got)
	}
}

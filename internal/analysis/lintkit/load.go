package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool // part of the standard library
	DepOnly    bool // pulled in as a dependency, not matched by the patterns
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors collects type-checker diagnostics. Errors in dependency
	// packages are tolerated (the checker recovers and keeps going);
	// errors in root packages abort Load.
	TypeErrors []error
	// Program links back to the whole load.
	Program *Program
}

// Program is the result of one Load: every package, dependency-ordered.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // all packages, dependencies first
	ByPath   map[string]*Package
}

// Roots returns the packages matched by the Load patterns (excluding
// dependencies), in load order.
func (p *Program) Roots() []*Package {
	var out []*Package
	for _, pkg := range p.Packages {
		if !pkg.DepOnly && !pkg.Standard {
			out = append(out, pkg)
		}
	}
	return out
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load runs `go list -e -deps -json patterns...` in dir, parses every
// package from source and type-checks the whole dependency graph bottom-up
// with go/types. The standard library is type-checked from GOROOT source —
// no export data and no network are needed, which is the point: this
// loader works in the hermetic build container.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Name,Dir,Standard,DepOnly,GoFiles,Imports,ImportMap,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO off so GoFiles is the complete compiled file list and the pure-Go
	// fallbacks of std packages are selected.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	prog := &Program{Fset: token.NewFileSet(), ByPath: make(map[string]*Package)}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []*listPackage
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		metas = append(metas, &lp)
	}

	imp := &sourceImporter{prog: prog, byDir: make(map[string]*listPackage)}
	for _, m := range metas {
		imp.byDir[m.Dir] = m
	}

	var rootErrs []string
	for _, m := range metas {
		if m.ImportPath == "unsafe" {
			prog.ByPath["unsafe"] = &Package{ImportPath: "unsafe", Standard: true, DepOnly: true,
				Fset: prog.Fset, Types: types.Unsafe, Program: prog}
			prog.Packages = append(prog.Packages, prog.ByPath["unsafe"])
			continue
		}
		if m.Error != nil && !m.DepOnly {
			rootErrs = append(rootErrs, fmt.Sprintf("%s: %s", m.ImportPath, m.Error.Err))
			continue
		}
		pkg, err := typecheck(prog, imp, m)
		if err != nil {
			if m.DepOnly || m.Standard {
				// Tolerate broken dependencies; the checker degrades
				// gracefully and roots that need them will surface errors.
				continue
			}
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[m.ImportPath] = pkg
		if !m.DepOnly && !m.Standard && len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				rootErrs = append(rootErrs, e.Error())
			}
		}
	}
	if len(rootErrs) > 0 {
		return nil, fmt.Errorf("packages contain errors:\n  %s", strings.Join(rootErrs, "\n  "))
	}
	return prog, nil
}

func typecheck(prog *Program, imp *sourceImporter, m *listPackage) (*Package, error) {
	pkg := &Package{
		ImportPath: m.ImportPath,
		Name:       m.Name,
		Dir:        m.Dir,
		Standard:   m.Standard,
		DepOnly:    m.DepOnly,
		Fset:       prog.Fset,
		Program:    prog,
	}
	for _, f := range m.GoFiles {
		path := filepath.Join(m.Dir, f)
		file, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if m.DepOnly || m.Standard {
				continue
			}
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, file)
	}
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer:                 imp,
		FakeImportC:              true,
		Sizes:                    types.SizesFor("gc", runtime.GOARCH),
		DisableUnusedImportCheck: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(m.ImportPath, prog.Fset, pkg.Files, pkg.TypesInfo)
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", m.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// sourceImporter resolves imports against the packages Load has already
// type-checked. It implements types.ImporterFrom so vendored std imports
// (resolved through the importing package's ImportMap) work.
type sourceImporter struct {
	prog  *Program
	byDir map[string]*listPackage
}

func (si *sourceImporter) Import(path string) (*types.Package, error) {
	return si.ImportFrom(path, "", 0)
}

func (si *sourceImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if m, ok := si.byDir[srcDir]; ok && m.ImportMap != nil {
		if mapped, ok := m.ImportMap[path]; ok {
			path = mapped
		}
	}
	pkg, ok := si.prog.ByPath[path]
	if !ok || pkg.Types == nil {
		return nil, fmt.Errorf("package %q not loaded", path)
	}
	return pkg.Types, nil
}

package lintkit

// Intraprocedural control-flow graphs over go/ast, plus a small generic
// forward-dataflow solver. This is the flow-sensitive tier under the
// poolflow, hashneutral and waiterpair passes: syntactic pattern checks
// (the PR-3 passes) see one statement at a time, while ownership, taint
// and pairing proofs are path properties and need basic blocks, join
// points and a fixpoint.
//
// The builder is deliberately source-level: blocks hold *ast.Node lists
// (statements, plus branch conditions and range headers) rather than a
// lowered IR, so passes keep full access to go/types info and comments.
// Precision choices that matter to the passes:
//
//   - panic(...) and os.Exit(...) terminate their block with no
//     successors — paths that end in a throw are exempt from must-reach
//     obligations (a leaked waiter on a panicking path is unreachable
//     machine state).
//   - A branch block records its condition and its true/false successor,
//     so analyses can refine facts along an edge (waiterpair uses this to
//     discharge removals guarded by `len(q) > 0`).
//   - defer statements appear in block order (argument evaluation point)
//     and are additionally collected in CFG.Defers for exit-time effects.
//   - Blocks are numbered in creation order and the solver sweeps them in
//     index order, so iteration — and therefore any diagnostic order
//     derived from facts — is deterministic.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of nodes.
type Block struct {
	Index int
	// Nodes holds the block's statements in execution order. Branch
	// conditions and range headers appear as their ast.Expr / ast.Stmt at
	// the point they are evaluated.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Cond, when non-nil, is the branch condition evaluated at the end of
	// this block; True and False are the successors taken when it holds
	// or fails. Both may be nil for multi-way branches (switch, select).
	Cond  ast.Expr
	True  *Block
	False *Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	// Exit is a synthetic block: every return statement and the normal
	// fall-off-the-end path converge here. Deferred calls conceptually run
	// on entry to Exit. Panic-terminated blocks do NOT reach Exit.
	Exit   *Block
	Blocks []*Block // creation order; Blocks[0] == Entry
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the CFG of a function body. It handles if/else,
// for, range, switch, type switch, select, labeled statements, goto,
// break/continue (labeled and plain), fallthrough, return, defer and
// panic/os.Exit termination.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:    &CFG{},
		labels: make(map[string]*labelInfo),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

type labelInfo struct {
	target *Block // where goto LABEL jumps
	brk    *Block // labeled break target (loops/switch/select)
	cont   *Block // labeled continue target (loops)
}

type builder struct {
	cfg *builderCFG
	cur *Block // nil after a terminator (unreachable until next label/block)

	breaks    []*Block
	continues []*Block
	fallthru  *Block // next case clause, inside a switch body
	labels    map[string]*labelInfo
	// pendingLabel is set while building the statement a label is attached
	// to, so `break L` / `continue L` on the loop can resolve.
	pendingLabel string
}

// builderCFG is an alias to keep the builder definition close to CFG.
type builderCFG = CFG

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) condEdge(from *Block, cond ast.Expr, to *Block, branch bool) {
	from.Cond = cond
	if branch {
		from.True = to
	} else {
		from.False = to
	}
	b.edge(from, to)
}

// ensure gives the builder a current block, creating an unreachable one
// after a terminator so dead statements are still recorded.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		b.ensure()
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.DeferStmt:
		// The call's arguments are evaluated here; the call itself runs at
		// Exit. Passes see the DeferStmt in-line for the former and walk
		// CFG.Defers for the latter.
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.cur = nil // no successors: panic / os.Exit path
		}

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt.
		b.add(s)
	}
}

func (b *builder) label(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{target: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.ensure()
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.brk != nil {
				b.edge(b.cur, li.brk)
			}
		} else if n := len(b.breaks); n > 0 {
			b.edge(b.cur, b.breaks[n-1])
		}
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.cont != nil {
				b.edge(b.cur, li.cont)
			}
		} else if n := len(b.continues); n > 0 {
			b.edge(b.cur, b.continues[n-1])
		}
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.cur, b.label(s.Label.Name).target)
		}
	case token.FALLTHROUGH:
		if b.fallthru != nil {
			b.edge(b.cur, b.fallthru)
		}
	}
	b.cur = nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.ensure()

	then := b.newBlock()
	b.condEdge(cond, s.Cond, then, true)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur

	after := b.newBlock()
	if s.Else != nil {
		els := b.newBlock()
		b.condEdge(cond, s.Cond, els, false)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	} else {
		b.condEdge(cond, s.Cond, after, false)
	}
	if thenEnd != nil {
		b.edge(thenEnd, after)
	}
	b.cur = after
}

// takeLabel consumes the pending label (set by the enclosing LabeledStmt)
// and wires its break/continue targets.
func (b *builder) takeLabel(brk, cont *Block) {
	if b.pendingLabel == "" {
		return
	}
	li := b.labels[b.pendingLabel]
	li.brk = brk
	li.cont = cont
	b.pendingLabel = ""
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.edge(b.ensure(), head)

	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.condEdge(head, s.Cond, body, true)
		b.condEdge(head, s.Cond, after, false)
	} else {
		b.edge(head, body)
	}

	var post *Block
	cont := head
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		cont = post
	}
	b.takeLabel(after, cont)
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, cont)
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock()
	b.edge(b.ensure(), head)
	// The RangeStmt itself is the head's node: passes read X there and
	// treat Key/Value as (re)bound per iteration.
	head.Nodes = append(head.Nodes, s)

	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)

	b.takeLabel(after, head)
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.ensure()
	after := b.newBlock()
	b.takeLabel(after, nil)

	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CaseClause)
		blk := b.newBlock()
		for _, e := range clause.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		if clause.List == nil {
			hasDefault = true
		}
		b.edge(head, blk)
		clauses = append(clauses, clause)
		blocks = append(blocks, blk)
	}
	if !hasDefault {
		b.edge(head, after)
	}

	b.breaks = append(b.breaks, after)
	for i, clause := range clauses {
		savedFall := b.fallthru
		if i+1 < len(blocks) {
			b.fallthru = blocks[i+1]
		} else {
			b.fallthru = nil
		}
		b.cur = blocks[i]
		b.stmtList(clause.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		b.fallthru = savedFall
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.ensure()
	after := b.newBlock()
	b.takeLabel(after, nil)

	hasDefault := false
	b.breaks = append(b.breaks, after)
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CaseClause)
		blk := b.newBlock()
		if clause.List == nil {
			hasDefault = true
		}
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(clause.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.ensure()
	after := b.newBlock()
	b.takeLabel(after, nil)

	b.breaks = append(b.breaks, after)
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CommClause)
		blk := b.newBlock()
		if clause.Comm != nil {
			blk.Nodes = append(blk.Nodes, clause.Comm)
		}
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(clause.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// isTerminalCall reports whether e is a call that never returns:
// panic(...) or os.Exit(...).
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Forward dataflow solver.
// ---------------------------------------------------------------------------

// FlowSpec defines one forward dataflow problem over a CFG. F is the fact
// type. Join direction decides may vs must: union for may-analyses
// (poolflow ownership states), intersection for must-analyses (waiterpair
// removal obligations).
type FlowSpec[F any] struct {
	// Entry produces the fact entering the function.
	Entry func() F
	// Bottom produces the initial (pre-join) fact of every other block.
	// For a may-analysis this is the empty fact; for a must-analysis it is
	// top (so the first real predecessor fact replaces it via Join).
	Bottom func() F
	// Clone deep-copies a fact. Transfer and Join receive clones and may
	// mutate them freely.
	Clone func(F) F
	// Join merges src into dst and returns the result (may reuse dst).
	Join func(dst, src F) F
	// Equal reports fact equality; the fixpoint stops when nothing changes.
	Equal func(a, b F) bool
	// Transfer applies one block's effects to an incoming fact clone.
	Transfer func(b *Block, in F) F
	// EdgeRefine, when non-nil, adjusts the fact flowing along a
	// conditional edge: cond is the branch condition of the source block
	// and branch tells which way the edge goes.
	EdgeRefine func(cond ast.Expr, branch bool, f F) F
}

// Solve runs the forward analysis to fixpoint and returns the fact at
// entry to each block. Blocks are swept in index order each round, so the
// result (and any iteration a pass performs over it) is deterministic.
func Solve[F any](c *CFG, spec FlowSpec[F]) map[*Block]F {
	ins := make(map[*Block]F, len(c.Blocks))
	for _, blk := range c.Blocks {
		if blk == c.Entry {
			ins[blk] = spec.Entry()
		} else {
			ins[blk] = spec.Bottom()
		}
	}
	// Round-robin to fixpoint. Facts live in finite lattices (sets over
	// the function's variables), so this terminates; the cap is a guard
	// against a non-monotone Transfer bug, not a tuning parameter.
	maxRounds := 4*len(c.Blocks) + 16
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, blk := range c.Blocks {
			out := spec.Transfer(blk, spec.Clone(ins[blk]))
			for i, succ := range blk.Succs {
				f := out
				if i < len(blk.Succs)-1 {
					f = spec.Clone(out)
				}
				if spec.EdgeRefine != nil && blk.Cond != nil {
					if succ == blk.True {
						f = spec.EdgeRefine(blk.Cond, true, f)
					} else if succ == blk.False {
						f = spec.EdgeRefine(blk.Cond, false, f)
					}
				}
				merged := spec.Join(spec.Clone(ins[succ]), f)
				if !spec.Equal(merged, ins[succ]) {
					ins[succ] = merged
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return ins
}

// Package lintkit is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built entirely on the standard
// library (go/ast, go/parser, go/types and the `go list` command).
//
// The repository's static passes (internal/analysis/determinism,
// poolhygiene, hotpathalloc, statsnapshot) are written against this
// package's Analyzer/Pass API, which deliberately mirrors go/analysis so
// the passes can be ported to the real framework verbatim if the
// dependency ever becomes available. The container this project builds in
// has no module proxy access, so vendoring x/tools is not an option;
// everything here — package loading, type checking, diagnostic plumbing
// and the `// want` fixture harness in internal/analysis/linttest — is
// implemented from scratch on the standard library.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static pass. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the pass in diagnostics and -only filters.
	Name string
	// Doc is a one-paragraph description, shown by `simlint -help`.
	Doc string
	// Run applies the pass to one package and reports diagnostics via
	// pass.Report. The result value is unused (kept for API parity).
	Run func(pass *Pass) (interface{}, error)
}

// Pass carries the per-package inputs of one analyzer invocation.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test files of the package
	Pkg       *types.Package
	TypesInfo *types.Info
	// Program gives access to every package loaded alongside this one
	// (dependencies included), so passes can read annotations declared in
	// other packages' sources — poor man's analysis facts.
	Program *Program
	// Registry, when the driver installs one, tracks suppression
	// directives across the run so unused ones can be reported as stale.
	// Passes feed it by building their Suppressions via Pass.Suppressions.
	Registry *DirectiveRegistry
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Suppressions scans file for the pass's suppression marker, registering
// each occurrence with the run's directive registry (when present) so the
// driver can report suppressions that stopped suppressing anything.
func (p *Pass) Suppressions(file *ast.File, marker string) *Suppressions {
	return newSuppressions(p.Fset, file, marker, p.Registry)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a fully resolved diagnostic, ready for printing.
type Finding struct {
	Analyzer string
	Pkg      string // package import path
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies each analyzer to each package and returns the merged
// findings, deterministically sorted by position then message. filter, when
// non-nil, can exclude (analyzer, package) combinations — the driver uses
// it to scope the determinism pass to simulation code.
func Run(pkgs []*Package, analyzers []*Analyzer, filter func(*Analyzer, *Package) bool) ([]Finding, error) {
	return RunWithRegistry(pkgs, analyzers, filter, nil)
}

// RunWithRegistry is Run with a shared directive registry: every pass built
// on Pass.Suppressions registers its suppression comments there, and the
// driver reports the unused ones as stale after the run.
func RunWithRegistry(pkgs []*Package, analyzers []*Analyzer, filter func(*Analyzer, *Package) bool, reg *DirectiveRegistry) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if filter != nil && !filter(a, pkg) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Program:   pkg.Program,
				Registry:  reg,
			}
			aName, pkgPath := a.Name, pkg.ImportPath
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: aName,
					Pkg:      pkgPath,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// ---------------------------------------------------------------------------
// Annotation helpers shared by the passes.
// ---------------------------------------------------------------------------

// Suppressions indexes "//lint:" style line comments of one file. A
// directive suppresses findings on its own line and, when it is the only
// thing on its line, on the following line.
type Suppressions struct {
	fset  *token.FileSet
	lines map[int]*Directive // line → governing directive occurrence
}

// NewSuppressions scans file for comments beginning with marker (e.g.
// "//lint:deterministic") and records the lines they govern. Prefer
// Pass.Suppressions inside analyzers — it also feeds the run's stale-
// suppression registry.
func NewSuppressions(fset *token.FileSet, file *ast.File, marker string) *Suppressions {
	return newSuppressions(fset, file, marker, nil)
}

func newSuppressions(fset *token.FileSet, file *ast.File, marker string, reg *DirectiveRegistry) *Suppressions {
	s := &Suppressions{fset: fset, lines: make(map[int]*Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, marker)
			if !ok {
				continue
			}
			pos := fset.Position(c.Slash)
			d := reg.Register(marker, pos, strings.TrimSpace(text))
			s.lines[pos.Line] = d
			// A directive on its own line (column 1..any, nothing but the
			// comment) also governs the next line. Approximation: always
			// extend to the next line; a trailing same-line directive
			// governing the following statement too is harmless.
			s.lines[pos.Line+1] = d
		}
	}
	return s
}

// Suppressed reports whether pos falls on a governed line, and marks the
// governing directive as used. Call it only where a finding would
// otherwise be reported — a speculative call would defeat stale-
// suppression detection by marking directives that suppress nothing.
func (s *Suppressions) Suppressed(pos token.Pos) bool {
	d, ok := s.lines[s.fset.Position(pos).Line]
	if ok {
		d.Used = true
	}
	return ok
}

// FuncAnnotated reports whether fn's doc comment contains the given
// directive (e.g. "//sim:hotpath").
func FuncAnnotated(fn *ast.FuncDecl, directive string) bool {
	return commentGroupHas(fn.Doc, directive)
}

func commentGroupHas(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// TypeAnnotated reports whether the TypeSpec or its enclosing GenDecl
// carries the directive.
func TypeAnnotated(decl *ast.GenDecl, spec *ast.TypeSpec, directive string) bool {
	return commentGroupHas(spec.Doc, directive) || commentGroupHas(spec.Comment, directive) ||
		(decl != nil && commentGroupHas(decl.Doc, directive))
}

// ReceiverStruct resolves fn's receiver to its named type and underlying
// struct, or returns nil if fn is not a method on a (pointer to) struct.
func ReceiverStruct(info *types.Info, fn *ast.FuncDecl) (*types.Named, *types.Struct) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil, nil
	}
	tv := info.TypeOf(fn.Recv.List[0].Type)
	if tv == nil {
		return nil, nil
	}
	if ptr, ok := tv.(*types.Pointer); ok {
		tv = ptr.Elem()
	}
	named, ok := tv.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// Package waitq reproduces the wait-queue pairing bug classes: the
// arbiter lockQueue stale-waiter leak (a terminal-disposition function
// that marks waiters dead but never dequeues them), the leak-on-branch
// variant (removal only on one arm of a conditional), and the sanctioned
// patterns — filter-loop removal, guarded FIFO pop under a len() test,
// deferred drain, map delete, and panic-exempt paths.
package waitq

type waiter struct {
	tok  uint64
	dead bool
}

// Arbiter mirrors the real arbiter's slice-backed lock queue.
type Arbiter struct {
	//sim:waitq lockq
	lockQueue []*waiter

	granted int
}

func (a *Arbiter) enqueue(w *waiter) {
	a.lockQueue = append(a.lockQueue, w)
}

// unlock pops the queue head when one is waiting.
//
//sim:waitq deq lockq
func (a *Arbiter) unlock() {
	if len(a.lockQueue) > 0 {
		a.lockQueue = a.lockQueue[1:]
	}
}

// endPreArbitrationStale is the historical bug verbatim: the dying
// transaction's waiters are marked dead but stay queued, so the stale
// entries fire into recycled transaction state later.
//
//sim:waitq final lockq
func (a *Arbiter) endPreArbitrationStale(tok uint64) { // want `final function endPreArbitrationStale may reach exit without removing from wait queue "lockq"`
	for _, w := range a.lockQueue {
		if w.tok == tok {
			w.dead = true
		}
	}
}

// endPreArbitration is the fixed version: a filter loop rebuilds the
// queue without the dying transaction's waiters.
//
//sim:waitq final lockq
func (a *Arbiter) endPreArbitration(tok uint64) {
	keep := a.lockQueue[:0]
	for _, w := range a.lockQueue {
		if w.tok != tok {
			keep = append(keep, w)
		}
	}
	a.lockQueue = keep
}

// release is the G-arbiter pattern: pop under a len() guard. The false
// edge proves the queue empty, discharging the obligation vacuously.
//
//sim:waitq final lockq
func (a *Arbiter) release() {
	if len(a.lockQueue) > 0 {
		next := a.lockQueue[0]
		a.lockQueue = a.lockQueue[1:]
		next.dead = false
		return
	}
	a.granted--
}

// cancelIfGranted leaks on the granted==0 branch: the deq call is only
// reached on one arm.
//
//sim:waitq final lockq
func (a *Arbiter) cancelIfGranted() { // want `final function cancelIfGranted may reach exit without removing from wait queue "lockq"`
	if a.granted > 0 {
		a.unlock()
	}
}

// resetDeferred drains through a defer; exit-time effects count.
//
//sim:waitq final lockq
func (a *Arbiter) resetDeferred() {
	defer a.drain()
	a.granted = 0
}

//sim:waitq deq lockq
func (a *Arbiter) drain() {
	a.lockQueue = nil
}

// mustCancel: the non-removing path panics, so it is exempt.
//
//sim:waitq final lockq
func (a *Arbiter) mustCancel(ok bool) {
	if !ok {
		panic("protocol violation")
	}
	a.lockQueue = nil
}

// sanctioned carries a reviewed exception.
//
//sim:waitq final lockq
//lint:waiter squash path drains via an engine callback registered at enqueue
func (a *Arbiter) sanctioned() {
	a.granted = 0
}

// Tracker mirrors the arbiter's pending-transaction map.
type Tracker struct {
	//sim:waitq pending
	pending map[uint64]*waiter
}

func (t *Tracker) register(w *waiter) {
	t.pending[w.tok] = w
}

//sim:waitq final pending
func (t *Tracker) done(tok uint64) {
	delete(t.pending, tok)
}

// Leaky has registrations but no removal site anywhere: the pairing
// check fires at the field.
type Leaky struct {
	//sim:waitq leakq
	waiters []*waiter // want `wait queue "leakq" has registration sites but no removal site anywhere`
}

func (l *Leaky) add(w *waiter) {
	l.waiters = append(l.waiters, w)
}

// NoFinal removes, but no function is annotated as the terminal
// disposition, so nothing proves removal happens on cancel paths.
type NoFinal struct {
	//sim:waitq nofinalq
	q []*waiter // want `wait queue "nofinalq" has no //sim:waitq final function proving removal on terminal paths`
}

func (n *NoFinal) add(w *waiter) {
	n.q = append(n.q, w)
}

func (n *NoFinal) pop() {
	n.q = n.q[1:]
}

// Idle has no registration sites at all: no obligation.
type Idle struct {
	//sim:waitq idleq
	q []*waiter
}

func (i *Idle) flush() {
	i.q = nil
}

module waitq

go 1.22

package waiterpair_test

import (
	"testing"

	"bulksc/internal/analysis/linttest"
	"bulksc/internal/analysis/waiterpair"
)

func TestWaiterpairFixture(t *testing.T) {
	linttest.Run(t, "testdata/waitq", waiterpair.Analyzer)
}

// Package waiterpair implements the simlint pass that proves wait-queue
// registration/removal pairing. The simulator parks work on wait queues —
// the arbiter's lock queue, the sharded G-arbiter's per-shard FIFO, the
// directory's per-entry waiter lists, the arbiter's pending-transaction
// map — and the recurring bug class (PR 2's arbiter lockQueue leak) is a
// registration that survives the waiter's death: an entry enqueued on
// grant-denied or conflict paths that no cancel/denial/squash path ever
// removes, leaving a stale callback that fires into recycled state.
//
// Annotation vocabulary:
//
//   - `//sim:waitq <name>` on a struct field: the field is a wait queue
//     (slice of waiters, or map keyed by token).
//   - `//sim:waitq enq <name>` on a function: it registers a waiter
//     (beyond the directly visible append/map-store sites).
//   - `//sim:waitq deq <name>` on a function: calling it removes from the
//     queue.
//   - `//sim:waitq final <name>` on a function: a terminal-disposition
//     path (cancel, denial, squash, reset) — every non-panic path through
//     it must reach a removal of <name>.
//   - `//lint:waiter <reason>` suppresses a finding on its line.
//
// Two checks run:
//
//  1. Program-level pairing: every annotated queue with at least one
//     registration site (append to the field, map index-store, or a call
//     to an enq function) must have at least one removal site somewhere
//     (a non-growing assignment to the field, delete/clear on it, or a
//     deq function) and at least one `final` function proving where
//     removal is guaranteed.
//  2. Flow-sensitive must-analysis over each `final` function
//     (lintkit.BuildCFG + Solve, intersection join): every path to exit
//     must pass a removal. Edges that prove the queue empty — the false
//     edge of `len(q) > 0`, the true edge of `len(q) == 0` — discharge
//     the obligation vacuously (the G-arbiter's guarded FIFO pop).
package waiterpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bulksc/internal/analysis/lintkit"
)

// WaitqDirective is the annotation prefix for queues and their operations.
const WaitqDirective = "//sim:waitq"

// Directive is the line-level suppression marker.
const Directive = "//lint:waiter"

// Analyzer is the waiterpair pass.
var Analyzer = &lintkit.Analyzer{
	Name: "waiterpair",
	Doc: "prove wait-queue registration/removal pairing: every //sim:waitq " +
		"registration needs a removal site, and every `final` function must " +
		"remove on all non-panic paths",
	Run: run,
}

type waitqEnv struct {
	fields map[types.Object]string // queue field → name
	enq    map[types.Object]string // functions that register
	deq    map[types.Object]string // functions that remove
	final  map[types.Object]string // functions with a must-remove obligation
	names  map[string]bool
}

func newWaitqEnv(prog *lintkit.Program) *waitqEnv {
	e := &waitqEnv{
		fields: lintkit.CollectFieldDirectives(prog, WaitqDirective),
		enq:    make(map[types.Object]string),
		deq:    make(map[types.Object]string),
		final:  make(map[types.Object]string),
		names:  make(map[string]bool),
	}
	//lint:deterministic order-insensitive set projection into another map
	for _, name := range e.fields {
		e.names[name] = true
	}
	//lint:deterministic order-insensitive re-keying into verb-split maps
	for obj, args := range lintkit.CollectFuncDirectives(prog, WaitqDirective) {
		verb, name, ok := strings.Cut(args, " ")
		if !ok {
			continue
		}
		name = strings.TrimSpace(name)
		switch verb {
		case "enq":
			e.enq[obj] = name
		case "deq":
			e.deq[obj] = name
		case "final":
			e.final[obj] = name
		}
	}
	return e
}

func run(pass *lintkit.Pass) (interface{}, error) {
	env := newWaitqEnv(pass.Program)
	if len(env.fields) == 0 {
		return nil, nil
	}
	checkPairing(pass, env)
	for _, file := range pass.Files {
		sup := pass.Suppressions(file, Directive)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			if name, ok := env.final[obj]; ok {
				checkFinal(pass, sup, env, fn, name)
			}
		}
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// Check 1: program-level pairing.
// ---------------------------------------------------------------------------

// checkPairing reports queues declared in THIS package that have
// registration sites but no removal site or no final function anywhere in
// the program.
func checkPairing(pass *lintkit.Pass, env *waitqEnv) {
	// Queues declared in this package, deterministic order.
	var local []types.Object
	for obj := range env.fields {
		local = append(local, obj)
	}
	sort.Slice(local, func(i, j int) bool { return local[i].Pos() < local[j].Pos() })

	type tally struct{ enq, rem bool }
	counts := make(map[string]*tally)
	for _, obj := range local {
		if obj.Pkg() == pass.Pkg {
			counts[env.fields[obj]] = &tally{}
		}
	}
	if len(counts) == 0 {
		return
	}
	//lint:deterministic order-independent existence projection over annotation sets
	for _, n := range env.enq {
		if t, ok := counts[n]; ok {
			t.enq = true
		}
	}
	//lint:deterministic order-independent existence projection over annotation sets
	for _, n := range env.deq {
		if t, ok := counts[n]; ok {
			t.rem = true
		}
	}
	for _, pkg := range pass.Program.Packages {
		if pkg.Standard || pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			scanSites(pkg.TypesInfo, file, env, func(name string, isRemoval bool) {
				if t, ok := counts[name]; ok {
					if isRemoval {
						t.rem = true
					} else {
						t.enq = true
					}
				}
			})
		}
	}
	hasFinal := make(map[string]bool)
	//lint:deterministic order-insensitive set projection into another map
	for _, n := range env.final {
		hasFinal[n] = true
	}
	for _, obj := range local {
		name := env.fields[obj]
		t := counts[name]
		if t == nil || !t.enq {
			continue // write-only or unused queues carry no obligation
		}
		if !t.rem {
			pass.Reportf(obj.Pos(), "wait queue %q has registration sites but no removal site anywhere "+
				"(stale waiters outlive their transaction: the PR-2 lockQueue leak class)", name)
			continue
		}
		if !hasFinal[name] {
			pass.Reportf(obj.Pos(), "wait queue %q has no //sim:waitq final function proving removal on "+
				"terminal paths (annotate the cancel/denial/reset disposition)", name)
		}
	}
}

// scanSites invokes found(name, isRemoval) for every registration and
// removal site in file. Registration: `f = append(f, x)` growth on a
// queue field, a map store `f[k] = v`, or a call to an enq function.
// Removal: any other assignment to the field, delete/clear on it, or a
// call to a deq function.
func scanSites(info *types.Info, file *ast.File, env *waitqEnv, found func(name string, isRemoval bool)) {
	fieldName := func(e ast.Expr) (string, bool) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return "", false
		}
		name, ok := env.fields[s.Obj()]
		return name, ok
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if name, ok := fieldName(lhs); ok {
					isGrowth := false
					if i < len(n.Rhs) {
						if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
							if id, ok := call.Fun.(*ast.Ident); ok {
								if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" &&
									len(call.Args) > 1 {
									if first, ok := fieldName(call.Args[0]); ok && first == name {
										isGrowth = true
									}
								}
							}
						}
					}
					found(name, !isGrowth)
					continue
				}
				// Map store f[k] = v: registration. Index stores into
				// slice-typed queues are slot scrubbing (the G-arbiter
				// zeroes the popped head), not registration.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if name, ok := fieldName(ix.X); ok {
						if t := info.TypeOf(ix.X); t != nil {
							if _, isMap := t.Underlying().(*types.Map); isMap {
								found(name, false)
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if (b.Name() == "delete" || b.Name() == "clear") && len(n.Args) > 0 {
						if name, ok := fieldName(n.Args[0]); ok {
							found(name, true)
						}
					}
					return true
				}
			}
			if obj := staticCallee(info, n); obj != nil {
				if name, ok := env.enq[obj]; ok {
					found(name, false)
				}
				if name, ok := env.deq[obj]; ok {
					found(name, true)
				}
			}
		}
		return true
	})
}

func staticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	if f, ok := obj.(*types.Func); ok {
		return f.Origin()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Check 2: must-remove analysis over final functions.
// ---------------------------------------------------------------------------

// mustFact is the must-analysis fact: the set of queue names provably
// removed (or proven empty) on every path reaching this point. top is the
// pre-join sentinel of unvisited blocks.
type mustFact struct {
	top     bool
	removed map[string]bool
}

func checkFinal(pass *lintkit.Pass, sup *lintkit.Suppressions, env *waitqEnv, fn *ast.FuncDecl, queue string) {
	info := pass.TypesInfo
	cfg := lintkit.BuildCFG(fn.Body)

	// Deferred removals count at exit.
	deferRemoved := make(map[string]bool)
	for _, d := range cfg.Defers {
		removalsIn(info, env, d.Call, func(name string) { deferRemoved[name] = true })
	}

	clone := func(f mustFact) mustFact {
		g := mustFact{top: f.top, removed: make(map[string]bool, len(f.removed))}
		//lint:deterministic order-insensitive set copy; result is a map again
		for k := range f.removed {
			g.removed[k] = true
		}
		return g
	}
	ins := lintkit.Solve(cfg, lintkit.FlowSpec[mustFact]{
		Entry:  func() mustFact { return mustFact{removed: map[string]bool{}} },
		Bottom: func() mustFact { return mustFact{top: true, removed: map[string]bool{}} },
		Clone:  clone,
		Join: func(dst, src mustFact) mustFact {
			if dst.top {
				return clone(src)
			}
			if src.top {
				return dst
			}
			//lint:deterministic order-insensitive set intersection
			for k := range dst.removed {
				if !src.removed[k] {
					delete(dst.removed, k)
				}
			}
			return dst
		},
		Equal: func(a, b mustFact) bool {
			if a.top != b.top || len(a.removed) != len(b.removed) {
				return false
			}
			//lint:deterministic order-independent set comparison
			for k := range a.removed {
				if !b.removed[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *lintkit.Block, in mustFact) mustFact {
			for _, n := range b.Nodes {
				transferRemovals(info, env, n, &in)
			}
			return in
		},
		EdgeRefine: func(cond ast.Expr, branch bool, f mustFact) mustFact {
			if name, emptyWhen, ok := lenEmptinessTest(info, env, cond); ok && branch == emptyWhen {
				// The queue is provably empty on this edge: nothing to
				// remove, the obligation is vacuously met.
				f.removed[name] = true
			}
			return f
		},
	})
	exit := ins[cfg.Exit]
	if exit.top {
		return // exit unreachable (every path panics): nothing to prove
	}
	if !exit.removed[queue] && !deferRemoved[queue] {
		if sup.Suppressed(fn.Name.Pos()) {
			return
		}
		pass.Reportf(fn.Name.Pos(), "final function %s may reach exit without removing from wait queue %q "+
			"(a stale waiter would outlive its transaction; remove on every cancel/denial/squash path, "+
			"or justify with %s <reason>)", fn.Name.Name, queue, Directive)
	}
}

// transferRemovals applies one node's removal effects to the fact.
func transferRemovals(info *types.Info, env *waitqEnv, n ast.Node, f *mustFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			name, ok := queueField(info, env, lhs)
			if !ok {
				continue
			}
			isGrowth := false
			if i < len(n.Rhs) {
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 1 {
							if first, ok := queueField(info, env, call.Args[0]); ok && first == name {
								isGrowth = true
							}
						}
					}
				}
			}
			if !isGrowth {
				f.removed[name] = true
			}
		}
		for _, r := range n.Rhs {
			callRemovals(info, env, r, f)
		}
	case *ast.ExprStmt:
		callRemovals(info, env, n.X, f)
	case ast.Expr:
		callRemovals(info, env, n, f)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			callRemovals(info, env, r, f)
		}
	}
}

// callRemovals finds removal calls (deq functions, delete/clear builtins)
// nested in an expression.
func callRemovals(info *types.Info, env *waitqEnv, e ast.Expr, f *mustFact) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure body does not run here
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		removalsIn(info, env, call, func(name string) { f.removed[name] = true })
		return true
	})
}

// removalsIn reports the queues one call removes from.
func removalsIn(info *types.Info, env *waitqEnv, call *ast.CallExpr, found func(string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if (b.Name() == "delete" || b.Name() == "clear") && len(call.Args) > 0 {
				if name, ok := queueField(info, env, call.Args[0]); ok {
					found(name)
				}
			}
			return
		}
	}
	if obj := staticCallee(info, call); obj != nil {
		if name, ok := env.deq[obj]; ok {
			found(name)
		}
	}
}

// queueField resolves e to an annotated queue field and returns its name.
func queueField(info *types.Info, env *waitqEnv, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	name, ok := env.fields[s.Obj()]
	return name, ok
}

// lenEmptinessTest recognizes emptiness tests over annotated queues:
// len(q) > 0, len(q) != 0, 0 < len(q) (emptyWhen=false: the FALSE edge
// proves empty) and len(q) == 0 (emptyWhen=true). Returns the queue name
// and on which branch the queue is proven empty.
func lenEmptinessTest(info *types.Info, env *waitqEnv, cond ast.Expr) (name string, emptyWhen bool, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin {
		return "", false, false
	}
	lenArg := func(e ast.Expr) (string, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return "", false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return "", false
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
			return "", false
		}
		return queueField(info, env, call.Args[0])
	}
	isZero := func(e ast.Expr) bool {
		lit, ok := ast.Unparen(e).(*ast.BasicLit)
		return ok && lit.Kind == token.INT && lit.Value == "0"
	}
	l, lok := lenArg(be.X)
	r, rok := lenArg(be.Y)
	switch {
	case lok && isZero(be.Y): // len(q) OP 0
		switch be.Op {
		case token.GTR, token.NEQ:
			return l, false, true
		case token.EQL:
			return l, true, true
		}
	case rok && isZero(be.X): // 0 OP len(q)
		switch be.Op {
		case token.LSS, token.NEQ:
			return r, false, true
		case token.EQL:
			return r, true, true
		}
	}
	return "", false, false
}

// Package linttest is an analysistest-style fixture harness for lintkit
// analyzers. A fixture is a self-contained Go module (its own go.mod, so
// the surrounding repository never builds it — fixtures live under
// testdata/, which the go tool prunes) whose source lines carry
// expectations of the form
//
//	m := map[int]int{} // want `map iteration`
//	for k := range m { // want `map iteration` `second regexp`
//
// Each backquoted or double-quoted string is a regular expression that
// must match exactly one diagnostic reported on that line; conversely
// every diagnostic must be matched by a want on its line. This is the same
// contract as golang.org/x/tools/go/analysis/analysistest, reimplemented
// on the standard library (see lintkit's package comment for why).
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bulksc/internal/analysis/lintkit"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var argRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hits int
}

// Run loads the fixture module rooted at dir, applies analyzer a to every
// package in it, and checks the diagnostics against the `// want`
// expectations embedded in the fixture sources.
func Run(t *testing.T, dir string, a *lintkit.Analyzer) {
	t.Helper()
	prog, err := lintkit.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := lintkit.Run(prog.Roots(), []*lintkit.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	// Collect expectations from every fixture file's comments.
	var wants []*expectation
	for _, pkg := range prog.Roots() {
		for _, file := range pkg.Files {
			fname := prog.Fset.Position(file.Pos()).Filename
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					line := prog.Fset.Position(c.Slash).Line
					for _, am := range argRe.FindAllStringSubmatch(m[1], -1) {
						raw := am[1]
						if raw == "" && am[2] != "" {
							unq, err := strconv.Unquote(`"` + am[2] + `"`)
							if err != nil {
								t.Fatalf("%s:%d: bad want string %q: %v", fname, line, am[2], err)
							}
							raw = unq
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", fname, line, raw, err)
						}
						wants = append(wants, &expectation{file: fname, line: line, re: re, raw: raw})
					}
				}
			}
		}
	}

	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	byLine := make(map[string][]*expectation)
	for _, w := range wants {
		byLine[key(w.file, w.line)] = append(byLine[key(w.file, w.line)], w)
	}

	for _, f := range findings {
		matched := false
		for _, w := range byLine[key(f.Pos.Filename, f.Pos.Line)] {
			if w.re.MatchString(f.Message) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", f)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", trimFile(w.file), w.line, w.raw)
		}
	}
}

func trimFile(f string) string {
	if i := strings.LastIndex(f, "testdata/"); i >= 0 {
		return f[i:]
	}
	return f
}

// Package hashneutral implements the simlint pass that statically
// enforces the observer contract: code annotated `//sim:observer` — the
// SC-witness checker, the liveness watchdog, the history trace writer,
// the nil-plan fault hooks — may read simulation state freely but must
// never mutate it. Today that contract ("hash-neutral: on or off, the
// determinism hash is bit-identical") rests on 104 dynamic goldens; this
// pass catches the violation at lint time, before a golden ever runs.
//
// Annotation vocabulary:
//
//   - `//sim:observer` on a function, method or type: the function (or
//     every method of the type) is an observer and is checked.
//   - `//sim:observes` on a pointer field of an observer type: the field
//     points INTO simulation state (the watchdog's machine backref).
//     Unannotated pointer fields of an observer are presumed
//     observer-owned sinks (the trace writer's bufio.Writer) and may be
//     mutated freely.
//   - `//lint:observer <reason>` on a line: a justified exception (e.g.
//     the watchdog re-arming its own poll event on the engine).
//
// The analysis is flow-sensitive taint (lintkit.BuildCFG + Solve, union
// join). Taint roots are the receiver (when its type is not an observer),
// every pointer-shaped parameter, and loads of `//sim:observes` fields;
// taint propagates through selectors, indexing, dereferences, conversions
// and method results. A violation is any store through a tainted base,
// any mutating builtin (copy/clear/delete/append/send) applied to a
// tainted value, or any call that mutates a tainted operand. Whether a
// callee mutates an operand comes from a program-wide mutation summary
// computed on demand over every loaded package — standard library
// included, since lintkit type-checks std from source. Calls through
// interfaces or func values with tainted operands are unprovable and
// flagged.
package hashneutral

import (
	"go/ast"
	"go/token"
	"go/types"

	"bulksc/internal/analysis/lintkit"
)

// ObserverDirective marks observer functions and types.
const ObserverDirective = "//sim:observer"

// ObservesDirective marks observer-struct fields that point into sim state.
const ObservesDirective = "//sim:observes"

// Directive is the line-level suppression marker.
const Directive = "//lint:observer"

// Analyzer is the hashneutral pass.
var Analyzer = &lintkit.Analyzer{
	Name: "hashneutral",
	Doc: "prove //sim:observer code reads but never mutates simulation state " +
		"(taint from non-observer receivers/params and //sim:observes fields; " +
		"program-wide mutation summaries)",
	Run: run,
}

func run(pass *lintkit.Pass) (interface{}, error) {
	env := newEnv(pass.Program)
	if len(env.observerFuncs) == 0 && len(env.observerTypes) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		sup := pass.Suppressions(file, Directive)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !env.isObserverFunc(pass, fn) {
				continue
			}
			oc := &obsChecker{pass: pass, sup: sup, env: env}
			oc.checkBody(fn.Body, oc.roots(fn))
		}
	}
	return nil, nil
}

// env holds the program-wide annotation sets and the lazy mutation
// summaries, shared across the packages of one load.
type env struct {
	prog          *lintkit.Program
	observerFuncs map[types.Object]string // annotated functions/methods
	observerTypes map[types.Object]string // annotated types (*types.TypeName)
	observesField map[types.Object]string // //sim:observes fields

	decls map[types.Object]*funcDecl // every function decl in the program
	memo  map[types.Object][]bool    // mutation summary per operand
	stack map[types.Object]bool      // recursion guard
}

type funcDecl struct {
	fn  *ast.FuncDecl
	pkg *lintkit.Package
}

// envCache memoizes one env per Program: the pass runs once per package
// but the summaries and annotation sweeps are program-wide.
var envCache = map[*lintkit.Program]*env{}

func newEnv(prog *lintkit.Program) *env {
	if e, ok := envCache[prog]; ok {
		return e
	}
	e := &env{
		prog:          prog,
		observerFuncs: lintkit.CollectFuncDirectives(prog, ObserverDirective),
		observerTypes: lintkit.CollectTypeDirectives(prog, ObserverDirective),
		observesField: lintkit.CollectFieldDirectives(prog, ObservesDirective),
		decls:         make(map[types.Object]*funcDecl),
		memo:          make(map[types.Object][]bool),
		stack:         make(map[types.Object]bool),
	}
	for _, pkg := range prog.Packages {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					if obj := pkg.TypesInfo.Defs[fn.Name]; obj != nil {
						e.decls[obj] = &funcDecl{fn: fn, pkg: pkg}
					}
				}
			}
		}
	}
	envCache[prog] = e
	return e
}

// isObserverType reports whether t (after pointer deref) is an
// //sim:observer-annotated named type.
func (e *env) isObserverType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	_, ok = e.observerTypes[named.Obj()]
	return ok
}

// isObserverFunc reports whether fn is checked: annotated itself, or a
// method of an annotated type.
func (e *env) isObserverFunc(pass *lintkit.Pass, fn *ast.FuncDecl) bool {
	if _, ok := lintkit.FuncDirective(fn, ObserverDirective); ok {
		return true
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	return e.isObserverType(pass.TypesInfo.TypeOf(fn.Recv.List[0].Type))
}

// pointerShaped reports whether values of t can alias state mutable by
// the holder: pointers, slices, maps, chans, interfaces, funcs.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Interface, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

// ---------------------------------------------------------------------------
// Mutation summaries.
// ---------------------------------------------------------------------------

// summary returns, for each operand of fn (receiver first when fn is a
// method, then parameters), whether calling fn may mutate state reachable
// through it. Unknown bodies (no source, assembly) are pessimistically
// all-mutating for pointer-shaped operands. Recursion is cut optimistic
// (a cycle member observed mid-computation contributes no mutations of
// its own frame), which is the standard treatment and safe here because
// the final verdict re-examines every call site.
func (e *env) summary(obj types.Object) []bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	obj = fn.Origin()
	if s, ok := e.memo[obj]; ok {
		return s
	}
	if e.stack[obj] {
		return nil // cycle: optimistic
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	operands := operandVars(sig)
	d := e.decls[obj]
	if d == nil {
		// No source: assume every pointer-shaped operand may be mutated.
		s := make([]bool, len(operands))
		for i, v := range operands {
			s[i] = pointerShaped(v.Type())
		}
		e.memo[obj] = s
		return s
	}
	e.stack[obj] = true
	s := e.computeSummary(d, operands)
	delete(e.stack, obj)
	e.memo[obj] = s
	return s
}

// operandVars lists receiver (if any) then parameters.
func operandVars(sig *types.Signature) []*types.Var {
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// computeSummary analyzes one function body: a flow-insensitive
// derivation pass maps locals to the operands they may alias, then every
// mutation site charges the operands its target derives from.
func (e *env) computeSummary(d *funcDecl, operands []*types.Var) []bool {
	info := d.pkg.TypesInfo
	// Operand index by object; only pointer-shaped operands participate
	// (mutating a by-value copy cannot reach the caller).
	idx := make(map[types.Object]int)
	for i, v := range operands {
		if pointerShaped(v.Type()) {
			idx[v] = i
		}
	}
	mutated := make([]bool, len(operands))
	if len(idx) == 0 {
		return mutated
	}

	// derived maps each local to the operand set (bitmask, ≤64 operands)
	// it may alias. Iterate assignments to a fixpoint.
	derived := make(map[types.Object]uint64)
	var maskOf func(ast.Expr) uint64
	maskOf = func(x ast.Expr) uint64 {
		switch x := x.(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return 0
			}
			if i, ok := idx[obj]; ok && i < 64 {
				return 1 << uint(i)
			}
			return derived[obj]
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return maskOf(x.X)
			}
			return maskOf(x.X) // method value: keep the base's mask
		case *ast.IndexExpr:
			return maskOf(x.X)
		case *ast.IndexListExpr:
			return maskOf(x.X)
		case *ast.StarExpr:
			return maskOf(x.X)
		case *ast.ParenExpr:
			return maskOf(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return maskOf(x.X)
			}
		case *ast.CallExpr:
			// Conversions pass their operand through.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				return maskOf(x.Args[0])
			}
		case *ast.TypeAssertExpr:
			return maskOf(x.X)
		}
		return 0
	}
	for pass := 0; pass < 4; pass++ {
		changed := false
		ast.Inspect(d.fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, isOperand := idx[obj]; isOperand {
					continue
				}
				m := maskOf(as.Rhs[i])
				if derived[obj]|m != derived[obj] {
					derived[obj] |= m
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	charge := func(mask uint64) {
		for i := range operands {
			if i < 64 && mask&(1<<uint(i)) != 0 {
				mutated[i] = true
			}
		}
	}

	ast.Inspect(d.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, ok := lhs.(*ast.Ident); ok {
					continue // rebind, not a store through an operand
				}
				charge(maskOf(storeBase(lhs)))
			}
		case *ast.IncDecStmt:
			if _, ok := n.X.(*ast.Ident); !ok {
				charge(maskOf(storeBase(n.X)))
			}
		case *ast.SendStmt:
			charge(maskOf(n.Chan))
		case *ast.CallExpr:
			e.chargeCall(info, n, maskOf, charge)
		}
		return true
	})
	return mutated
}

// storeBase peels an assignment target to the expression whose pointee is
// written: s.f → s, m[k] → m, *p → p, s.f[i].g → s. Used by the mutation
// summaries, where any operand the chain derives from is charged.
func storeBase(x ast.Expr) ast.Expr {
	for {
		switch e := x.(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		default:
			return x
		}
	}
}

// writtenObject peels ONE access level off an assignment target: the
// expression naming the object the store writes into. s.f → s (the struct
// written), w.m.Commits → w.m (the machine written — taint must be judged
// there, not at the fully peeled receiver), log[0] → log, *p → p.
func writtenObject(lhs ast.Expr) ast.Expr {
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		return e.X
	case *ast.IndexExpr:
		return e.X
	case *ast.IndexListExpr:
		return e.X
	case *ast.StarExpr:
		return e.X
	case *ast.ParenExpr:
		return writtenObject(e.X)
	}
	return lhs
}

// chargeCall propagates mutation through one call site inside a summary
// body: operands passed at positions the callee mutates are charged.
func (e *env) chargeCall(info *types.Info, call *ast.CallExpr, maskOf func(ast.Expr) uint64, charge func(uint64)) {
	// Builtins with well-known effects.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "copy", "clear", "delete", "append":
				if len(call.Args) > 0 {
					charge(maskOf(call.Args[0]))
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	callee := staticCallee(info, call)
	if callee == nil {
		// Interface method or func value: pessimistically mutates every
		// pointer-shaped operand it receives, receiver included.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				charge(maskOf(sel.X))
			}
		}
		for _, a := range call.Args {
			charge(maskOf(a))
		}
		return
	}
	sum := e.summary(callee)
	ops := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			ops = append(ops, sel.X)
		}
	}
	ops = append(ops, call.Args...)
	for i, op := range ops {
		if i < len(sum) && sum[i] {
			charge(maskOf(op))
		}
	}
}

// staticCallee resolves a call to a concrete *types.Func, or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	f, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	// An interface method has no body of its own: treat as unresolved.
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return f.Origin()
}

// ---------------------------------------------------------------------------
// Observer-body taint check.
// ---------------------------------------------------------------------------

// fact is the set of tainted (sim-state-aliasing) local variables.
type fact map[types.Object]bool

type obsChecker struct {
	pass *lintkit.Pass
	sup  *lintkit.Suppressions
	env  *env

	reported map[token.Pos]bool
}

// roots computes the entry taint of an observer function: the receiver if
// its type is not itself an observer, and every pointer-shaped parameter
// not of an observer type.
func (oc *obsChecker) roots(fn *ast.FuncDecl) fact {
	f := fact{}
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, fld := range fields.List {
			t := oc.pass.TypesInfo.TypeOf(fld.Type)
			if t == nil || !pointerShaped(t) || oc.env.isObserverType(t) {
				continue
			}
			for _, name := range fld.Names {
				if obj := oc.pass.TypesInfo.Defs[name]; obj != nil {
					f[obj] = true
				}
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	return f
}

func (oc *obsChecker) checkBody(body *ast.BlockStmt, roots fact) {
	if oc.reported == nil {
		oc.reported = make(map[token.Pos]bool)
	}
	cfg := lintkit.BuildCFG(body)
	clone := func(f fact) fact {
		g := make(fact, len(f))
		//lint:deterministic order-insensitive set copy; result is a map again
		for k := range f {
			g[k] = true
		}
		return g
	}
	ins := lintkit.Solve(cfg, lintkit.FlowSpec[fact]{
		Entry:  func() fact { return clone(roots) },
		Bottom: func() fact { return fact{} },
		Clone:  clone,
		Join: func(dst, src fact) fact {
			//lint:deterministic order-insensitive set union
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			//lint:deterministic order-independent set comparison
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *lintkit.Block, in fact) fact {
			for _, n := range b.Nodes {
				oc.transferNode(n, in, false)
			}
			return in
		},
	})
	for _, b := range cfg.Blocks {
		f := clone(ins[b])
		for _, n := range b.Nodes {
			oc.transferNode(n, f, true)
		}
	}
	// Function literals: re-check each with the function's roots plus the
	// literal's own pointer-shaped parameters (captured derived locals are
	// approximated by the roots, which cover the common capture — the
	// receiver or a parameter).
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		sub := clone(roots)
		if lit.Type.Params != nil {
			for _, fld := range lit.Type.Params.List {
				t := oc.pass.TypesInfo.TypeOf(fld.Type)
				if t == nil || !pointerShaped(t) || oc.env.isObserverType(t) {
					continue
				}
				for _, name := range fld.Names {
					if obj := oc.pass.TypesInfo.Defs[name]; obj != nil {
						sub[obj] = true
					}
				}
			}
		}
		oc.checkBody(lit.Body, sub)
		return false // checkBody recurses into nested literals itself
	})
}

func (oc *obsChecker) report(pos token.Pos, format string, args ...interface{}) {
	if oc.reported[pos] {
		return
	}
	if oc.sup.Suppressed(pos) {
		oc.reported[pos] = true
		return
	}
	oc.reported[pos] = true
	oc.pass.Reportf(pos, format, args...)
}

// tainted reports whether evaluating e may yield a reference into sim
// state.
func (oc *obsChecker) tainted(e ast.Expr, f fact) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := oc.pass.TypesInfo.Uses[e]
		return obj != nil && f[obj]
	case *ast.SelectorExpr:
		if sel, ok := oc.pass.TypesInfo.Selections[e]; ok {
			if sel.Kind() == types.FieldVal {
				if _, observes := oc.env.observesField[sel.Obj()]; observes {
					return true // //sim:observes field: a window into sim state
				}
				return oc.tainted(e.X, f)
			}
			return oc.tainted(e.X, f) // method value
		}
		return false // package-qualified identifier
	case *ast.IndexExpr:
		return oc.tainted(e.X, f)
	case *ast.IndexListExpr:
		return oc.tainted(e.X, f)
	case *ast.StarExpr:
		return oc.tainted(e.X, f)
	case *ast.ParenExpr:
		return oc.tainted(e.X, f)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return oc.tainted(e.X, f)
		}
		return false
	case *ast.TypeAssertExpr:
		return oc.tainted(e.X, f)
	case *ast.CallExpr:
		// Conversions pass taint through; a method/func result is tainted
		// when its receiver or any argument is (interior pointers:
		// machine.Proc(i) hands back sim state).
		if tv, ok := oc.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && oc.tainted(e.Args[0], f)
		}
		rt := oc.pass.TypesInfo.TypeOf(e)
		if rt == nil || !pointerShaped(rt) {
			return false
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if s, ok := oc.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if oc.tainted(sel.X, f) {
					return true
				}
			}
		}
		for _, a := range e.Args {
			if oc.tainted(a, f) {
				return true
			}
		}
		return false
	}
	return false
}

func (oc *obsChecker) transferNode(n ast.Node, f fact, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Stores through tainted bases first, then taint propagation into
		// rebound locals.
		for _, lhs := range n.Lhs {
			if _, ok := lhs.(*ast.Ident); ok {
				continue
			}
			base := writtenObject(lhs)
			if oc.tainted(base, f) && report {
				oc.report(lhs.Pos(), "observer writes sim state through %q "+
					"(observers must be hash-neutral: read-only on machine state; justify with %s <reason>)",
					exprString(base), Directive)
			}
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if n.Tok == token.DEFINE {
					obj = oc.pass.TypesInfo.Defs[id]
				} else {
					obj = oc.pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				t := oc.pass.TypesInfo.TypeOf(lhs)
				if oc.tainted(n.Rhs[i], f) && pointerShaped(t) {
					f[obj] = true
				} else {
					delete(f, obj)
				}
			}
		} else if len(n.Rhs) == 1 {
			// x, y := f(a): taint every pointer-shaped result if the call
			// is tainted.
			t := oc.tainted(n.Rhs[0], f)
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if n.Tok == token.DEFINE {
					obj = oc.pass.TypesInfo.Defs[id]
				} else {
					obj = oc.pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if t && pointerShaped(oc.pass.TypesInfo.TypeOf(lhs)) {
					f[obj] = true
				} else {
					delete(f, obj)
				}
			}
		}
		for _, r := range n.Rhs {
			oc.checkExprCalls(r, f, report)
		}
	case *ast.IncDecStmt:
		if _, ok := n.X.(*ast.Ident); !ok {
			if oc.tainted(writtenObject(n.X), f) && report {
				oc.report(n.X.Pos(), "observer writes sim state through %q "+
					"(observers must be hash-neutral; justify with %s <reason>)", exprString(writtenObject(n.X)), Directive)
			}
		}
	case *ast.SendStmt:
		if oc.tainted(n.Chan, f) && report {
			oc.report(n.Pos(), "observer sends on a sim-state channel %q (hash-neutrality violation)",
				exprString(n.Chan))
		}
		oc.checkExprCalls(n.Value, f, report)
	case *ast.RangeStmt:
		// Key/Value take taint from the ranged expression.
		t := oc.tainted(n.X, f)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := oc.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = oc.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if t && pointerShaped(oc.pass.TypesInfo.TypeOf(id)) {
				f[obj] = true
			} else {
				delete(f, obj)
			}
		}
		oc.checkExprCalls(n.X, f, report)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := oc.pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if i < len(vs.Values) && oc.tainted(vs.Values[i], f) &&
						pointerShaped(oc.pass.TypesInfo.TypeOf(name)) {
						f[obj] = true
					}
				}
				for _, v := range vs.Values {
					oc.checkExprCalls(v, f, report)
				}
			}
		}
	case *ast.ExprStmt:
		oc.checkExprCalls(n.X, f, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			oc.checkExprCalls(r, f, report)
		}
	case *ast.DeferStmt:
		oc.checkCall(n.Call, f, report)
	case *ast.GoStmt:
		oc.checkCall(n.Call, f, report)
	case ast.Expr:
		oc.checkExprCalls(n, f, report)
	}
}

// checkExprCalls walks an expression and checks every call in it.
func (oc *obsChecker) checkExprCalls(e ast.Expr, f fact, report bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			oc.checkCall(n, f, report)
			return true // arguments may contain further calls
		case *ast.FuncLit:
			return false // analyzed separately with its own roots
		}
		return true
	})
}

// checkCall verifies one call inside an observer: no tainted operand may
// be mutated by the callee.
func (oc *obsChecker) checkCall(call *ast.CallExpr, f fact, report bool) {
	if !report {
		return
	}
	info := oc.pass.TypesInfo
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "copy", "clear", "delete", "append":
				if len(call.Args) > 0 && oc.tainted(call.Args[0], f) {
					oc.report(call.Pos(), "observer mutates sim state via %s(%s) "+
						"(hash-neutrality violation; justify with %s <reason>)",
						b.Name(), exprString(call.Args[0]), Directive)
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	callee := staticCallee(info, call)
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvExpr = sel.X
		}
	}
	if callee == nil {
		// Interface method or func value: unprovable.
		if recvExpr != nil && oc.tainted(recvExpr, f) {
			oc.report(call.Pos(), "observer calls %q on tainted sim state through an interface — "+
				"mutation cannot be ruled out (hash-neutrality; justify with %s <reason>)",
				exprString(call.Fun), Directive)
			return
		}
		for _, a := range call.Args {
			if t := info.TypeOf(a); t != nil && pointerShaped(t) && oc.tainted(a, f) {
				oc.report(call.Pos(), "observer passes tainted sim state %q to a dynamic call — "+
					"mutation cannot be ruled out (hash-neutrality; justify with %s <reason>)",
					exprString(a), Directive)
				return
			}
		}
		return
	}
	sum := oc.env.summary(callee)
	ops := make([]ast.Expr, 0, len(call.Args)+1)
	if recvExpr != nil {
		ops = append(ops, recvExpr)
	}
	ops = append(ops, call.Args...)
	for i, op := range ops {
		if i < len(sum) && sum[i] && oc.tainted(op, f) {
			oc.report(call.Pos(), "observer calls %s, which mutates its operand %q — sim state must stay "+
				"read-only in observers (justify with %s <reason>)",
				callee.Name(), exprString(op), Directive)
			return
		}
	}
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	}
	return "expr"
}

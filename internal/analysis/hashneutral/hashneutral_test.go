package hashneutral_test

import (
	"testing"

	"bulksc/internal/analysis/hashneutral"
	"bulksc/internal/analysis/linttest"
)

func TestHashneutralFixture(t *testing.T) {
	linttest.Run(t, "testdata/observer", hashneutral.Analyzer)
}

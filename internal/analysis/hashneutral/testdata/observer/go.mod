module observer

go 1.22

// Package observer reproduces the hash-neutrality bug class: a witness /
// watchdog hook annotated //sim:observer that accidentally writes
// simulation state, perturbing the determinism hash the moment the
// observer is enabled. The clean observers below pin the sanctioned
// patterns: reading sim state, mutating observer-owned fields, and
// justified exceptions.
package observer

// Machine is simulation state. Observers receive pointers to it.
type Machine struct {
	Cycles  uint64
	Commits int
	Log     []uint64
	tags    map[uint64]int
}

func (m *Machine) Bump() { m.Cycles++ }

func (m *Machine) Pending() int { return len(m.Log) }

// Witness validates commits without touching the machine.
//
//sim:observer
type Witness struct {
	// m points INTO sim state: reads are fine, writes are findings.
	//sim:observes
	m *Machine

	seen     []uint64 // observer-owned scratch
	failures int
}

// badHook is the historical bug: the witness "fixes up" machine state
// while checking it.
func (w *Witness) badHook(val uint64) {
	w.m.Commits++ // want `observer writes sim state through "w.m"`
	w.seen = append(w.seen, val)
}

// badDelegate mutates sim state through a method call.
func (w *Witness) badDelegate() {
	w.m.Bump() // want `observer calls Bump, which mutates its operand "w.m"`
}

// badParamStore writes through a non-observer pointer parameter.
func (w *Witness) badParamStore(m *Machine) {
	m.Cycles = 0 // want `observer writes sim state through "m"`
}

// badBuiltin clears a sim-state map.
func (w *Witness) badBuiltin() {
	clear(w.m.tags) // want `observer mutates sim state via clear`
}

// badDerived taints a local through a selector chain, then stores.
func (w *Witness) badDerived() {
	log := w.m.Log
	log[0] = 1 // want `observer writes sim state through "log"`
}

// goodRead reads sim state and records into observer-owned fields only.
func (w *Witness) goodRead(val uint64) bool {
	if w.m.Cycles > 0 && w.m.Pending() > 0 {
		w.seen = append(w.seen, val)
		w.failures++
		return false
	}
	return true
}

// goodLocal builds observer-local state from sim reads; values (not
// pointers) carry no taint.
func (w *Witness) goodLocal() uint64 {
	total := w.m.Cycles
	for _, v := range w.m.Log {
		total += v
	}
	return total
}

// justified carries a reviewed exception.
func (w *Witness) justified() {
	w.m.Commits++ //lint:observer test hook: deliberately perturbs state to prove goldens notice
}

// freeObserver is an annotated free function: every pointer parameter is
// presumed sim state, so writing through one is a finding.
//
//sim:observer
func freeObserver(m *Machine, out *uint64) {
	*out = m.Cycles // want `observer writes sim state through "out"`
}

// Recorder shows observer-owned pointer fields: without //sim:observes
// they are sinks the observer may mutate freely.
//
//sim:observer
type Recorder struct {
	buf []byte // observer-owned
}

func (r *Recorder) Record(m *Machine, b byte) {
	if m.Cycles > 0 {
		r.buf = append(r.buf, b)
	}
}

// Package poolhygiene implements the simlint pass that guards pooled-object
// recycling. The simulator recycles its hot per-chunk state (chunk.Pool,
// the lineset write buffers, directory entry slabs) instead of allocating,
// and the contract of every recycled type's Reset method is total: *every*
// field must be returned to its zero/empty state, or one chunk's
// speculative data leaks into the next chunk that draws the object from
// the pool. PR 2 fixed exactly this class of bug — lineset.Map.Reset
// cleared the key table but left stale values behind, silently leaking one
// chunk's speculative write-buffer words into a successor's.
//
// PR 5 widened the same contract from pooled chunk state to whole-machine
// warm reuse: every simulator subsystem now has a Reset method (with or
// without parameters — Engine.Reset(seed), BulkProc.Reset(ins, par, opts))
// that returns it to a cold-equivalent state between runs, and a field a
// Reset forgets is a prior run's tag array, W-list or store queue leaking
// into the next run's results.
//
// The pass checks, for every method named Reset with a pointer receiver on
// a struct type — regardless of whether it takes parameters — that the
// method body covers every field of the struct: a field is covered if it
// is assigned, cleared with the clear builtin, indexed-assigned, passed
// (possibly by address) to a call, or is itself the receiver of a method
// call (delegated reset). Fields that are deliberately preserved across
// recycling (e.g. amortized capacity, generation counters maintained
// elsewhere, or immutable machine-lifetime wiring) must say so with a
// `//lint:poolsafe <reason>` comment on the field's declaration.
package poolhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bulksc/internal/analysis/lintkit"
)

// Directive marks struct fields that Reset intentionally preserves.
const Directive = "//lint:poolsafe"

// Analyzer is the poolhygiene pass.
var Analyzer = &lintkit.Analyzer{
	Name: "poolhygiene",
	Doc: "require Reset methods on pooled structs to cover every field " +
		"(preserved fields need a //lint:poolsafe justification)",
	Run: run,
}

func run(pass *lintkit.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Reset" || fn.Body == nil {
				continue
			}
			// Reset methods with parameters (warm-reuse reinitializers such
			// as proc.BulkProc.Reset(ins, par, opts) or sim.Engine.Reset(seed))
			// carry the same total-coverage contract: the parameters feed the
			// new values, but every field must still be overwritten or
			// justified, or one run's state leaks into the next machine reuse.
			named, st := lintkit.ReceiverStruct(pass.TypesInfo, fn)
			if named == nil || st == nil {
				continue
			}
			if !isPointerReceiver(pass.TypesInfo, fn) {
				// A value receiver cannot reset anything; that is its own
				// bug class but not a field-coverage question.
				pass.Reportf(fn.Name.Pos(),
					"Reset on %s has a value receiver and cannot clear the pooled object", named.Obj().Name())
				continue
			}
			checkCoverage(pass, fn, named, st)
		}
	}
	return nil, nil
}

func isPointerReceiver(info *types.Info, fn *ast.FuncDecl) bool {
	t := info.TypeOf(fn.Recv.List[0].Type)
	_, ok := t.(*types.Pointer)
	return ok
}

// checkCoverage reports every struct field that fn's body never touches.
func checkCoverage(pass *lintkit.Pass, fn *ast.FuncDecl, named *types.Named, st *types.Struct) {
	recv := receiverObject(pass.TypesInfo, fn)
	if recv == nil {
		return
	}
	covered := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				coverTarget(pass, recv, lhs, covered)
			}
		case *ast.IncDecStmt:
			coverTarget(pass, recv, n.X, covered)
		case *ast.CallExpr:
			// clear(s.f), copy(s.f, ...), or any call taking s.f / &s.f:
			// the callee is assumed to reinitialize it. Method calls on a
			// field (s.f.Reset()) count as delegated resets.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if f, ok := fieldOf(pass, recv, sel.X); ok {
					covered[f] = true
				}
			}
			for _, arg := range n.Args {
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					arg = u.X
				}
				if f, ok := fieldOf(pass, recv, arg); ok {
					covered[f] = true
				}
			}
		}
		return true
	})

	fieldSuppressed := suppressedFields(pass, named)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if covered[f.Name()] {
			continue // a poolsafe annotation here suppressed nothing: leave it unused (stale)
		}
		if d := fieldSuppressed[f.Name()]; d != nil {
			d.Used = true
			continue
		}
		pass.Reportf(fn.Name.Pos(),
			"Reset on %s does not clear field %q; pooled reuse can leak one object's state into the next "+
				"(clear it, or mark the field %s <reason>)", named.Obj().Name(), f.Name(), Directive)
	}
}

// coverTarget marks the field named by an assignment target: s.f = ...,
// s.f[i] = ..., s.f[i].g = ... all cover f.
func coverTarget(pass *lintkit.Pass, recv types.Object, expr ast.Expr, covered map[string]bool) {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		case *ast.SelectorExpr:
			if f, ok := fieldOf(pass, recv, e); ok {
				covered[f] = true
				return
			}
			expr = e.X
			continue
		default:
			return
		}
	}
}

// fieldOf reports whether expr is a selector recv.f (for the method's own
// receiver) and returns the field name.
func fieldOf(pass *lintkit.Pass, recv types.Object, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pass.TypesInfo.Uses[base] != recv {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	return sel.Sel.Name, true
}

func receiverObject(info *types.Info, fn *ast.FuncDecl) types.Object {
	names := fn.Recv.List[0].Names
	if len(names) == 0 {
		return nil // anonymous receiver: body cannot touch fields anyway
	}
	return info.Defs[names[0]]
}

// suppressedFields scans the struct's declaration (which may live in any
// file of the defining package, or in a dependency) for fields annotated
// with the poolsafe directive, registering each annotation with the run's
// directive registry. The caller marks an entry Used only when it actually
// excused an uncovered field, so annotations on fields a Reset does clear
// surface as stale.
func suppressedFields(pass *lintkit.Pass, named *types.Named) map[string]*lintkit.Directive {
	out := make(map[string]*lintkit.Directive)
	declPkg := named.Obj().Pkg()
	if declPkg == nil {
		return out
	}
	var files []*ast.File
	if declPkg == pass.Pkg {
		files = pass.Files
	} else if pass.Program != nil {
		if p, ok := pass.Program.ByPath[declPkg.Path()]; ok {
			files = p.Files
		}
	}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != named.Obj().Name() {
				return true
			}
			stExpr, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range stExpr.Fields.List {
				c := directiveComment(f.Doc)
				if c == nil {
					c = directiveComment(f.Comment)
				}
				if c == nil {
					continue
				}
				d := pass.Registry.Register(Directive,
					pass.Fset.Position(c.Slash),
					strings.TrimSpace(strings.TrimPrefix(c.Text, Directive)))
				for _, name := range f.Names {
					out[name.Name] = d
				}
			}
			return false
		})
	}
	return out
}

func directiveComment(cg *ast.CommentGroup) *ast.Comment {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, Directive) {
			return c
		}
	}
	return nil
}

package poolhygiene_test

import (
	"testing"

	"bulksc/internal/analysis/linttest"
	"bulksc/internal/analysis/poolhygiene"
)

func TestPoolHygiene(t *testing.T) {
	linttest.Run(t, "testdata/poolfix", poolhygiene.Analyzer)
}

package poolfix

// WriteMap is an open-addressed line→word map recycled through a pool,
// modeled on the lineset.Map whose Reset leaked stale values before the
// bug was fixed: the key table is cleared, the value table is not, so the
// next chunk that recycles the object and probes a reused slot reads the
// previous chunk's speculative word.
type WriteMap struct {
	keys []uint64
	vals []uint64
	n    int
}

func (m *WriteMap) Reset() { // want `Reset on WriteMap does not clear field "vals"`
	for i := range m.keys {
		m.keys[i] = 0
	}
	m.n = 0
}

// Counter's Reset has a value receiver: it clears a copy and leaves the
// pooled object dirty.
type Counter struct {
	n int
}

func (c Counter) Reset() { // want `Reset on Counter has a value receiver`
	c.n = 0
}

package poolfix

// WriteMap is an open-addressed line→word map recycled through a pool,
// modeled on the lineset.Map whose Reset leaked stale values before the
// bug was fixed: the key table is cleared, the value table is not, so the
// next chunk that recycles the object and probes a reused slot reads the
// previous chunk's speculative word.
type WriteMap struct {
	keys []uint64
	vals []uint64
	n    int
}

func (m *WriteMap) Reset() { // want `Reset on WriteMap does not clear field "vals"`
	for i := range m.keys {
		m.keys[i] = 0
	}
	m.n = 0
}

// Counter's Reset has a value receiver: it clears a copy and leaves the
// pooled object dirty.
type Counter struct {
	n int
}

func (c Counter) Reset() { // want `Reset on Counter has a value receiver`
	c.n = 0
}

// cacheWay models one set-associative cache way, and StaleCache reproduces
// the warm-machine-reuse leak class: a cache whose Reset rewinds the LRU
// clock but forgets the tag/state array, so the first run's lines are still
// "present" when the machine is reused and the second run silently hits on
// data it never fetched. The analyzer makes this bug unrepresentable: the
// ways field is neither covered nor justified, so Reset is rejected.
type cacheWay struct {
	tag   uint64
	valid bool
}

type StaleCache struct {
	ways []cacheWay
	tick uint64
}

func (c *StaleCache) Reset() { // want `Reset on StaleCache does not clear field "ways"`
	c.tick = 0
}

// WarmProc models a warm-reuse reinitializer: Reset takes parameters that
// feed the next run's configuration. The parameterized form carries exactly
// the same total-coverage contract — here the inflight miss table is never
// cleared, so run N's outstanding misses would complete into run N+1.
type WarmProc struct {
	width    int
	inflight map[uint64]int
	seq      uint64
}

func (p *WarmProc) Reset(width int) { // want `Reset on WarmProc does not clear field "inflight"`
	p.width = width
	p.seq = 0
}

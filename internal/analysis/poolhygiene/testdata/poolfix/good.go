package poolfix

type inner struct {
	words []uint64
}

func (in *inner) Reset() {
	for i := range in.words {
		in.words[i] = 0
	}
}

func truncate(p *[]uint64) { *p = (*p)[:0] }

// Chunk's Reset covers every field: direct assignment, delegated Reset,
// the clear builtin, and passing a field's address to a helper all count.
// The deliberately preserved scratch capacity carries a justification.
type Chunk struct {
	id   int
	buf  inner
	seen map[uint64]bool
	pins []uint64
	//lint:poolsafe capacity retained across recycling by design
	scratch []uint64
}

func (c *Chunk) Reset() {
	c.id = 0
	c.buf.Reset()
	clear(c.seen)
	truncate(&c.pins)
}

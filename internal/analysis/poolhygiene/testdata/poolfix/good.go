package poolfix

type inner struct {
	words []uint64
}

func (in *inner) Reset() {
	for i := range in.words {
		in.words[i] = 0
	}
}

func truncate(p *[]uint64) { *p = (*p)[:0] }

// Chunk's Reset covers every field: direct assignment, delegated Reset,
// the clear builtin, and passing a field's address to a helper all count.
// The deliberately preserved scratch capacity carries a justification.
type Chunk struct {
	id   int
	buf  inner
	seen map[uint64]bool
	pins []uint64
	//lint:poolsafe capacity retained across recycling by design
	scratch []uint64
}

func (c *Chunk) Reset() {
	c.id = 0
	c.buf.Reset()
	clear(c.seen)
	truncate(&c.pins)
}

// WarmCache shows the clean parameterized form: a warm-reuse Reset that
// takes the next run's geometry, covers every mutable field, and justifies
// the retained slab.
type WarmCache struct {
	nsets int
	ways  []cacheWay
	tick  uint64
	//lint:poolsafe allocation reservoir; entries are reinitialized at reuse
	slab []cacheWay
}

func (c *WarmCache) Reset(nsets int) {
	c.nsets = nsets
	clear(c.ways)
	c.tick = 0
}

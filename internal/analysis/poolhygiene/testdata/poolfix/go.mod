module poolfix

go 1.22

package proc

import (
	"fmt"

	"bulksc/internal/bdm"
	"bulksc/internal/cache"
	"bulksc/internal/chunk"
	"bulksc/internal/directory"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
)

// This file holds the chunk lifecycle of BulkProc: creation, completion,
// commit arbitration, squash handling, forward progress, and the cache
// port the directory drives.

// openChunk starts a new chunk at the current interpreter position if a
// hardware slot (signature pair + checkpoint) is free.
func (p *BulkProc) openChunk() bool {
	slot := -1
	for s, busy := range p.slotBusy {
		if !busy {
			slot = s
			break
		}
	}
	if slot < 0 {
		return false
	}
	target := p.par.ChunkSize
	if p.squashStreak > 0 {
		// Forward progress: exponentially smaller chunks after squashes
		// (§3.3).
		target >>= uint(p.squashStreak)
		if target < minChunk {
			target = minChunk
		}
		if target < p.par.ChunkSize {
			p.env.St.ChunkShrinks++
		}
	}
	p.chunkSeq++
	ch := p.pool.Get(p.env.Sigs, &p.arena, p.id, p.chunkSeq, slot, p.f.pos, target)
	ch.Sum = p.liveSum // mirror shared-line inserts into the live summary
	p.checkpoints[slot] = p.f.checkpoint()
	p.slotBusy[slot] = true
	p.chunks = append(p.chunks, ch)
	p.cur = ch
	return true
}

// closeChunk completes the executing chunk and tries to start arbitration.
func (p *BulkProc) closeChunk() {
	ch := p.cur
	p.cur = nil
	ch.State = chunk.Completed
	// Fault injection: W-signature aliasing amplification — force extra
	// (phantom) lines into the chunk's W signature before it ever leaves
	// the processor. The phantoms never enter the exact WSet, so every
	// conflict they cause is classified as aliased.
	p.env.Faults.AmplifyW(p.id, ch.W)
	if p.env.Faults != nil {
		// Amplified phantom bits bypass the per-access mirror; fold the
		// whole (possibly amplified) W back into the live summary so the
		// disambiguation early-out stays a strict superset under faults.
		p.liveSum.UnionWith(ch.W)
	}
	p.tryRequestCommit(ch)
}

// tryRequestCommit sends a permission-to-commit request if the chunk is
// completed, all its line fills arrived (which also closes the
// signature-update vulnerability window of §3.2.1 — forwards are recorded
// in R instantly in this model), and every older chunk has been granted.
//
//sim:hotpath
func (p *BulkProc) tryRequestCommit(ch *chunk.Chunk) {
	if ch.State != chunk.Completed || ch.Pending > 0 {
		return
	}
	if len(p.chunks) == 0 || p.chunks[0] != ch {
		return // in-order commit requests (§4.1.2)
	}
	ch.State = chunk.Arbitrating
	p.sendCommit(ch)
}

// sendCommit builds and routes the arbitration request for ch. The
// request record is pooled (Env.Commit consumes it synchronously) and the
// two callbacks live on the chunk itself, allocated once per chunk
// lifetime — a steady-state request, including re-sends after denials,
// allocates nothing.
//
//sim:hotpath
func (p *BulkProc) sendCommit(ch *chunk.Chunk) {
	ch.ReqsOut++
	if ch.ReplyFn == nil {
		chch := ch
		//lint:alloc once per chunk lifetime, reused across re-sends and pooled recycling
		ch.ReplyFn = func(granted bool, order uint64) {
			p.commitReply(chch, granted, order)
		}
		//lint:alloc once per chunk lifetime, reused across re-sends and pooled recycling
		ch.FetchRFn = func(cb func(sig.Signature)) { cb(chch.R) }
	}
	req := p.getCommitReq()
	req.Proc = p.id
	req.W = ch.W
	req.RSets = append(req.RSets, &ch.RSet)
	req.WSets = append(req.WSets, &ch.WSet)
	req.TrueW = &ch.WSet
	if p.opts.RSigOpt {
		req.FetchR = ch.FetchRFn
	} else {
		req.R = ch.R
	}
	req.Reply = ch.ReplyFn
	p.env.Commit(req)
	p.putCommitReq(req)
}

func (p *BulkProc) commitReply(ch *chunk.Chunk, granted bool, order uint64) {
	ch.ReqsOut--
	if ch.State == chunk.Squashed {
		// The chunk died while the request was in flight. A denial needs
		// nothing; a grant becomes a no-op commit (no memory update) —
		// the directory flow it triggered is conservative but harmless.
		if granted {
			// The arbiter's pending list and the directory pipeline still
			// reference the chunk's W and exact write set; the chunk must
			// not be recycled (rare: stats.CommitCancels).
			p.env.St.CommitCancels++
		} else if ch.ReqsOut == 0 {
			// Denied after the squash: nothing external holds the chunk any
			// more, so it can join the pool now.
			p.pool.Put(ch)
		}
		return
	}
	if ch.State != chunk.Arbitrating {
		panic(fmt.Sprintf("proc %d: commit reply in state %v", p.id, ch.State))
	}
	if !granted {
		p.denyCount++
		p.trail.noteDenied(ch.Seq, uint64(p.env.Eng.Now()))
		// Retry after a jittered backoff. The closure may outlive a squash
		// and even a recycling of ch; the Gen guard defuses it then.
		back := sim.Time(20 + p.env.Eng.Rand().Intn(25))
		gen := ch.Gen
		p.env.Eng.After(p.env.Net.HopLat+back, func() {
			if ch.Gen == gen && ch.State == chunk.Arbitrating {
				p.sendCommit(ch)
			}
		})
		return
	}
	p.applyCommit(ch, order)
	p.env.Eng.After(p.env.Net.HopLat, func() { p.grantArrived(ch) })
}

// applyCommit makes ch's updates the committed memory state at the
// arbiter's decision instant — the chunk's serialization point.
//
//sim:hotpath
func (p *BulkProc) applyCommit(ch *chunk.Chunk, order uint64) {
	if p.env.St.Trace != nil {
		//lint:alloc debug-only trace formatting, guarded by Trace != nil
		p.env.St.Trace("t=%d proc%d APPLY chunk=%d order=%d W=%d priv=%d", p.env.Eng.Now(), p.id, ch.Seq, order, ch.WSet.Len(), ch.PrivSet.Len())
	}
	ch.State = chunk.Committing
	ch.CommitOrder = order
	p.rebuildLiveSum() // ch left the active set; shrink the summary back
	//lint:alloc inlined ForEach closure; verified non-escaping via scripts/hotpath_escape.sh
	ch.WriteBuf.ForEach(func(a mem.Addr, v uint64) {
		p.env.Mem.Store(a, v)
	})
	st := p.env.St
	st.Chunks++
	st.CommittedInstrs += uint64(ch.Executed)
	st.SumRSetLines += uint64(ch.RSet.Len())
	st.SumWSetLines += uint64(ch.WSet.Len())
	st.SumPrivWSetLines += uint64(ch.PrivSet.Len())
	// Speculatively written lines become dirty non-speculative.
	//lint:alloc inlined ForEach closure; verified non-escaping via scripts/hotpath_escape.sh
	ch.WSet.ForEach(func(l mem.Line) {
		p.unpinToDirty(l, ch.Slot)
	})
	//lint:alloc inlined ForEach closure; verified non-escaping via scripts/hotpath_escape.sh
	ch.PrivSet.ForEach(func(l mem.Line) {
		p.unpinToDirty(l, ch.Slot)
	})
	// Write-backs successfully skipped; the saved pre-images are dead.
	p.privScratch = p.privBuf.DrainSlot(ch.Slot, p.privScratch[:0])
	if p.opts.Stpvt && !ch.Wpriv.Empty() {
		p.env.PrivCommit(p.id, ch.Wpriv, &ch.PrivSet)
	}
	p.squashStreak = 0
	p.commitCount++
	if p.preArbing {
		// Release the exclusive commit window explicitly: the single-
		// arbiter grant path auto-unlocks, but distributed-arbiter
		// commits go through Reserve/Confirm, which does not.
		p.preArbing = false
		p.preArbGranted = false
		p.env.EndPreArbitrate(p.id)
	}
	if p.OnCommit != nil {
		p.OnCommit(ch)
	}
}

//sim:hotpath
func (p *BulkProc) unpinToDirty(l mem.Line, slot int) {
	if w := p.l1.Unpin(l, slot); w != nil && w.Valid() && w.PinMask == 0 {
		w.State = cache.Dirty
	}
}

// grantArrived runs when the grant reaches the processor: the chunk's
// hardware slot frees and the next completed chunk may arbitrate.
//
//sim:hotpath
func (p *BulkProc) grantArrived(ch *chunk.Chunk) {
	for i, c := range p.chunks {
		if c == ch {
			p.chunks = append(p.chunks[:i], p.chunks[i+1:]...)
			break
		}
	}
	ch.State = chunk.Committed
	if p.opts.RetainCommitted {
		// Park the chunk for cross-run recycling; nothing reads the
		// retired list until the next Reset adopts it into the pool.
		p.retired = append(p.retired, ch)
	}
	p.slotBusy[ch.Slot] = false
	if len(p.chunks) > 0 {
		p.tryRequestCommit(p.chunks[0])
	}
	if p.f.done() && p.cur == nil && len(p.chunks) == 0 {
		p.finished = true
		p.doneAt = p.env.Eng.Now()
		return
	}
	p.kick()
}

// endOfStream closes the final chunk (whatever its size) and finishes once
// everything committed.
func (p *BulkProc) endOfStream() {
	if p.cur != nil {
		if p.cur.Executed == 0 && len(p.chunks) > 0 && p.chunks[len(p.chunks)-1] == p.cur {
			// Empty trailing chunk: discard it silently. It never left the
			// processor (no accesses, no requests), so it can be recycled
			// immediately.
			p.chunks = p.chunks[:len(p.chunks)-1]
			p.slotBusy[p.cur.Slot] = false
			p.pool.Put(p.cur)
			p.cur = nil
		} else if p.cur != nil {
			p.closeChunk()
		}
	}
	if len(p.chunks) == 0 {
		p.finished = true
		p.doneAt = p.env.Eng.Now()
	}
}

// ---------------------------------------------------------------------------
// Squash handling
// ---------------------------------------------------------------------------

// squashFrom discards ch and every younger chunk, rewinds the interpreter
// to ch's checkpoint, and applies the forward-progress escalation.
func (p *BulkProc) squashFrom(idx int, genuine bool) {
	victims := p.chunks[idx:]
	p.chunks = p.chunks[:idx]
	p.squashCount++
	p.trail.noteSquash(victims[0].Seq, uint64(p.env.Eng.Now()), len(victims), genuine)
	st := p.env.St
	for i, ch := range victims {
		ch.State = chunk.Squashed
		st.Squashes++
		if i > 0 {
			st.SquashCascades++
		}
		st.SquashedInstrs += uint64(ch.Executed)
		ch.WSet.ForEach(func(l mem.Line) {
			p.dropSpecLine(l, ch, false)
		})
		ch.PrivSet.ForEach(func(l mem.Line) {
			p.dropSpecLine(l, ch, true)
		})
		p.privScratch = p.privBuf.DrainSlot(ch.Slot, p.privScratch[:0])
		st.PrivBufRestores += uint64(len(p.privScratch))
		p.slotBusy[ch.Slot] = false
	}
	if genuine {
		st.SquashesTrue++
	} else {
		st.SquashesAliased++
	}
	if p.OnSquash != nil {
		wasted := 0
		for _, ch := range victims {
			wasted += ch.Executed
		}
		p.OnSquash(len(victims), wasted, genuine)
	}
	if p.env.St.Trace != nil {
		p.env.St.Trace("t=%d proc%d SQUASH from chunk=%d (%d victims)", p.env.Eng.Now(), p.id, victims[0].Seq, len(victims))
	}
	oldest := victims[0]
	p.f.restore(p.checkpoints[oldest.Slot])
	p.cur = nil
	p.rebuildLiveSum() // the victims left the active set
	p.squashStreak++
	if p.squashStreak >= p.opts.PreArbThreshold && !p.preArbing {
		p.preArbing = true
		p.env.PreArbitrate(p.id, func() {
			if !p.preArbing {
				// Stale grant: the request sat in the arbiter's queue
				// while we committed (or timed out) and stopped wanting
				// exclusivity. Hand the lock straight back or it leaks
				// forever.
				p.env.EndPreArbitrate(p.id)
				return
			}
			p.preArbGranted = true
			if p.OnPreArb != nil {
				p.OnPreArb()
			}
			// Deadlock guard: if we are spin-waiting on a lock whose
			// holder now cannot commit its release (we block every other
			// commit), nothing ever frees us. Release the exclusive
			// window if we fail to commit within a generous bound.
			commitsAtGrant := p.commitCount
			p.env.Eng.After(sim.Time(8*p.par.ChunkSize+20000), func() {
				if p.preArbing && p.commitCount == commitsAtGrant {
					p.preArbing = false
					p.preArbGranted = false
					p.squashStreak = 0
					p.env.EndPreArbitrate(p.id)
				}
			})
		})
	}
	// Recycle the victims. Chunks with a commit request still in flight are
	// skipped here: commitReply recycles them on a posthumous denial and
	// leaks them on a posthumous grant (the arbiter/directory pipeline then
	// holds their signatures until commit completion).
	for _, ch := range victims {
		if ch.ReqsOut == 0 {
			p.pool.Put(ch)
		}
	}
	// Pipeline refill before re-execution.
	p.kickAt(p.par.SquashPenalty)
}

// dropSpecLine unpins a squashed chunk's line. Lines written under the
// dynamically-private optimization are restored from the private buffer —
// the cache keeps the (old) committed version, so the line stays valid and
// dirty. Ordinary speculative lines are invalidated.
//
//sim:hotpath
func (p *BulkProc) dropSpecLine(l mem.Line, ch *chunk.Chunk, priv bool) {
	w := p.l1.Unpin(l, ch.Slot)
	if w == nil || !w.Valid() || w.PinMask != 0 {
		return
	}
	if priv && p.opts.Dypvt {
		// The cache keeps the committed version (restored from the
		// private buffer); the line stays valid and dirty.
		w.State = cache.Dirty
		return
	}
	p.l1.Invalidate(l)
}

// ---------------------------------------------------------------------------
// directory.CachePort
// ---------------------------------------------------------------------------

// ApplyCommit is the BDM's reaction to an incoming committing W signature:
// bulk disambiguation against the live chunks, then bulk invalidation of
// matching committed lines.
//
//sim:hotpath
func (p *BulkProc) ApplyCommit(c *directory.Commit) {
	if c.Proc == p.id {
		return
	}
	if p.env.St.Trace != nil {
		//lint:alloc debug-only trace formatting, guarded by Trace != nil
		p.env.St.Trace("t=%d proc%d recv Wsig from proc%d (chunks=%d)", p.env.Eng.Now(), p.id, c.Proc, len(p.chunks))
	}
	// Incoming signatures always disambiguate — including stpvt Wpriv
	// propagations. Genuinely private lines never appear in another
	// processor's R/W sets, so this costs nothing in the intended case;
	// for an *aliased* Wpriv signature it is required for soundness: the
	// expansion may have claimed directory ownership of a shared line and
	// reset its sharer vector, and any chunk that read that line stale
	// must die here or nothing will ever squash it.
	idx, genuine := bdm.DisambiguateSummary(c.W, p.liveSum, c.TrueW, p.chunks)
	if idx < 0 && p.env.Faults != nil {
		// Fault injection: a spurious bulk-disambiguation squash — the
		// limit case of signature aliasing, where an incoming W "hits" a
		// chunk that shares no real line with it. Only asked when an
		// active chunk exists, so injected counters match applied faults.
		if j := p.oldestActiveChunk(); j >= 0 && p.env.Faults.SpuriousSquash(p.id) {
			idx, genuine = j, false
		}
	}
	if idx >= 0 {
		p.squashFrom(idx, genuine)
	}
	st := p.env.St
	//lint:alloc inlined BulkInvalidate closure; verified non-escaping via scripts/hotpath_escape.sh
	p.l1.BulkInvalidate(c.W, func(w cache.Way) {
		if c.TrueW.Has(w.Line) {
			st.CacheInvs++
		} else {
			st.ExtraCacheInvs++
		}
	})
	// Replies racing with this commit carry stale data: invalidate on
	// arrival instead of installing. The in-flight signature is a superset
	// of the live MSHR lines (add-only between empty-drain clears), so if
	// it does not intersect the committing W no in-flight line can satisfy
	// MayContain — the scan would mark nothing — and it is skipped in O(1).
	// Marking is commutative over the in-flight set (every matching
	// request is poisoned, no early exit), so walk order cannot affect
	// the outcome.
	if len(p.inflight) > 0 && c.W.Intersects(p.inflightSig) {
		for _, req := range p.inflight {
			if c.W.MayContain(req.l) {
				req.poisoned = true
			}
		}
	}
}

// rebuildLiveSum recomputes the live-summary signature as the exact union
// of the remaining active chunks' R and W. Called whenever a chunk leaves
// the active set (commit retirement, squash) — the only transitions that
// can shrink the union; access appends grow it incrementally via
// chunk.Sum.
//
//sim:hotpath
func (p *BulkProc) rebuildLiveSum() {
	p.liveSum.Clear()
	for _, ch := range p.chunks {
		if ch.Active() {
			p.liveSum.UnionWith(ch.R)
			p.liveSum.UnionWith(ch.W)
		}
	}
}

// oldestActiveChunk returns the index of the oldest still-squashable
// chunk, or -1.
func (p *BulkProc) oldestActiveChunk() int {
	for i, ch := range p.chunks {
		if ch.Active() {
			return i
		}
	}
	return -1
}

// ApplyInvalidate serves conventional invalidations; under BulkSC it only
// appears in mixed configurations (directory-cache displacement fallback).
func (p *BulkProc) ApplyInvalidate(l mem.Line) {
	if w := p.l1.Probe(l); w != nil && w.PinMask == 0 {
		p.l1.Invalidate(l)
	}
}

// SnoopDirty supplies a line the directory believes dirty here. The
// dypvt path: if any live chunk wrote the line privately, the private
// prediction has failed — the committed (pre-update) version is supplied
// (from the private buffer when present, otherwise from memory, where the
// last committed chunk left it) and the line is promoted back into W in
// every live chunk, so future commits arbitrate and disambiguate it
// (§5.2).
//
//sim:hotpath
func (p *BulkProc) SnoopDirty(l mem.Line) (supplied, holds bool) {
	promoted := false
	for _, ch := range p.chunks {
		if ch.Active() && ch.PromoteToW(l) {
			promoted = true
		}
	}
	if p.privBuf.Has(l) {
		p.env.St.PrivBufSupplies++
		p.privBuf.Take(l)
		return true, true
	}
	if promoted {
		// Privately written but no buffered pre-image (a predecessor's
		// commit drained it): memory holds the committed version; we
		// keep our (speculative) copy and stay a sharer.
		p.env.St.PrivBufSupplies++
		return true, true
	}
	w := p.l1.Probe(l)
	if w == nil || !w.Valid() {
		// Genuinely absent: the directory's dirty bit came from an
		// aliased update; memory is current.
		return false, false
	}
	if w.PinMask != 0 {
		// Speculatively W-written by an active chunk: memory holds the
		// committed version, but we do hold the line — we must remain in
		// the sharer vector so the chunk's commit invalidates the other
		// sharers (Table 1 case 2).
		return false, true
	}
	if w.State == cache.Dirty {
		w.State = cache.Shared
		return true, true
	}
	return false, true
}

// SnoopInvalidate is SnoopDirty plus invalidation (conventional RdX).
func (p *BulkProc) SnoopInvalidate(l mem.Line) bool {
	had, _ := p.SnoopDirty(l)
	p.ApplyInvalidate(l)
	return had
}

package proc

import (
	"fmt"
	"strings"
)

// trailLen is how many recent denial and squash events a processor keeps
// for liveness diagnostics. Small and fixed: the trail is written on every
// denial/squash but only ever formatted when a watchdog fires.
const trailLen = 4

// deniedEvent records one denied permission-to-commit reply.
type deniedEvent struct {
	seq uint64 // chunk sequence number
	at  uint64 // engine cycle of the denial
}

// squashEvent records one squash (of one or more victim chunks).
type squashEvent struct {
	seq     uint64 // oldest victim's sequence number
	at      uint64 // engine cycle of the squash
	victims int
	genuine bool
}

// livenessTrail is a pair of fixed-size rings over the most recent denial
// and squash events. Updates are allocation-free; String is only called
// from watchdog failure paths.
type livenessTrail struct {
	denied   [trailLen]deniedEvent
	nDenied  uint64
	squashes [trailLen]squashEvent
	nSquash  uint64
}

func (t *livenessTrail) noteDenied(seq, at uint64) {
	t.denied[t.nDenied%trailLen] = deniedEvent{seq: seq, at: at}
	t.nDenied++
}

func (t *livenessTrail) noteSquash(seq, at uint64, victims int, genuine bool) {
	t.squashes[t.nSquash%trailLen] = squashEvent{seq: seq, at: at, victims: victims, genuine: genuine}
	t.nSquash++
}

// String formats the trail oldest-first, e.g.
//
//	denied[chunk 17 @t=1200, chunk 17 @t=1320] squashed[chunk 16 @t=900 x2 aliased]
func (t *livenessTrail) String() string {
	var b strings.Builder
	b.WriteString("denied[")
	first := true
	t.forEachDenied(func(e deniedEvent) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "chunk %d @t=%d", e.seq, e.at)
	})
	b.WriteString("] squashed[")
	first = true
	t.forEachSquash(func(e squashEvent) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		kind := "aliased"
		if e.genuine {
			kind = "genuine"
		}
		fmt.Fprintf(&b, "chunk %d @t=%d x%d %s", e.seq, e.at, e.victims, kind)
	})
	b.WriteString("]")
	return b.String()
}

func (t *livenessTrail) forEachDenied(f func(deniedEvent)) {
	start := uint64(0)
	if t.nDenied > trailLen {
		start = t.nDenied - trailLen
	}
	for i := start; i < t.nDenied; i++ {
		f(t.denied[i%trailLen])
	}
}

func (t *livenessTrail) forEachSquash(f func(squashEvent)) {
	start := uint64(0)
	if t.nSquash > trailLen {
		start = t.nSquash - trailLen
	}
	for i := start; i < t.nSquash; i++ {
		f(t.squashes[i%trailLen])
	}
}

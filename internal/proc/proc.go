// Package proc implements the processor models:
//
//   - BulkProc — the BulkSC processor (§3, §4.1): checkpointed chunk
//     execution with full memory reordering inside and across chunks,
//     per-chunk R/W/Wpriv signatures, speculative stores buffered in the
//     L1, commit arbitration, bulk disambiguation squashes, exponential
//     chunk shrinking and pre-arbitration for forward progress, and the
//     statically/dynamically-private data optimizations of §5.
//   - ConvProc — the conventional baselines: SC with read and exclusive
//     prefetching [Gharachorloo et al.], RC with speculation across fences
//     and exclusive prefetching, and SC++ with a SHiQ [Gniady et al.] —
//     exactly the comparison points of the paper's evaluation.
//
// Timing uses an analytic-overlap model on top of the discrete-event
// engine: non-memory instructions advance the dispatch clock at the issue
// width; memory operations perform at engine events, so their global
// interleaving (and thus every value read) is well defined; the
// per-model ordering constraints decide how much memory latency each
// model exposes. This keeps what distinguishes SC, RC, SC++ and BulkSC —
// exposure vs. overlap, squashes, commit costs — while staying fast
// enough to sweep the paper's full evaluation matrix.
package proc

import (
	"bulksc/internal/fault"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
	"bulksc/internal/workload"
)

// Params are the core parameters from the paper's Table 2.
type Params struct {
	IssueWidth    int      // instructions dispatched per cycle
	ROB           int      // reorder-buffer entries
	MSHRs         int      // outstanding line fetches
	LSQ           int      // store-buffer entries (conventional models)
	L1Hit         sim.Time // L1 round trip
	SquashPenalty sim.Time // pipeline refill after a squash
	ChunkSize     int      // dynamic instructions per chunk (BulkSC)
	MaxChunks     int      // chunks in flight per processor (BulkSC)
	SpinBackoff   sim.Time // cycles between spin-loop retries
	SHiQ          int      // SC++ speculative history queue entries
}

// DefaultParams returns Table 2's processor configuration.
func DefaultParams() Params {
	return Params{
		IssueWidth:    4,
		ROB:           176,
		MSHRs:         8,
		LSQ:           56,
		L1Hit:         2,
		SquashPenalty: 17,
		ChunkSize:     1000,
		MaxChunks:     2,
		SpinBackoff:   3,
		SHiQ:          2048,
	}
}

// Env bundles the system services a processor needs. It is assembled by
// internal/core when wiring a machine.
type Env struct {
	Eng    *sim.Engine
	Net    *network.Network
	St     *stats.Stats
	Mem    *mem.Memory
	Pages  *mem.PageTable
	Sigs   sig.Factory
	NProcs int

	// SigRecycle, when non-nil, receives the signatures a processor's
	// chunk pool drops at warm reset (chunk.Pool.SigRecycler); core wires
	// it to the machine's sig.Recycler so cleared standard Blooms feed
	// the next run's factory instead of the allocator.
	SigRecycle func(sig.Signature)

	// Faults optionally injects processor-side faults (internal/fault):
	// spurious bulk-disambiguation squashes and W-signature aliasing
	// amplification. nil injects nothing and draws nothing.
	Faults *fault.Plan

	// ReadLine routes a demand miss to the owning directory module and
	// calls done at the requester with the granted line state (an int-typed
	// cache.LineState hint, widened to avoid an import cycle in callers)
	// when data arrives.
	ReadLine func(proc int, l mem.Line, excl bool, done func(stateHint int))
	// WritebackLine retires a dirty line to its home module.
	WritebackLine func(proc int, l mem.Line, drop bool)
	// Commit routes a permission-to-commit request to the arbitration
	// system (single arbiter or G-arbiter, per configuration). rset and
	// wset are the chunk's exact line sets, used only for routing and
	// simulation metadata.
	//
	// Commit must consume req SYNCHRONOUSLY: the processor pools its
	// request records and recycles them the moment the call returns, so
	// an implementation that defers work must copy the fields (and func
	// values) it needs rather than retain req itself.
	Commit func(req *CommitReq)
	// PrivCommit propagates an stpvt Wpriv signature to the directories.
	PrivCommit func(proc int, w sig.Signature, trueW *lineset.Set)
	// PreArbitrate requests exclusive commit rights (forward progress).
	PreArbitrate func(proc int, granted func())
	// EndPreArbitrate releases them without a commit.
	EndPreArbitrate func(proc int)
}

// CommitReq is the processor-side view of a permission-to-commit request;
// core translates it into arbiter requests.
type CommitReq struct {
	Proc  int
	W     sig.Signature
	R     sig.Signature // nil under the RSig optimization
	RSets []*lineset.Set
	WSets []*lineset.Set
	// FetchR retrieves R with its round-trip cost.
	FetchR func(cb func(sig.Signature))
	TrueW  *lineset.Set
	Reply  func(granted bool, order uint64)
}

// ---------------------------------------------------------------------------
// Stream interpreter state
// ---------------------------------------------------------------------------

// fetchState is the architectural interpreter position; it is exactly what
// a checkpoint must capture to re-execute a chunk.
type fetchState struct {
	pos          int    // index into the static stream
	computeLeft  uint32 // remaining instructions of a split compute block
	barriersDone int    // dynamic barriers completed (fixes barrier targets)
	barPhase     int    // 0 = not yet arrived at current barrier, 1 = waiting
}

// fetcher interprets one thread's static stream.
type fetcher struct {
	ins []workload.Instr
	fetchState
}

func newFetcher(ins []workload.Instr) fetcher { return fetcher{ins: ins} }

// current returns the instruction at the interpreter position.
func (f *fetcher) current() workload.Instr { return f.ins[f.pos] }

// done reports end of stream.
func (f *fetcher) done() bool { return f.ins[f.pos].Kind == workload.OpEnd }

// checkpoint captures the interpreter position.
func (f *fetcher) checkpoint() fetchState { return f.fetchState }

// restore rewinds to a checkpoint.
func (f *fetcher) restore(s fetchState) { f.fetchState = s }

// barrierTarget returns the generation this thread's next barrier must
// reach: one past the barriers already completed.
func (f *fetcher) barrierTarget() uint64 { return uint64(f.barriersDone) + 1 }

// Barrier state layout: the instruction's Addr is the barrier lock; the
// arrival counter and generation flag live on the next two sync lines.
func barrierCount(in workload.Instr) mem.Addr { return in.Addr + mem.LineBytes }
func barrierGen(in workload.Instr) mem.Addr   { return in.Addr + 2*mem.LineBytes }

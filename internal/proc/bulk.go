package proc

import (
	"fmt"

	"bulksc/internal/bdm"
	"bulksc/internal/cache"
	"bulksc/internal/chunk"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/slab"
	"bulksc/internal/stats"
	"bulksc/internal/workload"
)

// Opts selects the BulkSC configuration variants of the paper's Table 2.
type Opts struct {
	// RSigOpt enables the R-signature commit bandwidth optimization
	// (§4.2.2); part of the baseline BulkSC system.
	RSigOpt bool
	// Dypvt enables the dynamically-private data optimization (§5.2).
	Dypvt bool
	// Stpvt enables the statically-private data optimization (§5.1);
	// stack pages are the private section, as in the paper's evaluation.
	Stpvt bool
	// PreArbThreshold is the squash streak that triggers pre-arbitration.
	PreArbThreshold int
	// RetainCommitted makes the processor keep its committed chunks on a
	// retire list so the next warm Reset can recycle them (storage to the
	// arena, husks to the chunk pool). The machine sets it only when the
	// run exports no chunk references into its Result (i.e. CheckSC is
	// off); within a run retained chunks are never touched, so the flag
	// cannot change simulated behavior.
	RetainCommitted bool
}

// DefaultOpts returns the BSC_base configuration: RSig on, private-data
// optimizations off.
func DefaultOpts() Opts { return Opts{RSigOpt: true, PreArbThreshold: 6} }

// minChunk is the floor of exponential chunk shrinking.
const minChunk = 32

// batchInstrs bounds how many instructions one step event dispatches
// before yielding, setting the timing granularity of within-chunk events.
const batchInstrs = 32

// BulkProc is one BulkSC processor: core, checkpoints, L1 and BDM.
type BulkProc struct {
	//lint:poolsafe stable identity fixed at construction
	id   int
	env  *Env
	par  Params
	opts Opts
	l1   *cache.L1

	f           fetcher
	checkpoints []fetchState // per slot

	chunks   []*chunk.Chunk // live chunks, oldest first (incl. committing)
	slotBusy []bool
	cur      *chunk.Chunk
	chunkSeq uint64
	storeSeq uint64

	// pool recycles squashed chunks (never committed ones within a run —
	// the replay checker and the directory pipeline may retain those;
	// committed chunks re-enter the pool only across runs, via the
	// retired list below). A chunk enters
	// the pool only when no commit request of its is still in flight; all
	// callbacks that can outlive a squash carry a Gen guard. Across warm
	// machine resets the pool is Drained, not dropped: chunk structs and
	// Log storage survive, set/write-buffer arrays return to arena.
	pool chunk.Pool
	// retired accumulates committed chunks of the current run when
	// opts.RetainCommitted is set; the next Reset adopts them into the
	// pool (nothing reads them in between).
	retired []*chunk.Chunk
	// commitReqFree recycles permission-to-commit request records.
	// Env.Commit consumes its argument synchronously (core.routeCommit
	// copies what travels onward into the arbiter request), so sendCommit
	// can return the record to this list as soon as the call comes back;
	// steady-state arbitration allocates no request state at all.
	//lint:poolsafe recycled records are fully reinitialized at reuse
	commitReqFree []*CommitReq
	// arena recycles the power-of-two backing arrays of chunk sets and
	// write buffers across runs (via pool.Drain); recycled arrays are
	// zeroed and size-matched, so the cold capacity trajectory is
	// re-walked from pooled storage instead of the allocator.
	//lint:poolsafe size-class storage recycler; recycled arrays are zeroed and identity-neutral
	arena slab.Pool[uint64]
	// stepFn is p.step captured once; rebuilding the method value on every
	// kick allocates, and kick is the single most scheduled event.
	//lint:poolsafe bound method value captured once at construction
	stepFn func()
	// privScratch is the reusable drain buffer for PrivateBuffer.DrainSlot.
	privScratch []bdm.PrivEntry

	privBuf *bdm.PrivateBuffer

	// liveSum is the live-summary signature: a conservative union of every
	// active chunk's R and W, maintained incrementally on access append
	// (chunk.Sum mirrors every shared-line insert) and rebuilt when a
	// chunk leaves the active set (commit retirement, squash). ApplyCommit
	// early-outs the whole disambiguation walk with one Intersects against
	// it (DESIGN.md §16).
	liveSum sig.Signature
	// inflightSig conservatively contains the line of every in-flight
	// fetch: add-only on request issue (and on blocked-install
	// re-insertion), cleared only when the MSHR set drains empty, so it is
	// always a superset of the live in-flight line set. ApplyCommit skips
	// the per-commit poison scan when the incoming W cannot intersect it.
	inflightSig sig.Signature

	// inflight holds the outstanding line fetches, at most par.MSHRs (a
	// handful) at a time — a linear scan over the slice beats the map it
	// replaced, and its insertion order is deterministic for the poison
	// walk in ApplyCommit.
	inflight []*fetchReq
	// reqFree recycles fetch-request records together with their bound
	// arrival callbacks and waiter storage. Safe across runs: every record
	// in the pool has had its waiters emptied by freeReq, and newReq
	// overwrites the line and poison state at reuse (the stale grant-state
	// field is written in arrive before the retry path can read it).
	//lint:poolsafe recycled records are fully reinitialized at reuse
	reqFree []*fetchReq
	// misses is a head-indexed FIFO (see ConvProc.misses).
	misses   []missEntry
	missHead int
	dispatch uint64 // instructions dispatched (incl. later squashed)

	squashStreak  int
	preArbing     bool
	preArbGranted bool
	commitCount   uint64 // chunks this processor has committed
	pendingClose  bool   // set-overflow requested an early chunk close

	// Liveness bookkeeping for the core watchdog: monotone per-processor
	// counters plus short diagnostic trails. Pure observation — updating
	// them schedules nothing, draws nothing and touches no protocol
	// state, so the determinism hashes are unaffected.
	denyCount   uint64
	squashCount uint64 // squash events (not victims)
	trail       livenessTrail

	scheduled bool
	finished  bool
	doneAt    sim.Time

	// OnCommit is invoked at each chunk's commit instant (arbiter
	// decision time), in global commit order — the replay checker hook.
	OnCommit func(ch *chunk.Chunk)
	// OnSquash is invoked at each squash with the victim count, the
	// instructions discarded, and whether the conflict was genuine — the
	// timeline recorder hook.
	OnSquash func(victims, instrs int, genuine bool)
	// OnPreArb is invoked when a pre-arbitration grant arrives.
	OnPreArb func()
}

type fetchReq struct {
	p       *BulkProc
	l       mem.Line
	st      cache.LineState // granted state, kept across install retries
	waiters []bulkWaiter
	// poisoned marks a fetch overtaken by a committing W signature: the
	// reply data is stale the moment it arrives, so the line is not
	// installed (the MSHR "invalidate on arrival" rule). Without this,
	// the racing reply would reinstall a line the directory no longer
	// records us as sharing, and later commits would miss us.
	poisoned bool
	// arriveFn is the bound arrival continuation, created once per pooled
	// record and handed to Env.ReadLine on every reuse.
	arriveFn func(stateHint int)
}

// Waiter kinds: what to do for one fill-dependent consumer when the line
// (or its poisoned tombstone) arrives. The record replaces the per-fetch
// capture closures of doLoad, pinOnArrival and ensureLine.
const (
	wLoad   uint8 = iota // speculative load: complete miss, refresh value
	wPin                 // store miss: pin the line for the chunk
	wEnsure              // sync micro-op: re-dispatch when present
)

type bulkWaiter struct {
	kind   uint8
	hadFwd bool         // wLoad: value was store-forwarded at dispatch
	ch     *chunk.Chunk // chunk the access belongs to
	gen    uint64       // chunk generation guard
	idx    uint64       // wLoad: dispatch index in the miss FIFO
	logIdx int          // wLoad: access-log slot to refresh
	a      mem.Addr     // wLoad: accessed address
}

type missEntry struct {
	idx  uint64
	done bool
}

// NewBulkProc builds processor id over stream ins.
func NewBulkProc(id int, env *Env, par Params, opts Opts, ins []workload.Instr) *BulkProc {
	p := &BulkProc{
		id:          id,
		env:         env,
		par:         par,
		opts:        opts,
		l1:          cache.NewL1(256, 4), // 32 KB / 4-way / 32 B
		f:           newFetcher(ins),
		checkpoints: make([]fetchState, par.MaxChunks),
		slotBusy:    make([]bool, par.MaxChunks),
		privBuf:     bdm.NewPrivateBuffer(bdm.DefaultPrivBufLines),
		inflight:    make([]*fetchReq, 0, par.MSHRs),
	}
	p.stepFn = p.step
	p.pool.SigRecycler = env.SigRecycle
	p.liveSum = env.Sigs()
	p.inflightSig = env.Sigs()
	return p
}

// Reset returns the processor to its just-constructed state over a new
// instruction stream, retaining the expensive construction-time storage:
// the L1 tag arrays (scrubbed in place), the map buckets, the checkpoint
// and FIFO backing arrays, the private buffer, and the fetch-request pool.
//
// The per-proc chunk pool is Drained, not retained as-is: chunk sets and
// write buffers are open-addressed tables whose iteration order depends
// on their capacity growth history, so a warm pool seeded with grown
// tables would walk lines in a different order than a cold machine and
// the determinism hashes would diverge. Drain restores every pooled
// chunk's tables to the zero-value cold shape — the first few chunks of a
// warm run re-grow exactly as a cold run does — while parking the grown
// arrays in the per-proc arena so the re-growth recycles storage instead
// of allocating (the signatures are dropped too; Get rebuilds them from
// the new run's factory).
func (p *BulkProc) Reset(ins []workload.Instr, par Params, opts Opts) {
	p.par = par
	p.opts = opts
	p.l1.Reset()
	p.f = newFetcher(ins)
	if len(p.checkpoints) != par.MaxChunks {
		p.checkpoints = make([]fetchState, par.MaxChunks)
		p.slotBusy = make([]bool, par.MaxChunks)
	} else {
		clear(p.checkpoints)
		clear(p.slotBusy)
	}
	clear(p.chunks) // release chunk references before truncating
	p.chunks = p.chunks[:0]
	p.cur = nil
	p.chunkSeq = 0
	p.storeSeq = 0
	// Recycle the previous run's committed chunks (retained only when that
	// run exported no chunk references, see Opts.RetainCommitted), then
	// drain the whole pool back to cold shapes for cold/warm bit-identity
	// (see doc). Adopt and Drain leave the same shape, so the order of the
	// two calls over a chunk is irrelevant.
	for _, c := range p.retired {
		p.pool.Adopt(c)
	}
	clear(p.retired)
	p.retired = p.retired[:0]
	p.pool.Drain()
	p.privScratch = p.privScratch[:0]
	p.privBuf.Clear()
	// The filter signatures are re-drawn rather than Cleared: the new
	// run's factory may produce a different kind or geometry, and the old
	// objects go back through the recycler like every dropped chunk sig.
	if p.env.SigRecycle != nil {
		p.env.SigRecycle(p.liveSum)
		p.env.SigRecycle(p.inflightSig)
	}
	p.liveSum = p.env.Sigs()
	p.inflightSig = p.env.Sigs()
	clear(p.inflight)
	p.inflight = p.inflight[:0]
	p.misses = p.misses[:0]
	p.missHead = 0
	p.dispatch = 0
	p.squashStreak = 0
	p.preArbing = false
	p.preArbGranted = false
	p.commitCount = 0
	p.pendingClose = false
	p.denyCount = 0
	p.squashCount = 0
	p.trail = livenessTrail{}
	p.scheduled = false
	p.finished = false
	p.doneAt = 0
	p.OnCommit = nil
	p.OnSquash = nil
	p.OnPreArb = nil
}

// Start schedules the processor's first dispatch event.
func (p *BulkProc) Start() { p.kick() }

// Finished reports whether the stream has fully committed.
func (p *BulkProc) Finished() bool { return p.finished }

// ID returns the processor's id.
func (p *BulkProc) ID() int { return p.id }

// DoneAt returns the cycle the last chunk committed.
func (p *BulkProc) DoneAt() sim.Time { return p.doneAt }

// L1 exposes the cache for tests.
func (p *BulkProc) L1() *cache.L1 { return p.l1 }

// Progress reports the processor's monotone liveness counters: chunks
// committed, commit denials received, and squash events suffered. The core
// watchdog samples these to detect starvation and squash loops.
func (p *BulkProc) Progress() (commits, denials, squashes uint64) {
	return p.commitCount, p.denyCount, p.squashCount
}

// LivenessTrail formats the last few denied chunks and squash events for
// watchdog diagnostics.
func (p *BulkProc) LivenessTrail() string { return p.trail.String() }

// DebugState summarizes the interpreter position for deadlock diagnostics.
func (p *BulkProc) DebugState() string {
	cur := "nil"
	if p.cur != nil {
		cur = p.cur.String()
	}
	return fmt.Sprintf("bulk{fin=%v pos=%d/%d phase=%d barriers=%d live=%d cur=%s streak=%d preArb=%v inflight=%d}",
		p.finished, p.f.pos, len(p.f.ins), p.f.barPhase, p.f.barriersDone,
		len(p.chunks), cur, p.squashStreak, p.preArbing, len(p.inflight))
}

func (p *BulkProc) kick() {
	if p.scheduled || p.finished {
		return
	}
	p.scheduled = true
	p.env.Eng.After(0, p.stepFn)
}

func (p *BulkProc) kickAt(d sim.Time) {
	if p.scheduled || p.finished {
		return
	}
	p.scheduled = true
	p.env.Eng.After(d, p.stepFn)
}

// ---------------------------------------------------------------------------
// Dispatch loop
// ---------------------------------------------------------------------------

func (p *BulkProc) step() {
	p.scheduled = false
	if p.finished {
		return
	}
	consumed := 0
	for consumed < batchInstrs {
		if p.cur == nil {
			if !p.openChunk() {
				return // stalled on chunk slots; grant arrival kicks
			}
		}
		if len(p.inflight) >= p.par.MSHRs {
			return // stalled on MSHRs; fetch arrival kicks
		}
		if p.robFull() {
			return // stalled on ROB; miss completion kicks
		}
		// One indexed load serves both the end-of-stream test and the
		// dispatch switch (done() is current().Kind == OpEnd).
		in := p.f.current()
		if in.Kind == workload.OpEnd {
			p.endOfStream()
			return
		}
		switch in.Kind {
		case workload.OpCompute:
			n := p.f.computeLeft
			if n == 0 {
				n = in.N
			}
			take := uint32(batchInstrs - consumed)
			if take > n {
				take = n
			}
			n -= take
			if n == 0 {
				p.f.computeLeft = 0
				p.f.pos++
			} else {
				p.f.computeLeft = n
			}
			p.account(int(take))
			consumed += int(take)
		case workload.OpLoad:
			p.doLoad(in.Addr)
			p.f.pos++
			p.account(1)
			consumed++
		case workload.OpStore:
			p.doStore(in.Addr, p.token())
			p.f.pos++
			p.account(1)
			consumed++
		case workload.OpAcquire:
			spin := p.doAcquire(in.Addr)
			if spin {
				// A hot spin iteration costs a handful of instructions
				// (load, test, branch, pause).
				p.account(6)
				consumed += 6
			} else {
				p.account(2)
				consumed += 2
			}
			if spin {
				p.maybeCloseChunk()
				p.yieldFor(p.par.SpinBackoff)
				return
			}
		case workload.OpRelease:
			p.doStore(in.Addr, 0)
			p.f.pos++
			p.account(1)
			consumed++
		case workload.OpBarrier:
			waiting, ops := p.doBarrier(in)
			if waiting {
				ops += 4 // spin-loop overhead instructions
			}
			p.account(ops)
			consumed += ops
			if waiting {
				p.maybeCloseChunk()
				p.yieldFor(p.par.SpinBackoff)
				return
			}
		case workload.OpIO:
			// §4.1.3: uncached operations cannot be speculative. Close
			// the current chunk, wait for every in-flight chunk to
			// commit, perform the operation, then resume in a new chunk.
			if p.cur.Executed > 0 {
				p.pendingClose = true
				p.maybeCloseChunk()
				return // grant arrival kicks
			}
			if len(p.chunks) > 1 {
				// The empty current chunk waits behind committing ones.
				return
			}
			p.f.pos++
			p.account(1)
			consumed++
			// The operation is non-speculative: close the one-instruction
			// chunk immediately (its signatures are empty, so it can
			// never be squashed and the I/O never re-executes).
			p.pendingClose = true
			p.maybeCloseChunk()
			p.yieldFor(sim.Time(in.N))
			return
		default:
			panic(fmt.Sprintf("proc %d: unexpected op %v", p.id, in.Kind))
		}
		p.maybeCloseChunk()
		if p.cur == nil && p.f.done() {
			// Stream drained exactly at a chunk boundary.
			p.endOfStream()
			return
		}
	}
	p.yieldFor(sim.Time(consumed) / sim.Time(p.par.IssueWidth))
}

// account charges n dispatched instructions to the current chunk.
func (p *BulkProc) account(n int) {
	p.dispatch += uint64(n)
	p.cur.Executed += n
}

// maybeCloseChunk completes the executing chunk when it has reached its
// instruction budget or a cache-set overflow forced an early end.
func (p *BulkProc) maybeCloseChunk() {
	if p.cur != nil && (p.pendingClose || p.cur.Executed >= p.cur.Target) {
		p.pendingClose = false
		p.closeChunk()
	}
}

func (p *BulkProc) yieldFor(d sim.Time) {
	if d < 1 {
		d = 1
	}
	p.kickAt(d)
}

func (p *BulkProc) token() uint64 {
	p.storeSeq++
	return uint64(p.id+1)<<40 | p.storeSeq
}

func (p *BulkProc) robFull() bool {
	for p.missHead < len(p.misses) && p.misses[p.missHead].done {
		p.missHead++
	}
	if p.missHead == len(p.misses) {
		p.misses = p.misses[:0]
		p.missHead = 0
	}
	return p.missHead < len(p.misses) && p.dispatch-p.misses[p.missHead].idx >= uint64(p.par.ROB)
}

// missComplete marks the oldest outstanding miss with dispatch index idx
// done.
func (p *BulkProc) missComplete(idx uint64) {
	for i := p.missHead; i < len(p.misses); i++ {
		if p.misses[i].idx == idx && !p.misses[i].done {
			p.misses[i].done = true
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

// forwardValue returns the newest buffered value for addr among the
// uncommitted chunks (store-to-load forwarding within and across chunks).
// Chunks that have been granted commit are excluded: their stores are
// already part of committed memory, where later commits may legitimately
// overwrite them — forwarding from a lingering buffer would serve stale
// values.
//
//sim:hotpath
func (p *BulkProc) forwardValue(a mem.Addr) (uint64, bool) {
	for i := len(p.chunks) - 1; i >= 0; i-- {
		ch := p.chunks[i]
		if !ch.Active() {
			continue
		}
		if v, ok := ch.Forward(a); ok {
			return v, true
		}
	}
	return 0, false
}

// readValue returns the value a load of addr observes right now:
// forwarding first, then committed memory.
//
//sim:hotpath
func (p *BulkProc) readValue(a mem.Addr) uint64 {
	if v, ok := p.forwardValue(a); ok {
		return v
	}
	return p.env.Mem.Load(a)
}

// ---------------------------------------------------------------------------
// Loads and stores
// ---------------------------------------------------------------------------

//sim:hotpath
func (p *BulkProc) doLoad(a mem.Addr) {
	priv := p.opts.Stpvt && p.env.Pages.Private(a)
	fwdVal, hadFwd := p.forwardValue(a)
	v := fwdVal
	if !hadFwd {
		v = p.env.Mem.Load(a)
	}
	p.cur.RecordLoad(a, v, priv)
	logIdx := len(p.cur.Log) - 1
	l := a.LineOf()
	if p.l1.Access(l) != nil {
		p.env.St.L1Hits++
		return
	}
	p.env.St.L1Misses++
	idx := p.dispatch
	p.misses = append(p.misses, missEntry{idx: idx})
	ch := p.cur
	ch.Pending++
	// The wLoad waiter completes the miss and — when the value was not
	// store-forwarded — refreshes the logged value at arrival: a missing
	// load architecturally reads when the data arrives, after the home
	// directory has snooped the owner. This matters for lines whose owner
	// updates them under the dynamically-private optimization: those
	// commits are invisible to arbitration, so the value must be the one
	// the snoop supplies, not the one at dispatch.
	p.fetchWaiter(l, bulkWaiter{
		kind: wLoad, hadFwd: hadFwd,
		ch: ch, gen: ch.Gen, idx: idx, logIdx: logIdx, a: a,
	})
}

//sim:hotpath
func (p *BulkProc) doStore(a mem.Addr, val uint64) {
	l := a.LineOf()
	w := p.l1.Probe(l)
	priv := false
	switch {
	case p.opts.Stpvt && p.env.Pages.Private(a):
		priv = true
	case p.writtenPrivatelyByLive(l):
		// Follow the predecessor chunk's classification.
		priv = true
	case p.writtenByLive(l):
		priv = false
	case w != nil && w.State == cache.Dirty:
		// First write in this chunk to a dirty non-speculative line.
		if p.opts.Dypvt && p.privBuf.Save(l, p.cur.Slot, p.env.Mem.LoadLine(l)) {
			// §5.2: keep the line dirty, save the pre-update version,
			// route the write to Wpriv, and skip the writeback.
			priv = true
		} else {
			// Base BulkSC — or a private-buffer overflow (§5.2): the
			// committed version is written back first so memory holds it
			// while the cache copy turns speculative, and the write goes
			// through W.
			if p.opts.Dypvt {
				p.env.St.PrivBufOverflows++
			}
			p.env.St.AddTraffic(stats.CatData, network.DataBytes)
			p.env.WritebackLine(p.id, l, false)
			w.State = cache.Shared
		}
	}
	p.cur.RecordStore(a, val, priv)
	if w != nil {
		p.l1.Pin(l, p.cur.Slot)
		return
	}
	// Store miss: the line must be received before the chunk commits, but
	// the store itself retires immediately (stores are stall-free, §6).
	if !p.l1.RoomFor(l) {
		// Cache-set overflow: finish the chunk early (§4.1.2). The store
		// has already been recorded in this chunk; the close is deferred
		// to the dispatch loop so accounting stays consistent.
		p.env.St.SetOverflowCuts++
		p.pendingClose = true
	}
	p.pinOnArrival(l, p.cur)
}

// pinOnArrival fetches l (if not already in flight) and pins it for ch
// when it arrives.
//
//sim:hotpath
func (p *BulkProc) pinOnArrival(l mem.Line, ch *chunk.Chunk) {
	p.env.St.L1Misses++
	ch.Pending++
	p.fetchWaiter(l, bulkWaiter{kind: wPin, ch: ch, gen: ch.Gen})
}

//sim:hotpath
func (p *BulkProc) writtenByLive(l mem.Line) bool {
	for _, ch := range p.chunks {
		if ch.Active() && ch.WroteLine(l) {
			return true
		}
	}
	return false
}

//sim:hotpath
func (p *BulkProc) writtenPrivatelyByLive(l mem.Line) bool {
	for _, ch := range p.chunks {
		if !ch.Active() {
			continue
		}
		if ch.PrivSet.Has(l) {
			return true
		}
	}
	return false
}

// findReq returns the outstanding fetch for line l, or nil. The MSHR set
// is bounded by par.MSHRs entries, so the linear scan is a handful of
// pointer chases.
//
//sim:hotpath
func (p *BulkProc) findReq(l mem.Line) *fetchReq {
	for _, r := range p.inflight {
		if r.l == l {
			return r
		}
	}
	return nil
}

// dropReq removes r from the MSHR set if present (it may already have
// been replaced after poisoning). Swap-remove: the only walk over the set
// is the commutative poison marking, so order is free.
//
//sim:hotpath
func (p *BulkProc) dropReq(r *fetchReq) {
	for i, q := range p.inflight {
		if q == r {
			n := len(p.inflight) - 1
			p.inflight[i] = p.inflight[n]
			p.inflight[n] = nil
			p.inflight = p.inflight[:n]
			return
		}
	}
}

// fetchWaiter requests line l from its home directory on behalf of waiter
// w, coalescing with an outstanding request (one MSHR per line). The
// request record, its waiter storage and its arrival continuation are all
// pooled; a steady-state miss allocates nothing.
func (p *BulkProc) fetchWaiter(l mem.Line, w bulkWaiter) {
	if req := p.findReq(l); req != nil {
		if !req.poisoned {
			req.waiters = append(req.waiters, w)
			return
		}
		// The outstanding request is poisoned, its data dead on arrival.
		// Coalescing onto it would be a consistency hole: no new demand
		// read would reach the directory, so this processor would never
		// be re-registered as a sharer and later commits could miss it.
		// Replace it with a fresh request (the poisoned record stays
		// alive until its reply lands, but is no longer the line's MSHR).
		p.dropReq(req)
	}
	req := p.newReq(l)
	req.waiters = append(req.waiters, w)
	p.inflight = append(p.inflight, req)
	p.inflightSig.Add(l)
	p.env.ReadLine(p.id, l, false, req.arriveFn)
}

//sim:pool acquire
func (p *BulkProc) newReq(l mem.Line) *fetchReq {
	var r *fetchReq
	if n := len(p.reqFree); n > 0 {
		r = p.reqFree[n-1]
		p.reqFree[n-1] = nil
		p.reqFree = p.reqFree[:n-1]
		r.poisoned = false
	} else {
		r = &fetchReq{p: p}
		r.arriveFn = r.arrive
	}
	r.l = l
	return r
}

// getCommitReq returns a recycled (or fresh) permission-to-commit record;
// every field is overwritten by sendCommit before use.
//
//sim:hotpath
//sim:pool acquire
func (p *BulkProc) getCommitReq() *CommitReq {
	if n := len(p.commitReqFree); n > 0 {
		r := p.commitReqFree[n-1]
		p.commitReqFree[n-1] = nil
		p.commitReqFree = p.commitReqFree[:n-1]
		return r
	}
	//lint:alloc one-time freelist seeding, amortized to zero by recycling
	return &CommitReq{}
}

// putCommitReq recycles r once Env.Commit has consumed it. References are
// dropped so a parked record cannot pin a dead run's signatures or sets.
//
//sim:hotpath
//sim:pool release
func (p *BulkProc) putCommitReq(r *CommitReq) {
	r.W, r.R = nil, nil
	clear(r.RSets)
	r.RSets = r.RSets[:0]
	clear(r.WSets)
	r.WSets = r.WSets[:0]
	r.FetchR, r.Reply = nil, nil
	r.TrueW = nil
	p.commitReqFree = append(p.commitReqFree, r)
}

//sim:pool release
func (p *BulkProc) freeReq(r *fetchReq) {
	for i := range r.waiters {
		r.waiters[i] = bulkWaiter{} // drop chunk references
	}
	r.waiters = r.waiters[:0]
	p.reqFree = append(p.reqFree, r)
}

// arrive runs at the requester when the reply lands: install (or poison-
// discard) the line, then serve the waiters.
func (r *fetchReq) arrive(stateHint int) {
	p, l := r.p, r.l
	p.dropReq(r)
	if r.poisoned {
		// Invalidate-on-arrival: wake the waiters without caching the
		// stale data; value-dependent consumers re-fetch.
		p.retireInflightSig()
		p.runWaiters(r)
		return
	}
	victim, ok := p.l1.Insert(l, cache.LineState(stateHint))
	if !ok {
		// All ways pinned: hold the line in the MSHR virtually and retry
		// shortly; commit of the pinning chunk frees a way. Re-adding the
		// line keeps the in-flight signature a superset of the MSHR set.
		p.inflight = append(p.inflight, r)
		p.inflightSig.Add(l)
		r.st = cache.LineState(stateHint)
		p.env.Eng.AfterCall(10, bulkRetryCB, r)
		return
	}
	p.retireInflightSig()
	p.handleVictim(victim)
	p.runWaiters(r)
}

// bulkRetryCB re-attempts a blocked install through the engine's typed-
// callback path; the pooled request is the payload, so retries allocate
// nothing.
func bulkRetryCB(arg any) { arg.(*fetchReq).retryInstall() }

func (r *fetchReq) retryInstall() {
	p, l := r.p, r.l
	p.dropReq(r)
	if r.poisoned {
		p.retireInflightSig()
		p.runWaiters(r)
		return
	}
	victim, ok := p.l1.Insert(l, r.st)
	if !ok {
		if p.findReq(l) == nil {
			p.inflight = append(p.inflight, r)
			p.inflightSig.Add(l)
		}
		p.env.Eng.AfterCall(10, bulkRetryCB, r)
		return
	}
	p.retireInflightSig()
	p.handleVictim(victim)
	p.runWaiters(r)
}

// retireInflightSig re-tightens the in-flight-lines signature after a
// fetch retires. Signatures cannot remove, so retirement clears it only
// at the cheap sound point — when the MSHR set drains empty. MSHRs bound
// the set at a handful of entries and the machine drains it constantly,
// so stale bits never accumulate past one burst; in between they can only
// cause a harmless fall-through to the precise poison scan.
//
//sim:hotpath
func (p *BulkProc) retireInflightSig() {
	if len(p.inflight) == 0 {
		p.inflightSig.Clear()
	}
}

// runWaiters serves every consumer of the arrived (or poisoned) fill and
// recycles the request. Each case replicates the capture closure it
// replaced; the Gen guard defuses waiters whose chunk died or was
// recycled while the fill was in flight.
func (p *BulkProc) runWaiters(r *fetchReq) {
	for i := range r.waiters {
		w := &r.waiters[i]
		ch := w.ch
		switch w.kind {
		case wLoad:
			p.missComplete(w.idx)
			if ch.Gen == w.gen && ch.State != chunk.Squashed {
				if !w.hadFwd {
					ch.Log[w.logIdx].Value = p.env.Mem.Load(w.a)
				}
				ch.Pending--
				p.tryRequestCommit(ch)
			}
		case wPin:
			if ch.Gen == w.gen && ch.State != chunk.Squashed {
				if ch.WroteLine(r.l) {
					p.l1.Pin(r.l, ch.Slot)
				}
				ch.Pending--
				p.tryRequestCommit(ch)
			}
		case wEnsure:
			if ch.Gen == w.gen && ch.State != chunk.Squashed {
				ch.Pending--
				p.tryRequestCommit(ch)
			}
		}
		p.kick()
	}
	p.freeReq(r)
}

// handleVictim accounts for a displaced line: dirty lines write back;
// displacements of speculatively-read lines are safe (the R signature
// remembers them) but counted for Table 3.
func (p *BulkProc) handleVictim(v cache.Way) {
	if !v.Valid() {
		return
	}
	for _, ch := range p.chunks {
		if ch.State == chunk.Squashed || !ch.Active() {
			continue
		}
		if ch.RSet.Has(v.Line) {
			p.env.St.SpecReadDispl++
			break
		}
	}
	if v.State == cache.Dirty {
		p.env.St.AddTraffic(stats.CatData, network.DataBytes)
		p.env.WritebackLine(p.id, v.Line, true)
	}
}

// ---------------------------------------------------------------------------
// Synchronization interpretation
// ---------------------------------------------------------------------------

// doAcquire attempts one acquire iteration. It returns true if the
// processor should back off and retry — either the line is still on its
// way (a value-dependent operation must read the arrived data, which by
// then reflects any private-buffer snoop at the owner) or the lock is
// held. The interpreter position stays on the acquire.
func (p *BulkProc) doAcquire(lock mem.Addr) bool {
	if !p.ensureLine(lock.LineOf()) {
		return true
	}
	v := p.readValue(lock)
	p.cur.RecordLoad(lock, v, false)
	if v != 0 {
		p.env.St.SpinInstrs++
		return true
	}
	// Test-and-set succeeds: the load and store stay in one chunk, whose
	// atomicity makes the pair an atomic RMW (§3.3).
	p.doStore(lock, 1)
	p.f.pos++
	return false
}

// doBarrier executes one iteration of the centralized sense-reversing
// barrier (lock-protected arrival counter + generation flag, the ANL
// macro structure). Returns whether the processor must keep waiting, plus
// the number of instructions the iteration consumed.
//
// Phase 0 (arrive): test-and-set the barrier lock, bump the counter, and
// — as the last arriver — reset it and publish the new generation; the
// whole block executes within one chunk, whose atomicity makes it a
// critical section. Phase 1 (wait): spin on the generation flag only, so
// arrivals do not disturb waiting chunks' read sets.
func (p *BulkProc) doBarrier(in workload.Instr) (waiting bool, ops int) {
	target := p.f.barrierTarget()
	lock, count, gen := in.Addr, barrierCount(in), barrierGen(in)
	if p.f.barPhase == 0 {
		if !p.ensureLine(lock.LineOf()) || !p.ensureLine(count.LineOf()) {
			return true, 1
		}
		v := p.readValue(lock)
		p.cur.RecordLoad(lock, v, false)
		if v != 0 {
			p.env.St.SpinInstrs++
			return true, 2
		}
		p.doStore(lock, 1)
		c := p.readValue(count)
		p.cur.RecordLoad(count, c, false)
		if c+1 >= uint64(in.N) {
			p.doStore(count, 0)
			p.doStore(gen, target)
		} else {
			p.doStore(count, c+1)
		}
		p.doStore(lock, 0)
		p.f.barPhase = 1
		return false, 8
	}
	if !p.ensureLine(gen.LineOf()) {
		return true, 1
	}
	g := p.readValue(gen)
	p.cur.RecordLoad(gen, g, false)
	if g < target {
		p.env.St.SpinInstrs++
		return true, 2
	}
	p.f.pos++
	p.f.barriersDone++
	p.f.barPhase = 0
	return false, 2
}

// ensureLine reports whether l is present (touching recency); if absent it
// starts the fetch and arranges a dispatch retry at arrival. Sync
// micro-ops are value-dependent, so they only read present lines.
//
//sim:hotpath
func (p *BulkProc) ensureLine(l mem.Line) bool {
	if p.l1.Access(l) != nil {
		p.env.St.L1Hits++
		return true
	}
	p.env.St.L1Misses++
	ch := p.cur
	ch.Pending++
	p.fetchWaiter(l, bulkWaiter{kind: wEnsure, ch: ch, gen: ch.Gen})
	return false
}

package proc

import (
	"testing"

	"bulksc/internal/cache"
	"bulksc/internal/chunk"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
	"bulksc/internal/workload"
)

// fakeEnv wires a processor to a trivially-served memory system: every
// demand read returns Shared after a fixed latency; commits are granted
// immediately at the arbiter with a monotone order.
type fakeEnv struct {
	env      *Env
	eng      *sim.Engine
	st       *stats.Stats
	order    uint64
	denied   int // commit requests to deny before granting
	lat      sim.Time
	requests []mem.Line
}

func newFakeEnv() *fakeEnv {
	fe := &fakeEnv{eng: sim.NewEngine(1), st: stats.New(), lat: 13}
	net := network.New(fe.eng, fe.st)
	fe.env = &Env{
		Eng:    fe.eng,
		Net:    net,
		St:     fe.st,
		Mem:    mem.NewMemory(),
		Pages:  mem.NewPageTable(),
		Sigs:   sig.NewFactory(sig.KindExact),
		NProcs: 1,
	}
	fe.env.ReadLine = func(p int, l mem.Line, excl bool, done func(int)) {
		fe.requests = append(fe.requests, l)
		fe.eng.After(fe.lat, func() { done(int(cache.Shared)) })
	}
	fe.env.WritebackLine = func(p int, l mem.Line, drop bool) {}
	fe.env.Commit = func(req *CommitReq) {
		// Env.Commit consumes its argument synchronously (the processor
		// recycles the record as soon as the call returns), so copy out
		// what the deferred reply needs instead of retaining req.
		reply := req.Reply
		emptyW := req.W.Empty()
		fe.eng.After(10, func() {
			if fe.denied > 0 {
				fe.denied--
				reply(false, 0)
				return
			}
			if emptyW {
				fe.st.EmptyWCommits++
			}
			fe.order++
			reply(true, fe.order)
		})
	}
	fe.env.PrivCommit = func(p int, w sig.Signature, trueW *lineset.Set) {}
	fe.env.PreArbitrate = func(p int, granted func()) { fe.eng.After(10, granted) }
	fe.env.EndPreArbitrate = func(p int) {}
	return fe
}

func buildStream(mk func(b *workload.Builder)) []workload.Instr {
	b := workload.NewBuilder(0, 1, 1)
	mk(b)
	return b.End()
}

func TestBulkProcRunsAndCommits(t *testing.T) {
	fe := newFakeEnv()
	ins := buildStream(func(b *workload.Builder) {
		for i := 0; i < 50; i++ {
			b.Load(mem.HeapAddr(uint64(i * 64)))
			b.Compute(30)
			b.Store(mem.HeapAddr(uint64(i * 64)))
		}
	})
	p := NewBulkProc(0, fe.env, DefaultParams(), DefaultOpts(), ins)
	var orders []uint64
	p.OnCommit = func(ch *chunk.Chunk) { orders = append(orders, ch.CommitOrder) }
	p.Start()
	fe.eng.Run(func() bool { return p.Finished() })
	if !p.Finished() {
		t.Fatal("processor did not finish")
	}
	if fe.st.Chunks < 1 {
		t.Fatal("no chunks committed")
	}
	if fe.st.CommittedInstrs < 1500 {
		t.Fatalf("committed %d instrs, want ≥1500", fe.st.CommittedInstrs)
	}
	for i := 1; i < len(orders); i++ {
		if orders[i] <= orders[i-1] {
			t.Fatal("per-processor commit order not monotone")
		}
	}
}

func TestBulkProcChunkBoundaries(t *testing.T) {
	fe := newFakeEnv()
	ins := buildStream(func(b *workload.Builder) {
		b.Compute(3500) // 3.5 chunks of pure compute
	})
	par := DefaultParams()
	par.ChunkSize = 1000
	p := NewBulkProc(0, fe.env, par, DefaultOpts(), ins)
	p.Start()
	fe.eng.Run(func() bool { return p.Finished() })
	if fe.st.Chunks != 4 {
		t.Fatalf("committed %d chunks for 3500 instrs, want 4", fe.st.Chunks)
	}
	if fe.st.EmptyWCommits != 4 {
		t.Fatalf("pure-compute chunks must have empty W (%d of %d)", fe.st.EmptyWCommits, fe.st.Chunks)
	}
}

func TestBulkProcDenyRetries(t *testing.T) {
	fe := newFakeEnv()
	fe.denied = 3
	ins := buildStream(func(b *workload.Builder) {
		b.Store(mem.HeapAddr(0))
		b.Compute(100)
	})
	p := NewBulkProc(0, fe.env, DefaultParams(), DefaultOpts(), ins)
	p.Start()
	fe.eng.Run(func() bool { return p.Finished() })
	if !p.Finished() {
		t.Fatal("did not finish after denials")
	}
	if fe.st.Chunks != 1 {
		t.Fatalf("chunks = %d, want 1", fe.st.Chunks)
	}
}

func TestBulkProcMSHRCoalescing(t *testing.T) {
	fe := newFakeEnv()
	a := mem.HeapAddr(0)
	ins := buildStream(func(b *workload.Builder) {
		// Four accesses to the same line back to back: one fetch.
		b.Load(a)
		b.Load(a + 8)
		b.Store(a + 16)
		b.Load(a + 24)
		b.Compute(50)
	})
	p := NewBulkProc(0, fe.env, DefaultParams(), DefaultOpts(), ins)
	p.Start()
	fe.eng.Run(func() bool { return p.Finished() })
	if len(fe.requests) != 1 {
		t.Fatalf("issued %d fetches for one line, want 1 (MSHR coalescing)", len(fe.requests))
	}
}

func TestBulkProcForwarding(t *testing.T) {
	fe := newFakeEnv()
	a := mem.HeapAddr(4096)
	ins := buildStream(func(b *workload.Builder) {
		b.Store(a)
		b.Compute(10)
		b.Load(a) // must observe own store
		b.Compute(50)
	})
	p := NewBulkProc(0, fe.env, DefaultParams(), DefaultOpts(), ins)
	var got *uint64
	p.OnCommit = nil
	p.Start()
	fe.eng.Run(func() bool { return p.Finished() })
	_ = got
	// Architectural check: memory holds the token and the (single) chunk
	// committed.
	if fe.env.Mem.Load(a) == 0 {
		t.Fatal("store never committed to memory")
	}
	if fe.st.Chunks != 1 {
		t.Fatalf("chunks = %d, want 1", fe.st.Chunks)
	}
}

func TestBulkProcStpvtRoutesStackWrites(t *testing.T) {
	fe := newFakeEnv()
	fe.env.Pages.MarkStacksPrivate(1)
	ins := buildStream(func(b *workload.Builder) {
		b.StackWork(200)
		b.Compute(100)
	})
	opts := DefaultOpts()
	opts.Stpvt = true
	p := NewBulkProc(0, fe.env, DefaultParams(), opts, ins)
	p.Start()
	fe.eng.Run(func() bool { return p.Finished() })
	if fe.st.SumWSetLines != 0 {
		t.Fatalf("stack writes leaked into W under stpvt: %d lines", fe.st.SumWSetLines)
	}
	if fe.st.SumPrivWSetLines == 0 {
		t.Fatal("no private writes recorded under stpvt")
	}
	if fe.st.SumRSetLines != 0 {
		t.Fatalf("stack reads polluted R under stpvt: %d lines", fe.st.SumRSetLines)
	}
}

// --- ConvProc ------------------------------------------------------------

func runConv(t *testing.T, model Model, ins []workload.Instr) (*fakeEnv, *ConvProc) {
	t.Helper()
	fe := newFakeEnv()
	p := NewConvProc(0, fe.env, DefaultParams(), model, ins)
	p.Start()
	fe.eng.Run(func() bool { return p.Finished() })
	if !p.Finished() {
		t.Fatalf("%v proc did not finish: %s", model, p.DebugState())
	}
	return fe, p
}

func TestConvProcAllModelsComplete(t *testing.T) {
	ins := buildStream(func(b *workload.Builder) {
		for i := 0; i < 30; i++ {
			b.Load(mem.HeapAddr(uint64(i * 256)))
			b.Compute(20)
			b.Store(mem.HeapAddr(uint64(i * 256)))
		}
	})
	for _, m := range []Model{SC, RC, SCpp} {
		fe, _ := runConv(t, m, ins)
		if fe.st.CommittedInstrs < 600 {
			t.Errorf("%v: committed %d instrs", m, fe.st.CommittedInstrs)
		}
	}
}

func TestSCSerializesMemoryOps(t *testing.T) {
	// Under SC each memory op costs at least the serialization latency;
	// under RC misses overlap. The same miss-heavy stream must therefore
	// take notably longer under SC.
	ins := buildStream(func(b *workload.Builder) {
		for i := 0; i < 200; i++ {
			b.Load(mem.HeapAddr(uint64(i * 64)))
			b.Compute(2)
		}
	})
	feSC, _ := runConv(t, SC, ins)
	feRC, _ := runConv(t, RC, ins)
	scT, rcT := feSC.eng.Now(), feRC.eng.Now()
	if scT <= rcT {
		t.Fatalf("SC (%d cycles) not slower than RC (%d cycles) on miss chain", scT, rcT)
	}
	if float64(scT) < 1.3*float64(rcT) {
		t.Errorf("SC/RC ratio %.2f implausibly small for a miss chain", float64(scT)/float64(rcT))
	}
}

func TestRCStoreBufferForwarding(t *testing.T) {
	a := mem.HeapAddr(8192)
	ins := buildStream(func(b *workload.Builder) {
		b.Store(a)
		b.Load(a) // must forward from the store buffer
		b.Compute(50)
	})
	fe, _ := runConv(t, RC, ins)
	if fe.env.Mem.Load(a) == 0 {
		t.Fatal("store never drained to memory")
	}
}

func TestRCStoreBufferBounded(t *testing.T) {
	// More stores than LSQ entries must still complete (dispatch stalls
	// until the buffer drains).
	ins := buildStream(func(b *workload.Builder) {
		for i := 0; i < 200; i++ {
			b.Store(mem.HeapAddr(uint64(i * 64)))
		}
		b.Compute(50)
	})
	fe, _ := runConv(t, RC, ins)
	if fe.st.CommittedInstrs < 200 {
		t.Fatal("stores lost")
	}
}

func TestSCppViolationDetection(t *testing.T) {
	fe := newFakeEnv()
	ins := buildStream(func(b *workload.Builder) {
		for i := 0; i < 40; i++ {
			b.Load(mem.HeapAddr(uint64(i * 64)))
			b.Compute(10)
		}
	})
	p := NewConvProc(0, fe.env, DefaultParams(), SCpp, ins)
	p.Start()
	// Deliver an invalidation for a speculatively-read line mid-run.
	fe.eng.After(40, func() { p.ApplyInvalidate(mem.HeapAddr(0).LineOf()) })
	fe.eng.Run(func() bool { return p.Finished() })
	if fe.st.SHiQViolations != 1 {
		t.Fatalf("SHiQViolations = %d, want 1", fe.st.SHiQViolations)
	}
	if fe.st.SquashedInstrs == 0 {
		t.Fatal("violation charged no wasted work")
	}
}

func TestConvSnoopDirty(t *testing.T) {
	fe := newFakeEnv()
	ins := buildStream(func(b *workload.Builder) { b.Compute(10) })
	p := NewConvProc(0, fe.env, DefaultParams(), RC, ins)
	l := mem.HeapAddr(0).LineOf()
	if sup, holds := p.SnoopDirty(l); sup || holds {
		t.Fatal("snoop of absent line reported data")
	}
	p.l1.Insert(l, cache.Dirty)
	sup, holds := p.SnoopDirty(l)
	if !sup || !holds {
		t.Fatal("snoop of dirty line failed")
	}
	if w := p.l1.Probe(l); w == nil || w.State != cache.Shared {
		t.Fatal("snoop did not downgrade to Shared")
	}
}

func TestBarrierCountAndGenAddrs(t *testing.T) {
	in := workload.Instr{Kind: workload.OpBarrier, Addr: mem.SyncAddr(256), N: 4}
	if barrierCount(in) != mem.SyncAddr(257) {
		t.Fatal("barrier counter address wrong")
	}
	if barrierGen(in) != mem.SyncAddr(258) {
		t.Fatal("barrier generation address wrong")
	}
}

func TestFetcherCheckpointRestore(t *testing.T) {
	f := newFetcher(buildStream(func(b *workload.Builder) {
		b.Compute(10)
		b.Load(mem.HeapAddr(0))
	}))
	cp := f.checkpoint()
	f.pos = 1
	f.computeLeft = 3
	f.barriersDone = 2
	f.barPhase = 1
	f.restore(cp)
	if f.pos != 0 || f.computeLeft != 0 || f.barriersDone != 0 || f.barPhase != 0 {
		t.Fatal("restore did not rewind all interpreter state")
	}
}

func TestBulkProcIO(t *testing.T) {
	fe := newFakeEnv()
	ins := buildStream(func(b *workload.Builder) {
		b.Store(mem.HeapAddr(0))
		b.Compute(50)
		b.IO(500)
		b.Compute(50)
	})
	p := NewBulkProc(0, fe.env, DefaultParams(), DefaultOpts(), ins)
	var ioCommitSeen bool
	p.OnCommit = func(ch *chunk.Chunk) {
		if ch.WSet.Len() == 0 && ch.RSet.Len() == 0 && ch.Executed == 1 {
			ioCommitSeen = true
		}
	}
	p.Start()
	fe.eng.Run(func() bool { return p.Finished() })
	if !p.Finished() {
		t.Fatal("did not finish with an I/O op in the stream")
	}
	if !ioCommitSeen {
		t.Error("I/O did not commit as its own empty-signature chunk")
	}
	// The pre-I/O chunk must have committed before the device latency was
	// paid: total time ≥ 500 cycles.
	if fe.eng.Now() < 500 {
		t.Fatalf("finished at %d cycles; device latency not charged", fe.eng.Now())
	}
}

func TestConvProcIO(t *testing.T) {
	ins := buildStream(func(b *workload.Builder) {
		b.Store(mem.HeapAddr(0))
		b.IO(500)
		b.Compute(20)
	})
	for _, m := range []Model{SC, RC} {
		fe, _ := runConv(t, m, ins)
		if fe.eng.Now() < 500 {
			t.Errorf("%v: finished at %d cycles; device latency not charged", m, fe.eng.Now())
		}
	}
}

package proc

import (
	"fmt"

	"bulksc/internal/cache"
	"bulksc/internal/directory"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
	"bulksc/internal/workload"
)

// Model selects the conventional consistency implementation.
type Model int

const (
	// SC is sequential consistency with hardware prefetching for reads
	// and exclusive prefetching for writes [Gharachorloo et al. 91], the
	// paper's SC baseline: memory operations complete one at a time, but
	// upcoming lines are prefetched into the cache so that most complete
	// quickly.
	SC Model = iota
	// RC is release consistency with speculative execution across fences
	// and exclusive prefetching for writes: loads perform at dispatch,
	// stores drain from a store buffer, fences impose no stalls.
	RC
	// SCpp is SC++ [Gniady et al. 99]: RC-like speculative execution with
	// a Speculative History Queue; an external invalidation that hits a
	// speculatively-performed access rolls the processor back.
	SCpp
)

func (m Model) String() string {
	return [...]string{"SC", "RC", "SC++"}[m]
}

// scSerial is the retirement serialization cost per memory operation under
// SC: with read/exclusive prefetching, a prefetched operation still
// occupies the ordering point for about a cycle.
const scSerial sim.Time = 1

// ConvProc is a conventional processor running one of the baseline models.
type ConvProc struct {
	//lint:poolsafe stable identity fixed at construction
	id int
	//lint:poolsafe immutable machine-lifetime wiring fixed at construction
	env   *Env
	par   Params
	model Model
	l1    *cache.L1

	f        fetcher
	dispatch uint64
	storeSeq uint64

	// OnAccess, when set, observes every architectural memory access at
	// its perform instant — the recording hook of the SC-witness checker
	// (internal/sccheck). po is the per-processor program-order index
	// assigned at dispatch; fwd marks a load served from the processor's
	// own store buffer.
	OnAccess func(po uint64, store bool, a mem.Addr, v uint64, fwd bool)
	// poSeq numbers memory operations in program order for OnAccess.
	poSeq uint64

	// inflight holds the outstanding line fetches, at most par.MSHRs (a
	// handful) at a time — a linear scan beats the map it replaced.
	inflight []*convReq
	// reqFree recycles fetch-request records; each keeps its bound arrival
	// callback, so a steady-state miss allocates nothing. Safe across runs:
	// freeReq empties the waiters and newReq overwrites the line at reuse.
	//lint:poolsafe recycled records are fully reinitialized at reuse
	reqFree []*convReq
	// misses is a head-indexed FIFO: completed entries advance missHead
	// instead of reslicing, and the storage is reset in place once drained,
	// so the backing array is reused for the whole run.
	misses   []missEntry
	missHead int

	// Store buffer (RC/SC++): head-indexed FIFO of pending stores; values
	// forward to younger loads.
	storeQ    []convStore
	sqHead    int
	draining  bool
	storeFwd  map[mem.Addr]uint64
	fwdCounts map[mem.Addr]int

	// SC++ speculative window: line → last access index.
	specLines map[mem.Line]uint64

	scheduled bool
	finished  bool
	doneAt    sim.Time
	// serialBusy guards the asynchronous serialized operations (SC memory
	// chain, barrier blocks): while one is in flight, stray kicks from
	// store drains or miss completions must not re-dispatch the same
	// instruction.
	serialBusy bool

	// Bound continuations, captured once at construction. Method values
	// (p.step, p.performSerial, …) allocate a closure at every use; these
	// fields make the hot dispatch/perform/drain events allocation-free.
	//lint:poolsafe bound method values captured once at construction
	stepFn, performSerialFn, drainPerformFn, drainNextFn, kickFn func()
}

type convStore struct {
	addr mem.Addr
	val  uint64
	po   uint64 // program-order index, assigned at dispatch
}

// convReq is one outstanding line fetch of a conventional processor. It is
// pooled: the record and its bound arrival callback are reused across
// misses, and the waiter slice keeps its capacity.
type convReq struct {
	p        *ConvProc
	l        mem.Line
	waiters  []convWaiter
	arriveFn func(stateHint int)
}

// convWaiter is one party waiting on a line fill: either a long-lived
// continuation fn, or (fn == nil) a speculative-load miss identified by its
// dispatch index, completed inline without a per-miss closure.
type convWaiter struct {
	fn  func()
	idx uint64
}

// NewConvProc builds a conventional processor over stream ins.
func NewConvProc(id int, env *Env, par Params, model Model, ins []workload.Instr) *ConvProc {
	p := &ConvProc{
		id:        id,
		env:       env,
		par:       par,
		model:     model,
		l1:        cache.NewL1(256, 4),
		f:         newFetcher(ins),
		inflight:  make([]*convReq, 0, par.MSHRs),
		storeFwd:  make(map[mem.Addr]uint64),
		fwdCounts: make(map[mem.Addr]int),
		specLines: make(map[mem.Line]uint64),
	}
	p.stepFn = p.step
	p.performSerialFn = p.performSerial
	p.drainPerformFn = p.drainPerform
	p.drainNextFn = p.drainNext
	p.kickFn = p.kick
	return p
}

// Reset returns the processor to its just-constructed state over a new
// instruction stream (possibly under a different model), retaining the
// construction-time storage: the L1 tag arrays (scrubbed in place), the
// map buckets, the FIFO backing arrays and the fetch-request pool.
func (p *ConvProc) Reset(ins []workload.Instr, par Params, model Model) {
	p.par = par
	p.model = model
	p.l1.Reset()
	p.f = newFetcher(ins)
	p.dispatch = 0
	p.storeSeq = 0
	p.OnAccess = nil
	p.poSeq = 0
	clear(p.inflight)
	p.inflight = p.inflight[:0]
	p.misses = p.misses[:0]
	p.missHead = 0
	p.storeQ = p.storeQ[:0]
	p.sqHead = 0
	p.draining = false
	clear(p.storeFwd)
	clear(p.fwdCounts)
	clear(p.specLines)
	p.scheduled = false
	p.finished = false
	p.doneAt = 0
	p.serialBusy = false
}

// Start schedules the first event.
func (p *ConvProc) Start() { p.kick() }

// DebugState summarizes the processor's interpreter position, for test
// diagnostics on apparent deadlocks.
func (p *ConvProc) DebugState() string {
	return fmt.Sprintf("conv{finished=%v pos=%d/%d phase=%d barriers=%d storeQ=%d inflight=%d scheduled=%v}",
		p.finished, p.f.pos, len(p.f.ins), p.f.barPhase, p.f.barriersDone, p.storeQLen(), len(p.inflight), p.scheduled)
}

// Finished reports stream completion.
func (p *ConvProc) Finished() bool { return p.finished }

// DoneAt returns the completion cycle.
func (p *ConvProc) DoneAt() sim.Time { return p.doneAt }

func (p *ConvProc) kick() {
	if p.scheduled || p.finished {
		return
	}
	p.scheduled = true
	p.env.Eng.After(0, p.stepFn)
}

func (p *ConvProc) kickAt(d sim.Time) {
	if p.scheduled || p.finished {
		return
	}
	if d < 1 {
		d = 1
	}
	p.scheduled = true
	p.env.Eng.After(d, p.stepFn)
}

func (p *ConvProc) finish() {
	p.finished = true
	p.doneAt = p.env.Eng.Now()
}

// step is the dispatch event. SC serializes memory operations; RC/SC++
// overlap them.
func (p *ConvProc) step() {
	p.scheduled = false
	if p.finished || p.serialBusy {
		return
	}
	if p.model == SC {
		p.scStep()
		return
	}
	p.rcStep()
}

// resumeSerial ends an asynchronous serialized operation (begun by setting
// serialBusy) and schedules the next dispatch event after d cycles.
func (p *ConvProc) resumeSerial(d sim.Time) {
	p.serialBusy = false
	p.kickAt(d)
}

// ---------------------------------------------------------------------------
// Shared fetch machinery
// ---------------------------------------------------------------------------

func (p *ConvProc) newReq(l mem.Line) *convReq {
	var r *convReq
	if n := len(p.reqFree); n > 0 {
		r = p.reqFree[n-1]
		p.reqFree[n-1] = nil
		p.reqFree = p.reqFree[:n-1]
	} else {
		r = &convReq{p: p}
		r.arriveFn = r.arrive
	}
	r.l = l
	return r
}

func (p *ConvProc) freeReq(r *convReq) {
	for i := range r.waiters {
		r.waiters[i] = convWaiter{}
	}
	r.waiters = r.waiters[:0]
	p.reqFree = append(p.reqFree, r)
}

// arrive is the fill-completion continuation for one pooled request; it is
// bound once per record and handed to Env.ReadLine on every reuse.
func (r *convReq) arrive(stateHint int) {
	p, l := r.p, r.l
	p.dropReq(r)
	victim, ok := p.l1.Insert(l, cache.LineState(stateHint))
	if !ok {
		panic("conv proc: insert failed (no pinning in conventional mode)")
	}
	if victim.Valid() && victim.State == cache.Dirty {
		p.env.St.AddTraffic(stats.CatData, network.DataBytes)
		p.env.WritebackLine(p.id, victim.Line, true)
	}
	for i := range r.waiters {
		w := r.waiters[i]
		if w.fn != nil {
			w.fn()
		} else {
			p.missComplete(w.idx)
			p.kick()
		}
	}
	p.freeReq(r)
}

// findReq returns the outstanding fetch for line l, or nil (linear scan;
// the MSHR set is bounded by par.MSHRs entries).
//
//sim:hotpath
func (p *ConvProc) findReq(l mem.Line) *convReq {
	for _, r := range p.inflight {
		if r.l == l {
			return r
		}
	}
	return nil
}

// dropReq removes r from the MSHR set (swap-remove; nothing walks the
// set, so order is free).
//
//sim:hotpath
func (p *ConvProc) dropReq(r *convReq) {
	for i, q := range p.inflight {
		if q == r {
			n := len(p.inflight) - 1
			p.inflight[i] = p.inflight[n]
			p.inflight[n] = nil
			p.inflight = p.inflight[:n]
			return
		}
	}
}

func (p *ConvProc) fetch(l mem.Line, excl bool, done func()) {
	if req := p.findReq(l); req != nil {
		if done != nil {
			req.waiters = append(req.waiters, convWaiter{fn: done})
		}
		return
	}
	req := p.newReq(l)
	if done != nil {
		req.waiters = append(req.waiters, convWaiter{fn: done})
	}
	p.inflight = append(p.inflight, req)
	p.env.ReadLine(p.id, l, excl, req.arriveFn)
}

// fetchLoadMiss fetches l on behalf of the speculative load at dispatch
// index idx; completion marks the miss entry done and kicks dispatch,
// without a per-miss closure.
func (p *ConvProc) fetchLoadMiss(l mem.Line, idx uint64) {
	if req := p.findReq(l); req != nil {
		req.waiters = append(req.waiters, convWaiter{idx: idx})
		return
	}
	req := p.newReq(l)
	req.waiters = append(req.waiters, convWaiter{idx: idx})
	p.inflight = append(p.inflight, req)
	p.env.ReadLine(p.id, l, false, req.arriveFn)
}

// missComplete marks the oldest outstanding miss with dispatch index idx
// done.
func (p *ConvProc) missComplete(idx uint64) {
	for i := p.missHead; i < len(p.misses); i++ {
		if p.misses[i].idx == idx && !p.misses[i].done {
			p.misses[i].done = true
			return
		}
	}
}

// prefetchAhead scans the upcoming stream and issues read/exclusive
// prefetches for the next few memory operations — the SC baseline's
// optimization (reads) and the exclusive-prefetch optimization shared by
// SC and RC.
func (p *ConvProc) prefetchAhead(k int) {
	pos := p.f.pos
	for n := 0; n < k && pos < len(p.f.ins); pos++ {
		in := p.f.ins[pos]
		var l mem.Line
		var excl bool
		switch in.Kind {
		case workload.OpLoad:
			l, excl = in.Addr.LineOf(), false
		case workload.OpStore:
			l, excl = in.Addr.LineOf(), true
		case workload.OpAcquire, workload.OpRelease:
			l, excl = in.Addr.LineOf(), true
		case workload.OpEnd:
			return
		default:
			continue
		}
		n++
		if w := p.l1.Probe(l); w != nil {
			if !excl || w.State == cache.Dirty || w.State == cache.Excl {
				continue
			}
		}
		if p.findReq(l) != nil {
			continue
		}
		if len(p.inflight) >= p.par.MSHRs {
			return
		}
		p.env.St.Prefetches++
		p.fetch(l, excl, nil)
	}
}

// owner reports whether the cache can complete a store locally.
func (p *ConvProc) owner(l mem.Line) bool {
	w := p.l1.Probe(l)
	return w != nil && (w.State == cache.Dirty || w.State == cache.Excl)
}

func (p *ConvProc) token() uint64 {
	p.storeSeq++
	return uint64(p.id+1)<<40 | p.storeSeq
}

// noteAccess records a line in the SC++ speculative window.
func (p *ConvProc) noteAccess(l mem.Line) {
	if p.model == SCpp {
		p.specLines[l] = p.dispatch
	}
}

// readValue reads addr with store-buffer forwarding, reporting whether the
// value was forwarded from the processor's own buffer.
func (p *ConvProc) readValue(a mem.Addr) (uint64, bool) {
	if v, ok := p.storeFwd[a.Align()]; ok {
		return v, true
	}
	return p.env.Mem.Load(a), false
}

// nextPO returns the next program-order index for OnAccess recording.
func (p *ConvProc) nextPO() uint64 {
	p.poSeq++
	return p.poSeq
}

// recordAccess reports one architectural access to the witness hook.
func (p *ConvProc) recordAccess(po uint64, store bool, a mem.Addr, v uint64, fwd bool) {
	if p.OnAccess != nil {
		p.OnAccess(po, store, a, v, fwd)
	}
}

// ---------------------------------------------------------------------------
// SC: serialized interpretation with prefetching
// ---------------------------------------------------------------------------

func (p *ConvProc) scStep() {
	in := p.f.current()
	if in.Kind == workload.OpEnd {
		p.finish()
		return
	}
	switch in.Kind {
	case workload.OpCompute:
		n := p.f.computeLeft
		if n == 0 {
			n = in.N
		}
		p.f.computeLeft = 0
		p.f.pos++
		p.dispatch += uint64(n)
		p.env.St.CommittedInstrs += uint64(n)
		p.prefetchAhead(p.par.MSHRs)
		p.kickAt(sim.Time(n) / sim.Time(p.par.IssueWidth))
	case workload.OpLoad:
		p.serialBusy = true
		p.scAccess(in.Addr, false, p.performSerialFn)
	case workload.OpStore, workload.OpRelease, workload.OpAcquire:
		p.serialBusy = true
		p.scAccess(in.Addr, true, p.performSerialFn)
	case workload.OpBarrier:
		p.serialBusy = true
		p.convBarrier()
	case workload.OpIO:
		// Uncached operation: fully serialized at the device latency.
		p.f.pos++
		p.retire(1)
		p.kickAt(sim.Time(in.N))
	default:
		panic(fmt.Sprintf("conv proc %d: op %v", p.id, in.Kind))
	}
}

// performSerial completes the serialized memory operation at the current
// interpreter position. It is the single bound continuation behind every
// SC access and barrier micro-step: serialBusy guarantees the interpreter
// has not advanced since dispatch, so the instruction (and barrier phase)
// is re-read here instead of being captured in a per-operation closure.
func (p *ConvProc) performSerial() {
	in := p.f.current()
	switch in.Kind {
	case workload.OpLoad:
		v := p.env.Mem.Load(in.Addr) // architectural read at this instant
		p.recordAccess(p.nextPO(), false, in.Addr, v, false)
		p.f.pos++
		p.retire(1)
		p.resumeSerial(scSerial)
	case workload.OpStore:
		v := p.token()
		p.env.Mem.Store(in.Addr, v)
		p.recordAccess(p.nextPO(), true, in.Addr, v, false)
		p.markDirty(in.Addr.LineOf())
		p.f.pos++
		p.retire(1)
		p.resumeSerial(scSerial)
	case workload.OpRelease:
		p.env.Mem.Store(in.Addr, 0)
		p.recordAccess(p.nextPO(), true, in.Addr, 0, false)
		p.markDirty(in.Addr.LineOf())
		p.f.pos++
		p.retire(1)
		p.resumeSerial(scSerial)
	case workload.OpAcquire:
		v := p.env.Mem.Load(in.Addr)
		p.recordAccess(p.nextPO(), false, in.Addr, v, false)
		if v == 0 {
			p.env.Mem.Store(in.Addr, 1)
			p.recordAccess(p.nextPO(), true, in.Addr, 1, false)
			p.markDirty(in.Addr.LineOf())
			p.f.pos++
			p.retire(2)
			p.resumeSerial(scSerial)
			return
		}
		p.retire(2)
		p.env.St.SpinInstrs++
		p.resumeSerial(p.par.SpinBackoff)
	case workload.OpBarrier:
		if p.f.barPhase == 0 {
			p.barArrive(in)
		} else {
			p.barWait(in)
		}
	default:
		panic(fmt.Sprintf("conv proc %d: perform on op %v", p.id, in.Kind))
	}
}

// scAccess brings the line in (counting hit/miss) and runs perform when
// the operation may complete.
func (p *ConvProc) scAccess(a mem.Addr, excl bool, perform func()) {
	l := a.LineOf()
	p.noteAccess(l)
	w := p.l1.Access(l)
	if w != nil && (!excl || w.State == cache.Dirty || w.State == cache.Excl) {
		p.env.St.L1Hits++
		p.prefetchAhead(p.par.MSHRs)
		p.env.Eng.After(p.par.L1Hit, perform)
		return
	}
	p.env.St.L1Misses++
	p.prefetchAhead(p.par.MSHRs)
	p.fetch(l, excl, perform)
}

func (p *ConvProc) markDirty(l mem.Line) {
	if w := p.l1.Probe(l); w != nil {
		w.State = cache.Dirty
	}
}

func (p *ConvProc) retire(n int) {
	p.dispatch += uint64(n)
	p.env.St.CommittedInstrs += uint64(n)
}

// convBarrier interprets the centralized barrier for the conventional
// models. The lock-protected arrival block executes atomically at its
// perform event (the lock is therefore never observed held); waiters spin
// on the generation flag. Callers set serialBusy first; the perform
// micro-steps (barArrive, barWait) clear it through resumeSerial.
func (p *ConvProc) convBarrier() {
	in := p.f.current()
	if p.f.barPhase == 0 {
		p.scAccess(barrierCount(in), true, p.performSerialFn)
		return
	}
	p.scAccess(barrierGen(in), false, p.performSerialFn)
}

// barArrive is the barrier arrival block, run at the perform event of the
// counter-line access while barPhase is still 0.
func (p *ConvProc) barArrive(in workload.Instr) {
	target := p.f.barrierTarget()
	count, gen := barrierCount(in), barrierGen(in)
	c := p.env.Mem.Load(count)
	p.recordAccess(p.nextPO(), false, count, c, false)
	if c+1 >= uint64(in.N) {
		p.env.Mem.Store(count, 0)
		p.recordAccess(p.nextPO(), true, count, 0, false)
		p.env.Mem.Store(gen, target)
		p.recordAccess(p.nextPO(), true, gen, target, false)
		p.markDirty(gen.LineOf())
	} else {
		p.env.Mem.Store(count, c+1)
		p.recordAccess(p.nextPO(), true, count, c+1, false)
	}
	p.markDirty(count.LineOf())
	p.noteAccess(count.LineOf())
	p.retire(6)
	p.f.barPhase = 1
	p.resumeSerial(scSerial)
}

// barWait is one generation-flag spin iteration, run at the perform event
// of the flag-line access while barPhase is 1.
func (p *ConvProc) barWait(in workload.Instr) {
	target := p.f.barrierTarget()
	gen := barrierGen(in)
	g := p.env.Mem.Load(gen)
	p.recordAccess(p.nextPO(), false, gen, g, false)
	p.noteAccess(gen.LineOf())
	p.retire(2)
	if g < target {
		p.env.St.SpinInstrs++
		p.resumeSerial(p.par.SpinBackoff)
		return
	}
	p.f.pos++
	p.f.barriersDone++
	p.f.barPhase = 0
	p.resumeSerial(scSerial)
}

// ---------------------------------------------------------------------------
// RC / SC++: overlapped dispatch
// ---------------------------------------------------------------------------

func (p *ConvProc) rcStep() {
	consumed := 0
	for consumed < batchInstrs {
		if len(p.inflight) >= p.par.MSHRs {
			return // fetch completion kicks
		}
		if p.robFullConv() {
			return
		}
		if p.storeQLen() >= p.par.LSQ {
			return // store drain kicks
		}
		// One indexed load serves both the end-of-stream test and the
		// dispatch switch (done() is current().Kind == OpEnd).
		in := p.f.current()
		if in.Kind == workload.OpEnd {
			if p.storeQLen() > 0 {
				return // drain completes first
			}
			p.finish()
			return
		}
		switch in.Kind {
		case workload.OpCompute:
			n := p.f.computeLeft
			if n == 0 {
				n = in.N
			}
			take := uint32(batchInstrs - consumed)
			if take > n {
				take = n
			}
			n -= take
			if n == 0 {
				p.f.computeLeft = 0
				p.f.pos++
			} else {
				p.f.computeLeft = n
			}
			p.retire(int(take))
			consumed += int(take)
		case workload.OpLoad:
			p.rcLoad(in.Addr)
			p.f.pos++
			consumed++
		case workload.OpStore:
			p.rcStore(in.Addr, p.token())
			p.f.pos++
			consumed++
		case workload.OpRelease:
			// Release: a store; RC speculates across the fence.
			p.rcStore(in.Addr, 0)
			p.f.pos++
			consumed++
		case workload.OpAcquire:
			// Atomic RMW: wait for the store buffer to drain, then
			// perform atomically through the serial path.
			if p.storeQLen() > 0 {
				return // drain completion kicks
			}
			done := p.rcAcquire(in.Addr)
			consumed += 2
			if !done {
				p.yield(p.par.SpinBackoff)
				return
			}
		case workload.OpBarrier:
			// Barriers stall dispatch; the async barrier machinery
			// re-kicks the processor.
			if p.storeQLen() > 0 {
				return // drain first; completion kicks
			}
			p.serialBusy = true
			p.convBarrier()
			return
		case workload.OpIO:
			// Uncached: drain the store buffer and outstanding loads,
			// then pay the device latency.
			if p.storeQLen() > 0 || p.missLen() > 0 {
				p.pruneMisses()
				if p.storeQLen() > 0 || p.missLen() > 0 {
					return // completions kick
				}
			}
			p.f.pos++
			p.retire(1)
			p.yield(sim.Time(in.N))
			return
		default:
			panic(fmt.Sprintf("conv proc %d: op %v", p.id, in.Kind))
		}
	}
	p.yield(sim.Time(consumed) / sim.Time(p.par.IssueWidth))
}

func (p *ConvProc) yield(d sim.Time) { p.kickAt(d) }

// storeQLen and missLen are the logical FIFO lengths under head indexing.
func (p *ConvProc) storeQLen() int { return len(p.storeQ) - p.sqHead }
func (p *ConvProc) missLen() int   { return len(p.misses) - p.missHead }

func (p *ConvProc) robFullConv() bool {
	p.pruneMisses()
	return p.missLen() > 0 && p.dispatch-p.misses[p.missHead].idx >= uint64(p.par.ROB)
}

// pruneMisses advances the head past completed entries; once the FIFO
// drains, the backing array is reset in place for reuse.
func (p *ConvProc) pruneMisses() {
	for p.missHead < len(p.misses) && p.misses[p.missHead].done {
		p.missHead++
	}
	if p.missHead == len(p.misses) {
		p.misses = p.misses[:0]
		p.missHead = 0
	}
}

// rcLoad performs a load at dispatch (speculative loads; SC++'s SHiQ and
// RC's weak ordering both allow this) and tracks the miss for ROB
// occupancy.
func (p *ConvProc) rcLoad(a mem.Addr) {
	p.retire(1)
	l := a.LineOf()
	p.noteAccess(l)
	v, fwd := p.readValue(a) // architectural read at this instant
	p.recordAccess(p.nextPO(), false, a, v, fwd)
	if p.l1.Access(l) != nil {
		p.env.St.L1Hits++
		return
	}
	p.env.St.L1Misses++
	idx := p.dispatch
	p.misses = append(p.misses, missEntry{idx: idx})
	p.fetchLoadMiss(l, idx)
}

// rcStore buffers a store; the buffer drains in order, acquiring exclusive
// ownership per line (with exclusive prefetch, usually already held).
func (p *ConvProc) rcStore(a mem.Addr, val uint64) {
	p.retire(1)
	p.noteAccess(a.LineOf())
	p.storeQ = append(p.storeQ, convStore{addr: a, val: val, po: p.nextPO()})
	p.storeFwd[a.Align()] = val
	p.fwdCounts[a.Align()]++
	p.prefetchAhead(2)
	p.drainStores()
}

func (p *ConvProc) drainStores() {
	if p.draining || p.storeQLen() == 0 {
		return
	}
	p.draining = true
	l := p.storeQ[p.sqHead].addr.LineOf()
	if p.owner(l) {
		p.env.St.L1Hits++
		p.env.Eng.After(p.par.L1Hit, p.drainPerformFn)
		return
	}
	p.env.St.L1Misses++
	p.fetch(l, true, p.drainPerformFn)
}

// drainPerform commits the store at the buffer head. The head is stable
// between drainStores and this event: draining guards re-entry and only
// this method pops, so the entry is re-read here instead of captured.
func (p *ConvProc) drainPerform() {
	s := p.storeQ[p.sqHead]
	p.env.Mem.Store(s.addr, s.val)
	// Reported with the program-order index assigned at dispatch: under
	// RC the drain performs after younger loads, which the witness checker
	// sees as the store→load relaxation.
	p.recordAccess(s.po, true, s.addr, s.val, false)
	p.markDirty(s.addr.LineOf())
	p.sqHead++
	if p.sqHead == len(p.storeQ) {
		p.storeQ = p.storeQ[:0]
		p.sqHead = 0
	}
	a := s.addr.Align()
	p.fwdCounts[a]--
	if p.fwdCounts[a] == 0 {
		delete(p.storeFwd, a)
		delete(p.fwdCounts, a)
	}
	p.draining = false
	p.env.Eng.After(1, p.drainNextFn)
}

func (p *ConvProc) drainNext() {
	p.drainStores()
	p.kick()
}

// rcAcquire performs an atomic test-and-set with the store buffer empty.
// Returns success.
func (p *ConvProc) rcAcquire(lock mem.Addr) bool {
	p.retire(2)
	p.noteAccess(lock.LineOf())
	v := p.env.Mem.Load(lock)
	p.recordAccess(p.nextPO(), false, lock, v, false)
	if v != 0 {
		p.env.St.SpinInstrs++
		return false
	}
	p.env.Mem.Store(lock, 1)
	p.recordAccess(p.nextPO(), true, lock, 1, false)
	p.markDirty(lock.LineOf())
	if !p.owner(lock.LineOf()) {
		// Pay the ownership latency by pausing dispatch.
		p.env.St.L1Misses++
		p.fetch(lock.LineOf(), true, p.kickFn)
	}
	p.f.pos++
	return true
}

// ---------------------------------------------------------------------------
// directory.CachePort
// ---------------------------------------------------------------------------

// ApplyInvalidate removes the line; under SC++ an invalidation hitting the
// speculative window forces a rollback (timing and statistics; the
// re-execution reads the same sequentially-consistent values).
func (p *ConvProc) ApplyInvalidate(l mem.Line) {
	p.l1.Invalidate(l)
	if p.model != SCpp {
		return
	}
	if idx, ok := p.specLines[l]; ok && p.dispatch-idx < uint64(p.par.SHiQ) {
		p.env.St.SHiQViolations++
		wasted := p.dispatch - idx
		if wasted > uint64(p.par.SHiQ) {
			wasted = uint64(p.par.SHiQ)
		}
		p.env.St.SquashedInstrs += wasted
		delete(p.specLines, l)
		// Rollback penalty: refill plus re-execution time.
		p.kickAt(p.par.SquashPenalty + sim.Time(wasted)/sim.Time(p.par.IssueWidth))
	}
}

// ApplyCommit should never reach a conventional processor.
func (p *ConvProc) ApplyCommit(c *directory.Commit) {
	panic("conv proc: received a BulkSC commit")
}

// SnoopDirty supplies a dirty line and downgrades it.
func (p *ConvProc) SnoopDirty(l mem.Line) (supplied, holds bool) {
	w := p.l1.Probe(l)
	if w == nil {
		return false, false
	}
	if w.State == cache.Dirty {
		w.State = cache.Shared
		return true, true
	}
	return false, true
}

// SnoopInvalidate supplies and invalidates.
func (p *ConvProc) SnoopInvalidate(l mem.Line) bool {
	had, _ := p.SnoopDirty(l)
	p.ApplyInvalidate(l)
	return had
}

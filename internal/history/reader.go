package history

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// maxLineBytes bounds one NDJSON record; a 4 MB line comfortably holds a
// chunk of tens of thousands of logged accesses.
const maxLineBytes = 4 << 20

// Read parses an NDJSON history from r, validating structure as it goes.
// Blank lines are skipped. A header, when present, must be the first
// record; its version must be in [1, Version] and its format, when
// non-empty, must be "bulksc-history". Histories with no header get
// defaults (version 1, procs inferred), which is what lets traces authored
// by other systems check without ceremony.
func Read(r io.Reader) (*History, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	h := &History{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		// Peek the record kind without committing to a shape.
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("history: line %d: %w", line, err)
		}
		switch probe.Kind {
		case KindHeader:
			if sawHeader {
				return nil, fmt.Errorf("history: line %d: duplicate header", line)
			}
			if len(h.Chunks) > 0 || len(h.Accesses) > 0 {
				return nil, fmt.Errorf("history: line %d: header after operation records", line)
			}
			if err := json.Unmarshal(raw, &h.Header); err != nil {
				return nil, fmt.Errorf("history: line %d: header: %w", line, err)
			}
			if h.Header.Version < 1 || h.Header.Version > Version {
				return nil, fmt.Errorf("history: line %d: unsupported version %d (this reader handles 1..%d)",
					line, h.Header.Version, Version)
			}
			if h.Header.Format != "" && h.Header.Format != Format {
				return nil, fmt.Errorf("history: line %d: format %q, want %q", line, h.Header.Format, Format)
			}
			sawHeader = true
		case KindChunk:
			var c ChunkRec
			if err := json.Unmarshal(raw, &c); err != nil {
				return nil, fmt.Errorf("history: line %d: chunk: %w", line, err)
			}
			h.Chunks = append(h.Chunks, c)
		case KindAccess:
			var a AccessRec
			if err := json.Unmarshal(raw, &a); err != nil {
				return nil, fmt.Errorf("history: line %d: access: %w", line, err)
			}
			h.Accesses = append(h.Accesses, a)
		case "":
			return nil, fmt.Errorf("history: line %d: record has no \"kind\" field", line)
		default:
			return nil, fmt.Errorf("history: line %d: unknown record kind %q", line, probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if !sawHeader {
		h.Header = Header{Kind: KindHeader, Version: 1}
	}
	if len(h.Chunks) == 0 && len(h.Accesses) == 0 {
		return nil, fmt.Errorf("history: no operation records")
	}
	if err := h.validate(); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	return h, nil
}

package gk

import (
	"errors"
	"strings"
	"testing"

	"bulksc/internal/history"
)

// ck builds a chunk record tersely: ops alternate (store, addr, val) triples.
func ck(proc int, seq, order uint64, ops ...history.Op) history.ChunkRec {
	return history.ChunkRec{Kind: history.KindChunk, Proc: proc, Seq: seq, Order: order, Ops: ops}
}

func st(addr, val uint64) history.Op { return history.Op{Store: true, Addr: addr, Val: val} }
func ld(addr, val uint64) history.Op { return history.Op{Addr: addr, Val: val} }

func goodChunkHistory() *history.History {
	return &history.History{
		Chunks: []history.ChunkRec{
			ck(0, 1, 1, st(64, 7), ld(64, 7)), // forwarding within the chunk
			ck(1, 1, 2, ld(64, 7), ld(64, 7)), // atomic re-read
			ck(0, 2, 3, ld(64, 7), st(72, 9)), // sees proc 1's view, writes elsewhere
			ck(1, 2, 5, ld(72, 9), ld(0, 0)),  // order gap (4 squashed) is legal
		},
	}
}

func TestCheckCleanChunks(t *testing.T) {
	r := Check(goodChunkHistory(), Options{})
	if !r.Ok() {
		t.Fatalf("clean history flagged: %v", r.Strings())
	}
	if r.Chunks() != 4 || r.Accesses() != 8 {
		t.Fatalf("counts: chunks=%d accesses=%d", r.Chunks(), r.Accesses())
	}
	if r.Strings() != nil {
		t.Fatalf("clean report should render no strings")
	}
}

func wantKind(t *testing.T, h *history.History, k Kind) *Report {
	t.Helper()
	r := Check(h, Options{})
	if r.Ok() {
		t.Fatalf("mutation not caught, expected %v", k)
	}
	vs := r.Violations()
	for _, v := range vs {
		if v.Kind == k {
			return r
		}
	}
	t.Fatalf("expected a %v violation, got %v", k, r.Strings())
	return nil
}

func TestMutationCorruptedValue(t *testing.T) {
	h := goodChunkHistory()
	h.Chunks[1].Ops[0].Val = 999 // load observes a value nobody stored
	wantKind(t, h, KindCoherence)
}

func TestMutationSwappedCommitOrder(t *testing.T) {
	h := goodChunkHistory()
	h.Chunks[1].Order, h.Chunks[2].Order = h.Chunks[2].Order, h.Chunks[1].Order
	wantKind(t, h, KindTotalOrder)
}

func TestMutationPerProcSeqRegression(t *testing.T) {
	h := goodChunkHistory()
	h.Chunks[2].Seq = 1 // proc 0 commits chunk #1 twice
	wantKind(t, h, KindTotalOrder)
}

func TestMutationBrokenAtomicity(t *testing.T) {
	h := goodChunkHistory()
	h.Chunks[1].Ops[1].Val = 3 // second same-chunk read of 64 diverges
	wantKind(t, h, KindAtomicity)
}

func TestMutationBrokenForwarding(t *testing.T) {
	h := goodChunkHistory()
	h.Chunks[0].Ops[1].Val = 3 // load after own store sees a stale value
	wantKind(t, h, KindForwarding)
}

func TestCheckAccessHistory(t *testing.T) {
	h := &history.History{Accesses: []history.AccessRec{
		{Proc: 0, PO: 1, Store: true, Addr: 64, Val: 1},
		{Proc: 0, PO: 2, Store: false, Addr: 8, Val: 11, Fwd: true}, // fwd loads are exempt
		{Proc: 1, PO: 1, Store: false, Addr: 64, Val: 1},
		{Proc: 1, PO: 2, Store: true, Addr: 64, Val: 2},
		{Proc: 0, PO: 3, Store: false, Addr: 64, Val: 2},
	}}
	if r := Check(h, Options{}); !r.Ok() {
		t.Fatalf("clean access history flagged: %v", r.Strings())
	}

	h.Accesses[4].Val = 1 // stale read past proc 1's store
	wantKind(t, h, KindCoherence)

	h.Accesses[4].Val = 2
	h.Accesses[4].PO = 1 // proc 0 performs out of program order
	wantKind(t, h, KindProgramOrder)
}

func TestCapMarker(t *testing.T) {
	h := &history.History{}
	for i := 0; i < 10; i++ {
		// Every chunk claims order 1: 9 total-order violations.
		h.Chunks = append(h.Chunks, ck(0, uint64(i+1), 1))
	}
	r := Check(h, Options{MaxViolations: 3})
	// Each chunk after the first trips both the global and the per-proc
	// order obligations (seqs do increase): 2 × 9 = 18 total.
	if r.Total() != 18 {
		t.Fatalf("Total() = %d, want 18", r.Total())
	}
	if got := len(r.Violations()); got != 3 {
		t.Fatalf("retained %d violations, want 3", got)
	}
	s := r.Strings()
	if len(s) != 4 {
		t.Fatalf("Strings() len = %d, want 3 + marker", len(s))
	}
	last := s[len(s)-1]
	if !strings.Contains(last, "more violations") || !strings.Contains(last, "cap reached") {
		t.Fatalf("truncation marker missing: %q", last)
	}
}

func TestReportViolationsIsACopy(t *testing.T) {
	h := goodChunkHistory()
	h.Chunks[1].Ops[0].Val = 999
	r := Check(h, Options{})
	vs := r.Violations()
	vs[0].Detail = "scribbled"
	if r.Violations()[0].Detail == "scribbled" {
		t.Fatal("Violations() aliases the report's internal slice")
	}
}

// --- Search -----------------------------------------------------------------

func TestSearchSerializableAccesses(t *testing.T) {
	// Message passing with both observations: clearly SC.
	h := &history.History{Accesses: []history.AccessRec{
		{Proc: 0, PO: 1, Store: true, Addr: 0, Val: 1},
		{Proc: 0, PO: 2, Store: true, Addr: 8, Val: 1},
		{Proc: 1, PO: 1, Store: false, Addr: 8, Val: 1},
		{Proc: 1, PO: 2, Store: false, Addr: 0, Val: 1},
	}}
	order, err := Search(h, 0)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(order) != 4 {
		t.Fatalf("serialization has %d steps, want 4", len(order))
	}
}

func TestSearchForbiddenSB(t *testing.T) {
	// Store buffering's forbidden outcome r1=r2=0: no SC interleaving.
	h := &history.History{Accesses: []history.AccessRec{
		{Proc: 0, PO: 1, Store: true, Addr: 0, Val: 1},
		{Proc: 0, PO: 2, Store: false, Addr: 8, Val: 0},
		{Proc: 1, PO: 1, Store: true, Addr: 8, Val: 1},
		{Proc: 1, PO: 2, Store: false, Addr: 0, Val: 0},
	}}
	if _, err := Search(h, 0); !errors.Is(err, ErrNotSerializable) {
		t.Fatalf("Search = %v, want ErrNotSerializable", err)
	}
}

func TestSearchChunksIgnoresClaimedOrder(t *testing.T) {
	// The claimed orders are garbage (all zero), but SOME serialization
	// exists; Search must find it while Check rejects the claim.
	h := goodChunkHistory()
	for i := range h.Chunks {
		h.Chunks[i].Order = 0
	}
	if r := Check(h, Options{}); r.Ok() {
		t.Fatal("Check accepted zeroed orders")
	}
	order, err := Search(h, 0)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(order) != 4 {
		t.Fatalf("serialization has %d steps, want 4", len(order))
	}
	// Per-processor steps must respect program order.
	next := map[int]int{}
	for _, s := range order {
		if s.Unit != next[s.Proc] {
			t.Fatalf("step %+v out of program order (want unit %d)", s, next[s.Proc])
		}
		next[s.Proc]++
	}
}

func TestSearchAtomicityMatters(t *testing.T) {
	// Unchunked these reads could straddle the writer; as one atomic
	// chunk observing 0 then (after the writer's chunk) still 0 while a
	// sibling read saw 1, no chunk interleaving works.
	h := &history.History{Chunks: []history.ChunkRec{
		ck(0, 1, 1, ld(0, 0), ld(0, 1)), // re-read diverges inside one chunk
		ck(1, 1, 2, st(0, 1)),
	}}
	if _, err := Search(h, 0); !errors.Is(err, ErrNotSerializable) {
		t.Fatalf("Search = %v, want ErrNotSerializable", err)
	}
}

func TestSearchStateBound(t *testing.T) {
	h := &history.History{Accesses: []history.AccessRec{
		{Proc: 0, PO: 1, Store: true, Addr: 0, Val: 1},
		{Proc: 0, PO: 2, Store: false, Addr: 8, Val: 0},
		{Proc: 1, PO: 1, Store: true, Addr: 8, Val: 1},
		{Proc: 1, PO: 2, Store: false, Addr: 0, Val: 0},
	}}
	if _, err := Search(h, 1); !errors.Is(err, ErrStateBound) {
		t.Fatalf("Search = %v, want ErrStateBound", err)
	}
}

func TestSearchRejectsMixedHistories(t *testing.T) {
	h := &history.History{
		Chunks:   []history.ChunkRec{ck(0, 1, 1, st(0, 1))},
		Accesses: []history.AccessRec{{Proc: 1, PO: 1, Addr: 0, Val: 1}},
	}
	if _, err := Search(h, 0); err == nil {
		t.Fatal("Search accepted a mixed history")
	}
}

// Package gk is the offline sequential-consistency checker over portable
// histories (internal/history), in the tradition of Gibbons & Korach's
// "Testing Shared Memories" (SIAM J. Comput. 1997).
//
// G&K prove that deciding whether an arbitrary history has *some*
// sequentially consistent explanation (VSC) is NP-complete, but that the
// problem becomes tractable when the implementation names its own
// serialization — the "verifying a given total order" variants. This
// package implements both sides:
//
//   - Check verifies a *claimed* witness order: for chunked histories the
//     global commit order the arbiter assigned, for conventional access
//     histories the perform order with per-processor program-order
//     indices. The obligations mirror the online witness checker
//     (internal/sccheck) one for one — total order, chunk atomicity,
//     value coherence, same-chunk forwarding, program-order embedding —
//     so online and offline verdicts are directly comparable (the
//     differential tests in internal/core assert exactly that). Linear
//     time, O(footprint) state.
//
//   - Search decides VSC for histories with NO trusted order, by
//     backtracking over the per-processor frontiers in the style of the
//     G&K algorithm: at each step a processor's next atomic unit (chunk,
//     or single access) is runnable iff every one of its reads is
//     explained by current memory or its own earlier writes; runnable
//     units are explored depth-first with memoization on (frontier,
//     memory) states and an explicit state bound, since the general
//     problem is NP-complete. A history that Check accepts is always
//     Search-serializable (the claimed order is the witness); Search
//     exists for external histories that carry no order claim.
//
// Unlike internal/sccheck — which rides inside the machine and dies with
// the process — this checker consumes serialized NDJSON, so a history can
// be re-examined, shared, or checked against a stronger oracle long after
// the run that produced it (cmd/scchk is the CLI).
package gk

import (
	"fmt"
	"sort"

	"bulksc/internal/history"
)

// Kind classifies a violation by the obligation it breaks. Values mirror
// internal/sccheck's kinds one for one so online/offline findings can be
// compared label-by-label.
type Kind int

const (
	// KindTotalOrder: commit orders not strictly increasing in record
	// order, or a processor's chunk sequence does not embed into the
	// global order.
	KindTotalOrder Kind = iota
	// KindAtomicity: two same-chunk reads of one word, with no
	// intervening same-chunk store, observed different values.
	KindAtomicity
	// KindCoherence: a read observed a value different from the most
	// recent store in the witness order.
	KindCoherence
	// KindForwarding: a load after a same-chunk store to the same word
	// did not observe the buffered value.
	KindForwarding
	// KindProgramOrder: a processor's accesses performed out of program
	// order.
	KindProgramOrder
)

func (k Kind) String() string {
	return [...]string{"total-order", "atomicity", "coherence", "forwarding", "program-order"}[k]
}

// Violation is one discharged-obligation failure.
type Violation struct {
	Kind Kind
	Proc int
	// Order is the claimed commit order (chunks) or the record's arrival
	// index (accesses) at which the violation was detected.
	Order     uint64
	Addr      uint64
	Got, Want uint64
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("gk[%s] proc %d order %d addr %#x got %d want %d: %s",
		v.Kind, v.Proc, v.Order, v.Addr, v.Got, v.Want, v.Detail)
}

// DefaultMaxViolations caps retained violation records; Total keeps
// counting past the cap (matching internal/sccheck).
const DefaultMaxViolations = 20

// Report is the outcome of one offline check.
type Report struct {
	violations []Violation
	total      int
	chunks     int
	accesses   uint64
	max        int
}

// Ok reports whether every obligation held.
func (r *Report) Ok() bool { return r.total == 0 }

// Total counts all violations, including any past the retention cap.
func (r *Report) Total() int { return r.total }

// Violations returns a copy of the retained violation records (callers
// may hold them across later checks).
func (r *Report) Violations() []Violation {
	return append([]Violation(nil), r.violations...)
}

// Chunks returns how many chunk records were checked.
func (r *Report) Chunks() int { return r.chunks }

// Accesses returns how many operations were checked (chunk log entries
// plus conventional accesses).
func (r *Report) Accesses() uint64 { return r.accesses }

// Strings renders the retained violations, with a self-describing
// truncation marker when the retention cap was reached.
func (r *Report) Strings() []string {
	if r.total == 0 {
		return nil
	}
	out := make([]string, 0, len(r.violations)+1)
	for _, v := range r.violations {
		out = append(out, v.String())
	}
	if r.total > len(r.violations) {
		out = append(out, fmt.Sprintf("gk: ... and %d more violations (cap reached)",
			r.total-len(r.violations)))
	}
	return out
}

func (r *Report) report(v Violation) {
	r.total++
	if len(r.violations) < r.max {
		r.violations = append(r.violations, v)
	}
}

// wordState is the witness memory cell: last committed value and the
// commit that produced it.
type wordState struct {
	val   uint64
	order uint64
	proc  int
}

// Options tune Check.
type Options struct {
	// MaxViolations caps retained records; 0 means DefaultMaxViolations.
	MaxViolations int
}

// Check verifies h's claimed serialization. Chunk records are checked
// against the global commit order they carry; access records against
// their perform (file) order. The two shapes describe different machine
// styles and are audited against separate witness memories; no real
// producer mixes them in one history.
func Check(h *history.History, opt Options) *Report {
	r := &Report{max: opt.MaxViolations}
	if r.max <= 0 {
		r.max = DefaultMaxViolations
	}
	checkChunks(r, h.Chunks)
	checkAccesses(r, h.Accesses)
	return r
}

// checkChunks discharges the chunked-history obligations, mirroring
// sccheck.Checker.CommitChunk record for record.
func checkChunks(r *Report, chunks []history.ChunkRec) {
	if len(chunks) == 0 {
		return
	}
	words := make(map[uint64]wordState)
	var lastOrder uint64
	procOrder := map[int]uint64{}
	procSeq := map[int]uint64{}
	procSeen := map[int]bool{}
	overlay := map[uint64]uint64{} // same-chunk speculative writes
	seen := map[uint64]uint64{}    // first observed value per word read

	for i := range chunks {
		ch := &chunks[i]
		r.chunks++
		r.accesses += uint64(len(ch.Ops))

		// Obligation 3: total order. Record order must follow the claimed
		// global order, and each processor's sequence must embed into it.
		if ch.Order <= lastOrder {
			r.report(Violation{
				Kind: KindTotalOrder, Proc: ch.Proc, Order: ch.Order,
				Detail: fmt.Sprintf("chunk #%d arrived after order %d", ch.Seq, lastOrder),
			})
		}
		lastOrder = ch.Order
		if procSeen[ch.Proc] {
			if ch.Order <= procOrder[ch.Proc] {
				r.report(Violation{
					Kind: KindTotalOrder, Proc: ch.Proc, Order: ch.Order,
					Detail: fmt.Sprintf("chunk #%d order not after processor's previous order %d",
						ch.Seq, procOrder[ch.Proc]),
				})
			}
			if ch.Seq <= procSeq[ch.Proc] {
				r.report(Violation{
					Kind: KindTotalOrder, Proc: ch.Proc, Order: ch.Order,
					Detail: fmt.Sprintf("chunk #%d committed after chunk #%d of the same processor",
						ch.Seq, procSeq[ch.Proc]),
				})
			}
		}
		procOrder[ch.Proc] = ch.Order
		procSeq[ch.Proc] = ch.Seq
		procSeen[ch.Proc] = true

		// Obligations 1 and 2: walk the program-order log with the
		// overlay (own speculative writes) and seen (pinned first reads).
		clear(overlay)
		clear(seen)
		for _, op := range ch.Ops {
			a := align(op.Addr)
			if op.Store {
				overlay[a] = op.Val
				continue
			}
			if v, ok := overlay[a]; ok {
				if op.Val != v {
					r.report(Violation{
						Kind: KindForwarding, Proc: ch.Proc, Order: ch.Order, Addr: op.Addr,
						Got: op.Val, Want: v,
						Detail: fmt.Sprintf("chunk #%d load not forwarded from same-chunk store", ch.Seq),
					})
				}
				continue
			}
			if v, ok := seen[a]; ok {
				if op.Val != v {
					r.report(Violation{
						Kind: KindAtomicity, Proc: ch.Proc, Order: ch.Order, Addr: op.Addr,
						Got: op.Val, Want: v,
						Detail: fmt.Sprintf("chunk #%d re-read diverged: another commit interleaved", ch.Seq),
					})
				}
				continue
			}
			want := words[a].val
			if op.Val != want {
				w := words[a]
				r.report(Violation{
					Kind: KindCoherence, Proc: ch.Proc, Order: ch.Order, Addr: op.Addr,
					Got: op.Val, Want: want,
					Detail: fmt.Sprintf("chunk #%d load differs from last store (proc %d, order %d)",
						ch.Seq, w.proc, w.order),
				})
			}
			seen[a] = op.Val
		}

		// Publish the chunk's writes at its commit point. Walking the ops
		// again (rather than ranging the overlay map) keeps publication
		// order deterministic: the last store to each word wins, exactly
		// the overlay's final contents.
		for _, op := range ch.Ops {
			if op.Store {
				words[align(op.Addr)] = wordState{val: op.Val, order: ch.Order, proc: ch.Proc}
			}
		}
	}
}

// checkAccesses discharges the conventional-history obligations,
// mirroring sccheck.Checker.Access.
func checkAccesses(r *Report, accs []history.AccessRec) {
	if len(accs) == 0 {
		return
	}
	words := make(map[uint64]wordState)
	procPO := map[int]uint64{}
	var arrivals uint64
	for i := range accs {
		ac := &accs[i]
		arrivals++
		r.accesses++
		a := align(ac.Addr)

		if last, ok := procPO[ac.Proc]; ok && ac.PO <= last {
			r.report(Violation{
				Kind: KindProgramOrder, Proc: ac.Proc, Order: arrivals, Addr: ac.Addr, Got: ac.Val,
				Detail: fmt.Sprintf("op po=%d performed after po=%d", ac.PO, last),
			})
		} else {
			procPO[ac.Proc] = ac.PO
		}

		if ac.Store {
			words[a] = wordState{val: ac.Val, order: arrivals, proc: ac.Proc}
			continue
		}
		if ac.Fwd {
			continue
		}
		if want := words[a].val; ac.Val != want {
			w := words[a]
			r.report(Violation{
				Kind: KindCoherence, Proc: ac.Proc, Order: arrivals, Addr: ac.Addr,
				Got: ac.Val, Want: want,
				Detail: fmt.Sprintf("load differs from last store (proc %d, order %d)", w.proc, w.order),
			})
		}
	}
}

// align mirrors mem.Addr.Align without importing the simulator's address
// types: histories speak raw byte addresses, words are 8 bytes.
func align(a uint64) uint64 { return a &^ 7 }

// ---------------------------------------------------------------------------
// Serialization search (the NP-complete VSC side)
// ---------------------------------------------------------------------------

// Step identifies one atomic unit in a found serialization: processor and
// the unit's index within that processor's program order.
type Step struct {
	Proc int
	Unit int
}

// ErrStateBound reports that Search gave up before deciding: the history
// may or may not be serializable.
var ErrStateBound = fmt.Errorf("gk: state bound exceeded before a verdict")

// ErrNotSerializable reports an exhausted search: NO interleaving of the
// history's atomic units explains every read.
var ErrNotSerializable = fmt.Errorf("gk: history has no sequentially consistent serialization")

// DefaultMaxStates bounds Search's explored state count.
const DefaultMaxStates = 1 << 20

// unit is one atomic block of operations in a processor's program order.
type unit struct {
	ops []history.Op
}

// Search decides whether some interleaving of h's atomic units — chunks
// for chunked histories, single accesses for conventional ones — explains
// every read, ignoring any claimed commit order. It returns a witness
// serialization when one exists. maxStates bounds the explored states
// (0 = DefaultMaxStates); the bound matters because VSC is NP-complete.
//
// Histories mixing chunk and access records are rejected: the two shapes
// describe different machines and carry no relative order.
func Search(h *history.History, maxStates int) ([]Step, error) {
	if len(h.Chunks) > 0 && len(h.Accesses) > 0 {
		return nil, fmt.Errorf("gk: cannot search a history mixing chunk and access records")
	}
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	// Build the per-processor unit lists in program order. File order is
	// program order within one processor for both shapes (Seq and PO are
	// additionally checked by Check, not trusted here).
	perProc := map[int][]unit{}
	var procIDs []int
	addUnit := func(proc int, u unit) {
		if _, ok := perProc[proc]; !ok {
			procIDs = append(procIDs, proc)
		}
		perProc[proc] = append(perProc[proc], u)
	}
	for i := range h.Chunks {
		addUnit(h.Chunks[i].Proc, unit{ops: h.Chunks[i].Ops})
	}
	for i := range h.Accesses {
		ac := &h.Accesses[i]
		if !ac.Store && ac.Fwd {
			// A buffered-forward load is exempt from the coherence
			// obligation; as a search unit it constrains nothing.
			continue
		}
		addUnit(ac.Proc, unit{ops: []history.Op{{Store: ac.Store, Addr: ac.Addr, Val: ac.Val}}})
	}
	sort.Ints(procIDs)
	units := make([][]unit, len(procIDs))
	procOf := make([]int, len(procIDs))
	for i, p := range procIDs {
		units[i] = perProc[p]
		procOf[i] = p
	}

	// The address universe, fixed up front, gives every state a
	// deterministic memory fingerprint without ranging over maps.
	addrSet := map[uint64]bool{}
	var addrs []uint64
	for i := range units {
		for j := range units[i] {
			for _, op := range units[i][j].ops {
				a := align(op.Addr)
				if !addrSet[a] {
					addrSet[a] = true
					addrs = append(addrs, a)
				}
			}
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	s := &searcher{
		units: units, procOf: procOf, addrs: addrs,
		mem: map[uint64]uint64{}, visited: map[string]bool{},
		maxStates: maxStates,
	}
	s.pos = make([]int, len(units))
	total := 0
	for i := range units {
		total += len(units[i])
	}
	if s.dfs(total) {
		// Steps were appended in reverse on unwind; restore forward order.
		for i, j := 0, len(s.order)-1; i < j; i, j = i+1, j-1 {
			s.order[i], s.order[j] = s.order[j], s.order[i]
		}
		return s.order, nil
	}
	if s.bounded {
		return nil, ErrStateBound
	}
	return nil, ErrNotSerializable
}

type searcher struct {
	units  [][]unit
	procOf []int
	addrs  []uint64
	pos    []int
	mem    map[uint64]uint64
	// visited memoizes dead (frontier, memory) states: re-entering one
	// cannot succeed, which is what keeps the common (serializable or
	// shallowly-unserializable) cases polynomial in practice.
	visited   map[string]bool
	states    int
	maxStates int
	bounded   bool
	order     []Step
}

// key fingerprints the current (frontier, memory) state deterministically
// via the precomputed sorted address universe.
func (s *searcher) key() string {
	buf := make([]byte, 0, len(s.pos)*3+len(s.addrs)*9)
	for _, p := range s.pos {
		buf = append(buf, byte(p), byte(p>>8), '|')
	}
	for _, a := range s.addrs {
		v := s.mem[a]
		for k := 0; k < 8; k++ {
			buf = append(buf, byte(v>>(8*k)))
		}
		buf = append(buf, ';')
	}
	return string(buf)
}

// runnable replays unit u against current memory: every read must be
// explained by memory or the unit's own earlier writes (the G&K
// admissibility condition). On success it returns the unit's write-back
// list (addr, val) in program order.
func (s *searcher) runnable(u *unit) ([]history.Op, bool) {
	var overlay map[uint64]uint64
	var seen map[uint64]uint64
	for _, op := range u.ops {
		a := align(op.Addr)
		if op.Store {
			if overlay == nil {
				overlay = map[uint64]uint64{}
			}
			overlay[a] = op.Val
			continue
		}
		if overlay != nil {
			if v, ok := overlay[a]; ok {
				if op.Val != v {
					return nil, false
				}
				continue
			}
		}
		if seen != nil {
			if v, ok := seen[a]; ok {
				if op.Val != v {
					return nil, false
				}
				continue
			}
		}
		if op.Val != s.mem[a] {
			return nil, false
		}
		if seen == nil {
			seen = map[uint64]uint64{}
		}
		seen[a] = op.Val
	}
	var writes []history.Op
	for _, op := range u.ops {
		if op.Store {
			writes = append(writes, op)
		}
	}
	return writes, true
}

func (s *searcher) dfs(remaining int) bool {
	if remaining == 0 {
		return true
	}
	if s.states >= s.maxStates {
		s.bounded = true
		return false
	}
	s.states++
	k := s.key()
	if s.visited[k] {
		return false
	}
	for i := range s.units {
		if s.pos[i] >= len(s.units[i]) {
			continue
		}
		u := &s.units[i][s.pos[i]]
		writes, ok := s.runnable(u)
		if !ok {
			continue
		}
		// Apply: advance the frontier and publish the unit's writes,
		// remembering displaced values for the undo.
		type undo struct {
			addr, val uint64
			had       bool
		}
		var undos []undo
		for _, w := range writes {
			a := align(w.Addr)
			old, had := s.mem[a]
			undos = append(undos, undo{a, old, had})
			s.mem[a] = w.Val
		}
		stepUnit := s.pos[i]
		s.pos[i]++
		if s.dfs(remaining - 1) {
			s.order = append(s.order, Step{Proc: s.procOf[i], Unit: stepUnit})
			return true
		}
		s.pos[i]--
		for j := len(undos) - 1; j >= 0; j-- {
			if undos[j].had {
				s.mem[undos[j].addr] = undos[j].val
			} else {
				delete(s.mem, undos[j].addr)
			}
		}
		if s.bounded {
			return false
		}
	}
	s.visited[k] = true
	return false
}

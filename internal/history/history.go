// Package history defines the portable NDJSON trace format for memory-
// consistency histories, plus a streaming writer and a validating reader.
//
// A history is a newline-delimited sequence of JSON records describing one
// execution's committed memory operations. Two record shapes carry the
// operations:
//
//   - "chunk" records — one per committed chunk, in global commit order,
//     carrying the chunk's program-order access log and the commit order
//     the implementation claims for it. This is the BulkSC shape: the
//     arbiter names a total order of atomic chunks, and the offline
//     checker (internal/history/gk) verifies the named order explains
//     every observed value.
//   - "access" records — one per architectural memory access at its
//     perform instant, in perform order, carrying a per-processor
//     program-order index. This is the conventional-machine shape (the
//     SC/RC/SC++ baselines), and also the natural shape for histories
//     imported from other systems: any trace of reads and writes with
//     per-thread ordering can be expressed as access records.
//
// The format is deliberately self-contained — integers, no repo-internal
// types — so histories authored by other tools check cleanly through
// cmd/scchk. A minimal external history:
//
//	{"kind":"header","version":1,"format":"bulksc-history","procs":2}
//	{"kind":"access","proc":0,"po":1,"store":true,"addr":64,"val":1}
//	{"kind":"access","proc":1,"po":1,"addr":64,"val":1}
//
// The header is optional (defaults apply) but recommended; unknown record
// kinds and unknown header versions are errors, unknown *fields* are
// ignored so the format can grow.
//
// Export is wired behind core.Config.TraceWriter and `sweep -exp trace
// -trace-out`; it is pure observation — the writer hooks the same commit
// and perform instants the online witness checker audits, adds no
// simulation events, and therefore cannot perturb the determinism or
// witness golden hashes.
package history

import "fmt"

// Version is the current format version. Readers accept histories whose
// header declares any version in [1, Version].
const Version = 1

// Format is the magic string a header's "format" field must carry (when a
// header is present).
const Format = "bulksc-history"

// Kinds of NDJSON records.
const (
	KindHeader = "header"
	KindChunk  = "chunk"
	KindAccess = "access"
)

// Header is the optional first record of a history.
type Header struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	Format  string `json:"format"`
	// Model names the consistency implementation that produced the
	// history ("BulkSC", "SC", "RC", ...). Informational.
	Model string `json:"model,omitempty"`
	// Procs is the processor count; 0 means "infer from the records".
	Procs int    `json:"procs,omitempty"`
	App   string `json:"app,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	Work  int    `json:"work,omitempty"`
}

// Op is one memory access inside a chunk record, in program order.
type Op struct {
	// Store distinguishes writes from reads (absent = read).
	Store bool `json:"store,omitempty"`
	// Addr is the byte address of the accessed word.
	Addr uint64 `json:"addr"`
	// Val is the value written (stores) or observed (loads).
	Val uint64 `json:"val"`
}

// ChunkRec is one committed chunk: an atomic block of accesses with a
// claimed position in the global commit order.
type ChunkRec struct {
	Kind string `json:"kind"`
	// Proc is the committing processor.
	Proc int `json:"proc"`
	// Seq is the chunk's per-processor sequence number (strictly
	// increasing per processor).
	Seq uint64 `json:"seq"`
	// Order is the global commit order the implementation claims for the
	// chunk (strictly increasing across the history; gaps are fine — a
	// squashed chunk may consume an order that never commits).
	Order uint64 `json:"order"`
	// Ops is the chunk's access log in program order.
	Ops []Op `json:"ops"`
}

// AccessRec is one conventional architectural access at its perform
// instant. Records appear in perform order.
type AccessRec struct {
	Kind string `json:"kind"`
	Proc int    `json:"proc"`
	// PO is the processor's program-order index for the operation
	// (strictly increasing per processor).
	PO    uint64 `json:"po"`
	Store bool   `json:"store,omitempty"`
	Addr  uint64 `json:"addr"`
	Val   uint64 `json:"val"`
	// Fwd marks a load served from the processor's own store buffer; such
	// loads are exempt from the perform-order coherence obligation (the
	// ordering debt is collected when the buffered store performs).
	Fwd bool `json:"fwd,omitempty"`
}

// History is a fully parsed trace. Chunks and Accesses each preserve file
// order, which is the claimed commit/perform order respectively.
type History struct {
	Header   Header
	Chunks   []ChunkRec
	Accesses []AccessRec
}

// Procs returns the processor count: the header's claim when present,
// otherwise 1 + the highest processor id appearing in any record.
func (h *History) Procs() int {
	if h.Header.Procs > 0 {
		return h.Header.Procs
	}
	max := -1
	for i := range h.Chunks {
		if h.Chunks[i].Proc > max {
			max = h.Chunks[i].Proc
		}
	}
	for i := range h.Accesses {
		if h.Accesses[i].Proc > max {
			max = h.Accesses[i].Proc
		}
	}
	return max + 1
}

// Ops returns the total operation count across both record shapes.
func (h *History) Ops() int {
	n := len(h.Accesses)
	for i := range h.Chunks {
		n += len(h.Chunks[i].Ops)
	}
	return n
}

// validate checks the structural invariants that make a history checkable
// at all — nonnegative processor ids and nonempty record bodies. Ordering
// and value obligations are deliberately NOT checked here: those are the
// checker's verdict, not a parse error.
func (h *History) validate() error {
	for i := range h.Chunks {
		c := &h.Chunks[i]
		if c.Proc < 0 {
			return fmt.Errorf("chunk record %d: negative proc %d", i, c.Proc)
		}
	}
	for i := range h.Accesses {
		a := &h.Accesses[i]
		if a.Proc < 0 {
			return fmt.Errorf("access record %d: negative proc %d", i, a.Proc)
		}
	}
	if p := h.Header.Procs; p > 0 {
		for i := range h.Chunks {
			if h.Chunks[i].Proc >= p {
				return fmt.Errorf("chunk record %d: proc %d outside header's %d processors",
					i, h.Chunks[i].Proc, p)
			}
		}
		for i := range h.Accesses {
			if h.Accesses[i].Proc >= p {
				return fmt.Errorf("access record %d: proc %d outside header's %d processors",
					i, h.Accesses[i].Proc, p)
			}
		}
	}
	return nil
}

// Package explore exhaustively enumerates the reachable outcomes of small
// litmus programs under three operational memory models, turning the
// simulator's sampled confidence ("no seed ever produced a non-SC
// outcome") into proved confidence ("no interleaving of this program
// can"), in the spirit of Qadeer's "Verifying Sequential Consistency by
// Model Checking".
//
// Three models are explored:
//
//   - ModelSC: the SC reference — individual operations interleave
//     atomically. Its outcome set IS the definition of the sequentially
//     consistent outcomes of the program.
//   - ModelBulk: BulkSC's chunk-atomic semantics — every partition of
//     each thread's operations into contiguous chunks is enumerated, and
//     chunks interleave atomically with same-chunk store-to-load
//     forwarding. Commit atomicity means chunking can only REMOVE
//     interleavings, never add them, so the proof obligation is
//     outcomes(Bulk) ⊆ outcomes(SC) — equality in practice, since
//     singleton chunks recover every SC interleaving.
//   - ModelRC: a release-consistency-style machine with per-thread FIFO
//     store buffers and own-store forwarding. Loads may perform while
//     older stores sit buffered, which is exactly the store→load
//     relaxation that makes SB's forbidden outcome reachable.
//
// # Partial-order reduction
//
// Exploration runs a depth-first search with sleep sets (Godefroid).
// Two transitions are independent when they belong to different threads
// and their memory footprints do not conflict (no shared word with at
// least one store); same-thread transitions are always dependent, as are
// a thread's issue and drain steps. After exploring transition t from a
// state, t is added to the sleep set of the siblings explored after it,
// and a successor's sleep set keeps only the entries independent of the
// transition taken — so any execution that merely commutes independent
// steps of an already-explored trace is pruned. Sleep-set POR preserves
// ALL terminal states of an acyclic system (every Mazurkiewicz trace
// keeps at least one representative interleaving), and the programs here
// are finite straight-line code, so the outcome set is exact: the tests
// assert POR-on and POR-off enumerate identical outcomes while visiting
// far fewer states.
//
// Each terminal trace can also be re-serialized as an internal/history
// record stream and pushed through the offline checker (internal/
// history/gk), closing the loop: the enumerator proves the model's
// outcome set, the checker independently verifies each enumerated
// execution's claimed order.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"bulksc/internal/history"
)

// Op is one memory operation of a litmus thread. Val is the value written
// for stores and ignored for loads (the model computes what a load
// observes).
type Op struct {
	Store bool
	Addr  uint64
	Val   uint64
}

// Program is a straight-line litmus program: one op list per thread.
type Program struct {
	Name    string
	Threads [][]Op
}

// Model selects the operational semantics to enumerate.
type Model int

const (
	// ModelSC interleaves individual operations atomically.
	ModelSC Model = iota
	// ModelBulk interleaves chunks atomically, over every chunking.
	ModelBulk
	// ModelRC adds per-thread FIFO store buffers with forwarding.
	ModelRC
)

func (m Model) String() string {
	return [...]string{"SC", "BulkSC", "RC"}[m]
}

// Outcome is the observable result of one terminal execution: the values
// each thread's loads observed, in program order.
type Outcome struct {
	Loads [][]uint64
}

// Key renders the outcome canonically; equal outcomes render equally.
func (o Outcome) Key() string {
	var b strings.Builder
	for t, ls := range o.Loads {
		if t > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%v", t, ls)
	}
	return b.String()
}

// Options tune Explore.
type Options struct {
	// POR disables sleep-set pruning when false... it is ON by default
	// only through DefaultOptions; the zero Options explores the full
	// interleaving tree (the cross-validation baseline).
	POR bool
	// MaxStates bounds visited states; 0 = DefaultMaxStates.
	MaxStates int
	// OnHistory, when set, receives each terminal execution re-serialized
	// as an internal/history record stream — chunk records (claimed order
	// = execution order) for SC/Bulk, access records (perform order, with
	// buffered-forward loads marked) for RC. A returned error aborts the
	// enumeration. This is the bridge to the offline checker: the tests
	// push every enumerated execution through gk.Check.
	OnHistory func(*history.History) error
}

// DefaultMaxStates bounds exploration; litmus programs sit orders of
// magnitude below it.
const DefaultMaxStates = 4 << 20

// DefaultOptions is the production configuration: POR on.
func DefaultOptions() Options { return Options{POR: true} }

// Result is one enumeration's findings.
type Result struct {
	// Outcomes holds every reachable outcome, sorted by Key.
	Outcomes []Outcome
	// States counts visited states (after pruning); Traces counts
	// terminal executions reached.
	States, Traces int
	// Chunkings counts the per-thread chunk partitions enumerated
	// (ModelBulk only; 1 otherwise).
	Chunkings int
}

// Has reports whether the result contains an outcome with the given key.
func (r *Result) Has(key string) bool {
	for _, o := range r.Outcomes {
		if o.Key() == key {
			return true
		}
	}
	return false
}

// Keys returns the sorted outcome keys.
func (r *Result) Keys() []string {
	out := make([]string, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Key()
	}
	return out
}

// SubsetOf reports whether every outcome of r also occurs in other — the
// "model is no weaker than" relation (outcomes(Bulk) ⊆ outcomes(SC) is
// the SC proof obligation).
func (r *Result) SubsetOf(other *Result) bool {
	have := map[string]bool{}
	for _, o := range other.Outcomes {
		have[o.Key()] = true
	}
	for _, o := range r.Outcomes {
		if !have[o.Key()] {
			return false
		}
	}
	return true
}

// Explore enumerates every reachable outcome of prog under model.
func Explore(prog *Program, model Model, opt Options) (*Result, error) {
	if opt.MaxStates <= 0 {
		opt.MaxStates = DefaultMaxStates
	}
	res := &Result{}
	seen := map[string]Outcome{}

	switch model {
	case ModelSC, ModelBulk:
		// One enumeration per chunking. ModelSC is the singleton chunking.
		err := forEachChunking(prog, model, func(units [][][]Op) error {
			res.Chunkings++
			e := &enumerator{opt: opt, res: res, seen: seen, units: units}
			return e.run()
		})
		if err != nil {
			return nil, err
		}
	case ModelRC:
		res.Chunkings = 1
		e := &enumerator{opt: opt, res: res, seen: seen, rc: true}
		e.units = make([][][]Op, len(prog.Threads))
		for t, ops := range prog.Threads {
			e.units[t] = make([][]Op, len(ops))
			for i := range ops {
				e.units[t][i] = ops[i : i+1]
			}
		}
		if err := e.run(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("explore: unknown model %d", int(model))
	}

	keys := make([]string, 0, len(seen))
	for k := range seen { // collected below and sorted: deterministic output
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res.Outcomes = append(res.Outcomes, seen[k])
	}
	return res, nil
}

// forEachChunking enumerates every partition of each thread's ops into
// contiguous chunks (2^(n-1) compositions per thread) and calls fn with
// the per-thread unit lists. ModelSC uses only the all-singletons
// partition.
func forEachChunking(prog *Program, model Model, fn func([][][]Op) error) error {
	units := make([][][]Op, len(prog.Threads))
	var rec func(t int) error
	rec = func(t int) error {
		if t == len(prog.Threads) {
			return fn(units)
		}
		ops := prog.Threads[t]
		n := len(ops)
		if model == ModelSC {
			us := make([][]Op, n)
			for i := range ops {
				us[i] = ops[i : i+1]
			}
			units[t] = us
			return rec(t + 1)
		}
		if n > 16 {
			return fmt.Errorf("explore: thread %d has %d ops; chunk enumeration caps at 16", t, n)
		}
		if n == 0 {
			units[t] = nil
			return rec(t + 1)
		}
		for cuts := 0; cuts < 1<<(n-1); cuts++ {
			var us [][]Op
			start := 0
			for i := 1; i < n; i++ {
				if cuts&(1<<(i-1)) != 0 {
					us = append(us, ops[start:i])
					start = i
				}
			}
			us = append(us, ops[start:])
			units[t] = us
			if err := rec(t + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// trans identifies one transition for the sleep-set machinery: a thread's
// next atomic unit, or (RC) the drain of its oldest buffered store.
// Same-thread transitions are always dependent, so the pair (thread,
// drain) is a sound identity: a sleeping entry survives only across
// independent — hence other-thread — steps, which leave the entry's
// referent (that thread's next unit / oldest buffer slot) untouched.
type trans struct {
	thread int
	drain  bool
}

// bufEntry is one buffered store in an RC thread's FIFO, tagged with its
// program-order index for history building.
type bufEntry struct {
	addr, val uint64
	po        uint64
}

// step records one executed transition for history reconstruction.
type step struct {
	proc  int
	drain bool
	// ops carries the unit's concrete accesses with OBSERVED load values.
	ops []Op
	// po is the program-order index of the single op (RC issue/drain).
	po uint64
	// fwd marks an RC load served from the thread's own buffer.
	fwd bool
}

// enumerator runs one sleep-set DFS over a fixed unit structure.
type enumerator struct {
	opt   Options
	res   *Result
	seen  map[string]Outcome
	units [][][]Op
	rc    bool

	mem   map[uint64]uint64
	pc    []int
	done  []int // ops completed per thread (for RC po indices)
	loads [][]uint64
	bufs  [][]bufEntry
	trace []step
}

func (e *enumerator) run() error {
	e.mem = map[uint64]uint64{}
	e.pc = make([]int, len(e.units))
	e.done = make([]int, len(e.units))
	e.loads = make([][]uint64, len(e.units))
	e.bufs = make([][]bufEntry, len(e.units))
	e.trace = e.trace[:0]
	return e.dfs(nil)
}

// footprint returns t's access set in the current state.
func (e *enumerator) footprint(t trans) []Op {
	if t.drain {
		b := e.bufs[t.thread][0]
		return []Op{{Store: true, Addr: b.addr, Val: b.val}}
	}
	return e.units[t.thread][e.pc[t.thread]]
}

// independent implements the Mazurkiewicz independence relation:
// different threads, no conflicting word.
func (e *enumerator) independent(a, b trans) bool {
	if a.thread == b.thread {
		return false
	}
	fa, fb := e.footprint(a), e.footprint(b)
	for _, x := range fa {
		for _, y := range fb {
			if x.Addr == y.Addr && (x.Store || y.Store) {
				return false
			}
		}
	}
	return true
}

// enabled lists the transitions runnable from the current state, in
// deterministic order (thread ascending, issue before drain).
func (e *enumerator) enabled() []trans {
	var out []trans
	for t := range e.units {
		if e.pc[t] < len(e.units[t]) {
			out = append(out, trans{thread: t})
		}
		if e.rc && len(e.bufs[t]) > 0 {
			out = append(out, trans{thread: t, drain: true})
		}
	}
	return out
}

// apply executes t, returning an undo closure. Loads record their
// observed values; RC stores enter the FIFO and publish on drain.
func (e *enumerator) apply(t trans) func() {
	th := t.thread
	if t.drain {
		b := e.bufs[th][0]
		e.bufs[th] = e.bufs[th][1:]
		old, had := e.mem[b.addr]
		e.mem[b.addr] = b.val
		e.trace = append(e.trace, step{
			proc: th, drain: true, po: b.po,
			ops: []Op{{Store: true, Addr: b.addr, Val: b.val}},
		})
		bufs := e.bufs[th]
		return func() {
			e.trace = e.trace[:len(e.trace)-1]
			if had {
				e.mem[b.addr] = old
			} else {
				delete(e.mem, b.addr)
			}
			e.bufs[th] = append([]bufEntry{b}, bufs...)
		}
	}

	unit := e.units[th][e.pc[th]]
	e.pc[th]++
	doneBefore := e.done[th]
	loadsBefore := len(e.loads[th])
	bufsBefore := len(e.bufs[th])
	type memUndo struct {
		addr, val uint64
		had       bool
	}
	var undos []memUndo
	var overlay map[uint64]uint64
	rec := step{proc: th, ops: make([]Op, 0, len(unit))}
	for _, op := range unit {
		e.done[th]++
		po := uint64(e.done[th])
		if op.Store {
			if e.rc {
				e.bufs[th] = append(e.bufs[th], bufEntry{addr: op.Addr, val: op.Val, po: po})
			} else {
				if overlay == nil {
					overlay = map[uint64]uint64{}
				}
				overlay[op.Addr] = op.Val
			}
			rec.ops = append(rec.ops, op)
			continue
		}
		var v uint64
		var fwd bool
		switch {
		case e.rc:
			// Newest matching buffered store forwards; else memory.
			v, fwd = e.mem[op.Addr], false
			for i := len(e.bufs[th]) - 1; i >= 0; i-- {
				if e.bufs[th][i].addr == op.Addr {
					v, fwd = e.bufs[th][i].val, true
					break
				}
			}
		default:
			if ov, ok := overlay[op.Addr]; ok {
				v, fwd = ov, true
			} else {
				v = e.mem[op.Addr]
			}
		}
		e.loads[th] = append(e.loads[th], v)
		rec.ops = append(rec.ops, Op{Addr: op.Addr, Val: v})
		rec.po, rec.fwd = po, fwd
	}
	// Chunk commit: publish the overlay through the ops walk (last store
	// per word wins), keeping publication deterministic.
	if !e.rc {
		for _, op := range unit {
			if op.Store {
				old, had := e.mem[op.Addr]
				undos = append(undos, memUndo{op.Addr, old, had})
				e.mem[op.Addr] = op.Val
			}
		}
	}
	e.trace = append(e.trace, rec)
	return func() {
		e.trace = e.trace[:len(e.trace)-1]
		for i := len(undos) - 1; i >= 0; i-- {
			if undos[i].had {
				e.mem[undos[i].addr] = undos[i].val
			} else {
				delete(e.mem, undos[i].addr)
			}
		}
		e.bufs[th] = e.bufs[th][:bufsBefore]
		e.loads[th] = e.loads[th][:loadsBefore]
		e.done[th] = doneBefore
		e.pc[th]--
	}
}

func (e *enumerator) terminal() bool {
	for t := range e.units {
		if e.pc[t] < len(e.units[t]) || len(e.bufs[t]) > 0 {
			return false
		}
	}
	return true
}

func (e *enumerator) record() error {
	e.res.Traces++
	o := Outcome{Loads: make([][]uint64, len(e.loads))}
	for t, ls := range e.loads {
		o.Loads[t] = append([]uint64(nil), ls...)
	}
	e.seen[o.Key()] = o
	if e.opt.OnHistory != nil {
		return e.opt.OnHistory(e.buildHistory())
	}
	return nil
}

// buildHistory re-serializes the current terminal trace as a history:
// chunk records with claimed order = execution order for the chunk-atomic
// models, access records in perform order for RC.
func (e *enumerator) buildHistory() *history.History {
	h := &history.History{Header: history.Header{
		Kind: history.KindHeader, Version: history.Version, Format: history.Format,
		Procs: len(e.units),
	}}
	if e.rc {
		h.Header.Model = "RC"
		for _, s := range e.trace {
			if !s.drain && s.ops[0].Store {
				continue // an RC store performs at its drain step
			}
			h.Accesses = append(h.Accesses, history.AccessRec{
				Kind: history.KindAccess, Proc: s.proc, PO: s.po,
				Store: s.drain, Addr: s.ops[0].Addr, Val: s.ops[0].Val, Fwd: s.fwd,
			})
		}
		return h
	}
	h.Header.Model = "BulkSC"
	seq := make([]uint64, len(e.units))
	for i, s := range e.trace {
		seq[s.proc]++
		rec := history.ChunkRec{
			Kind: history.KindChunk, Proc: s.proc, Seq: seq[s.proc],
			Order: uint64(i + 1), Ops: make([]history.Op, len(s.ops)),
		}
		for j, op := range s.ops {
			rec.Ops[j] = history.Op{Store: op.Store, Addr: op.Addr, Val: op.Val}
		}
		h.Chunks = append(h.Chunks, rec)
	}
	return h
}

func (e *enumerator) dfs(sleep []trans) error {
	e.res.States++
	if e.res.States > e.opt.MaxStates {
		return fmt.Errorf("explore: state bound %d exceeded", e.opt.MaxStates)
	}
	if e.terminal() {
		return e.record()
	}
	en := e.enabled()
	var explored []trans
	for _, t := range en {
		if e.opt.POR && inSet(sleep, t) {
			continue
		}
		// Successor sleep set: prior sleepers and already-explored
		// siblings that are independent of t.
		var next []trans
		if e.opt.POR {
			for _, s := range sleep {
				if e.independent(s, t) {
					next = append(next, s)
				}
			}
			for _, s := range explored {
				if e.independent(s, t) {
					next = append(next, s)
				}
			}
		}
		undo := e.apply(t)
		err := e.dfs(next)
		undo()
		if err != nil {
			return err
		}
		explored = append(explored, t)
	}
	return nil
}

func inSet(set []trans, t trans) bool {
	for _, s := range set {
		if s == t {
			return true
		}
	}
	return false
}

package explore

import (
	"reflect"
	"strings"
	"testing"

	"bulksc/internal/history"
	"bulksc/internal/history/gk"
)

func mustExplore(t *testing.T, p *Program, m Model, opt Options) *Result {
	t.Helper()
	r, err := Explore(p, m, opt)
	if err != nil {
		t.Fatalf("Explore(%s, %s): %v", p.Name, m, err)
	}
	return r
}

// TestSCReference pins the SC outcome sets of the two-variable kernels.
func TestSCReference(t *testing.T) {
	sb := mustExplore(t, SB(), ModelSC, DefaultOptions())
	want := []string{"0:[0] 1:[1]", "0:[1] 1:[0]", "0:[1] 1:[1]"}
	if !reflect.DeepEqual(sb.Keys(), want) {
		t.Fatalf("SB SC outcomes = %v, want %v", sb.Keys(), want)
	}
	mp := mustExplore(t, MP(), ModelSC, DefaultOptions())
	if mp.Has(MPForbidden()) {
		t.Fatalf("MP forbidden outcome reachable under SC: %v", mp.Keys())
	}
}

// TestForbiddenUnreachable is the core proof obligation: for every litmus
// kernel, the SC-forbidden outcome is unreachable under both SC and
// BulkSC (over EVERY chunking), and the BulkSC outcome set is exactly
// the SC outcome set.
func TestForbiddenUnreachable(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Prog.Name, func(t *testing.T) {
			sc := mustExplore(t, k.Prog, ModelSC, DefaultOptions())
			bulk := mustExplore(t, k.Prog, ModelBulk, DefaultOptions())
			if sc.Has(k.Forbidden) {
				t.Errorf("forbidden outcome %q reachable under SC", k.Forbidden)
			}
			if bulk.Has(k.Forbidden) {
				t.Errorf("forbidden outcome %q reachable under BulkSC", k.Forbidden)
			}
			// Chunk atomicity only removes interleavings (⊆); singleton
			// chunks recover each one (⊇): the sets must be equal.
			if !reflect.DeepEqual(sc.Keys(), bulk.Keys()) {
				t.Errorf("BulkSC outcomes %v != SC outcomes %v", bulk.Keys(), sc.Keys())
			}
			if bulk.Chunkings < 2 && k.Prog.Name != "IRIW" {
				t.Errorf("Bulk enumerated %d chunkings", bulk.Chunkings)
			}
		})
	}
}

// TestRCExhibitsSB proves the RC model is genuinely weaker: SB's
// forbidden outcome is reachable, while the order relaxations RC does
// NOT make (load→store, same-address read-read) stay forbidden.
func TestRCExhibitsSB(t *testing.T) {
	sb := mustExplore(t, SB(), ModelRC, DefaultOptions())
	if !sb.Has(SBForbidden()) {
		t.Fatalf("RC did not exhibit SB's forbidden outcome: %v", sb.Keys())
	}
	sc := mustExplore(t, SB(), ModelSC, DefaultOptions())
	if !sc.SubsetOf(sb) {
		t.Fatalf("RC outcomes %v lost SC outcomes %v", sb.Keys(), sc.Keys())
	}
	if lb := mustExplore(t, LB(), ModelRC, DefaultOptions()); lb.Has(LBForbidden()) {
		t.Fatalf("RC store buffer must not reorder load→store: %v", lb.Keys())
	}
	if co := mustExplore(t, CoRR(), ModelRC, DefaultOptions()); co.Has(CoRRForbidden()) {
		t.Fatalf("RC store buffer must stay coherent: %v", co.Keys())
	}
}

// TestPOREquivalence cross-validates the sleep-set reduction: identical
// outcome sets with and without POR, at (usually strictly) fewer states.
func TestPOREquivalence(t *testing.T) {
	models := []Model{ModelSC, ModelBulk, ModelRC}
	for _, k := range Kernels() {
		for _, m := range models {
			por := mustExplore(t, k.Prog, m, Options{POR: true})
			full := mustExplore(t, k.Prog, m, Options{POR: false})
			if !reflect.DeepEqual(por.Keys(), full.Keys()) {
				t.Errorf("%s/%s: POR outcomes %v != full outcomes %v",
					k.Prog.Name, m, por.Keys(), full.Keys())
			}
			if por.States > full.States {
				t.Errorf("%s/%s: POR visited %d states, full only %d",
					k.Prog.Name, m, por.States, full.States)
			}
			if por.Traces > full.Traces {
				t.Errorf("%s/%s: POR explored %d traces, full only %d",
					k.Prog.Name, m, por.Traces, full.Traces)
			}
		}
	}
	// The reduction must actually reduce somewhere substantial.
	por := mustExplore(t, IRIW(), ModelSC, Options{POR: true})
	full := mustExplore(t, IRIW(), ModelSC, Options{POR: false})
	if por.States >= full.States {
		t.Errorf("IRIW: POR gave no reduction (%d vs %d states)", por.States, full.States)
	}
}

// TestHistoriesCheckOffline closes the loop with the offline checker:
// every enumerated SC/BulkSC execution re-serializes to a history whose
// claimed order gk.Check verifies clean, and every enumerated RC
// execution stays value-coherent (only program-order findings, which ARE
// the relaxation).
func TestHistoriesCheckOffline(t *testing.T) {
	for _, k := range Kernels() {
		for _, m := range []Model{ModelSC, ModelBulk} {
			n := 0
			opt := DefaultOptions()
			opt.OnHistory = func(h *history.History) error {
				n++
				if r := gk.Check(h, gk.Options{}); !r.Ok() {
					t.Fatalf("%s/%s: enumerated execution failed offline check: %v",
						k.Prog.Name, m, r.Strings())
				}
				return nil
			}
			mustExplore(t, k.Prog, m, opt)
			if n == 0 {
				t.Fatalf("%s/%s: no histories emitted", k.Prog.Name, m)
			}
		}
	}
	opt := DefaultOptions()
	poFindings := 0
	opt.OnHistory = func(h *history.History) error {
		r := gk.Check(h, gk.Options{})
		for _, v := range r.Violations() {
			if v.Kind != gk.KindProgramOrder {
				t.Fatalf("RC execution broke a value obligation: %v", v)
			}
			poFindings++
		}
		return nil
	}
	mustExplore(t, SB(), ModelRC, opt)
	if poFindings == 0 {
		t.Fatal("RC SB enumeration never exhibited the program-order relaxation")
	}
}

func TestStateBound(t *testing.T) {
	_, err := Explore(SB(), ModelSC, Options{MaxStates: 3})
	if err == nil || !strings.Contains(err.Error(), "state bound") {
		t.Fatalf("err = %v, want state bound error", err)
	}
}

func TestChunkingCount(t *testing.T) {
	// SB: two threads of 2 ops → 2 partitions each → 4 chunkings.
	r := mustExplore(t, SB(), ModelBulk, DefaultOptions())
	if r.Chunkings != 4 {
		t.Fatalf("SB chunkings = %d, want 4", r.Chunkings)
	}
}

package explore

// Litmus kernels mirroring internal/workload/litmus.go, expressed as pure
// operation lists for enumeration. X and Y are the two shared words; all
// stores write 1 so outcomes read as 0/1 flag vectors.
const (
	X uint64 = 0
	Y uint64 = 8
)

// SB is store buffering:
//
//	T0: x = 1; r0 = y        T1: y = 1; r1 = x
//
// SC forbids (r0, r1) = (0, 0); a store buffer exhibits it.
func SB() *Program {
	return &Program{Name: "SB", Threads: [][]Op{
		{{Store: true, Addr: X, Val: 1}, {Addr: Y}},
		{{Store: true, Addr: Y, Val: 1}, {Addr: X}},
	}}
}

// SBForbidden is the SB outcome SC forbids.
func SBForbidden() string { return "0:[0] 1:[0]" }

// MP is message passing:
//
//	T0: x = 1; y = 1         T1: r0 = y; r1 = x
//
// SC forbids (r0, r1) = (1, 0).
func MP() *Program {
	return &Program{Name: "MP", Threads: [][]Op{
		{{Store: true, Addr: X, Val: 1}, {Store: true, Addr: Y, Val: 1}},
		{{Addr: Y}, {Addr: X}},
	}}
}

// MPForbidden is the MP outcome SC forbids.
func MPForbidden() string { return "0:[] 1:[1 0]" }

// LB is load buffering:
//
//	T0: r0 = x; y = 1        T1: r1 = y; x = 1
//
// SC (and both machines here) forbids (r0, r1) = (1, 1).
func LB() *Program {
	return &Program{Name: "LB", Threads: [][]Op{
		{{Addr: X}, {Store: true, Addr: Y, Val: 1}},
		{{Addr: Y}, {Store: true, Addr: X, Val: 1}},
	}}
}

// LBForbidden is the LB outcome SC forbids.
func LBForbidden() string { return "0:[1] 1:[1]" }

// WRC is write-to-read causality:
//
//	T0: x = 1    T1: r0 = x; y = 1    T2: r1 = y; r2 = x
//
// SC forbids r0 = 1 ∧ r1 = 1 ∧ r2 = 0.
func WRC() *Program {
	return &Program{Name: "WRC", Threads: [][]Op{
		{{Store: true, Addr: X, Val: 1}},
		{{Addr: X}, {Store: true, Addr: Y, Val: 1}},
		{{Addr: Y}, {Addr: X}},
	}}
}

// WRCForbidden is the WRC outcome SC forbids.
func WRCForbidden() string { return "0:[] 1:[1] 2:[1 0]" }

// CoRR is coherence read-read: T1 must not see X go backwards.
//
//	T0: x = 1    T1: r0 = x; r1 = x
func CoRR() *Program {
	return &Program{Name: "CoRR", Threads: [][]Op{
		{{Store: true, Addr: X, Val: 1}},
		{{Addr: X}, {Addr: X}},
	}}
}

// CoRRForbidden is the CoRR outcome coherence forbids.
func CoRRForbidden() string { return "0:[] 1:[1 0]" }

// IRIW is independent reads of independent writes:
//
//	T0: x = 1    T1: y = 1    T2: r0 = x; r1 = y    T3: r2 = y; r3 = x
//
// SC forbids the two readers observing the writes in opposite orders.
func IRIW() *Program {
	return &Program{Name: "IRIW", Threads: [][]Op{
		{{Store: true, Addr: X, Val: 1}},
		{{Store: true, Addr: Y, Val: 1}},
		{{Addr: X}, {Addr: Y}},
		{{Addr: Y}, {Addr: X}},
	}}
}

// IRIWForbidden is the IRIW outcome SC forbids.
func IRIWForbidden() string { return "0:[] 1:[] 2:[1 0] 3:[1 0]" }

// Kernel pairs a litmus program with the outcome SC forbids.
type Kernel struct {
	Prog      *Program
	Forbidden string
}

// Kernels returns the enumeration suite: every kernel's forbidden outcome
// must be unreachable under SC and BulkSC; SB's must be reachable under
// RC.
func Kernels() []Kernel {
	return []Kernel{
		{SB(), SBForbidden()},
		{MP(), MPForbidden()},
		{LB(), LBForbidden()},
		{WRC(), WRCForbidden()},
		{CoRR(), CoRRForbidden()},
		{IRIW(), IRIWForbidden()},
	}
}

package history

import (
	"bytes"
	"strings"
	"testing"

	"bulksc/internal/chunk"
	"bulksc/internal/mem"
)

func TestRoundTripChunks(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header(Header{Model: "BulkSC", Procs: 2, App: "radix", Seed: 3, Work: 100})
	w.Chunk(&chunk.Chunk{
		Proc: 0, Seq: 1, CommitOrder: 1,
		Log: []chunk.AccessRec{
			{IsStore: true, Addr: 64, Value: 7},
			{IsStore: false, Addr: 64, Value: 7},
		},
	})
	w.Chunk(&chunk.Chunk{
		Proc: 1, Seq: 1, CommitOrder: 2,
		Log: []chunk.AccessRec{{IsStore: false, Addr: 64, Value: 7}},
	})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if h.Header.Model != "BulkSC" || h.Header.Procs != 2 || h.Header.Version != Version {
		t.Fatalf("header mismatch: %+v", h.Header)
	}
	if len(h.Chunks) != 2 || len(h.Accesses) != 0 {
		t.Fatalf("got %d chunks %d accesses", len(h.Chunks), len(h.Accesses))
	}
	c0 := h.Chunks[0]
	if c0.Proc != 0 || c0.Seq != 1 || c0.Order != 1 || len(c0.Ops) != 2 {
		t.Fatalf("chunk 0 mismatch: %+v", c0)
	}
	if !c0.Ops[0].Store || c0.Ops[0].Addr != 64 || c0.Ops[0].Val != 7 {
		t.Fatalf("op mismatch: %+v", c0.Ops[0])
	}
	if c0.Ops[1].Store {
		t.Fatalf("op 1 should be a load: %+v", c0.Ops[1])
	}
	if h.Procs() != 2 {
		t.Fatalf("Procs() = %d, want 2", h.Procs())
	}
	if h.Ops() != 3 {
		t.Fatalf("Ops() = %d, want 3", h.Ops())
	}
}

func TestRoundTripAccesses(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header(Header{Model: "RC", Procs: 2})
	w.Access(0, 1, true, mem.Addr(128), 5, false)
	w.Access(0, 2, false, mem.Addr(128), 5, true)
	w.Access(1, 1, false, mem.Addr(128), 5, false)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(h.Accesses) != 3 {
		t.Fatalf("got %d accesses", len(h.Accesses))
	}
	a1 := h.Accesses[1]
	if a1.Store || !a1.Fwd || a1.PO != 2 || a1.Addr != 128 || a1.Val != 5 {
		t.Fatalf("access 1 mismatch: %+v", a1)
	}
}

// TestExternalHistory feeds a hand-authored headerless trace, the shape an
// external tool would emit, and checks defaults are applied.
func TestExternalHistory(t *testing.T) {
	src := `
{"kind":"access","proc":0,"po":1,"store":true,"addr":64,"val":1}

{"kind":"access","proc":1,"po":1,"addr":64,"val":1}
`
	h, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if h.Header.Version != 1 {
		t.Fatalf("default version = %d, want 1", h.Header.Version)
	}
	if h.Procs() != 2 {
		t.Fatalf("inferred Procs() = %d, want 2", h.Procs())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "no operation records"},
		{"header only", `{"kind":"header","version":1}`, "no operation records"},
		{"duplicate header", `{"kind":"header","version":1}` + "\n" + `{"kind":"header","version":1}`, "duplicate header"},
		{"late header", `{"kind":"access","proc":0,"po":1,"addr":0,"val":0}` + "\n" + `{"kind":"header","version":1}`, "header after operation records"},
		{"bad version", `{"kind":"header","version":99}`, "unsupported version"},
		{"zero version", `{"kind":"header","version":0}`, "unsupported version"},
		{"bad format", `{"kind":"header","version":1,"format":"other"}`, `format "other"`},
		{"unknown kind", `{"kind":"mystery"}`, "unknown record kind"},
		{"missing kind", `{"proc":0}`, "no \"kind\" field"},
		{"not json", `not json at all`, "line 1"},
		{"negative proc", `{"kind":"access","proc":-1,"po":1,"addr":0,"val":0}`, "negative proc"},
		{"proc outside header", `{"kind":"header","version":1,"procs":2}` + "\n" + `{"kind":"access","proc":5,"po":1,"addr":0,"val":0}`, "outside header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("Read accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// errWriter fails after n bytes to exercise the sticky-error path.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errShort
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errShort
	}
	w.n -= len(p)
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&errWriter{n: 8})
	for i := 0; i < 4096; i++ { // overflow the bufio buffer to force the write
		w.Access(0, uint64(i+1), true, 0, 0, false)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close did not surface the write error")
	}
	// Close again returns the same sticky error, not a fresh flush.
	if err := w.Close(); err == nil {
		t.Fatal("second Close lost the sticky error")
	}
}

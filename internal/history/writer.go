package history

import (
	"bufio"
	"encoding/json"
	"io"

	"bulksc/internal/chunk"
	"bulksc/internal/mem"
)

// Writer streams a history as NDJSON. It is an observation sink: the
// simulator calls Chunk at each commit instant and Access at each perform
// instant, and the writer serializes without touching simulation state.
// Errors are sticky — the first write failure is retained and every later
// call becomes a no-op, so the hot hooks never need per-call error
// handling; the machine surfaces Close's error once, at end of run.
//
// A Writer is not safe for concurrent use; the simulator is
// single-goroutine per machine.
//
// The encode path deliberately carries no //sim:hotpath annotation:
// JSON encoding allocates by nature, and tracing is opt-in observation
// that is off for every golden, perf and sweep configuration — the
// allocation discipline applies to the machine, not to its export taps.
// TestTraceHashNeutral pins that the taps perturb nothing; perf-relevant
// runs never construct a Writer at all.
//
//sim:observer
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewWriter returns a streaming NDJSON writer over w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// record encodes one record as a single NDJSON line (json.Encoder appends
// the newline).
func (t *Writer) record(v any) {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(v)
}

// Header writes the history header. Version and Format are filled in.
func (t *Writer) Header(h Header) {
	h.Kind = KindHeader
	h.Version = Version
	h.Format = Format
	t.record(&h)
}

// Chunk writes one committed chunk's record from the live chunk state.
// Call at the commit instant, in commit order.
func (t *Writer) Chunk(ch *chunk.Chunk) {
	if t.err != nil {
		return
	}
	rec := ChunkRec{
		Kind:  KindChunk,
		Proc:  ch.Proc,
		Seq:   ch.Seq,
		Order: ch.CommitOrder,
		Ops:   make([]Op, len(ch.Log)),
	}
	for i, a := range ch.Log {
		rec.Ops[i] = Op{Store: a.IsStore, Addr: uint64(a.Addr), Val: a.Value}
	}
	t.record(&rec)
}

// Access writes one conventional architectural access record. Call at the
// perform instant, in perform order.
func (t *Writer) Access(proc int, po uint64, store bool, a mem.Addr, v uint64, fwd bool) {
	t.record(&AccessRec{
		Kind: KindAccess, Proc: proc, PO: po, Store: store,
		Addr: uint64(a), Val: v, Fwd: fwd,
	})
}

// Close flushes buffered records and returns the first error encountered
// anywhere in the stream. The underlying io.Writer is not closed.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	t.err = t.bw.Flush()
	return t.err
}

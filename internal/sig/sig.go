// Package sig implements the hardware address signatures of the Bulk
// architecture (Ceze et al., ISCA 2006) as used by BulkSC.
//
// A signature is a fixed-size superset encoding of a set of cache-line
// addresses. The hardware implementation permutes the address bits and
// accumulates them through a banked Bloom filter: this package models the
// canonical 2 Kbit organization as 2 banks of 1024 bits, with one hash
// function (and therefore one bit) per bank per address — the geometry
// whose false-positive rates at the paper's measured set sizes reproduce
// the paper's aliasing behaviour (≈25% collision rate for the polluted W
// signatures of BSC_base, well under 1% for BSC_dypvt's clean ones).
//
// The primitive operations from the paper's Figure 2(b) are provided:
//
//	∩  Intersects   — could any address be in both signatures?
//	∪  UnionWith    — accumulate another signature
//	=∅ Empty        — has nothing been inserted?
//	∈  MayContain   — membership test for one line
//	δ  CandidateSets— decode into the sets of a set-indexed structure
//
// Because bank 0 hashes the line's low-order bits directly (the identity
// permutation), CandidateSets can decode a signature into cache/directory
// set indices without scanning the whole structure, exactly the "signature
// expansion" operation BulkSC's caches and DirBDM rely on.
//
// An exact (alias-free) implementation backs the paper's BSC_exact
// configuration; both satisfy the Signature interface.
package sig

import (
	"fmt"
	"math"
	"math/bits"

	"bulksc/internal/lineset"
	"bulksc/internal/mem"
)

// Geometry of the modeled Bloom signature.
const (
	Banks     = 2
	BankBits  = 1024
	BankWords = BankBits / 64
	TotalBits = Banks * BankBits // 2 Kbit, as in the paper
	bankMask  = BankBits - 1
	// CompressedBytes is the on-network size of a signature transfer.
	// The paper states signatures compress to ≈350 bits for communication.
	CompressedBytes = 44
)

// Kind distinguishes signature implementations.
type Kind int

const (
	// KindBloom is the banked Bloom-filter encoding (superset, may alias).
	KindBloom Kind = iota
	// KindExact is the "magic" alias-free encoding used by BSC_exact.
	KindExact
)

func (k Kind) String() string {
	if k == KindExact {
		return "exact"
	}
	return "bloom"
}

// Signature is the common interface of both encodings. Implementations are
// not safe for concurrent use; the simulator is single-threaded.
type Signature interface {
	// Add inserts a line address.
	Add(l mem.Line)
	// MayContain reports whether l may be encoded (∈). Exact signatures
	// never report false positives.
	MayContain(l mem.Line) bool
	// Intersects reports whether some address may be in both signatures
	// (∩ followed by =∅). Both operands must have the same Kind.
	Intersects(other Signature) bool
	// UnionWith accumulates other into the receiver (∪).
	UnionWith(other Signature)
	// Empty reports whether nothing has been inserted (=∅).
	Empty() bool
	// Clear resets the signature to empty.
	Clear()
	// CandidateSets decodes the signature (δ) against a structure with
	// nsets sets indexed by the line's low bits. nsets must be a power of
	// two and at most BankBits. The result is a bitmap with bit i set if
	// set i may hold an encoded line.
	CandidateSets(nsets int) SetMask
	// EstimateCount approximates the number of distinct lines inserted.
	EstimateCount() int
	// TransferBytes is the size charged to the network for shipping this
	// signature.
	TransferBytes() int
	// Kind identifies the implementation.
	Kind() Kind
}

// SetMask is a bitmap over up to BankBits set indices.
type SetMask [BankWords]uint64

// Has reports whether set idx is selected.
func (m *SetMask) Has(idx int) bool { return m[idx>>6]&(1<<(uint(idx)&63)) != 0 }

func (m *SetMask) set(idx int) { m[idx>>6] |= 1 << (uint(idx) & 63) }

// Count returns the number of selected sets.
func (m *SetMask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Factory creates fresh signatures of a fixed kind. All components of one
// simulated system must share a factory so signatures stay comparable.
type Factory func() Signature

// NewFactory returns a Factory for the given kind.
func NewFactory(k Kind) Factory {
	if k == KindExact {
		return func() Signature { return NewExact() }
	}
	return func() Signature { return NewBloom() }
}

// ---------------------------------------------------------------------------
// Bloom implementation
// ---------------------------------------------------------------------------

// Bloom is the banked Bloom-filter signature. The zero value is an empty
// signature ready for use.
//
// Alongside the bit banks it caches a per-bank nonempty-word summary (bit
// w of sum[b] set iff banks[b][w] != 0). Intersects and UnionWith walk
// only the words the summary selects, so the arbiter's W-list scan — the
// hottest signature consumer — short-circuits disjoint signatures after a
// single 16-bit AND per bank instead of 16 word ANDs.
type Bloom struct {
	banks [Banks][BankWords]uint64
	sum   [Banks]uint16 // nonempty-word summary, one bit per bank word
	n     int           // insertions (not distinct lines)
}

// NewBloom returns an empty Bloom signature.
func NewBloom() *Bloom { return &Bloom{} }

// hashWindowBits is the number of line-address bits the signature encodes.
// Like the hardware scheme in the Bulk paper, the permutation draws each
// bank's index from bit-fields of a finite window of the (permuted)
// address: lines that differ only above the window alias completely. With
// a 16-bit window (2 MB of 32 B lines), applications whose shared
// structures exceed the window — radix's large scattered arrays, the
// commercial codes' big footprints — suffer genuine signature aliasing,
// while small-footprint applications see almost none. This reproduces the
// aliasing structure the paper's evaluation depends on.
const hashWindowBits = 16

// bankHash returns the bit position of line l within bank b. Bank 0 uses
// the identity on the low-order line bits so that δ decoding into cache or
// directory sets is possible; bank 1 uses the upper field of the address
// window, so together the banks encode the whole window.
func bankHash(b int, l mem.Line) uint32 {
	x := uint32(l) & (1<<hashWindowBits - 1)
	if b == 0 {
		return x & bankMask
	}
	return (x >> 6) & bankMask
}

// Add inserts line l, setting one bit in each bank.
//
//sim:hotpath
func (s *Bloom) Add(l mem.Line) {
	for b := 0; b < Banks; b++ {
		h := bankHash(b, l)
		s.banks[b][h>>6] |= 1 << (h & 63)
		s.sum[b] |= 1 << (h >> 6)
	}
	s.n++
}

// MayContain reports whether l's bit is set in every bank.
//
//sim:hotpath
func (s *Bloom) MayContain(l mem.Line) bool {
	for b := 0; b < Banks; b++ {
		h := bankHash(b, l)
		if s.banks[b][h>>6]&(1<<(h&63)) == 0 {
			return false
		}
	}
	return true
}

// Intersects ANDs the two signatures bank-wise. A genuine common address
// contributes one bit in every bank of the AND, so the signatures may share
// an address only if the AND is non-empty in every bank. This banked rule
// is what gives the encoding its realistic (non-negligible, occupancy-
// dependent) aliasing rate.
//
//sim:hotpath
func (s *Bloom) Intersects(other Signature) bool {
	o, ok := other.(*Bloom)
	if !ok {
		panic(fmt.Sprintf("sig: intersecting bloom with %T", other))
	}
	if s.n == 0 || o.n == 0 {
		return false
	}
	for b := 0; b < Banks; b++ {
		// Word-level fast path: only words nonempty in BOTH operands can
		// contribute to the AND; if no such word exists the bank's AND is
		// empty and the signatures cannot share an address.
		m := s.sum[b] & o.sum[b]
		if m == 0 {
			return false
		}
		hit := false
		for ; m != 0; m &= m - 1 {
			w := bits.TrailingZeros16(m)
			if s.banks[b][w]&o.banks[b][w] != 0 {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// UnionWith ORs other into s, touching only other's nonempty words.
//
//sim:hotpath
func (s *Bloom) UnionWith(other Signature) {
	o, ok := other.(*Bloom)
	if !ok {
		panic(fmt.Sprintf("sig: union of bloom with %T", other))
	}
	for b := 0; b < Banks; b++ {
		for m := o.sum[b]; m != 0; m &= m - 1 {
			w := bits.TrailingZeros16(m)
			s.banks[b][w] |= o.banks[b][w]
		}
		s.sum[b] |= o.sum[b]
	}
	s.n += o.n
}

// Empty reports whether nothing was inserted.
func (s *Bloom) Empty() bool { return s.n == 0 }

// Clear resets to empty.
//
//sim:hotpath
func (s *Bloom) Clear() { *s = Bloom{} }

// CandidateSets decodes bank 0. Because bank 0's hash is the identity on
// the low 9 line bits and a structure's set index is the low log2(nsets)
// line bits, a set is a candidate iff any of its aliasing bank-0 positions
// is set.
//
//sim:hotpath
func (s *Bloom) CandidateSets(nsets int) SetMask {
	if nsets <= 0 || nsets > BankBits || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("sig: CandidateSets with nsets=%d", nsets))
	}
	var m SetMask
	for mw := s.sum[0]; mw != 0; mw &= mw - 1 {
		wi := bits.TrailingZeros16(mw)
		for word := s.banks[0][wi]; word != 0; word &= word - 1 {
			p := wi<<6 + bits.TrailingZeros64(word)
			m.set(p & (nsets - 1))
		}
	}
	return m
}

// EstimateCount estimates distinct insertions from bank-0 occupancy using
// the standard Bloom inversion; cheap and good enough for sizing stats.
func (s *Bloom) EstimateCount() int {
	ones := 0
	for _, w := range s.banks[0] {
		ones += bits.OnesCount64(w)
	}
	return estimateFromOccupancy(BankBits, ones, s.n)
}

// estimateFromOccupancy inverts one-hash-per-bank Bloom occupancy into a
// distinct-insertion estimate: n ≈ -m·ln(1 - ones/m) with m = bankBits.
// The true insertion count n caps the estimate (the estimator can only
// undercount aliasing, never invent insertions) and backstops the
// saturated case. The previous implementation approximated -ln(1-x) with a
// fixed 32-term power series, which converges like x^33 and so
// systematically undercounted dense signatures — at 99% occupancy the
// series yields ~2.63 where the true value is ~4.61, halving the estimate
// exactly in the regime where aliasing statistics matter most.
func estimateFromOccupancy(bankBits, ones, n int) int {
	if ones >= bankBits {
		return n
	}
	est := int(-float64(bankBits)*math.Log(1-float64(ones)/float64(bankBits)) + 0.5)
	if est > n {
		return n
	}
	return est
}

// TransferBytes returns the compressed on-network size.
func (s *Bloom) TransferBytes() int { return CompressedBytes }

// Kind returns KindBloom.
func (s *Bloom) Kind() Kind { return KindBloom }

// ---------------------------------------------------------------------------
// Exact implementation
// ---------------------------------------------------------------------------

// Exact is the alias-free signature used for the BSC_exact configuration:
// an open-addressed set of lines with the same interface and the same
// modeled transfer cost. The lineset backing makes Clear() an in-place
// reset, so pooled chunks recycle exact signatures without reallocation.
type Exact struct {
	lines lineset.Set
}

// NewExact returns an empty exact signature.
func NewExact() *Exact { return &Exact{} }

// Add inserts line l.
func (s *Exact) Add(l mem.Line) { s.lines.Add(l) }

// MayContain is exact membership.
func (s *Exact) MayContain(l mem.Line) bool { return s.lines.Has(l) }

// Intersects is exact set intersection non-emptiness.
func (s *Exact) Intersects(other Signature) bool {
	o, ok := other.(*Exact)
	if !ok {
		panic(fmt.Sprintf("sig: intersecting exact with %T", other))
	}
	a, b := &s.lines, &o.lines
	if b.Len() < a.Len() {
		a, b = b, a
	}
	hit := false
	a.ForEach(func(l mem.Line) {
		if !hit && b.Has(l) {
			hit = true
		}
	})
	return hit
}

// UnionWith inserts all of other's lines.
func (s *Exact) UnionWith(other Signature) {
	o, ok := other.(*Exact)
	if !ok {
		panic(fmt.Sprintf("sig: union of exact with %T", other))
	}
	o.lines.ForEach(func(l mem.Line) { s.lines.Add(l) })
}

// Empty reports whether the set is empty.
func (s *Exact) Empty() bool { return s.lines.Len() == 0 }

// Clear resets the set in place.
func (s *Exact) Clear() { s.lines.Reset() }

// CandidateSets selects exactly the sets of the encoded lines.
func (s *Exact) CandidateSets(nsets int) SetMask {
	if nsets <= 0 || nsets > BankBits || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("sig: CandidateSets with nsets=%d", nsets))
	}
	var m SetMask
	s.lines.ForEach(func(l mem.Line) { m.set(int(uint64(l) & uint64(nsets-1))) })
	return m
}

// EstimateCount is the exact count.
func (s *Exact) EstimateCount() int { return s.lines.Len() }

// TransferBytes matches the Bloom cost: BSC_exact isolates aliasing
// effects, not transfer-size effects.
func (s *Exact) TransferBytes() int { return CompressedBytes }

// Kind returns KindExact.
func (s *Exact) Kind() Kind { return KindExact }

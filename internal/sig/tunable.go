package sig

import (
	"fmt"
	"math/bits"

	"bulksc/internal/mem"
)

// Geometry parameterizes a Bloom signature, opening the design space the
// paper's §6 points at ("there is a large unexplored design space of
// signature size and encoding"): bank count, bits per bank, and the
// address window the hash draws from. The fixed Bloom type is the
// production 2×1024 instance; Tunable signatures trade a little speed for
// configurability and back the signature-geometry ablation experiment.
type Geometry struct {
	// Banks is the number of banks (one bit set per bank per address).
	Banks int
	// BankBits is the size of each bank; a power of two ≥ 512 so that
	// δ-decoding into cache/directory sets still works off bank 0.
	BankBits int
	// WindowBits is how many low-order line-address bits the hash
	// encodes; lines apart by a multiple of 2^WindowBits alias fully.
	WindowBits int
}

// DefaultGeometry is the production configuration (2 Kbit total).
func DefaultGeometry() Geometry { return Geometry{Banks: 2, BankBits: 1024, WindowBits: 16} }

// TotalBits returns the signature size this geometry implies.
func (g Geometry) TotalBits() int { return g.Banks * g.BankBits }

// Valid reports whether the geometry is usable.
func (g Geometry) Valid() error {
	switch {
	case g.Banks < 1 || g.Banks > 8:
		return fmt.Errorf("sig: %d banks unsupported", g.Banks)
	case g.BankBits < 512 || g.BankBits&(g.BankBits-1) != 0:
		return fmt.Errorf("sig: bank size %d must be a power of two ≥ 512", g.BankBits)
	case g.WindowBits < 10 || g.WindowBits > 30:
		return fmt.Errorf("sig: window of %d bits unsupported", g.WindowBits)
	}
	return nil
}

func (g Geometry) String() string {
	return fmt.Sprintf("%dx%db/w%d", g.Banks, g.BankBits, g.WindowBits)
}

// hash returns the bit index in bank b for line l: bank 0 is the identity
// on the low bits (for δ decoding); higher banks take staggered bit fields
// of the address window, like the hardware permutation.
func (g Geometry) hash(b int, l mem.Line) int {
	x := uint64(l) & (1<<uint(g.WindowBits) - 1)
	if b > 0 {
		// Spread the banks' bit-fields evenly so their union covers the
		// window; with the default geometry this reduces to the
		// production hash (bank 1 at shift 6).
		bankSpan := bits.Len(uint(g.BankBits - 1))
		stride := (g.WindowBits - bankSpan) / (g.Banks - 1)
		if stride < 1 {
			stride = 1
		}
		x >>= uint(b * stride)
	}
	return int(x) & (g.BankBits - 1)
}

// Tunable is a Bloom signature with run-time geometry.
type Tunable struct {
	g     Geometry
	banks [][]uint64
	n     int
}

// NewTunable returns an empty signature with geometry g (which must be
// Valid).
func NewTunable(g Geometry) *Tunable {
	if err := g.Valid(); err != nil {
		panic(err)
	}
	banks := make([][]uint64, g.Banks)
	for i := range banks {
		banks[i] = make([]uint64, g.BankBits/64)
	}
	return &Tunable{g: g, banks: banks}
}

// NewTunableFactory returns a Factory producing Tunable signatures.
func NewTunableFactory(g Geometry) Factory {
	if err := g.Valid(); err != nil {
		panic(err)
	}
	return func() Signature { return NewTunable(g) }
}

// Add inserts line l.
func (s *Tunable) Add(l mem.Line) {
	for b := 0; b < s.g.Banks; b++ {
		h := s.g.hash(b, l)
		s.banks[b][h>>6] |= 1 << (uint(h) & 63)
	}
	s.n++
}

// MayContain is the ∈ operation.
func (s *Tunable) MayContain(l mem.Line) bool {
	for b := 0; b < s.g.Banks; b++ {
		h := s.g.hash(b, l)
		if s.banks[b][h>>6]&(1<<(uint(h)&63)) == 0 {
			return false
		}
	}
	return true
}

// Intersects is the ∩/=∅ collision test (AND non-empty in every bank).
func (s *Tunable) Intersects(other Signature) bool {
	o, ok := other.(*Tunable)
	if !ok || o.g != s.g {
		panic("sig: intersecting tunable signatures of different geometry")
	}
	if s.n == 0 || o.n == 0 {
		return false
	}
	for b := 0; b < s.g.Banks; b++ {
		var any uint64
		for w := range s.banks[b] {
			any |= s.banks[b][w] & o.banks[b][w]
		}
		if any == 0 {
			return false
		}
	}
	return true
}

// UnionWith ORs other into s.
func (s *Tunable) UnionWith(other Signature) {
	o, ok := other.(*Tunable)
	if !ok || o.g != s.g {
		panic("sig: union of tunable signatures of different geometry")
	}
	for b := 0; b < s.g.Banks; b++ {
		for w := range s.banks[b] {
			s.banks[b][w] |= o.banks[b][w]
		}
	}
	s.n += o.n
}

// Empty reports no insertions.
func (s *Tunable) Empty() bool { return s.n == 0 }

// Clear resets.
func (s *Tunable) Clear() {
	for b := range s.banks {
		for w := range s.banks[b] {
			s.banks[b][w] = 0
		}
	}
	s.n = 0
}

// CandidateSets decodes bank 0 into set indices.
func (s *Tunable) CandidateSets(nsets int) SetMask {
	if nsets <= 0 || nsets > BankBits || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("sig: CandidateSets with nsets=%d", nsets))
	}
	var m SetMask
	for p := 0; p < s.g.BankBits; p++ {
		if s.banks[0][p>>6]&(1<<(uint(p)&63)) != 0 {
			m.set(p & (nsets - 1))
		}
	}
	return m
}

// EstimateCount approximates distinct insertions from bank-0 occupancy.
func (s *Tunable) EstimateCount() int {
	ones := 0
	for _, w := range s.banks[0] {
		ones += bits.OnesCount64(w)
	}
	return estimateFromOccupancy(s.g.BankBits, ones, s.n)
}

// TransferBytes scales the compressed transfer with the geometry relative
// to the production 2 Kbit instance.
func (s *Tunable) TransferBytes() int {
	b := CompressedBytes * s.g.TotalBits() / 2048
	if b < 8 {
		b = 8
	}
	return b
}

// Kind reports KindBloom (tunable signatures are a Bloom variant).
func (s *Tunable) Kind() Kind { return KindBloom }

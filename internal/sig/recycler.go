package sig

// Recycler recycles standard-geometry Bloom signature objects across
// warm machine runs. A cleared Bloom is bit-for-bit identical to a fresh
// one — the type is a flat struct of fixed-size arrays with no capacity
// history — so drawing a recycled signature instead of allocating is
// invisible to the simulation: only the allocator sees the difference.
//
// Exact and Tunable signatures are deliberately NOT recycled. Exact wraps
// an open-addressed line set whose iteration order depends on its
// capacity growth history, and Tunable's geometry can change between
// runs; Recycle drops both on the floor and Factory passes their
// factories through untouched, so the cold/warm bit-identity argument
// stays confined to the trivially-safe Bloom case.
//
// A Recycler is owned by one machine (the simulator is single-goroutine
// per machine); the nil *Recycler is inert.
type Recycler struct {
	free []*Bloom
}

// Factory wraps inner so it draws from the recycler's freelist. std says
// whether inner produces standard-geometry Blooms — when false (exact
// signatures, tunable geometries), inner is returned unchanged and the
// freelist is not consulted, which is what keeps a Bloom parked by a
// previous run from ever leaking into a run of a different signature
// kind.
func (r *Recycler) Factory(inner Factory, std bool) Factory {
	if r == nil || !std {
		return inner
	}
	return func() Signature {
		if n := len(r.free); n > 0 {
			s := r.free[n-1]
			r.free[n-1] = nil
			r.free = r.free[:n-1]
			return s
		}
		return inner()
	}
}

// Recycle accepts a signature a finished run no longer needs. Standard
// Blooms are cleared and parked for the next run; every other
// implementation (and nil) is ignored. The caller asserts nothing else
// references s.
//
//sim:pool release
func (r *Recycler) Recycle(s Signature) {
	if r == nil {
		return
	}
	if b, ok := s.(*Bloom); ok {
		b.Clear()
		r.free = append(r.free, b)
	}
}

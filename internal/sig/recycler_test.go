package sig

import "testing"

func TestRecyclerReusesClearedBlooms(t *testing.T) {
	var r Recycler
	f := r.Factory(NewFactory(KindBloom), true)

	b := f().(*Bloom)
	b.Add(7)
	b.Add(123)
	r.Recycle(b)

	got := f()
	if got != Signature(b) {
		t.Fatalf("factory did not reuse the recycled Bloom")
	}
	if !got.Empty() {
		t.Fatalf("recycled Bloom not cleared")
	}
	fresh := NewBloom()
	if *got.(*Bloom) != *fresh {
		t.Fatalf("recycled Bloom is not bit-identical to a fresh one")
	}
}

func TestRecyclerDropsNonBloom(t *testing.T) {
	var r Recycler
	e := NewExact()
	e.Add(9)
	r.Recycle(e)
	if len(r.free) != 0 {
		t.Fatalf("recycler retained a non-Bloom signature")
	}
	r.Recycle(nil)
	if len(r.free) != 0 {
		t.Fatalf("recycler retained nil")
	}
}

func TestRecyclerNonStdFactoryPassesThrough(t *testing.T) {
	var r Recycler
	b := NewBloom()
	r.Recycle(b)
	f := r.Factory(NewFactory(KindExact), false)
	if _, ok := f().(*Exact); !ok {
		t.Fatalf("non-std factory consulted the freelist")
	}
	if len(r.free) != 1 {
		t.Fatalf("non-std factory consumed a parked Bloom")
	}
}

func TestNilRecyclerInert(t *testing.T) {
	var r *Recycler
	r.Recycle(NewBloom()) // must not panic
	f := r.Factory(NewFactory(KindBloom), true)
	if _, ok := f().(*Bloom); !ok {
		t.Fatalf("nil recycler broke the inner factory")
	}
}

package sig

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bulksc/internal/mem"
)

func kinds() []Kind { return []Kind{KindBloom, KindExact} }

func TestAddThenMayContain(t *testing.T) {
	for _, k := range kinds() {
		s := NewFactory(k)()
		for i := 0; i < 100; i++ {
			l := mem.Line(i * 17)
			s.Add(l)
			if !s.MayContain(l) {
				t.Fatalf("%v: line %v not contained after Add", k, l)
			}
		}
	}
}

func TestEmptyAndClear(t *testing.T) {
	for _, k := range kinds() {
		s := NewFactory(k)()
		if !s.Empty() {
			t.Fatalf("%v: fresh signature not empty", k)
		}
		s.Add(5)
		if s.Empty() {
			t.Fatalf("%v: signature empty after Add", k)
		}
		s.Clear()
		if !s.Empty() {
			t.Fatalf("%v: signature not empty after Clear", k)
		}
		if s.MayContain(5) {
			t.Fatalf("%v: cleared signature still contains line", k)
		}
	}
}

func TestIntersectsTruePositive(t *testing.T) {
	for _, k := range kinds() {
		a, b := NewFactory(k)(), NewFactory(k)()
		a.Add(100)
		a.Add(200)
		b.Add(300)
		b.Add(200)
		if !a.Intersects(b) || !b.Intersects(a) {
			t.Fatalf("%v: shared line not detected", k)
		}
	}
}

func TestIntersectsEmptyOperand(t *testing.T) {
	for _, k := range kinds() {
		a, b := NewFactory(k)(), NewFactory(k)()
		a.Add(1)
		if a.Intersects(b) || b.Intersects(a) {
			t.Fatalf("%v: intersection with empty signature", k)
		}
	}
}

func TestExactNoFalsePositives(t *testing.T) {
	s := NewExact()
	for i := 0; i < 1000; i++ {
		s.Add(mem.Line(i * 2))
	}
	for i := 0; i < 1000; i++ {
		if s.MayContain(mem.Line(i*2 + 1)) {
			t.Fatal("exact signature reported false positive")
		}
	}
	o := NewExact()
	o.Add(99999)
	if s.Intersects(o) {
		t.Fatal("exact signatures falsely intersect")
	}
}

// Property: Bloom never produces a false negative — every inserted line is
// contained, and two signatures sharing a line always intersect.
func TestQuickBloomSoundness(t *testing.T) {
	f := func(linesA, linesB []uint32, shared uint32) bool {
		a, b := NewBloom(), NewBloom()
		for _, l := range linesA {
			a.Add(mem.Line(l))
		}
		for _, l := range linesB {
			b.Add(mem.Line(l))
		}
		a.Add(mem.Line(shared))
		b.Add(mem.Line(shared))
		for _, l := range linesA {
			if !a.MayContain(mem.Line(l)) {
				return false
			}
		}
		return a.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is a superset — anything contained in either operand is
// contained in the union.
func TestQuickUnionSuperset(t *testing.T) {
	for _, k := range kinds() {
		k := k
		f := func(linesA, linesB []uint32) bool {
			a, b := NewFactory(k)(), NewFactory(k)()
			for _, l := range linesA {
				a.Add(mem.Line(l))
			}
			for _, l := range linesB {
				b.Add(mem.Line(l))
			}
			a.UnionWith(b)
			for _, l := range append(linesA, linesB...) {
				if !a.MayContain(mem.Line(l)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

// Property: CandidateSets covers every inserted line's true set index.
func TestQuickCandidateSetsCover(t *testing.T) {
	for _, k := range kinds() {
		k := k
		f := func(lines []uint32) bool {
			s := NewFactory(k)()
			for _, l := range lines {
				s.Add(mem.Line(l))
			}
			for _, nsets := range []int{64, 128, 512} {
				m := s.CandidateSets(nsets)
				for _, l := range lines {
					if !m.Has(int(l) & (nsets - 1)) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestCandidateSetsBadArgsPanic(t *testing.T) {
	s := NewBloom()
	for _, bad := range []int{0, 3, 2048, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("nsets=%d did not panic", bad)
				}
			}()
			s.CandidateSets(bad)
		}()
	}
}

func TestMixedKindsPanic(t *testing.T) {
	b, e := NewBloom(), NewExact()
	for _, op := range []func(){
		func() { b.Intersects(e) },
		func() { e.Intersects(b) },
		func() { b.UnionWith(e) },
		func() { e.UnionWith(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mixed-kind operation did not panic")
				}
			}()
			op()
		}()
	}
}

// TestBloomAliasingRate checks that the banked encoding shows the aliasing
// behaviour the paper's results depend on: with a W signature polluted by
// ~15 lines intersected against 30-line R signatures of *disjoint*
// addresses, the false-conflict rate is substantial (several percent), and
// with a clean ~2-line W signature it is far lower. The precise numbers
// depend on the hash mix; the test checks ordering and rough magnitude.
func TestBloomAliasingRate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	trial := func(wLines, rLines int) float64 {
		hits := 0
		const trials = 3000
		for i := 0; i < trials; i++ {
			w, rs := NewBloom(), NewBloom()
			used := make(map[mem.Line]bool)
			for j := 0; j < wLines; j++ {
				l := mem.Line(r.Intn(1 << hashWindowBits))
				used[l] = true
				w.Add(l)
			}
			for j := 0; j < rLines; j++ {
				l := mem.Line(r.Intn(1 << hashWindowBits))
				for used[l] {
					l = mem.Line(r.Intn(1 << hashWindowBits))
				}
				rs.Add(l)
			}
			if w.Intersects(rs) {
				hits++
			}
		}
		return float64(hits) / trials
	}
	polluted := trial(15, 30)
	clean := trial(2, 30)
	if polluted < 0.01 {
		t.Errorf("polluted-W aliasing rate %.4f implausibly low", polluted)
	}
	if polluted > 0.60 {
		t.Errorf("polluted-W aliasing rate %.4f implausibly high", polluted)
	}
	if clean > polluted/4 {
		t.Errorf("clean-W rate %.4f not much lower than polluted %.4f", clean, polluted)
	}
}

func TestEstimateCount(t *testing.T) {
	s := NewBloom()
	for i := 0; i < 30; i++ {
		s.Add(mem.Line(i * 1009))
	}
	est := s.EstimateCount()
	if est < 20 || est > 30 {
		t.Errorf("EstimateCount = %d for 30 distinct lines", est)
	}
	e := NewExact()
	e.Add(1)
	e.Add(1)
	e.Add(2)
	if e.EstimateCount() != 2 {
		t.Errorf("exact EstimateCount = %d, want 2", e.EstimateCount())
	}
}

// TestEstimateFromOccupancyAccuracy pins the Bloom-inversion estimator to
// the analytic value -m·ln(1-x) across the full occupancy range. The old
// 32-term power series for -ln(1-x) converges like x^33 and undercounted
// badly once signatures densified: at x=0.99 it returned m·2.63 instead of
// m·4.61. Dense signatures are exactly where the aliasing statistics the
// estimator feeds (Table 3's set sizes for BSC_base) are interesting.
func TestEstimateFromOccupancyAccuracy(t *testing.T) {
	const m = BankBits
	for _, x := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		ones := int(x * m)
		want := int(-float64(m)*math.Log(1-float64(ones)/float64(m)) + 0.5)
		got := estimateFromOccupancy(m, ones, 1<<30) // n cap out of the way
		if got != want {
			t.Errorf("occupancy %.2f: estimate %d, want %d", x, got, want)
		}
		// The estimate must never exceed the known insertion count...
		if capped := estimateFromOccupancy(m, ones, want-1); capped != want-1 {
			t.Errorf("occupancy %.2f: cap not applied: %d", x, capped)
		}
	}
	// ...and saturation falls back to the insertion count.
	if got := estimateFromOccupancy(m, m, 777); got != 777 {
		t.Errorf("saturated estimate = %d, want 777", got)
	}
	// Empty signature estimates zero.
	if got := estimateFromOccupancy(m, 0, 0); got != 0 {
		t.Errorf("empty estimate = %d, want 0", got)
	}
}

// TestEstimateCountDenseSignature: end-to-end check that a densely loaded
// Bloom signature's estimate tracks the true distinct-line count within the
// estimator's statistical error, instead of collapsing to roughly half as
// the truncated series did. Tunable shares the same inversion.
func TestEstimateCountDenseSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, distinct := range []int{200, 800, 2000, 3000} {
		s := NewBloom()
		tn := NewTunable(DefaultGeometry())
		seen := map[mem.Line]bool{}
		for len(seen) < distinct {
			l := mem.Line(rng.Intn(1 << 20))
			if seen[l] {
				continue
			}
			seen[l] = true
			s.Add(l)
			tn.Add(l)
		}
		for _, est := range []int{s.EstimateCount(), tn.EstimateCount()} {
			lo := distinct - distinct/4
			if est < lo || est > distinct {
				t.Errorf("%d distinct lines: estimate %d, want within [%d,%d]", distinct, est, lo, distinct)
			}
		}
	}
}

func TestTransferBytes(t *testing.T) {
	if NewBloom().TransferBytes() != CompressedBytes {
		t.Error("bloom transfer size wrong")
	}
	if NewExact().TransferBytes() != CompressedBytes {
		t.Error("exact transfer size wrong")
	}
}

func TestSetMaskCount(t *testing.T) {
	var m SetMask
	m.set(0)
	m.set(63)
	m.set(64)
	m.set(511)
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
	for _, idx := range []int{0, 63, 64, 511} {
		if !m.Has(idx) {
			t.Errorf("bit %d not set", idx)
		}
	}
	if m.Has(1) || m.Has(100) {
		t.Error("unset bit reported set")
	}
}

func TestKindString(t *testing.T) {
	if KindBloom.String() != "bloom" || KindExact.String() != "exact" {
		t.Error("Kind.String wrong")
	}
}

func BenchmarkBloomAdd(b *testing.B) {
	s := NewBloom()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(mem.Line(i))
	}
}

// BenchmarkBloomIntersect measures the arbiter's hottest signature
// operation on realistically-sized disjoint operands (the common case the
// nonempty-word summary short-circuits).
func BenchmarkBloomIntersect(b *testing.B) {
	x, y := NewBloom(), NewBloom()
	for i := 0; i < 30; i++ {
		x.Add(mem.Line(i * 3))
		y.Add(mem.Line(i*3 + 100000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersects(y)
	}
}

// BenchmarkBloomIntersectHit is the overlapping-operand control: the scan
// must walk shared nonempty words until a bit collision is found.
func BenchmarkBloomIntersectHit(b *testing.B) {
	x, y := NewBloom(), NewBloom()
	for i := 0; i < 30; i++ {
		x.Add(mem.Line(i * 3))
		y.Add(mem.Line(i*3 + 100000))
	}
	y.Add(mem.Line(45)) // one genuinely shared line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersects(y)
	}
}

// BenchmarkBloomUnion measures W-signature accumulation (directory commit
// expansion, arbiter W-list maintenance): only the operand's nonempty
// words are ORed into the accumulator.
func BenchmarkBloomUnion(b *testing.B) {
	acc, w := NewBloom(), NewBloom()
	for i := 0; i < 30; i++ {
		w.Add(mem.Line(i * 17))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.UnionWith(w)
		if i%256 == 0 {
			acc.Clear() // keep occupancy realistic instead of saturating
		}
	}
}

package sig

import (
	"testing"

	"bulksc/internal/mem"
)

// FuzzSigOps differentially tests every signature implementation (the
// production Bloom, two Tunable geometries, and Exact) against an exact
// set-of-lines reference model over an arbitrary operation stream.
//
// The contract under fuzz:
//
//   - No false negatives, ever: if the reference model contains a line
//     (or two models share a line), MayContain/Intersects must say so.
//     A false negative is a missed conflict — a silent SC violation in
//     the simulated machine.
//   - CandidateSets is a superset decode: every encoded line's set index
//     must be selected.
//   - EstimateCount never exceeds the insertion count and never reports
//     zero for a non-empty signature.
//   - Clear restores a genuinely empty signature (the pool-reuse path:
//     chunks recycle signatures in place).
//   - Exact signatures are exact: membership and intersection equal the
//     reference model precisely.
//
// The operation stream encoding: each step consumes 3 bytes — an opcode
// byte and a 2-byte little-endian line operand.
func FuzzSigOps(f *testing.F) {
	// Seed corpus: checked-in files live in testdata/fuzz/FuzzSigOps.
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 2, 1, 0, 3, 0, 0})
	f.Add([]byte{0, 10, 0, 1, 10, 0, 3, 0, 0, 4, 0, 0, 5, 0, 0, 6, 0, 0})
	seq := make([]byte, 0, 300)
	for i := 0; i < 100; i++ {
		seq = append(seq, byte(i%8), byte(i*37), byte(i/3))
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		impls := []struct {
			name  string
			mk    Factory
			exact bool
		}{
			{"bloom", func() Signature { return NewBloom() }, false},
			{"tunable-default", NewTunableFactory(DefaultGeometry()), false},
			{"tunable-small", NewTunableFactory(Geometry{Banks: 4, BankBits: 512, WindowBits: 12}), false},
			{"exact", func() Signature { return NewExact() }, true},
		}
		for _, im := range impls {
			runSigOps(t, im.name, im.mk, im.exact, data)
		}
	})
}

func runSigOps(t *testing.T, name string, mk Factory, exact bool, data []byte) {
	a, b := mk(), mk()
	modelA := map[mem.Line]bool{}
	modelB := map[mem.Line]bool{}
	insertsA, insertsB := 0, 0

	modelsIntersect := func() bool {
		for l := range modelA {
			if modelB[l] {
				return true
			}
		}
		return false
	}

	for i := 0; i+2 < len(data); i += 3 {
		op := data[i] % 8
		l := mem.Line(uint16(data[i+1]) | uint16(data[i+2])<<8)
		switch op {
		case 0:
			a.Add(l)
			modelA[l] = true
			insertsA++
		case 1:
			b.Add(l)
			modelB[l] = true
			insertsB++
		case 2:
			if modelA[l] && !a.MayContain(l) {
				t.Fatalf("%s: false negative: MayContain(%d) = false, line was inserted", name, l)
			}
			if exact && a.MayContain(l) != modelA[l] {
				t.Fatalf("%s: inexact membership for line %d", name, l)
			}
		case 3:
			got := a.Intersects(b)
			want := modelsIntersect()
			if want && !got {
				t.Fatalf("%s: false negative: Intersects = false but models share a line", name)
			}
			if exact && got != want {
				t.Fatalf("%s: inexact intersection: got %v want %v", name, got, want)
			}
		case 4:
			a.UnionWith(b)
			for l := range modelB {
				modelA[l] = true
			}
			insertsA += insertsB
		case 5:
			a.Clear()
			modelA = map[mem.Line]bool{}
			insertsA = 0
			if !a.Empty() {
				t.Fatalf("%s: not Empty after Clear", name)
			}
		case 6:
			if a.Empty() != (len(modelA) == 0) {
				t.Fatalf("%s: Empty() = %v with %d model lines", name, a.Empty(), len(modelA))
			}
			est := a.EstimateCount()
			if est > insertsA {
				t.Fatalf("%s: EstimateCount %d exceeds %d insertions", name, est, insertsA)
			}
			if len(modelA) > 0 && est < 1 {
				t.Fatalf("%s: EstimateCount %d for a non-empty signature", name, est)
			}
			if exact && est != len(modelA) {
				t.Fatalf("%s: EstimateCount %d, want exactly %d", name, est, len(modelA))
			}
		case 7:
			const nsets = 512 // ≤ BankBits for every tested geometry
			mask := a.CandidateSets(nsets)
			for l := range modelA {
				if !mask.Has(int(uint64(l) & (nsets - 1))) {
					t.Fatalf("%s: CandidateSets dropped set %d of encoded line %d", name, uint64(l)&(nsets-1), l)
				}
			}
		}
	}

	// Post-stream sweep: every model line must still test positive.
	for l := range modelA {
		if !a.MayContain(l) {
			t.Fatalf("%s: final false negative for line %d", name, l)
		}
	}
}

package sig

import (
	"testing"
	"testing/quick"

	"bulksc/internal/mem"
)

func geoms() []Geometry {
	return []Geometry{
		DefaultGeometry(),
		{Banks: 1, BankBits: 2048, WindowBits: 16},
		{Banks: 4, BankBits: 512, WindowBits: 16},
		{Banks: 2, BankBits: 2048, WindowBits: 18},
	}
}

func TestTunableSoundness(t *testing.T) {
	for _, g := range geoms() {
		f := func(lines []uint32, shared uint32) bool {
			a, b := NewTunable(g), NewTunable(g)
			for _, l := range lines {
				a.Add(mem.Line(l))
				if !a.MayContain(mem.Line(l)) {
					return false
				}
			}
			a.Add(mem.Line(shared))
			b.Add(mem.Line(shared))
			return a.Intersects(b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}

func TestTunableCandidateSetsCover(t *testing.T) {
	for _, g := range geoms() {
		s := NewTunable(g)
		for i := 0; i < 50; i++ {
			s.Add(mem.Line(i * 37))
		}
		m := s.CandidateSets(256)
		for i := 0; i < 50; i++ {
			if !m.Has((i * 37) & 255) {
				t.Fatalf("%v: candidate set missing for line %d", g, i*37)
			}
		}
	}
}

func TestTunableMatchesProductionGeometry(t *testing.T) {
	// The production Bloom and a Tunable with DefaultGeometry must agree
	// on membership and intersection verdicts for any inputs.
	f := func(linesA, linesB []uint16, probe uint16) bool {
		pa, pb := NewBloom(), NewBloom()
		ta, tb := NewTunable(DefaultGeometry()), NewTunable(DefaultGeometry())
		for _, l := range linesA {
			pa.Add(mem.Line(l))
			ta.Add(mem.Line(l))
		}
		for _, l := range linesB {
			pb.Add(mem.Line(l))
			tb.Add(mem.Line(l))
		}
		if pa.MayContain(mem.Line(probe)) != ta.MayContain(mem.Line(probe)) {
			return false
		}
		return pa.Intersects(pb) == ta.Intersects(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTunableUnionClear(t *testing.T) {
	g := DefaultGeometry()
	a, b := NewTunable(g), NewTunable(g)
	a.Add(1)
	b.Add(2)
	a.UnionWith(b)
	if !a.MayContain(1) || !a.MayContain(2) {
		t.Fatal("union lost a member")
	}
	a.Clear()
	if !a.Empty() || a.MayContain(1) {
		t.Fatal("clear failed")
	}
}

func TestTunableTransferScales(t *testing.T) {
	small := NewTunable(Geometry{Banks: 1, BankBits: 512, WindowBits: 16})
	big := NewTunable(Geometry{Banks: 4, BankBits: 2048, WindowBits: 16})
	if small.TransferBytes() >= big.TransferBytes() {
		t.Fatal("transfer size does not scale with geometry")
	}
	if NewTunable(DefaultGeometry()).TransferBytes() != CompressedBytes {
		t.Fatal("default geometry transfer size mismatch")
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, bad := range []Geometry{
		{Banks: 0, BankBits: 1024, WindowBits: 16},
		{Banks: 9, BankBits: 1024, WindowBits: 16},
		{Banks: 2, BankBits: 300, WindowBits: 16},
		{Banks: 2, BankBits: 1024, WindowBits: 5},
	} {
		if bad.Valid() == nil {
			t.Errorf("geometry %v accepted", bad)
		}
	}
	if DefaultGeometry().Valid() != nil {
		t.Error("default geometry rejected")
	}
	if DefaultGeometry().TotalBits() != 2048 {
		t.Error("default geometry is not 2 Kbit")
	}
}

func TestTunableMixedGeometryPanics(t *testing.T) {
	a := NewTunable(DefaultGeometry())
	b := NewTunable(Geometry{Banks: 4, BankBits: 512, WindowBits: 16})
	defer func() {
		if recover() == nil {
			t.Error("mixed-geometry intersection did not panic")
		}
	}()
	a.Intersects(b)
}

// Package bdm models the Bulk Disambiguation Module attached to each L1
// cache: the hardware that owns the signatures, performs bulk
// disambiguation against incoming committing W signatures, and implements
// the dynamically-private-data machinery of paper §5.2 (the Wpriv
// signature lives in internal/chunk; the ≈24-line Private Buffer lives
// here).
package bdm

import (
	"bulksc/internal/chunk"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// DefaultPrivBufLines is the paper's private-buffer capacity ("≈24 lines").
const DefaultPrivBufLines = 24

// PrivEntry is one saved pre-update line version.
type PrivEntry struct {
	Line mem.Line
	Slot int // chunk slot whose first private write saved it
	Vals [mem.WordsPerLn]uint64
}

// PrivateBuffer holds the pre-update versions of lines written under the
// dynamically-private optimization. On squash, entries restore the old
// values; on commit, they are discarded (the write-back was skipped for
// good). Overflow evicts an entry, which must be written back and promoted
// to the W signature by the caller.
type PrivateBuffer struct {
	capacity int
	entries  map[mem.Line]PrivEntry
	order    []mem.Line // FIFO for overflow eviction
}

// NewPrivateBuffer returns a buffer holding up to capacity lines.
func NewPrivateBuffer(capacity int) *PrivateBuffer {
	return &PrivateBuffer{capacity: capacity, entries: make(map[mem.Line]PrivEntry)}
}

// Len returns the number of buffered lines.
func (b *PrivateBuffer) Len() int { return len(b.entries) }

// Has reports whether l is buffered.
func (b *PrivateBuffer) Has(l mem.Line) bool {
	_, ok := b.entries[l]
	return ok
}

// Save records the pre-update version of l for chunk slot. If l is already
// buffered (written privately by an earlier chunk in flight) the original
// version is kept and saved=true. If the buffer is full, the new line is
// NOT saved (saved=false): per §5.2 the overflowing line is written back
// and its address added to W — the caller routes the write through the
// ordinary shared path.
func (b *PrivateBuffer) Save(l mem.Line, slot int, vals [mem.WordsPerLn]uint64) (saved bool) {
	if _, ok := b.entries[l]; ok {
		return true
	}
	if len(b.entries) >= b.capacity {
		return false
	}
	b.entries[l] = PrivEntry{Line: l, Slot: slot, Vals: vals}
	b.order = append(b.order, l)
	return true
}

// Take removes and returns the entry for l — the "supply the old version"
// path when another processor demands a privately-written line.
func (b *PrivateBuffer) Take(l mem.Line) (PrivEntry, bool) {
	e, ok := b.entries[l]
	if ok {
		delete(b.entries, l)
	}
	return e, ok
}

// DrainSlot removes and returns every entry saved by chunk slot. Used both
// on commit (entries discarded — the write-back was successfully skipped)
// and on squash (entries restore the old line versions).
func (b *PrivateBuffer) DrainSlot(slot int) []PrivEntry {
	var out []PrivEntry
	for l, e := range b.entries {
		if e.Slot == slot {
			out = append(out, e)
			delete(b.entries, l)
		}
	}
	return out
}

// Clear empties the buffer.
func (b *PrivateBuffer) Clear() {
	b.entries = make(map[mem.Line]PrivEntry)
	b.order = b.order[:0]
}

// Disambiguate performs bulk disambiguation of an incoming committing W
// signature against a processor's in-flight chunks, oldest first. It
// returns the index of the oldest conflicting *active* chunk (the squash
// point — that chunk and all successors must be squashed, per §4.1.2) or
// -1, plus whether the oldest conflict shares a genuine line with the
// committer's exact write set (vs. pure signature aliasing).
func Disambiguate(wc sig.Signature, trueW map[mem.Line]struct{}, chunks []*chunk.Chunk) (squashFrom int, genuine bool) {
	for i, c := range chunks {
		if c == nil || !c.Active() {
			continue
		}
		if hit, g := c.ConflictsWith(wc, trueW); hit {
			return i, g
		}
	}
	return -1, false
}

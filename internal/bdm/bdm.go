// Package bdm models the Bulk Disambiguation Module attached to each L1
// cache: the hardware that owns the signatures, performs bulk
// disambiguation against incoming committing W signatures, and implements
// the dynamically-private-data machinery of paper §5.2 (the Wpriv
// signature lives in internal/chunk; the ≈24-line Private Buffer lives
// here).
package bdm

import (
	"bulksc/internal/chunk"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// DefaultPrivBufLines is the paper's private-buffer capacity ("≈24 lines").
const DefaultPrivBufLines = 24

// PrivEntry is one saved pre-update line version.
type PrivEntry struct {
	Line mem.Line
	Slot int // chunk slot whose first private write saved it
	Vals [mem.WordsPerLn]uint64
}

// PrivateBuffer holds the pre-update versions of lines written under the
// dynamically-private optimization. On squash, entries restore the old
// values; on commit, they are discarded (the write-back was skipped for
// good). Overflow evicts an entry, which must be written back and promoted
// to the W signature by the caller.
//
// The buffer is a flat slice scanned linearly: at the paper's ≈24-line
// capacity that is faster than any hashed structure, allocation-free in
// steady state, and — unlike the map it replaces — iterates in
// deterministic insertion order.
type PrivateBuffer struct {
	capacity int
	entries  []PrivEntry // insertion order; also the FIFO for overflow
}

// NewPrivateBuffer returns a buffer holding up to capacity lines.
func NewPrivateBuffer(capacity int) *PrivateBuffer {
	return &PrivateBuffer{capacity: capacity, entries: make([]PrivEntry, 0, capacity)}
}

// Len returns the number of buffered lines.
func (b *PrivateBuffer) Len() int { return len(b.entries) }

func (b *PrivateBuffer) find(l mem.Line) int {
	for i := range b.entries {
		if b.entries[i].Line == l {
			return i
		}
	}
	return -1
}

// Has reports whether l is buffered.
func (b *PrivateBuffer) Has(l mem.Line) bool { return b.find(l) >= 0 }

// Save records the pre-update version of l for chunk slot. If l is already
// buffered (written privately by an earlier chunk in flight) the original
// version is kept and saved=true. If the buffer is full, the new line is
// NOT saved (saved=false): per §5.2 the overflowing line is written back
// and its address added to W — the caller routes the write through the
// ordinary shared path.
func (b *PrivateBuffer) Save(l mem.Line, slot int, vals [mem.WordsPerLn]uint64) (saved bool) {
	if b.find(l) >= 0 {
		return true
	}
	if len(b.entries) >= b.capacity {
		return false
	}
	b.entries = append(b.entries, PrivEntry{Line: l, Slot: slot, Vals: vals})
	return true
}

// Take removes and returns the entry for l — the "supply the old version"
// path when another processor demands a privately-written line.
func (b *PrivateBuffer) Take(l mem.Line) (PrivEntry, bool) {
	i := b.find(l)
	if i < 0 {
		return PrivEntry{}, false
	}
	e := b.entries[i]
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	return e, true
}

// DrainSlot removes every entry saved by chunk slot, appends them to dst
// (which may be nil) and returns it. Used both on commit (entries
// discarded — the write-back was successfully skipped) and on squash
// (entries restore the old line versions). Entries come out in insertion
// order.
func (b *PrivateBuffer) DrainSlot(slot int, dst []PrivEntry) []PrivEntry {
	kept := b.entries[:0]
	for _, e := range b.entries {
		if e.Slot == slot {
			dst = append(dst, e)
		} else {
			kept = append(kept, e)
		}
	}
	b.entries = kept
	return dst
}

// Clear empties the buffer.
func (b *PrivateBuffer) Clear() { b.entries = b.entries[:0] }

// Disambiguate performs bulk disambiguation of an incoming committing W
// signature against a processor's in-flight chunks, oldest first. It
// returns the index of the oldest conflicting *active* chunk (the squash
// point — that chunk and all successors must be squashed, per §4.1.2) or
// -1, plus whether the oldest conflict shares a genuine line with the
// committer's exact write set (vs. pure signature aliasing).
func Disambiguate(wc sig.Signature, trueW *lineset.Set, chunks []*chunk.Chunk) (squashFrom int, genuine bool) {
	for i, c := range chunks {
		if c == nil || !c.Active() {
			continue
		}
		if hit, g := c.ConflictsWith(wc, trueW); hit {
			return i, g
		}
	}
	return -1, false
}

// DisambiguateSummary is Disambiguate guarded by the processor's live
// summary signature (chunk.Sum wiring, DESIGN.md §16). sum conservatively
// contains every line in every active chunk's R and W: the per-access
// mirror inserts lines as the chunks do, and rebuilds on squash/commit
// retirement only shrink it back to the exact union. Signature
// intersection is monotone in either operand — if wc ∩ c.R (or c.W) is
// nonempty in every bank, then wc ∩ sum is too, since sum's banks are
// bitwise supersets — so a non-intersecting summary proves no chunk can
// conflict and the whole walk (the common case: disjoint working sets) is
// one word-masked Intersects. Aliasing false positives merely fall
// through to the precise per-chunk walk. A nil sum disables the filter.
//
//sim:hotpath
func DisambiguateSummary(wc sig.Signature, sum sig.Signature, trueW *lineset.Set, chunks []*chunk.Chunk) (squashFrom int, genuine bool) {
	if sum != nil && !wc.Intersects(sum) {
		return -1, false
	}
	return Disambiguate(wc, trueW, chunks)
}

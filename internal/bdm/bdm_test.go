package bdm

import (
	"testing"
	"testing/quick"

	"bulksc/internal/chunk"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

func vals(seed uint64) [mem.WordsPerLn]uint64 {
	var v [mem.WordsPerLn]uint64
	for i := range v {
		v[i] = seed + uint64(i)
	}
	return v
}

func TestPrivateBufferSaveTake(t *testing.T) {
	b := NewPrivateBuffer(4)
	if b.Has(1) {
		t.Fatal("empty buffer claims a line")
	}
	if !b.Save(1, 0, vals(10)) {
		t.Fatal("save failed on empty buffer")
	}
	if !b.Has(1) || b.Len() != 1 {
		t.Fatal("saved line missing")
	}
	e, ok := b.Take(1)
	if !ok || e.Vals != vals(10) || e.Slot != 0 {
		t.Fatal("Take returned wrong entry")
	}
	if b.Has(1) || b.Len() != 0 {
		t.Fatal("Take did not remove entry")
	}
}

func TestSaveKeepsOriginalVersion(t *testing.T) {
	b := NewPrivateBuffer(4)
	b.Save(1, 0, vals(10))
	b.Save(1, 1, vals(99)) // second save of same line: original must win
	e, _ := b.Take(1)
	if e.Vals != vals(10) {
		t.Fatal("second Save overwrote the original pre-update version")
	}
}

func TestOverflowRejectsNewLine(t *testing.T) {
	b := NewPrivateBuffer(2)
	b.Save(1, 0, vals(1))
	b.Save(2, 0, vals(2))
	if b.Save(3, 0, vals(3)) {
		t.Fatal("save succeeded on full buffer")
	}
	if !b.Has(1) || !b.Has(2) || b.Has(3) {
		t.Fatal("buffer contents wrong after overflow")
	}
	// A line already buffered still reports saved even when full.
	if !b.Save(1, 1, vals(9)) {
		t.Fatal("re-save of buffered line rejected")
	}
}

func TestRoomAfterTake(t *testing.T) {
	b := NewPrivateBuffer(2)
	b.Save(1, 0, vals(1))
	b.Save(2, 0, vals(2))
	b.Take(1) // removed out of band
	if !b.Save(3, 0, vals(3)) {
		t.Fatal("save failed despite free space")
	}
	if !b.Has(2) || !b.Has(3) {
		t.Fatal("entry lost")
	}
}

func TestDrainSlot(t *testing.T) {
	b := NewPrivateBuffer(8)
	b.Save(1, 0, vals(1))
	b.Save(2, 1, vals(2))
	b.Save(3, 0, vals(3))
	got := b.DrainSlot(0, nil)
	if len(got) != 2 {
		t.Fatalf("DrainSlot(0) returned %d entries, want 2", len(got))
	}
	if got[0].Line != 1 || got[1].Line != 3 {
		t.Fatalf("DrainSlot order wrong: %d, %d (want insertion order 1, 3)", got[0].Line, got[1].Line)
	}
	if b.Has(1) || b.Has(3) || !b.Has(2) {
		t.Fatal("DrainSlot removed wrong entries")
	}
	// Draining appends to the caller's buffer without clobbering it.
	scratch := got[:0]
	scratch = b.DrainSlot(1, scratch)
	if len(scratch) != 1 || scratch[0].Line != 2 || b.Len() != 0 {
		t.Fatal("DrainSlot into reused scratch buffer wrong")
	}
}

func TestClear(t *testing.T) {
	b := NewPrivateBuffer(8)
	b.Save(1, 0, vals(1))
	b.Clear()
	if b.Len() != 0 || b.Has(1) {
		t.Fatal("Clear left entries")
	}
	// capacity must be fully available again after Clear.
	for i := mem.Line(10); i < 18; i++ {
		if !b.Save(i, 0, vals(uint64(i))) {
			t.Fatalf("save of line %d failed after Clear", i)
		}
	}
}

// Property: buffer never exceeds capacity.
func TestQuickCapacityBound(t *testing.T) {
	f := func(lines []uint16) bool {
		b := NewPrivateBuffer(DefaultPrivBufLines)
		for _, l := range lines {
			b.Save(mem.Line(l), 0, vals(uint64(l)))
			if b.Len() > DefaultPrivBufLines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mkChunk(proc int, seq uint64, reads, writes []mem.Line) *chunk.Chunk {
	c := chunk.New(sig.NewFactory(sig.KindExact), nil, proc, seq, int(seq)%2, 0, 1000)
	for _, l := range reads {
		c.RecordLoad(l.Addr(), 0, false)
	}
	for _, l := range writes {
		c.RecordStore(l.Addr(), 1, false)
	}
	return c
}

func TestDisambiguateFindsOldest(t *testing.T) {
	c0 := mkChunk(0, 0, []mem.Line{10}, nil)
	c1 := mkChunk(0, 1, []mem.Line{10, 20}, nil)
	wc := sig.NewExact()
	wc.Add(10)
	idx, genuine := Disambiguate(wc, lineset.NewSetOf(10), []*chunk.Chunk{c0, c1})
	if idx != 0 || !genuine {
		t.Fatalf("Disambiguate = (%d, %v), want (0, true)", idx, genuine)
	}
}

func TestDisambiguateSkipsInactive(t *testing.T) {
	c0 := mkChunk(0, 0, []mem.Line{10}, nil)
	c0.State = chunk.Committing // already granted: immune
	c1 := mkChunk(0, 1, []mem.Line{10}, nil)
	wc := sig.NewExact()
	wc.Add(10)
	idx, _ := Disambiguate(wc, nil, []*chunk.Chunk{c0, c1})
	if idx != 1 {
		t.Fatalf("Disambiguate = %d, want 1 (committing chunk is immune)", idx)
	}
}

func TestDisambiguateNilAndClean(t *testing.T) {
	c1 := mkChunk(0, 1, []mem.Line{20}, nil)
	wc := sig.NewExact()
	wc.Add(10)
	idx, _ := Disambiguate(wc, nil, []*chunk.Chunk{nil, c1})
	if idx != -1 {
		t.Fatalf("Disambiguate = %d, want -1", idx)
	}
}

package directory

import (
	"testing"

	"bulksc/internal/arbiter"
	"bulksc/internal/cache"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
)

// fakePort records the directory's calls to one cache.
type fakePort struct {
	invalidated []mem.Line
	commits     []*Commit
	dirtyLines  map[mem.Line]bool
}

func newFakePort() *fakePort { return &fakePort{dirtyLines: make(map[mem.Line]bool)} }

func (f *fakePort) ApplyInvalidate(l mem.Line) { f.invalidated = append(f.invalidated, l) }
func (f *fakePort) ApplyCommit(c *Commit)      { f.commits = append(f.commits, c) }
func (f *fakePort) SnoopDirty(l mem.Line) (bool, bool) {
	had := f.dirtyLines[l]
	delete(f.dirtyLines, l)
	return had, had
}
func (f *fakePort) SnoopInvalidate(l mem.Line) bool {
	had := f.dirtyLines[l]
	delete(f.dirtyLines, l)
	f.invalidated = append(f.invalidated, l)
	return had
}

type dirHarness struct {
	eng   *sim.Engine
	st    *stats.Stats
	dir   *Directory
	ports []*fakePort
	done  []arbiter.Token
}

func newDirHarness(nprocs int) *dirHarness {
	h := &dirHarness{eng: sim.NewEngine(1), st: stats.New()}
	nw := network.New(h.eng, h.st)
	l2 := cache.NewL2(1024, 8)
	h.dir = New(0, 1, h.eng, nw, h.st, l2)
	var ports []CachePort
	for i := 0; i < nprocs; i++ {
		fp := newFakePort()
		h.ports = append(h.ports, fp)
		ports = append(ports, fp)
	}
	h.dir.AttachPorts(ports)
	h.dir.OnDone = func(tok arbiter.Token) { h.done = append(h.done, tok) }
	return h
}

func (h *dirHarness) read(proc int, l mem.Line, excl bool) cache.LineState {
	var got cache.LineState
	replied := false
	h.dir.Read(proc, l, excl, func(st int) { got = cache.LineState(st); replied = true })
	h.eng.Run(nil)
	if !replied {
		panic("read never completed")
	}
	return got
}

func TestFirstReadGrantsExclusive(t *testing.T) {
	h := newDirHarness(2)
	if st := h.read(0, 100, false); st != cache.Excl {
		t.Fatalf("first read granted %v, want Excl", st)
	}
	sharers, dirty, _ := h.dir.State(100)
	if sharers != 1 || dirty {
		t.Fatalf("state = (%b, %v), want sharer 0 only, clean", sharers, dirty)
	}
	if h.st.L2Misses != 1 {
		t.Fatal("cold read did not miss L2")
	}
}

func TestSecondReadGrantsShared(t *testing.T) {
	h := newDirHarness(2)
	h.read(0, 100, false)
	if st := h.read(1, 100, false); st != cache.Shared {
		t.Fatalf("second read granted %v, want Shared", st)
	}
	sharers, _, _ := h.dir.State(100)
	if sharers != 0b11 {
		t.Fatalf("sharers = %b, want both", sharers)
	}
	if h.st.L2Hits != 1 {
		t.Fatal("warm read did not hit L2")
	}
}

func TestReadExclInvalidatesSharers(t *testing.T) {
	h := newDirHarness(3)
	h.read(0, 100, false)
	h.read(1, 100, false)
	if st := h.read(2, 100, true); st != cache.Dirty {
		t.Fatalf("excl read granted %v, want Dirty", st)
	}
	sharers, dirty, owner := h.dir.State(100)
	if sharers != 0b100 || !dirty || owner != 2 {
		t.Fatalf("state = (%b, %v, %d)", sharers, dirty, owner)
	}
	if len(h.ports[0].invalidated) != 1 || len(h.ports[1].invalidated) != 1 {
		t.Fatal("sharers not invalidated")
	}
	if len(h.ports[2].invalidated) != 0 {
		t.Fatal("requester invalidated itself")
	}
	if h.st.ConvInvalidations != 2 {
		t.Fatalf("ConvInvalidations = %d, want 2", h.st.ConvInvalidations)
	}
}

func TestReadFromDirtyOwnerForwards(t *testing.T) {
	h := newDirHarness(2)
	h.read(0, 100, true)
	h.ports[0].dirtyLines[100] = true
	if st := h.read(1, 100, false); st != cache.Shared {
		t.Fatalf("read granted %v, want Shared", st)
	}
	sharers, dirty, _ := h.dir.State(100)
	if dirty || sharers != 0b11 {
		t.Fatalf("state after forward = (%b, %v)", sharers, dirty)
	}
	if h.st.Writebacks == 0 {
		t.Fatal("owner forward did not produce a writeback")
	}
}

func TestFalseOwnerRecovery(t *testing.T) {
	h := newDirHarness(2)
	h.read(0, 100, true)
	// Proc 0 does NOT have the line dirty (false owner).
	if st := h.read(1, 100, false); st != cache.Shared {
		t.Fatalf("read granted %v, want Shared", st)
	}
	sharers, dirty, _ := h.dir.State(100)
	if dirty {
		t.Fatal("dirty bit survived false-owner recovery")
	}
	if sharers&1 != 0 {
		t.Fatal("false owner still recorded as sharer")
	}
}

func TestWriteExclFromDirtyOwner(t *testing.T) {
	h := newDirHarness(2)
	h.read(0, 100, true)
	h.ports[0].dirtyLines[100] = true
	if st := h.read(1, 100, true); st != cache.Dirty {
		t.Fatalf("excl read granted %v, want Dirty", st)
	}
	if len(h.ports[0].invalidated) != 1 {
		t.Fatal("old owner not invalidated")
	}
	_, dirty, owner := h.dir.State(100)
	if !dirty || owner != 1 {
		t.Fatal("ownership not transferred")
	}
}

func TestWritebackClearsDirty(t *testing.T) {
	h := newDirHarness(2)
	h.read(0, 100, true)
	h.dir.Writeback(0, 100, false)
	h.eng.Run(nil)
	sharers, dirty, _ := h.dir.State(100)
	if dirty || sharers != 1 {
		t.Fatalf("state after writeback = (%b, %v)", sharers, dirty)
	}
	h.dir.Writeback(0, 100, true)
	h.eng.Run(nil)
	sharers, _, _ = h.dir.State(100)
	if sharers != 0 {
		t.Fatal("drop writeback did not clear sharer")
	}
}

// --- BulkSC commit path ---------------------------------------------------

func commitOf(proc int, tok arbiter.Token, lines ...mem.Line) *Commit {
	w := sig.NewExact()
	trueW := &lineset.Set{}
	for _, l := range lines {
		w.Add(l)
		trueW.Add(l)
	}
	return &Commit{Tok: tok, Proc: proc, W: w, TrueW: trueW}
}

func TestCommitCase2TransfersOwnership(t *testing.T) {
	h := newDirHarness(3)
	h.read(0, 100, false) // committer fetched the line (sharer)
	h.read(1, 100, false) // another sharer
	h.read(2, 200, false) // unrelated
	h.dir.ProcessCommit(commitOf(0, 1, 100))
	h.eng.Run(nil)
	sharers, dirty, owner := h.dir.State(100)
	if sharers != 0b001 || !dirty || owner != 0 {
		t.Fatalf("state = (%b, %v, %d), want committer-owned dirty", sharers, dirty, owner)
	}
	if len(h.ports[1].commits) != 1 {
		t.Fatal("sharer did not receive W signature")
	}
	if len(h.ports[2].commits) != 0 {
		t.Fatal("non-sharer received W signature")
	}
	if len(h.done) != 1 || h.done[0] != 1 {
		t.Fatalf("OnDone = %v, want [1]", h.done)
	}
	if h.st.WSigNodeSends != 1 {
		t.Fatalf("WSigNodeSends = %d, want 1", h.st.WSigNodeSends)
	}
	if h.st.DirUpdates != 1 || h.st.DirBadUpdates != 0 {
		t.Fatalf("updates = %d/%d", h.st.DirUpdates, h.st.DirBadUpdates)
	}
}

func TestCommitNoSharersCompletesImmediately(t *testing.T) {
	h := newDirHarness(2)
	h.read(0, 100, false)
	h.dir.ProcessCommit(commitOf(0, 7, 100))
	h.eng.Run(nil)
	if len(h.done) != 1 {
		t.Fatal("commit without sharers did not complete")
	}
	if h.st.WSigNodeSends != 0 {
		t.Fatal("W forwarded with empty invalidation list")
	}
}

func TestCommitCase1And3AreNoOps(t *testing.T) {
	h := newDirHarness(3)
	// Case 1: line shared by others, committer not a sharer.
	h.read(1, 100, false)
	// Case 3: line dirty at another proc, committer not a sharer.
	h.read(2, 200, true)
	h.dir.ProcessCommit(commitOf(0, 2, 100, 200))
	h.eng.Run(nil)
	s1, d1, _ := h.dir.State(100)
	if s1 != 0b010 || d1 {
		t.Fatal("case-1 entry mutated")
	}
	_, d2, o2 := h.dir.State(200)
	if !d2 || o2 != 2 {
		t.Fatal("case-3 entry mutated")
	}
	if len(h.ports[1].commits)+len(h.ports[2].commits) != 0 {
		t.Fatal("no-op cases forwarded W")
	}
	if h.st.DirLookups != 2 {
		t.Fatalf("DirLookups = %d, want 2", h.st.DirLookups)
	}
	// Neither line was truly... both were truly written per TrueW, so no
	// unnecessary lookups.
	if h.st.DirUnnecessary != 0 {
		t.Fatal("unnecessary lookups miscounted")
	}
}

func TestCommitAliasedLookupCounted(t *testing.T) {
	h := newDirHarness(2)
	h.read(1, 300, false)
	// Committer's exact set is {100} but the (exact) signature also
	// carries 300 to emulate aliasing deterministically.
	c := commitOf(0, 3, 100)
	c.W.Add(300)
	h.dir.ProcessCommit(c)
	h.eng.Run(nil)
	if h.st.DirUnnecessary != 1 {
		t.Fatalf("DirUnnecessary = %d, want 1", h.st.DirUnnecessary)
	}
}

func TestReadBouncedDuringCommit(t *testing.T) {
	h := newDirHarness(3)
	h.read(0, 100, false)
	h.read(1, 100, false)
	// Start a commit but hold its completion by not running to quiescence:
	// instead, issue a read at the same time and observe the bounce stat.
	h.dir.ProcessCommit(commitOf(0, 9, 100))
	gotRead := false
	h.dir.Read(2, 100, false, func(int) { gotRead = true })
	h.eng.Run(nil)
	if !gotRead {
		t.Fatal("bounced read never completed")
	}
	if h.st.ReadBounces == 0 {
		t.Fatal("read during commit was not bounced")
	}
	if len(h.done) != 1 {
		t.Fatal("commit did not complete")
	}
}

func TestPrivCommitInvalidatesWithoutDone(t *testing.T) {
	h := newDirHarness(2)
	h.read(0, 100, false)
	h.read(1, 100, false)
	c := commitOf(0, 11, 100)
	h.dir.ProcessPrivCommit(c)
	h.eng.Run(nil)
	if len(h.ports[1].commits) != 1 {
		t.Fatal("priv commit not forwarded to sharer")
	}
	if !h.ports[1].commits[0].Priv {
		t.Fatal("forwarded commit not marked private")
	}
	if len(h.done) != 0 {
		t.Fatal("priv commit signaled the arbiter")
	}
}

func TestBusyEntrySerializesRequests(t *testing.T) {
	h := newDirHarness(3)
	h.read(0, 100, true)
	h.ports[0].dirtyLines[100] = true
	// Two concurrent reads race on the dirty line; both must complete.
	done := 0
	h.dir.Read(1, 100, false, func(int) { done++ })
	h.dir.Read(2, 100, false, func(int) { done++ })
	h.eng.Run(nil)
	if done != 2 {
		t.Fatalf("%d of 2 racing reads completed", done)
	}
	sharers, dirty, _ := h.dir.State(100)
	if dirty || sharers != 0b111 {
		t.Fatalf("state after race = (%b, %v)", sharers, dirty)
	}
}

func TestDirectoryCacheDisplacement(t *testing.T) {
	h := newDirHarness(2)
	h.dir.MaxEntries = 4
	for i := 0; i < 6; i++ {
		h.read(0, mem.Line(100+i), false)
	}
	if h.dir.Entries() > 4 {
		t.Fatalf("directory cache holds %d entries, limit 4", h.dir.Entries())
	}
	if h.st.DirCacheEvicts != 2 {
		t.Fatalf("DirCacheEvicts = %d, want 2", h.st.DirCacheEvicts)
	}
	if len(h.ports[0].commits) != 2 {
		t.Fatalf("sharer received %d displacement signatures, want 2", len(h.ports[0].commits))
	}
}

func TestCommitTrafficCategories(t *testing.T) {
	h := newDirHarness(2)
	h.read(0, 100, false)
	h.read(1, 100, false)
	base := h.st.TrafficBytes[stats.CatWrSig]
	h.dir.ProcessCommit(commitOf(0, 5, 100))
	h.eng.Run(nil)
	if h.st.TrafficBytes[stats.CatWrSig] != base+network.SigBytes {
		t.Fatal("W forward not charged as WrSig")
	}
	if h.st.TrafficBytes[stats.CatInv] == 0 {
		t.Fatal("ack not charged as Inv")
	}
}

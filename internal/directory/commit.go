package directory

import (
	"bulksc/internal/arbiter"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sig"
	"bulksc/internal/stats"
)

// ProcessCommit is the DirBDM path: it expands a committing chunk's W
// signature over this module's directory state, applies the Table 1 case
// analysis, forwards W to the caches on the invalidation list, keeps reads
// to the written lines disabled until every acknowledgement arrives, and
// finally reports completion to the arbiter via OnDone.
//
// Expansion works exactly like the hardware: δ decodes the signature into
// candidate buckets; every entry in those buckets is membership-tested;
// matching entries are "looked up" (Table 4's Lookups per Commit), and
// matches that the chunk did not truly write are the aliasing costs
// (Unnecessary Lookups / Unnecessary Updates).
func (d *Directory) ProcessCommit(c *Commit) {
	d.st.DirCommits++
	d.committing = append(d.committing, c)
	d.eng.After(commitProc, func() { d.expand(c) })
}

// NewCommit draws a pooled commit record for a W signature entering this
// module. The signature and exact write set are attached by reference —
// the fan-out shares this one record (and therefore one W-sig) across
// every sharer delivery; nothing in the pipeline copies them per sharer.
// Records drawn here are recycled automatically when the commit flow
// completes (finishCommit, or the last priv-propagation delivery), so
// steady-state commit routing allocates no records.
//
//sim:hotpath
//sim:pool acquire
func (d *Directory) NewCommit(tok arbiter.Token, proc int, w sig.Signature, trueW *lineset.Set) *Commit {
	var c *Commit
	if n := len(d.cFree); n > 0 {
		c = d.cFree[n-1]
		d.cFree[n-1] = nil
		d.cFree = d.cFree[:n-1]
	} else {
		//lint:alloc one-time freelist seeding, amortized to zero by recycling
		c = &Commit{pooled: true}
	}
	c.Tok = tok
	c.Proc = proc
	c.W = w
	c.TrueW = trueW
	c.Priv = false
	return c
}

// putCommit recycles a pooled record once nothing in the pipeline can
// touch it again. References are dropped so a parked record cannot pin a
// dead run's signatures or write sets.
//
//sim:pool release
func (d *Directory) putCommit(c *Commit) {
	if !c.pooled {
		return
	}
	c.Tok = 0
	c.Proc = 0
	c.W = nil
	c.TrueW = nil
	c.Priv = false
	d.cFree = append(d.cFree, c)
}

//sim:hotpath
func (d *Directory) expand(c *Commit) {
	d.inval.Reset()
	if d.st.Trace != nil {
		//lint:alloc debug-only trace formatting, guarded by Trace != nil
		d.st.Trace("t=%d dir%d expand commit tok=%d proc=%d", d.eng.Now(), d.ID, c.Tok, c.Proc)
	}
	mask := c.W.CandidateSets(expansionBuckets)
	for idx := 0; idx < expansionBuckets; idx++ {
		if !mask.Has(idx) {
			continue
		}
		b := &d.buckets[idx]
		for i, k := range b.keys {
			if k == 0 {
				continue
			}
			l := mem.Line(k - 1)
			e := b.vals[i]
			if d.nmods > 1 && d.ownerModule(l) != d.ID {
				continue
			}
			// Every entry in a candidate bucket is looked up (its tag and
			// state are read) — Table 4's "Lookups per Commit"; entries
			// the chunk did not truly write are the aliasing cost. The
			// full membership test (∈, all banks) then gates the action.
			d.st.DirLookups++
			trulyWritten := c.TrueW.Has(l)
			if !trulyWritten {
				d.st.DirUnnecessary++
			}
			if !c.W.MayContain(l) {
				continue
			}
			if d.st.Trace != nil {
				//lint:alloc debug-only trace formatting, guarded by Trace != nil
				d.st.Trace("t=%d dir%d lookup line=%#x dirty=%v owner=%d sharers=%b committer=%d true=%v", d.eng.Now(), d.ID, uint64(l), e.dirty, e.owner, e.sharers.Mask(), c.Proc, trulyWritten)
			}
			// Table 1 case analysis.
			switch {
			case e.dirty && !e.sharers.Has(c.Proc):
				// Case 3: dirty, committing proc not a sharer — false
				// positive; the committer would have fetched the line
				// and be recorded. Do nothing.
			case e.dirty:
				// Case 4: committing proc already the owner. Do nothing.
			case !e.sharers.Has(c.Proc):
				// Case 1: not dirty, proc not a sharer — false positive.
			default:
				// Case 2: proc is a sharer of a non-dirty line: it
				// becomes the owner; every other sharer joins the
				// invalidation list.
				d.inval.AddSetExcept(&e.sharers, c.Proc)
				e.sharers.Only(c.Proc, &d.shar)
				e.dirty = true
				e.owner = uint16(c.Proc)
				d.st.DirUpdates++
				if !trulyWritten {
					d.st.DirBadUpdates++
				}
			}
		}
	}
	d.forwardToCaches(c)
}

// ownerModule maps a line to its directory module (same interleave as the
// distributed arbiter).
func (d *Directory) ownerModule(l mem.Line) int {
	return int((uint64(l) / 64) % uint64(d.nmods))
}

// forwardToCaches fans the committing W signature out to the procs on
// d.inval, which it consumes synchronously — the sends are scheduled, not
// executed, within the caller's event, so the scratch bitmap is free for
// the next expansion as soon as this returns. The fan-out visits procs in
// ascending id order, matching the port loop it replaces.
func (d *Directory) forwardToCaches(c *Commit) {
	pendingAcks := 0
	d.inval.ForEach(func(p int) {
		pendingAcks++
		d.st.WSigNodeSends++
		pp := p
		d.net.Send(stats.CatWrSig, network.SigBytes, func() {
			d.ports[pp].ApplyCommit(c)
			d.eng.After(bdmProc, func() {
				d.net.Send(stats.CatInv, network.CtrlBytes, func() {
					pendingAcks--
					if pendingAcks == 0 {
						d.finishCommit(c)
					}
				})
			})
		})
	})
	if pendingAcks == 0 {
		d.finishCommit(c)
	}
}

func (d *Directory) finishCommit(c *Commit) {
	for i, cc := range d.committing {
		if cc == c {
			d.committing = append(d.committing[:i], d.committing[i+1:]...)
			break
		}
	}
	if c.Priv {
		return
	}
	if d.OnDone == nil {
		panic("directory: OnDone not wired")
	}
	// Completion message back to the arbiter. The token is captured by
	// value so the record can be recycled immediately: every ApplyCommit
	// delivery has already fired (the acks trail them by construction),
	// the record has just left d.committing, and nothing else holds it.
	tok := c.Tok
	d.putCommit(c)
	d.net.Send(stats.CatOther, network.CtrlBytes, func() { d.OnDone(tok) })
}

// ProcessPrivCommit propagates an stpvt Wpriv signature (§5.1): private
// data must stay coherent because threads migrate, but it needs no
// arbitration, no read disabling and no disambiguation. Sharer caches
// simply invalidate matching lines.
func (d *Directory) ProcessPrivCommit(c *Commit) {
	c.Priv = true
	d.eng.After(commitProc, func() { d.expandPriv(c) })
}

//sim:hotpath
func (d *Directory) expandPriv(c *Commit) {
	d.inval.Reset()
	mask := c.W.CandidateSets(expansionBuckets)
	for idx := 0; idx < expansionBuckets; idx++ {
		if !mask.Has(idx) {
			continue
		}
		b := &d.buckets[idx]
		for i, k := range b.keys {
			if k == 0 {
				continue
			}
			l := mem.Line(k - 1)
			e := b.vals[i]
			if d.nmods > 1 && d.ownerModule(l) != d.ID {
				continue
			}
			if !c.W.MayContain(l) {
				continue
			}
			if !e.dirty && e.sharers.Has(c.Proc) {
				d.inval.AddSetExcept(&e.sharers, c.Proc)
				e.sharers.Only(c.Proc, &d.shar)
				e.dirty = true
				e.owner = uint16(c.Proc)
			}
		}
	}
	d.forwardPrivToCaches(c)
}

// forwardPrivToCaches is expandPriv's fan-out: sharer caches invalidate
// matching lines, no acks (private data needs no read disabling). Consumes
// d.inval synchronously, ascending proc order. With no ack wave to ride,
// the record's lifetime is tracked by a delivery count: the last
// ApplyCommit to fire recycles it.
func (d *Directory) forwardPrivToCaches(c *Commit) {
	pendingDeliveries := 0
	d.inval.ForEach(func(p int) {
		pendingDeliveries++
		pp := p
		d.net.Send(stats.CatWrSig, network.SigBytes, func() {
			d.ports[pp].ApplyCommit(c)
			pendingDeliveries--
			if pendingDeliveries == 0 {
				d.putCommit(c)
			}
		})
	})
	if pendingDeliveries == 0 {
		d.putCommit(c)
	}
}

package directory

import (
	"testing"

	"bulksc/internal/cache"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
)

// BenchmarkDirectoryReset measures the warm-reuse reset of one directory
// module holding a realistic population of entries: each iteration fills
// the module with live lines (recycling the slab and free list built on
// the first pass) and drains it back to cold shape with Reset. After
// warmup the fill-and-drain cycle must be allocation-free — the entry
// slab, bucket arrays and free list are retained arenas — so allocs/op
// is the regression gate here, mirroring what a sweep worker pays per
// simulation.
func BenchmarkDirectoryReset(b *testing.B) {
	eng := sim.NewEngine(1)
	st := stats.New()
	net := network.New(eng, st)
	l2 := cache.NewL2(1024, 8)
	d := New(0, 1, eng, net, st, l2)

	const lines = 2048
	fill := func() {
		for i := 1; i <= lines; i++ {
			e := d.getOrCreate(mem.Line(i))
			for p := 0; p < 4; p++ {
				if i&(1<<p) != 0 {
					e.sharers.Add(p, &d.shar)
				}
			}
		}
	}
	fill()
	d.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		d.Reset()
	}
}

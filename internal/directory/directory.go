// Package directory implements the distributed directory modules of the
// BulkSC architecture (paper §4.3) together with the shared L2 they front.
//
// Each module keeps full-bit-vector sharing state for the lines in its
// address range and serves two protocols:
//
//   - The conventional invalidation protocol used by the SC, RC and SC++
//     baselines (read / read-exclusive / writeback, with owner forwarding
//     and sharer invalidation).
//   - The BulkSC commit protocol: a DirBDM expands incoming W signatures
//     over the directory state (the Table 1 case analysis), builds
//     invalidation lists, forwards the signature to sharer caches,
//     disables reads to committing lines until all acknowledgements
//     arrive, and reports completion to the arbiter.
//
// Entries under a multi-step transaction are marked busy and later
// requests queue behind them, the standard way real directories serialize
// racing requests.
package directory

import (
	"fmt"

	"bulksc/internal/arbiter"
	"bulksc/internal/cache"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
)

// Latency constants (cycles). Together with the network hop they reproduce
// Table 2's unloaded round trips: L1 miss → L2 hit ≈ 13 cycles, memory
// ≈ 300 cycles.
const (
	dirAccess  sim.Time = 1   // directory/L2 tag access
	memExtra   sim.Time = 287 // additional cycles for an off-chip access
	cacheProc  sim.Time = 2   // remote cache access time
	bounceWait sim.Time = 20  // retry delay for reads bounced by a commit
	commitProc sim.Time = 4   // DirBDM signature-expansion latency
	bdmProc    sim.Time = 5   // remote BDM disambiguation latency
)

// expansionBuckets is the granularity at which the DirBDM decodes
// signatures (δ): directory entries are indexed into 512 buckets by their
// low-order line bits, matching the signature's decodable bank.
const expansionBuckets = sig.BankBits

// Commit is a committing chunk's W signature in flight through the
// directory system.
type Commit struct {
	Tok   arbiter.Token
	Proc  int
	W     sig.Signature
	TrueW map[mem.Line]struct{}
	// Priv marks an stpvt Wpriv propagation: caches invalidate matching
	// lines but skip disambiguation (private data is exempt from
	// consistency enforcement).
	Priv bool
}

// CachePort is the directory's view of one processor's L1/BDM. All methods
// are synchronous state changes applied at the delivery event; the
// directory wraps them in network hops and processing latencies.
type CachePort interface {
	// ApplyInvalidate removes l from the cache (conventional protocol).
	ApplyInvalidate(l mem.Line)
	// ApplyCommit performs bulk disambiguation and bulk invalidation for
	// an incoming committing W signature.
	ApplyCommit(c *Commit)
	// SnoopDirty is the owner-forwarding path for a demand request to a
	// line the directory believes is dirty here. The port supplies the
	// line (from the cache or, under dypvt, from the private buffer,
	// promoting it back to W) and downgrades it to Shared. supplied
	// reports whether the port had a forwardable committed version; holds
	// reports whether the cache still holds the line at all — false only
	// in the genuine "false owner" case (aliased directory updates, MESI
	// silent-displacement analogy), in which the directory drops the
	// owner from the sharer vector. A line speculatively re-written by an
	// active chunk reports holds=true so its eventual commit still finds
	// the owner in the bit vector.
	SnoopDirty(l mem.Line) (supplied, holds bool)
	// SnoopInvalidate is SnoopDirty plus invalidation, for conventional
	// read-exclusive requests.
	SnoopInvalidate(l mem.Line) bool
}

// entry is one directory entry: a full bit-vector of sharers plus the
// dirty/owner state.
type entry struct {
	line    mem.Line
	sharers uint64
	dirty   bool
	owner   uint8
	busy    bool
	waiters []func()
	lru     uint64 // recency for the directory-cache variant
}

func (e *entry) sharerCount() int {
	n := 0
	for b := e.sharers; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Directory is one directory module (plus its slice of the shared L2).
type Directory struct {
	ID    int
	nmods int
	eng   *sim.Engine
	net   *network.Network
	st    *stats.Stats
	l2    *cache.L2

	ports   []CachePort
	buckets []map[mem.Line]*entry

	// committing holds in-flight commits at this module, used for the
	// read-disable membership checks.
	committing map[arbiter.Token]*Commit

	// OnDone reports commit completion to the owning arbiter.
	OnDone func(tok arbiter.Token)

	// SigFactory builds signatures compatible with the system's encoding;
	// the directory-cache displacement path uses it to construct one-line
	// signatures. Defaults to the production Bloom encoding.
	SigFactory sig.Factory

	// Directory-cache variant (§4.3.3): when MaxEntries > 0, the module
	// holds at most that many entries and displaces with bulk
	// disambiguation at the sharer caches.
	MaxEntries int
	numEntries int
	tick       uint64
}

// New returns directory module id of nmods, fronting l2.
func New(id, nmods int, eng *sim.Engine, net *network.Network, st *stats.Stats, l2 *cache.L2) *Directory {
	d := &Directory{
		ID:         id,
		nmods:      nmods,
		eng:        eng,
		net:        net,
		st:         st,
		l2:         l2,
		buckets:    make([]map[mem.Line]*entry, expansionBuckets),
		committing: make(map[arbiter.Token]*Commit),
	}
	for i := range d.buckets {
		d.buckets[i] = make(map[mem.Line]*entry)
	}
	return d
}

// AttachPorts wires the processor cache ports; must be called before any
// request.
func (d *Directory) AttachPorts(ports []CachePort) { d.ports = ports }

func (d *Directory) bucketOf(l mem.Line) int { return int(uint64(l) & (expansionBuckets - 1)) }

func (d *Directory) find(l mem.Line) *entry { return d.buckets[d.bucketOf(l)][l] }

func (d *Directory) getOrCreate(l mem.Line) *entry {
	if e := d.find(l); e != nil {
		return e
	}
	if d.MaxEntries > 0 && d.numEntries >= d.MaxEntries {
		d.displaceOne()
	}
	e := &entry{line: l}
	d.buckets[d.bucketOf(l)][l] = e
	d.numEntries++
	d.tick++
	e.lru = d.tick
	return e
}

func (d *Directory) remove(l mem.Line) {
	b := d.buckets[d.bucketOf(l)]
	if _, ok := b[l]; ok {
		delete(b, l)
		d.numEntries--
	}
}

// Entries returns the number of directory entries, for tests.
func (d *Directory) Entries() int { return d.numEntries }

// State returns the sharing state of l, for tests: sharer bitmask, dirty
// flag, owner.
func (d *Directory) State(l mem.Line) (sharers uint64, dirty bool, owner int) {
	if e := d.find(l); e != nil {
		return e.sharers, e.dirty, int(e.owner)
	}
	return 0, false, -1
}

// withEntry runs f once l's entry is not busy, queueing behind an ongoing
// transaction if needed.
func (d *Directory) withEntry(l mem.Line, f func(e *entry)) {
	e := d.getOrCreate(l)
	if e.busy {
		e.waiters = append(e.waiters, func() { d.withEntry(l, f) })
		return
	}
	d.tick++
	e.lru = d.tick
	f(e)
}

func (d *Directory) release(e *entry) {
	e.busy = false
	ws := e.waiters
	e.waiters = nil
	for _, w := range ws {
		w()
	}
}

// l2Latency returns the module-side access latency for line l and installs
// it on chip.
func (d *Directory) l2Latency(l mem.Line) sim.Time {
	if d.l2.Contains(l) {
		d.st.L2Hits++
		return dirAccess
	}
	d.st.L2Misses++
	d.l2.Install(l)
	return dirAccess + memExtra
}

// ---------------------------------------------------------------------------
// Conventional protocol (SC / RC / SC++ baselines)
// ---------------------------------------------------------------------------

// Read serves a demand miss from proc at the module-arrival event. excl
// requests exclusive ownership (a write miss or upgrade). done runs at the
// requester when data (and, for excl, all invalidation acks) have arrived;
// it receives the granted line state.
//
// The same entry point serves BulkSC demand misses with excl=false; those
// additionally go through the read-disable bounce check.
func (d *Directory) Read(proc int, l mem.Line, excl bool, done func(st cache.LineState)) {
	if d.bounced(l) {
		d.st.ReadBounces++
		d.st.AddTraffic(stats.CatOther, network.CtrlBytes)
		d.eng.After(bounceWait, func() { d.Read(proc, l, excl, done) })
		return
	}
	if d.st.Trace != nil {
		d.st.Trace("t=%d dir%d read line=%#x proc=%d excl=%v", d.eng.Now(), d.ID, uint64(l), proc, excl)
	}
	d.withEntry(l, func(e *entry) {
		if excl {
			d.readExcl(proc, e, done)
		} else {
			d.readShared(proc, e, done)
		}
	})
}

func (d *Directory) bounced(l mem.Line) bool {
	for _, c := range d.committing {
		if !c.Priv && c.W.MayContain(l) {
			return true
		}
	}
	return false
}

func (d *Directory) readShared(proc int, e *entry, done func(cache.LineState)) {
	bit := uint64(1) << uint(proc)
	if e.dirty && int(e.owner) != proc {
		e.busy = true
		owner := int(e.owner)
		l := e.line
		// The transaction's outcome is decided now: the line becomes
		// shared by the requester. Commit-signature expansion may observe
		// the entry while the snoop is in flight, so the state must never
		// show a transient "dirty at the committer" — that would take
		// Table 1's no-op case and skip the invalidation list, breaking
		// the reader's squash guarantee.
		e.dirty = false
		e.sharers |= bit
		// Forward to owner; owner supplies the line and downgrades.
		d.net.SendAfter(dirAccess, stats.CatOther, network.CtrlBytes, func() {
			had, holds := d.ports[owner].SnoopDirty(l)
			if had {
				// Owner sends the line to the requester directly and a
				// writeback copy to the directory.
				d.st.AddTraffic(stats.CatData, network.DataBytes)
				d.st.Writebacks++
			}
			d.eng.After(cacheProc, func() {
				d.net.Send(stats.CatData, network.DataBytes, func() {
					if !holds && !(e.dirty && int(e.owner) == owner) {
						// False owner (aliased directory update): the
						// owner silently lacked the line; memory is
						// current. Removing the stale sharer late is
						// conservative — unless a commit re-dirtied the
						// entry under this same owner while the snoop
						// was in flight, in which case the bit is the
						// new ownership and must stay.
						e.sharers &^= 1 << uint(owner)
					}
					d.release(e)
					done(cache.Shared)
				})
			})
		})
		return
	}
	lat := d.l2Latency(e.line)
	st := cache.Shared
	if e.sharers == 0 || e.sharers == bit {
		st = cache.Excl
	}
	e.sharers |= bit
	if e.dirty && int(e.owner) == proc {
		st = cache.Dirty
	}
	d.net.SendAfter(lat, stats.CatData, network.DataBytes, func() { done(st) })
}

func (d *Directory) readExcl(proc int, e *entry, done func(cache.LineState)) {
	bit := uint64(1) << uint(proc)
	e.busy = true
	l := e.line
	finish := func(extra sim.Time) {
		d.eng.After(extra, func() {
			e.sharers = bit
			e.dirty = true
			e.owner = uint8(proc)
			d.net.Send(stats.CatData, network.DataBytes, func() {
				d.release(e)
				done(cache.Dirty)
			})
		})
	}
	if e.dirty && int(e.owner) != proc {
		owner := int(e.owner)
		d.net.SendAfter(dirAccess, stats.CatInv, network.CtrlBytes, func() {
			had := d.ports[owner].SnoopInvalidate(l)
			if had {
				d.st.AddTraffic(stats.CatData, network.DataBytes)
				d.st.Writebacks++
			}
			d.st.ConvInvalidations++
			d.net.Send(stats.CatInv, network.CtrlBytes, func() { finish(0) })
		})
		return
	}
	// Invalidate every other sharer, collect acks.
	pendingAcks := 0
	for p := 0; p < len(d.ports); p++ {
		pbit := uint64(1) << uint(p)
		if p == proc || e.sharers&pbit == 0 {
			continue
		}
		pendingAcks++
		pp := p
		d.net.SendAfter(dirAccess, stats.CatInv, network.CtrlBytes, func() {
			d.ports[pp].ApplyInvalidate(l)
			d.st.ConvInvalidations++
			d.net.Send(stats.CatInv, network.CtrlBytes, func() {
				pendingAcks--
				if pendingAcks == 0 {
					finish(d.l2Latency(l))
				}
			})
		})
	}
	if pendingAcks == 0 {
		finish(d.l2Latency(l))
	}
}

// Writeback retires a dirty line from proc's cache (eviction or explicit
// writeback). drop removes proc from the sharer vector as well.
func (d *Directory) Writeback(proc int, l mem.Line, drop bool) {
	d.st.Writebacks++
	d.withEntry(l, func(e *entry) {
		if e.dirty && int(e.owner) == proc {
			e.dirty = false
		}
		if drop {
			e.sharers &^= 1 << uint(proc)
		}
		d.l2.Install(l)
	})
}

// Evicted records the silent eviction of a clean line; conventional
// protocols leave the stale sharer bit (it only costs a harmless future
// invalidation), matching MESI practice and the paper's false-owner
// discussion.
func (d *Directory) Evicted(proc int, l mem.Line) {}

// displaceOne implements the directory-cache displacement protocol
// (§4.3.3): the LRU entry's address is built into a one-line signature and
// sent to all sharer caches for bulk disambiguation (possibly squashing
// chunks) and invalidation; dirty copies are written back.
func (d *Directory) displaceOne() {
	var victim *entry
	for _, b := range d.buckets {
		for _, e := range b {
			if e.busy {
				continue
			}
			if victim == nil || e.lru < victim.lru {
				victim = e
			}
		}
	}
	if victim == nil {
		return
	}
	d.st.DirCacheEvicts++
	l := victim.line
	f := d.SigFactory
	if f == nil {
		f = sig.NewFactory(sig.KindBloom)
	}
	one := f()
	one.Add(l)
	c := &Commit{Proc: -1, W: one, TrueW: map[mem.Line]struct{}{l: {}}}
	for p := 0; p < len(d.ports); p++ {
		if victim.sharers&(1<<uint(p)) == 0 {
			continue
		}
		pp := p
		d.net.Send(stats.CatWrSig, network.SigBytes, func() {
			d.ports[pp].ApplyCommit(c)
			d.net.Send(stats.CatInv, network.CtrlBytes, func() {})
		})
	}
	if victim.dirty {
		d.st.Writebacks++
		d.l2.Install(l)
	}
	d.remove(l)
}

func (d *Directory) String() string {
	return fmt.Sprintf("dir%d{entries=%d committing=%d}", d.ID, d.numEntries, len(d.committing))
}

// Package directory implements the distributed directory modules of the
// BulkSC architecture (paper §4.3) together with the shared L2 they front.
//
// Each module keeps sparse sharer-set state (package sharerset: a
// limited-pointer inline array overflowing into a compact bitmap) for the
// lines in its address range and serves two protocols:
//
//   - The conventional invalidation protocol used by the SC, RC and SC++
//     baselines (read / read-exclusive / writeback, with owner forwarding
//     and sharer invalidation).
//   - The BulkSC commit protocol: a DirBDM expands incoming W signatures
//     over the directory state (the Table 1 case analysis), builds
//     invalidation lists, forwards the signature to sharer caches,
//     disables reads to committing lines until all acknowledgements
//     arrive, and reports completion to the arbiter.
//
// Entries under a multi-step transaction are marked busy and later
// requests queue behind them, the standard way real directories serialize
// racing requests.
package directory

import (
	"fmt"

	"bulksc/internal/arbiter"
	"bulksc/internal/cache"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/network"
	"bulksc/internal/sharerset"
	"bulksc/internal/sig"
	"bulksc/internal/sim"
	"bulksc/internal/slab"
	"bulksc/internal/stats"
)

// Latency constants (cycles). Together with the network hop they reproduce
// Table 2's unloaded round trips: L1 miss → L2 hit ≈ 13 cycles, memory
// ≈ 300 cycles.
const (
	dirAccess  sim.Time = 1   // directory/L2 tag access
	memExtra   sim.Time = 287 // additional cycles for an off-chip access
	cacheProc  sim.Time = 2   // remote cache access time
	bounceWait sim.Time = 20  // retry delay for reads bounced by a commit
	commitProc sim.Time = 4   // DirBDM signature-expansion latency
	bdmProc    sim.Time = 5   // remote BDM disambiguation latency
)

// expansionBuckets is the granularity at which the DirBDM decodes
// signatures (δ): directory entries are indexed into 512 buckets by their
// low-order line bits, matching the signature's decodable bank.
const expansionBuckets = sig.BankBits

// Commit is a committing chunk's W signature in flight through the
// directory system.
type Commit struct {
	Tok   arbiter.Token
	Proc  int
	W     sig.Signature
	TrueW *lineset.Set
	// Priv marks an stpvt Wpriv propagation: caches invalidate matching
	// lines but skip disambiguation (private data is exempt from
	// consistency enforcement).
	Priv bool
	// pooled marks a record drawn from the module's pool via NewCommit;
	// only those are recycled at completion. Caller-constructed records
	// (tests, the displacement path) may outlive the flow and are left to
	// the garbage collector.
	pooled bool
}

// CachePort is the directory's view of one processor's L1/BDM. All methods
// are synchronous state changes applied at the delivery event; the
// directory wraps them in network hops and processing latencies.
type CachePort interface {
	// ApplyInvalidate removes l from the cache (conventional protocol).
	ApplyInvalidate(l mem.Line)
	// ApplyCommit performs bulk disambiguation and bulk invalidation for
	// an incoming committing W signature.
	ApplyCommit(c *Commit)
	// SnoopDirty is the owner-forwarding path for a demand request to a
	// line the directory believes is dirty here. The port supplies the
	// line (from the cache or, under dypvt, from the private buffer,
	// promoting it back to W) and downgrades it to Shared. supplied
	// reports whether the port had a forwardable committed version; holds
	// reports whether the cache still holds the line at all — false only
	// in the genuine "false owner" case (aliased directory updates, MESI
	// silent-displacement analogy), in which the directory drops the
	// owner from the sharer vector. A line speculatively re-written by an
	// active chunk reports holds=true so its eventual commit still finds
	// the owner in the bit vector.
	SnoopDirty(l mem.Line) (supplied, holds bool)
	// SnoopInvalidate is SnoopDirty plus invalidation, for conventional
	// read-exclusive requests.
	SnoopInvalidate(l mem.Line) bool
}

// entry is one directory entry: a sparse sharer set plus the dirty/owner
// state. Entries are recycled through the directory's free list; their
// pointers must stay stable while a transaction is in flight (multi-event
// paths like readShared capture the entry across network hops), which is
// why buckets hold *entry rather than inline values and why only non-busy
// entries are ever displaced. Every path that frees an entry (remove,
// drainBuckets) must Clear its sharer set first so overflow bitmaps return
// to the module's arena.
type entry struct {
	line    mem.Line
	sharers sharerset.Set
	dirty   bool
	owner   uint16
	busy    bool
	// waiters parks continuations behind a busy entry; release must drain
	// it (waiterpair pass) or queued requests deadlock the module.
	//sim:waitq dirwait
	waiters []func(e *entry)
	lru     uint64 // recency for the directory-cache variant
}

// entryMap is an open-addressed map from line to *entry — one per
// expansion bucket. Same idiom as package lineset: linear probing over a
// flat key array (line+1, 0 marks empty), Fibonacci hashing, tombstone-free
// backward-shift deletion, growth at 75% load. Compared to the Go map it
// replaces, lookups touch one flat array, inserts don't allocate per
// bucket-chain node, and iteration (the DirBDM expansion walk) is slot
// order — deterministic for a fixed history.
type entryMap struct {
	keys []uint64
	vals []*entry
	n    int
	//lint:poolsafe machine-lifetime recycler wiring to the owning module's arena; storage source only
	ar *emArena
}

// emArena recycles the power-of-two backing arrays of a module's 512
// entryMap buckets across warm machine resets (and across within-run
// growth). Capacity trajectories are untouched — reset still restores
// every bucket to its cold shape — the arena only lets the re-growth draw
// zeroed, size-matched arrays from recycled storage instead of the
// allocator. One arena per Directory, shared by its buckets.
type emArena struct {
	keys slab.Pool[uint64]
	vals slab.Pool[*entry]
}

// getKeys/getVals/put are nil-receiver-safe so a zero-value entryMap
// (tests, future callers outside a Directory) degrades to plain
// allocation.
//
//sim:pool acquire
func (a *emArena) getKeys(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.keys.Get(n)
}

//sim:pool acquire
func (a *emArena) getVals(n int) []*entry {
	if a == nil {
		return make([]*entry, n)
	}
	return a.vals.Get(n)
}

//sim:pool release
func (a *emArena) put(keys []uint64, vals []*entry) {
	if a == nil {
		return
	}
	a.keys.Put(keys)
	a.vals.Put(vals)
}

// emMinSlots keeps first allocation small: entries spread over 512 buckets,
// so most buckets hold only a handful of lines.
const emMinSlots = 8

func emHash(key uint64, mask int) int {
	return int((key*0x9e3779b97f4a7c15)>>33) & mask
}

//sim:hotpath
func (m *entryMap) get(l mem.Line) *entry {
	if m.n == 0 {
		return nil
	}
	mask := len(m.keys) - 1
	k := uint64(l) + 1
	for i := emHash(k, mask); ; i = (i + 1) & mask {
		v := m.keys[i]
		if v == k {
			return m.vals[i]
		}
		if v == 0 {
			return nil
		}
	}
}

//sim:hotpath
func (m *entryMap) put(l mem.Line, e *entry) {
	if m.keys == nil {
		m.keys = m.ar.getKeys(emMinSlots)
		m.vals = m.ar.getVals(emMinSlots)
	} else if m.n*4 >= len(m.keys)*3 {
		m.grow()
	}
	mask := len(m.keys) - 1
	k := uint64(l) + 1
	for i := emHash(k, mask); ; i = (i + 1) & mask {
		v := m.keys[i]
		if v == k {
			m.vals[i] = e
			return
		}
		if v == 0 {
			m.keys[i] = k
			m.vals[i] = e
			m.n++
			return
		}
	}
}

//sim:hotpath
func (m *entryMap) del(l mem.Line) bool {
	if m.n == 0 {
		return false
	}
	mask := len(m.keys) - 1
	k := uint64(l) + 1
	i := emHash(k, mask)
	for {
		v := m.keys[i]
		if v == 0 {
			return false
		}
		if v == k {
			break
		}
		i = (i + 1) & mask
	}
	m.keys[i] = 0
	m.vals[i] = nil
	m.n--
	// Backward-shift compaction keeps probe chains tombstone-free.
	j := i
	for {
		j = (j + 1) & mask
		v := m.keys[j]
		if v == 0 {
			return true
		}
		home := emHash(v, mask)
		if (j-home)&mask >= (j-i)&mask {
			m.keys[i] = v
			m.vals[i] = m.vals[j]
			m.keys[j] = 0
			m.vals[j] = nil
			i = j
		}
	}
}

// reset returns the bucket to its cold shape. Bit-identity across warm
// reuse requires the table's *capacity history* to match a cold run's,
// because the DirBDM expansion walk and displaceOne iterate buckets in
// slot order and slot = hash & (len-1): a retained grown table would place
// the next run's entries at different slots than cold growth would,
// reordering expansion visits and with them the whole event stream. A
// bucket still at its first-allocation size is zeroed in place (a zeroed
// 8-slot table is indistinguishable from a fresh one); a grown bucket
// parks its arrays in the module's arena so the next run re-walks the
// cold growth history from recycled storage instead of the allocator.
func (m *entryMap) reset() {
	if len(m.keys) == emMinSlots {
		clear(m.keys)
		clear(m.vals)
	} else if m.keys != nil {
		m.ar.put(m.keys, m.vals)
		m.keys = nil
		m.vals = nil
	}
	m.n = 0
}

func (m *entryMap) grow() {
	oldK, oldV := m.keys, m.vals
	m.keys = m.ar.getKeys(len(oldK) * 2)
	m.vals = m.ar.getVals(len(oldK) * 2)
	mask := len(m.keys) - 1
	for j, k := range oldK {
		if k == 0 {
			continue
		}
		for i := emHash(k, mask); ; i = (i + 1) & mask {
			if m.keys[i] == 0 {
				m.keys[i] = k
				m.vals[i] = oldV[j]
				break
			}
		}
	}
	m.ar.put(oldK, oldV)
}

// Directory is one directory module (plus its slice of the shared L2).
type Directory struct {
	//lint:poolsafe stable identity fixed at construction
	ID int
	//lint:poolsafe stable identity fixed at construction
	nmods int
	//lint:poolsafe immutable machine-lifetime references wired at construction
	eng *sim.Engine
	//lint:poolsafe immutable machine-lifetime references wired at construction
	net *network.Network
	//lint:poolsafe immutable machine-lifetime references wired at construction
	st *stats.Stats
	//lint:poolsafe immutable machine-lifetime references wired at construction
	l2 *cache.L2

	ports   []CachePort
	buckets []entryMap
	// emar recycles bucket backing arrays across growth and warm resets;
	// every bucket points at it (see emArena).
	//lint:poolsafe size-class storage recycler; recycled arrays are zeroed and identity-neutral
	emar emArena
	free []*entry // recycled entries (see entry doc on pointer stability)
	// slab batch-allocates fresh entries. Directory entries are long-lived
	// (one per tracked line) and pointer-stable, so they cannot be pooled
	// while alive — but carving them out of block allocations cuts the
	// allocator calls for a cold sweep by the slab size.
	//lint:poolsafe allocation reservoir; handed-out entries are fully reinitialized by getOrCreate
	slab []entry
	//lint:poolsafe recycled waiter-slice capacity; slices are emptied before being pushed
	wsFree [][]func(e *entry)
	//lint:poolsafe recycled transaction records; every field is overwritten at reuse
	rtFree []*readTxn // recycled read-transaction records
	//lint:poolsafe recycled transaction records; every field is overwritten at reuse
	wbFree []*wbTxn // recycled writeback-transaction records

	// shar recycles sharer-set overflow bitmaps for this module's entries;
	// Clear/Only return storage here and Add draws from it.
	shar sharerset.Arena
	// inval is the commit-expansion scratch bitmap: the invalidation list
	// accumulated by expand/expandPriv and consumed synchronously by the
	// forward fan-out within the same event.
	inval sharerset.Dense

	// committing holds in-flight commits at this module, used for the
	// read-disable membership checks. A short slice, not a map: it is
	// scanned on every demand read and rarely holds more than a couple of
	// commits.
	committing []*Commit
	// cFree recycles the pooled commit records NewCommit hands out: one
	// record per commit per module, fanned out BY REFERENCE to every
	// sharer cache (the W signature is never copied per sharer) and
	// recycled when the last delivery completes. Parked records hold no
	// signature or set references (putCommit drops them).
	//lint:poolsafe recycled records are fully reinitialized at reuse and hold no references while parked
	cFree []*Commit

	// OnDone reports commit completion to the owning arbiter.
	//lint:poolsafe stable machine wiring to the owning arbiter, installed once at construction
	OnDone func(tok arbiter.Token)

	// SigFactory builds signatures compatible with the system's encoding;
	// the directory-cache displacement path uses it to construct one-line
	// signatures. Defaults to the production Bloom encoding.
	SigFactory sig.Factory

	// Directory-cache variant (§4.3.3): when MaxEntries > 0, the module
	// holds at most that many entries and displaces with bulk
	// disambiguation at the sharer caches.
	MaxEntries int
	numEntries int
	tick       uint64
}

// New returns directory module id of nmods, fronting l2.
func New(id, nmods int, eng *sim.Engine, net *network.Network, st *stats.Stats, l2 *cache.L2) *Directory {
	d := &Directory{
		ID:      id,
		nmods:   nmods,
		eng:     eng,
		net:     net,
		st:      st,
		l2:      l2,
		buckets: make([]entryMap, expansionBuckets),
	}
	for i := range d.buckets {
		d.buckets[i].ar = &d.emar
	}
	return d
}

// AttachPorts wires the processor cache ports and sizes the sharer-set
// arena and expansion scratch for the machine; must be called before any
// request.
func (d *Directory) AttachPorts(ports []CachePort) {
	d.ports = ports
	d.shar.Configure(len(ports))
	d.inval.Configure(len(ports))
}

// drainBuckets recycles every live entry into the free list and returns
// each bucket to its cold shape (see entryMap.reset for the bit-identity
// argument). The drain walk is slot order — deterministic — though the
// order only decides which recycled pointer serves which future line;
// getOrCreate reinitializes every field of a recycled entry, so pointer
// identity never reaches simulated state.
func drainBuckets(buckets []entryMap, free []*entry, ar *sharerset.Arena) []*entry {
	for bi := range buckets {
		b := &buckets[bi]
		if b.n > 0 {
			for i, k := range b.keys {
				if k != 0 {
					e := b.vals[i]
					e.sharers.Clear(ar)
					free = append(free, e)
				}
			}
		}
		b.reset()
	}
	return free
}

// Reset returns the module to its just-constructed state in place: live
// entries are recycled onto the free list (their pointers stay valid for
// the next run's getOrCreate, which reinitializes them fully), buckets
// return to cold shape, the committing list and per-run configuration
// (ports, SigFactory, MaxEntries) are detached, and the LRU clock
// restarts. The entry slab and the transaction/waiter pools are retained —
// they are allocation reservoirs whose contents are overwritten at reuse.
func (d *Directory) Reset() {
	d.free = drainBuckets(d.buckets, d.free, &d.shar)
	d.inval.Reset()
	clear(d.committing) // release commit records before truncating
	d.committing = d.committing[:0]
	d.ports = nil
	d.SigFactory = nil
	d.MaxEntries = 0
	d.numEntries = 0
	d.tick = 0
}

func (d *Directory) bucketOf(l mem.Line) int { return int(uint64(l) & (expansionBuckets - 1)) }

func (d *Directory) find(l mem.Line) *entry { return d.buckets[d.bucketOf(l)].get(l) }

func (d *Directory) getOrCreate(l mem.Line) *entry {
	b := &d.buckets[d.bucketOf(l)]
	if e := b.get(l); e != nil {
		return e
	}
	if d.MaxEntries > 0 && d.numEntries >= d.MaxEntries {
		d.displaceOne()
	}
	var e *entry
	if n := len(d.free); n > 0 {
		e = d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		ws := e.waiters[:0]
		*e = entry{line: l, waiters: ws}
	} else {
		if len(d.slab) == 0 {
			d.slab = make([]entry, 256)
		}
		e = &d.slab[0]
		d.slab = d.slab[1:]
		e.line = l
	}
	b.put(l, e)
	d.numEntries++
	d.tick++
	e.lru = d.tick
	return e
}

func (d *Directory) remove(l mem.Line) {
	b := &d.buckets[d.bucketOf(l)]
	if e := b.get(l); e != nil {
		b.del(l)
		d.numEntries--
		e.sharers.Clear(&d.shar)
		d.free = append(d.free, e)
	}
}

// Entries returns the number of directory entries, for tests.
func (d *Directory) Entries() int { return d.numEntries }

// State returns the sharing state of l, for tests: sharer bitmask (valid
// for machines of at most 64 processors — the legacy full-bit-vector
// view), dirty flag, owner.
func (d *Directory) State(l mem.Line) (sharers uint64, dirty bool, owner int) {
	if e := d.find(l); e != nil {
		return e.sharers.Mask(), e.dirty, int(e.owner)
	}
	return 0, false, -1
}

// withEntry runs f once l's entry is not busy, queueing behind an ongoing
// transaction if needed. Waiters are the bare continuations — no wrapper
// closure is allocated per queued request — and their backing slices are
// recycled through wsFree.
func (d *Directory) withEntry(l mem.Line, f func(e *entry)) {
	e := d.getOrCreate(l)
	if e.busy {
		if e.waiters == nil {
			if n := len(d.wsFree); n > 0 {
				e.waiters = d.wsFree[n-1]
				d.wsFree[n-1] = nil
				d.wsFree = d.wsFree[:n-1]
			}
		}
		e.waiters = append(e.waiters, f)
		return
	}
	d.tick++
	e.lru = d.tick
	f(e)
}

//sim:waitq final dirwait
func (d *Directory) release(e *entry) {
	e.busy = false
	ws := e.waiters
	e.waiters = nil
	if ws == nil {
		return
	}
	// A waiter may find the entry busy again and re-queue onto a fresh
	// slice, so detach before iterating; the drained slice is recycled.
	for i, f := range ws {
		ws[i] = nil
		d.withEntry(e.line, f)
	}
	d.wsFree = append(d.wsFree, ws[:0])
}

// l2Latency returns the module-side access latency for line l and installs
// it on chip.
func (d *Directory) l2Latency(l mem.Line) sim.Time {
	if d.l2.Contains(l) {
		d.st.L2Hits++
		return dirAccess
	}
	d.st.L2Misses++
	d.l2.Install(l)
	return dirAccess + memExtra
}

// ---------------------------------------------------------------------------
// Conventional protocol (SC / RC / SC++ baselines)
// ---------------------------------------------------------------------------

// readTxn is one pooled demand-read transaction. The record carries the
// request from the requester-side Read call through the module-arrival
// event (readArriveCB), bounce retries, the entry wait queue (startFn) and
// — on the common clean path — the data delivery (readDeliverCB), all
// without per-request closures. The rarer multi-hop paths (owner forward,
// sharer invalidation) release the record up front and fall back to
// closures.
type readTxn struct {
	d       *Directory
	proc    int
	l       mem.Line
	excl    bool
	done    func(stateHint int)
	st      int            // granted state for the clean delivery path
	startFn func(e *entry) // bound t.start, reused across the pool
}

func readArriveCB(arg any)  { arg.(*readTxn).arrive() }
func readDeliverCB(arg any) { arg.(*readTxn).deliver() }

func (d *Directory) newReadTxn(proc int, l mem.Line, excl bool, done func(int)) *readTxn {
	var t *readTxn
	if n := len(d.rtFree); n > 0 {
		t = d.rtFree[n-1]
		d.rtFree[n-1] = nil
		d.rtFree = d.rtFree[:n-1]
	} else {
		t = &readTxn{d: d}
		t.startFn = t.start
	}
	t.proc, t.l, t.excl, t.done = proc, l, excl, done
	return t
}

func (d *Directory) freeReadTxn(t *readTxn) {
	t.done = nil
	d.rtFree = append(d.rtFree, t)
}

// Read routes a demand miss from proc to this module: the request message
// is charged and delivered one hop later, where it is served at the
// module-arrival event. excl requests exclusive ownership (a write miss or
// upgrade). done runs at the requester when data (and, for excl, all
// invalidation acks) have arrived; it receives the granted line state as
// an int-typed cache.LineState hint.
//
// The same entry point serves BulkSC demand misses with excl=false; those
// additionally go through the read-disable bounce check.
func (d *Directory) Read(proc int, l mem.Line, excl bool, done func(stateHint int)) {
	t := d.newReadTxn(proc, l, excl, done)
	d.net.SendCall(stats.CatData, network.CtrlBytes, readArriveCB, t)
}

// arrive serves the request at the module: bounce committing lines, then
// take (or queue for) the directory entry.
func (t *readTxn) arrive() {
	d := t.d
	if d.bounced(t.l) {
		d.st.ReadBounces++
		d.st.AddTraffic(stats.CatOther, network.CtrlBytes)
		d.eng.AfterCall(bounceWait, readArriveCB, t)
		return
	}
	if d.st.Trace != nil {
		d.st.Trace("t=%d dir%d read line=%#x proc=%d excl=%v", d.eng.Now(), d.ID, uint64(t.l), t.proc, t.excl)
	}
	d.withEntry(t.l, t.startFn)
}

func (t *readTxn) start(e *entry) {
	if t.excl {
		t.d.readExcl(t, e)
	} else {
		t.d.readShared(t, e)
	}
}

// deliver completes the clean read path at the requester.
func (t *readTxn) deliver() {
	done, st := t.done, t.st
	t.d.freeReadTxn(t)
	done(st)
}

func (d *Directory) bounced(l mem.Line) bool {
	for _, c := range d.committing {
		if !c.Priv && c.W.MayContain(l) {
			return true
		}
	}
	return false
}

func (d *Directory) readShared(t *readTxn, e *entry) {
	proc := t.proc
	if e.dirty && int(e.owner) != proc {
		// Owner-forward path: multi-hop, rare — release the pooled record
		// and let the closures carry the state.
		done := t.done
		d.freeReadTxn(t)
		e.busy = true
		owner := int(e.owner)
		l := e.line
		// The transaction's outcome is decided now: the line becomes
		// shared by the requester. Commit-signature expansion may observe
		// the entry while the snoop is in flight, so the state must never
		// show a transient "dirty at the committer" — that would take
		// Table 1's no-op case and skip the invalidation list, breaking
		// the reader's squash guarantee.
		e.dirty = false
		e.sharers.Add(proc, &d.shar)
		// Forward to owner; owner supplies the line and downgrades.
		d.net.SendAfter(dirAccess, stats.CatOther, network.CtrlBytes, func() {
			had, holds := d.ports[owner].SnoopDirty(l)
			if had {
				// Owner sends the line to the requester directly and a
				// writeback copy to the directory.
				d.st.AddTraffic(stats.CatData, network.DataBytes)
				d.st.Writebacks++
			}
			d.eng.After(cacheProc, func() {
				d.net.Send(stats.CatData, network.DataBytes, func() {
					if !holds && !(e.dirty && int(e.owner) == owner) {
						// False owner (aliased directory update): the
						// owner silently lacked the line; memory is
						// current. Removing the stale sharer late is
						// conservative — unless a commit re-dirtied the
						// entry under this same owner while the snoop
						// was in flight, in which case the bit is the
						// new ownership and must stay.
						e.sharers.Remove(owner)
					}
					d.release(e)
					done(int(cache.Shared))
				})
			})
		})
		return
	}
	// Clean path — the overwhelmingly common one: the module answers from
	// L2/memory; the same pooled record rides the data message back.
	lat := d.l2Latency(e.line)
	st := cache.Shared
	if n := e.sharers.Count(); n == 0 || (n == 1 && e.sharers.Has(proc)) {
		st = cache.Excl
	}
	e.sharers.Add(proc, &d.shar)
	if e.dirty && int(e.owner) == proc {
		st = cache.Dirty
	}
	t.st = int(st)
	d.net.SendAfterCall(lat, stats.CatData, network.DataBytes, readDeliverCB, t)
}

func (d *Directory) readExcl(t *readTxn, e *entry) {
	proc, done := t.proc, t.done
	d.freeReadTxn(t) // multi-hop path: closures carry the state
	e.busy = true
	l := e.line
	finish := func(extra sim.Time) {
		d.eng.After(extra, func() {
			e.sharers.Only(proc, &d.shar)
			e.dirty = true
			e.owner = uint16(proc)
			d.net.Send(stats.CatData, network.DataBytes, func() {
				d.release(e)
				done(int(cache.Dirty))
			})
		})
	}
	if e.dirty && int(e.owner) != proc {
		owner := int(e.owner)
		d.net.SendAfter(dirAccess, stats.CatInv, network.CtrlBytes, func() {
			had := d.ports[owner].SnoopInvalidate(l)
			if had {
				d.st.AddTraffic(stats.CatData, network.DataBytes)
				d.st.Writebacks++
			}
			d.st.ConvInvalidations++
			d.net.Send(stats.CatInv, network.CtrlBytes, func() { finish(0) })
		})
		return
	}
	// Invalidate every other sharer, collect acks. ForEach is ascending
	// proc id — the same visit order as the full-bit-vector port loop it
	// replaces, which the golden event streams pin.
	pendingAcks := 0
	e.sharers.ForEach(func(p int) {
		if p == proc {
			return
		}
		pendingAcks++
		pp := p
		d.net.SendAfter(dirAccess, stats.CatInv, network.CtrlBytes, func() {
			d.ports[pp].ApplyInvalidate(l)
			d.st.ConvInvalidations++
			d.net.Send(stats.CatInv, network.CtrlBytes, func() {
				pendingAcks--
				if pendingAcks == 0 {
					finish(d.l2Latency(l))
				}
			})
		})
	})
	if pendingAcks == 0 {
		finish(d.l2Latency(l))
	}
}

// wbTxn is one pooled writeback in flight from a cache to this module.
type wbTxn struct {
	d       *Directory
	proc    int
	l       mem.Line
	drop    bool
	applyFn func(e *entry) // bound t.apply, reused across the pool
}

func wbArriveCB(arg any) { arg.(*wbTxn).arrive() }

func (d *Directory) newWbTxn(proc int, l mem.Line, drop bool) *wbTxn {
	var t *wbTxn
	if n := len(d.wbFree); n > 0 {
		t = d.wbFree[n-1]
		d.wbFree[n-1] = nil
		d.wbFree = d.wbFree[:n-1]
	} else {
		t = &wbTxn{d: d}
		t.applyFn = t.apply
	}
	t.proc, t.l, t.drop = proc, l, drop
	return t
}

// Writeback retires a dirty line from proc's cache (eviction or explicit
// writeback), applied at the module one hop later. drop removes proc from
// the sharer vector as well. The data traffic is charged by the evicting
// cache.
func (d *Directory) Writeback(proc int, l mem.Line, drop bool) {
	t := d.newWbTxn(proc, l, drop)
	d.eng.AfterCall(d.net.HopLat, wbArriveCB, t)
}

func (t *wbTxn) arrive() {
	t.d.st.Writebacks++
	t.d.withEntry(t.l, t.applyFn)
}

func (t *wbTxn) apply(e *entry) {
	d := t.d
	if e.dirty && int(e.owner) == t.proc {
		e.dirty = false
	}
	if t.drop {
		e.sharers.Remove(t.proc)
	}
	d.l2.Install(t.l)
	d.wbFree = append(d.wbFree, t)
}

// Evicted records the silent eviction of a clean line; conventional
// protocols leave the stale sharer bit (it only costs a harmless future
// invalidation), matching MESI practice and the paper's false-owner
// discussion.
func (d *Directory) Evicted(proc int, l mem.Line) {}

// displaceOne implements the directory-cache displacement protocol
// (§4.3.3): the LRU entry's address is built into a one-line signature and
// sent to all sharer caches for bulk disambiguation (possibly squashing
// chunks) and invalidation; dirty copies are written back.
func (d *Directory) displaceOne() {
	var victim *entry
	for bi := range d.buckets {
		b := &d.buckets[bi]
		if b.n == 0 {
			continue
		}
		for i, k := range b.keys {
			if k == 0 {
				continue
			}
			e := b.vals[i]
			if e.busy {
				continue
			}
			if victim == nil || e.lru < victim.lru {
				victim = e
			}
		}
	}
	if victim == nil {
		return
	}
	d.st.DirCacheEvicts++
	l := victim.line
	f := d.SigFactory
	if f == nil {
		f = sig.NewFactory(sig.KindBloom)
	}
	one := f()
	one.Add(l)
	c := &Commit{Proc: -1, W: one, TrueW: lineset.NewSetOf(l)}
	victim.sharers.ForEach(func(p int) {
		pp := p
		d.net.Send(stats.CatWrSig, network.SigBytes, func() {
			d.ports[pp].ApplyCommit(c)
			d.net.Send(stats.CatInv, network.CtrlBytes, func() {})
		})
	})
	if victim.dirty {
		d.st.Writebacks++
		d.l2.Install(l)
	}
	d.remove(l)
}

func (d *Directory) String() string {
	return fmt.Sprintf("dir%d{entries=%d committing=%d}", d.ID, d.numEntries, len(d.committing))
}

package directory

import (
	"math/rand"
	"testing"

	"bulksc/internal/arbiter"
	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// TestPropertyRandomOperationStorm drives the directory with randomized
// interleavings of demand reads, exclusive reads, writebacks and BulkSC
// commits, then checks the protocol invariants that every higher layer
// depends on:
//
//  1. dirty entries have exactly one sharer (the owner);
//  2. every ProcessCommit eventually reports done to the arbiter, exactly
//     once;
//  3. every completed read produced a reply;
//  4. entries never exceed the directory-cache capacity when one is set.
func TestPropertyRandomOperationStorm(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := newDirHarness(4)
			if seed%2 == 0 {
				h.dir.MaxEntries = 24
			}
			lines := func() mem.Line { return mem.Line(rng.Intn(40)) }
			reads, replies := 0, 0
			commits := 0
			var tok arbiter.Token
			for op := 0; op < 400; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					reads++
					h.dir.Read(rng.Intn(4), lines(), false, func(int) { replies++ })
				case 4:
					reads++
					h.dir.Read(rng.Intn(4), lines(), true, func(int) { replies++ })
				case 5:
					h.dir.Writeback(rng.Intn(4), lines(), rng.Intn(2) == 0)
				case 6, 7:
					// Make the snooped owner actually dirty half the time.
					l := lines()
					if _, dirty, owner := h.dir.State(l); dirty && rng.Intn(2) == 0 {
						h.ports[owner].dirtyLines[l] = true
					}
					reads++
					h.dir.Read(rng.Intn(4), l, false, func(int) { replies++ })
				default:
					tok++
					commits++
					w := sig.NewExact()
					trueW := &lineset.Set{}
					for i := 0; i < 1+rng.Intn(4); i++ {
						l := lines()
						w.Add(l)
						trueW.Add(l)
					}
					h.dir.ProcessCommit(&Commit{Tok: tok, Proc: rng.Intn(4), W: w, TrueW: trueW})
				}
				// Occasionally let the system quiesce mid-storm.
				if rng.Intn(8) == 0 {
					h.eng.Run(nil)
				}
			}
			h.eng.Run(nil)

			if replies != reads {
				t.Fatalf("seed %d: %d reads but %d replies", seed, reads, replies)
			}
			if len(h.done) != commits {
				t.Fatalf("seed %d: %d commits but %d done callbacks", seed, commits, len(h.done))
			}
			seen := map[arbiter.Token]bool{}
			for _, tk := range h.done {
				if seen[tk] {
					t.Fatalf("seed %d: token %d completed twice", seed, tk)
				}
				seen[tk] = true
			}
			for l := mem.Line(0); l < 40; l++ {
				sharers, dirty, owner := h.dir.State(l)
				if !dirty {
					continue
				}
				n := 0
				for b := sharers; b != 0; b &= b - 1 {
					n++
				}
				if n != 1 {
					t.Fatalf("seed %d: dirty line %v has %d sharers (owner %d, mask %b)",
						seed, l, n, owner, sharers)
				}
				if sharers != 1<<uint(owner) {
					t.Fatalf("seed %d: dirty line %v owner %d not the single sharer (%b)",
						seed, l, owner, sharers)
				}
			}
			if h.dir.MaxEntries > 0 && h.dir.Entries() > h.dir.MaxEntries {
				t.Fatalf("seed %d: directory cache holds %d entries, cap %d",
					seed, h.dir.Entries(), h.dir.MaxEntries)
			}
		})
	}
}

// TestPropertyCommitInvalidatesAllStaleSharers: after a commit of lines
// genuinely shared by other processors completes, every one of those
// processors has received the W signature.
func TestPropertyCommitInvalidatesAllStaleSharers(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 97))
		h := newDirHarness(4)
		committer := rng.Intn(4)
		l := mem.Line(rng.Intn(100))
		var sharers []int
		h.read(committer, l, false)
		for p := 0; p < 4; p++ {
			if p != committer && rng.Intn(2) == 0 {
				h.read(p, l, false)
				sharers = append(sharers, p)
			}
		}
		w := sig.NewExact()
		w.Add(l)
		h.dir.ProcessCommit(&Commit{Tok: 1, Proc: committer, W: w,
			TrueW: lineset.NewSetOf(l)})
		h.eng.Run(nil)
		for _, p := range sharers {
			if len(h.ports[p].commits) != 1 {
				t.Fatalf("seed %d: sharer %d received %d signatures, want 1",
					seed, p, len(h.ports[p].commits))
			}
		}
		if len(h.ports[committer].commits) != 0 {
			t.Fatalf("seed %d: committer received its own signature", seed)
		}
		_, dirty, owner := h.dir.State(l)
		if !dirty || owner != committer {
			t.Fatalf("seed %d: ownership not transferred to committer", seed)
		}
	}
}

package lineset

import (
	"testing"

	"bulksc/internal/mem"
)

// FuzzLinesetMap differentially tests the open-addressed Map (the chunk
// speculative write buffer) against a plain Go map over an arbitrary
// operation stream, including the Reset/pool-reuse path: the same Map
// instance survives Reset and is refilled, exactly as pooled chunks
// recycle their write buffers. Any divergence — a lost entry, a stale
// value surviving Reset, a phantom entry — is a silent speculative-data
// leak in the simulator.
//
// Encoding: each step consumes 4 bytes — opcode, 2-byte little-endian
// address, 1-byte value.
func FuzzLinesetMap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 8, 0, 42, 1, 8, 0, 0})
	f.Add([]byte{0, 1, 0, 7, 0, 2, 0, 9, 2, 0, 0, 0, 0, 1, 0, 11, 1, 1, 0, 0, 4, 0, 0, 0})
	seq := make([]byte, 0, 400)
	for i := 0; i < 100; i++ {
		seq = append(seq, byte(i%5), byte(i*13), byte(i%3), byte(i*7))
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Map
		model := map[mem.Addr]uint64{}
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 5
			a := mem.Addr(uint16(data[i+1]) | uint16(data[i+2])<<8)
			v := uint64(data[i+3])
			switch op {
			case 0:
				m.Put(a, v)
				model[a] = v
			case 1:
				got, ok := m.Get(a)
				want, wok := model[a]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Get(%d) = (%d,%v), model (%d,%v)", a, got, ok, want, wok)
				}
			case 2:
				m.Reset()
				model = map[mem.Addr]uint64{}
				if m.Len() != 0 {
					t.Fatalf("Len = %d after Reset", m.Len())
				}
				if got, ok := m.Get(a); ok {
					t.Fatalf("stale value %d for addr %d after Reset", got, a)
				}
			case 3:
				if m.Len() != len(model) {
					t.Fatalf("Len = %d, model %d", m.Len(), len(model))
				}
			case 4:
				seen := map[mem.Addr]uint64{}
				m.ForEach(func(a mem.Addr, v uint64) {
					if _, dup := seen[a]; dup {
						t.Fatalf("ForEach visited addr %d twice", a)
					}
					seen[a] = v
				})
				if len(seen) != len(model) {
					t.Fatalf("ForEach visited %d entries, model %d", len(seen), len(model))
				}
				for a, v := range model {
					if seen[a] != v {
						t.Fatalf("ForEach entry %d = %d, model %d", a, seen[a], v)
					}
				}
			}
		}
		// Final sweep: every model entry must still be retrievable.
		for a, v := range model {
			if got, ok := m.Get(a); !ok || got != v {
				t.Fatalf("final Get(%d) = (%d,%v), model %d", a, got, ok, v)
			}
		}
	})
}

// FuzzLinesetSet differentially tests the open-addressed Set (exact
// R/W/Wpriv chunk sets) against a plain Go map, with the tombstone-free
// Remove (backward-shift compaction) under direct attack: alternating
// Add/Remove streams over a small address space build exactly the probe
// chains the compaction must preserve.
//
// Encoding: each step consumes 3 bytes — opcode, 2-byte little-endian
// line.
func FuzzLinesetSet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 0, 1, 3, 0, 0, 3, 0})
	seq := make([]byte, 0, 300)
	for i := 0; i < 100; i++ {
		seq = append(seq, byte(i%6), byte(i*29%31), 0) // tiny space → dense probe chains
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Set
		model := map[mem.Line]bool{}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 6
			l := mem.Line(uint16(data[i+1]) | uint16(data[i+2])<<8)
			switch op {
			case 0:
				added := s.Add(l)
				if added == model[l] {
					t.Fatalf("Add(%d) = %v, model had %v", l, added, model[l])
				}
				model[l] = true
			case 1:
				removed := s.Remove(l)
				if removed != model[l] {
					t.Fatalf("Remove(%d) = %v, model %v", l, removed, model[l])
				}
				delete(model, l)
			case 2:
				if s.Has(l) != model[l] {
					t.Fatalf("Has(%d) = %v, model %v", l, s.Has(l), model[l])
				}
			case 3:
				if s.Len() != len(model) {
					t.Fatalf("Len = %d, model %d", s.Len(), len(model))
				}
			case 4:
				s.Reset()
				model = map[mem.Line]bool{}
				if s.Len() != 0 || s.Has(l) {
					t.Fatalf("set not empty after Reset")
				}
			case 5:
				seen := map[mem.Line]bool{}
				s.ForEach(func(l mem.Line) {
					if seen[l] {
						t.Fatalf("ForEach visited line %d twice", l)
					}
					seen[l] = true
				})
				if len(seen) != len(model) {
					t.Fatalf("ForEach visited %d lines, model %d", len(seen), len(model))
				}
				for l := range model {
					if !seen[l] {
						t.Fatalf("ForEach missed line %d", l)
					}
				}
				if got := s.AppendTo(nil); len(got) != len(model) {
					t.Fatalf("AppendTo returned %d lines, model %d", len(got), len(model))
				}
			}
		}
		// Final sweep: membership must match the model exactly.
		for l := range model {
			if !s.Has(l) {
				t.Fatalf("final Has(%d) = false", l)
			}
		}
	})
}

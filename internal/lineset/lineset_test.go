package lineset

import (
	"math/rand"
	"testing"

	"bulksc/internal/mem"
)

func TestSetBasics(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Has(5) {
		t.Fatal("zero set not empty")
	}
	if !s.Add(5) || s.Add(5) {
		t.Fatal("Add newness wrong")
	}
	if !s.Has(5) || s.Has(6) {
		t.Fatal("Has wrong")
	}
	if !s.Add(0) || !s.Has(0) {
		t.Fatal("line 0 must be storable")
	}
	if s.Len() != 2 {
		t.Fatalf("len=%d want 2", s.Len())
	}
	if !s.Remove(5) || s.Remove(5) || s.Has(5) {
		t.Fatal("Remove wrong")
	}
	s.Reset()
	if s.Len() != 0 || s.Has(0) {
		t.Fatal("Reset did not empty")
	}
}

// TestSetAgainstMap cross-checks the open-addressed set against a Go map
// under a random add/remove/has workload, including growth and heavy
// backward-shift deletion.
func TestSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Set
	ref := map[mem.Line]struct{}{}
	for op := 0; op < 200000; op++ {
		l := mem.Line(rng.Intn(500))
		switch rng.Intn(3) {
		case 0:
			_, had := ref[l]
			ref[l] = struct{}{}
			if got := s.Add(l); got == had {
				t.Fatalf("op %d: Add(%d)=%v, ref had=%v", op, l, got, had)
			}
		case 1:
			_, had := ref[l]
			delete(ref, l)
			if got := s.Remove(l); got != had {
				t.Fatalf("op %d: Remove(%d)=%v, ref had=%v", op, l, got, had)
			}
		default:
			_, had := ref[l]
			if got := s.Has(l); got != had {
				t.Fatalf("op %d: Has(%d)=%v, ref=%v", op, l, got, had)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("op %d: len=%d ref=%d", op, s.Len(), len(ref))
		}
	}
	// Full-content check via ForEach.
	seen := map[mem.Line]struct{}{}
	s.ForEach(func(l mem.Line) { seen[l] = struct{}{} })
	if len(seen) != len(ref) {
		t.Fatalf("ForEach saw %d lines, ref %d", len(seen), len(ref))
	}
	for l := range ref {
		if _, ok := seen[l]; !ok {
			t.Fatalf("ForEach missed %d", l)
		}
	}
}

func TestSetDeterministicIteration(t *testing.T) {
	build := func() []mem.Line {
		var s Set
		for i := 0; i < 300; i++ {
			s.Add(mem.Line(i * 7))
		}
		for i := 0; i < 300; i += 3 {
			s.Remove(mem.Line(i * 7))
		}
		return s.AppendTo(nil)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSetResetKeepsCapacity(t *testing.T) {
	var s Set
	for i := 0; i < 1000; i++ {
		s.Add(mem.Line(i))
	}
	capBefore := len(s.slots)
	s.Reset()
	for i := 0; i < 1000; i++ {
		s.Add(mem.Line(i))
	}
	if len(s.slots) != capBefore {
		t.Fatalf("Reset lost capacity: %d -> %d", capBefore, len(s.slots))
	}
}

func TestMapAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m Map
	ref := map[mem.Addr]uint64{}
	for op := 0; op < 100000; op++ {
		a := mem.Addr(rng.Intn(400) * 8)
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			ref[a] = v
			m.Put(a, v)
		} else {
			want, had := ref[a]
			got, ok := m.Get(a)
			if ok != had || (ok && got != want) {
				t.Fatalf("op %d: Get(%d)=(%d,%v) want (%d,%v)", op, a, got, ok, want, had)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: len=%d ref=%d", op, m.Len(), len(ref))
		}
	}
	m.ForEach(func(a mem.Addr, v uint64) {
		if ref[a] != v {
			t.Fatalf("ForEach %d=%d, ref %d", a, v, ref[a])
		}
		delete(ref, a)
	})
	if len(ref) != 0 {
		t.Fatalf("ForEach missed %d entries", len(ref))
	}
}

func TestMapAddrZero(t *testing.T) {
	var m Map
	m.Put(0, 99)
	if v, ok := m.Get(0); !ok || v != 99 {
		t.Fatal("addr 0 must be storable")
	}
}

// TestMapResetClearsValues: Reset must scrub the value table, not just the
// keys. Maps are recycled across chunks; a stale value left behind in a
// slot is one chunk's speculative data waiting to leak into the next.
func TestMapResetClearsValues(t *testing.T) {
	var m Map
	for i := 0; i < 64; i++ {
		m.Put(mem.Addr(i*8), 0xdead0000+uint64(i))
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	for i, v := range m.vals {
		if v != 0 {
			t.Fatalf("vals[%d] = %#x after Reset; stale value survived", i, v)
		}
	}
	// The map must still work after recycling, with no ghosts.
	for i := 0; i < 64; i++ {
		if _, ok := m.Get(mem.Addr(i * 8)); ok {
			t.Fatalf("Get(%d) hit after Reset", i*8)
		}
	}
	m.Put(8, 7)
	if v, ok := m.Get(8); !ok || v != 7 {
		t.Fatal("Put/Get broken after Reset")
	}
}

// TestMapRecyclingNeverLeaks drives a Map through many chunk-like
// fill/Reset cycles with adversarial overlapping address ranges and checks
// each generation only ever observes its own writes — the pool-recycling
// property the simulator's speculative write buffers rely on.
func TestMapRecyclingNeverLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var m Map
	for gen := 0; gen < 200; gen++ {
		ref := map[mem.Addr]uint64{}
		// Shifting, partially-overlapping footprint each generation.
		base := rng.Intn(100)
		for op := 0; op < 50; op++ {
			a := mem.Addr((base + rng.Intn(60)) * 8)
			if rng.Intn(3) > 0 {
				v := uint64(gen)<<32 | rng.Uint64()&0xffffffff
				ref[a] = v
				m.Put(a, v)
				continue
			}
			want, had := ref[a]
			got, ok := m.Get(a)
			if ok != had || (ok && got != want) {
				t.Fatalf("gen %d: Get(%d)=(%#x,%v) want (%#x,%v)", gen, a, got, ok, want, had)
			}
			if ok && got>>32 != uint64(gen) {
				t.Fatalf("gen %d observed value %#x from generation %d", gen, got, got>>32)
			}
		}
		m.ForEach(func(a mem.Addr, v uint64) {
			if ref[a] != v {
				t.Fatalf("gen %d: ForEach %d=%#x, ref %#x", gen, a, v, ref[a])
			}
		})
		m.Reset()
	}
}

// Package lineset provides the open-addressed line-set and word-map
// structures backing the simulator's hot per-chunk state (exact R/W/Wpriv
// sets, speculative write buffers) and its exact-signature encoding.
//
// Both structures are designed for the chunk churn of squash-heavy
// workloads: linear probing over flat []uint64 slots (no per-entry
// allocation, no bucket pointers), tombstone-free deletion by backward
// shifting, and Reset() that zeroes in place instead of reallocating, so a
// pooled chunk's sets reach steady state with no allocation at all.
// Iteration order is slot order — deterministic for a fixed insertion
// history, unlike Go maps — which keeps whole-system runs bit-reproducible.
// Sets and maps optionally draw their backing arrays from a slab.Pool
// (UseArena): growth returns the outgrown array to the pool and pulls the
// next size from it, and Release returns the whole table at
// warm-machine-reuse drain time. Capacity trajectories are unchanged —
// the pool only recycles storage, never sizes — so arena use is invisible
// to the simulation (slot order depends on capacity and contents alone).
package lineset

import (
	"bulksc/internal/mem"
	"bulksc/internal/slab"
)

// minSlots is the initial table size (power of two). Most chunks touch a
// few dozen lines; 16 slots avoids growth for small chunks while costing
// 128 bytes.
const minSlots = 16

// hashmul is the 64-bit golden-ratio multiplier (Fibonacci hashing).
const hashmul = 0x9e3779b97f4a7c15

// Set is an open-addressed set of cache lines. The zero value is an empty
// set ready for use. Slots store line+1 so 0 marks an empty slot.
type Set struct {
	slots []uint64
	n     int
	//lint:poolsafe machine-lifetime recycler wiring (UseArena); storage source only, never simulated state
	arena *slab.Pool[uint64]
}

// UseArena makes the set draw and return its backing array through a
// (typically machine-lifetime) slab pool. Must be set before first Add;
// a nil pool means plain allocation.
func (s *Set) UseArena(a *slab.Pool[uint64]) { s.arena = a }

// Release empties the set and returns its backing array to the arena (if
// any), restoring the zero-value cold shape. Used when draining pooled
// chunks at warm machine reuse; the caller asserts nothing aliases the
// table (Set never hands out its slots).
func (s *Set) Release() {
	if s.slots != nil {
		s.arena.Put(s.slots)
		s.slots = nil
	}
	s.n = 0
}

func hashIdx(key uint64, mask int) int {
	return int((key*hashmul)>>33) & mask
}

// Len returns the number of lines in the set.
func (s *Set) Len() int { return s.n }

// Has reports whether l is in the set.
//
//sim:hotpath
func (s *Set) Has(l mem.Line) bool {
	if s.n == 0 {
		return false
	}
	mask := len(s.slots) - 1
	k := uint64(l) + 1
	for i := hashIdx(k, mask); ; i = (i + 1) & mask {
		v := s.slots[i]
		if v == k {
			return true
		}
		if v == 0 {
			return false
		}
	}
}

// Add inserts l and reports whether it was newly added.
//
//sim:hotpath
func (s *Set) Add(l mem.Line) bool {
	if s.slots == nil {
		s.slots = s.arena.Get(minSlots)
	} else if s.n*4 >= len(s.slots)*3 {
		s.grow()
	}
	mask := len(s.slots) - 1
	k := uint64(l) + 1
	for i := hashIdx(k, mask); ; i = (i + 1) & mask {
		v := s.slots[i]
		if v == k {
			return false
		}
		if v == 0 {
			s.slots[i] = k
			s.n++
			return true
		}
	}
}

// Remove deletes l, reporting whether it was present. Deletion is
// tombstone-free: the probe chain after the vacated slot is compacted by
// backward shifting, so lookups never degrade.
//
//sim:hotpath
func (s *Set) Remove(l mem.Line) bool {
	if s.n == 0 {
		return false
	}
	mask := len(s.slots) - 1
	k := uint64(l) + 1
	i := hashIdx(k, mask)
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if v == k {
			break
		}
		i = (i + 1) & mask
	}
	s.slots[i] = 0
	s.n--
	// Backward-shift compaction.
	j := i
	for {
		j = (j + 1) & mask
		v := s.slots[j]
		if v == 0 {
			return true
		}
		home := hashIdx(v, mask)
		if (j-home)&mask >= (j-i)&mask {
			s.slots[i] = v
			s.slots[j] = 0
			i = j
		}
	}
}

// Reset empties the set in place, keeping the allocated table.
//
//sim:hotpath
func (s *Set) Reset() {
	if s.n == 0 {
		return
	}
	clear(s.slots)
	s.n = 0
}

// ForEach calls f for every line, in slot order (deterministic for a fixed
// insertion/removal history).
//
//sim:hotpath
func (s *Set) ForEach(f func(mem.Line)) {
	if s.n == 0 {
		return
	}
	for _, v := range s.slots {
		if v != 0 {
			f(mem.Line(v - 1))
		}
	}
}

// AppendTo appends the set's lines to dst in slot order and returns it.
//
//sim:hotpath
func (s *Set) AppendTo(dst []mem.Line) []mem.Line {
	if s.n == 0 {
		return dst
	}
	for _, v := range s.slots {
		if v != 0 {
			dst = append(dst, mem.Line(v-1))
		}
	}
	return dst
}

func (s *Set) grow() {
	old := s.slots
	s.slots = s.arena.Get(len(old) * 2)
	mask := len(s.slots) - 1
	for _, k := range old {
		if k == 0 {
			continue
		}
		for i := hashIdx(k, mask); ; i = (i + 1) & mask {
			if s.slots[i] == 0 {
				s.slots[i] = k
				break
			}
		}
	}
	s.arena.Put(old)
}

// NewSetOf returns a set holding the given lines; a convenience for tests
// and one-line commits.
func NewSetOf(lines ...mem.Line) *Set {
	s := &Set{}
	for _, l := range lines {
		s.Add(l)
	}
	return s
}

// Map is an open-addressed map from word-aligned addresses to 64-bit
// values — the chunk's speculative write buffer. The zero value is an empty
// map ready for use. Keys store addr+1 so 0 marks an empty slot.
type Map struct {
	keys []uint64
	vals []uint64
	n    int
	//lint:poolsafe machine-lifetime recycler wiring (UseArena); storage source only, never simulated state
	arena *slab.Pool[uint64]
}

// UseArena makes the map draw and return its backing arrays through a
// (typically machine-lifetime) slab pool; see Set.UseArena.
func (m *Map) UseArena(a *slab.Pool[uint64]) { m.arena = a }

// Release empties the map and returns its backing arrays to the arena
// (if any), restoring the zero-value cold shape; see Set.Release.
func (m *Map) Release() {
	if m.keys != nil {
		m.arena.Put(m.keys)
		m.arena.Put(m.vals)
		m.keys = nil
		m.vals = nil
	}
	m.n = 0
}

// Len returns the number of entries.
func (m *Map) Len() int { return m.n }

// Get returns the value stored for a.
//
//sim:hotpath
func (m *Map) Get(a mem.Addr) (uint64, bool) {
	if m.n == 0 {
		return 0, false
	}
	mask := len(m.keys) - 1
	k := uint64(a) + 1
	for i := hashIdx(k, mask); ; i = (i + 1) & mask {
		v := m.keys[i]
		if v == k {
			return m.vals[i], true
		}
		if v == 0 {
			return 0, false
		}
	}
}

// Put stores val for a, overwriting any previous value.
//
//sim:hotpath
func (m *Map) Put(a mem.Addr, val uint64) {
	if m.keys == nil {
		m.keys = m.arena.Get(minSlots)
		m.vals = m.arena.Get(minSlots)
	} else if m.n*4 >= len(m.keys)*3 {
		m.grow()
	}
	mask := len(m.keys) - 1
	k := uint64(a) + 1
	for i := hashIdx(k, mask); ; i = (i + 1) & mask {
		v := m.keys[i]
		if v == k {
			m.vals[i] = val
			return
		}
		if v == 0 {
			m.keys[i] = k
			m.vals[i] = val
			m.n++
			return
		}
	}
}

// Reset empties the map in place, keeping the allocated tables. Values are
// cleared along with the keys: Maps are pooled and recycled across chunks
// (the speculative write buffer), and a stale value surviving in a slot
// whose key is later re-occupied by a different chunk would silently leak
// one chunk's speculative data into another's if any probe path ever reads
// a value before fully matching its key.
//
//sim:hotpath
func (m *Map) Reset() {
	if m.n == 0 {
		return
	}
	clear(m.keys)
	clear(m.vals)
	m.n = 0
}

// ForEach calls f for every (addr, value) pair, in slot order.
//
//sim:hotpath
func (m *Map) ForEach(f func(a mem.Addr, v uint64)) {
	if m.n == 0 {
		return
	}
	for i, k := range m.keys {
		if k != 0 {
			f(mem.Addr(k-1), m.vals[i])
		}
	}
}

func (m *Map) grow() {
	oldK, oldV := m.keys, m.vals
	m.keys = m.arena.Get(len(oldK) * 2)
	m.vals = m.arena.Get(len(oldK) * 2)
	mask := len(m.keys) - 1
	for j, k := range oldK {
		if k == 0 {
			continue
		}
		for i := hashIdx(k, mask); ; i = (i + 1) & mask {
			if m.keys[i] == 0 {
				m.keys[i] = k
				m.vals[i] = oldV[j]
				break
			}
		}
	}
	m.arena.Put(oldK)
	m.arena.Put(oldV)
}

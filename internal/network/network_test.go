package network

import (
	"testing"

	"bulksc/internal/sim"
	"bulksc/internal/stats"
)

func newNet() (*Network, *sim.Engine, *stats.Stats) {
	eng := sim.NewEngine(1)
	st := stats.New()
	return New(eng, st), eng, st
}

func TestSendDeliversAfterHop(t *testing.T) {
	n, eng, _ := newNet()
	var at sim.Time
	n.Send(stats.CatData, DataBytes, func() { at = eng.Now() })
	eng.Run(nil)
	if at != n.HopLat {
		t.Fatalf("delivered at %d, want %d", at, n.HopLat)
	}
}

func TestSendAfterAddsDelay(t *testing.T) {
	n, eng, _ := newNet()
	var at sim.Time
	n.SendAfter(10, stats.CatOther, CtrlBytes, func() { at = eng.Now() })
	eng.Run(nil)
	if at != n.HopLat+10 {
		t.Fatalf("delivered at %d, want %d", at, n.HopLat+10)
	}
}

func TestTrafficCharged(t *testing.T) {
	n, eng, st := newNet()
	n.Send(stats.CatWrSig, SigBytes, func() {})
	n.Send(stats.CatInv, CtrlBytes, func() {})
	n.Account(stats.CatRdSig, SigBytes)
	eng.Run(nil)
	if st.TrafficBytes[stats.CatWrSig] != SigBytes {
		t.Error("WrSig bytes wrong")
	}
	if st.TrafficBytes[stats.CatInv] != CtrlBytes {
		t.Error("Inv bytes wrong")
	}
	if st.TrafficBytes[stats.CatRdSig] != SigBytes {
		t.Error("Account did not charge")
	}
	if st.Messages[stats.CatWrSig] != 1 || st.Messages[stats.CatRdSig] != 1 {
		t.Error("message counts wrong")
	}
}

func TestMessagesOrderedByLatency(t *testing.T) {
	n, eng, _ := newNet()
	var order []int
	n.SendAfter(20, stats.CatOther, CtrlBytes, func() { order = append(order, 2) })
	n.Send(stats.CatOther, CtrlBytes, func() { order = append(order, 1) })
	eng.Run(nil)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order %v", order)
	}
}

// Package network models the generic interconnection network of the BulkSC
// architecture (paper Figure 5): a fabric connecting processors, directory
// modules and arbiters.
//
// The model is latency + accounting, matching the paper's "unloaded
// machine" methodology (Table 2): each message is delivered after a fixed
// per-hop latency, and its bytes are charged to one of Figure 11's traffic
// categories. Contention is not modeled; the paper's bandwidth argument is
// made in bytes transferred, which this package reproduces exactly.
package network

import (
	"bulksc/internal/fault"
	"bulksc/internal/sim"
	"bulksc/internal/stats"
)

// Standard message sizes in bytes. Control messages carry a header only;
// data messages carry a 32 B line; signature messages carry a compressed
// ≈350-bit signature (44 B, see sig.CompressedBytes).
const (
	CtrlBytes = 8
	DataBytes = 8 + 32
	SigBytes  = 8 + 44
)

// Network delivers messages between system components.
type Network struct {
	//lint:poolsafe immutable machine-lifetime references wired at construction
	eng *sim.Engine
	//lint:poolsafe immutable machine-lifetime references wired at construction
	st *stats.Stats
	// HopLat is the one-way latency between any two components. The
	// default reproduces the paper's 13-cycle L2 round trip (two hops
	// minus cache access time).
	HopLat sim.Time
	// Faults optionally injects extra per-message latency (internal/fault
	// delay-jitter campaigns). nil injects nothing and draws nothing, so
	// fault-free runs are bit-identical to a build without the hook.
	Faults *fault.Plan
}

// New returns a network over engine eng recording traffic into st.
func New(eng *sim.Engine, st *stats.Stats) *Network {
	return &Network{eng: eng, st: st, HopLat: 6}
}

// Reset restores the construction-time latency and detaches the per-run
// fault plan. The network holds no queued state of its own (in-flight
// messages live in the engine's event heap, which the machine resets
// separately), so this is all warm reuse needs.
func (n *Network) Reset() {
	n.HopLat = 6
	n.Faults = nil
}

// hopLat returns the delivery latency for one message: the configured hop
// latency plus any injected fault jitter.
//
//sim:hotpath
func (n *Network) hopLat() sim.Time {
	return n.HopLat + sim.Time(n.Faults.NetDelay())
}

// Send charges a message of b bytes to category c and delivers it (runs f)
// one hop later.
func (n *Network) Send(c stats.Category, b int, f func()) {
	n.st.AddTraffic(c, b)
	n.eng.After(n.hopLat(), f)
}

// SendAfter is Send with extra cycles of source-side occupancy or
// processing delay before the hop.
func (n *Network) SendAfter(extra sim.Time, c stats.Category, b int, f func()) {
	n.st.AddTraffic(c, b)
	n.eng.After(n.hopLat()+extra, f)
}

// SendCall is the allocation-free form of Send: it delivers cb(arg) one
// hop later through the engine's typed-callback path, so hot protocol
// layers can reuse one long-lived callback and thread per-message state
// through a pooled record instead of capturing it in a closure.
func (n *Network) SendCall(c stats.Category, b int, cb func(any), arg any) {
	n.st.AddTraffic(c, b)
	n.eng.AfterCall(n.hopLat(), cb, arg)
}

// SendAfterCall is SendCall with extra cycles of source-side occupancy or
// processing delay before the hop.
func (n *Network) SendAfterCall(extra sim.Time, c stats.Category, b int, cb func(any), arg any) {
	n.st.AddTraffic(c, b)
	n.eng.AfterCall(n.hopLat()+extra, cb, arg)
}

// Account charges traffic without scheduling a delivery, for piggybacked
// payloads whose timing rides an existing message.
func (n *Network) Account(c stats.Category, b int) { n.st.AddTraffic(c, b) }

// Engine exposes the underlying engine for components that only hold the
// network.
func (n *Network) Engine() *sim.Engine { return n.eng }

package slab

import "testing"

func TestGetRecyclesByLength(t *testing.T) {
	var p Pool[uint64]
	a := p.Get(16)
	if len(a) != 16 {
		t.Fatalf("len = %d, want 16", len(a))
	}
	a[3] = 99
	p.Put(a)
	b := p.Get(16)
	if &b[0] != &a[0] {
		t.Error("Get did not recycle the pooled array")
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("recycled array not zeroed at %d: %d", i, v)
		}
	}
	if c := p.Get(16); &c[0] == &b[0] {
		t.Error("pool handed out the same array twice")
	}
}

func TestClassSeparation(t *testing.T) {
	var p Pool[int]
	p.Put(make([]int, 32))
	if s := p.Get(16); len(s) != 16 {
		t.Fatalf("Get(16) returned len %d", len(s))
	}
	if s := p.Get(32); len(s) != 32 {
		t.Fatalf("Get(32) returned len %d", len(s))
	}
}

func TestNonPowerOfTwoDropped(t *testing.T) {
	var p Pool[byte]
	p.Put(make([]byte, 24)) // not a power of two: dropped
	p.Put(nil)              // zero length: dropped
	s := p.Get(8)
	if len(s) != 8 {
		t.Fatalf("Get(8) returned len %d", len(s))
	}
}

func TestNilPoolInert(t *testing.T) {
	var p *Pool[uint64]
	s := p.Get(8)
	if len(s) != 8 {
		t.Fatalf("nil pool Get(8) returned len %d", len(s))
	}
	p.Put(s) // must not panic
}

func TestPutClearsPointers(t *testing.T) {
	var p Pool[*int]
	x := 7
	s := make([]*int, 8)
	s[2] = &x
	p.Put(s)
	got := p.Get(8)
	for i, v := range got {
		if v != nil {
			t.Fatalf("recycled pointer array not cleared at %d", i)
		}
	}
}

// Package slab provides a size-class recycler for the power-of-two
// backing arrays behind the simulator's open-addressed tables (package
// lineset's sets and maps, the directory's entryMap buckets).
//
// The warm-reuse bit-identity contract (DESIGN.md §11) forbids carrying a
// table's *capacity* across runs — slot-order iteration depends on it —
// so every run must re-walk the cold growth history: allocate 16 slots,
// grow to 32, 64, ... . A Pool lets that history reuse *storage* without
// reusing capacity: grown-out and drained arrays are binned by length,
// and the next request for the same length pops one instead of
// allocating. A recycled array is returned zeroed, making it
// indistinguishable from a fresh make — array identity never reaches
// simulated state, so recycling is behavior-neutral by construction (and
// pinned by the golden warm-reuse tests).
//
// Pools are owned by long-lived machine components (one per processor for
// chunk state, one per directory module for its buckets) and therefore
// survive machine.Reset: a warm machine's second run draws its entire
// growth history from the pool, which is where the warm sweep's
// allocation win over cold construction comes from. A Pool is not safe
// for concurrent use; parallel sweep workers each own their machine and
// with it their pools.
package slab

import "math/bits"

// maxClass bounds the tracked size classes: lengths up to 2^maxClass-1
// elements. Larger slices (none exist in practice — the largest tables
// hold tens of thousands of slots) are allocated directly.
const maxClass = 28

// Pool recycles power-of-two-length slices of T, binned by length. The
// zero value is an empty pool ready for use; a nil *Pool is inert (Get
// allocates, Put drops).
type Pool[T any] struct {
	classes [maxClass][][]T
}

// class returns the bin for length n, or -1 if n is untracked (not a
// power of two, zero, or out of range).
func class(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		return -1
	}
	c := bits.TrailingZeros(uint(n))
	if c >= maxClass {
		return -1
	}
	return c
}

// Get returns a zeroed slice of length n (n must be a power of two),
// recycling a pooled one when available.
//
//sim:pool acquire
func (p *Pool[T]) Get(n int) []T {
	if p != nil {
		if c := class(n); c >= 0 {
			if bin := p.classes[c]; len(bin) > 0 {
				s := bin[len(bin)-1]
				bin[len(bin)-1] = nil
				p.classes[c] = bin[:len(bin)-1]
				return s
			}
		}
	}
	return make([]T, n)
}

// Put recycles s for a future Get of the same length. The slice is
// cleared here — at recycle time, not hand-out time — so pooled memory
// never retains stale simulated state (or, for pointer element types,
// dead references). Non-power-of-two or oversized slices are dropped.
//
//sim:pool release
func (p *Pool[T]) Put(s []T) {
	if p == nil {
		return
	}
	c := class(len(s))
	if c < 0 {
		return
	}
	clear(s)
	p.classes[c] = append(p.classes[c], s[:len(s):len(s)])
}

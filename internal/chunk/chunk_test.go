package chunk

import (
	"testing"
	"testing/quick"

	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

func newChunk(k sig.Kind) *Chunk {
	return New(sig.NewFactory(k), nil, 0, 1, 0, 0, 1000)
}

func TestRecordLoadUpdatesR(t *testing.T) {
	c := newChunk(sig.KindExact)
	c.RecordLoad(0x1000, 7, false)
	l := mem.Addr(0x1000).LineOf()
	if !c.R.MayContain(l) {
		t.Fatal("R signature missing loaded line")
	}
	if !c.RSet.Has(l) {
		t.Fatal("RSet missing loaded line")
	}
	if len(c.Log) != 1 || c.Log[0].IsStore || c.Log[0].Value != 7 {
		t.Fatal("load log wrong")
	}
}

func TestPrivateLoadSkipsR(t *testing.T) {
	c := newChunk(sig.KindExact)
	c.RecordLoad(0x2000, 1, true)
	if !c.R.Empty() || c.RSet.Len() != 0 {
		t.Fatal("private load polluted R")
	}
	if len(c.Log) != 1 {
		t.Fatal("private load not logged")
	}
}

func TestRecordStoreRouting(t *testing.T) {
	c := newChunk(sig.KindExact)
	c.RecordStore(0x1000, 11, false)
	c.RecordStore(0x3000, 22, true)
	if !c.W.MayContain(mem.Addr(0x1000).LineOf()) {
		t.Fatal("shared store missing from W")
	}
	if c.W.MayContain(mem.Addr(0x3000).LineOf()) {
		t.Fatal("private store leaked into W")
	}
	if !c.Wpriv.MayContain(mem.Addr(0x3000).LineOf()) {
		t.Fatal("private store missing from Wpriv")
	}
	if v, ok := c.Forward(0x1000); !ok || v != 11 {
		t.Fatal("forwarding failed for shared store")
	}
	if v, ok := c.Forward(0x3000); !ok || v != 22 {
		t.Fatal("forwarding failed for private store")
	}
}

func TestForwardMissesOtherAddrs(t *testing.T) {
	c := newChunk(sig.KindExact)
	c.RecordStore(0x1000, 5, false)
	if _, ok := c.Forward(0x1008); ok {
		t.Fatal("forwarded from different word")
	}
	if v, ok := c.Forward(0x1004); !ok || v != 5 {
		t.Fatal("sub-word address should alias its containing word")
	}
}

func TestPromoteToW(t *testing.T) {
	c := newChunk(sig.KindExact)
	c.RecordStore(0x4000, 9, true)
	l := mem.Addr(0x4000).LineOf()
	if !c.PromoteToW(l) {
		t.Fatal("PromoteToW failed for private line")
	}
	if c.PrivSet.Has(l) {
		t.Fatal("line still in PrivSet after promotion")
	}
	if !c.W.MayContain(l) {
		t.Fatal("promoted line missing from W")
	}
	if c.PromoteToW(l) {
		t.Fatal("double promotion reported success")
	}
	if c.PromoteToW(mem.Line(999)) {
		t.Fatal("promotion of unknown line reported success")
	}
}

func TestWroteLine(t *testing.T) {
	c := newChunk(sig.KindExact)
	c.RecordStore(0x1000, 1, false)
	c.RecordStore(0x2000, 2, true)
	if !c.WroteLine(mem.Addr(0x1000).LineOf()) || !c.WroteLine(mem.Addr(0x2000).LineOf()) {
		t.Fatal("WroteLine missed a written line")
	}
	if c.WroteLine(mem.Addr(0x9000).LineOf()) {
		t.Fatal("WroteLine reported unwritten line")
	}
}

func TestConflictDetectionTrue(t *testing.T) {
	for _, k := range []sig.Kind{sig.KindBloom, sig.KindExact} {
		local := newChunk(k)
		local.RecordLoad(0x1000, 0, false)
		wc := sig.NewFactory(k)()
		wc.Add(mem.Addr(0x1000).LineOf())
		trueW := lineset.NewSetOf(mem.Addr(0x1000).LineOf())
		hit, genuine := local.ConflictsWith(wc, trueW)
		if !hit || !genuine {
			t.Fatalf("%v: genuine conflict not detected (hit=%v genuine=%v)", k, hit, genuine)
		}
	}
}

func TestConflictDetectionWriteWrite(t *testing.T) {
	local := newChunk(sig.KindExact)
	local.RecordStore(0x1000, 1, false)
	wc := sig.NewExact()
	wc.Add(mem.Addr(0x1000).LineOf())
	hit, _ := local.ConflictsWith(wc, nil)
	if !hit {
		t.Fatal("W∩W conflict not detected")
	}
}

func TestNoConflictOnDisjoint(t *testing.T) {
	local := newChunk(sig.KindExact)
	local.RecordLoad(0x1000, 0, false)
	wc := sig.NewExact()
	wc.Add(mem.Addr(0x8000).LineOf())
	if hit, _ := local.ConflictsWith(wc, nil); hit {
		t.Fatal("disjoint chunks conflicted (exact sigs cannot alias)")
	}
}

func TestPrivateWritesExemptFromConflicts(t *testing.T) {
	local := newChunk(sig.KindExact)
	local.RecordStore(0x5000, 1, true) // private write only
	wc := sig.NewExact()
	wc.Add(mem.Addr(0x5000).LineOf())
	if hit, _ := local.ConflictsWith(wc, nil); hit {
		t.Fatal("Wpriv participated in disambiguation")
	}
}

func TestAliasedConflictClassification(t *testing.T) {
	// With bloom signatures, find a case where signatures intersect but no
	// true line is shared: brute-force search two single-line sigs that
	// alias.
	found := false
	for a := mem.Line(0); a < 4096 && !found; a++ {
		local := newChunk(sig.KindBloom)
		local.RecordLoad(a.Addr(), 0, false)
		for b := mem.Line(100000); b < 101000; b++ {
			if a == b {
				continue
			}
			wc := sig.NewBloom()
			wc.Add(b)
			trueW := lineset.NewSetOf(b)
			if hit, genuine := local.ConflictsWith(wc, trueW); hit {
				if genuine {
					t.Fatal("aliased conflict misclassified as genuine")
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no aliasing pair found in search range (hash too strong)")
	}
}

func TestActiveStates(t *testing.T) {
	c := newChunk(sig.KindExact)
	for st, want := range map[State]bool{
		Executing: true, Completed: true, Arbitrating: true,
		Committing: false, Committed: false, Squashed: false,
	} {
		c.State = st
		if c.Active() != want {
			t.Errorf("Active() in %v = %v, want %v", st, c.Active(), want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	if Executing.String() != "executing" || Squashed.String() != "squashed" {
		t.Fatal("State strings wrong")
	}
}

// Property: a chunk always conflicts with a committing W that contains any
// line in its R or W set (no false negatives, either signature kind).
func TestQuickNoMissedConflicts(t *testing.T) {
	for _, k := range []sig.Kind{sig.KindBloom, sig.KindExact} {
		k := k
		f := func(reads, writes []uint32, pick uint8) bool {
			if len(reads)+len(writes) == 0 {
				return true
			}
			c := newChunk(k)
			for _, r := range reads {
				c.RecordLoad(mem.Addr(r)*mem.LineBytes, 0, false)
			}
			for _, w := range writes {
				c.RecordStore(mem.Addr(w)*mem.LineBytes, 0, false)
			}
			all := append(append([]uint32{}, reads...), writes...)
			target := mem.Line(all[int(pick)%len(all)])
			wc := sig.NewFactory(k)()
			wc.Add(target)
			hit, _ := c.ConflictsWith(wc, lineset.NewSetOf(target))
			return hit
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

// TestPoolRecycledChunkIsPristine: a chunk recycled through the pool after
// a squash must behave exactly like a fresh one — in particular its write
// buffer must not forward values buffered by the previous incarnation.
// Before Map.Reset scrubbed its value table, a recycled chunk could leak
// the squashed chunk's speculative stores to a later Forward probe.
func TestPoolRecycledChunkIsPristine(t *testing.T) {
	f := sig.NewFactory(sig.KindExact)
	var pool Pool
	c := pool.Get(f, nil, 0, 1, 0, 0, 1000)
	for i := 0; i < 32; i++ {
		a := mem.Addr(i * 8)
		c.RecordStore(a, 0xbad0+uint64(i), i%2 == 0)
		c.RecordLoad(a+4096, uint64(i), false)
	}
	gen := c.Gen
	pool.Put(c) // squash path

	r := pool.Get(f, nil, 3, 9, 1, 7, 500)
	if r != c {
		t.Fatal("pool did not recycle the chunk")
	}
	if r.Gen != gen+1 {
		t.Fatalf("Gen = %d, want %d (stale callbacks must be defused)", r.Gen, gen+1)
	}
	if r.Proc != 3 || r.Seq != 9 || r.State != Executing || len(r.Log) != 0 {
		t.Fatalf("recycled chunk not reinitialized: %v", r)
	}
	for i := 0; i < 32; i++ {
		a := mem.Addr(i * 8)
		if v, ok := r.Forward(a); ok {
			t.Fatalf("recycled chunk forwards stale value %#x for addr %d", v, a)
		}
		l := a.LineOf()
		if r.RSet.Has(mem.Addr(i*8+4096).LineOf()) || r.WSet.Has(l) || r.PrivSet.Has(l) {
			t.Fatal("recycled chunk retains previous incarnation's sets")
		}
	}
	if !r.R.Empty() || !r.W.Empty() || !r.Wpriv.Empty() {
		t.Fatal("recycled chunk retains previous incarnation's signatures")
	}
}

// BenchmarkChunkAccessLoop measures the per-access bookkeeping of an
// executing chunk through a full squash/re-execute recycle: pooled Get,
// a realistic load/store mix (RecordLoad/RecordStore with forwarding
// probes), then Put. This is the loop that dominates squash-heavy apps
// (radix, raytrace); steady state must be allocation-free — the pooled
// chunk's signatures, open-addressed sets, write buffer and log all reuse
// their backing storage.
func BenchmarkChunkAccessLoop(b *testing.B) {
	f := sig.NewFactory(sig.KindBloom)
	var pool Pool
	const accesses = 64 // lines touched per simulated chunk body
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := pool.Get(f, nil, 0, uint64(i), 0, 0, 1000)
		for j := 0; j < accesses; j++ {
			a := mem.Addr(j*64 + (i&7)*4096)
			if j&3 == 0 {
				c.RecordStore(a, uint64(j), j&7 == 0)
			} else {
				if v, ok := c.Forward(a); ok {
					_ = v
				}
				c.RecordLoad(a, uint64(j), false)
			}
		}
		pool.Put(c) // squash path: recycle everything
	}
}

// TestPoolAdopt exercises the cross-run retirement path: a committed
// chunk re-enters the pool via Adopt, which must defuse stale callbacks
// (Gen bump), route its signatures to the SigRecycler, restore its sets
// to the cold zero-value shape, and leave the chunk ready for the next
// run's Get to rebuild signatures from the current factory.
func TestPoolAdopt(t *testing.T) {
	f := sig.NewFactory(sig.KindBloom)
	var pool Pool
	var recycled []sig.Signature
	pool.SigRecycler = func(s sig.Signature) { recycled = append(recycled, s) }

	c := pool.Get(f, nil, 0, 1, 0, 0, 1000)
	for i := 0; i < 16; i++ {
		a := mem.Addr(i * 64)
		c.RecordStore(a, uint64(i), i%2 == 0)
		c.RecordLoad(a+4096, uint64(i), false)
	}
	c.State = Committed
	gen := c.Gen
	pool.Adopt(c)

	if c.Gen != gen+1 {
		t.Fatalf("Adopt left Gen = %d, want %d (stale callbacks must be defused)", c.Gen, gen+1)
	}
	if len(recycled) != 3 {
		t.Fatalf("Adopt routed %d signatures to SigRecycler, want 3 (R, W, Wpriv)", len(recycled))
	}
	if c.R != nil || c.W != nil || c.Wpriv != nil {
		t.Fatal("Adopt retained detached signatures on the chunk")
	}
	if c.RSet.Len() != 0 || c.WSet.Len() != 0 || c.PrivSet.Len() != 0 || len(c.Log) != 0 {
		t.Fatal("Adopt did not restore cold shape")
	}

	r := pool.Get(f, nil, 2, 5, 1, 3, 700)
	if r != c {
		t.Fatal("pool did not recycle the adopted chunk")
	}
	if r.R == nil || r.W == nil || r.Wpriv == nil {
		t.Fatal("Get did not rebuild signatures for an adopted chunk")
	}
	if !r.R.Empty() || !r.W.Empty() || !r.Wpriv.Empty() {
		t.Fatal("rebuilt signatures not empty")
	}
	if r.Proc != 2 || r.Seq != 5 || r.State != Executing {
		t.Fatalf("adopted chunk not reinitialized: %+v", r)
	}
	if _, ok := r.Forward(0); ok {
		t.Fatal("adopted chunk forwards a stale value")
	}
}

// Package chunk holds the per-chunk speculative state of BulkSC: the R, W
// and Wpriv signatures, the exact line sets that back the signatures (used
// to apply commits, to classify aliased squashes and to compute Table 3's
// set sizes), the speculative write buffer, and the load/store logs that
// feed the SC replay checker.
//
// A chunk is created at a checkpoint, accumulates accesses while the
// processor executes it, then either commits (its buffered writes become
// the committed memory state, in global arbitration order) or squashes
// (everything is discarded and the processor re-executes from the
// checkpoint).
//
// The exact sets are open-addressed lineset structures rather than Go
// maps, and chunks are recycled through a Pool across squash/re-execute
// cycles: squash-heavy applications (radix, raytrace) churn chunk state
// constantly, and pooling makes a re-executed chunk's bookkeeping
// allocation-free. A generation counter (Gen) guards stale references —
// any callback that may outlive a squash must capture Gen and compare.
package chunk

import (
	"fmt"

	"bulksc/internal/lineset"
	"bulksc/internal/mem"
	"bulksc/internal/sig"
	"bulksc/internal/slab"
)

// State is a chunk's lifecycle position.
type State int

const (
	// Executing: the processor is still dispatching the chunk's
	// instructions.
	Executing State = iota
	// Completed: all instructions executed; waiting for outstanding line
	// fills before arbitration may start.
	Completed
	// Arbitrating: a permission-to-commit request is in flight.
	Arbitrating
	// Committing: permission granted; invalidations propagating.
	Committing
	// Committed: fully done.
	Committed
	// Squashed: discarded.
	Squashed
)

func (s State) String() string {
	return [...]string{"executing", "completed", "arbitrating", "committing", "committed", "squashed"}[s]
}

// AccessRec logs one memory access for the replay checker, in program
// order within the chunk.
type AccessRec struct {
	IsStore bool
	Addr    mem.Addr
	Value   uint64 // store: value written; load: load observed
}

// Chunk is one dynamic chunk's speculative context.
type Chunk struct {
	Proc     int    // owning processor
	Seq      uint64 // per-processor chunk sequence number
	Slot     int    // hardware signature-pair slot (0..MaxSlots-1)
	Checkpt  int    // stream position of the checkpoint
	State    State
	Target   int // instruction budget for this chunk
	Executed int // dynamic instructions dispatched so far

	// Gen is the recycling generation. Pool.Put bumps it; callbacks that
	// may fire after a squash capture it and bail on mismatch, so pooled
	// reuse can never corrupt a successor chunk.
	Gen uint64

	// Signatures (superset encodings used by the protocol).
	R, W, Wpriv sig.Signature

	// Sum, when non-nil, is the owning processor's live-summary signature:
	// the BDM's incrementally-maintained union of every active chunk's
	// R∪W (DESIGN.md §16). RecordLoad, RecordStore and PromoteToW mirror
	// each shared-line insert into it, so an incoming committing W that
	// does not intersect the summary provably cannot conflict with any
	// chunk and the whole disambiguation walk is skipped. Proc-owned
	// wiring: openChunk attaches it at acquisition; recycling detaches it.
	Sum sig.Signature

	// Exact line sets backing the signatures. RSet/WSet drive commit
	// application and stats; PrivSet backs Wpriv.
	RSet, WSet, PrivSet lineset.Set

	// WriteBuf holds the chunk's speculative word values (Rule1: not
	// visible to other chunks until commit).
	WriteBuf lineset.Map

	// Log is the program-order access log for the replay checker.
	Log []AccessRec

	// Pending counts line fills requested by this chunk that have not
	// arrived; arbitration may not start until it reaches zero.
	Pending int

	// ReqsOut counts commit requests in flight through the arbitration
	// system. A squashed chunk may be recycled only at zero: while a
	// request is out, the arbiter (and, after a grant, the directory) hold
	// references to the chunk's signatures and exact sets.
	ReqsOut int

	// CommitOrder is assigned by the arbiter at grant time.
	CommitOrder uint64

	// ReplyFn and FetchRFn are the chunk's commit-request callbacks,
	// allocated once per chunk LIFETIME by the owning processor (not per
	// request): they capture only the processor and the chunk pointer,
	// both of which are stable across pooled recycling, so re-sends after
	// a denial and chunks recycled through the Pool reuse the same two
	// closures instead of allocating fresh ones per request. Stale
	// invocations are impossible by construction — a chunk is recycled
	// only at ReqsOut == 0, and each in-flight request calls ReplyFn
	// exactly once.
	//lint:poolsafe per-chunk-lifetime wiring; captures only stable pointers, intentionally survives recycling
	ReplyFn func(granted bool, order uint64)
	//lint:poolsafe per-chunk-lifetime wiring; captures only stable pointers, intentionally survives recycling
	FetchRFn func(cb func(sig.Signature))
}

// New returns a fresh chunk for proc at checkpoint pos using the given
// signature factory. arena, when non-nil, supplies the backing arrays of
// the chunk's exact sets and write buffer (see Pool.Drain: it lets a
// warm-reused machine re-walk the cold capacity history from recycled
// storage instead of the allocator).
func New(f sig.Factory, arena *slab.Pool[uint64], proc int, seq uint64, slot, pos, target int) *Chunk {
	c := &Chunk{
		R:     f(),
		W:     f(),
		Wpriv: f(),
	}
	c.RSet.UseArena(arena)
	c.WSet.UseArena(arena)
	c.PrivSet.UseArena(arena)
	c.WriteBuf.UseArena(arena)
	c.init(proc, seq, slot, pos, target)
	return c
}

// init (re)sets the per-execution fields; signatures and sets must already
// be empty.
func (c *Chunk) init(proc int, seq uint64, slot, pos, target int) {
	c.Proc = proc
	c.Seq = seq
	c.Slot = slot
	c.Checkpt = pos
	c.State = Executing
	c.Target = target
	c.Executed = 0
	c.Pending = 0
	c.ReqsOut = 0
	c.CommitOrder = 0
}

// RecordLoad notes a load of a and the value it observed. The R signature
// is updated unless private (the stpvt optimization skips R updates for
// statically-private data).
//
//sim:hotpath
func (c *Chunk) RecordLoad(a mem.Addr, v uint64, private bool) {
	if !private {
		l := a.LineOf()
		c.R.Add(l)
		c.RSet.Add(l)
		if c.Sum != nil {
			c.Sum.Add(l)
		}
	}
	c.Log = append(c.Log, AccessRec{Addr: a, Value: v})
}

// RecordStore buffers a speculative store. If priv, the write goes to
// Wpriv instead of W (paper §5: writes to private data are exempt from
// consistency arbitration and disambiguation).
//
//sim:hotpath
func (c *Chunk) RecordStore(a mem.Addr, v uint64, priv bool) {
	l := a.LineOf()
	if priv {
		c.Wpriv.Add(l)
		c.PrivSet.Add(l)
	} else {
		c.W.Add(l)
		c.WSet.Add(l)
		if c.Sum != nil {
			c.Sum.Add(l)
		}
	}
	c.WriteBuf.Put(a.Align(), v)
	c.Log = append(c.Log, AccessRec{IsStore: true, Addr: a, Value: v})
}

// PromoteToW moves line l from Wpriv to W, the "add back" step when a
// dynamically-private prediction stops working (§5.2). Word values stay in
// WriteBuf. It reports whether l was private.
//
//sim:hotpath
func (c *Chunk) PromoteToW(l mem.Line) bool {
	if !c.PrivSet.Remove(l) {
		return false
	}
	c.W.Add(l)
	c.WSet.Add(l)
	if c.Sum != nil {
		c.Sum.Add(l)
	}
	// Wpriv is a superset encoding; the stale bit is harmless (it only
	// matters for ∈ checks on external accesses, which now also hit W).
	return true
}

// Forward returns the chunk's buffered value for a, if any — the
// store-to-load forwarding path within and across in-flight chunks.
//
//sim:hotpath
func (c *Chunk) Forward(a mem.Addr) (uint64, bool) {
	return c.WriteBuf.Get(a.Align())
}

// WroteLine reports whether the chunk speculatively wrote any word of l
// (through either W or Wpriv).
//
//sim:hotpath
func (c *Chunk) WroteLine(l mem.Line) bool {
	return c.WSet.Has(l) || c.PrivSet.Has(l)
}

// ConflictsWith reports whether an incoming committing W signature
// collides with this chunk: (Wc ∩ R) ∪ (Wc ∩ W) ≠ ∅. Wpriv is exempt by
// design. trueW, when non-nil, is the committer's exact write set; the
// second result reports whether the collision is genuine (shares a real
// line) as opposed to pure signature aliasing.
//
//sim:hotpath
func (c *Chunk) ConflictsWith(wc sig.Signature, trueW *lineset.Set) (hit, genuine bool) {
	if !wc.Intersects(c.R) && !wc.Intersects(c.W) {
		return false, false
	}
	if trueW != nil {
		// ForEach and this literal are both inlined (-gcflags=-m reports
		// "can inline ConflictsWith.func1" / "inlining call to ForEach"),
		// so the capture of `genuine` never materializes a heap closure;
		// scripts/hotpath_escape.sh cross-checks this.
		//lint:alloc closure fully inlined; verified non-escaping via -gcflags=-m
		trueW.ForEach(func(l mem.Line) {
			if genuine {
				return
			}
			if c.RSet.Has(l) || c.WSet.Has(l) {
				genuine = true
			}
		})
	}
	return true, genuine
}

// Active reports whether the chunk can still be squashed by an incoming
// commit (it has not been granted commit permission itself, nor already
// squashed).
func (c *Chunk) Active() bool {
	return c.State == Executing || c.State == Completed || c.State == Arbitrating
}

func (c *Chunk) String() string {
	return fmt.Sprintf("chunk{p%d #%d %s R=%d W=%d priv=%d}",
		c.Proc, c.Seq, c.State, c.RSet.Len(), c.WSet.Len(), c.PrivSet.Len())
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

// Pool recycles Chunk objects — including their signatures, exact sets,
// write buffers and logs — across squash/re-execute cycles. It is owned by
// one processor (the simulator is single-goroutine per machine; machines
// running in parallel each have their own pools).
//
// Only chunks with no live external references may be returned: in
// practice the squash path, where the chunk's signatures were never handed
// to the arbiter/directory pipeline (see proc's reqInFlight tracking).
// Committed chunks are NOT pooled within a run — the replay checker and
// timeline may retain them, and the directory may still be expanding
// their W. Across runs, once the machine is quiescent, they re-enter the
// pool through Adopt.
type Pool struct {
	free []*Chunk

	// SigRecycler, when set, receives the signatures Adopt and Drain
	// drop instead of leaving them to the garbage collector (typically
	// sig.Recycler.Recycle, which parks standard Blooms for the next
	// run's factory and ignores everything else). Pure storage wiring:
	// a recycled signature is cleared and geometry-fixed, so reuse is
	// invisible to the simulation.
	//lint:poolsafe machine-lifetime recycler wiring; storage sink only, never simulated state
	SigRecycler func(sig.Signature)
}

// dropSigs detaches c's signatures, routing them through the recycler
// when one is wired.
func (p *Pool) dropSigs(c *Chunk) {
	if p.SigRecycler != nil {
		p.SigRecycler(c.R)
		p.SigRecycler(c.W)
		p.SigRecycler(c.Wpriv)
	}
	c.R, c.W, c.Wpriv = nil, nil, nil
	c.Sum = nil
}

// Get returns a ready chunk, recycling a pooled one when available. A
// chunk retained across a machine reset (Drain) has no signatures; they
// are rebuilt here from the current run's factory.
//
//sim:hotpath
//sim:pool acquire
func (p *Pool) Get(f sig.Factory, arena *slab.Pool[uint64], proc int, seq uint64, slot, pos, target int) *Chunk {
	n := len(p.free)
	if n == 0 {
		return New(f, arena, proc, seq, slot, pos, target)
	}
	c := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	if c.R == nil {
		c.R, c.W, c.Wpriv = f(), f(), f()
	}
	c.init(proc, seq, slot, pos, target)
	return c
}

// Put recycles c. The caller asserts no external component still holds a
// reference that could mutate or read c later; in-processor callbacks are
// defused by the Gen bump.
//
//sim:hotpath
//sim:pool release
func (p *Pool) Put(c *Chunk) {
	c.Gen++
	c.R.Clear()
	c.W.Clear()
	c.Wpriv.Clear()
	c.RSet.Reset()
	c.WSet.Reset()
	c.PrivSet.Reset()
	c.WriteBuf.Reset()
	c.Log = c.Log[:0]
	c.Sum = nil // the summary outlives the chunk; drop the proc's wiring
	p.free = append(p.free, c)
}

// Adopt places a chunk that COMMITTED in a now-finished run into the
// pool, stripped to the same cold shape Drain produces: sets and write
// buffer release their arrays to the arena, signatures are dropped (the
// next Get rebuilds them from the next run's factory), and only the
// struct, its Gen counter, its commit callbacks and the append-only Log
// storage survive.
//
// Committed chunks can never be recycled WITHIN a run (the replay
// checker, the witness and the directory pipeline may all hold them),
// which is why Put refuses them; but between runs the machine is
// quiescent, so the only reference that can outlive the run is
// Result.Commits — the caller (core, via the processor's retire list)
// asserts that run did not export them there. Adoption is
// identity-neutral for the same reason Drain is: the adopted chunk is
// indistinguishable from a drained one.
//
//sim:pool release
func (p *Pool) Adopt(c *Chunk) {
	c.Gen++
	p.dropSigs(c)
	c.RSet.Release()
	c.WSet.Release()
	c.PrivSet.Release()
	c.WriteBuf.Release()
	c.Log = c.Log[:0]
	p.free = append(p.free, c)
}

// Drain prepares the pool for reuse across a warm machine reset
// (DESIGN.md §11). Retaining pooled chunks as-is would violate the
// cold/warm bit-identity contract: their open-addressed sets keep grown
// capacities, and slot-order iteration depends on capacity. Instead each
// pooled chunk keeps only what is order-neutral — the struct itself, its
// generation counter (compared by equality only), and the append-only
// Log's storage — while its sets and write buffer return their arrays to
// the chunk arena (Release restores the zero-value cold shape, so the
// next run re-walks the cold growth history from recycled storage) and
// its signatures are dropped (the next Get rebuilds them from that run's
// factory, which may differ in kind or geometry).
//
// Only pooled chunks are drained: a chunk is in the pool precisely
// because nothing external retained it, so releasing its storage cannot
// alias a previous run's Result (committed chunks, whose sets the replay
// checker and commit records do retain, are never pooled).
func (p *Pool) Drain() {
	for _, c := range p.free {
		p.dropSigs(c)
		c.RSet.Release()
		c.WSet.Release()
		c.PrivSet.Release()
		c.WriteBuf.Release()
		c.Log = c.Log[:0]
	}
}

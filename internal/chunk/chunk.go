// Package chunk holds the per-chunk speculative state of BulkSC: the R, W
// and Wpriv signatures, the exact line sets that back the signatures (used
// to apply commits, to classify aliased squashes and to compute Table 3's
// set sizes), the speculative write buffer, and the load/store logs that
// feed the SC replay checker.
//
// A chunk is created at a checkpoint, accumulates accesses while the
// processor executes it, then either commits (its buffered writes become
// the committed memory state, in global arbitration order) or squashes
// (everything is discarded and the processor re-executes from the
// checkpoint).
package chunk

import (
	"fmt"

	"bulksc/internal/mem"
	"bulksc/internal/sig"
)

// State is a chunk's lifecycle position.
type State int

const (
	// Executing: the processor is still dispatching the chunk's
	// instructions.
	Executing State = iota
	// Completed: all instructions executed; waiting for outstanding line
	// fills before arbitration may start.
	Completed
	// Arbitrating: a permission-to-commit request is in flight.
	Arbitrating
	// Committing: permission granted; invalidations propagating.
	Committing
	// Committed: fully done.
	Committed
	// Squashed: discarded.
	Squashed
)

func (s State) String() string {
	return [...]string{"executing", "completed", "arbitrating", "committing", "committed", "squashed"}[s]
}

// AccessRec logs one memory access for the replay checker, in program
// order within the chunk.
type AccessRec struct {
	IsStore bool
	Addr    mem.Addr
	Value   uint64 // store: value written; load: value observed
}

// Chunk is one dynamic chunk's speculative context.
type Chunk struct {
	Proc     int    // owning processor
	Seq      uint64 // per-processor chunk sequence number
	Slot     int    // hardware signature-pair slot (0..MaxSlots-1)
	Checkpt  int    // stream position of the checkpoint
	State    State
	Target   int // instruction budget for this chunk
	Executed int // dynamic instructions dispatched so far

	// Signatures (superset encodings used by the protocol).
	R, W, Wpriv sig.Signature

	// Exact line sets backing the signatures. RSet/WSet drive commit
	// application and stats; PrivSet backs Wpriv.
	RSet, WSet, PrivSet map[mem.Line]struct{}

	// WriteBuf holds the chunk's speculative word values (Rule1: not
	// visible to other chunks until commit).
	WriteBuf map[mem.Addr]uint64

	// Log is the program-order access log for the replay checker.
	Log []AccessRec

	// Pending counts line fills requested by this chunk that have not
	// arrived; arbitration may not start until it reaches zero.
	Pending int

	// CommitOrder is assigned by the arbiter at grant time.
	CommitOrder uint64
}

// New returns a fresh chunk for proc at checkpoint pos using the given
// signature factory.
func New(f sig.Factory, proc int, seq uint64, slot, pos, target int) *Chunk {
	return &Chunk{
		Proc:     proc,
		Seq:      seq,
		Slot:     slot,
		Checkpt:  pos,
		Target:   target,
		R:        f(),
		W:        f(),
		Wpriv:    f(),
		RSet:     make(map[mem.Line]struct{}),
		WSet:     make(map[mem.Line]struct{}),
		PrivSet:  make(map[mem.Line]struct{}),
		WriteBuf: make(map[mem.Addr]uint64),
	}
}

// RecordLoad notes a load of a and the value it observed. The R signature
// is updated unless private (the stpvt optimization skips R updates for
// statically-private data).
func (c *Chunk) RecordLoad(a mem.Addr, v uint64, private bool) {
	if !private {
		l := a.LineOf()
		c.R.Add(l)
		c.RSet[l] = struct{}{}
	}
	c.Log = append(c.Log, AccessRec{Addr: a, Value: v})
}

// RecordStore buffers a speculative store. If priv, the write goes to
// Wpriv instead of W (paper §5: writes to private data are exempt from
// consistency arbitration and disambiguation).
func (c *Chunk) RecordStore(a mem.Addr, v uint64, priv bool) {
	l := a.LineOf()
	if priv {
		c.Wpriv.Add(l)
		c.PrivSet[l] = struct{}{}
	} else {
		c.W.Add(l)
		c.WSet[l] = struct{}{}
	}
	c.WriteBuf[a.Align()] = v
	c.Log = append(c.Log, AccessRec{IsStore: true, Addr: a, Value: v})
}

// PromoteToW moves line l from Wpriv to W, the "add back" step when a
// dynamically-private prediction stops working (§5.2). Word values stay in
// WriteBuf. It reports whether l was private.
func (c *Chunk) PromoteToW(l mem.Line) bool {
	if _, ok := c.PrivSet[l]; !ok {
		return false
	}
	delete(c.PrivSet, l)
	c.W.Add(l)
	c.WSet[l] = struct{}{}
	// Wpriv is a superset encoding; the stale bit is harmless (it only
	// matters for ∈ checks on external accesses, which now also hit W).
	return true
}

// Forward returns the chunk's buffered value for a, if any — the
// store-to-load forwarding path within and across in-flight chunks.
func (c *Chunk) Forward(a mem.Addr) (uint64, bool) {
	v, ok := c.WriteBuf[a.Align()]
	return v, ok
}

// WroteLine reports whether the chunk speculatively wrote any word of l
// (through either W or Wpriv).
func (c *Chunk) WroteLine(l mem.Line) bool {
	if _, ok := c.WSet[l]; ok {
		return true
	}
	_, ok := c.PrivSet[l]
	return ok
}

// ConflictsWith reports whether an incoming committing W signature
// collides with this chunk: (Wc ∩ R) ∪ (Wc ∩ W) ≠ ∅. Wpriv is exempt by
// design. trueW, when non-nil, is the committer's exact write set; the
// second result reports whether the collision is genuine (shares a real
// line) as opposed to pure signature aliasing.
func (c *Chunk) ConflictsWith(wc sig.Signature, trueW map[mem.Line]struct{}) (hit, genuine bool) {
	if !wc.Intersects(c.R) && !wc.Intersects(c.W) {
		return false, false
	}
	if trueW != nil {
		for l := range trueW {
			if _, ok := c.RSet[l]; ok {
				return true, true
			}
			if _, ok := c.WSet[l]; ok {
				return true, true
			}
		}
	}
	return true, false
}

// Active reports whether the chunk can still be squashed by an incoming
// commit (it has not been granted commit permission itself, nor already
// squashed).
func (c *Chunk) Active() bool {
	return c.State == Executing || c.State == Completed || c.State == Arbitrating
}

func (c *Chunk) String() string {
	return fmt.Sprintf("chunk{p%d #%d %s R=%d W=%d priv=%d}",
		c.Proc, c.Seq, c.State, len(c.RSet), len(c.WSet), len(c.PrivSet))
}

package sharerset

import (
	"encoding/binary"
	"testing"
)

// FuzzSharerSet differentially tests Set against a map[int]bool model,
// mirroring the FuzzLinesetSet pattern. The input is a stream of 3-byte
// steps: an op selector followed by a 16-bit little-endian proc id
// (reduced mod the machine size). The first byte of the input picks the
// machine size so the same corpus exercises inline-only 8-proc machines
// and multi-word 256/1024-proc bitmaps; Clear/Only route storage through
// one shared arena, so recycled-bitmap hygiene (Get must return zeroed
// words) is covered too.
func FuzzSharerSet(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x00, 0x02, 0x00})
	f.Add([]byte{
		0x02, // 256 procs
		0x00, 0x05, 0x00, 0x00, 0x15, 0x00, 0x00, 0x25, 0x00,
		0x00, 0x35, 0x00, 0x00, 0x45, 0x00, // 5th add: overflow
		0x01, 0x15, 0x00, // remove
		0x03, 0x07, 0x00, // only
	})
	f.Add([]byte{
		0x03,             // 1024 procs
		0x00, 0xff, 0x03, // add 1023
		0x00, 0x00, 0x00,
		0x00, 0x40, 0x00,
		0x00, 0x80, 0x00,
		0x00, 0xc0, 0x00, // overflow across words
		0x04, 0x00, 0x00, // clear
		0x00, 0x01, 0x00, // re-add after recycle
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		procs := []int{8, 64, 256, 1024}[int(data[0])%4]
		data = data[1:]

		var a Arena
		a.Configure(procs)
		var s Set
		model := map[int]bool{}

		check := func(step int) {
			if s.Count() != len(model) {
				t.Fatalf("step %d: Count = %d, model %d", step, s.Count(), len(model))
			}
			prev := -1
			n := 0
			s.ForEach(func(p int) {
				if p <= prev {
					t.Fatalf("step %d: ForEach out of order: %d after %d", step, p, prev)
				}
				if !model[p] {
					t.Fatalf("step %d: ForEach visited absent proc %d", step, p)
				}
				prev = p
				n++
			})
			if n != len(model) {
				t.Fatalf("step %d: ForEach visited %d procs, model has %d", step, n, len(model))
			}
		}

		for i := 0; i+3 <= len(data); i += 3 {
			op := data[i]
			p := int(binary.LittleEndian.Uint16(data[i+1:i+3])) % procs
			switch op % 6 {
			case 0:
				got := s.Add(p, &a)
				if want := !model[p]; got != want {
					t.Fatalf("step %d: Add(%d) = %v, want %v", i, p, got, want)
				}
				model[p] = true
			case 1:
				got := s.Remove(p)
				if got != model[p] {
					t.Fatalf("step %d: Remove(%d) = %v, want %v", i, p, got, model[p])
				}
				delete(model, p)
			case 2:
				if s.Has(p) != model[p] {
					t.Fatalf("step %d: Has(%d) = %v, want %v", i, p, s.Has(p), model[p])
				}
			case 3:
				s.Only(p, &a)
				for k := range model {
					delete(model, k)
				}
				model[p] = true
			case 4:
				s.Clear(&a)
				for k := range model {
					delete(model, k)
				}
			case 5:
				if procs <= 64 {
					var want uint64
					for k := range model {
						want |= 1 << uint(k)
					}
					if s.Mask() != want {
						t.Fatalf("step %d: Mask = %b, want %b", i, s.Mask(), want)
					}
				}
			}
			check(i)
		}
		s.Clear(&a)
	})
}

// Package sharerset provides the sparse sharer-set representation behind
// the directory's big-machine scaling: a limited-pointer inline array
// (hardware's "limited pointers" directory organization) that overflows
// into a compact per-proc bitmap drawn from a slab arena.
//
// The full-bit-vector entry it replaces (`sharers uint64`) capped the
// machine at 64 processors and charged every entry O(maxprocs) bits. A
// Set instead stores up to InlineCap sharer ids inline — the common case:
// Table 4 shows W signatures reach only a couple of nodes, and most lines
// have 1-2 sharers — and only a widely-shared line pays for a bitmap of
// ceil(nprocs/64) words. Overflow words are recycled through an Arena
// (one per directory module, backed by slab.Pool size classes), so warm
// machine reuse never re-allocates them.
//
// Determinism contract: iteration (ForEach, AppendMask) is ascending
// processor id in both representations — the inline array is kept sorted,
// and the bitmap is walked word-major, bit-minor. That matches the
// ascending port loops the directory used over the old bit-vector, which
// is what keeps the 8-proc golden hashes bit-identical across this
// representation change: sharer visit order reaches the event stream
// through invalidation sends.
package sharerset

import (
	"math/bits"

	"bulksc/internal/slab"
)

// InlineCap is the limited-pointer capacity: sets with at most this many
// sharers need no overflow storage. Four pointers cover the overwhelming
// majority of directory entries (see DESIGN.md §12 for the measured
// distribution) while keeping the Set header two words of payload.
const InlineCap = 4

// Arena supplies and recycles the overflow bitmap words for the Sets of
// one owner (a directory module). It is sized once per run by Configure;
// the underlying slab pool survives warm machine resets, so a steady-state
// sweep draws every overflow bitmap from recycled storage. The zero value
// is usable and sizes bitmaps for a 64-proc machine.
type Arena struct {
	words int
	pool  slab.Pool[uint64]
}

// Configure sizes future overflow bitmaps for nprocs processors. Must be
// called before any Set owned by this arena overflows; bitmaps handed out
// earlier keep their size, so reconfigure only via the owner's reset path
// (when every Set has been released).
func (a *Arena) Configure(nprocs int) {
	w := (nprocs + 63) / 64
	if w < 1 {
		w = 1
	}
	// Round up to a power of two so the words recycle through slab size
	// classes.
	for w&(w-1) != 0 {
		w++
	}
	a.words = w
}

// Words reports the configured bitmap size, for tests.
func (a *Arena) Words() int {
	if a.words == 0 {
		return 1
	}
	return a.words
}

func (a *Arena) get() []uint64 {
	return a.pool.Get(a.Words())
}

func (a *Arena) put(w []uint64) {
	a.pool.Put(w)
}

// Set is one sparse sharer set. The zero value is an empty set. A Set
// that overflowed holds arena storage until Clear or Only releases it;
// owners must route every teardown through one of those (the directory
// does so in remove/drainBuckets) or the words leak out of the arena.
type Set struct {
	ovf    []uint64          // overflow bitmap; nil while inline
	inline [InlineCap]uint16 // sorted ascending; first n valid
	n      uint16            // sharer count (both representations)
}

// Count returns the number of sharers.
//
//sim:hotpath
func (s *Set) Count() int { return int(s.n) }

// Empty reports whether the set has no sharers.
//
//sim:hotpath
func (s *Set) Empty() bool { return s.n == 0 }

// Has reports whether proc p is a sharer.
//
//sim:hotpath
func (s *Set) Has(p int) bool {
	if s.ovf != nil {
		w := p >> 6
		if w >= len(s.ovf) {
			return false
		}
		return s.ovf[w]&(1<<uint(p&63)) != 0
	}
	for i := 0; i < int(s.n); i++ {
		if int(s.inline[i]) == p {
			return true
		}
	}
	return false
}

// Add inserts proc p, drawing overflow storage from a when the inline
// array fills. It reports whether p was newly added. p must be below the
// arena's configured processor capacity once the set overflows.
//
//sim:hotpath
func (s *Set) Add(p int, a *Arena) bool {
	if s.ovf != nil {
		w, b := p>>6, uint64(1)<<uint(p&63)
		if s.ovf[w]&b != 0 {
			return false
		}
		s.ovf[w] |= b
		s.n++
		return true
	}
	i := 0
	for ; i < int(s.n); i++ {
		if int(s.inline[i]) == p {
			return false
		}
		if int(s.inline[i]) > p {
			break
		}
	}
	if int(s.n) < InlineCap {
		// Insert at i, keeping the array sorted.
		copy(s.inline[i+1:int(s.n)+1], s.inline[i:int(s.n)])
		s.inline[i] = uint16(p)
		s.n++
		return true
	}
	// Overflow transition: spill the inline sharers plus p into a bitmap.
	w := a.get()
	for j := 0; j < InlineCap; j++ {
		q := int(s.inline[j])
		w[q>>6] |= 1 << uint(q&63)
	}
	w[p>>6] |= 1 << uint(p&63)
	s.ovf = w
	s.n++
	return true
}

// Remove deletes proc p and reports whether it was present. An overflowed
// set keeps its bitmap until Clear or Only — collapsing back to inline
// storage would make slot contents depend on removal history for no
// memory win (widely-shared lines stay widely shared).
//
//sim:hotpath
func (s *Set) Remove(p int) bool {
	if s.ovf != nil {
		w, b := p>>6, uint64(1)<<uint(p&63)
		if w >= len(s.ovf) || s.ovf[w]&b == 0 {
			return false
		}
		s.ovf[w] &^= b
		s.n--
		return true
	}
	for i := 0; i < int(s.n); i++ {
		if int(s.inline[i]) == p {
			copy(s.inline[i:], s.inline[i+1:int(s.n)])
			s.n--
			s.inline[s.n] = 0
			return true
		}
	}
	return false
}

// Only resets the set to exactly {p}, releasing any overflow storage to a.
// This is the directory's ownership-transfer step (commit expansion and
// read-exclusive grants): every other sharer is dropped in O(1).
//
//sim:hotpath
func (s *Set) Only(p int, a *Arena) {
	s.Clear(a)
	s.inline[0] = uint16(p)
	s.n = 1
}

// Clear empties the set, releasing any overflow storage to a.
//
//sim:hotpath
func (s *Set) Clear(a *Arena) {
	if s.ovf != nil {
		a.put(s.ovf)
		s.ovf = nil
	}
	s.inline = [InlineCap]uint16{}
	s.n = 0
}

// ForEach visits every sharer in ascending proc-id order.
func (s *Set) ForEach(f func(p int)) {
	if s.ovf != nil {
		for w, word := range s.ovf {
			for word != 0 {
				f(w<<6 + bits.TrailingZeros64(word))
				word &= word - 1
			}
		}
		return
	}
	for i := 0; i < int(s.n); i++ {
		f(int(s.inline[i]))
	}
}

// Mask returns the sharers as a 64-bit vector — the legacy full-bit-vector
// view, valid only for machines of at most 64 processors (higher proc ids
// are truncated). Retained for directory state inspection in tests.
func (s *Set) Mask() uint64 {
	if s.ovf != nil {
		return s.ovf[0]
	}
	var m uint64
	for i := 0; i < int(s.n); i++ {
		m |= 1 << uint(s.inline[i])
	}
	return m
}

// Overflowed reports whether the set left inline representation, for tests
// and stats.
func (s *Set) Overflowed() bool { return s.ovf != nil }

// Dense is a flat per-proc bitmap used as commit-expansion scratch: the
// invalidation list accumulated across all matching directory entries
// before fan-out. Unlike Set it has no sparse mode — one Dense per
// directory module, sized once per run, reused by every expansion.
type Dense struct {
	words []uint64
	n     int // set-bit count
}

// Configure sizes the bitmap for nprocs processors, reusing storage.
func (d *Dense) Configure(nprocs int) {
	w := (nprocs + 63) / 64
	if w < 1 {
		w = 1
	}
	if cap(d.words) < w {
		d.words = make([]uint64, w)
	}
	d.words = d.words[:w]
	clear(d.words)
	d.n = 0
}

// Reset empties the bitmap, retaining storage.
func (d *Dense) Reset() {
	clear(d.words)
	d.n = 0
}

// Empty reports whether no proc is marked.
//
//sim:hotpath
func (d *Dense) Empty() bool { return d.n == 0 }

// Add marks proc p.
//
//sim:hotpath
func (d *Dense) Add(p int) {
	w, b := p>>6, uint64(1)<<uint(p&63)
	if d.words[w]&b == 0 {
		d.words[w] |= b
		d.n++
	}
}

// AddSetExcept marks every sharer of s other than except. It is the
// Table 1 "every other sharer joins the invalidation list" step, written
// as a direct bitmap walk so the hot commit-expansion loop creates no
// per-entry closure.
//
//sim:hotpath
func (d *Dense) AddSetExcept(s *Set, except int) {
	if s.ovf != nil {
		for w, word := range s.ovf {
			for word != 0 {
				p := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if p != except {
					d.Add(p)
				}
			}
		}
		return
	}
	for i := 0; i < int(s.n); i++ {
		if p := int(s.inline[i]); p != except {
			d.Add(p)
		}
	}
}

// ForEach visits every marked proc in ascending order.
func (d *Dense) ForEach(f func(p int)) {
	for w, word := range d.words {
		for word != 0 {
			f(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

package sharerset

import (
	"math/rand"
	"testing"
)

func TestArenaConfigure(t *testing.T) {
	cases := []struct {
		procs, words int
	}{
		{0, 1}, {1, 1}, {8, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 4},
		{256, 4}, {257, 8}, {1024, 16},
	}
	for _, c := range cases {
		var a Arena
		a.Configure(c.procs)
		if a.Words() != c.words {
			t.Errorf("Configure(%d): words = %d, want %d", c.procs, a.Words(), c.words)
		}
	}
	var zero Arena
	if zero.Words() != 1 {
		t.Errorf("zero arena words = %d, want 1", zero.Words())
	}
}

func TestSetInlineBasics(t *testing.T) {
	var a Arena
	a.Configure(8)
	var s Set
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero set not empty")
	}
	// Add out of order; iteration must be ascending.
	for _, p := range []int{5, 1, 7} {
		if !s.Add(p, &a) {
			t.Fatalf("Add(%d) = false, want true", p)
		}
	}
	if s.Add(5, &a) {
		t.Fatal("duplicate Add(5) = true")
	}
	if s.Count() != 3 || s.Overflowed() {
		t.Fatalf("count=%d overflowed=%v, want 3 inline", s.Count(), s.Overflowed())
	}
	var got []int
	s.ForEach(func(p int) { got = append(got, p) })
	want := []int{1, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v (ascending)", got, want)
		}
	}
	if s.Mask() != 1<<1|1<<5|1<<7 {
		t.Fatalf("Mask = %b", s.Mask())
	}
	if !s.Has(5) || s.Has(2) {
		t.Fatal("Has wrong")
	}
	if !s.Remove(5) || s.Remove(5) {
		t.Fatal("Remove(5) sequence wrong")
	}
	if s.Count() != 2 || s.Has(5) {
		t.Fatal("state after Remove wrong")
	}
}

func TestSetOverflowTransition(t *testing.T) {
	var a Arena
	a.Configure(256)
	var s Set
	for p := 0; p < InlineCap; p++ {
		s.Add(p*3, &a)
	}
	if s.Overflowed() {
		t.Fatalf("overflowed at %d sharers", InlineCap)
	}
	if !s.Add(200, &a) {
		t.Fatal("Add(200) = false")
	}
	if !s.Overflowed() {
		t.Fatal("no overflow after InlineCap+1 sharers")
	}
	if s.Count() != InlineCap+1 {
		t.Fatalf("count = %d, want %d", s.Count(), InlineCap+1)
	}
	// All pre-overflow sharers must have survived the spill, ascending.
	var got []int
	s.ForEach(func(p int) { got = append(got, p) })
	want := []int{0, 3, 6, 9, 200}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	if !s.Has(200) || !s.Has(9) || s.Has(100) {
		t.Fatal("Has wrong after overflow")
	}
	// Remove keeps the overflow representation.
	s.Remove(200)
	s.Remove(9)
	if !s.Overflowed() || s.Count() != 3 {
		t.Fatalf("after removes: overflowed=%v count=%d", s.Overflowed(), s.Count())
	}
	// Only collapses back to inline and releases the bitmap.
	s.Only(42, &a)
	if s.Overflowed() || s.Count() != 1 || !s.Has(42) {
		t.Fatal("Only(42) wrong")
	}
}

func TestSetClearRecyclesStorage(t *testing.T) {
	var a Arena
	a.Configure(256)
	var s Set
	for p := 0; p < InlineCap+1; p++ {
		s.Add(p, &a)
	}
	if !s.Overflowed() {
		t.Fatal("expected overflow")
	}
	s.Clear(&a)
	if !s.Empty() || s.Overflowed() {
		t.Fatal("Clear left state")
	}
	// The recycled bitmap must come back zeroed even though it had bits set.
	var s2 Set
	for p := 60; p < 60+InlineCap+1; p++ {
		s2.Add(p, &a)
	}
	if s2.Count() != InlineCap+1 {
		t.Fatalf("recycled bitmap count = %d, want %d", s2.Count(), InlineCap+1)
	}
	for p := 0; p < InlineCap; p++ {
		if s2.Has(p) {
			t.Fatalf("recycled bitmap leaked bit %d", p)
		}
	}
}

func TestOnlyFromInline(t *testing.T) {
	var a Arena
	a.Configure(8)
	var s Set
	s.Add(1, &a)
	s.Add(6, &a)
	s.Only(3, &a)
	if s.Count() != 1 || !s.Has(3) || s.Has(1) || s.Has(6) {
		t.Fatal("Only from inline wrong")
	}
	if s.Mask() != 1<<3 {
		t.Fatalf("Mask = %b", s.Mask())
	}
}

// TestSetDifferential drives Set against a map model with a deterministic
// random op stream, at several machine sizes including >64 procs.
func TestSetDifferential(t *testing.T) {
	for _, procs := range []int{8, 64, 256, 1024} {
		var a Arena
		a.Configure(procs)
		var s Set
		model := map[int]bool{}
		rng := rand.New(rand.NewSource(int64(procs) * 12345))
		for step := 0; step < 20000; step++ {
			p := rng.Intn(procs)
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // Add
				got := s.Add(p, &a)
				want := !model[p]
				if got != want {
					t.Fatalf("procs=%d step=%d Add(%d) = %v, want %v", procs, step, p, got, want)
				}
				model[p] = true
			case 4, 5: // Remove
				got := s.Remove(p)
				if got != model[p] {
					t.Fatalf("procs=%d step=%d Remove(%d) = %v, want %v", procs, step, p, got, model[p])
				}
				delete(model, p)
			case 6: // Only
				s.Only(p, &a)
				for k := range model {
					delete(model, k)
				}
				model[p] = true
			case 7: // Clear
				s.Clear(&a)
				for k := range model {
					delete(model, k)
				}
			default: // Has
				if s.Has(p) != model[p] {
					t.Fatalf("procs=%d step=%d Has(%d) = %v, want %v", procs, step, p, s.Has(p), model[p])
				}
			}
			if s.Count() != len(model) {
				t.Fatalf("procs=%d step=%d Count = %d, want %d", procs, step, s.Count(), len(model))
			}
			if step%97 == 0 {
				prev := -1
				n := 0
				s.ForEach(func(q int) {
					if q <= prev {
						t.Fatalf("procs=%d step=%d ForEach not ascending: %d after %d", procs, step, q, prev)
					}
					if !model[q] {
						t.Fatalf("procs=%d step=%d ForEach visited absent %d", procs, step, q)
					}
					prev = q
					n++
				})
				if n != len(model) {
					t.Fatalf("procs=%d step=%d ForEach visited %d, want %d", procs, step, n, len(model))
				}
			}
		}
		s.Clear(&a)
	}
}

func TestDense(t *testing.T) {
	var d Dense
	d.Configure(256)
	if !d.Empty() {
		t.Fatal("configured Dense not empty")
	}
	d.Add(3)
	d.Add(200)
	d.Add(3) // duplicate
	if d.Empty() {
		t.Fatal("Dense empty after adds")
	}
	var got []int
	d.ForEach(func(p int) { got = append(got, p) })
	if len(got) != 2 || got[0] != 3 || got[1] != 200 {
		t.Fatalf("ForEach = %v, want [3 200]", got)
	}
	d.Reset()
	if !d.Empty() {
		t.Fatal("Reset left bits")
	}
	d.ForEach(func(p int) { t.Fatalf("visited %d after Reset", p) })

	// Reconfigure smaller reuses storage and clears.
	d.Add(100)
	d.Configure(64)
	if !d.Empty() {
		t.Fatal("Configure left bits")
	}
}

func TestDenseAddSetExcept(t *testing.T) {
	var a Arena
	a.Configure(256)
	for _, overflow := range []bool{false, true} {
		var s Set
		members := []int{2, 7, 11}
		if overflow {
			members = []int{2, 7, 11, 80, 130, 250}
		}
		for _, p := range members {
			s.Add(p, &a)
		}
		if s.Overflowed() != overflow {
			t.Fatalf("overflowed = %v, want %v", s.Overflowed(), overflow)
		}
		var d Dense
		d.Configure(256)
		d.AddSetExcept(&s, 7)
		var got []int
		d.ForEach(func(p int) { got = append(got, p) })
		want := 0
		for _, p := range members {
			if p != 7 {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("overflow=%v AddSetExcept = %v", overflow, got)
		}
		for _, p := range got {
			if p == 7 {
				t.Fatalf("overflow=%v except member visited", overflow)
			}
		}
		s.Clear(&a)
	}
}

func TestMaskOverflow64(t *testing.T) {
	// Mask over an overflowed set on a 64-proc machine stays exact.
	var a Arena
	a.Configure(64)
	var s Set
	members := []int{0, 10, 20, 30, 40, 63}
	var want uint64
	for _, p := range members {
		s.Add(p, &a)
		want |= 1 << uint(p)
	}
	if !s.Overflowed() {
		t.Fatal("expected overflow")
	}
	if s.Mask() != want {
		t.Fatalf("Mask = %b, want %b", s.Mask(), want)
	}
}
